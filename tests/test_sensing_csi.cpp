#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sensing/csi/localization.hpp"

namespace zeiot::sensing::csi {
namespace {

TEST(Patterns, SixPatternsWithDistinctNames) {
  const auto ps = all_patterns();
  ASSERT_EQ(ps.size(), 6u);
  std::set<std::string> names;
  for (const auto& p : ps) names.insert(p.name());
  EXPECT_EQ(names.size(), 6u);
}

TEST(Patterns, NameFormat) {
  Pattern p{Behavior::Walking, AntennaConfig::Divergent};
  EXPECT_EQ(p.name(), "walking/divergent");
}

TEST(Positions, CountAndContainment) {
  phy::CsiEnvironment env;
  const auto pos = default_positions(env, 7);
  ASSERT_EQ(pos.size(), 7u);
  for (const auto& p : pos) EXPECT_TRUE(env.room.contains(p));
  EXPECT_THROW(default_positions(env, 1), Error);
}

LocalizationConfig fast_config() {
  LocalizationConfig cfg;
  cfg.num_positions = 4;
  cfg.frames_per_position = 14;
  cfg.seed = 5;
  return cfg;
}

phy::CsiEnvironment fast_env() {
  phy::CsiEnvironment env;
  env.subcarriers = 12;  // 12 * 12 angles = 144 features; fast
  return env;
}

TEST(Localization, BeatsChanceOnBestPattern) {
  const auto res = run_localization(
      fast_env(), {Behavior::Walking, AntennaConfig::Divergent},
      fast_config());
  EXPECT_GT(res.accuracy, 0.5);  // chance = 0.25
  EXPECT_EQ(res.confusion.total(),
            static_cast<std::size_t>(res.confusion.total()));
}

TEST(Localization, FeatureDimMatchesConfig) {
  const auto res = run_localization(
      fast_env(), {Behavior::Static, AntennaConfig::Divergent}, fast_config());
  // 12 subcarriers x 12 angles, each embedded as (cos, sin).
  EXPECT_EQ(res.feature_dim, 12u * 12u * 2u);
}

TEST(Localization, DivergentBeatsAligned) {
  // The paper's key finding: antenna orientation divergence improves the
  // device-free localization accuracy.
  auto cfg = fast_config();
  cfg.frames_per_position = 20;
  const auto div = run_localization(
      fast_env(), {Behavior::Walking, AntennaConfig::Divergent}, cfg);
  const auto ali = run_localization(
      fast_env(), {Behavior::Walking, AntennaConfig::Aligned}, cfg);
  EXPECT_GE(div.accuracy, ali.accuracy);
}

TEST(Localization, DeterministicForSeed) {
  const auto a = run_localization(
      fast_env(), {Behavior::Walking, AntennaConfig::Divergent},
      fast_config());
  const auto b = run_localization(
      fast_env(), {Behavior::Walking, AntennaConfig::Divergent},
      fast_config());
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Localization, RejectsDegenerateConfig) {
  auto cfg = fast_config();
  cfg.num_positions = 1;
  EXPECT_THROW(
      run_localization(fast_env(),
                       {Behavior::Static, AntennaConfig::Aligned}, cfg),
      Error);
  cfg = fast_config();
  cfg.frames_per_position = 2;
  EXPECT_THROW(
      run_localization(fast_env(),
                       {Behavior::Static, AntennaConfig::Aligned}, cfg),
      Error);
}

TEST(Localization, RunAllPatternsReturnsSix) {
  auto cfg = fast_config();
  cfg.frames_per_position = 8;
  cfg.num_positions = 3;
  const auto all = run_all_patterns(fast_env(), cfg);
  EXPECT_EQ(all.size(), 6u);
}

}  // namespace
}  // namespace zeiot::sensing::csi
