#include <gtest/gtest.h>

#include <cmath>

#include "ml/gaussian_nb.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/standardize.hpp"

namespace zeiot::ml {
namespace {

/// Three well-separated Gaussian blobs in 4-D.
void make_blobs(std::size_t per_class, std::uint64_t seed, FeatureMatrix& x,
                LabelVector& y, double spread = 0.5) {
  Rng rng(seed);
  const double centers[3][4] = {
      {0.0, 0.0, 0.0, 0.0}, {4.0, 4.0, 0.0, -2.0}, {-4.0, 2.0, 3.0, 1.0}};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<double> row(4);
      for (int j = 0; j < 4; ++j) {
        row[static_cast<std::size_t>(j)] =
            centers[c][j] + rng.normal(0.0, spread);
      }
      x.push_back(std::move(row));
      y.push_back(c);
    }
  }
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(100, 1, x, y);
  Standardizer s;
  s.fit(x);
  const auto xt = s.transform(x);
  for (std::size_t j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (const auto& row : xt) mean += row[j];
    mean /= static_cast<double>(xt.size());
    for (const auto& row : xt) var += (row[j] - mean) * (row[j] - mean);
    var /= static_cast<double>(xt.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Standardizer, ConstantColumnPassesThrough) {
  FeatureMatrix x{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  Standardizer s;
  s.fit(x);
  const auto t = s.transform(x[0]);
  EXPECT_NEAR(t[1], 0.0, 1e-12);  // centred but not scaled to infinity
  EXPECT_TRUE(std::isfinite(t[1]));
}

TEST(Standardizer, RejectsMisuse) {
  Standardizer s;
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), Error);
  EXPECT_THROW(s.fit({}), Error);
  s.fit({{1.0, 2.0}});
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), Error);
}

TEST(Knn, SeparableBlobsPerfect) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(60, 2, x, y, 0.3);
  KnnClassifier knn(5);
  knn.fit(x, y);
  EXPECT_GT(knn.score(x, y), 0.99);
}

TEST(Knn, HoldOutGeneralization) {
  FeatureMatrix xtr, xte;
  LabelVector ytr, yte;
  make_blobs(80, 3, xtr, ytr, 0.6);
  make_blobs(30, 4, xte, yte, 0.6);
  KnnClassifier knn(7);
  knn.fit(xtr, ytr);
  EXPECT_GT(knn.score(xte, yte), 0.95);
}

TEST(Knn, KOneMemorizes) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(20, 5, x, y, 2.5);  // overlapping blobs
  KnnClassifier knn(1);
  knn.fit(x, y);
  EXPECT_DOUBLE_EQ(knn.score(x, y), 1.0);  // 1-NN on training data is exact
}

TEST(Knn, DistanceTiesBreakByTrainingIndex) {
  // Regression: neighbor selection used to sort (distance, label) pairs
  // with an unstable partial sort, so equidistant training points entered
  // the k-set in label (or implementation-defined) order.  Ties must break
  // by training index: the four points below are all at distance 1 from
  // the query, so k=2 selects indices 0 and 1 — both label 1 — even though
  // label-ordered selection would have picked the two label-0 points.
  FeatureMatrix x{{1.0}, {-1.0}, {1.0}, {-1.0}};
  LabelVector y{1, 1, 0, 0};
  KnnClassifier knn(2);
  knn.fit(x, y);
  EXPECT_EQ(knn.predict({0.0}), 1);
}

TEST(Knn, RejectsMisuse) {
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict({1.0}), Error);
  EXPECT_THROW(KnnClassifier(0), Error);
  FeatureMatrix x{{1.0}};
  LabelVector y{0};
  knn.fit(x, y);
  EXPECT_THROW(knn.predict({1.0, 2.0}), Error);
}

TEST(Logistic, LearnsBlobs) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(80, 6, x, y, 0.5);
  Rng rng(7);
  LogisticRegression lr;
  lr.fit(x, y, rng);
  EXPECT_GT(lr.score(x, y), 0.97);
  EXPECT_EQ(lr.num_classes(), 3);
}

TEST(Logistic, ProbabilitiesSumToOne) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(40, 8, x, y);
  Rng rng(9);
  LogisticRegression lr;
  lr.fit(x, y, rng);
  const auto p = lr.predict_proba(x[0]);
  double s = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Logistic, RejectsMisuse) {
  LogisticRegression lr;
  EXPECT_THROW(lr.predict({1.0}), Error);
  EXPECT_THROW(LogisticRegression({0, 32, 0.1, 0.0}), Error);
}

TEST(GaussianNb, LearnsBlobs) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(80, 10, x, y, 0.5);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_GT(nb.score(x, y), 0.97);
}

TEST(GaussianNb, LogLikelihoodsOrdered) {
  FeatureMatrix x;
  LabelVector y;
  make_blobs(50, 11, x, y, 0.4);
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  // A point at a class centre must prefer that class.
  const auto ll = nb.log_likelihoods({4.0, 4.0, 0.0, -2.0});
  EXPECT_GT(ll[1], ll[0]);
  EXPECT_GT(ll[1], ll[2]);
}

TEST(GaussianNb, PriorsReflectImbalance) {
  FeatureMatrix x;
  LabelVector y;
  // Heavily imbalanced identical-feature classes: prior must dominate.
  for (int i = 0; i < 95; ++i) {
    x.push_back({0.0});
    y.push_back(0);
  }
  for (int i = 0; i < 5; ++i) {
    x.push_back({0.0});
    y.push_back(1);
  }
  GaussianNaiveBayes nb;
  nb.fit(x, y);
  EXPECT_EQ(nb.predict({0.0}), 0);
}

TEST(GaussianNb, RejectsMissingClass) {
  FeatureMatrix x{{0.0}, {1.0}};
  LabelVector y{0, 2};  // class 1 absent
  GaussianNaiveBayes nb;
  EXPECT_THROW(nb.fit(x, y), Error);
}

TEST(GaussianNb, VarianceFloorPreventsDegeneracy) {
  FeatureMatrix x{{1.0}, {1.0}, {2.0}, {2.0}};
  LabelVector y{0, 0, 1, 1};
  GaussianNaiveBayes nb;  // zero within-class variance
  nb.fit(x, y);
  EXPECT_EQ(nb.predict({1.0}), 0);
  EXPECT_EQ(nb.predict({2.0}), 1);
}

TEST(Classifiers, AgreeOnEasyProblem) {
  FeatureMatrix xtr, xte;
  LabelVector ytr, yte;
  make_blobs(60, 12, xtr, ytr, 0.3);
  make_blobs(20, 13, xte, yte, 0.3);
  KnnClassifier knn(3);
  knn.fit(xtr, ytr);
  GaussianNaiveBayes nb;
  nb.fit(xtr, ytr);
  Rng rng(14);
  LogisticRegression lr;
  lr.fit(xtr, ytr, rng);
  int agree = 0;
  for (std::size_t i = 0; i < xte.size(); ++i) {
    const int a = knn.predict(xte[i]);
    if (a == nb.predict(xte[i]) && a == lr.predict(xte[i])) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(xte.size()), 0.95);
}

}  // namespace
}  // namespace zeiot::ml
