#include <gtest/gtest.h>

#include <cmath>

#include "backscatter/bmac.hpp"
#include "backscatter/coexistence.hpp"

namespace zeiot::backscatter {
namespace {

TEST(CycleScheduler, RegistersAndRejectsDuplicates) {
  CycleScheduler s;
  s.register_device({1, 1.0, 8});
  EXPECT_THROW(s.register_device({1, 2.0, 8}), Error);
  EXPECT_EQ(s.registrations().size(), 1u);
  EXPECT_DOUBLE_EQ(s.registration(1).period_s, 1.0);
  EXPECT_THROW(s.registration(9), Error);
}

TEST(CycleScheduler, RejectsBadRegistration) {
  CycleScheduler s;
  EXPECT_THROW(s.register_device({1, 0.0, 8}), Error);
  EXPECT_THROW(s.register_device({1, 1.0, 0}), Error);
}

TEST(CycleScheduler, EdfOrder) {
  CycleScheduler s;
  s.enqueue({1, 0.0, 5.0});
  s.enqueue({2, 0.0, 2.0});
  s.enqueue({3, 0.0, 8.0});
  std::size_t expired = 0;
  auto f = s.pop_earliest_deadline(0.0, 0.1, expired);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->device, 2u);
  f = s.pop_earliest_deadline(0.0, 0.1, expired);
  EXPECT_EQ(f->device, 1u);
  EXPECT_EQ(expired, 0u);
}

TEST(CycleScheduler, SkipsUnmeetableDeadlines) {
  CycleScheduler s;
  s.enqueue({1, 0.0, 1.0});
  s.enqueue({2, 0.0, 10.0});
  std::size_t expired = 0;
  // At t=0.95 a 0.1s transmission cannot meet the 1.0 deadline.
  auto f = s.pop_earliest_deadline(0.95, 0.1, expired);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->device, 2u);
  EXPECT_EQ(expired, 1u);
}

TEST(CycleScheduler, DropExpired) {
  CycleScheduler s;
  s.enqueue({1, 0.0, 1.0});
  s.enqueue({2, 0.0, 2.0});
  s.enqueue({3, 0.0, 3.0});
  EXPECT_EQ(s.drop_expired(2.5), 2u);
  EXPECT_EQ(s.pending_count(), 1u);
  EXPECT_DOUBLE_EQ(s.next_deadline(), 3.0);
}

TEST(CycleScheduler, NextDeadlineInfinityWhenEmpty) {
  CycleScheduler s;
  EXPECT_TRUE(std::isinf(s.next_deadline()));
  EXPECT_FALSE(s.has_pending());
}

TEST(CycleScheduler, EnqueueRejectsInvertedTimes) {
  CycleScheduler s;
  EXPECT_THROW(s.enqueue({1, 5.0, 4.0}), Error);
}

CoexistenceConfig base_config(MacMode mode) {
  CoexistenceConfig cfg;
  cfg.mode = mode;
  cfg.duration_s = 30.0;
  cfg.wlan_rate_hz = 150.0;
  cfg.num_devices = 6;
  cfg.device_period_s = 1.0;
  cfg.seed = 99;
  return cfg;
}

TEST(Coexistence, CountsAreConsistentProposed) {
  CoexistenceSimulator sim(base_config(MacMode::Proposed));
  const auto m = sim.run();
  EXPECT_GT(m.frames_generated, 0u);
  EXPECT_LE(m.frames_delivered + m.frames_expired + m.frames_collided,
            m.frames_generated);
  EXPECT_LE(m.wlan_delivered, m.wlan_offered + m.wlan_corrupted);
  EXPECT_GE(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
}

TEST(Coexistence, CountsAreConsistentNaive) {
  CoexistenceSimulator sim(base_config(MacMode::Naive));
  const auto m = sim.run();
  EXPECT_GT(m.frames_generated, 0u);
  // A frame can collide several times before expiring, so only the
  // terminal outcomes are bounded by the generation count.
  EXPECT_LE(m.frames_delivered + m.frames_expired, m.frames_generated);
  EXPECT_GE(m.delivery_ratio(), 0.0);
  EXPECT_LE(m.delivery_ratio(), 1.0);
}

TEST(Coexistence, ProposedDeliversUnderModerateLoad) {
  CoexistenceSimulator sim(base_config(MacMode::Proposed));
  const auto m = sim.run();
  EXPECT_GT(m.delivery_ratio(), 0.9);
}

TEST(Coexistence, ProposedBeatsNaiveAtLowWlanLoad) {
  // The paper: without enough WLAN traffic, uncoordinated backscatter
  // starves; the proposed MAC fills the gap with dummy packets.
  auto p = base_config(MacMode::Proposed);
  auto n = base_config(MacMode::Naive);
  p.wlan_rate_hz = n.wlan_rate_hz = 5.0;  // sparse carriers
  const auto mp = CoexistenceSimulator(p).run();
  const auto mn = CoexistenceSimulator(n).run();
  EXPECT_GT(mp.delivery_ratio(), mn.delivery_ratio() + 0.2);
}

TEST(Coexistence, ProposedUsesDummiesOnlyWhenNeeded) {
  auto low = base_config(MacMode::Proposed);
  low.wlan_rate_hz = 2.0;
  auto high = base_config(MacMode::Proposed);
  high.wlan_rate_hz = 400.0;
  const auto ml = CoexistenceSimulator(low).run();
  const auto mh = CoexistenceSimulator(high).run();
  EXPECT_GT(ml.dummy_airtime_fraction, mh.dummy_airtime_fraction);
}

TEST(Coexistence, NaiveCorruptsWlanMore) {
  auto p = base_config(MacMode::Proposed);
  auto n = base_config(MacMode::Naive);
  const auto mp = CoexistenceSimulator(p).run();
  const auto mn = CoexistenceSimulator(n).run();
  EXPECT_GT(mn.wlan_error_rate(), mp.wlan_error_rate());
}

TEST(Coexistence, NaiveCollidesWithManyDevices) {
  auto n = base_config(MacMode::Naive);
  n.num_devices = 20;
  const auto m = CoexistenceSimulator(n).run();
  EXPECT_GT(m.frames_collided, 0u);
}

TEST(Coexistence, DeterministicForSeed) {
  const auto m1 = CoexistenceSimulator(base_config(MacMode::Proposed)).run();
  const auto m2 = CoexistenceSimulator(base_config(MacMode::Proposed)).run();
  EXPECT_EQ(m1.frames_delivered, m2.frames_delivered);
  EXPECT_EQ(m1.wlan_delivered, m2.wlan_delivered);
  EXPECT_DOUBLE_EQ(m1.utilization, m2.utilization);
}

TEST(Coexistence, RejectsBadConfig) {
  auto cfg = base_config(MacMode::Proposed);
  cfg.num_devices = 0;
  EXPECT_THROW(CoexistenceSimulator{cfg}, Error);
  cfg = base_config(MacMode::Proposed);
  cfg.duration_s = 0.0;
  EXPECT_THROW(CoexistenceSimulator{cfg}, Error);
}

TEST(Coexistence, WlanGoodputScalesWithLoad) {
  auto lo = base_config(MacMode::Proposed);
  lo.wlan_rate_hz = 20.0;
  auto hi = base_config(MacMode::Proposed);
  hi.wlan_rate_hz = 200.0;
  const auto ml = CoexistenceSimulator(lo).run();
  const auto mh = CoexistenceSimulator(hi).run();
  EXPECT_GT(mh.wlan_goodput_bps, ml.wlan_goodput_bps * 2.0);
}

// Property sweep: delivery ratio stays within [0,1] and counters stay
// consistent across a grid of loads and fleet sizes, both modes.
struct CoexParam {
  MacMode mode;
  double rate;
  std::size_t devices;
};

class CoexistenceSweep : public ::testing::TestWithParam<CoexParam> {};

TEST_P(CoexistenceSweep, InvariantsHold) {
  const auto p = GetParam();
  CoexistenceConfig cfg;
  cfg.mode = p.mode;
  cfg.duration_s = 15.0;
  cfg.wlan_rate_hz = p.rate;
  cfg.num_devices = p.devices;
  cfg.seed = 1234;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_GE(m.delivery_ratio(), 0.0);
  EXPECT_LE(m.delivery_ratio(), 1.0);
  EXPECT_GE(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_LE(m.frames_delivered, m.frames_generated);
  EXPECT_GE(m.mean_latency_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoexistenceSweep,
    ::testing::Values(CoexParam{MacMode::Proposed, 2.0, 2},
                      CoexParam{MacMode::Proposed, 50.0, 8},
                      CoexParam{MacMode::Proposed, 500.0, 16},
                      CoexParam{MacMode::Naive, 2.0, 2},
                      CoexParam{MacMode::Naive, 50.0, 8},
                      CoexParam{MacMode::Naive, 500.0, 16}));

}  // namespace
}  // namespace zeiot::backscatter
