// Edge-case and robustness tests for the ML substrate beyond the happy
// paths of test_ml_*.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/network.hpp"
#include "ml/optimizer.hpp"
#include "ml/trainer.hpp"

namespace zeiot::ml {
namespace {

TEST(TrainerEdge, BatchLargerThanDataset) {
  Rng rng(1);
  Network net;
  net.emplace<Dense>(2, 2, rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(2));
  Dataset train;
  for (int i = 0; i < 5; ++i) {
    Tensor x({2}, static_cast<float>(i % 2));
    train.add(std::move(x), i % 2);
  }
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 64;  // larger than the 5 samples
  const auto hist = trainer.fit(train, train, cfg);
  EXPECT_EQ(hist.epochs.size(), 3u);
}

TEST(TrainerEdge, SingleSampleDataset) {
  Rng rng(3);
  Network net;
  net.emplace<Dense>(2, 2, rng);
  Adam opt(0.05);
  Trainer trainer(net, opt, Rng(4));
  Dataset train;
  train.add(Tensor({2}, 1.0f), 1);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 1;
  const auto hist = trainer.fit(train, train, cfg);
  EXPECT_DOUBLE_EQ(hist.best_val_accuracy, 1.0);  // memorises one sample
}

TEST(TrainerEdge, EmptyValidationSkipsEvaluation) {
  Rng rng(5);
  Network net;
  net.emplace<Dense>(2, 2, rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(6));
  Dataset train;
  for (int i = 0; i < 8; ++i) train.add(Tensor({2}, 0.5f), i % 2);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 4;
  const auto hist = trainer.fit(train, Dataset{}, cfg);
  for (const auto& e : hist.epochs) EXPECT_DOUBLE_EQ(e.val_accuracy, 0.0);
}

TEST(TrainerEdge, FitRejectsEmptyTrainingSet) {
  Rng rng(7);
  Network net;
  net.emplace<Dense>(2, 2, rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(8));
  TrainConfig cfg;
  EXPECT_THROW(trainer.fit(Dataset{}, Dataset{}, cfg), Error);
}

TEST(TrainerEdge, WeightsStayFiniteUnderAggressiveLr) {
  Rng rng(9);
  Network net;
  net.emplace<Dense>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 2, rng);
  Adam opt(0.5);  // aggressive but Adam-bounded steps
  Trainer trainer(net, opt, Rng(10));
  Dataset train;
  Rng drng(11);
  for (int i = 0; i < 64; ++i) {
    Tensor x({4});
    for (std::size_t j = 0; j < 4; ++j) {
      x[j] = static_cast<float>(drng.normal(0.0, 1.0));
    }
    train.add(std::move(x), i % 2);
  }
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 16;
  trainer.fit(train, {}, cfg);
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      EXPECT_TRUE(std::isfinite(p->value[i]));
    }
  }
}

TEST(OptimizerEdge, SgdZeroGradLeavesWeights) {
  Rng rng(12);
  Network net;
  net.emplace<Dense>(3, 3, rng);
  Sgd opt(0.1, 0.9, 0.0);
  net.zero_grads();
  const auto params = net.params();
  std::vector<float> before;
  for (std::size_t i = 0; i < params[0]->value.size(); ++i) {
    before.push_back(params[0]->value[i]);
  }
  opt.step(params);
  opt.step(params);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(params[0]->value[i], before[i]);
  }
}

TEST(OptimizerEdge, AdamConvergesOnQuadratic) {
  // Minimise (w - 3)^2 via gradient = 2(w - 3) fed manually.
  Param p;
  p.value = Tensor({1});
  p.value[0] = -5.0f;
  p.grad = Tensor({1});
  Adam opt(0.1);
  std::vector<Param*> params{&p};
  for (int it = 0; it < 500; ++it) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step(params);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05);
}

TEST(OptimizerEdge, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    Param p;
    p.value = Tensor({1});
    p.value[0] = 10.0f;
    p.grad = Tensor({1});
    Sgd opt(0.01, momentum);
    std::vector<Param*> params{&p};
    for (int it = 0; it < 50; ++it) {
      p.grad[0] = 2.0f * p.value[0];
      opt.step(params);
    }
    return std::abs(p.value[0]);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(DatasetEdge, BatchOfOne) {
  Dataset ds;
  ds.add(Tensor({1, 2, 2}, 3.0f), 1);
  auto [x, y] = ds.batch({0});
  EXPECT_EQ(x.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_EQ(y, (std::vector<int>{1}));
}

TEST(DatasetEdge, BatchRejectsOutOfRange) {
  Dataset ds;
  ds.add(Tensor({2}), 0);
  EXPECT_THROW(ds.batch({1}), Error);
  EXPECT_THROW(ds.batch({}), Error);
}

TEST(DatasetEdge, NumClassesOnEmpty) {
  Dataset ds;
  EXPECT_EQ(ds.num_classes(), 0);
  EXPECT_TRUE(ds.sample_shape().empty());
}

TEST(NetworkEdge, BackwardBeforeForwardThrows) {
  Rng rng(13);
  Network net;
  net.emplace<Dense>(2, 2, rng);
  Tensor g({1, 2}, 1.0f);
  EXPECT_THROW(net.backward(g), Error);
}

TEST(NetworkEdge, DifferentBatchSizesSequentially) {
  Rng rng(14);
  Network net;
  net.emplace<Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<Flatten>();
  net.emplace<Dense>(2 * 4 * 4, 2, rng);
  for (int n : {1, 4, 2, 8}) {
    Tensor x({n, 1, 4, 4}, 0.5f);
    const Tensor y = net.forward(x, false);
    EXPECT_EQ(y.dim(0), n);
  }
}

}  // namespace
}  // namespace zeiot::ml
