#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "phy/airtime.hpp"
#include "phy/beamforming.hpp"
#include "phy/csi_channel.hpp"

namespace zeiot::phy {
namespace {

TEST(Airtime, WlanFrame) {
  Dot11Phy p;
  // 1500 B at 54 Mbps = 222 us payload + 20 us preamble.
  EXPECT_NEAR(p.frame_airtime_s(1500), 20e-6 + 1500.0 * 8.0 / 54e6, 1e-9);
  EXPECT_GT(p.exchange_airtime_s(1500), p.frame_airtime_s(1500));
}

TEST(Airtime, ZigbeeMuchSlowerThanWlan) {
  Dot11Phy w;
  Dot154Phy z;
  EXPECT_GT(z.frame_airtime_s(100), 10.0 * w.frame_airtime_s(100));
}

TEST(Airtime, BackscatterSlowestOfAll) {
  Dot11Phy w;
  BackscatterPhy b;
  // The paper: backscatter is much slower than WLAN, so a backscatter
  // frame outlasts the WLAN packet that carries it.
  EXPECT_GT(b.frame_airtime_s(8), w.frame_airtime_s(1500));
}

CsiEnvironment small_env() {
  CsiEnvironment env;
  env.subcarriers = 8;  // keep the tests fast
  return env;
}

TEST(CsiChannel, ShapeMatchesEnvironment) {
  Rng rng(1);
  const auto env = small_env();
  const auto h = generate_csi(env, {4.0, 3.0}, 0.0, rng);
  EXPECT_EQ(h.subcarriers, env.subcarriers);
  EXPECT_EQ(h.rx, env.client_antennas);
  EXPECT_EQ(h.tx, env.ap_antennas);
  EXPECT_EQ(h.data.size(), static_cast<std::size_t>(8 * 3 * 4));
}

TEST(CsiChannel, BodyPositionChangesChannel) {
  Rng rng1(2), rng2(2);
  auto env = small_env();
  env.noise_sigma = 0.0;
  const auto h1 = generate_csi(env, {2.0, 2.0}, 0.0, rng1);
  const auto h2 = generate_csi(env, {6.0, 4.0}, 0.0, rng2);
  double diff = 0.0;
  for (std::size_t i = 0; i < h1.data.size(); ++i) {
    diff += std::abs(h1.data[i] - h2.data[i]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(CsiChannel, FrequencySelectivity) {
  Rng rng(3);
  auto env = small_env();
  env.noise_sigma = 0.0;
  const auto h = generate_csi(env, {4.0, 3.0}, 0.0, rng);
  // Multipath makes subcarriers differ.
  EXPECT_GT(std::abs(h.at(0, 0, 0) - h.at(7, 0, 0)), 1e-6);
}

TEST(CsiChannel, LosBlockageAttenuates) {
  Rng rng1(4), rng2(4);
  auto env = small_env();
  env.noise_sigma = 0.0;
  env.body_reflection = 0.0;  // isolate the blockage mechanism
  // Body directly on the AP-client line vs far away.
  const Point2D mid{(env.ap.x + env.client.x) / 2.0,
                    (env.ap.y + env.client.y) / 2.0};
  const auto blocked = generate_csi(env, mid, 0.0, rng1);
  const auto clear = generate_csi(env, {1.0, 5.5}, 0.0, rng2);
  double pb = 0.0, pc = 0.0;
  for (std::size_t i = 0; i < blocked.data.size(); ++i) {
    pb += std::norm(blocked.data[i]);
    pc += std::norm(clear.data[i]);
  }
  EXPECT_LT(pb, pc);
}

TEST(Beamforming, VColumnsOrthonormal) {
  Rng rng(5);
  const auto env = small_env();
  const auto h = generate_csi(env, {4.0, 3.0}, 0.0, rng);
  const auto v = beamforming_v(h, 0, 3);
  ASSERT_EQ(v.rows, 4);
  ASSERT_EQ(v.cols, 3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      Cx dot{0.0, 0.0};
      for (int r = 0; r < 4; ++r) dot += std::conj(v.at(r, a)) * v.at(r, b);
      if (a == b) {
        EXPECT_NEAR(std::abs(dot), 1.0, 1e-6);
      } else {
        EXPECT_NEAR(std::abs(dot), 0.0, 1e-4);
      }
    }
  }
}

TEST(Beamforming, GivensAngleCount) {
  Rng rng(6);
  const auto env = small_env();
  const auto h = generate_csi(env, {4.0, 3.0}, 0.0, rng);
  const auto v = beamforming_v(h, 0, 3);
  const auto angles = givens_angles(v);
  // 4x3: 2 * (3 + 2 + 1) = 12 angles.
  EXPECT_EQ(angles.size(), 12u);
}

TEST(Beamforming, AngleRanges) {
  Rng rng(7);
  const auto env = small_env();
  for (int k = 0; k < env.subcarriers; ++k) {
    const auto h = generate_csi(env, {3.0, 4.0}, 0.05, rng);
    const auto angles = givens_angles(beamforming_v(h, k, 3));
    // Column i contributes nphi phis then nphi psis, i = 0..2, nphi = 3-i.
    std::size_t idx = 0;
    for (int i = 0; i < 3; ++i) {
      const int nphi = 3 - i;
      for (int a = 0; a < nphi; ++a) {
        EXPECT_GE(angles[idx], 0.0);
        EXPECT_LT(angles[idx], 2.0 * M_PI + 1e-9);
        ++idx;
      }
      for (int a = 0; a < nphi; ++a) {
        EXPECT_GE(angles[idx], 0.0);
        EXPECT_LE(angles[idx], M_PI / 2.0 + 1e-9);
        ++idx;
      }
    }
  }
}

TEST(Beamforming, ReconstructionRoundtrip) {
  Rng rng(8);
  const auto env = small_env();
  const auto h = generate_csi(env, {5.0, 2.5}, 0.0, rng);
  const auto v = beamforming_v(h, 2, 3);
  const auto angles = givens_angles(v);
  const auto v2 = reconstruct_v(angles, 4, 3);
  // Compression discards a per-column phase: compare |v^H v2| per column.
  for (int c = 0; c < 3; ++c) {
    Cx dot{0.0, 0.0};
    for (int r = 0; r < 4; ++r) dot += std::conj(v.at(r, c)) * v2.at(r, c);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-6);
  }
}

TEST(Beamforming, ReconstructRejectsWrongCount) {
  EXPECT_THROW(reconstruct_v(std::vector<double>(5, 0.0), 4, 3), Error);
}

TEST(Beamforming, QuantizePhiBounds) {
  for (int bits : {5, 7, 9}) {
    for (double phi = 0.0; phi < 2.0 * M_PI; phi += 0.37) {
      const double q = quantize_phi(phi, bits);
      EXPECT_GE(q, 0.0);
      EXPECT_LT(q, 2.0 * M_PI);
      // Error bounded by half a step.
      EXPECT_LE(std::abs(q - phi), M_PI / std::pow(2.0, bits - 1));
    }
  }
}

TEST(Beamforming, QuantizePsiBounds) {
  for (int bits : {5, 7}) {
    for (double psi = 0.0; psi <= M_PI / 2.0; psi += 0.11) {
      const double q = quantize_psi(psi, bits);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, M_PI / 2.0);
      EXPECT_LE(std::abs(q - psi), M_PI / std::pow(2.0, bits + 1));
    }
  }
}

TEST(Beamforming, QuantizationIdempotent) {
  for (double phi = 0.1; phi < 6.2; phi += 0.41) {
    const double q = quantize_phi(phi, 7);
    EXPECT_NEAR(quantize_phi(q, 7), q, 1e-12);
  }
  for (double psi = 0.0; psi <= 1.57; psi += 0.13) {
    const double q = quantize_psi(psi, 5);
    EXPECT_NEAR(quantize_psi(q, 5), q, 1e-12);
  }
}

TEST(Beamforming, FeatureVectorIs624ForPaperConfig) {
  Rng rng(9);
  CsiEnvironment env;  // full 52 subcarriers, 4x3
  const auto h = generate_csi(env, {4.0, 3.0}, 0.0, rng);
  const auto f = compressed_feedback_features(h);
  EXPECT_EQ(f.size(), 624u);
}

TEST(Beamforming, FeaturesChangeWithBodyPosition) {
  Rng rng1(10), rng2(10);
  auto env = small_env();
  env.noise_sigma = 0.0;
  const auto f1 = compressed_feedback_features(
      generate_csi(env, {2.0, 2.0}, 0.0, rng1));
  const auto f2 = compressed_feedback_features(
      generate_csi(env, {6.0, 4.0}, 0.0, rng2));
  double diff = 0.0;
  for (std::size_t i = 0; i < f1.size(); ++i) diff += std::abs(f1[i] - f2[i]);
  EXPECT_GT(diff, 0.5);
}

}  // namespace
}  // namespace zeiot::phy
