#include "common/geometry.hpp"

#include <gtest/gtest.h>

namespace zeiot {
namespace {

TEST(Point2D, Arithmetic) {
  const Point2D a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point2D{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point2D{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point2D{2.0, 4.0}));
}

TEST(Point2D, Distance) {
  EXPECT_DOUBLE_EQ(distance(Point2D{0.0, 0.0}, Point2D{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Point2D{1.0, 1.0}, Point2D{1.0, 1.0}), 0.0);
}

TEST(Point3D, DistanceAndArithmetic) {
  EXPECT_DOUBLE_EQ(distance(Point3D{0.0, 0.0, 0.0}, Point3D{1.0, 2.0, 2.0}),
                   3.0);
  const Point3D a{1.0, 2.0, 3.0};
  const Point3D b = a + a;
  EXPECT_DOUBLE_EQ(b.z, 6.0);
  const Point3D c = (b - a) * 2.0;
  EXPECT_DOUBLE_EQ(c.x, 2.0);
}

TEST(Rect, DimsAndContains) {
  const Rect r{0.0, 0.0, 10.0, 5.0};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
  EXPECT_TRUE(r.contains({5.0, 2.5}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));   // closed low edge
  EXPECT_FALSE(r.contains({10.0, 2.0})); // open high edge
  EXPECT_FALSE(r.contains({-1.0, 2.0}));
  EXPECT_EQ(r.center(), (Point2D{5.0, 2.5}));
}

TEST(GridMapper, RejectsDegenerate) {
  EXPECT_THROW(GridMapper({0, 0, 0, 1}, 2, 2), Error);
  EXPECT_THROW(GridMapper({0, 0, 1, 1}, 0, 2), Error);
}

TEST(GridMapper, CellOfCorners) {
  GridMapper g({0.0, 0.0, 10.0, 10.0}, 5, 5);
  EXPECT_EQ(g.cell_of({0.1, 0.1}), (CellIndex{0, 0}));
  EXPECT_EQ(g.cell_of({9.9, 9.9}), (CellIndex{4, 4}));
  // Boundary points clamp into the grid.
  EXPECT_EQ(g.cell_of({10.0, 10.0}), (CellIndex{4, 4}));
  EXPECT_EQ(g.cell_of({-5.0, -5.0}), (CellIndex{0, 0}));
}

TEST(GridMapper, CellCenterRoundtrip) {
  GridMapper g({0.0, 0.0, 25.0, 17.0}, 25, 17);
  for (int y = 0; y < 17; ++y) {
    for (int x = 0; x < 25; ++x) {
      const CellIndex c{x, y};
      EXPECT_EQ(g.cell_of(g.cell_center(c)), c);
    }
  }
}

TEST(GridMapper, FlatIndexRowMajor) {
  GridMapper g({0.0, 0.0, 4.0, 4.0}, 4, 4);
  EXPECT_EQ(g.flat({0, 0}), 0u);
  EXPECT_EQ(g.flat({3, 0}), 3u);
  EXPECT_EQ(g.flat({0, 1}), 4u);
  EXPECT_EQ(g.flat({3, 3}), 15u);
}

TEST(GridMapper, FlatRejectsOutOfRange) {
  GridMapper g({0.0, 0.0, 4.0, 4.0}, 4, 4);
  EXPECT_THROW(g.flat({4, 0}), Error);
  EXPECT_THROW(g.cell_center({-1, 0}), Error);
}

}  // namespace
}  // namespace zeiot
