#include "mac/csma.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zeiot::mac {
namespace {

CsmaConfig base(std::size_t stations) {
  CsmaConfig cfg;
  cfg.num_stations = stations;
  cfg.seed = 42;
  return cfg;
}

TEST(Csma, RejectsBadConfig) {
  auto cfg = base(0);
  EXPECT_THROW(simulate_csma(cfg, 1000), Error);
  cfg = base(2);
  cfg.cw_min = 1;
  EXPECT_THROW(simulate_csma(cfg, 1000), Error);
  cfg = base(2);
  cfg.frame_slots = 0;
  EXPECT_THROW(simulate_csma(cfg, 1000), Error);
}

TEST(Csma, SingleStationNeverCollides) {
  const auto m = simulate_csma(base(1), 100000);
  EXPECT_EQ(m.collisions, 0u);
  EXPECT_GT(m.successes, 0u);
  EXPECT_DOUBLE_EQ(m.collision_probability, 0.0);
}

TEST(Csma, SingleStationThroughputNearOptimal) {
  // One saturated station only pays backoff overhead.
  const auto m = simulate_csma(base(1), 100000);
  EXPECT_GT(m.throughput, 0.7);
}

TEST(Csma, CollisionsGrowWithPopulation) {
  const auto m2 = simulate_csma(base(2), 200000);
  const auto m20 = simulate_csma(base(20), 200000);
  EXPECT_GT(m20.collision_probability, m2.collision_probability);
}

TEST(Csma, ThroughputDegradesUnderHeavyContention) {
  // The Bianchi-curve tail: throughput at 50 stations is below the
  // throughput at 5.
  const auto m5 = simulate_csma(base(5), 400000);
  const auto m50 = simulate_csma(base(50), 400000);
  EXPECT_LT(m50.throughput, m5.throughput);
}

TEST(Csma, SaturatedFairness) {
  auto cfg = base(8);
  const auto m = simulate_csma(cfg, 400000);
  EXPECT_GT(m.jain_fairness(), 0.9);
}

TEST(Csma, UnsaturatedLowLoadIsCollisionLight) {
  auto cfg = base(10);
  cfg.saturated = false;
  cfg.arrival_per_slot = 0.0005;
  const auto m = simulate_csma(cfg, 400000);
  EXPECT_LT(m.collision_probability, 0.1);
}

TEST(Csma, DropsOnlyUnderContention) {
  const auto m1 = simulate_csma(base(1), 200000);
  EXPECT_EQ(m1.drops, 0u);
  auto heavy = base(60);
  heavy.max_retries = 2;
  const auto mh = simulate_csma(heavy, 200000);
  EXPECT_GT(mh.drops, 0u);
}

TEST(Csma, DeterministicForSeed) {
  const auto a = simulate_csma(base(10), 100000);
  const auto b = simulate_csma(base(10), 100000);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(Csma, MetricsConsistency) {
  const auto m = simulate_csma(base(10), 100000);
  EXPECT_GE(m.slots_simulated, 100000u);
  EXPECT_GE(m.throughput, 0.0);
  EXPECT_LE(m.throughput, 1.0);
  std::size_t sum = 0;
  for (std::size_t s : m.per_station_successes) sum += s;
  EXPECT_EQ(sum, m.successes);
}

TEST(Csma, JainFairnessBounds) {
  CsmaMetrics m;
  m.per_station_successes = {10, 10, 10};
  EXPECT_DOUBLE_EQ(m.jain_fairness(), 1.0);
  m.per_station_successes = {30, 0, 0};
  EXPECT_NEAR(m.jain_fairness(), 1.0 / 3.0, 1e-12);
}

// Property sweep: invariants hold across populations.
class CsmaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CsmaSweep, InvariantsHold) {
  const auto m = simulate_csma(base(GetParam()), 150000);
  EXPECT_GE(m.collision_probability, 0.0);
  EXPECT_LE(m.collision_probability, 1.0);
  EXPECT_GE(m.throughput, 0.0);
  EXPECT_LE(m.throughput, 1.0);
  EXPECT_GE(m.jain_fairness(), 0.0);
  EXPECT_LE(m.jain_fairness(), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Populations, CsmaSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace zeiot::mac
