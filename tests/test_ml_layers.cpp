#include "ml/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/loss.hpp"

namespace zeiot::ml {
namespace {

// ---------------------------------------------------------------- helpers --

/// Numerical gradient check for a layer: compares dL/dx and dL/dparams
/// against central finite differences of L = sum(forward(x) * seed).
void check_gradients(Layer& layer, Tensor x, double tol = 2e-2) {
  Rng rng(99);
  Tensor y = layer.forward(x, /*train=*/false);
  Tensor seed = Tensor::zeros_like(y);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    seed[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  auto loss_of = [&](const Tensor& out) {
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      l += static_cast<double>(out[i]) * static_cast<double>(seed[i]);
    }
    return l;
  };

  for (Param* p : layer.params()) p->grad.fill(0.0f);
  const Tensor grad_x = layer.backward(seed);

  const float eps = 1e-2f;
  // Input gradient.
  int checked = 0;
  for (std::size_t i = 0; i < x.size() && checked < 40; i += x.size() / 37 + 1) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of(layer.forward(x, false));
    x[i] = orig - eps;
    const double lm = loss_of(layer.forward(x, false));
    x[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_x[i], num, tol * std::max(1.0, std::abs(num)))
        << "input grad mismatch at " << i;
    ++checked;
  }
  layer.forward(x, false);  // restore cache

  // Parameter gradients.
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size();
         i += p->value.size() / 23 + 1) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = loss_of(layer.forward(x, false));
      p->value[i] = orig - eps;
      const double lm = loss_of(layer.forward(x, false));
      p->value[i] = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::abs(num)))
          << "param grad mismatch at " << i;
    }
    layer.forward(x, false);
  }
}

Tensor random_input(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

// ----------------------------------------------------------------- Conv2D --

TEST(Conv2D, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2D conv(1, 1, 1, 0, rng);
  conv.params()[0]->value[0] = 1.0f;  // 1x1 kernel = identity
  conv.params()[1]->value[0] = 0.0f;
  Tensor x = random_input({1, 1, 3, 3}, 2);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, KnownSumKernel) {
  Rng rng(1);
  Conv2D conv(1, 1, 3, 0, rng);
  for (std::size_t i = 0; i < 9; ++i) conv.params()[0]->value[i] = 1.0f;
  conv.params()[1]->value[0] = 0.5f;
  Tensor x({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 9.5f);
}

TEST(Conv2D, PaddingPreservesSize) {
  Rng rng(1);
  Conv2D conv(2, 3, 3, 1, rng);
  Tensor x = random_input({2, 2, 5, 7}, 3);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3, 5, 7}));
}

TEST(Conv2D, OutputShapeHelperAgrees) {
  Rng rng(1);
  Conv2D conv(2, 4, 3, 1, rng);
  EXPECT_EQ(conv.output_shape({2, 8, 6}), (std::vector<int>{4, 8, 6}));
  EXPECT_THROW(conv.output_shape({3, 8, 6}), Error);
}

TEST(Conv2D, GradientCheck) {
  Rng rng(7);
  Conv2D conv(2, 3, 3, 1, rng);
  check_gradients(conv, random_input({2, 2, 4, 4}, 8));
}

TEST(Conv2D, GradientCheckNoPadding) {
  Rng rng(7);
  Conv2D conv(1, 2, 2, 0, rng);
  check_gradients(conv, random_input({1, 1, 4, 4}, 9));
}

TEST(Conv2D, RejectsChannelMismatch) {
  Rng rng(1);
  Conv2D conv(3, 2, 3, 1, rng);
  Tensor x = random_input({1, 2, 4, 4}, 3);
  EXPECT_THROW(conv.forward(x, false), Error);
}

// -------------------------------------------------------------- MaxPool2D --

TEST(MaxPool2D, PicksMaxima) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -2.0f;
  x[3] = 0.0f;
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -2.0f;
  x[3] = 0.0f;
  pool.forward(x, false);
  Tensor g({1, 1, 1, 1});
  g[0] = 2.5f;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 2.5f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool2D, FloorsOddDimensions) {
  MaxPool2D pool(2);
  Tensor x = random_input({1, 2, 5, 7}, 4);
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 2, 2, 3}));
}

TEST(MaxPool2D, GradientCheck) {
  MaxPool2D pool(2);
  check_gradients(pool, random_input({2, 2, 4, 4}, 10));
}

// ------------------------------------------------------------------- ReLU --

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -0.5f;
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor x({3});
  x[0] = -1.0f;
  x[1] = 1.0f;
  x[2] = 3.0f;
  relu.forward(x, false);
  Tensor g({3}, 1.0f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

// ---------------------------------------------------------------- Flatten --

TEST(Flatten, CollapsesAndRestores) {
  Flatten fl;
  Tensor x = random_input({2, 3, 4, 5}, 5);
  const Tensor y = fl.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 60}));
  const Tensor gx = fl.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

// ------------------------------------------------------------------ Dense --

TEST(Dense, KnownLinearMap) {
  Rng rng(1);
  Dense d(2, 1, rng);
  d.params()[0]->value[0] = 2.0f;  // w00
  d.params()[0]->value[1] = -1.0f; // w01
  d.params()[1]->value[0] = 0.5f;  // b0
  Tensor x({1, 2});
  x[0] = 3.0f;
  x[1] = 4.0f;
  const Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Dense, GradientCheck) {
  Rng rng(11);
  Dense d(6, 4, rng);
  check_gradients(d, random_input({3, 6}, 12));
}

TEST(Dense, RejectsFeatureMismatch) {
  Rng rng(1);
  Dense d(4, 2, rng);
  Tensor x = random_input({1, 5}, 1);
  EXPECT_THROW(d.forward(x, false), Error);
}

// ---------------------------------------------------------------- Dropout --

TEST(Dropout, InferencePassesThrough) {
  Rng rng(13);
  Dropout drop(0.5, rng);
  Tensor x = random_input({2, 8}, 14);
  const Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Rng rng(13);
  Dropout drop(0.5, rng);
  Tensor x({1, 1000}, 1.0f);
  const Tensor y = drop.forward(x, /*train=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1/(1-0.5)
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.12);  // expectation preserved
}

TEST(Dropout, RejectsBadP) {
  Rng rng(1);
  EXPECT_THROW(Dropout(1.0, rng), Error);
  EXPECT_THROW(Dropout(-0.1, rng), Error);
}

// ------------------------------------------------------------------- Loss --

TEST(Softmax, RowsSumToOne) {
  Tensor logits = random_input({4, 5}, 15);
  const Tensor p = softmax(logits);
  for (int b = 0; b < 4; ++b) {
    double s = 0.0;
    for (int k = 0; k < 5; ++k) s += p.at({b, k});
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000.0f;
  logits[1] = 1001.0f;
  logits[2] = 999.0f;
  const Tensor p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits({2, 2});
  logits.at({0, 0}) = 10.0f;
  logits.at({0, 1}) = -10.0f;
  logits.at({1, 0}) = -10.0f;
  logits.at({1, 1}) = 10.0f;
  const auto r = softmax_cross_entropy(logits, {0, 1});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits({1, 4}, 0.0f);
  const auto r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, GradientMatchesNumerical) {
  Rng rng(16);
  Tensor logits = random_input({3, 4}, 17);
  const std::vector<int> labels{1, 3, 0};
  const auto r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double lp = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const double lm = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad[i], (lp - lm) / (2.0 * eps), 1e-3);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3}, 0.0f);
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), Error);
}

}  // namespace
}  // namespace zeiot::ml
