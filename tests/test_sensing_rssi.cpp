#include <gtest/gtest.h>

#include <cmath>

#include "sensing/rssi/choco.hpp"
#include "sensing/rssi/room_count.hpp"
#include "sensing/rssi/train_car.hpp"

namespace zeiot::sensing::rssi {
namespace {

// -------------------------------------------------------------- Train car --

TrainConfig fast_train() {
  TrainConfig cfg;
  return cfg;
}

TEST(TrainSim, ScenarioShapesConsistent) {
  Rng rng(1);
  const auto sc = simulate_trip(
      fast_train(), {Congestion::Low, Congestion::Medium, Congestion::High},
      rng);
  EXPECT_EQ(sc.people_per_car.size(), 3u);
  EXPECT_EQ(sc.user_positions.size(), sc.user_car.size());
  EXPECT_EQ(sc.user_ref_rssi.size(), sc.user_positions.size());
  EXPECT_EQ(sc.ref_positions.size(), static_cast<std::size_t>(fast_train().refs_per_car * 3));
  for (const auto& row : sc.user_user_rssi) {
    EXPECT_EQ(row.size(), sc.user_positions.size());
  }
}

TEST(TrainSim, CongestionDrivesHeadcount) {
  Rng rng(2);
  const auto sc = simulate_trip(
      fast_train(), {Congestion::Low, Congestion::Medium, Congestion::High},
      rng);
  EXPECT_LT(sc.people_per_car[0], sc.people_per_car[1]);
  EXPECT_LT(sc.people_per_car[1], sc.people_per_car[2]);
}

TEST(TrainSim, RssiSymmetric) {
  Rng rng(3);
  const auto sc = simulate_trip(
      fast_train(), {Congestion::Medium, Congestion::Medium,
                     Congestion::Medium},
      rng);
  for (std::size_t a = 0; a < sc.user_user_rssi.size(); ++a) {
    for (std::size_t b = 0; b < sc.user_user_rssi.size(); ++b) {
      EXPECT_DOUBLE_EQ(sc.user_user_rssi[a][b], sc.user_user_rssi[b][a]);
    }
  }
}

TEST(TrainSim, DoorsAttenuateAcrossCars) {
  // Same-car links must on average be stronger than links crossing two
  // doors, despite body attenuation noise.
  Rng rng(4);
  const auto cfg = fast_train();
  const auto sc = simulate_trip(
      cfg, {Congestion::Low, Congestion::Low, Congestion::Low}, rng);
  double same = 0.0, cross = 0.0;
  int ns = 0, nc = 0;
  for (std::size_t a = 0; a < sc.user_positions.size(); ++a) {
    for (std::size_t b = a + 1; b < sc.user_positions.size(); ++b) {
      if (sc.user_car[a] == sc.user_car[b]) {
        same += sc.user_user_rssi[a][b];
        ++ns;
      } else if (std::abs(sc.user_car[a] - sc.user_car[b]) == 2) {
        cross += sc.user_user_rssi[a][b];
        ++nc;
      }
    }
  }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nc, 0);
  EXPECT_GT(same / ns, cross / nc + cfg.door_loss_db);
}

TEST(TrainSim, RejectsWrongLevelCount) {
  Rng rng(5);
  EXPECT_THROW(simulate_trip(fast_train(), {Congestion::Low}, rng), Error);
}

TEST(TrainPosition, BeatsChanceClearly) {
  Rng rng(6);
  const auto cfg = fast_train();
  std::size_t correct = 0, total = 0;
  for (int t = 0; t < 10; ++t) {
    const auto sc = simulate_trip(
        cfg, {Congestion::Medium, Congestion::Medium, Congestion::Medium},
        rng);
    const auto pos = estimate_positions(cfg, sc);
    for (std::size_t u = 0; u < pos.size(); ++u) {
      ++total;
      if (pos[u].car == sc.user_car[u]) ++correct;
      EXPECT_GE(pos[u].confidence, 0.0);
      EXPECT_LE(pos[u].confidence, 1.0 + 1e-9);
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

TEST(TrainPipeline, ReachesPaperBallpark) {
  Rng rng(7);
  const auto res = evaluate_train_pipeline(fast_train(), 12, 25, rng);
  // Paper: 83% car-level positioning, F-measure 0.82 for 3-level
  // congestion.  Accept a generous band around those.
  EXPECT_GT(res.position_accuracy, 0.7);
  EXPECT_GT(res.congestion_macro_f1, 0.6);
}

TEST(TrainEstimator, RequiresTraining) {
  CongestionEstimator est(fast_train());
  Rng rng(8);
  const auto sc = simulate_trip(
      fast_train(), {Congestion::Low, Congestion::Low, Congestion::Low}, rng);
  const auto pos = estimate_positions(fast_train(), sc);
  EXPECT_THROW(est.estimate(sc, pos), Error);
}

// ------------------------------------------------------------- Room count --

RoomConfig fast_room() {
  RoomConfig cfg;
  cfg.max_people = 6;
  return cfg;
}

TEST(RoomSim, MeasurementShapes) {
  Rng rng(10);
  const auto cfg = fast_room();
  const auto m = measure_room(cfg, 3, rng);
  EXPECT_EQ(m.true_count, 3);
  EXPECT_EQ(m.inter_node_rssi.size(),
            static_cast<std::size_t>(cfg.num_nodes * (cfg.num_nodes - 1) / 2));
  EXPECT_EQ(m.surrounding_rssi.size(),
            static_cast<std::size_t>(cfg.num_nodes));
}

TEST(RoomSim, MorePeopleMoreAttenuation) {
  const auto cfg = fast_room();
  const auto base = empty_baseline(cfg);
  Rng rng(11);
  double dev0 = 0.0, dev6 = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto m0 = measure_room(cfg, 0, rng);
    const auto m6 = measure_room(cfg, 6, rng);
    for (std::size_t i = 0; i < base.size(); ++i) {
      dev0 += base[i] - m0.inter_node_rssi[i];
      dev6 += base[i] - m6.inter_node_rssi[i];
    }
  }
  EXPECT_GT(dev6, dev0);
}

TEST(RoomSim, MorePeopleMoreSurroundingPower) {
  const auto cfg = fast_room();
  Rng rng(12);
  double s0 = 0.0, s6 = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    for (double v : measure_room(cfg, 0, rng).surrounding_rssi) s0 += v;
    for (double v : measure_room(cfg, 6, rng).surrounding_rssi) s6 += v;
  }
  EXPECT_GT(s6, s0);
}

TEST(RoomEstimator, FeaturesHaveFixedArity) {
  const auto cfg = fast_room();
  RoomCountEstimator est(cfg);
  Rng rng(13);
  const auto f = est.features(measure_room(cfg, 2, rng));
  EXPECT_EQ(f.size(), 8u);
}

TEST(RoomPipeline, ErrorsBoundedLikePaper) {
  // Paper: ~79% exact accuracy with errors up to two people.
  Rng rng(14);
  const auto res = evaluate_room_pipeline(fast_room(), 30, 10, rng);
  EXPECT_GT(res.exact_accuracy, 0.45);
  EXPECT_GT(res.within_two_accuracy, 0.9);
  EXPECT_LT(res.mean_absolute_error, 1.5);
}

TEST(RoomEstimator, RequiresTraining) {
  const auto cfg = fast_room();
  RoomCountEstimator est(cfg);
  Rng rng(15);
  EXPECT_THROW(est.estimate(measure_room(cfg, 1, rng)), Error);
}

TEST(RoomSim, RejectsNegativePeople) {
  Rng rng(16);
  EXPECT_THROW(measure_room(fast_room(), -1, rng), Error);
}

// ------------------------------------------------------------------ Choco --

TEST(Choco, LineNetworkFloodsInOrder) {
  // 0 - 1 - 2 - 3 chain.
  const std::vector<std::vector<int>> adj{{1}, {0, 2}, {1, 3}, {2}};
  const auto r = run_flood(adj, 0);
  EXPECT_EQ(r.reception_slot, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.flood_slots, 4);  // 3 + 1 retransmission
  EXPECT_GT(r.round_duration_s, 0.0);
  EXPECT_NEAR(r.max_skew_s, 3 * 1.5e-3, 1e-12);
}

TEST(Choco, StarNetworkOneHop) {
  const std::vector<std::vector<int>> adj{{1, 2, 3}, {0}, {0}, {0}};
  const auto r = run_flood(adj, 0);
  EXPECT_EQ(r.reception_slot[1], 1);
  EXPECT_EQ(r.reception_slot[2], 1);
  EXPECT_EQ(r.reception_slot[3], 1);
}

TEST(Choco, UnreachableNodesFlagged) {
  const std::vector<std::vector<int>> adj{{1}, {0}, {}};
  const auto r = run_flood(adj, 0);
  EXPECT_EQ(r.reception_slot[2], -1);
}

TEST(Choco, ConnectivityGraphByRange) {
  const std::vector<Point2D> nodes{{0.0, 0.0}, {1.0, 0.0}, {5.0, 0.0}};
  const auto adj = connectivity_graph(nodes, 1.5);
  EXPECT_EQ(adj[0], (std::vector<int>{1}));
  EXPECT_EQ(adj[1], (std::vector<int>{0}));
  EXPECT_TRUE(adj[2].empty());
}

TEST(Choco, RejectsBadInputs) {
  EXPECT_THROW(run_flood({}, 0), Error);
  EXPECT_THROW(run_flood({{0}}, 5), Error);
  EXPECT_THROW(connectivity_graph({{0.0, 0.0}}, 0.0), Error);
}

TEST(Choco, RoundCoversGridDeployment) {
  // A perimeter deployment like the room simulator's must flood fully.
  RoomConfig cfg;
  std::vector<Point2D> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back({static_cast<double>(i), 0.0});
  }
  const auto adj = connectivity_graph(nodes, 1.2);
  const auto r = run_flood(adj, 3);
  for (int slot : r.reception_slot) EXPECT_GE(slot, 0);
}

}  // namespace
}  // namespace zeiot::sensing::rssi
