#include "common/confusion.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zeiot {
namespace {

TEST(Confusion, RejectsZeroClasses) {
  EXPECT_THROW(ConfusionMatrix(0), Error);
}

TEST(Confusion, RejectsOutOfRangeLabels) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), Error);
  EXPECT_THROW(cm.add(0, 2), Error);
}

TEST(Confusion, PerfectPredictions) {
  ConfusionMatrix cm(3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) cm.add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.mean_absolute_error(), 0.0);
}

TEST(Confusion, KnownMixture) {
  ConfusionMatrix cm(2);
  // 8 true positives, 2 false negatives, 1 false positive, 9 true negatives
  for (int i = 0; i < 8; ++i) cm.add(1, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 0);
  for (int i = 0; i < 1; ++i) cm.add(0, 1);
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 8.0 / 10.0);
  const double f1 = 2.0 * (8.0 / 9.0) * 0.8 / (8.0 / 9.0 + 0.8);
  EXPECT_NEAR(cm.f1(1), f1, 1e-12);
}

TEST(Confusion, EmptyClassHasZeroScores) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(Confusion, AccuracyWithinTolerance) {
  ConfusionMatrix cm(5);
  cm.add(2, 2);  // exact
  cm.add(2, 3);  // off by one
  cm.add(2, 4);  // off by two
  cm.add(0, 4);  // off by four
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.25);
  EXPECT_DOUBLE_EQ(cm.accuracy_within(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.accuracy_within(2), 0.75);
  EXPECT_DOUBLE_EQ(cm.accuracy_within(4), 1.0);
}

TEST(Confusion, MeanAbsoluteError) {
  ConfusionMatrix cm(5);
  cm.add(2, 2);
  cm.add(2, 4);
  EXPECT_DOUBLE_EQ(cm.mean_absolute_error(), 1.0);
}

TEST(Confusion, CountsAccessible) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  cm.add(0, 1);
  EXPECT_EQ(cm.count(0, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 0u);
  EXPECT_EQ(cm.total(), 2u);
}

TEST(Confusion, EmptyMatrixScoresZero) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy_within(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.mean_absolute_error(), 0.0);
}

TEST(Confusion, PrintDoesNotThrow) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  std::ostringstream os;
  cm.print(os, {"neg", "pos"});
  EXPECT_NE(os.str().find("accuracy"), std::string::npos);
  EXPECT_NE(os.str().find("neg"), std::string::npos);
}

}  // namespace
}  // namespace zeiot
