#include "microdeep/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "microdeep/comm_cost.hpp"

namespace zeiot::microdeep {
namespace {

const Rect kArea{0.0, 0.0, 10.0, 10.0};

ml::Network make_cnn(Rng& rng, int in_ch, int grid) {
  ml::Network net;
  net.emplace<ml::Conv2D>(in_ch, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * (grid / 2) * (grid / 2), 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);
  return net;
}

ml::Tensor random_sample(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  ml::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// The executor's dataflow must reproduce the tensor-level forward pass
/// exactly — this is the deep validation of the unit graph structure.
void expect_matches_network(ml::Network& net, const std::vector<int>& shape,
                            const Assignment& a, const UnitGraph& g,
                            const WsnTopology& wsn, std::uint64_t seed) {
  const ml::Tensor sample = random_sample(shape, seed);
  std::vector<int> batched = shape;
  batched.insert(batched.begin(), 1);
  const ml::Tensor expected =
      net.forward(sample.reshape(batched), /*train=*/false);
  const auto result = execute_distributed(net, g, a, wsn, sample);
  ASSERT_EQ(result.output.shape(), expected.shape());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(result.output[i], expected[i], 1e-3)
        << "logit " << i << " diverges";
  }
}

TEST(Executor, MatchesNetworkForwardNearest) {
  Rng rng(1);
  ml::Network net = make_cnn(rng, 2, 6);
  const auto g = UnitGraph::build(net, {2, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  expect_matches_network(net, {2, 6, 6}, a, g, wsn, 11);
}

TEST(Executor, MatchesNetworkForwardCentralized) {
  Rng rng(2);
  ml::Network net = make_cnn(rng, 1, 8);
  const auto g = UnitGraph::build(net, {1, 8, 8});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_centralized(g, wsn, 7);
  expect_matches_network(net, {1, 8, 8}, a, g, wsn, 12);
}

TEST(Executor, MatchesNetworkForwardHeuristic) {
  Rng rng(3);
  ml::Network net = make_cnn(rng, 3, 6);
  const auto g = UnitGraph::build(net, {3, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 5, 5);
  const auto a = assign_balanced_heuristic(g, wsn);
  expect_matches_network(net, {3, 6, 6}, a, g, wsn, 13);
}

TEST(Executor, MatchesAcrossManySamples) {
  Rng rng(4);
  ml::Network net = make_cnn(rng, 2, 6);
  const auto g = UnitGraph::build(net, {2, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    expect_matches_network(net, {2, 6, 6}, a, g, wsn, seed);
  }
}

TEST(Executor, MessageCountMatchesCostModel) {
  Rng rng(5);
  ml::Network net = make_cnn(rng, 1, 6);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  const auto result =
      execute_distributed(net, g, a, wsn, random_sample({1, 6, 6}, 31));
  CommCostOptions opts;
  opts.include_backward = false;
  opts.aggregate_dense = false;  // the executor counts unicast messages
  const auto cost = compute_comm_cost(a, wsn, opts);
  EXPECT_DOUBLE_EQ(result.total_messages, cost.total_messages);
}

TEST(Executor, CentralizedSinkSerializesCompute) {
  Rng rng(6);
  ml::Network net_a = make_cnn(rng, 1, 8);
  ml::Network net_b = make_cnn(rng, 1, 8);
  const auto ga = UnitGraph::build(net_a, {1, 8, 8});
  const auto gb = UnitGraph::build(net_b, {1, 8, 8});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto central = assign_centralized(ga, wsn, 5);
  const auto spread = assign_nearest(gb, wsn);
  const auto sample = random_sample({1, 8, 8}, 41);
  // Compute-bound regime (slow MCUs, fast radio): the sink's serial
  // execution of every unit dominates, and spreading parallelises it.
  LatencyModel compute_bound;
  compute_bound.hop_latency_s = 0.5e-3;
  compute_bound.unit_compute_s = 1e-3;
  const auto rc =
      execute_distributed(net_a, ga, central, wsn, sample, compute_bound);
  const auto rs =
      execute_distributed(net_b, gb, spread, wsn, sample, compute_bound);
  EXPECT_GT(rc.inference_latency_s, rs.inference_latency_s);
}

TEST(Executor, LatencyScalesWithHopLatency) {
  Rng rng(7);
  ml::Network net = make_cnn(rng, 1, 6);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  const auto sample = random_sample({1, 6, 6}, 51);
  LatencyModel slow;
  slow.hop_latency_s = 10e-3;
  LatencyModel fast;
  fast.hop_latency_s = 0.5e-3;
  const auto rs = execute_distributed(net, g, a, wsn, sample, slow);
  const auto rf = execute_distributed(net, g, a, wsn, sample, fast);
  EXPECT_GT(rs.inference_latency_s, rf.inference_latency_s);
}

TEST(Executor, ZeroLatencyModelStillComputes) {
  Rng rng(8);
  ml::Network net = make_cnn(rng, 1, 6);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  LatencyModel zero;
  zero.hop_latency_s = 0.0;
  zero.unit_compute_s = 0.0;
  const auto r =
      execute_distributed(net, g, a, wsn, random_sample({1, 6, 6}, 61), zero);
  EXPECT_DOUBLE_EQ(r.inference_latency_s, 0.0);
}

TEST(Executor, RejectsWrongSampleShape) {
  Rng rng(9);
  ml::Network net = make_cnn(rng, 1, 6);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  EXPECT_THROW(
      execute_distributed(net, g, a, wsn, random_sample({1, 5, 6}, 71)),
      Error);
}

}  // namespace
}  // namespace zeiot::microdeep
