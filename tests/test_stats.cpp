#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace zeiot {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 2.0);
}

TEST(Histogram, QuantileEmptyReturnsLow) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, PercentileMatchesQuantile) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_DOUBLE_EQ(h.percentile(50.0), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(h.percentile(95.0), h.quantile(0.95));
  EXPECT_DOUBLE_EQ(h.percentile(99.0), h.quantile(0.99));
  EXPECT_NEAR(h.percentile(50.0), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(95.0), 95.0, 2.0);
}

TEST(Histogram, PercentileBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.quantile(1.0));
  EXPECT_THROW(h.percentile(-1.0), Error);
  EXPECT_THROW(h.percentile(100.5), Error);
}

TEST(Histogram, QuantileEdgesSkipEmptyLeadingAndTrailingBins) {
  // One sample in the middle bin: q=0 must report the low edge of the
  // first *occupied* bin (not lo_) and q=1 the high edge of the last
  // occupied bin (not hi_).
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);  // bin 5: [5, 6)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);  // uniform mass inside the bin
}

TEST(Histogram, QuantileSingleBucketInterpolatesLinearly) {
  Histogram h(2.0, 4.0, 1);
  h.add(3.0);
  h.add(3.5);
  // All mass in the only bin: q maps linearly across [lo, hi].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileNeverInterpolatesIntoEmptyBins) {
  // Bimodal: one sample in bin 0, one in bin 9, bins 1-8 empty.  Every
  // quantile must land inside an occupied bin — never in the (1, 9) gap.
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);   // high edge of bin 0
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 9.5);  // halfway through bin 9
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  for (double q : {0.1, 0.3, 0.5, 0.6, 0.8, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(v <= 1.0 || v >= 9.0) << "q=" << q << " -> " << v;
  }
}

TEST(Histogram, QuantileEmptyHistogramAllEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.37), 2.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(1.0);
  a.add(2.5);
  b.add(2.5);
  b.add(9.9);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin_count(1), 1u);
  EXPECT_EQ(a.bin_count(2), 2u);
  EXPECT_EQ(a.bin_count(9), 1u);
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 5);
  Histogram c(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(b), Error);
  EXPECT_THROW(a.merge(c), Error);
}

TEST(ExactQuantile, ExactValues) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.25), 2.0);
}

TEST(ExactQuantile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.75), 7.5);
}

TEST(ExactQuantile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(exact_quantile({}, 0.5), Error);
  EXPECT_THROW(exact_quantile({1.0}, 1.5), Error);
}

// exact_percentile takes p in [0,100] — the same contract split as
// Histogram::quantile vs Histogram::percentile, so the two families can no
// longer be confused by argument range.
TEST(ExactPercentile, MatchesQuantileContract) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(exact_percentile(v, 50.0), exact_quantile(v, 0.5));
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 100.0), 5.0);
  EXPECT_THROW(exact_percentile(v, 100.5), Error);
  EXPECT_THROW(exact_percentile(v, -1.0), Error);
}

// Hand-computed p50/p99 regression pins for both conventions over the
// population 1..100 (interpolating: pos = q*(n-1); nearest-rank:
// idx = llround(q*(n-1))).
TEST(ExactPercentile, HandComputedP50P99) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  // Interpolating: p50 -> pos 49.5 -> (50 + 51)/2; p99 -> pos 98.01 ->
  // 99 * 0.99 + 100 * 0.01.
  EXPECT_DOUBLE_EQ(exact_percentile(v, 50.0), 50.5);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 99.0), 99.01);
  // Nearest-rank (netexec/fleet/obs_report convention): p50 ->
  // llround(49.5) = 50 (half-up) -> v[50] = 51; p99 -> llround(98.01) =
  // 98 -> v[98] = 99.
  EXPECT_DOUBLE_EQ(nearest_rank_quantile(v, 0.50), 51.0);
  EXPECT_DOUBLE_EQ(nearest_rank_quantile(v, 0.99), 99.0);
}

TEST(NearestRankQuantile, EdgesAndEmpty) {
  EXPECT_DOUBLE_EQ(nearest_rank_quantile({}, 0.5), 0.0);  // defined zero
  EXPECT_DOUBLE_EQ(nearest_rank_quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(nearest_rank_quantile({7.0}, 1.0), 7.0);
  // Two samples: q=0.5 -> llround(0.5) = 1 (half-up), the upper one —
  // matching tools/obs_report.py's pinned percentile([1,2], 0.5) == 2.
  EXPECT_DOUBLE_EQ(nearest_rank_quantile({1.0, 2.0}, 0.5), 2.0);
  EXPECT_THROW(nearest_rank_quantile({1.0}, 1.5), Error);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace zeiot
