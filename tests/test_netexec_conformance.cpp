// Differential conformance suite: NetworkExecutor (network-in-the-loop)
// against the ideal MicroDeep executor.
//
// The load-bearing contract: over a zero-loss/zero-latency channel the
// event-driven execution must reproduce execute_distributed bit-for-bit —
// identical logits, identical logical message count, and an identical
// MicroDeepHop trace multiset (canonical digest) — on randomized
// topologies and assignments.  Lossy channels must be deterministic per
// seed, and raising the loss probability must never reduce the number of
// retransmissions (keyed-substream monotone coupling).
#include "netexec/netexec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <tuple>

#include "microdeep/executor.hpp"
#include "par/thread_pool.hpp"

namespace zeiot::netexec {
namespace {

using microdeep::Assignment;
using microdeep::UnitGraph;
using microdeep::WsnTopology;

const Rect kArea{0.0, 0.0, 10.0, 10.0};

ml::Network make_cnn(Rng& rng, int in_ch, int grid) {
  ml::Network net;
  net.emplace<ml::Conv2D>(in_ch, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * (grid / 2) * (grid / 2), 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);
  return net;
}

ml::Tensor random_sample(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  ml::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Conformance channel: no loss, no latency, no compute time.
NetExecConfig ideal_config() {
  NetExecConfig cfg;
  cfg.channel = ChannelConfig::ideal();
  cfg.unit_compute_s = 0.0;
  return cfg;
}

/// MicroDeepHop events only (netexec additionally traces per-hop
/// PacketTx/PacketRx, which the ideal executor does not model), sorted
/// into canonical order so the two executors' event interleavings compare
/// as multisets.
std::vector<obs::TraceEvent> hop_events(const obs::Observability& o) {
  std::vector<obs::TraceEvent> evs;
  for (const obs::TraceEvent& e : o.trace().snapshot()) {
    if (e.type == obs::TraceType::MicroDeepHop) evs.push_back(e);
  }
  std::sort(evs.begin(), evs.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return std::tie(a.t, a.a, a.b, a.value) <
                     std::tie(b.t, b.a, b.b, b.value);
            });
  return evs;
}

/// FNV-1a over the canonical event list (bit-exact field encoding, the
/// TraceRecorder::digest convention applied to the sorted view).
std::uint64_t canonical_digest(const std::vector<obs::TraceEvent>& evs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  for (const obs::TraceEvent& e : evs) {
    mix(&e.t, sizeof(e.t));
    const auto ty = static_cast<std::uint8_t>(e.type);
    mix(&ty, sizeof(ty));
    mix(&e.a, sizeof(e.a));
    mix(&e.b, sizeof(e.b));
    mix(&e.value, sizeof(e.value));
  }
  return h;
}

void expect_bitwise_equal(const ml::Tensor& a, const ml::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float fa = a[i], fb = b[i];
    std::uint32_t ba = 0, bb = 0;
    std::memcpy(&ba, &fa, sizeof(ba));
    std::memcpy(&bb, &fb, sizeof(bb));
    EXPECT_EQ(ba, bb) << "logit " << i << " diverges bitwise: " << a[i]
                      << " vs " << b[i];
  }
}

struct Scenario {
  ml::Network net;
  UnitGraph graph;
  WsnTopology wsn;
  Assignment assignment;
  std::vector<int> shape;
};

/// Randomized topology + assignment drawn from one seed.
Scenario make_scenario(std::uint64_t seed) {
  Rng rng(seed);
  const int in_ch = static_cast<int>(rng.uniform_int(1, 3));
  const int grid = rng.bernoulli(0.5) ? 6 : 8;
  ml::Network net = make_cnn(rng, in_ch, grid);
  UnitGraph graph = UnitGraph::build(net, {in_ch, grid, grid});
  const int topo = static_cast<int>(rng.uniform_int(0, 2));
  WsnTopology wsn =
      topo == 0   ? WsnTopology::grid(kArea, 4, 4)
      : topo == 1 ? WsnTopology::jittered_grid(kArea, 4, 4, rng)
                  : WsnTopology::random_uniform(kArea, 16, rng);
  const int kind = static_cast<int>(rng.uniform_int(0, 2));
  Assignment assignment =
      kind == 0 ? microdeep::assign_nearest(graph, wsn)
      : kind == 1
          ? microdeep::assign_centralized(
                graph, wsn,
                static_cast<microdeep::NodeId>(
                    rng.uniform_int(0, static_cast<std::int64_t>(
                                           wsn.num_nodes()) - 1)))
          : microdeep::assign_balanced_heuristic(graph, wsn);
  return {std::move(net), std::move(graph), std::move(wsn),
          std::move(assignment), std::vector<int>{in_ch, grid, grid}};
}

TEST(NetexecConformance, IdealChannelBitMatchesExecutorRandomized) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario s = make_scenario(seed);
    const ml::Tensor sample = random_sample(s.shape, 100 + seed);

    obs::Observability ideal_obs(1 << 16);
    microdeep::LatencyModel zero;
    zero.hop_latency_s = 0.0;
    zero.unit_compute_s = 0.0;
    const auto ref = execute_distributed(s.net, s.graph, s.assignment, s.wsn,
                                         sample, zero, &ideal_obs);

    obs::Observability net_obs(1 << 16);
    NetExecConfig cfg = ideal_config();
    cfg.obs = &net_obs;
    NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
    const auto got = exec.run(sample);

    expect_bitwise_equal(got.output, ref.output);
    EXPECT_EQ(static_cast<double>(got.messages), ref.total_messages)
        << "seed " << seed;
    EXPECT_FALSE(got.degraded);
    EXPECT_EQ(got.frames_lost, 0u);
    EXPECT_EQ(got.retransmissions, 0u);

    const auto ref_hops = hop_events(ideal_obs);
    const auto got_hops = hop_events(net_obs);
    ASSERT_EQ(ref_hops.size(), got_hops.size()) << "seed " << seed;
    EXPECT_EQ(ref_hops, got_hops) << "seed " << seed;
    EXPECT_EQ(canonical_digest(ref_hops), canonical_digest(got_hops))
        << "seed " << seed;
  }
}

TEST(NetexecConformance, LosslessRealTimingStillBitMatchesOutputs) {
  // With zero loss the consumers always wait for complete inputs, so the
  // logits must stay bit-identical even under real airtime, per-node
  // radio/CPU serialization, and nonzero compute time.
  Scenario s = make_scenario(3);
  const ml::Tensor sample = random_sample(s.shape, 42);
  const auto ref =
      execute_distributed(s.net, s.graph, s.assignment, s.wsn, sample);

  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, NetExecConfig{});
  const auto got = exec.run(sample);
  expect_bitwise_equal(got.output, ref.output);
  EXPECT_GT(got.latency_s, 0.0);
  EXPECT_GT(got.energy_j, 0.0);
  EXPECT_FALSE(got.degraded);
}

TEST(NetexecConformance, EvaluateBitIdenticalAcrossThreadCounts) {
  Scenario s = make_scenario(5);
  ml::Dataset data;
  for (std::uint64_t i = 0; i < 12; ++i) {
    data.add(random_sample(s.shape, 200 + i), static_cast<int>(i % 2));
  }
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.1;
  cfg.max_retries = 64;
  cfg.seed = 7;

  NetworkExecutor a(s.net, s.graph, s.assignment, s.wsn, cfg);
  NetworkExecutor b(s.net, s.graph, s.assignment, s.wsn, cfg);
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const auto ra = a.evaluate(data, &one);
  const auto rb = b.evaluate(data, &four);

  EXPECT_EQ(ra.accuracy, rb.accuracy);
  EXPECT_EQ(ra.p50_latency_s, rb.p50_latency_s);
  EXPECT_EQ(ra.p99_latency_s, rb.p99_latency_s);
  EXPECT_EQ(ra.mean_energy_j, rb.mean_energy_j);
  EXPECT_EQ(ra.mean_retransmissions, rb.mean_retransmissions);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_EQ(ra.frames_lost, rb.frames_lost);
}

TEST(NetexecConformance, EvaluateZeroSamplesReturnsDefinedZeros) {
  Scenario s = make_scenario(5);
  obs::Observability o;
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.1;
  cfg.seed = 7;
  cfg.obs = &o;
  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);

  // An empty dataset must aggregate to defined zeros — no division by the
  // sample count, no percentile over an empty population, no indexing.
  const NetEvalResult r = exec.evaluate(ml::Dataset{});
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.accuracy, 0.0);
  EXPECT_EQ(r.p50_latency_s, 0.0);
  EXPECT_EQ(r.p99_latency_s, 0.0);
  EXPECT_EQ(r.mean_energy_j, 0.0);
  EXPECT_EQ(r.degraded_fraction, 0.0);
  EXPECT_EQ(r.mean_retransmissions, 0.0);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.frames_lost, 0u);
  EXPECT_TRUE(r.latencies_s.empty());
  EXPECT_EQ(r.p50_breakdown.compute_s, 0.0);
  EXPECT_EQ(r.p99_breakdown.idle_s, 0.0);
  // The sample counter exists (at zero) so dashboards see the eval ran.
  EXPECT_TRUE(o.metrics().has("netexec.eval.samples"));
  EXPECT_EQ(o.metrics().counter_value("netexec.eval.samples"), 0.0);

  // A subsequent non-empty evaluate on the same executor still works.
  ml::Dataset data;
  data.add(random_sample(s.shape, 321), 0);
  const NetEvalResult r2 = exec.evaluate(data);
  EXPECT_EQ(r2.samples, 1u);
}

/// Lossy evaluate() with spans on: returns the populated context so tests
/// can inspect the merged span stream.
std::unique_ptr<obs::Observability> spanning_evaluate(Scenario& s,
                                                      const ml::Dataset& data,
                                                      par::ThreadPool* pool) {
  auto o = std::make_unique<obs::Observability>();
  o->enable_spans(1 << 16);
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.1;
  cfg.max_retries = 64;
  cfg.seed = 7;
  cfg.obs = o.get();
  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
  (void)exec.evaluate(data, pool);
  return o;
}

TEST(NetexecConformance, EvaluateSpanDigestIdenticalAcrossThreadCounts) {
  Scenario s = make_scenario(5);
  ml::Dataset data;
  for (std::uint64_t i = 0; i < 12; ++i) {
    data.add(random_sample(s.shape, 200 + i), static_cast<int>(i % 2));
  }
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const auto oa = spanning_evaluate(s, data, &one);
  const auto ob = spanning_evaluate(s, data, &four);
  const auto oa2 = spanning_evaluate(s, data, &one);  // double-run identity

  ASSERT_GT(oa->spans().size(), 0u);
  EXPECT_EQ(oa->spans().dropped(), 0u);
  EXPECT_EQ(ob->spans().dropped(), 0u);
  // One root Inference span per sample, at any thread count.
  EXPECT_EQ(oa->spans().root_count(), data.size());
  EXPECT_EQ(ob->spans().root_count(), data.size());
  // The merged span stream — not just aggregates — is bit-identical across
  // thread counts and across reruns.
  EXPECT_EQ(oa->spans().digest(), ob->spans().digest());
  EXPECT_EQ(oa->spans().digest(), oa2->spans().digest());
  ASSERT_EQ(oa->spans().size(), ob->spans().size());
  for (std::size_t i = 0; i < oa->spans().size(); ++i) {
    ASSERT_EQ(oa->spans().at(i), ob->spans().at(i)) << "span " << i;
  }
}

TEST(NetexecConformance, SpanPhasesTileEveryRootSpan) {
  // Per-inference latency attribution: each root Inference span carries
  // exactly four Phase* children whose durations sum to the root duration
  // within one virtual tick (1 us), and whose values mirror the
  // NetInferenceResult::breakdown the executor reports.
  Scenario s = make_scenario(5);
  ml::Dataset data;
  for (std::uint64_t i = 0; i < 6; ++i) {
    data.add(random_sample(s.shape, 300 + i), static_cast<int>(i % 2));
  }
  obs::Observability o;
  o.enable_spans(1 << 16);
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.15;  // force retries so retry/idle show up
  cfg.seed = 11;
  cfg.obs = &o;
  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
  (void)exec.evaluate(data, nullptr);

  const obs::SpanRecorder& spans = o.spans();
  std::size_t roots_checked = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanEvent& root = spans.at(i);
    if (root.parent != 0) continue;
    ASSERT_EQ(root.kind, obs::SpanKind::Inference);
    double phase_sum = 0.0;
    int phase_count = 0;
    for (std::size_t j = 0; j < spans.size(); ++j) {
      const obs::SpanEvent& c = spans.at(j);
      if (c.parent != root.id) continue;
      if (c.kind == obs::SpanKind::PhaseCompute ||
          c.kind == obs::SpanKind::PhaseAirtime ||
          c.kind == obs::SpanKind::PhaseRetry ||
          c.kind == obs::SpanKind::PhaseIdle) {
        phase_sum += c.duration();
        ++phase_count;
        // Phase children never extend past the root interval.
        EXPECT_GE(c.t0, root.t0 - 1e-12);
        EXPECT_LE(c.t1, root.t1 + 1e-12);
      }
    }
    EXPECT_EQ(phase_count, 4) << "root " << root.id;
    EXPECT_NEAR(phase_sum, root.duration(), 1e-6) << "root " << root.id;
    ++roots_checked;
  }
  EXPECT_EQ(roots_checked, data.size());
}

TEST(NetexecConformance, RunBreakdownMatchesLatencyAndRetries) {
  // The always-on breakdown (no spans needed) partitions the latency.
  Scenario s = make_scenario(3);
  const ml::Tensor sample = random_sample(s.shape, 42);
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.2;
  cfg.seed = 13;
  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
  const auto got = exec.run(sample);
  EXPECT_NEAR(got.breakdown.total_s(), got.latency_s, 1e-6);
  EXPECT_GT(got.breakdown.compute_s, 0.0);
  EXPECT_GT(got.breakdown.airtime_s, 0.0);
  if (got.retransmissions > 0) {
    EXPECT_GT(got.breakdown.retry_s + got.breakdown.idle_s, 0.0);
  }
}

TEST(NetexecConformance, LossyRunsAreSeedDeterministic) {
  Scenario s = make_scenario(6);
  const ml::Tensor sample = random_sample(s.shape, 77);
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.3;
  cfg.max_retries = 2;  // force real losses and substitutions
  cfg.seed = 99;

  auto once = [&]() {
    obs::Observability o(1 << 16);
    NetExecConfig c = cfg;
    c.obs = &o;
    NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, c);
    auto r = exec.run(sample);
    return std::make_tuple(std::move(r), o.trace().digest());
  };
  auto [r1, d1] = once();
  auto [r2, d2] = once();

  expect_bitwise_equal(r1.output, r2.output);
  EXPECT_EQ(d1, d2) << "same-seed lossy runs must produce identical traces";
  EXPECT_EQ(r1.transmissions, r2.transmissions);
  EXPECT_EQ(r1.retransmissions, r2.retransmissions);
  EXPECT_EQ(r1.frames_lost, r2.frames_lost);
  EXPECT_EQ(r1.substitutions, r2.substitutions);
  EXPECT_EQ(r1.degraded, r2.degraded);
  EXPECT_GT(r1.retransmissions, 0u);
}

TEST(NetexecConformance, MoreLossNeverFewerRetransmissions) {
  Scenario s = make_scenario(7);
  const ml::Tensor sample = random_sample(s.shape, 88);
  // max_retries is set high enough that no frame is ever abandoned at
  // these loss levels (asserted below): every frame then traverses its
  // full route, and the keyed coupling makes per-hop retry counts a
  // monotone function of the loss probability.
  const double levels[] = {0.0, 0.02, 0.1, 0.25};
  std::uint64_t prev = 0;
  bool first = true;
  for (const double p : levels) {
    NetExecConfig cfg;
    cfg.channel.loss_per_hop = p;
    cfg.max_retries = 64;
    cfg.seed = 4242;
    NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
    std::uint64_t retrans = 0;
    for (int i = 0; i < 3; ++i) {
      const auto r = exec.run(sample);
      ASSERT_EQ(r.frames_lost, 0u) << "loss " << p;
      ASSERT_FALSE(r.degraded) << "loss " << p;
      retrans += r.retransmissions;
    }
    if (!first) {
      EXPECT_GE(retrans, prev) << "loss " << p;
    }
    first = false;
    prev = retrans;
  }
  EXPECT_GT(prev, 0u) << "highest loss level should retransmit";
}

TEST(NetexecConformance, HeavyLossDegradesButTerminates) {
  Scenario s = make_scenario(8);
  const ml::Tensor sample = random_sample(s.shape, 123);
  NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.9;
  cfg.max_retries = 0;  // nearly every cross-node activation is lost
  cfg.seed = 11;
  NetworkExecutor exec(s.net, s.graph, s.assignment, s.wsn, cfg);
  const auto r = exec.run(sample);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.substitutions, 0u);
  EXPECT_GT(r.frames_lost, 0u);
  ASSERT_EQ(r.output.size(), 2u);  // the event loop drained and emitted
}

TEST(NetexecConformance, LastKnownMemorySubstitutesAcrossInferences) {
  // Centralized assignment: every non-input unit on the sink, so the only
  // cross-node traffic is input activations flowing in.  Under heavy loss
  // the cold sink substitutes zeros; but after one inference the
  // last-known memory holds every input unit's *true* activation (inputs
  // are always valid at their sensing node), so the second inference on
  // the same sample — substituted or delivered alike — feeds the sink
  // exact values and must reproduce the ideal logits bit-for-bit while
  // still being flagged degraded.
  Rng rng(21);
  ml::Network net = make_cnn(rng, 2, 6);
  UnitGraph graph = UnitGraph::build(net, {2, 6, 6});
  WsnTopology wsn = WsnTopology::grid(kArea, 4, 4);
  Assignment assignment = microdeep::assign_centralized(graph, wsn, 9);
  const ml::Tensor sample = random_sample({2, 6, 6}, 55);

  microdeep::LatencyModel zero;
  zero.hop_latency_s = 0.0;
  zero.unit_compute_s = 0.0;
  const auto ideal =
      execute_distributed(net, graph, assignment, wsn, sample, zero);

  NetExecConfig lossy;
  lossy.channel.loss_per_hop = 0.9;
  lossy.max_retries = 0;
  lossy.seed = 5;
  NetworkExecutor exec(net, graph, assignment, wsn, lossy);

  const auto first = exec.run(sample);
  EXPECT_TRUE(first.degraded);
  EXPECT_GT(first.substitutions, 0u);

  const auto second = exec.run(sample);
  EXPECT_TRUE(second.degraded);  // frames are still lost...
  expect_bitwise_equal(second.output, ideal.output);  // ...values are not

  // reset_memory() returns the executor to the cold zero-substitute state.
  exec.reset_memory();
  const auto third = exec.run(sample);
  EXPECT_TRUE(third.degraded);
}

}  // namespace
}  // namespace zeiot::netexec
