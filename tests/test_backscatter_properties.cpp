// Additional coexistence properties: the proposed MAC's qualitative
// guarantees across the operating envelope, and scheduler stress cases.
#include <gtest/gtest.h>

#include "backscatter/coexistence.hpp"

namespace zeiot::backscatter {
namespace {

CoexistenceConfig cfg_for(double rate, std::size_t devices, double period,
                          MacMode mode) {
  CoexistenceConfig cfg;
  cfg.mode = mode;
  cfg.duration_s = 20.0;
  cfg.wlan_rate_hz = rate;
  cfg.num_devices = devices;
  cfg.device_period_s = period;
  cfg.seed = 2025;
  return cfg;
}

TEST(CoexistenceProps, ProposedLatencyBoundedByCycle) {
  // A delivered frame is always delivered within its own cycle, so the
  // mean latency can never exceed the period.
  for (double rate : {3.0, 30.0, 300.0}) {
    const auto m =
        CoexistenceSimulator(cfg_for(rate, 6, 1.0, MacMode::Proposed)).run();
    EXPECT_LE(m.mean_latency_s, 1.0 + 1e-9) << "rate " << rate;
  }
}

TEST(CoexistenceProps, ProposedNeverCollides) {
  // Grants are exclusive: the only backscatter losses are noise, never
  // tag-vs-tag collisions; collision counter only carries noise losses,
  // bounded by noise_per fraction of grants.
  auto cfg = cfg_for(50.0, 16, 0.5, MacMode::Proposed);
  cfg.backscatter_noise_per = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_EQ(m.frames_collided, 0u);
}

TEST(CoexistenceProps, ZeroNoiseProposedDeliversEverythingFeasible) {
  auto cfg = cfg_for(100.0, 4, 1.0, MacMode::Proposed);
  cfg.backscatter_noise_per = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_GT(m.delivery_ratio(), 0.98);
  EXPECT_EQ(m.frames_expired, 0u);
}

TEST(CoexistenceProps, ShorterCyclesRaiseDummyOverheadAtLowLoad) {
  auto slow = cfg_for(2.0, 6, 4.0, MacMode::Proposed);
  auto fast = cfg_for(2.0, 6, 0.25, MacMode::Proposed);
  const auto ms = CoexistenceSimulator(slow).run();
  const auto mf = CoexistenceSimulator(fast).run();
  // 16x the demand with the same scarce WLAN carriers: the AP must inject
  // more dummy airtime.
  EXPECT_GT(mf.dummy_airtime_fraction, ms.dummy_airtime_fraction);
}

TEST(CoexistenceProps, NoWlanTrafficAtAll) {
  // Pure-dummy operation: the MAC must still serve every cycle.
  auto cfg = cfg_for(50.0, 6, 1.0, MacMode::Proposed);
  cfg.wlan_rate_hz = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_EQ(m.wlan_offered, 0u);
  EXPECT_GT(m.delivery_ratio(), 0.9);
  EXPECT_GT(m.dummy_airtime_fraction, 0.0);
}

TEST(CoexistenceProps, NaiveStarvesWithoutCarriers) {
  auto cfg = cfg_for(50.0, 6, 1.0, MacMode::Naive);
  cfg.wlan_rate_hz = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
}

TEST(CoexistenceProps, SeedChangesTrajectoriesButNotInvariants) {
  auto a = cfg_for(40.0, 8, 1.0, MacMode::Naive);
  auto b = a;
  b.seed = 777;
  const auto ma = CoexistenceSimulator(a).run();
  const auto mb = CoexistenceSimulator(b).run();
  EXPECT_NE(ma.frames_delivered, mb.frames_delivered);
  for (const auto& m : {ma, mb}) {
    EXPECT_LE(m.frames_delivered + m.frames_expired, m.frames_generated);
  }
}

TEST(CoexistenceProps, UtilizationGrowsWithEverything) {
  const auto quiet =
      CoexistenceSimulator(cfg_for(5.0, 2, 2.0, MacMode::Proposed)).run();
  const auto busy =
      CoexistenceSimulator(cfg_for(500.0, 16, 0.25, MacMode::Proposed)).run();
  EXPECT_GT(busy.utilization, quiet.utilization);
}

// ---- MAC-scheduling properties audited from the channel occupancy log ----

std::vector<mac::Transmission> entries_of_kind(const mac::Channel& ch,
                                               const std::string& kind) {
  std::vector<mac::Transmission> out;
  for (const mac::Transmission& t : ch.log()) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

bool overlaps(const mac::Transmission& a, const mac::Transmission& b) {
  return a.start < b.end && b.start < a.end;
}

TEST(CoexistenceProps, ProposedGrantsAreMutuallyExclusiveWindows) {
  // The AP grants exactly one device per carrier opportunity, so no two
  // backscatter windows may ever overlap — a tag-vs-tag overlap would be
  // exactly the collision regime the proposed MAC eliminates.
  for (double rate : {2.0, 50.0, 400.0}) {
    CoexistenceSimulator sim(cfg_for(rate, 10, 0.5, MacMode::Proposed));
    sim.run();
    const auto grants = entries_of_kind(sim.channel(), "backscatter");
    ASSERT_FALSE(grants.empty()) << "rate " << rate;
    for (std::size_t i = 1; i < grants.size(); ++i) {
      EXPECT_GE(grants[i].start, grants[i - 1].end - 1e-12)
          << "rate " << rate << ": grants " << i - 1 << " and " << i
          << " overlap";
    }
  }
}

TEST(CoexistenceProps, EveryGrantIsCoveredByCarrierAirtime) {
  // Ambient backscatter cannot transmit without a carrier: every granted
  // window must lie inside the union of WLAN and dummy carrier intervals
  // (the dummy-tail extension exists precisely to close this gap).
  CoexistenceSimulator sim(cfg_for(30.0, 8, 1.0, MacMode::Proposed));
  sim.run();
  const auto& log = sim.channel().log();
  std::vector<mac::Transmission> carriers;
  for (const auto& t : log) {
    if (t.kind == "wlan" || t.kind == "dummy") carriers.push_back(t);
  }
  // Merge carrier intervals (log is start-ordered).
  std::vector<std::pair<double, double>> merged;
  for (const auto& c : carriers) {
    if (!merged.empty() && c.start <= merged.back().second + 1e-12) {
      merged.back().second = std::max(merged.back().second, c.end);
    } else {
      merged.emplace_back(c.start, c.end);
    }
  }
  const auto grants = entries_of_kind(sim.channel(), "backscatter");
  ASSERT_FALSE(grants.empty());
  for (const auto& g : grants) {
    const bool covered =
        std::any_of(merged.begin(), merged.end(), [&](const auto& m) {
          return m.first <= g.start + 1e-12 && g.end <= m.second + 1e-12;
        });
    EXPECT_TRUE(covered) << "grant [" << g.start << ", " << g.end
                         << ") has no carrier under it";
  }
}

TEST(CoexistenceProps, EveryDeviceMeetsItsAcquisitionCycle) {
  // With zero noise and feasible capacity, every registered device must be
  // granted (and deliver) once per acquisition cycle — at least
  // floor(horizon / period) - 1 times per device over the horizon (the -1
  // absorbs the random cycle phase).
  auto cfg = cfg_for(50.0, 6, 1.0, MacMode::Proposed);
  cfg.backscatter_noise_per = 0.0;
  CoexistenceSimulator sim(cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.frames_expired, 0u);
  const auto grants = entries_of_kind(sim.channel(), "backscatter");
  std::vector<std::size_t> per_device(cfg.num_devices, 0);
  for (const auto& g : grants) {
    ASSERT_GE(g.source, 1u);  // backscatter sources are device id + 1
    ASSERT_LE(g.source, cfg.num_devices);
    ++per_device[g.source - 1];
  }
  const auto floor_cycles = static_cast<std::size_t>(
      cfg.duration_s / cfg.device_period_s);
  for (std::size_t d = 0; d < cfg.num_devices; ++d) {
    EXPECT_GE(per_device[d], floor_cycles - 1)
        << "device " << d << " missed acquisition cycles";
  }
}

TEST(CoexistenceProps, DummyCarriersNeverOverlapWlanPackets) {
  // Dummy carriers are gap fillers: the AP injects one only when the
  // channel is free (WLAN traffic below what the deadlines need), so no
  // dummy interval may overlap a WLAN exchange.
  for (double rate : {2.0, 50.0, 300.0}) {
    CoexistenceSimulator sim(cfg_for(rate, 8, 0.5, MacMode::Proposed));
    sim.run();
    const auto wlan = entries_of_kind(sim.channel(), "wlan");
    const auto dummy = entries_of_kind(sim.channel(), "dummy");
    for (const auto& d : dummy) {
      for (const auto& w : wlan) {
        EXPECT_FALSE(overlaps(d, w))
            << "rate " << rate << ": dummy [" << d.start << ", " << d.end
            << ") overlaps wlan [" << w.start << ", " << w.end << ")";
      }
    }
  }
}

TEST(CoexistenceProps, DummyInjectionOnlyFiresWhenWlanTrafficIsScarce) {
  // Abundant WLAN carriers satisfy the cycles for free; the dummy airtime
  // the AP spends must shrink as offered WLAN load grows, and be strictly
  // positive when carriers are scarce.
  auto scarce = cfg_for(1.0, 6, 0.5, MacMode::Proposed);
  auto plentiful = cfg_for(400.0, 6, 0.5, MacMode::Proposed);
  const auto ms = CoexistenceSimulator(scarce).run();
  const auto mp = CoexistenceSimulator(plentiful).run();
  EXPECT_GT(ms.dummy_airtime_fraction, 0.0);
  EXPECT_LT(mp.dummy_airtime_fraction, ms.dummy_airtime_fraction);
}

}  // namespace
}  // namespace zeiot::backscatter
