// Additional coexistence properties: the proposed MAC's qualitative
// guarantees across the operating envelope, and scheduler stress cases.
#include <gtest/gtest.h>

#include "backscatter/coexistence.hpp"

namespace zeiot::backscatter {
namespace {

CoexistenceConfig cfg_for(double rate, std::size_t devices, double period,
                          MacMode mode) {
  CoexistenceConfig cfg;
  cfg.mode = mode;
  cfg.duration_s = 20.0;
  cfg.wlan_rate_hz = rate;
  cfg.num_devices = devices;
  cfg.device_period_s = period;
  cfg.seed = 2025;
  return cfg;
}

TEST(CoexistenceProps, ProposedLatencyBoundedByCycle) {
  // A delivered frame is always delivered within its own cycle, so the
  // mean latency can never exceed the period.
  for (double rate : {3.0, 30.0, 300.0}) {
    const auto m =
        CoexistenceSimulator(cfg_for(rate, 6, 1.0, MacMode::Proposed)).run();
    EXPECT_LE(m.mean_latency_s, 1.0 + 1e-9) << "rate " << rate;
  }
}

TEST(CoexistenceProps, ProposedNeverCollides) {
  // Grants are exclusive: the only backscatter losses are noise, never
  // tag-vs-tag collisions; collision counter only carries noise losses,
  // bounded by noise_per fraction of grants.
  auto cfg = cfg_for(50.0, 16, 0.5, MacMode::Proposed);
  cfg.backscatter_noise_per = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_EQ(m.frames_collided, 0u);
}

TEST(CoexistenceProps, ZeroNoiseProposedDeliversEverythingFeasible) {
  auto cfg = cfg_for(100.0, 4, 1.0, MacMode::Proposed);
  cfg.backscatter_noise_per = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_GT(m.delivery_ratio(), 0.98);
  EXPECT_EQ(m.frames_expired, 0u);
}

TEST(CoexistenceProps, ShorterCyclesRaiseDummyOverheadAtLowLoad) {
  auto slow = cfg_for(2.0, 6, 4.0, MacMode::Proposed);
  auto fast = cfg_for(2.0, 6, 0.25, MacMode::Proposed);
  const auto ms = CoexistenceSimulator(slow).run();
  const auto mf = CoexistenceSimulator(fast).run();
  // 16x the demand with the same scarce WLAN carriers: the AP must inject
  // more dummy airtime.
  EXPECT_GT(mf.dummy_airtime_fraction, ms.dummy_airtime_fraction);
}

TEST(CoexistenceProps, NoWlanTrafficAtAll) {
  // Pure-dummy operation: the MAC must still serve every cycle.
  auto cfg = cfg_for(50.0, 6, 1.0, MacMode::Proposed);
  cfg.wlan_rate_hz = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_EQ(m.wlan_offered, 0u);
  EXPECT_GT(m.delivery_ratio(), 0.9);
  EXPECT_GT(m.dummy_airtime_fraction, 0.0);
}

TEST(CoexistenceProps, NaiveStarvesWithoutCarriers) {
  auto cfg = cfg_for(50.0, 6, 1.0, MacMode::Naive);
  cfg.wlan_rate_hz = 0.0;
  const auto m = CoexistenceSimulator(cfg).run();
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
}

TEST(CoexistenceProps, SeedChangesTrajectoriesButNotInvariants) {
  auto a = cfg_for(40.0, 8, 1.0, MacMode::Naive);
  auto b = a;
  b.seed = 777;
  const auto ma = CoexistenceSimulator(a).run();
  const auto mb = CoexistenceSimulator(b).run();
  EXPECT_NE(ma.frames_delivered, mb.frames_delivered);
  for (const auto& m : {ma, mb}) {
    EXPECT_LE(m.frames_delivered + m.frames_expired, m.frames_generated);
  }
}

TEST(CoexistenceProps, UtilizationGrowsWithEverything) {
  const auto quiet =
      CoexistenceSimulator(cfg_for(5.0, 2, 2.0, MacMode::Proposed)).run();
  const auto busy =
      CoexistenceSimulator(cfg_for(500.0, 16, 0.25, MacMode::Proposed)).run();
  EXPECT_GT(busy.utilization, quiet.utilization);
}

}  // namespace
}  // namespace zeiot::backscatter
