// Harvest-aware intermittent execution in netexec: NVM checkpoint codec
// (round-trip + adversarial corruption), brownout suspend/resume with
// bit-identical completion, harvest-driven deferral determinism, NVM
// budget enforcement in both search_assignment and the executor, and the
// checkpoint energy-accounting contract shared with energy/intermittent_task.
//
// Everything here is seeded; a failing property case names the seed needed
// to replay it (mirroring tests/test_ml_serialize_fuzz.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/error.hpp"
#include "energy/intermittent_task.hpp"
#include "fault/injector.hpp"
#include "microdeep/memory.hpp"
#include "microdeep/search.hpp"
#include "netexec/checkpoint.hpp"
#include "netexec/netexec.hpp"
#include "par/thread_pool.hpp"

namespace zeiot {
namespace {

ml::Network make_net(std::uint64_t seed = 41) {
  Rng rng(seed);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);
  return net;
}

/// Non-movable bundle: the assignment keeps a pointer into `graph`, so the
/// members are built in place behind one stable address (the same contract
/// the fleet templates document).
struct Scenario {
  Scenario()
      : net(make_net()),
        graph(microdeep::UnitGraph::build(net, {1, 6, 6})),
        wsn(microdeep::WsnTopology::grid({0.0, 0.0, 10.0, 10.0}, 4, 4)),
        assignment(microdeep::assign_nearest(graph, wsn)) {}
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  ml::Network net;
  microdeep::UnitGraph graph;
  microdeep::WsnTopology wsn;
  microdeep::Assignment assignment;
};

ml::Tensor make_sample(std::uint64_t seed = 7) {
  Rng rng(seed);
  ml::Tensor s({1, 6, 6});
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return s;
}

void expect_bitwise_equal(const ml::Tensor& a, const ml::Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float fa = a[i];
    const float fb = b[i];
    std::uint32_t ba = 0;
    std::uint32_t bb = 0;
    std::memcpy(&ba, &fa, sizeof(ba));
    std::memcpy(&bb, &fb, sizeof(bb));
    EXPECT_EQ(ba, bb) << "logit " << i << " differs in bits";
  }
}

/// Whole-cell supply failure: every node browns out inside [t0, t0 + dur).
fault::FaultPlan all_node_brownout(double t0, double dur) {
  return fault::FaultPlan(
      {fault::FaultEvent{t0, fault::FaultType::Brownout, fault::kAllTargets,
                         dur, 1.0}});
}

// -- Brownout suspend/resume ----------------------------------------------

TEST(IntermittentExec, BrownoutResumeBitIdenticalEveryUnit) {
  // A 50 ms all-node brownout lands at 1 ms — input frames are in flight,
  // the first unit layers are committed, the rest is not.  With per-unit
  // checkpoints the inference must suspend, resume from NVM at revival,
  // and produce logits bit-identical to the uninterrupted run: correct,
  // just late.
  Scenario sc;
  const auto sample = make_sample();

  netexec::NetExecConfig base;
  base.checkpoint.policy = netexec::CheckpointPolicy::EveryUnit;
  base.seed = 77;

  netexec::NetworkExecutor clean(sc.net, sc.graph, sc.assignment, sc.wsn,
                                 base);
  const auto ref = clean.run(sample);
  ASSERT_FALSE(ref.degraded);
  EXPECT_EQ(ref.resumes, 0u);
  EXPECT_EQ(ref.suspensions, 0u);
  EXPECT_GT(ref.checkpoints, 0u) << "EveryUnit commits even without faults";

  auto faulted_run = [&] {
    fault::FaultInjector inj(all_node_brownout(1e-3, 50e-3));
    netexec::NetExecConfig cfg = base;
    cfg.fault = &inj;
    netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn,
                                  cfg);
    return exec.run(sample);
  };

  const auto r1 = faulted_run();
  expect_bitwise_equal(r1.output, ref.output);
  EXPECT_FALSE(r1.degraded);
  EXPECT_EQ(r1.substitutions, 0u);
  EXPECT_GT(r1.suspensions, 0u);
  EXPECT_GT(r1.resumes, 0u);
  EXPECT_GE(r1.checkpoints, ref.checkpoints);
  EXPECT_GT(r1.latency_s, ref.latency_s)
      << "a browned-out round cannot finish as fast as the clean one";
  EXPECT_GE(r1.latency_s, 51e-3)
      << "completion must wait for the revival at 51 ms";

  // Same plan, same seed, fresh executor: the whole realization replays.
  const auto r2 = faulted_run();
  expect_bitwise_equal(r2.output, r1.output);
  EXPECT_EQ(r2.latency_s, r1.latency_s);
  EXPECT_EQ(r2.checkpoints, r1.checkpoints);
  EXPECT_EQ(r2.checkpoint_bytes, r1.checkpoint_bytes);
  EXPECT_EQ(r2.resumes, r1.resumes);
  EXPECT_EQ(r2.suspensions, r1.suspensions);
}

TEST(IntermittentExec, BrownoutResumeBitIdenticalEnergyAdaptive) {
  // EnergyAdaptive with a comfortably charged capacitor commits only the
  // unrecoverable state (inputs + inbox); compute outputs stay volatile
  // and must be RE-COMPUTED after the brownout — the resumed values ground
  // on durable inputs, so the logits still match bit for bit.
  Scenario sc;
  const auto sample = make_sample(11);

  netexec::NetExecConfig base;
  base.checkpoint.policy = netexec::CheckpointPolicy::EnergyAdaptive;
  base.harvest.enabled = true;
  base.harvest.initial_j = 0.5e-3;  // >> adaptive_reserve_j: skip output commits
  base.seed = 78;

  netexec::NetworkExecutor clean(sc.net, sc.graph, sc.assignment, sc.wsn,
                                 base);
  const auto ref = clean.run(sample);
  ASSERT_FALSE(ref.degraded);

  fault::FaultInjector inj(all_node_brownout(1e-3, 50e-3));
  netexec::NetExecConfig cfg = base;
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn, cfg);
  const auto r = exec.run(sample);

  expect_bitwise_equal(r.output, ref.output);
  EXPECT_FALSE(r.degraded);
  EXPECT_GT(r.suspensions, 0u);
  EXPECT_GT(r.resumes, 0u);
  EXPECT_GT(r.latency_s, ref.latency_s);
}

TEST(IntermittentExec, NoCheckpointBrownoutDegrades) {
  // The control arm: harvesting makes the executor honour the brownout,
  // but with CheckpointPolicy::None there is nothing durable to resume
  // from — progress is wiped, nothing revives, and the unshifted layer
  // deadlines force substituted (degraded) outputs.
  Scenario sc;
  const auto sample = make_sample();

  fault::FaultInjector inj(all_node_brownout(1e-3, 50e-3));
  netexec::NetExecConfig cfg;
  cfg.harvest.enabled = true;
  cfg.harvest.initial_j = cfg.harvest.capacity_j;  // full: never defer
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn, cfg);
  const auto r = exec.run(sample);

  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.substitutions, 0u);
  EXPECT_GT(r.suspensions, 0u);
  EXPECT_EQ(r.resumes, 0u) << "None has no NVM image to revive from";
  EXPECT_EQ(r.checkpoints, 0u);
  EXPECT_EQ(r.checkpoint_bytes, 0u);
  EXPECT_EQ(r.checkpoint_energy_j, 0.0);
  EXPECT_EQ(r.output.size(), 2u) << "the event loop must still drain";
}

// -- Checkpoint codec ------------------------------------------------------

TEST(IntermittentExec, CheckpointSerializationRoundTrip) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(seed * 7919 + 1);
    netexec::NodeCheckpointState st;
    st.node = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
    st.plans_done = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    const auto n_entries = rng.uniform_int(0, 6);
    std::uint32_t unit = 0;
    for (std::int64_t i = 0; i < n_entries; ++i) {
      // Strictly increasing unit ids: the codec's canonical order.
      unit += static_cast<std::uint32_t>(rng.uniform_int(1, 50));
      netexec::CheckpointEntry e;
      e.unit = unit;
      const auto len = rng.uniform_int(1, 8);
      for (std::int64_t j = 0; j < len; ++j) {
        e.values.push_back(static_cast<float>(rng.uniform(-100.0, 100.0)));
      }
      st.entries.push_back(std::move(e));
    }

    const auto img = netexec::encode_checkpoint(st);
    EXPECT_EQ(img.size(), netexec::checkpoint_image_bytes(st))
        << "seed " << seed;

    netexec::NodeCheckpointState back;
    ASSERT_TRUE(netexec::decode_checkpoint(img.data(), img.size(), back))
        << "seed " << seed;
    EXPECT_TRUE(st == back) << "seed " << seed;

    const auto restored = netexec::restore_node_from_nvm(img, st.node);
    EXPECT_TRUE(restored == st) << "seed " << seed;

    // An image written by a different node must not be consumed.
    const auto foreign = netexec::restore_node_from_nvm(img, st.node + 1);
    EXPECT_EQ(foreign.node, st.node + 1) << "seed " << seed;
    EXPECT_EQ(foreign.plans_done, 0u) << "seed " << seed;
    EXPECT_TRUE(foreign.entries.empty()) << "seed " << seed;
  }

  // Blank NVM (factory fresh) restores to a clean state for the node.
  const auto clean = netexec::restore_node_from_nvm({}, 5);
  EXPECT_EQ(clean.node, 5u);
  EXPECT_EQ(clean.plans_done, 0u);
  EXPECT_TRUE(clean.entries.empty());
}

TEST(IntermittentExec, TruncationAndCorruptionFallBackClean) {
  // Strict decode: EVERY truncation and EVERY single-bit flip must fail the
  // frame (the FNV-1a-64 trailer detects all single-bit errors: the xor
  // step differs and the subsequent odd-prime multiplies are bijections),
  // and a reviving node falls back to a clean restart, never garbage.
  Rng rng(2024);
  netexec::NodeCheckpointState st;
  st.node = 3;
  st.plans_done = 2;
  std::uint32_t unit = 2;
  for (int i = 0; i < 3; ++i) {
    netexec::CheckpointEntry e;
    e.unit = unit;
    unit += 5;
    for (int j = 0; j < 4; ++j) {
      e.values.push_back(static_cast<float>(rng.uniform(-10.0, 10.0)));
    }
    st.entries.push_back(std::move(e));
  }
  const auto img = netexec::encode_checkpoint(st);
  ASSERT_GT(img.size(), 0u);

  netexec::NodeCheckpointState out;
  for (std::size_t len = 0; len < img.size(); ++len) {
    EXPECT_FALSE(netexec::decode_checkpoint(img.data(), len, out))
        << "truncation to " << len << " bytes decoded";
  }
  for (std::size_t bit = 0; bit < img.size() * 8; ++bit) {
    auto bad = img;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(netexec::decode_checkpoint(bad.data(), bad.size(), out))
        << "bit flip " << bit << " decoded";
    const auto rec = netexec::restore_node_from_nvm(bad, st.node);
    EXPECT_EQ(rec.node, st.node) << "bit " << bit;
    EXPECT_EQ(rec.plans_done, 0u) << "bit " << bit;
    EXPECT_TRUE(rec.entries.empty()) << "bit " << bit;
  }
}

// -- NVM budget ------------------------------------------------------------

TEST(IntermittentExec, NvmBudgetBindsInSearch) {
  Scenario sc;
  microdeep::AssignmentSearchOptions opts;
  opts.random_restarts = 2;

  // 16 B is below the bare image framing (28 B): every candidate is over
  // budget, and an undeployable portfolio is an error, not a bad winner.
  opts.memory.nvm_budget_bytes = 16;
  EXPECT_THROW(microdeep::search_assignment(sc.graph, sc.wsn, opts), Error);

  opts.memory.nvm_budget_bytes = std::size_t{1} << 20;
  const auto res = microdeep::search_assignment(sc.graph, sc.wsn, opts);
  const auto& win = res.candidates[res.best_index];
  EXPECT_FALSE(win.over_budget);
  EXPECT_GT(win.peak_nvm_bytes, 0u);
  EXPECT_LE(win.peak_nvm_bytes, opts.memory.nvm_budget_bytes);
  // The reported peak is the memory model recomputed on the winner.
  EXPECT_EQ(win.peak_nvm_bytes,
            microdeep::peak_node_checkpoint_bytes(sc.graph, res.best,
                                                  sc.wsn.num_nodes(),
                                                  opts.memory));
}

TEST(IntermittentExec, NvmBudgetBindsInExecutorAndFootprintMatches) {
  Scenario sc;
  const auto fp = microdeep::compute_node_checkpoint_bytes(
      sc.graph, sc.assignment, sc.wsn.num_nodes(),
      microdeep::NodeMemoryModel{});
  ASSERT_EQ(fp.size(), sc.wsn.num_nodes());
  const std::size_t peak = *std::max_element(fp.begin(), fp.end());
  ASSERT_GT(peak, 0u);

  netexec::NetExecConfig cfg;
  cfg.checkpoint.policy = netexec::CheckpointPolicy::EveryUnit;

  // One byte short of the worst-case image: constructing the executor must
  // reject the deployment up front, not fail at the first commit.
  cfg.checkpoint.nvm_budget_bytes = peak - 1;
  EXPECT_THROW(netexec::NetworkExecutor(sc.net, sc.graph, sc.assignment,
                                        sc.wsn, cfg),
               Error);

  cfg.checkpoint.nvm_budget_bytes = peak;
  netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn, cfg);
  EXPECT_EQ(exec.nvm_footprint_bytes(), fp)
      << "executor footprint must equal the planning-time memory model";
}

// -- Energy accounting -----------------------------------------------------

TEST(IntermittentExec, CheckpointEnergyChargedExactlyOncePerCommit) {
  // Ledger invariant: the "checkpoint" activity total is exactly
  // commits * base_j + bytes * write_j_per_byte — each commit charged once,
  // nothing double-counted across suspend/resume.
  Scenario sc;
  fault::FaultInjector inj(all_node_brownout(1e-3, 50e-3));
  netexec::NetExecConfig cfg;
  cfg.checkpoint.policy = netexec::CheckpointPolicy::EveryUnit;
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn, cfg);
  const auto r = exec.run(make_sample());

  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_GT(r.checkpoint_bytes, 0u);
  const auto& c = cfg.checkpoint.costs;
  EXPECT_NEAR(r.checkpoint_energy_j,
              static_cast<double>(r.checkpoints) * c.base_j +
                  static_cast<double>(r.checkpoint_bytes) * c.write_j_per_byte,
              1e-12);
  EXPECT_GE(r.energy_j, r.checkpoint_energy_j)
      << "checkpoint energy is part of the node total";
}

TEST(IntermittentExec, RunChainSharesNetexecCheckpointCostModel) {
  // Both intermittent paths — the single-device task chains and the
  // distributed executor — must price a checkpointed byte identically:
  // they share energy::CheckpointCosts, and their charges follow the same
  // base_j + bytes * write_j_per_byte formula.
  const energy::CheckpointCosts costs{};
  const auto chain = energy::default_context_chain();

  energy::IntermittentDevice dev(
      std::make_unique<energy::ConstantHarvester>(1e-3),
      energy::Capacitor(100e-6, 5.0, 4.5), energy::HysteresisSwitch(3.0, 2.0));
  energy::IntermittentRunConfig cfg;
  cfg.policy = energy::CheckpointPolicy::EveryTask;
  cfg.checkpoint = costs;
  const auto st = energy::run_chain(dev, chain, cfg, 0.0);
  ASSERT_TRUE(st.completed);
  ASSERT_EQ(st.power_failures, 0u);

  double expected = 0.0;
  for (const auto& t : chain) expected += costs.energy_j(t.state_bytes);
  EXPECT_NEAR(st.checkpoint_energy_j, expected, 1e-12);

  // netexec's checkpoint config carries the very same cost struct with the
  // same defaults — one J-per-byte model across the codebase.
  const netexec::CheckpointConfig ncfg;
  EXPECT_EQ(ncfg.costs.base_j, costs.base_j);
  EXPECT_EQ(ncfg.costs.write_j_per_byte, costs.write_j_per_byte);
  EXPECT_EQ(ncfg.costs.write_s_per_byte, costs.write_s_per_byte);
}

// -- Harvest-aware scheduling ---------------------------------------------

TEST(IntermittentExec, HarvestDeferralIdenticalAcrossThreadCounts) {
  // An empty capacitor under a µW trickle: every unit evaluation must be
  // deferred until the charge covers compute + checkpoint + first TX.  The
  // deferral schedule is pure virtual time, so evaluate() stays
  // bit-identical at any worker count.
  Scenario sc;
  netexec::NetExecConfig cfg;
  cfg.checkpoint.policy = netexec::CheckpointPolicy::EveryUnit;
  cfg.harvest.enabled = true;
  cfg.harvest.initial_j = 0.0;
  cfg.harvest.harvest_watt = 2e-6;
  cfg.layer_deadline_s = 60.0;  // never force a starved compute
  cfg.seed = 5;

  {
    netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn,
                                  cfg);
    const auto r = exec.run(make_sample(3));
    EXPECT_GT(r.deferrals, 0u) << "an empty capacitor must defer";
    EXPECT_EQ(r.starved, 0u);
    EXPECT_FALSE(r.degraded);
    EXPECT_GT(r.latency_s, 0.5) << "waiting for charge dominates the round";
  }

  ml::Dataset data;
  for (int i = 0; i < 4; ++i) {
    data.add(make_sample(static_cast<std::uint64_t>(100 + i)), i % 2);
  }
  auto eval_with = [&](std::size_t threads) {
    par::ThreadPool pool(threads);
    netexec::NetworkExecutor exec(sc.net, sc.graph, sc.assignment, sc.wsn,
                                  cfg);
    return exec.evaluate(data, &pool);
  };
  const auto a = eval_with(1);
  const auto b = eval_with(4);

  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_GT(a.checkpoints, 0u);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
  EXPECT_EQ(a.resumes, 0u);
  EXPECT_EQ(b.resumes, 0u);
  EXPECT_EQ(a.mean_checkpoint_energy_j, b.mean_checkpoint_energy_j);
  ASSERT_EQ(a.latencies_s.size(), b.latencies_s.size());
  for (std::size_t i = 0; i < a.latencies_s.size(); ++i) {
    EXPECT_EQ(a.latencies_s[i], b.latencies_s[i]) << "sample " << i;
  }
}

}  // namespace
}  // namespace zeiot
