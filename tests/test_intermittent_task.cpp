#include "energy/intermittent_task.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace zeiot::energy {
namespace {

IntermittentDevice make_device(double harvest_watt, double cap_f = 100e-6,
                               double v_init = 0.0) {
  return IntermittentDevice(std::make_unique<ConstantHarvester>(harvest_watt),
                            Capacitor(cap_f, 5.0, v_init),
                            HysteresisSwitch(3.0, 2.0));
}

TEST(IntermittentTask, DefaultChainShape) {
  const auto chain = default_context_chain();
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain.front().name, "sense");
  EXPECT_EQ(chain.back().name, "backscatter");
  for (const auto& t : chain) EXPECT_GT(t.energy_j(), 0.0);
}

TEST(IntermittentTask, AmpleEnergyCompletesImmediately) {
  auto dev = make_device(1e-3, 100e-6, 4.5);
  IntermittentRunConfig cfg;
  const auto st = run_chain(dev, default_context_chain(), cfg, 0.0);
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.power_failures, 0u);
  EXPECT_EQ(st.tasks_reexecuted, 0u);
  // Completion ~= sum of task durations.
  EXPECT_NEAR(st.completion_time_s, 0.02 + 0.03 + 0.05 + 0.04 + 0.01, 0.05);
}

TEST(IntermittentTask, NoEnergyNeverCompletes) {
  auto dev = make_device(0.0);
  IntermittentRunConfig cfg;
  cfg.chain_timeout_s = 5.0;
  const auto st = run_chain(dev, default_context_chain(), cfg, 0.0);
  EXPECT_FALSE(st.completed);
}

TEST(IntermittentTask, WeakHarvestEventuallyCompletes) {
  // 30 uW harvest vs a chain needing ~8.3 uJ: charge-burst-charge cycles.
  auto dev = make_device(30e-6, 20e-6);
  IntermittentRunConfig cfg;
  cfg.chain_timeout_s = 300.0;
  const auto st = run_chain(dev, default_context_chain(), cfg, 0.0);
  EXPECT_TRUE(st.completed);
  EXPECT_GT(st.completion_time_s, 0.2);  // had to wait for harvest
}

TEST(IntermittentTask, CheckpointsBoundReexecutionWaste) {
  // A starved device (2 uF usable charge < whole-chain energy) browns out
  // mid-chain every time: without durable progress the chain restarts
  // from scratch forever; with checkpoints it crawls to completion.
  IntermittentRunConfig with_cp;
  with_cp.policy = CheckpointPolicy::EveryTask;
  with_cp.chain_timeout_s = 120.0;
  IntermittentRunConfig no_cp = with_cp;
  no_cp.policy = CheckpointPolicy::None;

  auto dev_a = make_device(15e-6, 2e-6);
  auto dev_b = make_device(15e-6, 2e-6);
  const auto chain = default_context_chain();
  const auto sa = run_chain(dev_a, chain, with_cp, 0.0);
  const auto sb = run_chain(dev_b, chain, no_cp, 0.0);
  EXPECT_TRUE(sa.completed);
  EXPECT_FALSE(sb.completed);
  EXPECT_LT(sa.tasks_reexecuted, sb.tasks_reexecuted);
  EXPECT_GT(sa.checkpoint_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(sb.checkpoint_energy_j, 0.0);
  EXPECT_GT(sa.power_failures, 0u);
}

TEST(IntermittentTask, UsefulEnergyCountsDistinctTasks) {
  auto dev = make_device(1e-3, 100e-6, 4.5);
  IntermittentRunConfig cfg;
  const auto chain = default_context_chain();
  const auto st = run_chain(dev, chain, cfg, 0.0);
  double expected = 0.0;
  for (const auto& t : chain) expected += t.energy_j();
  EXPECT_NEAR(st.useful_energy_j, expected, 1e-12);
}

TEST(IntermittentTask, WorkloadAggregates) {
  auto dev = make_device(200e-6, 100e-6);
  IntermittentRunConfig cfg;
  const auto ws =
      run_workload(dev, default_context_chain(), cfg, 2.0, 10);
  EXPECT_EQ(ws.chains_attempted, 10u);
  EXPECT_GT(ws.completion_ratio(), 0.8);
  EXPECT_GT(ws.mean_completion_s, 0.0);
}

TEST(IntermittentTask, WorkloadStarvesGracefully) {
  auto dev = make_device(1e-6, 20e-6);  // 1 uW: hopeless for this chain
  IntermittentRunConfig cfg;
  cfg.chain_timeout_s = 3.0;
  const auto ws = run_workload(dev, default_context_chain(), cfg, 5.0, 3);
  EXPECT_EQ(ws.chains_completed, 0u);
  EXPECT_DOUBLE_EQ(ws.completion_ratio(), 0.0);
}

TEST(IntermittentTask, RejectsBadArguments) {
  auto dev = make_device(1e-3);
  IntermittentRunConfig cfg;
  EXPECT_THROW(run_chain(dev, {}, cfg, 0.0), Error);
  cfg.tick_s = 0.0;
  EXPECT_THROW(run_chain(dev, default_context_chain(), cfg, 0.0), Error);
  IntermittentRunConfig cfg2;
  EXPECT_THROW(run_workload(dev, default_context_chain(), cfg2, 0.0, 3),
               Error);
}

}  // namespace
}  // namespace zeiot::energy
