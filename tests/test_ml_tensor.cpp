#include "ml/tensor.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"

namespace zeiot::ml {
namespace {

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(Tensor(std::vector<int>{}), Error);
  EXPECT_THROW(Tensor({2, 0}), Error);
  EXPECT_THROW(Tensor({1, 2, 3, 4, 5}), Error);
  EXPECT_THROW(Tensor({-1, 3}), Error);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t({2, 3});
  t.at({0, 0}) = 1.0f;
  t.at({0, 2}) = 3.0f;
  t.at({1, 0}) = 4.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(t[2], 3.0f);
  EXPECT_FLOAT_EQ(t[3], 4.0f);
}

TEST(Tensor, FourDimIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at({1, 2, 3, 4}) = 9.0f;
  EXPECT_FLOAT_EQ(t[t.size() - 1], 9.0f);
  EXPECT_EQ(t.offset({0, 0, 0, 1}), 1u);
  EXPECT_EQ(t.offset({0, 0, 1, 0}), 5u);
  EXPECT_EQ(t.offset({0, 1, 0, 0}), 20u);
  EXPECT_EQ(t.offset({1, 0, 0, 0}), 60u);
}

TEST(Tensor, BoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, 3}), Error);
  EXPECT_THROW(t.at({0}), Error);       // wrong arity
  EXPECT_THROW(t.at({0, 0, 0}), Error); // wrong arity
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshape({3, 2});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, AddAndScale) {
  Tensor a({2, 2}, 1.0f);
  Tensor b({2, 2}, 2.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a[3], 1.5f);
  Tensor c({2, 3});
  EXPECT_THROW(a.add_(c), Error);
}

TEST(Tensor, SumAndArgmax) {
  Tensor t({4});
  t[0] = 1.0f;
  t[1] = -2.0f;
  t[2] = 5.0f;
  t[3] = 0.0f;
  EXPECT_DOUBLE_EQ(t.sum(), 4.0);
  EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, HeInitVariance) {
  Rng rng(1);
  Tensor t({100, 100});
  t.he_init(rng, 50);
  double s2 = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) s2 += t[i] * t[i];
  EXPECT_NEAR(s2 / static_cast<double>(t.size()), 2.0 / 50.0, 0.005);
}

TEST(Tensor, ZerosLike) {
  Tensor t({3, 4}, 7.0f);
  const Tensor z = Tensor::zeros_like(t);
  EXPECT_EQ(z.shape(), t.shape());
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_FLOAT_EQ(z[i], 0.0f);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3}).shape_str(), "(2,3)");
}

TEST(Dataset, AddAndShapeEnforcement) {
  Dataset ds;
  ds.add(Tensor({1, 2, 2}), 0);
  ds.add(Tensor({1, 2, 2}), 1);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_THROW(ds.add(Tensor({1, 3, 2}), 0), Error);
  EXPECT_THROW(ds.add(Tensor({1, 2, 2}), -1), Error);
}

TEST(Dataset, BatchStacksSamples) {
  Dataset ds;
  for (int i = 0; i < 4; ++i) {
    Tensor t({1, 2, 2}, static_cast<float>(i));
    ds.add(std::move(t), i % 2);
  }
  auto [xb, yb] = ds.batch({1, 3});
  EXPECT_EQ(xb.shape(), (std::vector<int>{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(xb[0], 1.0f);
  EXPECT_FLOAT_EQ(xb[4], 3.0f);
  EXPECT_EQ(yb, (std::vector<int>{1, 1}));
}

TEST(Dataset, SplitSizesAndNoLoss) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) ds.add(Tensor({2}), i % 3);
  Rng rng(5);
  auto [train, test] = ds.split(rng, 0.8);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
}

TEST(Dataset, StratifiedSplitPreservesClasses) {
  Dataset ds;
  for (int i = 0; i < 90; ++i) ds.add(Tensor({2}), 0);
  for (int i = 0; i < 10; ++i) ds.add(Tensor({2}), 1);
  Rng rng(7);
  auto [train, test] = ds.stratified_split(rng, 0.7);
  int train1 = 0, test1 = 0;
  for (std::size_t i = 0; i < train.size(); ++i) train1 += train.label(i) == 1;
  for (std::size_t i = 0; i < test.size(); ++i) test1 += test.label(i) == 1;
  EXPECT_EQ(train1, 7);
  EXPECT_EQ(test1, 3);
}

TEST(Dataset, SplitRejectsDegenerate) {
  Dataset ds;
  ds.add(Tensor({1}), 0);
  Rng rng(1);
  EXPECT_THROW(ds.split(rng, 0.5), Error);
  ds.add(Tensor({1}), 1);
  EXPECT_THROW(ds.split(rng, 0.0), Error);
}

}  // namespace
}  // namespace zeiot::ml
