#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace zeiot {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatting) {
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::pct(0.918, 1), "91.8%");
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"a"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, RowsCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(BarSeries, RendersBars) {
  std::ostringstream os;
  print_bar_series(os, "title", {1.0, 2.0, 4.0}, 8);
  const std::string s = os.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  // The max value gets the full width of hashes.
  EXPECT_NE(s.find("########"), std::string::npos);
}

TEST(BarSeries, HandlesEmptyAndZero) {
  std::ostringstream os1;
  print_bar_series(os1, "t", {}, 8);
  EXPECT_NE(os1.str().find("(empty)"), std::string::npos);
  std::ostringstream os2;
  print_bar_series(os2, "t", {0.0, 0.0}, 8);
  EXPECT_NE(os2.str().find("0.0"), std::string::npos);
}

}  // namespace
}  // namespace zeiot
