#include "phy/full_duplex.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zeiot::phy {
namespace {

radio::LogDistance model() { return radio::LogDistance(40.0, 2.5); }

TEST(FullDuplex, SicChainSums) {
  FullDuplexAp ap;
  EXPECT_DOUBLE_EQ(ap.total_sic_db(), 110.0);
  EXPECT_DOUBLE_EQ(ap.residual_si_dbm(), 20.0 - 110.0);
}

TEST(FullDuplex, SicStagesMustBeNonNegative) {
  FullDuplexAp ap;
  ap.analog_cancellation_db = -5.0;
  EXPECT_THROW(ap.total_sic_db(), Error);
}

TEST(FullDuplex, SinrDecreasesWithDistance) {
  FullDuplexAp ap;
  const auto m = model();
  double prev = backscatter_sinr_db(ap, m, 0.5);
  for (double d = 1.0; d <= 16.0; d *= 2.0) {
    const double s = backscatter_sinr_db(ap, m, d);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(FullDuplex, BetterSicExtendsRange) {
  const auto m = model();
  FullDuplexAp weak;
  weak.digital_cancellation_db = 20.0;  // 90 dB total
  FullDuplexAp strong;
  strong.digital_cancellation_db = 50.0;  // 120 dB total
  const double r_weak = backscatter_range_m(weak, m, 5.0);
  const double r_strong = backscatter_range_m(strong, m, 5.0);
  EXPECT_GT(r_strong, r_weak);
}

TEST(FullDuplex, DefaultApReachesMetres) {
  // The paper's testbeds work at metres; the model should agree with a
  // 110 dB SIC chain and a 5 dB decoding threshold.
  const double r = backscatter_range_m(FullDuplexAp{}, model(), 5.0);
  EXPECT_GT(r, 1.0);
  EXPECT_LT(r, 100.0);
}

TEST(FullDuplex, HopelessSicYieldsZeroRange) {
  FullDuplexAp deaf;
  deaf.antenna_isolation_db = 10.0;
  deaf.analog_cancellation_db = 0.0;
  deaf.digital_cancellation_db = 0.0;
  EXPECT_DOUBLE_EQ(backscatter_range_m(deaf, model(), 5.0), 0.0);
}

TEST(FullDuplex, ReflectionLossReducesSinrOneForOne) {
  FullDuplexAp ap;
  const auto m = model();
  const double a = backscatter_sinr_db(ap, m, 3.0, 0.0);
  const double b = backscatter_sinr_db(ap, m, 3.0, 6.0);
  EXPECT_NEAR(a - b, 6.0, 0.2);
}

TEST(FullDuplex, MorePowerHelpsOnlyUntilSiDominates) {
  // Raising tx power raises both signal and self-interference equally, so
  // in the SI-limited regime the SINR saturates.
  const auto m = model();
  FullDuplexAp low;
  low.tx_power_dbm = 10.0;
  FullDuplexAp high;
  high.tx_power_dbm = 30.0;
  const double s_low = backscatter_sinr_db(low, m, 2.0);
  const double s_high = backscatter_sinr_db(high, m, 2.0);
  // Near range is noise-limited -> power helps; but never by more than
  // the 20 dB power difference.
  EXPECT_GE(s_high, s_low);
  EXPECT_LE(s_high - s_low, 20.0 + 1e-9);
}

}  // namespace
}  // namespace zeiot::phy
