#include "mac/collection.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zeiot::mac {
namespace {

std::vector<DeviceRequirement> grid_devices(std::size_t n, double period_s,
                                            std::size_t bytes = 16,
                                            double spacing_m = 5.0) {
  std::vector<DeviceRequirement> devices;
  for (std::size_t i = 0; i < n; ++i) {
    devices.push_back({static_cast<CollectionDeviceId>(i),
                       {spacing_m * static_cast<double>(i % 8),
                        spacing_m * static_cast<double>(i / 8)},
                       period_s,
                       bytes});
  }
  return devices;
}

TEST(Collection, TransmissionDuration) {
  CollectionConfig cfg;
  cfg.channel_rate_bps = 250e3;
  cfg.overhead_s = 1e-3;
  EXPECT_NEAR(transmission_duration_s(cfg, 250), 1e-3 + 8e-3, 1e-9);
}

TEST(Collection, HyperperiodLcm) {
  EXPECT_NEAR(hyperperiod_s(grid_devices(1, 0.5)), 0.5, 1e-9);
  std::vector<DeviceRequirement> mixed{{0, {}, 0.5, 8}, {1, {0, 5}, 0.75, 8}};
  EXPECT_NEAR(hyperperiod_s(mixed), 1.5, 1e-9);
}

TEST(Collection, RejectsBadInput) {
  CollectionConfig cfg;
  EXPECT_THROW(synthesize_schedule({}, cfg), Error);
  auto dup = grid_devices(2, 1.0);
  dup[1].id = dup[0].id;
  EXPECT_THROW(synthesize_schedule(dup, cfg), Error);
  auto tiny = grid_devices(1, 1.0);
  tiny[0].period_s = 1e-4;
  EXPECT_THROW(synthesize_schedule(tiny, cfg), Error);
}

TEST(Collection, EasyCaseFeasibleAndValid) {
  const auto devices = grid_devices(10, 1.0);
  CollectionConfig cfg;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible) << s.failure_reason;
  EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  EXPECT_GT(s.worst_slack_s, 0.0);
  // 10 primaries + 10 recoveries per hyperperiod of 1 s.
  EXPECT_EQ(s.entries.size(), 20u);
}

TEST(Collection, MixedPeriodsScheduleEveryInstance) {
  std::vector<DeviceRequirement> devices{
      {0, {0, 0}, 0.25, 8}, {1, {5, 0}, 0.5, 8}, {2, {10, 0}, 1.0, 8}};
  CollectionConfig cfg;
  cfg.recovery_slots = 0;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible) << s.failure_reason;
  EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  // 4 + 2 + 1 instances over the 1 s hyperperiod.
  EXPECT_EQ(s.entries.size(), 7u);
}

TEST(Collection, InfeasibleOverloadReported) {
  // 100 devices at 10 ms cycles with 1 ms overhead cannot fit one channel.
  const auto devices = grid_devices(100, 0.01);
  CollectionConfig cfg;
  cfg.recovery_slots = 0;
  const auto s = synthesize_schedule(devices, cfg);
  EXPECT_FALSE(s.feasible);
  EXPECT_FALSE(s.failure_reason.empty());
  EXPECT_TRUE(s.entries.empty());
}

TEST(Collection, MoreChannelsRestoreFeasibility) {
  // 24 devices x 1.512 ms every 20 ms = 181% of one channel.
  const auto devices = grid_devices(24, 0.02, 16, 3.0);
  CollectionConfig one;
  one.recovery_slots = 0;
  CollectionConfig four = one;
  four.num_channels = 4;
  const auto s1 = synthesize_schedule(devices, one);
  const auto s4 = synthesize_schedule(devices, four);
  EXPECT_FALSE(s1.feasible);
  ASSERT_TRUE(s4.feasible) << s4.failure_reason;
  EXPECT_EQ(validate_schedule(s4, devices, four), "");
}

TEST(Collection, SpatialReuseAllowsOverlap) {
  // Two far-apart devices can share a channel simultaneously.
  std::vector<DeviceRequirement> devices{{0, {0, 0}, 0.1, 128},
                                         {1, {500, 0}, 0.1, 128}};
  CollectionConfig cfg;
  cfg.interference_range_m = 50.0;
  cfg.recovery_slots = 0;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  // Both primaries can start at t = 0 thanks to reuse.
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(s.entries[1].start_s, 0.0);
}

TEST(Collection, InterferingDevicesSerialized) {
  std::vector<DeviceRequirement> devices{{0, {0, 0}, 0.1, 128},
                                         {1, {1, 0}, 0.1, 128}};
  CollectionConfig cfg;
  cfg.recovery_slots = 0;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  // Same channel -> disjoint in time.
  const auto& a = s.entries[0];
  const auto& b = s.entries[1];
  if (a.channel == b.channel) {
    EXPECT_TRUE(a.start_s + a.duration_s <= b.start_s + 1e-12 ||
                b.start_s + b.duration_s <= a.start_s + 1e-12);
  }
}

TEST(Collection, RecoverySlotsReserved) {
  const auto devices = grid_devices(4, 0.5);
  CollectionConfig cfg;
  cfg.recovery_slots = 2;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible) << s.failure_reason;
  EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  std::size_t recovery = 0;
  for (const auto& e : s.entries) recovery += e.recovery ? 1 : 0;
  EXPECT_EQ(recovery, 4u * 2u);  // per device per instance
}

TEST(Collection, UtilizationReported) {
  const auto devices = grid_devices(8, 1.0);
  CollectionConfig cfg;
  cfg.num_channels = 2;
  const auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible);
  ASSERT_EQ(s.channel_utilization.size(), 2u);
  for (double u : s.channel_utilization) EXPECT_GE(u, 0.0);
}

TEST(Collection, ValidatorCatchesTampering) {
  const auto devices = grid_devices(4, 1.0);
  CollectionConfig cfg;
  cfg.recovery_slots = 0;
  auto s = synthesize_schedule(devices, cfg);
  ASSERT_TRUE(s.feasible);
  ASSERT_EQ(validate_schedule(s, devices, cfg), "");
  // Force two interfering entries to overlap.
  ASSERT_GE(s.entries.size(), 2u);
  s.entries[1].start_s = s.entries[0].start_s;
  s.entries[1].channel = s.entries[0].channel;
  EXPECT_NE(validate_schedule(s, devices, cfg), "");
}

// Property sweep: synthesize + validate across loads.
struct CollectionParam {
  std::size_t devices;
  double period;
  int channels;
};

class CollectionSweep : public ::testing::TestWithParam<CollectionParam> {};

TEST_P(CollectionSweep, FeasibleSchedulesAlwaysValidate) {
  const auto p = GetParam();
  const auto devices = grid_devices(p.devices, p.period);
  CollectionConfig cfg;
  cfg.num_channels = p.channels;
  cfg.recovery_slots = 1;
  const auto s = synthesize_schedule(devices, cfg);
  if (s.feasible) {
    EXPECT_EQ(validate_schedule(s, devices, cfg), "");
  } else {
    EXPECT_FALSE(s.failure_reason.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Loads, CollectionSweep,
    ::testing::Values(CollectionParam{4, 0.5, 1}, CollectionParam{16, 0.5, 1},
                      CollectionParam{16, 0.5, 3}, CollectionParam{40, 0.2, 2},
                      CollectionParam{64, 1.0, 4},
                      CollectionParam{64, 0.05, 2}));

}  // namespace
}  // namespace zeiot::mac
