#include <gtest/gtest.h>

#include "datagen/ir_gait.hpp"
#include "datagen/temperature_field.hpp"

namespace zeiot::datagen {
namespace {

TemperatureFieldConfig small_temp() {
  TemperatureFieldConfig cfg;
  cfg.num_samples = 120;
  return cfg;
}

TEST(TemperatureField, SampleShape) {
  const auto cfg = small_temp();
  Rng rng(1);
  const auto s = generate_temperature_sample(cfg, 0, rng);
  EXPECT_EQ(s.map.shape(), (std::vector<int>{1, 17, 25}));
  EXPECT_TRUE(s.discomfort == 0 || s.discomfort == 1);
}

TEST(TemperatureField, DatasetSizeAndShape) {
  const auto ds = generate_temperature_dataset(small_temp());
  EXPECT_EQ(ds.size(), 120u);
  EXPECT_EQ(ds.sample_shape(), (std::vector<int>{1, 17, 25}));
  EXPECT_EQ(ds.num_classes(), 2);
}

TEST(TemperatureField, BothLabelsPresentAndNonDegenerate) {
  const auto ds = generate_temperature_dataset(small_temp());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) pos += ds.label(i);
  EXPECT_GT(pos, ds.size() / 10);
  EXPECT_LT(pos, ds.size() * 9 / 10);
}

TEST(TemperatureField, DeterministicBySeed) {
  const auto a = generate_temperature_dataset(small_temp());
  const auto b = generate_temperature_dataset(small_temp());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (std::size_t j = 0; j < a.x(i).size(); ++j) {
      EXPECT_FLOAT_EQ(a.x(i)[j], b.x(i)[j]);
    }
  }
}

TEST(TemperatureField, SeedChangesData) {
  auto cfg2 = small_temp();
  cfg2.seed = 9999;
  const auto a = generate_temperature_dataset(small_temp());
  const auto b = generate_temperature_dataset(cfg2);
  bool differ = false;
  for (std::size_t j = 0; j < a.x(0).size() && !differ; ++j) {
    if (a.x(0)[j] != b.x(0)[j]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(TemperatureField, ValuesNormalised) {
  const auto ds = generate_temperature_dataset(small_temp());
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < ds.x(i).size(); ++j) {
      EXPECT_LT(std::abs(ds.x(i)[j]), 10.0f);
    }
  }
}

TEST(TemperatureField, DiurnalVariation) {
  // Raw (unnormalised) samples 24 h apart at different phases must differ
  // in mean temperature.
  const auto cfg = small_temp();
  Rng rng(2);
  const auto night = generate_temperature_sample(cfg, 0, rng);   // t = 0h
  const auto day = generate_temperature_sample(cfg, 24, rng);    // t = 12h
  EXPECT_NE(night.map.sum(), day.map.sum());
}

IrGaitConfig small_ir() {
  IrGaitConfig cfg;
  cfg.num_streams = 6;
  cfg.fall_streams = 3;
  cfg.mirror_augment = false;
  return cfg;
}

TEST(IrGait, StreamShape) {
  const auto cfg = small_ir();
  Rng rng(3);
  const auto st = generate_ir_stream(cfg, 0, true, rng);
  EXPECT_EQ(st.frames.size(), 66u);
  EXPECT_EQ(st.frames[0].shape(), (std::vector<int>{1, 10, 10}));
  EXPECT_GE(st.fall_start, cfg.window_frames);
}

TEST(IrGait, NormalStreamHasNoFall) {
  const auto cfg = small_ir();
  Rng rng(4);
  const auto st = generate_ir_stream(cfg, 1, false, rng);
  EXPECT_EQ(st.fall_start, -1);
}

TEST(IrGait, WalkerMovesAcrossArray) {
  auto cfg = small_ir();
  cfg.sensor_noise = 0.0;
  Rng rng(5);
  const auto st = generate_ir_stream(cfg, 0, false, rng);
  // Blob centroid x must advance between early and late frames.
  auto centroid_x = [&](const ml::Tensor& f) {
    double sx = 0.0, total = 0.0;
    for (int y = 0; y < cfg.grid; ++y) {
      for (int x = 0; x < cfg.grid; ++x) {
        sx += f.at({0, y, x}) * x;
        total += f.at({0, y, x});
      }
    }
    return total > 1e-9 ? sx / total : 0.0;
  };
  EXPECT_LT(centroid_x(st.frames[15]), centroid_x(st.frames[45]));
}

TEST(IrGait, FallChangesAspectRatio) {
  auto cfg = small_ir();
  cfg.sensor_noise = 0.0;
  Rng rng(6);
  const auto st = generate_ir_stream(cfg, 0, true, rng);
  // After the fall, vertical spread shrinks and horizontal grows.
  auto spread = [&](const ml::Tensor& f) {
    double sx = 0.0, sy = 0.0, total = 0.0;
    double mx = 0.0, my = 0.0;
    for (int y = 0; y < cfg.grid; ++y) {
      for (int x = 0; x < cfg.grid; ++x) {
        const double v = f.at({0, y, x});
        mx += v * x;
        my += v * y;
        total += v;
      }
    }
    mx /= total;
    my /= total;
    for (int y = 0; y < cfg.grid; ++y) {
      for (int x = 0; x < cfg.grid; ++x) {
        const double v = f.at({0, y, x});
        sx += v * (x - mx) * (x - mx);
        sy += v * (y - my) * (y - my);
      }
    }
    return std::pair{sx / total, sy / total};
  };
  // Upright: y-spread dominates; lying: x-spread dominates, so the
  // (y/x) spread ratio collapses through the fall.
  const auto before = spread(st.frames[static_cast<std::size_t>(st.fall_start - 1)]);
  const auto after = spread(st.frames.back());
  EXPECT_LT(after.second / after.first, before.second / before.first);
}

TEST(IrGait, DatasetSizeMatchesWindows) {
  const auto cfg = small_ir();
  const auto ds = generate_ir_dataset(cfg);
  const std::size_t windows_per_stream =
      static_cast<std::size_t>(cfg.frames_per_stream - cfg.window_frames + 1);
  EXPECT_EQ(ds.size(), windows_per_stream * 6u);
  EXPECT_EQ(ds.sample_shape(), (std::vector<int>{10, 10, 10}));
}

TEST(IrGait, MirrorAugmentDoubles) {
  auto cfg = small_ir();
  cfg.mirror_augment = true;
  const auto ds = generate_ir_dataset(cfg);
  EXPECT_EQ(ds.size(), 57u * 6u * 2u);
}

TEST(IrGait, PaperScaleDatasetSize) {
  // Full configuration: 55 streams x 57 windows x 2 (mirror) = 6,270
  // arrays — the reproduction of the paper's 6,610 inputs.
  IrGaitConfig cfg;
  const auto ds = generate_ir_dataset(cfg);
  EXPECT_EQ(ds.size(), 6270u);
}

TEST(IrGait, BothClassesPresent) {
  const auto ds = generate_ir_dataset(small_ir());
  std::size_t falls = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) falls += ds.label(i);
  EXPECT_GT(falls, 0u);
  EXPECT_LT(falls, ds.size());
}

TEST(IrGait, DeterministicBySeed) {
  const auto a = generate_ir_dataset(small_ir());
  const auto b = generate_ir_dataset(small_ir());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (std::size_t j = 0; j < a.x(i).size(); j += 101) {
      EXPECT_FLOAT_EQ(a.x(i)[j], b.x(i)[j]);
    }
  }
}

TEST(IrGait, RejectsBadConfig) {
  auto cfg = small_ir();
  cfg.fall_streams = 100;
  EXPECT_THROW(generate_ir_dataset(cfg), Error);
  cfg = small_ir();
  cfg.window_frames = 100;
  EXPECT_THROW(generate_ir_dataset(cfg), Error);
}

}  // namespace
}  // namespace zeiot::datagen
