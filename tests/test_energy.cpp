#include <gtest/gtest.h>

#include <memory>

#include "energy/device.hpp"
#include "energy/harvester.hpp"
#include "energy/storage.hpp"

namespace zeiot::energy {
namespace {

TEST(ConstantHarvester, ConstantOutput) {
  ConstantHarvester h(1e-5);
  EXPECT_DOUBLE_EQ(h.power_watt(0.0), 1e-5);
  EXPECT_DOUBLE_EQ(h.power_watt(1000.0), 1e-5);
  EXPECT_THROW(ConstantHarvester(-1.0), Error);
}

TEST(DutyCycledRf, OnOffPhases) {
  DutyCycledRfHarvester h(1e-4, 0.25, 1.0);
  EXPECT_DOUBLE_EQ(h.power_watt(0.1), 1e-4);   // within the first 25%
  EXPECT_DOUBLE_EQ(h.power_watt(0.5), 0.0);    // off phase
  EXPECT_DOUBLE_EQ(h.power_watt(1.1), 1e-4);   // next period
  EXPECT_THROW(DutyCycledRfHarvester(1.0, 1.5, 1.0), Error);
}

TEST(SolarHarvester, ZeroAtNightPositiveAtNoon) {
  SolarHarvester h(1e-3, Rng(1), 0.0);
  EXPECT_DOUBLE_EQ(h.power_watt(0.0), 0.0);            // midnight
  EXPECT_NEAR(h.power_watt(43200.0), 1e-3, 1e-5);      // noon: peak
  EXPECT_DOUBLE_EQ(h.power_watt(80000.0), 0.0);        // late night
}

TEST(SolarHarvester, NoiseNeverNegative) {
  SolarHarvester h(1e-3, Rng(2), 0.5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(h.power_watt(43200.0), 0.0);
  }
}

TEST(VibrationHarvester, BaseAndBursts) {
  VibrationHarvester h(1e-6, 1e-4, 1.0, 0.1, Rng(3));
  // Sample a long horizon: power is always >= base, sometimes the burst.
  bool saw_burst = false;
  for (double t = 0.0; t < 50.0; t += 0.01) {
    const double p = h.power_watt(t);
    EXPECT_GE(p, 1e-6);
    if (p > 1e-5) saw_burst = true;
  }
  EXPECT_TRUE(saw_burst);
}

TEST(ThermalHarvester, StaysNearMean) {
  ThermalHarvester h(1e-5, 2e-6, 10.0, Rng(4));
  double sum = 0.0;
  int n = 0;
  for (double t = 0.0; t < 2000.0; t += 1.0) {
    const double p = h.power_watt(t);
    EXPECT_GE(p, 0.0);
    sum += p;
    ++n;
  }
  EXPECT_NEAR(sum / n, 1e-5, 3e-6);
}

TEST(Capacitor, EnergyVoltageRelation) {
  Capacitor c(100e-6, 5.0, 3.0);  // 100 uF charged to 3 V
  EXPECT_NEAR(c.energy_joule(), 0.5 * 100e-6 * 9.0, 1e-12);
  EXPECT_NEAR(c.voltage(), 3.0, 1e-9);
  EXPECT_NEAR(c.capacity_joule(), 0.5 * 100e-6 * 25.0, 1e-12);
}

TEST(Capacitor, ChargeClampsAtRail) {
  Capacitor c(100e-6, 5.0, 4.9);
  c.charge(1.0, 10.0);  // absurd charge
  EXPECT_NEAR(c.voltage(), 5.0, 1e-9);
}

TEST(Capacitor, DrawSucceedsAndFails) {
  Capacitor c(100e-6, 5.0, 3.0);
  const double e = c.energy_joule();
  EXPECT_TRUE(c.draw(e / 2.0));
  EXPECT_NEAR(c.energy_joule(), e / 2.0, 1e-15);
  EXPECT_FALSE(c.draw(e));  // more than remains
  EXPECT_NEAR(c.energy_joule(), e / 2.0, 1e-15);  // unchanged on failure
}

TEST(Capacitor, RejectsBadConstruction) {
  EXPECT_THROW(Capacitor(0.0, 5.0), Error);
  EXPECT_THROW(Capacitor(1e-6, 5.0, 6.0), Error);
}

TEST(Hysteresis, SwitchesWithHysteresis) {
  HysteresisSwitch sw(3.0, 2.0);
  EXPECT_FALSE(sw.update(2.5));  // below v_on: stays off
  EXPECT_TRUE(sw.update(3.1));   // crosses v_on
  EXPECT_TRUE(sw.update(2.5));   // between thresholds: stays on
  EXPECT_FALSE(sw.update(1.9));  // below v_off
  EXPECT_FALSE(sw.update(2.5));  // between thresholds: stays off
  EXPECT_THROW(HysteresisSwitch(2.0, 2.0), Error);
}

TEST(EnergyLedger, Accumulates) {
  EnergyLedger l;
  l.record("tx", 1e-6);
  l.record("tx", 2e-6);
  l.record("sense", 5e-7);
  EXPECT_NEAR(l.of("tx"), 3e-6, 1e-15);
  EXPECT_NEAR(l.total_joule(), 3.5e-6, 1e-15);
  EXPECT_DOUBLE_EQ(l.of("unknown"), 0.0);
  EXPECT_THROW(l.record("x", -1.0), Error);
}

IntermittentDevice make_device(double harvest_watt, double v_init = 0.0) {
  return IntermittentDevice(
      std::make_unique<ConstantHarvester>(harvest_watt),
      Capacitor(100e-6, 5.0, v_init), HysteresisSwitch(3.0, 2.0));
}

TEST(IntermittentDevice, BootsWhenCharged) {
  auto dev = make_device(1e-3);
  EXPECT_FALSE(dev.is_on());
  dev.advance(5.0);  // 1 mW for 5 s >> capacitor capacity
  EXPECT_TRUE(dev.is_on());
  EXPECT_EQ(dev.boot_count(), 1u);
}

TEST(IntermittentDevice, StaysOffWithoutEnergy) {
  auto dev = make_device(0.0);
  dev.advance(100.0);
  EXPECT_FALSE(dev.is_on());
  EXPECT_FALSE(dev.try_sense(0.001));
}

TEST(IntermittentDevice, ActivitiesDebitLedger) {
  auto dev = make_device(1e-3, 4.0);
  dev.advance(0.1);
  ASSERT_TRUE(dev.is_on());
  EXPECT_TRUE(dev.try_backscatter(0.01));
  EXPECT_GT(dev.ledger().of("backscatter_tx"), 0.0);
  EXPECT_NEAR(dev.ledger().of("backscatter_tx"),
              dev.costs().backscatter_tx_watt * 0.01, 1e-12);
}

TEST(IntermittentDevice, BackscatterCheaperThanActiveTx) {
  auto dev = make_device(1e-3, 4.5);
  dev.advance(0.1);
  ASSERT_TRUE(dev.is_on());
  ASSERT_TRUE(dev.try_backscatter(0.01));
  ASSERT_TRUE(dev.try_active_tx(0.01));
  const double ratio =
      dev.ledger().of("active_tx") / dev.ledger().of("backscatter_tx");
  // Paper: backscatter cuts communication energy to ~1/10,000 of active
  // radio; with default costs the ratio is 5000x.
  EXPECT_GT(ratio, 1000.0);
}

TEST(IntermittentDevice, LargeDrawFailsCleanly) {
  auto dev = make_device(1e-4, 3.5);
  dev.advance(0.1);
  ASSERT_TRUE(dev.is_on());
  // An hour of active radio is far beyond a 100 uF capacitor.
  EXPECT_FALSE(dev.try_active_tx(3600.0));
}

TEST(IntermittentDevice, RejectsTimeTravel) {
  auto dev = make_device(1e-3);
  dev.advance(1.0);
  EXPECT_THROW(dev.advance(0.5), Error);
}

TEST(IntermittentDevice, DutyCycleProducesReboots) {
  // Tiny harvest that barely sustains operation: heavy spending causes
  // brownouts and re-boots.
  IntermittentDevice dev(std::make_unique<ConstantHarvester>(2e-4),
                         Capacitor(20e-6, 5.0, 0.0),
                         HysteresisSwitch(4.0, 2.5));
  std::size_t attempts = 0;
  for (int i = 1; i <= 2000; ++i) {
    dev.advance(i * 0.05);
    if (dev.is_on()) {
      ++attempts;
      dev.try_spend("burst", 5e-3, 0.02);
    }
  }
  EXPECT_GT(dev.boot_count(), 1u);
  EXPECT_GT(attempts, 0u);
}

}  // namespace
}  // namespace zeiot::energy
