// Golden-trace regression: a fixed-seed end-to-end scenario (backscatter
// coexistence under fault injection + a distributed MicroDeep inference)
// exports its event trace as JSONL and must match the checked-in snapshot
// byte for byte.  Any behavioral drift — event reordering, RNG stream
// changes, altered fault schedules — shows up as a first-divergence diff.
//
// To regenerate after an *intentional* behavior change:
//   ZEIOT_UPDATE_GOLDEN=1 ./build/tests/test_golden_trace
// then commit the updated tests/golden/e2e_trace.jsonl with the change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backscatter/coexistence.hpp"
#include "fault/injector.hpp"
#include "microdeep/executor.hpp"
#include "netexec/netexec.hpp"

namespace zeiot {
namespace {

constexpr const char* kGoldenPath = ZEIOT_GOLDEN_DIR "/e2e_trace.jsonl";
constexpr const char* kGoldenSpansPath = ZEIOT_GOLDEN_DIR "/e2e_spans.jsonl";

// The scenario is deliberately small (a few thousand events) so the golden
// file stays reviewable, but crosses every traced subsystem: sim kernel,
// backscatter MAC, WLAN, fault injection, and MicroDeep hops.
void run_scenario(obs::Observability& obs) {
  // Phase 1: coexistence under chaos.
  backscatter::CoexistenceConfig cfg;
  cfg.mode = backscatter::MacMode::Proposed;
  cfg.duration_s = 8.0;
  cfg.wlan_rate_hz = 20.0;
  cfg.num_devices = 4;
  cfg.device_period_s = 1.0;
  cfg.seed = 21;

  fault::FaultSpec spec;
  spec.horizon_s = 8.0;
  spec.num_targets = 4;
  spec.intensity = 1.0;
  spec.node_death_rate = 2.0;
  spec.mean_downtime_s = 3.0;
  spec.drop_rate = 2.0;
  spec.drop_window_s = 2.0;
  spec.drop_probability = 0.5;
  spec.seed = 99;
  fault::FaultInjector inj(fault::generate_plan(spec));
  inj.set_observability(&obs);

  backscatter::CoexistenceSimulator sim(cfg);
  sim.set_observability(&obs);
  sim.set_fault_injector(&inj);
  (void)sim.run();

  // Phase 2: one distributed inference over a planned grid.
  Rng rng(5);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 4 * 4, 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);

  const Rect area{0.0, 0.0, 10.0, 10.0};
  const auto wsn = microdeep::WsnTopology::grid(area, 4, 4);
  const auto graph = microdeep::UnitGraph::build(net, {1, 8, 8});
  const auto assignment = microdeep::assign_balanced_heuristic(graph, wsn);
  ml::Tensor sample({1, 8, 8});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  (void)microdeep::execute_distributed(net, graph, assignment, wsn, sample,
                                       {}, &obs);
}

// Span-golden scenario: two fixed-seed lossy network-in-the-loop
// inferences.  Small enough to review (a few hundred spans) but crossing
// every netexec span kind: the root Inference, Sense, NodeCompute, HopTx /
// HopRetryTx / Backoff under 10% loss, and the four phase-attribution
// children that tile each root.
void run_span_scenario(obs::Observability& obs) {
  Rng rng(5);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 4 * 4, 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);

  const Rect area{0.0, 0.0, 10.0, 10.0};
  const auto wsn = microdeep::WsnTopology::grid(area, 4, 4);
  const auto graph = microdeep::UnitGraph::build(net, {1, 8, 8});
  const auto assignment = microdeep::assign_balanced_heuristic(graph, wsn);

  netexec::NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.1;
  cfg.seed = 17;
  cfg.obs = &obs;
  netexec::NetworkExecutor exec(net, graph, assignment, wsn, cfg);
  for (int i = 0; i < 2; ++i) {
    ml::Tensor sample({1, 8, 8});
    for (std::size_t j = 0; j < sample.size(); ++j) {
      sample[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    (void)exec.run(sample);
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string render_scenario_jsonl() {
  obs::Observability obs(1u << 16);  // headroom: the trace must not wrap
  run_scenario(obs);
  EXPECT_EQ(obs.trace().dropped(), 0u)
      << "golden scenario overflowed the trace buffer; raise capacity";
  std::ostringstream out;
  obs.trace().export_jsonl(out);
  return out.str();
}

TEST(GoldenTrace, ScenarioIsDeterministicInProcess) {
  obs::Observability a(1u << 16), b(1u << 16);
  run_scenario(a);
  run_scenario(b);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  EXPECT_EQ(a.trace().digest(), b.trace().digest());
}

/// Byte-level line diff against a checked-in snapshot, with
/// ZEIOT_UPDATE_GOLDEN regeneration.  Reports the first divergence.
void expect_matches_golden(const char* path, const std::string& actual_text) {
  if (std::getenv("ZEIOT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual_text;
    GTEST_SKIP() << "golden file regenerated at " << path
                 << " — review and commit it";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path
                            << "; regenerate with ZEIOT_UPDATE_GOLDEN=1";
  std::ostringstream golden_buf;
  golden_buf << in.rdbuf();

  const std::vector<std::string> expected = split_lines(golden_buf.str());
  const std::vector<std::string> actual = split_lines(actual_text);

  const std::size_t common = std::min(expected.size(), actual.size());
  for (std::size_t i = 0; i < common; ++i) {
    ASSERT_EQ(expected[i], actual[i])
        << "diverges at line " << (i + 1) << " of " << expected.size()
        << "\n  golden: " << expected[i] << "\n  actual: " << actual[i]
        << "\nIf the change is intentional, regenerate with "
           "ZEIOT_UPDATE_GOLDEN=1 and commit the new snapshot.";
  }
  ASSERT_EQ(expected.size(), actual.size())
      << "length changed (golden " << expected.size() << " lines, run "
      << actual.size() << " lines); first " << common << " lines match. "
      << "Regenerate with ZEIOT_UPDATE_GOLDEN=1 if intentional.";
}

TEST(GoldenTrace, MatchesCheckedInSnapshot) {
  expect_matches_golden(kGoldenPath, render_scenario_jsonl());
}

TEST(GoldenTrace, SpanTreeMatchesCheckedInSnapshot) {
  obs::Observability obs;
  obs.enable_spans(1u << 14);
  run_span_scenario(obs);
  ASSERT_EQ(obs.spans().dropped(), 0u)
      << "golden span scenario overflowed the recorder; raise capacity";
  ASSERT_EQ(obs.spans().root_count(), 2u);  // one root per inference

  // In-process double run first: the snapshot only pins what is already
  // deterministic.
  obs::Observability again;
  again.enable_spans(1u << 14);
  run_span_scenario(again);
  ASSERT_EQ(obs.spans().digest(), again.spans().digest());

  std::ostringstream out;
  obs.spans().export_jsonl(out);
  expect_matches_golden(kGoldenSpansPath, out.str());
}

}  // namespace
}  // namespace zeiot
