// zeiot::par — deterministic thread pool, chunking, ordered reduction, and
// the cross-subsystem determinism guarantee: bit-identical results at any
// worker count for the trainer, the assignment search, and merged metrics.
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "microdeep/distributed.hpp"
#include "microdeep/executor.hpp"
#include "microdeep/search.hpp"
#include "ml/trainer.hpp"
#include "par/parallel.hpp"

using namespace zeiot;
using namespace zeiot::par;

// ---------------------------------------------------------------- chunks --

TEST(MakeChunks, CoversRangeContiguouslyWithSequentialIndices) {
  for (std::size_t n : {1u, 7u, 64u, 100u, 1000u}) {
    for (std::size_t grain : {1u, 3u, 8u, 64u, 2000u}) {
      const auto chunks = make_chunks(n, grain);
      ASSERT_FALSE(chunks.empty());
      EXPECT_EQ(chunks.front().begin, 0u);
      EXPECT_EQ(chunks.back().end, n);
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        EXPECT_EQ(chunks[c].index, c);
        EXPECT_LT(chunks[c].begin, chunks[c].end);
        EXPECT_LE(chunks[c].size(), grain);
        if (c > 0) EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);
      }
    }
  }
}

TEST(MakeChunks, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(make_chunks(0).empty());
  EXPECT_TRUE(make_chunks(0, 5).empty());
}

TEST(MakeChunks, DefaultGrainBoundsChunkCount) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 10000u}) {
    const auto chunks = make_chunks(n);
    EXPECT_LE(chunks.size(), kDefaultMaxChunks);
    EXPECT_EQ(chunks.back().end, n);
  }
}

// ------------------------------------------------------------------ pool --

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SurvivesRepeatedReuse) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(64, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.run(64, [&](std::size_t i) {
      if (i == 5 || i == 17 || i == 40) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
  // The pool stays usable after a throwing region.
  std::atomic<int> ok{0};
  pool.run(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, NestedRunsExecuteInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.run(8, [&](std::size_t) {
    // Re-entrant use of the same pool must serialize, not deadlock.
    pool.run(50, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 50u);
}

TEST(DefaultThreads, HonorsZeiotThreadsEnv) {
  ASSERT_EQ(setenv("ZEIOT_THREADS", "3", 1), 0);
  EXPECT_EQ(default_threads(), 3u);
  ASSERT_EQ(setenv("ZEIOT_THREADS", "99999", 1), 0);
  EXPECT_EQ(default_threads(), 512u);  // clamped
  ASSERT_EQ(setenv("ZEIOT_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(default_threads(), 1u);  // falls back to hardware
  ASSERT_EQ(unsetenv("ZEIOT_THREADS"), 0);
  EXPECT_GE(default_threads(), 1u);
}

// ------------------------------------------------------- loops/reductions --

TEST(ParallelFor, MatchesSerialForAnyPoolSize) {
  constexpr std::size_t kN = 517;
  std::vector<int> expected(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    expected[i] = static_cast<int>(i * i % 1009);
  }
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<int> got(kN, -1);
    parallel_for(
        kN, [&](std::size_t i) { got[i] = static_cast<int>(i * i % 1009); },
        &pool, 7);
    EXPECT_EQ(got, expected);
  }
}

TEST(ParallelForChunks, SeesEveryChunkOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(make_chunks(100, 9).size());
  parallel_for_chunks(
      100, 9,
      [&](const ChunkRange& c) {
        EXPECT_EQ(c.size(), c.end - c.begin);
        seen[c.index].fetch_add(1);
      },
      &pool);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(OrderedReduce, FloatSumIsBitIdenticalAcrossPoolSizes) {
  // Values spanning many magnitudes: float addition is non-associative
  // here, so any reduction-order difference would change the bits.
  constexpr std::size_t kN = 4096;
  std::vector<float> xs(kN);
  Rng rng(99);
  for (auto& x : xs) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0)) *
        static_cast<float>(1 << (rng.uniform_int(0, 20)));
  }
  auto sum_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return ordered_reduce<float>(
        kN, 0.0f,
        [&](const ChunkRange& c) {
          float s = 0.0f;
          for (std::size_t i = c.begin; i < c.end; ++i) s += xs[i];
          return s;
        },
        [](float a, float b) { return a + b; }, &pool, 64);
  };
  const float s1 = sum_with(1);
  const float s2 = sum_with(2);
  const float s4 = sum_with(4);
  EXPECT_EQ(s1, s2);  // exact bit equality, not near-equality
  EXPECT_EQ(s1, s4);
}

TEST(OrderedReduce, FoldsChunksInIndexOrder) {
  ThreadPool pool(4);
  const auto order = ordered_reduce<std::vector<std::size_t>>(
      100, {}, [](const ChunkRange& c) { return std::vector<std::size_t>{c.index}; },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> v) {
        acc.push_back(v.front());
        return acc;
      },
      &pool, 9);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Substream, IsAPureFunctionOfBaseAndKey) {
  const Rng base(1234);
  Rng a = substream(base, 7);
  Rng b = substream(base, 7);
  Rng c = substream(base, 8);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const double va = a.uniform(0.0, 1.0);
    EXPECT_EQ(va, b.uniform(0.0, 1.0));
    if (va != c.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  // The base stream is never advanced by substream().
  Rng fresh(1234);
  Rng copy = base;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(copy.uniform(0.0, 1.0), fresh.uniform(0.0, 1.0));
  }
}

// ------------------------------------------- cross-subsystem determinism --

namespace {

ml::Network make_test_net(std::uint64_t seed) {
  Rng rng(seed);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2 * 6 * 6, 2, rng);
  return net;
}

ml::Dataset make_test_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  for (std::size_t s = 0; s < n; ++s) {
    ml::Tensor x({1, 6, 6});
    double mean = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      mean += x[i];
    }
    data.add(std::move(x), mean > 0.0 ? 1 : 0);
  }
  return data;
}

struct TrainOutcome {
  ml::TrainHistory hist;
  std::vector<float> weights;
  double accuracy = 0.0;
};

TrainOutcome train_with_pool(std::size_t threads) {
  ThreadPool pool(threads);
  ml::Network net = make_test_net(7);
  ml::Adam opt(0.01);
  ml::Trainer trainer(net, opt, Rng(11), &pool);
  ml::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.shard_grain = 4;
  const ml::Dataset train = make_test_data(60, 21);
  const ml::Dataset val = make_test_data(20, 22);
  TrainOutcome out;
  out.hist = trainer.fit(train, val, cfg);
  for (ml::Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      out.weights.push_back(p->value[i]);
    }
  }
  out.accuracy = trainer.evaluate(val);
  return out;
}

}  // namespace

TEST(Determinism, TrainingIsBitIdenticalAcrossPoolSizes) {
  const TrainOutcome a = train_with_pool(1);
  const TrainOutcome b = train_with_pool(4);
  ASSERT_EQ(a.hist.epochs.size(), b.hist.epochs.size());
  for (std::size_t e = 0; e < a.hist.epochs.size(); ++e) {
    EXPECT_EQ(a.hist.epochs[e].train_loss, b.hist.epochs[e].train_loss);
    EXPECT_EQ(a.hist.epochs[e].train_accuracy, b.hist.epochs[e].train_accuracy);
    EXPECT_EQ(a.hist.epochs[e].val_accuracy, b.hist.epochs[e].val_accuracy);
  }
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    ASSERT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
  }
  EXPECT_EQ(a.accuracy, b.accuracy);
}

TEST(Determinism, AssignmentSearchPicksSameWinnerAcrossPoolSizes) {
  ml::Network net = make_test_net(3);
  const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
  const auto wsn = microdeep::WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
  auto run_search = [&](std::size_t threads, obs::Observability& obs) {
    ThreadPool pool(threads);
    microdeep::AssignmentSearchOptions opts;
    opts.pool = &pool;
    return microdeep::search_assignment(graph, wsn, opts, &obs);
  };
  obs::Observability obs1, obs4;
  const auto r1 = run_search(1, obs1);
  const auto r4 = run_search(4, obs4);
  EXPECT_EQ(r1.best_index, r4.best_index);
  EXPECT_EQ(r1.best_max_cost, r4.best_max_cost);
  ASSERT_EQ(r1.candidates.size(), r4.candidates.size());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    EXPECT_EQ(r1.candidates[i].label, r4.candidates[i].label);
    EXPECT_EQ(r1.candidates[i].max_cost, r4.candidates[i].max_cost);
    EXPECT_EQ(r1.candidates[i].mean_cost, r4.candidates[i].mean_cost);
  }
  for (microdeep::UnitId u = 0; u < graph.num_units(); ++u) {
    EXPECT_EQ(r1.best.node_of(u), r4.best.node_of(u));
  }
  // The published gauges (and therefore the metrics JSON) agree too.
  EXPECT_EQ(obs1.metrics().to_json(), obs4.metrics().to_json());
}

TEST(Determinism, ExecutorTraceDigestMatchesAcrossPoolSizes) {
  // End-to-end probe: train with a pool of 1 vs 4, then run the distributed
  // executor over the resulting weights with tracing on.  Identical weights
  // and assignment must give identical traces (bit-exact digest).
  auto digest_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ml::Network net = make_test_net(7);
    ml::Adam opt(0.01);
    ml::Trainer trainer(net, opt, Rng(11), &pool);
    ml::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 16;
    cfg.shard_grain = 4;
    trainer.fit(make_test_data(48, 33), {}, cfg);
    const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
    const auto wsn = microdeep::WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
    const auto assignment = microdeep::assign_balanced_heuristic(graph, wsn);
    ml::Tensor sample({1, 6, 6});
    Rng srng(5);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      sample[i] = static_cast<float>(srng.uniform(-1.0, 1.0));
    }
    obs::Observability obs;
    microdeep::execute_distributed(net, graph, assignment, wsn, sample,
                                   microdeep::LatencyModel{}, &obs);
    return obs.trace().digest();
  };
  EXPECT_EQ(digest_with(1), digest_with(4));
}

TEST(Determinism, MergedMetricsRegistriesMatchAcrossPoolSizes) {
  // The bench-sweep pattern: per-point registries merged in point order.
  auto sweep_json = [&](std::size_t threads) {
    ThreadPool pool(threads);
    constexpr std::size_t kPoints = 6;
    std::vector<obs::MetricsRegistry> per(kPoints);
    parallel_for(
        kPoints,
        [&](std::size_t i) {
          per[i].counter("sweep.work", {{"point", std::to_string(i)}})
              .inc(static_cast<double>(i + 1));
          per[i].gauge("sweep.value").set(static_cast<double>(i * i));
        },
        &pool, 1);
    obs::MetricsRegistry merged;
    for (const auto& r : per) merged.merge(r);
    return merged.to_json();
  };
  EXPECT_EQ(sweep_json(1), sweep_json(4));
}

// ------------------------------------------------- fleet substream purity --
//
// Property (rides on the fleet simulator): a deployment's outcome digest is
// a pure function of (fleet_seed, kind, cell_id, parameters).  Randomized
// fleet configurations — mixed templates, sizes 1..256, random seeds —
// must reproduce each deployment's digest when that deployment runs alone
// in a singleton fleet, and a different fleet seed must move the digests.

#include "fleet/fleet.hpp"

namespace {

std::vector<zeiot::fleet::DeploymentSpec> random_fleet(Rng& rng,
                                                       std::size_t n,
                                                       bool allow_inference) {
  using zeiot::fleet::DeploymentSpec;
  using zeiot::fleet::TemplateKind;
  std::vector<DeploymentSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    DeploymentSpec spec;
    // Mostly cheap E6 cells; a sprinkle of CNN deployments when allowed.
    const bool inference = allow_inference && rng.uniform_int(0, 7) == 0;
    if (inference) {
      spec.kind = rng.uniform_int(0, 1) == 0 ? TemplateKind::LoungeE1
                                             : TemplateKind::IrArrayE2;
      spec.samples = 1;
    } else {
      spec.kind = TemplateKind::BackscatterCellE6;
      spec.devices = static_cast<std::size_t>(rng.uniform_int(1, 8));
      spec.horizon_s = 0.25;
      spec.wlan_rate_hz = static_cast<double>(rng.uniform_int(10, 60));
    }
    spec.cell_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    specs.push_back(spec);
  }
  return specs;
}

zeiot::fleet::FleetResult run_fleet_cfg(
    std::vector<zeiot::fleet::DeploymentSpec> specs, std::uint64_t seed) {
  zeiot::obs::Observability obs(1 << 12);
  zeiot::fleet::FleetConfig cfg;
  cfg.seed = seed;
  cfg.deployments = std::move(specs);
  cfg.obs = &obs;
  zeiot::fleet::FleetSimulator fleet(std::move(cfg));
  return fleet.run();
}

}  // namespace

TEST(Determinism, FleetDeploymentDigestsDependOnlyOnSeedAndIdentity) {
  Rng meta(20260808);
  // Trial sizes cover the spec'd 1..256 range; inference templates join
  // only the small trials (template construction dominates otherwise).
  const struct {
    std::size_t n;
    bool inference;
  } trials[] = {{1, false}, {12, true}, {256, false}};
  for (const auto& trial : trials) {
    const std::uint64_t fleet_seed =
        static_cast<std::uint64_t>(meta.uniform_int(1, 1000000));
    const auto specs = random_fleet(meta, trial.n, trial.inference);
    const auto full = run_fleet_cfg(specs, fleet_seed);

    // Each probed deployment, alone in a singleton fleet, reproduces its
    // in-fleet digest exactly.
    for (int probe = 0; probe < 3; ++probe) {
      const auto k = static_cast<std::size_t>(
          meta.uniform_int(0, static_cast<std::int64_t>(trial.n) - 1));
      const auto solo = run_fleet_cfg({specs[k]}, fleet_seed);
      EXPECT_EQ(solo.digest[0], full.digest[k])
          << "n=" << trial.n << " k=" << k << " seed=" << fleet_seed;
    }

    // A different fleet seed re-keys every deployment substream.
    const auto reseeded = run_fleet_cfg(specs, fleet_seed + 1);
    EXPECT_NE(reseeded.digest, full.digest)
        << "fleet seed had no effect (n=" << trial.n << ")";
  }
}
