#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "microdeep/assignment.hpp"
#include "microdeep/comm_cost.hpp"
#include "microdeep/distributed.hpp"
#include "microdeep/unit_graph.hpp"
#include "microdeep/wsn.hpp"

namespace zeiot::microdeep {
namespace {

const Rect kArea{0.0, 0.0, 10.0, 10.0};

ml::Network small_cnn(Rng& rng) {
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2 * 3 * 3, 4, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(4, 2, rng);
  return net;
}

// -------------------------------------------------------------------- WSN --

TEST(Wsn, GridIsConnectedWithExpectedDegree) {
  const auto wsn = WsnTopology::grid(kArea, 5, 5);
  EXPECT_EQ(wsn.num_nodes(), 25u);
  // Interior nodes have 8 neighbours; corners 3.
  EXPECT_GE(wsn.mean_degree(), 4.0);
  EXPECT_EQ(wsn.neighbors(12).size(), 8u);  // centre node
  EXPECT_EQ(wsn.neighbors(0).size(), 3u);   // corner node
}

TEST(Wsn, HopsAreShortestPaths) {
  const auto wsn = WsnTopology::grid(kArea, 5, 5);
  EXPECT_EQ(wsn.hops(0, 0), 0);
  EXPECT_EQ(wsn.hops(0, 1), 1);
  // Opposite corners of a 5x5 8-connected grid: 4 hops.
  EXPECT_EQ(wsn.hops(0, 24), 4);
  EXPECT_EQ(wsn.hops(24, 0), 4);
}

TEST(Wsn, NextHopWalksToDestination) {
  const auto wsn = WsnTopology::grid(kArea, 5, 5);
  NodeId cur = 0;
  int steps = 0;
  while (cur != 24 && steps < 100) {
    cur = wsn.next_hop(cur, 24);
    ++steps;
  }
  EXPECT_EQ(cur, 24u);
  EXPECT_EQ(steps, wsn.hops(0, 24));
}

TEST(Wsn, NearestNode) {
  const auto wsn = WsnTopology::grid(kArea, 5, 5);
  // The node at grid cell (0,0) has centre (1,1).
  EXPECT_EQ(wsn.nearest_node({1.0, 1.0}), 0u);
  EXPECT_EQ(wsn.nearest_node({9.0, 9.0}), 24u);
}

TEST(Wsn, RandomUniformConnects) {
  Rng rng(3);
  const auto wsn = WsnTopology::random_uniform(kArea, 40, rng);
  EXPECT_EQ(wsn.num_nodes(), 40u);
  for (NodeId a = 0; a < 40; ++a) {
    EXPECT_GE(wsn.hops(0, a), 0);  // reachable
  }
}

TEST(Wsn, DisconnectedTopologyRejected) {
  // Two nodes far apart relative to the radius.
  EXPECT_THROW(WsnTopology({{0.0, 0.0}, {9.0, 9.0}}, kArea, 1.0), Error);
}

TEST(Wsn, IsLinkSymmetric) {
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  for (NodeId a = 0; a < wsn.num_nodes(); ++a) {
    for (NodeId b = 0; b < wsn.num_nodes(); ++b) {
      EXPECT_EQ(wsn.is_link(a, b), wsn.is_link(b, a));
    }
  }
}

// -------------------------------------------------------------- UnitGraph --

TEST(UnitGraph, LayerStructure) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  // Input(6x6) + Conv(6x6) + Pool(3x3) + Dense(4) + Dense(2).
  ASSERT_EQ(g.layers().size(), 5u);
  EXPECT_EQ(g.layers()[0].kind, UnitLayer::Kind::Input);
  EXPECT_EQ(g.layers()[1].kind, UnitLayer::Kind::Conv);
  EXPECT_EQ(g.layers()[2].kind, UnitLayer::Kind::Pool);
  EXPECT_EQ(g.layers()[3].kind, UnitLayer::Kind::Dense);
  EXPECT_EQ(g.num_units(), 36u + 36u + 9u + 4u + 2u);
}

TEST(UnitGraph, EdgeCounts) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  // Conv 3x3 pad 1 on 6x6: interior units have 9 inputs, edges fewer.
  // Pool 2 on 6x6 -> 3x3: exactly 4 inputs each = 36 edges.
  // Dense: 9*4 + 4*2 = 44.
  std::size_t conv_edges = 0, pool_edges = 0, dense_edges = 0;
  for (const UnitEdge& e : g.edges()) {
    const auto dst_layer = g.layer_of(e.dst);
    if (dst_layer == 1) ++conv_edges;
    else if (dst_layer == 2) ++pool_edges;
    else ++dense_edges;
  }
  EXPECT_EQ(pool_edges, 36u);
  EXPECT_EQ(dense_edges, 44u);
  // 4 corners(4) + 16 edge cells(6) + 16 interior(9) = 16+96+144 = 256.
  EXPECT_EQ(conv_edges, 256u);
}

TEST(UnitGraph, PositionsInsideArea) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  for (UnitId u = 0; u < g.num_units(); ++u) {
    const Point2D p = g.position(u, kArea);
    EXPECT_TRUE(kArea.contains(p));
  }
}

TEST(UnitGraph, NetToUnitLayerMapping) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  EXPECT_EQ(g.unit_layer_of_net_layer(0), 1);   // conv
  EXPECT_EQ(g.unit_layer_of_net_layer(1), -1);  // relu
  EXPECT_EQ(g.unit_layer_of_net_layer(2), 2);   // pool
  EXPECT_EQ(g.unit_layer_of_net_layer(4), 3);   // dense 1
  EXPECT_EQ(g.unit_layer_of_net_layer(6), 4);   // dense 2
}

TEST(UnitGraph, NeighborsSymmetric) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  for (const UnitEdge& e : g.edges()) {
    const auto& ns = g.graph_neighbors(e.src);
    const auto& nd = g.graph_neighbors(e.dst);
    EXPECT_NE(std::find(ns.begin(), ns.end(), e.dst), ns.end());
    EXPECT_NE(std::find(nd.begin(), nd.end(), e.src), nd.end());
  }
}

// ------------------------------------------------------------- Assignment --

TEST(Assignment, CentralizedPinsInputsLocally) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_centralized(g, wsn, 5);
  // Non-input units all on the sink.
  const auto& input = g.layers().front();
  for (UnitId u = static_cast<UnitId>(input.num_units()); u < g.num_units();
       ++u) {
    EXPECT_EQ(a.node_of(u), 5u);
  }
  // Input units stay at their sensing nodes (several distinct nodes).
  std::set<NodeId> owners;
  for (int i = 0; i < input.num_units(); ++i) {
    owners.insert(a.node_of(static_cast<UnitId>(i)));
  }
  EXPECT_GT(owners.size(), 4u);
}

TEST(Assignment, NearestIsGeometric) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  for (UnitId u = 0; u < g.num_units(); ++u) {
    EXPECT_EQ(a.node_of(u), wsn.nearest_node(g.position(u, kArea)));
  }
}

TEST(Assignment, HeuristicBalancesLoad) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto nearest = assign_nearest(g, wsn);
  const auto heur = assign_balanced_heuristic(g, wsn);
  EXPECT_LE(heur.max_units_per_node(wsn.num_nodes()),
            nearest.max_units_per_node(wsn.num_nodes()));
  // Balanced to within slack of the ceiling average.
  const std::size_t target =
      (g.num_units() + wsn.num_nodes() - 1) / wsn.num_nodes();
  EXPECT_LE(heur.max_units_per_node(wsn.num_nodes()), target + 1);
}

TEST(Assignment, HeuristicKeepsInputsPinned) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto heur = assign_balanced_heuristic(g, wsn);
  const auto& input = g.layers().front();
  for (int i = 0; i < input.num_units(); ++i) {
    const auto u = static_cast<UnitId>(i);
    EXPECT_EQ(heur.node_of(u), wsn.nearest_node(g.position(u, kArea)));
  }
}

TEST(Assignment, CrossEdgeFractionBounds) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  for (const auto& a : {assign_centralized(g, wsn, 0), assign_nearest(g, wsn),
                        assign_balanced_heuristic(g, wsn)}) {
    const double f = a.cross_edge_fraction();
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    for (std::size_t l = 1; l < g.layers().size(); ++l) {
      const double fl = a.cross_edge_fraction_into_layer(l);
      EXPECT_GE(fl, 0.0);
      EXPECT_LE(fl, 1.0);
    }
  }
}

TEST(Assignment, ReassignDeadNodesMovesEverything) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  auto a = assign_nearest(g, wsn);
  std::vector<bool> dead(wsn.num_nodes(), false);
  dead[0] = dead[5] = true;
  a.reassign_dead_nodes(wsn, dead);
  for (UnitId u = 0; u < g.num_units(); ++u) {
    EXPECT_FALSE(dead[a.node_of(u)]);
  }
  std::vector<bool> all_dead(wsn.num_nodes(), true);
  EXPECT_THROW(a.reassign_dead_nodes(wsn, all_dead), Error);
}

// -------------------------------------------------------------- Comm cost --

TEST(CommCost, SingleNodeNetworkIsFree) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const WsnTopology wsn({{5.0, 5.0}}, kArea, 1.0);
  std::vector<NodeId> map(g.num_units(), 0);
  const Assignment a(&g, std::move(map));
  const auto r = compute_comm_cost(a, wsn);
  EXPECT_DOUBLE_EQ(r.max_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.total_messages, 0.0);
}

TEST(CommCost, CentralizedConcentratesOnSink) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto central = assign_centralized(g, wsn, 5);
  const auto r = compute_comm_cost(central, wsn);
  EXPECT_EQ(r.hottest_node, 5u);
  EXPECT_GT(r.max_cost, 2.0 * r.mean_cost);
}

TEST(CommCost, DistributionPaysOffAtScale) {
  // At toy scale gathering everything at a sink is cheap; the distributed
  // assignment must win once the sensed field outgrows a node's share.
  Rng rng(1);
  ml::Network big;
  big.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  big.emplace<ml::ReLU>();
  big.emplace<ml::MaxPool2D>(2);
  big.emplace<ml::Flatten>();
  big.emplace<ml::Dense>(2 * 6 * 6, 4, rng);
  big.emplace<ml::ReLU>();
  big.emplace<ml::Dense>(4, 2, rng);
  const auto g = UnitGraph::build(big, {1, 12, 12});
  const auto wsn = WsnTopology::grid(kArea, 6, 6);
  const auto central = compute_comm_cost(assign_centralized(g, wsn, 14), wsn);
  const auto heur = compute_comm_cost(assign_balanced_heuristic(g, wsn), wsn);
  const auto nearest = compute_comm_cost(assign_nearest(g, wsn), wsn);
  EXPECT_LT(heur.max_cost, central.max_cost);
  EXPECT_LT(nearest.max_cost, central.max_cost);
}

TEST(CommCost, CentralizedPeakScalesWithFieldDistributedDoesNot) {
  auto peak_pair = [](int cells, int nodes_per_side) {
    Rng rng(1);
    ml::Network net;
    net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
    net.emplace<ml::ReLU>();
    net.emplace<ml::MaxPool2D>(2);
    net.emplace<ml::Flatten>();
    net.emplace<ml::Dense>(2 * (cells / 2) * (cells / 2), 4, rng);
    net.emplace<ml::ReLU>();
    net.emplace<ml::Dense>(4, 2, rng);
    const auto g = UnitGraph::build(net, {1, cells, cells});
    const auto wsn =
        WsnTopology::grid(kArea, nodes_per_side, nodes_per_side);
    return std::pair{
        compute_comm_cost(assign_centralized(g, wsn, 0), wsn).max_cost,
        compute_comm_cost(assign_nearest(g, wsn), wsn).max_cost};
  };
  const auto [c_small, d_small] = peak_pair(8, 4);
  const auto [c_big, d_big] = peak_pair(16, 8);
  // Quadrupling the sensed cells roughly quadruples the sink's load but
  // leaves the per-node distributed load nearly flat.
  EXPECT_GT(c_big / c_small, 3.0);
  EXPECT_LT(d_big / d_small, 2.0);
}

TEST(CommCost, BackwardAddsTrafficButSparesSensors) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  CommCostOptions fwd;
  fwd.include_backward = false;
  CommCostOptions both;
  both.include_backward = true;
  const auto rf = compute_comm_cost(a, wsn, fwd);
  const auto rb = compute_comm_cost(a, wsn, both);
  // Backward retraces every route except those into the input layer
  // (sensing units receive no error), so traffic grows but less than 2x.
  EXPECT_GT(rb.total_messages, rf.total_messages);
  EXPECT_LT(rb.total_messages, 2.0 * rf.total_messages);
}

TEST(CommCost, MultihopChargesRelays) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_centralized(g, wsn, 15);  // corner sink: long routes
  CommCostOptions multi;
  multi.multihop = true;
  CommCostOptions single;
  single.multihop = false;
  const auto rm = compute_comm_cost(a, wsn, multi);
  const auto rs = compute_comm_cost(a, wsn, single);
  EXPECT_GT(rm.total_hop_transmissions, rs.total_hop_transmissions);
  // End-to-end message count is routing-independent.
  EXPECT_DOUBLE_EQ(rm.total_messages, rs.total_messages);
}

TEST(CommCost, PerNodeSumsToTwiceHops) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto g = UnitGraph::build(net, {1, 6, 6});
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  const auto a = assign_nearest(g, wsn);
  const auto r = compute_comm_cost(a, wsn);
  double sum = 0.0;
  for (double c : r.per_node) sum += c;
  // Every hop charges exactly one tx and one rx.
  EXPECT_NEAR(sum, 2.0 * r.total_hop_transmissions, 1e-9);
}

// ------------------------------------------------------- MicroDeep model --

TEST(MicroDeepModel, BuildsAndReportsCost) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  MicroDeepConfig cfg;
  cfg.assignment = AssignmentKind::BalancedHeuristic;
  MicroDeepModel model(net, wsn, {1, 6, 6}, cfg);
  const auto r = model.comm_cost();
  EXPECT_GT(r.total_messages, 0.0);
  EXPECT_EQ(r.per_node.size(), wsn.num_nodes());
}

TEST(MicroDeepModel, MaskDeadInputsZeroesCells) {
  Rng rng(1);
  ml::Network net = small_cnn(rng);
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  MicroDeepModel model(net, wsn, {1, 6, 6});
  ml::Dataset ds;
  ds.add(ml::Tensor({1, 6, 6}, 1.0f), 0);
  std::vector<bool> dead(wsn.num_nodes(), false);
  dead[0] = true;  // kills the node owning the top-left cells
  const auto masked = mask_dead_inputs(ds, model.unit_graph(), wsn, dead);
  double zeros = 0.0;
  for (std::size_t i = 0; i < masked.x(0).size(); ++i) {
    if (masked.x(0)[i] == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 0.0);
  EXPECT_LT(zeros, 36.0);
}

TEST(MicroDeepModel, ZeroStalenessHookIsExact) {
  // With staleness 0 no hook is installed, so training is plain SGD; the
  // model must still train and evaluate without errors.
  Rng rng(2);
  ml::Network net = small_cnn(rng);
  const auto wsn = WsnTopology::grid(kArea, 4, 4);
  MicroDeepConfig cfg;
  cfg.staleness = 0.0;
  MicroDeepModel model(net, wsn, {1, 6, 6}, cfg);
  ml::Dataset ds;
  Rng drng(3);
  for (int i = 0; i < 40; ++i) {
    ml::Tensor x({1, 6, 6});
    const int label = i % 2;
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = static_cast<float>(drng.normal(label, 0.3));
    }
    ds.add(std::move(x), label);
  }
  ml::Sgd opt(0.05);
  ml::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.batch_size = 8;
  const auto hist = model.train(ds, ds, tcfg, opt);
  EXPECT_GT(hist.best_val_accuracy, 0.9);
}

}  // namespace
}  // namespace zeiot::microdeep
