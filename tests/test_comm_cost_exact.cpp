// Exact-value tests of the communication-cost accounting on topologies
// small enough to compute by hand — the ground truth behind the Fig.-10
// numbers.
#include <gtest/gtest.h>

#include "microdeep/comm_cost.hpp"

namespace zeiot::microdeep {
namespace {

/// Two nodes on a line covering a 1x2 cell field.
struct TinyWorld {
  TinyWorld()
      : wsn({{0.5, 0.5}, {1.5, 0.5}}, {0.0, 0.0, 2.0, 1.0}, 1.2),
        rng(1) {}

  WsnTopology wsn;
  Rng rng;
};

TEST(CommCostExact, AllLocalIsFree) {
  TinyWorld w;
  // 1x1 convolution: each conv unit sits exactly on its input cell.
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 2, w.rng);
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  // Input and conv units are colocated; only conv->dense can cross.
  const UnitLayer& conv = g.layers()[1];
  for (int i = 0; i < conv.num_units(); ++i) {
    const UnitId u = conv.first_unit + static_cast<UnitId>(i);
    EXPECT_EQ(a.node_of(u), a.node_of(static_cast<UnitId>(i)));
  }
}

TEST(CommCostExact, SingleDenseUnitAggregationTree) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 1, w.rng);  // one output unit
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  // The dense unit rasters to the area centre -> nearest is node 0; its
  // sources are the conv units on nodes 0 and 1; only node 1 contributes a
  // tree edge (1 -> 0), traversed forward and backward.
  const auto r = compute_comm_cost(a, w.wsn);
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);           // 1 up + 1 down
  EXPECT_DOUBLE_EQ(r.total_hop_transmissions, 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[0], 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[1], 2.0);
  EXPECT_DOUBLE_EQ(r.max_cost, 2.0);
}

TEST(CommCostExact, UnicastDedupVsAggregation) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 2, w.rng);  // two output units
  const auto g = UnitGraph::build(net, {1, 1, 2});
  // Hand-built assignment: inputs and conv units stay on their cells'
  // nodes; BOTH dense units are pinned to node 0, so the remote conv unit
  // (node 1) feeds two consumers on the same destination node.
  std::vector<NodeId> map(g.num_units());
  map[0] = 0;  // input cell 0
  map[1] = 1;  // input cell 1
  const UnitLayer& conv = g.layers()[1];
  map[conv.first_unit + 0] = 0;
  map[conv.first_unit + 1] = 1;
  const UnitLayer& dense = g.layers()[2];
  map[dense.first_unit + 0] = 0;
  map[dense.first_unit + 1] = 0;
  const Assignment a(&g, std::move(map));
  //  * unicast: the remote conv activation travels ONCE to node 0 (dedup
  //    by producer x destination node), and one error message returns;
  //  * aggregation: each dense unit owns its own partial-sum tree, so the
  //    single tree edge is paid per unit and per direction.
  CommCostOptions unicast;
  unicast.aggregate_dense = false;
  CommCostOptions agg;
  agg.aggregate_dense = true;
  const auto ru = compute_comm_cost(a, w.wsn, unicast);
  const auto ra = compute_comm_cost(a, w.wsn, agg);
  EXPECT_DOUBLE_EQ(ru.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(ra.total_messages, 4.0);
}

TEST(CommCostExact, ForwardOnlyHalvesTheTree) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 1, w.rng);
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  CommCostOptions fwd;
  fwd.include_backward = false;
  const auto r = compute_comm_cost(a, w.wsn, fwd);
  EXPECT_DOUBLE_EQ(r.total_messages, 1.0);
  EXPECT_DOUBLE_EQ(r.max_cost, 1.0);
}

TEST(CommCostExact, InputGatheringCountsForwardOnly) {
  // Centralize a 3x3 conv net on a 3-node line: every remote input cell
  // sends its value to the sink once, and no error flows back to sensors.
  const WsnTopology wsn({{0.5, 0.5}, {1.5, 0.5}, {2.5, 0.5}},
                        {0.0, 0.0, 3.0, 1.0}, 1.2);
  Rng rng(2);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 3, 1, rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3, 1, rng);
  const auto g = UnitGraph::build(net, {1, 1, 3});
  const auto a = assign_centralized(g, wsn, 1);
  const auto r = compute_comm_cost(a, wsn);
  // Input units: cells at nodes 0,1,2; conv units all on sink node 1.
  // Cells 0 and 2 each send one forward message (one hop each), nothing
  // returns.  Conv/dense are colocated on the sink, so nothing else moves.
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[1], 2.0);  // sink receives both
  EXPECT_DOUBLE_EQ(r.per_node[0], 1.0);
  EXPECT_DOUBLE_EQ(r.per_node[2], 1.0);
}

TEST(CommCostExact, RelayChargedOnThreeNodeLine) {
  // Force a message across the full line: sink at node 0, sensing cell at
  // node 2 -> the value relays through node 1.
  const WsnTopology wsn({{0.5, 0.5}, {1.5, 0.5}, {2.5, 0.5}},
                        {0.0, 0.0, 3.0, 1.0}, 1.2);
  Rng rng(3);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3, 1, rng);
  const auto g = UnitGraph::build(net, {1, 1, 3});
  const auto a = assign_centralized(g, wsn, 0);
  CommCostOptions fwd;
  fwd.include_backward = false;
  const auto r = compute_comm_cost(a, wsn, fwd);
  // Cells at nodes 1 and 2 forward to sink 0: node1's message = 1 hop,
  // node2's = 2 hops through node 1.
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(r.total_hop_transmissions, 3.0);
  EXPECT_DOUBLE_EQ(r.per_node[2], 1.0);       // tx once
  EXPECT_DOUBLE_EQ(r.per_node[1], 1.0 + 2.0); // own tx + relay rx/tx
  EXPECT_DOUBLE_EQ(r.per_node[0], 2.0);       // rx both messages
}

}  // namespace
}  // namespace zeiot::microdeep
