// Exact-value tests of the communication-cost accounting on topologies
// small enough to compute by hand — the ground truth behind the Fig.-10
// numbers.
#include <gtest/gtest.h>

#include "microdeep/comm_cost.hpp"
#include "microdeep/search.hpp"

namespace zeiot::microdeep {
namespace {

/// Two nodes on a line covering a 1x2 cell field.
struct TinyWorld {
  TinyWorld()
      : wsn({{0.5, 0.5}, {1.5, 0.5}}, {0.0, 0.0, 2.0, 1.0}, 1.2),
        rng(1) {}

  WsnTopology wsn;
  Rng rng;
};

TEST(CommCostExact, AllLocalIsFree) {
  TinyWorld w;
  // 1x1 convolution: each conv unit sits exactly on its input cell.
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 2, w.rng);
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  // Input and conv units are colocated; only conv->dense can cross.
  const UnitLayer& conv = g.layers()[1];
  for (int i = 0; i < conv.num_units(); ++i) {
    const UnitId u = conv.first_unit + static_cast<UnitId>(i);
    EXPECT_EQ(a.node_of(u), a.node_of(static_cast<UnitId>(i)));
  }
}

TEST(CommCostExact, SingleDenseUnitAggregationTree) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 1, w.rng);  // one output unit
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  // The dense unit rasters to the area centre -> nearest is node 0; its
  // sources are the conv units on nodes 0 and 1; only node 1 contributes a
  // tree edge (1 -> 0), traversed forward and backward.
  const auto r = compute_comm_cost(a, w.wsn);
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);           // 1 up + 1 down
  EXPECT_DOUBLE_EQ(r.total_hop_transmissions, 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[0], 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[1], 2.0);
  EXPECT_DOUBLE_EQ(r.max_cost, 2.0);
}

TEST(CommCostExact, UnicastDedupVsAggregation) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 2, w.rng);  // two output units
  const auto g = UnitGraph::build(net, {1, 1, 2});
  // Hand-built assignment: inputs and conv units stay on their cells'
  // nodes; BOTH dense units are pinned to node 0, so the remote conv unit
  // (node 1) feeds two consumers on the same destination node.
  std::vector<NodeId> map(g.num_units());
  map[0] = 0;  // input cell 0
  map[1] = 1;  // input cell 1
  const UnitLayer& conv = g.layers()[1];
  map[conv.first_unit + 0] = 0;
  map[conv.first_unit + 1] = 1;
  const UnitLayer& dense = g.layers()[2];
  map[dense.first_unit + 0] = 0;
  map[dense.first_unit + 1] = 0;
  const Assignment a(&g, std::move(map));
  //  * unicast: the remote conv activation travels ONCE to node 0 (dedup
  //    by producer x destination node), and one error message returns;
  //  * aggregation: each dense unit owns its own partial-sum tree, so the
  //    single tree edge is paid per unit and per direction.
  CommCostOptions unicast;
  unicast.aggregate_dense = false;
  CommCostOptions agg;
  agg.aggregate_dense = true;
  const auto ru = compute_comm_cost(a, w.wsn, unicast);
  const auto ra = compute_comm_cost(a, w.wsn, agg);
  EXPECT_DOUBLE_EQ(ru.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(ra.total_messages, 4.0);
}

TEST(CommCostExact, ForwardOnlyHalvesTheTree) {
  TinyWorld w;
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, w.rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2, 1, w.rng);
  const auto g = UnitGraph::build(net, {1, 1, 2});
  const auto a = assign_nearest(g, w.wsn);
  CommCostOptions fwd;
  fwd.include_backward = false;
  const auto r = compute_comm_cost(a, w.wsn, fwd);
  EXPECT_DOUBLE_EQ(r.total_messages, 1.0);
  EXPECT_DOUBLE_EQ(r.max_cost, 1.0);
}

TEST(CommCostExact, InputGatheringCountsForwardOnly) {
  // Centralize a 3x3 conv net on a 3-node line: every remote input cell
  // sends its value to the sink once, and no error flows back to sensors.
  const WsnTopology wsn({{0.5, 0.5}, {1.5, 0.5}, {2.5, 0.5}},
                        {0.0, 0.0, 3.0, 1.0}, 1.2);
  Rng rng(2);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 3, 1, rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3, 1, rng);
  const auto g = UnitGraph::build(net, {1, 1, 3});
  const auto a = assign_centralized(g, wsn, 1);
  const auto r = compute_comm_cost(a, wsn);
  // Input units: cells at nodes 0,1,2; conv units all on sink node 1.
  // Cells 0 and 2 each send one forward message (one hop each), nothing
  // returns.  Conv/dense are colocated on the sink, so nothing else moves.
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(r.per_node[1], 2.0);  // sink receives both
  EXPECT_DOUBLE_EQ(r.per_node[0], 1.0);
  EXPECT_DOUBLE_EQ(r.per_node[2], 1.0);
}

TEST(CommCostExact, RelayChargedOnThreeNodeLine) {
  // Force a message across the full line: sink at node 0, sensing cell at
  // node 2 -> the value relays through node 1.
  const WsnTopology wsn({{0.5, 0.5}, {1.5, 0.5}, {2.5, 0.5}},
                        {0.0, 0.0, 3.0, 1.0}, 1.2);
  Rng rng(3);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 1, 1, 0, rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3, 1, rng);
  const auto g = UnitGraph::build(net, {1, 1, 3});
  const auto a = assign_centralized(g, wsn, 0);
  CommCostOptions fwd;
  fwd.include_backward = false;
  const auto r = compute_comm_cost(a, wsn, fwd);
  // Cells at nodes 1 and 2 forward to sink 0: node1's message = 1 hop,
  // node2's = 2 hops through node 1.
  EXPECT_DOUBLE_EQ(r.total_messages, 2.0);
  EXPECT_DOUBLE_EQ(r.total_hop_transmissions, 3.0);
  EXPECT_DOUBLE_EQ(r.per_node[2], 1.0);       // tx once
  EXPECT_DOUBLE_EQ(r.per_node[1], 1.0 + 2.0); // own tx + relay rx/tx
  EXPECT_DOUBLE_EQ(r.per_node[0], 2.0);       // rx both messages
}

}  // namespace

// ---------------------------------------------------------------------------
// Determinism / fast-path regression tests.
//
// The load-aware route charging used to iterate an unordered_map of dense
// sources, so per_node/max_cost depended on stdlib hash iteration order.
// Dense units are now charged in ascending UnitId order with sorted source
// lists; these tests pin that down along with the bounded/scratch path.

namespace {

/// A 4x3 jittered grid with a mixed conv+dense net: big enough that dense
/// units have multi-node source sets (where the ordering bug lived).
struct MediumWorld {
  MediumWorld()
      : wsn(make_wsn()),
        rng(7),
        net(make_net(rng)),
        graph(UnitGraph::build(net, {1, 3, 4})) {}

  static WsnTopology make_wsn() {
    Rng wsn_rng(5);
    return WsnTopology::jittered_grid({0.0, 0.0, 4.0, 3.0}, 4, 3, wsn_rng);
  }
  static ml::Network make_net(Rng& rng) {
    ml::Network net;
    net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
    net.emplace<ml::ReLU>();
    net.emplace<ml::Flatten>();
    net.emplace<ml::Dense>(2 * 3 * 4, 4, rng);
    net.emplace<ml::Dense>(4, 2, rng);
    return net;
  }

  WsnTopology wsn;
  Rng rng;
  ml::Network net;
  UnitGraph graph;
};

void expect_reports_identical(const CommCostReport& a,
                              const CommCostReport& b) {
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i], b.per_node[i]) << "per_node[" << i << "]";
  }
  EXPECT_EQ(a.max_cost, b.max_cost);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_hop_transmissions, b.total_hop_transmissions);
  EXPECT_EQ(a.hottest_node, b.hottest_node);
}

TEST(CommCostRegression, RepeatedEvaluationsBitIdentical) {
  MediumWorld w;
  const auto a = assign_nearest(w.graph, w.wsn);
  const auto first = compute_comm_cost(a, w.wsn);
  for (int i = 0; i < 5; ++i) {
    expect_reports_identical(compute_comm_cost(a, w.wsn), first);
  }
}

TEST(CommCostRegression, ReportIndependentOfScratchHistory) {
  // The same assignment must score identically from a fresh scratch and
  // from one dirtied by other candidates / aborted evaluations — charging
  // order is a pure function of the assignment, never of container state.
  MediumWorld w;
  const auto a = assign_nearest(w.graph, w.wsn);
  const auto b = assign_centralized(w.graph, w.wsn, 0);
  const CommCostOptions opts;

  CommCostScratch fresh;
  const auto r_fresh = compute_comm_cost_bounded(a, w.wsn, opts, fresh);
  ASSERT_TRUE(r_fresh.has_value());

  CommCostScratch dirty;
  (void)compute_comm_cost_bounded(b, w.wsn, opts, dirty);
  (void)compute_comm_cost_bounded(a, w.wsn, opts, dirty, /*abort_above=*/0.5);
  const auto r_dirty = compute_comm_cost_bounded(a, w.wsn, opts, dirty);
  ASSERT_TRUE(r_dirty.has_value());
  expect_reports_identical(*r_fresh, *r_dirty);
}

TEST(CommCostRegression, BoundedWithInfiniteBoundMatchesUnbounded) {
  MediumWorld w;
  const auto a = assign_nearest(w.graph, w.wsn);
  const auto r = compute_comm_cost(a, w.wsn);
  CommCostScratch scratch;
  const auto rb = compute_comm_cost_bounded(a, w.wsn, {}, scratch);
  ASSERT_TRUE(rb.has_value());
  expect_reports_identical(*rb, r);
}

TEST(CommCostRegression, TinyBoundAborts) {
  MediumWorld w;
  // Centralized at a corner node: plenty of traffic, so any sub-1.0 bound
  // must trip the early exit.
  const auto a = assign_centralized(w.graph, w.wsn, 0);
  CommCostScratch scratch;
  const auto r = compute_comm_cost_bounded(a, w.wsn, {}, scratch,
                                           /*abort_above=*/0.5);
  EXPECT_FALSE(r.has_value());
}

TEST(CommCostRegression, SearchEarlyExitKeepsWinnerAndScore) {
  MediumWorld w;
  AssignmentSearchOptions with, without;
  with.early_exit = true;
  without.early_exit = false;
  const auto r1 = search_assignment(w.graph, w.wsn, with);
  const auto r2 = search_assignment(w.graph, w.wsn, without);
  EXPECT_EQ(r1.best_index, r2.best_index);
  EXPECT_EQ(r1.best_max_cost, r2.best_max_cost);
  EXPECT_EQ(r1.best_mean_cost, r2.best_mean_cost);
  ASSERT_EQ(r1.best.num_units(), r2.best.num_units());
  for (UnitId u = 0; u < static_cast<UnitId>(r1.best.num_units()); ++u) {
    EXPECT_EQ(r1.best.node_of(u), r2.best.node_of(u)) << "unit " << u;
  }
  // Non-aborted candidates must carry the same exact scores either way.
  ASSERT_EQ(r1.candidates.size(), r2.candidates.size());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    if (r1.candidates[i].aborted) continue;
    EXPECT_EQ(r1.candidates[i].max_cost, r2.candidates[i].max_cost) << i;
    EXPECT_EQ(r1.candidates[i].mean_cost, r2.candidates[i].mean_cost) << i;
  }
  // The winner is never aborted.
  EXPECT_FALSE(r1.candidates[r1.best_index].aborted);
}

}  // namespace

}  // namespace zeiot::microdeep
