// Backend conformance suite for the runtime-dispatched SIMD kernels
// (ctest label: kernels).
//
// Pins the contracts promised in ml/kernels/backend.hpp:
//   * dispatch — the ZEIOT_KERNEL_BACKEND grammar, availability probing,
//     ScopedBackend restore semantics, loud failure on unavailable kinds;
//   * float conformance — scalar and AVX2 GEMMs agree with a double-
//     precision reference (and with each other) within documented ULP
//     bounds on randomized shapes covering every remainder path;
//   * int8 exactness — igemm_abt_accum and the full QuantizedNetwork
//     forward are bit-identical across ALL backends, thread counts, and
//     reruns (exact integer arithmetic end to end);
//   * requantization goldens — make_requant_scale / requantize fixed-point
//     decomposition against hand-computed vectors;
//   * 64-byte alignment regression — Tensor, AlignedVector, Workspace
//     carvings (the AVX2 tile loads rely on it for aligned-ish streams);
//   * per-node memory model + budget-constrained assignment search — the
//     budget demonstrably binds (excludes the unconstrained winner) and an
//     undeployable budget throws;
//   * netexec quantized transport — single-node deployments are bit-exact
//     vs float transport, distributed ones pay strictly less airtime
//     energy, and act_scales validation rejects malformed configs.
#include "ml/kernels/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "microdeep/memory.hpp"
#include "microdeep/quant.hpp"
#include "microdeep/search.hpp"
#include "ml/dataset.hpp"
#include "ml/kernels/aligned.hpp"
#include "ml/kernels/gemm.hpp"
#include "ml/kernels/workspace.hpp"
#include "ml/quantize.hpp"
#include "ml/serialize.hpp"
#include "netexec/netexec.hpp"
#include "par/thread_pool.hpp"

namespace zeiot::ml::kernels {
namespace {

using microdeep::Assignment;
using microdeep::UnitGraph;
using microdeep::WsnTopology;

bool is_aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kTensorAlignment == 0;
}

std::vector<float> random_floats(std::size_t n, Rng& rng, double lo = -1.0,
                                 double hi = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

std::vector<std::int8_t> random_int8(std::size_t n, Rng& rng) {
  std::vector<std::int8_t> v(n);
  for (std::int8_t& x : v) {
    x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  return v;
}

/// Double-precision naive C += A*B reference (the conformance anchor both
/// float backends must stay near).
std::vector<float> ref_sgemm(int m, int n, int k, const std::vector<float>& a,
                             const std::vector<float>& b,
                             const std::vector<float>& c0) {
  std::vector<float> c = c0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c0[static_cast<std::size_t>(i) * n + j];
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + p]) *
               static_cast<double>(b[static_cast<std::size_t>(p) * n + j]);
      }
      c[static_cast<std::size_t>(i) * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

/// Double-precision naive C += A*B^T (B stored n x k row-major).
std::vector<float> ref_sgemm_abt(int m, int n, int k,
                                 const std::vector<float>& a,
                                 const std::vector<float>& b,
                                 const std::vector<float>& c0) {
  std::vector<float> c = c0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c0[static_cast<std::size_t>(i) * n + j];
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + p]) *
               static_cast<double>(b[static_cast<std::size_t>(j) * k + p]);
      }
      c[static_cast<std::size_t>(i) * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

/// |got - want| <= k_terms * 4 ulp-ish relative bound: the backends keep
/// fixed orders but reassociate differently from the double reference, so
/// the error budget scales with the reduction length.
void expect_gemm_close(const std::vector<float>& got,
                       const std::vector<float>& want, int k_terms,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size());
  const double rtol = 1e-6 * std::max(8.0, static_cast<double>(k_terms));
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale =
        std::max({1.0, std::abs(static_cast<double>(got[i])),
                  std::abs(static_cast<double>(want[i]))});
    EXPECT_NEAR(got[i], want[i], rtol * scale)
        << what << " diverges at flat index " << i;
  }
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float fa = a[i], fb = b[i];
    std::uint32_t ba = 0, bb = 0;
    std::memcpy(&ba, &fa, sizeof(ba));
    std::memcpy(&bb, &fb, sizeof(bb));
    ASSERT_EQ(ba, bb) << what << ": element " << i << " differs bitwise ("
                      << fa << " vs " << fb << ")";
  }
}

// ---------------------------------------------------------------------------
// Dispatch.

TEST(BackendDispatch, ScalarIsAlwaysAvailableAndComplete) {
  EXPECT_TRUE(backend_available(BackendKind::Scalar));
  ScopedBackend pin(BackendKind::Scalar);
  const Backend& b = active_backend();
  EXPECT_EQ(b.kind, BackendKind::Scalar);
  EXPECT_NE(b.sgemm_accum, nullptr);
  EXPECT_NE(b.sgemm_abt_accum, nullptr);
  EXPECT_NE(b.igemm_abt_accum, nullptr);
  EXPECT_NE(b.im2col, nullptr);
}

TEST(BackendDispatch, ParseBackendGrammar) {
  EXPECT_EQ(parse_backend("scalar"), BackendKind::Scalar);
  EXPECT_EQ(parse_backend("avx2"), BackendKind::Avx2);
  EXPECT_EQ(parse_backend("neon"), BackendKind::Neon);
  // "auto" / "" resolve to something the host can actually run.
  EXPECT_TRUE(backend_available(parse_backend("auto")));
  EXPECT_TRUE(backend_available(parse_backend("")));
  EXPECT_THROW(parse_backend("sse9"), Error);
  EXPECT_THROW(parse_backend("AVX2"), Error);  // grammar is lowercase
}

TEST(BackendDispatch, BackendNamesAreStable) {
  EXPECT_STREQ(backend_name(BackendKind::Scalar), "scalar");
  EXPECT_STREQ(backend_name(BackendKind::Avx2), "avx2");
  EXPECT_STREQ(backend_name(BackendKind::Neon), "neon");
}

TEST(BackendDispatch, UnavailableBackendThrowsLoudly) {
  // NEON is a recognised name but never available on x86 builds; if this
  // ever starts passing on a real aarch64 port, drop the guard.
  if (backend_available(BackendKind::Neon)) GTEST_SKIP();
  EXPECT_THROW(set_backend(BackendKind::Neon), Error);
}

TEST(BackendDispatch, ScopedBackendPinsAndRestores) {
  const BackendKind before = active_backend().kind;
  {
    ScopedBackend pin(BackendKind::Scalar);
    EXPECT_EQ(active_backend().kind, BackendKind::Scalar);
    EXPECT_EQ(active_backend().name, std::string("scalar"));
  }
  EXPECT_EQ(active_backend().kind, before);
}

TEST(BackendDispatch, Avx2TableMatchesCpuid) {
  // backend_available must agree with the probe + build flags; on the CI
  // hosts that run this suite with ZEIOT_KERNEL_BACKEND=avx2, this is the
  // test that would catch a silently-scalar "avx2" table.
  if (!backend_available(BackendKind::Avx2)) GTEST_SKIP()
      << "host/build has no AVX2+FMA";
  ScopedBackend pin(BackendKind::Avx2);
  EXPECT_EQ(active_backend().kind, BackendKind::Avx2);
  EXPECT_NE(active_backend().sgemm_accum,
            static_cast<SgemmFn>(&detail::sgemm_accum_scalar));
}

// ---------------------------------------------------------------------------
// Float conformance: scalar vs AVX2 vs double reference.

TEST(FloatConformance, SgemmAccumMatchesReferenceOnRandomShapes) {
  Rng rng(2024);
  // m sweeps every 6-row remainder (1..5) plus multi-tile rows; n sweeps
  // the 16-wide, 8-wide, and masked-tail column paths; k exercises the
  // grouped-by-4 scalar order and the FMA chains.
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 14));
    const int n = static_cast<int>(rng.uniform_int(1, 41));
    const int k = static_cast<int>(rng.uniform_int(1, 71));
    const auto a = random_floats(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_floats(static_cast<std::size_t>(k) * n, rng);
    const auto c0 = random_floats(static_cast<std::size_t>(m) * n, rng);
    const auto want = ref_sgemm(m, n, k, a, b, c0);

    auto run = [&](BackendKind kind) {
      ScopedBackend pin(kind);
      std::vector<float> c = c0;
      sgemm_accum(m, n, k, a.data(), k, b.data(), n, c.data(), n);
      return c;
    };
    const auto scalar = run(BackendKind::Scalar);
    expect_gemm_close(scalar, want, k, "scalar sgemm_accum");
    if (backend_available(BackendKind::Avx2)) {
      const auto avx2 = run(BackendKind::Avx2);
      expect_gemm_close(avx2, want, k, "avx2 sgemm_accum");
      expect_gemm_close(avx2, scalar, k, "avx2-vs-scalar sgemm_accum");
    }
  }
}

TEST(FloatConformance, SgemmAbtAccumMatchesReferenceOnRandomShapes) {
  Rng rng(4048);
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int k = static_cast<int>(rng.uniform_int(1, 130));
    const auto a = random_floats(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_floats(static_cast<std::size_t>(n) * k, rng);
    const auto c0 = random_floats(static_cast<std::size_t>(m) * n, rng);
    const auto want = ref_sgemm_abt(m, n, k, a, b, c0);

    auto run = [&](BackendKind kind) {
      ScopedBackend pin(kind);
      std::vector<float> c = c0;
      sgemm_abt_accum(m, n, k, a.data(), k, b.data(), k, c.data(), n);
      return c;
    };
    const auto scalar = run(BackendKind::Scalar);
    expect_gemm_close(scalar, want, k, "scalar sgemm_abt_accum");
    if (backend_available(BackendKind::Avx2)) {
      const auto avx2 = run(BackendKind::Avx2);
      expect_gemm_close(avx2, want, k, "avx2 sgemm_abt_accum");
    }
  }
}

TEST(FloatConformance, PerBackendRerunsAreBitIdentical) {
  Rng rng(77);
  const int m = 11, n = 23, k = 37;
  const auto a = random_floats(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_floats(static_cast<std::size_t>(k) * n, rng);
  for (BackendKind kind : {BackendKind::Scalar, BackendKind::Avx2}) {
    if (!backend_available(kind)) continue;
    ScopedBackend pin(kind);
    std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.25f);
    std::vector<float> c2 = c1;
    sgemm_accum(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    sgemm_accum(m, n, k, a.data(), k, b.data(), n, c2.data(), n);
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)))
        << backend_name(kind) << " rerun diverges";
  }
}

// ---------------------------------------------------------------------------
// Int8 exactness: identical across ALL backends.

TEST(Int8Exactness, IgemmAbtAccumIsBitIdenticalAcrossBackends) {
  Rng rng(9099);
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    // k crosses the 16-lane widening tile boundary both ways.
    const int m = static_cast<int>(rng.uniform_int(1, 9));
    const int n = static_cast<int>(rng.uniform_int(1, 9));
    const int k = static_cast<int>(rng.uniform_int(1, 67));
    const auto a = random_int8(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_int8(static_cast<std::size_t>(n) * k, rng);

    // Exact int32 reference.
    std::vector<std::int32_t> want(static_cast<std::size_t>(m) * n, 7);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        std::int32_t acc = 7;
        for (int p = 0; p < k; ++p) {
          acc += static_cast<std::int32_t>(a[static_cast<std::size_t>(i) * k + p]) *
                 static_cast<std::int32_t>(b[static_cast<std::size_t>(j) * k + p]);
        }
        want[static_cast<std::size_t>(i) * n + j] = acc;
      }
    }

    for (BackendKind kind : {BackendKind::Scalar, BackendKind::Avx2}) {
      if (!backend_available(kind)) continue;
      ScopedBackend pin(kind);
      std::vector<std::int32_t> c(static_cast<std::size_t>(m) * n, 7);
      igemm_abt_accum(m, n, k, a.data(), k, b.data(), k, c.data(), n);
      EXPECT_EQ(c, want) << backend_name(kind) << " trial " << trial
                         << " (m=" << m << " n=" << n << " k=" << k << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Requantization goldens.

TEST(RequantGoldens, HalfScaleDecomposesToQ31PowerOfTwo) {
  const RequantScale s = make_requant_scale(0.5);
  EXPECT_EQ(s.multiplier, std::int32_t{1} << 30);
  EXPECT_EQ(s.shift, 31);
  EXPECT_EQ(requantize(101, s), 51);   // 50.5 rounds toward +inf
  EXPECT_EQ(requantize(-101, s), -50); // -50.5 rounds toward +inf too
  EXPECT_EQ(requantize(100, s), 50);
  EXPECT_EQ(requantize(0, s), 0);
}

TEST(RequantGoldens, UnitScaleIsTheIdentityOnSmallInts) {
  const RequantScale s = make_requant_scale(1.0);
  EXPECT_EQ(s.multiplier, std::int32_t{1} << 30);
  EXPECT_EQ(s.shift, 30);
  for (std::int32_t x = -300; x <= 300; ++x) EXPECT_EQ(requantize(x, s), x);
}

TEST(RequantGoldens, FixedPointTracksRealMultiplierWithinOneUnit) {
  Rng rng(551);
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    // The requant ratios in practice span ~1e-3..8.
    const double m = std::exp(rng.uniform(std::log(1e-3), std::log(8.0)));
    const RequantScale s = make_requant_scale(m);
    EXPECT_GE(s.multiplier, std::int32_t{1} << 30);
    EXPECT_GE(s.shift, 1);
    EXPECT_LE(s.shift, 62);
    const auto acc =
        static_cast<std::int32_t>(rng.uniform_int(-(1 << 20), 1 << 20));
    const double real = static_cast<double>(acc) * m;
    EXPECT_NEAR(static_cast<double>(requantize(acc, s)), real, 1.0)
        << "m=" << m << " acc=" << acc;
  }
}

TEST(RequantGoldens, ExtremeMultipliersThrow) {
  EXPECT_THROW(make_requant_scale(0.0), Error);
  EXPECT_THROW(make_requant_scale(-1.0), Error);
  EXPECT_THROW(make_requant_scale(std::numeric_limits<double>::infinity()),
               Error);
}

TEST(RequantGoldens, QuantizeValueClampsAndRoundsHalfAwayFromZero) {
  EXPECT_EQ(quantize_value(0.0f, 1.0f), 0);
  EXPECT_EQ(quantize_value(0.5f, 1.0f), 1);
  EXPECT_EQ(quantize_value(-0.5f, 1.0f), -1);
  EXPECT_EQ(quantize_value(300.0f, 1.0f), 127);
  EXPECT_EQ(quantize_value(-300.0f, 1.0f), -127);
  EXPECT_EQ(quantize_value(1.27f, 0.01f), 127);
  EXPECT_EQ(quantize_value(-1.27f, 0.01f), -127);
}

// ---------------------------------------------------------------------------
// 64-byte alignment regression (Tensor / AlignedVector / Workspace).

TEST(Alignment, TensorAllocationsAre64ByteAligned) {
  // Odd shapes on purpose: alignment must come from the allocator, not
  // from lucky size rounding.
  for (const auto& shape : std::vector<std::vector<int>>{
           {1}, {3, 5}, {3, 7, 7}, {2, 10, 10, 10}, {129}}) {
    Tensor t(shape);
    EXPECT_TRUE(is_aligned64(t.data())) << t.shape_str();
    Tensor copy = t;
    EXPECT_TRUE(is_aligned64(copy.data())) << "copy of " << t.shape_str();
  }
}

TEST(Alignment, AlignedVectorStaysAlignedAcrossGrowth) {
  AlignedVector<float> v;
  for (std::size_t n : {1u, 17u, 100u, 1000u, 4097u}) {
    v.resize(n);
    EXPECT_TRUE(is_aligned64(v.data())) << "size " << n;
  }
}

TEST(Alignment, WorkspaceCarvingsAre64ByteAligned) {
  Workspace ws;
  static_assert(Workspace::align_floats(1) == 16);
  static_assert(Workspace::align_floats(16) == 16);
  static_assert(Workspace::align_floats(17) == 32);
  ws.reset();
  ws.require(Workspace::align_floats(7) + Workspace::align_floats(33) +
             Workspace::align_floats(100));
  EXPECT_TRUE(is_aligned64(ws.alloc(Workspace::align_floats(7))));
  EXPECT_TRUE(is_aligned64(ws.alloc(Workspace::align_floats(33))));
  EXPECT_TRUE(is_aligned64(ws.alloc(Workspace::align_floats(100))));
}

// ---------------------------------------------------------------------------
// Whole-network determinism + quantized inference.

ml::Network make_cnn(Rng& rng, int in_ch = 2, int grid = 8) {
  ml::Network net;
  net.emplace<ml::Conv2D>(in_ch, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * (grid / 2) * (grid / 2), 8, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(8, 3, rng);
  return net;
}

/// One 3-D sample (no batch dim) — the shape NetworkExecutor::run expects.
Tensor random_sample(std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

Tensor random_batch(int n, std::vector<int> shape, std::uint64_t seed) {
  Rng rng(seed);
  shape.insert(shape.begin(), n);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(NetworkDeterminism, ForwardBitIdenticalAcrossThreadCountsPerBackend) {
  Rng rng(11);
  ml::Network net = make_cnn(rng);
  const Tensor x = random_batch(4, {2, 8, 8}, 99);
  for (BackendKind kind : {BackendKind::Scalar, BackendKind::Avx2}) {
    if (!backend_available(kind)) continue;
    ScopedBackend pin(kind);
    par::ThreadPool one(1), four(4);
    net.set_pool(&one);
    const Tensor y1 = net.forward(x, /*train=*/false);
    net.set_pool(&four);
    const Tensor y4 = net.forward(x, /*train=*/false);
    net.set_pool(nullptr);
    const Tensor yg = net.forward(x, /*train=*/false);
    expect_bitwise_equal(y1, y4, backend_name(kind));
    expect_bitwise_equal(y1, yg, backend_name(kind));
  }
}

TEST(NetworkDeterminism, BackendsAgreeWithinUlpBoundsOnForward) {
  if (!backend_available(BackendKind::Avx2)) GTEST_SKIP();
  Rng rng(12);
  ml::Network net = make_cnn(rng);
  const Tensor x = random_batch(4, {2, 8, 8}, 100);
  ScopedBackend pin_s(BackendKind::Scalar);
  const Tensor ys = net.forward(x, false);
  Tensor ya;
  {
    ScopedBackend pin_a(BackendKind::Avx2);
    ya = net.forward(x, false);
  }
  ASSERT_EQ(ys.shape(), ya.shape());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double scale = std::max(
        {1.0, std::abs(static_cast<double>(ys[i])), std::abs(static_cast<double>(ya[i]))});
    EXPECT_NEAR(ys[i], ya[i], 1e-4 * scale) << "logit " << i;
  }
}

TEST(QuantizedNetwork, ForwardTracksFloatWithinQuantizationError) {
  Rng rng(21);
  ml::Network net = make_cnn(rng);
  const std::vector<int> shape{2, 8, 8};
  const Tensor calib = random_batch(16, shape, 7);
  const QuantizedNetwork qnet = QuantizedNetwork::build(net, shape, calib);
  const Tensor x = random_batch(6, shape, 8);
  const Tensor yf = net.forward(x, false);
  const Tensor yq = qnet.forward(x);
  ASSERT_EQ(yf.shape(), yq.shape());
  double max_abs = 1.0;
  for (std::size_t i = 0; i < yf.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(yf[i])));
  }
  for (std::size_t i = 0; i < yf.size(); ++i) {
    EXPECT_NEAR(yq[i], yf[i], 0.1 * max_abs) << "logit " << i;
  }
}

TEST(QuantizedNetwork, ForwardBitIdenticalAcrossBackendsThreadsAndReruns) {
  Rng rng(22);
  ml::Network net = make_cnn(rng);
  const std::vector<int> shape{2, 8, 8};
  const QuantizedNetwork qnet =
      QuantizedNetwork::build(net, shape, random_batch(16, shape, 9));
  const Tensor x = random_batch(5, shape, 10);
  ScopedBackend pin(BackendKind::Scalar);
  const Tensor ref = qnet.forward(x);
  expect_bitwise_equal(qnet.forward(x), ref, "scalar rerun");
  for (BackendKind kind : {BackendKind::Avx2, BackendKind::Neon}) {
    if (!backend_available(kind)) continue;
    ScopedBackend pin2(kind);
    expect_bitwise_equal(qnet.forward(x), ref, backend_name(kind));
  }
}

TEST(QuantizedNetwork, SaveLoadRoundtripsBitExactly) {
  Rng rng(23);
  ml::Network net = make_cnn(rng);
  const std::vector<int> shape{2, 8, 8};
  const QuantizedNetwork qnet =
      QuantizedNetwork::build(net, shape, random_batch(16, shape, 11));
  std::stringstream ss;
  save_quantized(qnet, ss);
  const QuantizedNetwork loaded = load_quantized(ss);
  EXPECT_EQ(loaded.weight_bytes(), qnet.weight_bytes());
  EXPECT_EQ(loaded.input_shape(), qnet.input_shape());
  const Tensor x = random_batch(3, shape, 12);
  expect_bitwise_equal(loaded.forward(x), qnet.forward(x), "save/load");
}

TEST(QuantizedNetwork, WeightFootprintShrinksVsFloat) {
  Rng rng(24);
  ml::Network net = make_cnn(rng);
  const std::vector<int> shape{2, 8, 8};
  const QuantizedNetwork qnet =
      QuantizedNetwork::build(net, shape, random_batch(8, shape, 13));
  std::size_t float_weight_bytes = 0;
  for (const QuantOp& op : qnet.ops()) {
    float_weight_bytes += op.weight.size() * sizeof(float);
    float_weight_bytes += op.bias.size() * sizeof(float);
  }
  ASSERT_GT(float_weight_bytes, 0u);
  EXPECT_LT(qnet.weight_bytes(), float_weight_bytes);
  EXPECT_GT(qnet.peak_activation_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Unit-layer activation calibration.

TEST(UnitActivationScales, OneFinitePositiveScalePerUnitLayer) {
  Rng rng(31);
  ml::Network net = make_cnn(rng);
  const std::vector<int> shape{2, 8, 8};
  const UnitGraph graph = UnitGraph::build(net, shape);
  const Tensor calib = random_batch(12, shape, 14);
  const auto scales =
      microdeep::calibrate_unit_activation_scales(net, graph, calib);
  ASSERT_EQ(scales.size(), graph.layers().size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    EXPECT_TRUE(std::isfinite(scales[i])) << "layer " << i;
    EXPECT_GT(scales[i], 0.0f) << "layer " << i;
  }
  // Deterministic: same inputs, same scales.
  EXPECT_EQ(scales,
            microdeep::calibrate_unit_activation_scales(net, graph, calib));
}

// ---------------------------------------------------------------------------
// Per-node memory model + budget-constrained search.

struct SearchScenario {
  ml::Network net;
  UnitGraph graph;
  WsnTopology wsn;
};

SearchScenario make_search_scenario(std::uint64_t seed) {
  Rng rng(seed);
  // A deliberately dense-heavy net: the 32 Dense units each carry 27
  // weight rows, so candidates that concentrate them (nearest/centralized
  // seeds) peak much higher than balanced ones — real spread for the
  // budget to bind against.
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 32, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(32, 2, rng);
  UnitGraph graph = UnitGraph::build(net, {1, 6, 6});
  WsnTopology wsn = WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
  return {std::move(net), std::move(graph), std::move(wsn)};
}

TEST(MemoryModel, Int8DeploymentNeedsStrictlyLessPeakMemory) {
  SearchScenario s = make_search_scenario(41);
  const Assignment a = microdeep::assign_nearest(s.graph, s.wsn);
  const auto m_float =
      microdeep::make_node_memory_model(s.net, s.graph, 4, 4, 0);
  const auto m_int8 = microdeep::make_node_memory_model(s.net, s.graph, 1, 1, 0);
  const auto per_node =
      microdeep::compute_node_memory(a, s.wsn.num_nodes(), m_float);
  ASSERT_EQ(per_node.size(), s.wsn.num_nodes());
  const std::size_t pf =
      microdeep::peak_node_memory(a, s.wsn.num_nodes(), m_float);
  const std::size_t pi =
      microdeep::peak_node_memory(a, s.wsn.num_nodes(), m_int8);
  EXPECT_EQ(pf, *std::max_element(per_node.begin(), per_node.end()));
  EXPECT_GT(pf, 0u);
  EXPECT_LT(pi, pf);
  // int8 charges 1/4 per weight and activation byte but keeps the 4-byte
  // bias/requant rows, so the ratio lands strictly between 1/4 and 1.
  EXPECT_GT(pi * 4, pf / 2);
}

TEST(MemoryModel, DisabledBudgetRecordsNothing) {
  SearchScenario s = make_search_scenario(42);
  const auto res = microdeep::search_assignment(s.graph, s.wsn);
  ASSERT_FALSE(res.candidates.empty());
  for (const auto& c : res.candidates) {
    EXPECT_FALSE(c.over_budget) << c.label;
    EXPECT_EQ(c.peak_memory_bytes, 0u) << c.label;
  }
}

TEST(MemoryModel, BudgetBindsTheSearch) {
  SearchScenario s = make_search_scenario(43);

  // Pass 1: effectively-unconstrained budget, to observe every candidate's
  // peak residency and the unconstrained winner.
  microdeep::AssignmentSearchOptions opts;
  opts.early_exit = false;  // keep every candidate's true cost comparable
  opts.memory = microdeep::make_node_memory_model(
      s.net, s.graph, 4, 4, std::size_t{1} << 40);
  const auto unconstrained = microdeep::search_assignment(s.graph, s.wsn, opts);
  const std::size_t winner_peak = microdeep::peak_node_memory(
      unconstrained.best, s.wsn.num_nodes(), opts.memory);
  std::size_t min_peak = SIZE_MAX, max_peak = 0;
  for (const auto& c : unconstrained.candidates) {
    ASSERT_GT(c.peak_memory_bytes, 0u) << c.label;
    min_peak = std::min(min_peak, c.peak_memory_bytes);
    max_peak = std::max(max_peak, c.peak_memory_bytes);
  }
  // The scenario must have real memory spread for the budget to be able to
  // bind; the centralized-ish and balanced candidates differ a lot here.
  ASSERT_LT(min_peak, winner_peak);

  // Pass 2: budget set strictly below the unconstrained winner's peak.
  // The winner is now infeasible, so the budget must visibly bind: the
  // constrained winner fits, at least one candidate is rejected, and the
  // constrained cost cannot beat the unconstrained one.
  opts.memory.node_budget_bytes = winner_peak - 1;
  const auto constrained = microdeep::search_assignment(s.graph, s.wsn, opts);
  const std::size_t constrained_peak = microdeep::peak_node_memory(
      constrained.best, s.wsn.num_nodes(), opts.memory);
  EXPECT_LE(constrained_peak, opts.memory.node_budget_bytes);
  EXPECT_GE(constrained.best_max_cost, unconstrained.best_max_cost);
  std::size_t rejected = 0;
  for (const auto& c : constrained.candidates) {
    if (c.over_budget) {
      ++rejected;
      EXPECT_GT(c.peak_memory_bytes, opts.memory.node_budget_bytes) << c.label;
    }
  }
  EXPECT_GE(rejected, 1u);

  // Pass 3: a budget nothing can satisfy is an error, not a bad answer.
  opts.memory.node_budget_bytes = 1;
  EXPECT_THROW(microdeep::search_assignment(s.graph, s.wsn, opts), Error);
}

// ---------------------------------------------------------------------------
// netexec quantized transport.

netexec::NetExecConfig quant_config(ml::Network& net, const UnitGraph& graph,
                                    const Tensor& calib) {
  netexec::NetExecConfig cfg;
  cfg.quantized_transport = true;
  cfg.act_scales =
      microdeep::calibrate_unit_activation_scales(net, graph, calib);
  return cfg;
}

TEST(QuantizedTransport, ActScalesValidation) {
  Rng rng(51);
  ml::Network net = make_cnn(rng, 1, 6);
  const UnitGraph graph = UnitGraph::build(net, {1, 6, 6});
  const WsnTopology wsn = WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
  const Assignment a = microdeep::assign_nearest(graph, wsn);

  netexec::NetExecConfig cfg;
  cfg.quantized_transport = true;  // no scales at all
  EXPECT_THROW(netexec::NetworkExecutor(net, graph, a, wsn, cfg), Error);

  cfg.act_scales.assign(graph.layers().size() - 1, 0.5f);  // wrong size
  EXPECT_THROW(netexec::NetworkExecutor(net, graph, a, wsn, cfg), Error);

  cfg.act_scales.assign(graph.layers().size(), 0.5f);
  cfg.act_scales.back() = 0.0f;  // non-positive scale
  EXPECT_THROW(netexec::NetworkExecutor(net, graph, a, wsn, cfg), Error);

  cfg.act_scales.back() = 0.5f;
  EXPECT_NO_THROW(netexec::NetworkExecutor(net, graph, a, wsn, cfg));
}

TEST(QuantizedTransport, SingleNodeDeploymentIsBitExact) {
  // With every unit on one node there are no radio frames, so the int8
  // transport grid must never touch an activation: quantized and float
  // configs produce bitwise-identical logits.
  Rng rng(52);
  ml::Network net = make_cnn(rng, 1, 6);
  const std::vector<int> shape{1, 6, 6};
  const UnitGraph graph = UnitGraph::build(net, shape);
  const WsnTopology wsn = WsnTopology::grid({0.0, 0.0, 1.0, 1.0}, 1, 1);
  const Assignment a = microdeep::assign_nearest(graph, wsn);
  const Tensor sample = random_sample(shape, 15);

  netexec::NetExecConfig fcfg;
  netexec::NetworkExecutor fexec(net, graph, a, wsn, fcfg);
  const auto fres = fexec.run(sample);

  auto qcfg = quant_config(net, graph, random_batch(8, shape, 16));
  netexec::NetworkExecutor qexec(net, graph, a, wsn, qcfg);
  const auto qres = qexec.run(sample);

  EXPECT_EQ(fres.messages, 0u);
  EXPECT_EQ(qres.messages, 0u);
  expect_bitwise_equal(qres.output, fres.output, "single-node quantized");
}

TEST(QuantizedTransport, DistributedDeploymentPaysLessEnergyDeterministically) {
  Rng rng(53);
  ml::Network net = make_cnn(rng, 1, 6);
  const std::vector<int> shape{1, 6, 6};
  const UnitGraph graph = UnitGraph::build(net, shape);
  const WsnTopology wsn = WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
  const Assignment a = microdeep::assign_nearest(graph, wsn);
  const Tensor sample = random_sample(shape, 17);

  netexec::NetExecConfig fcfg;
  netexec::NetworkExecutor fexec(net, graph, a, wsn, fcfg);
  const auto fres = fexec.run(sample);
  ASSERT_GT(fres.messages, 0u);
  ASSERT_FALSE(fres.degraded);

  const auto qcfg = quant_config(net, graph, random_batch(8, shape, 18));
  netexec::NetworkExecutor qexec(net, graph, a, wsn, qcfg);
  const auto qres = qexec.run(sample);
  EXPECT_FALSE(qres.degraded);

  // Same logical message plan, strictly smaller frames.
  EXPECT_EQ(qres.messages, fres.messages);
  EXPECT_LT(qres.energy_j, fres.energy_j);
  EXPECT_LE(qres.latency_s, fres.latency_s);

  // Deterministic: a fresh executor with the same config replays the same
  // inference bit for bit.
  netexec::NetworkExecutor qexec2(net, graph, a, wsn, qcfg);
  const auto qres2 = qexec2.run(sample);
  expect_bitwise_equal(qres2.output, qres.output, "quantized rerun");
  EXPECT_EQ(qres2.energy_j, qres.energy_j);
  EXPECT_EQ(qres2.messages, qres.messages);
}

TEST(QuantizedTransport, QuantizedLogitsStayNearFloatLogits) {
  Rng rng(54);
  ml::Network net = make_cnn(rng, 1, 6);
  const std::vector<int> shape{1, 6, 6};
  const UnitGraph graph = UnitGraph::build(net, shape);
  const WsnTopology wsn = WsnTopology::grid({0.0, 0.0, 6.0, 6.0}, 3, 3);
  const Assignment a = microdeep::assign_balanced_heuristic(graph, wsn);
  const Tensor sample = random_sample(shape, 19);
  const Tensor calib = random_batch(16, shape, 20);

  netexec::NetExecConfig fcfg;
  netexec::NetworkExecutor fexec(net, graph, a, wsn, fcfg);
  const auto fres = fexec.run(sample);
  const auto qcfg = quant_config(net, graph, calib);
  netexec::NetworkExecutor qexec(net, graph, a, wsn, qcfg);
  const auto qres = qexec.run(sample);

  ASSERT_EQ(fres.output.shape(), qres.output.shape());
  double max_abs = 1.0;
  for (std::size_t i = 0; i < fres.output.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(fres.output[i])));
  }
  for (std::size_t i = 0; i < fres.output.size(); ++i) {
    EXPECT_NEAR(qres.output[i], fres.output[i], 0.15 * max_abs)
        << "logit " << i;
  }
}

}  // namespace
}  // namespace zeiot::ml::kernels
