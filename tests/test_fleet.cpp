// Differential fleet-conformance suite (ctest label: fleet).
//
// Four properties pin zeiot::fleet's isolation and determinism contract:
//  (1) Standalone identity — a 1-deployment fleet reproduces the
//      standalone NetworkExecutor / CoexistenceSimulator run bit-for-bit,
//      reconstructed here through the same pure template helpers.
//  (2) Schedule independence — fleet results and the merged
//      metric/trace/span records are identical at 1 vs 4 worker threads
//      and across double runs.
//  (3) Fleet-size independence — a deployment's outcome digest depends
//      only on (fleet_seed, kind, cell_id, parameters): the same cell
//      alone, inside a 1000-cell fleet, or in a reversed ordering yields
//      the same digest.
//  (4) Fault isolation — a fault plan injected into one deployment never
//      perturbs any neighbor's digest.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "par/thread_pool.hpp"

namespace zeiot::fleet {
namespace {

/// Bitwise double equality (EXPECT_DOUBLE_EQ tolerates ulps; conformance
/// does not).
void expect_bits_equal(double a, double b, const char* what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
      << what << ": " << a << " vs " << b;
}

DeploymentSpec lounge_spec(std::uint64_t cell_id, std::size_t samples = 2) {
  DeploymentSpec spec;
  spec.kind = TemplateKind::LoungeE1;
  spec.cell_id = cell_id;
  spec.samples = samples;
  return spec;
}

DeploymentSpec ir_spec(std::uint64_t cell_id, std::size_t samples = 2) {
  DeploymentSpec spec;
  spec.kind = TemplateKind::IrArrayE2;
  spec.cell_id = cell_id;
  spec.samples = samples;
  return spec;
}

DeploymentSpec cell_spec(std::uint64_t cell_id, std::size_t devices = 4,
                         double horizon_s = 0.5, double wlan_rate_hz = 40.0) {
  DeploymentSpec spec;
  spec.kind = TemplateKind::BackscatterCellE6;
  spec.cell_id = cell_id;
  spec.devices = devices;
  spec.horizon_s = horizon_s;
  spec.wlan_rate_hz = wlan_rate_hz;
  return spec;
}

fault::FaultSpec small_fault(std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.horizon_s = 0.5;
  spec.num_targets = 4;
  spec.node_death_rate = 4.0;
  spec.mean_downtime_s = 0.1;
  spec.drop_rate = 4.0;
  spec.drop_window_s = 0.2;
  spec.drop_probability = 0.8;
  spec.seed = seed;
  return spec;
}

/// Mixed fleet exercising all three templates in one run.
std::vector<DeploymentSpec> mixed_specs() {
  std::vector<DeploymentSpec> specs;
  specs.push_back(lounge_spec(0));
  specs.push_back(cell_spec(0));
  specs.push_back(ir_spec(1));
  specs.push_back(cell_spec(1, 8, 0.5, 80.0));
  specs.push_back(lounge_spec(2, 3));
  specs.push_back(cell_spec(2, 2, 0.25, 20.0));
  return specs;
}

struct FleetRun {
  FleetResult result;
  std::string metrics_json;
  std::uint64_t trace_digest = 0;
  std::uint64_t span_digest = 0;
};

FleetRun run_fleet(std::vector<DeploymentSpec> specs, std::size_t threads,
                   std::uint64_t seed = 11, bool merge_records = true) {
  obs::Observability obs(1 << 14);
  obs.enable_spans(1 << 15);
  FleetConfig cfg;
  cfg.seed = seed;
  cfg.deployments = std::move(specs);
  cfg.obs = &obs;
  cfg.span_capacity = 1 << 12;
  cfg.merge_records = merge_records;
  FleetSimulator fleet(std::move(cfg));
  par::ThreadPool pool(threads);
  FleetRun run;
  run.result = fleet.run(&pool);
  run.metrics_json = obs.metrics().to_json();
  run.trace_digest = obs.trace().digest();
  run.span_digest = obs.spans().digest();
  return run;
}

void expect_results_bitwise_equal(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.kind.size(), b.kind.size());
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.cell_id, b.cell_id);
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.work_items, b.work_items);
  EXPECT_EQ(a.digest, b.digest);
  for (std::size_t i = 0; i < a.kind.size(); ++i) {
    expect_bits_equal(a.accuracy[i], b.accuracy[i], "accuracy");
    expect_bits_equal(a.p50_latency_s[i], b.p50_latency_s[i], "p50");
    expect_bits_equal(a.p99_latency_s[i], b.p99_latency_s[i], "p99");
    expect_bits_equal(a.energy_per_item_j[i], b.energy_per_item_j[i],
                      "energy");
  }
  EXPECT_EQ(a.total_devices, b.total_devices);
  EXPECT_EQ(a.inference_count, b.inference_count);
  expect_bits_equal(a.fleet_accuracy, b.fleet_accuracy, "fleet_accuracy");
  expect_bits_equal(a.fleet_p50_latency_s, b.fleet_p50_latency_s, "fleet_p50");
  expect_bits_equal(a.fleet_p99_latency_s, b.fleet_p99_latency_s, "fleet_p99");
  expect_bits_equal(a.energy_per_inference_j, b.energy_per_inference_j,
                    "fleet_energy");
  EXPECT_EQ(a.e6_frames_generated, b.e6_frames_generated);
  EXPECT_EQ(a.e6_frames_delivered, b.e6_frames_delivered);
  expect_bits_equal(a.e6_delivery_ratio, b.e6_delivery_ratio,
                    "e6_delivery_ratio");
}

// ---------------------------------------------------------------------------
// (1) Standalone identity.

TEST(FleetConformance, SingleLoungeDeploymentMatchesStandaloneExecutor) {
  const DeploymentSpec spec = lounge_spec(7, 3);
  const std::uint64_t fleet_seed = 21;

  // Standalone reference: reconstruct the deployment through the same
  // pure helpers, entirely outside FleetSimulator.
  const auto tmpl = make_lounge_template();
  const std::uint64_t dep_seed = deployment_seed(fleet_seed, spec);
  const ml::Dataset data = deployment_dataset(*tmpl, spec, dep_seed);
  obs::Observability ref_obs(512);
  netexec::NetworkExecutor exec(
      tmpl->net, tmpl->graph, tmpl->assignment, tmpl->wsn,
      deployment_netexec_config(dep_seed, &ref_obs));
  const netexec::NetEvalResult ref = exec.evaluate(data);

  FleetConfig cfg;
  cfg.seed = fleet_seed;
  cfg.deployments = {spec};
  obs::Observability fleet_obs(1 << 14);
  cfg.obs = &fleet_obs;
  FleetSimulator fleet(std::move(cfg));
  const FleetResult res = fleet.run();

  ASSERT_EQ(res.kind.size(), 1u);
  EXPECT_EQ(res.work_items[0], spec.samples);
  EXPECT_EQ(res.devices[0], tmpl->devices);
  expect_bits_equal(res.accuracy[0], ref.accuracy, "accuracy");
  expect_bits_equal(res.p50_latency_s[0], ref.p50_latency_s, "p50");
  expect_bits_equal(res.p99_latency_s[0], ref.p99_latency_s, "p99");
  expect_bits_equal(res.energy_per_item_j[0], ref.mean_energy_j, "energy");
  // Fleet-level percentiles over a single deployment reduce to the
  // deployment's own percentiles.
  expect_bits_equal(res.fleet_p50_latency_s, ref.p50_latency_s, "fleet p50");
  expect_bits_equal(res.fleet_p99_latency_s, ref.p99_latency_s, "fleet p99");
  ASSERT_EQ(ref.latencies_s.size(), spec.samples);
}

TEST(FleetConformance, SingleBackscatterCellMatchesStandaloneSimulator) {
  const DeploymentSpec spec = cell_spec(3, 6, 0.75, 60.0);
  const std::uint64_t fleet_seed = 9;

  const std::uint64_t dep_seed = deployment_seed(fleet_seed, spec);
  obs::Observability ref_obs(512);
  backscatter::CoexistenceSimulator sim(
      deployment_coexistence_config(spec, dep_seed));
  sim.set_observability(&ref_obs);
  const backscatter::CoexistenceMetrics ref = sim.run();

  FleetConfig cfg;
  cfg.seed = fleet_seed;
  cfg.deployments = {spec};
  obs::Observability fleet_obs(1 << 14);
  cfg.obs = &fleet_obs;
  cfg.trace_capacity = 512;  // per-slot ring matches ref_obs
  cfg.merge_records = true;
  FleetSimulator fleet(std::move(cfg));
  const FleetResult res = fleet.run();

  ASSERT_EQ(res.kind.size(), 1u);
  EXPECT_EQ(res.work_items[0], ref.frames_generated);
  EXPECT_EQ(res.e6_frames_delivered, ref.frames_delivered);
  expect_bits_equal(res.accuracy[0], ref.delivery_ratio(), "delivery ratio");
  expect_bits_equal(res.p50_latency_s[0], ref.mean_latency_s, "mean latency");
  // The merged fleet trace ring is exactly the standalone ring: one
  // deployment, slot-order merge, same capacity.
  EXPECT_EQ(fleet_obs.trace().digest(), ref_obs.trace().digest());
}

// ---------------------------------------------------------------------------
// (2) Schedule independence: worker count and rerun.

TEST(FleetConformance, MixedFleetIdenticalAcrossThreadCountsAndReruns) {
  const FleetRun one = run_fleet(mixed_specs(), 1);
  const FleetRun four = run_fleet(mixed_specs(), 4);
  const FleetRun again = run_fleet(mixed_specs(), 4);

  expect_results_bitwise_equal(one.result, four.result);
  expect_results_bitwise_equal(four.result, again.result);
  // Merged trace and span streams are byte-identical too (slot-order
  // merge; recorded events carry virtual time only).
  EXPECT_EQ(one.trace_digest, four.trace_digest);
  EXPECT_EQ(one.span_digest, four.span_digest);
  EXPECT_EQ(four.trace_digest, again.trace_digest);
  EXPECT_EQ(four.span_digest, again.span_digest);
}

TEST(FleetConformance, InferenceFleetMetricsJsonByteIdentical) {
  // Inference-only fleet: every metric netexec emits derives from virtual
  // time, so even the merged registry JSON is byte-identical.  (E6 cells
  // are excluded: their SimulatorProbe records host wall-clock summaries,
  // which are deterministic in *structure* but not in value.)
  const std::vector<DeploymentSpec> specs = {lounge_spec(0), lounge_spec(1),
                                             ir_spec(0)};
  const FleetRun one = run_fleet(specs, 1);
  const FleetRun four = run_fleet(specs, 4);
  const FleetRun again = run_fleet(specs, 4);
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(four.metrics_json, again.metrics_json);
}

// ---------------------------------------------------------------------------
// (3) Fleet-size and ordering independence.

TEST(FleetConformance, DeploymentDigestIndependentOfFleetSizeAndOrder) {
  std::vector<DeploymentSpec> big;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    big.push_back(cell_spec(id, 2, 0.25, 20.0));
  }
  const std::uint64_t fleet_seed = 5;

  auto run_with = [&](std::vector<DeploymentSpec> specs) {
    obs::Observability obs(1 << 12);
    FleetConfig cfg;
    cfg.seed = fleet_seed;
    cfg.deployments = std::move(specs);
    cfg.obs = &obs;
    FleetSimulator fleet(std::move(cfg));
    return fleet.run();
  };

  const FleetResult full = run_with(big);

  // The same cell alone in a 1-deployment fleet.
  for (const std::uint64_t k : {std::uint64_t{0}, std::uint64_t{499},
                                std::uint64_t{999}}) {
    const FleetResult solo = run_with({big[k]});
    EXPECT_EQ(solo.digest[0], full.digest[k]) << "cell " << k;
  }

  // The whole fleet in reverse order: row i of the reversed run is row
  // n-1-i of the original, digest for digest.
  std::vector<DeploymentSpec> reversed(big.rbegin(), big.rend());
  const FleetResult rev = run_with(std::move(reversed));
  for (std::size_t i = 0; i < big.size(); ++i) {
    ASSERT_EQ(rev.digest[i], full.digest[big.size() - 1 - i]) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// (4) Fault isolation.

TEST(FleetConformance, BackscatterFaultNeverPerturbsNeighbors) {
  std::vector<DeploymentSpec> clean;
  for (std::uint64_t id = 0; id < 6; ++id) clean.push_back(cell_spec(id));
  std::vector<DeploymentSpec> faulted = clean;
  faulted[2].fault = small_fault(777);

  const FleetRun a = run_fleet(clean, 4);
  const FleetRun b = run_fleet(faulted, 4);
  ASSERT_EQ(a.result.digest.size(), b.result.digest.size());
  for (std::size_t i = 0; i < a.result.digest.size(); ++i) {
    if (i == 2) {
      EXPECT_NE(a.result.digest[i], b.result.digest[i])
          << "fault plan had no observable effect";
    } else {
      EXPECT_EQ(a.result.digest[i], b.result.digest[i]) << "neighbor " << i;
    }
  }
}

TEST(FleetConformance, InferenceFaultNeverPerturbsNeighbors) {
  std::vector<DeploymentSpec> clean = {lounge_spec(0), lounge_spec(1),
                                       cell_spec(0)};
  std::vector<DeploymentSpec> faulted = clean;
  fault::FaultSpec spec = small_fault(31);
  spec.num_targets = 50;  // the lounge WSN's node count
  spec.node_death_rate = 8.0;
  faulted[1].fault = spec;

  const FleetRun a = run_fleet(clean, 4);
  const FleetRun b = run_fleet(faulted, 4);
  ASSERT_EQ(a.result.digest.size(), 3u);
  EXPECT_EQ(a.result.digest[0], b.result.digest[0]);
  EXPECT_EQ(a.result.digest[2], b.result.digest[2]);
  // Row 1 switched from the evaluate() path to the sequential faulted
  // run() path, so its digest must move.
  EXPECT_NE(a.result.digest[1], b.result.digest[1]);
}

TEST(FleetConformance, CheckpointedBrownoutWavesIdenticalAcrossThreadCounts) {
  // One lounge cell brown-outs mid-round while running with per-unit NVM
  // checkpoints: its executor suspends and resumes inside its own
  // simulation.  The whole fleet must stay bit-identical across worker
  // counts, the neighbors must not move, and the checkpoint policy must be
  // observable — the same fault plan under CheckpointPolicy::None ignores
  // the supply windows entirely, so the faulted row's digest differs.
  fault::FaultSpec f;
  f.horizon_s = 0.02;  // inside the few-ms inference rounds
  f.num_targets = 50;  // the lounge WSN's node count
  f.brownout_rate = 3.0;
  f.brownout_s = 0.05;
  f.seed = 91;
  ASSERT_GT(fault::generate_plan(f).count(fault::FaultType::Brownout), 0u)
      << "seed 91 must draw at least one brownout window";

  // Inference-only fleet so even the merged metrics JSON is byte-identical
  // (E6 cells record host wall-clock summaries; see the JSON test above).
  std::vector<DeploymentSpec> specs = {lounge_spec(0), lounge_spec(1),
                                       ir_spec(0)};
  specs[1].fault = f;
  specs[1].checkpoint = netexec::CheckpointPolicy::EveryUnit;

  const FleetRun one = run_fleet(specs, 1);
  const FleetRun four = run_fleet(specs, 4);
  expect_results_bitwise_equal(one.result, four.result);
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(one.trace_digest, four.trace_digest);
  EXPECT_EQ(one.span_digest, four.span_digest);

  std::vector<DeploymentSpec> volatile_specs = specs;
  volatile_specs[1].checkpoint = netexec::CheckpointPolicy::None;
  const FleetRun none = run_fleet(volatile_specs, 4);
  ASSERT_EQ(none.result.digest.size(), 3u);
  EXPECT_EQ(one.result.digest[0], none.result.digest[0]) << "neighbor 0";
  EXPECT_EQ(one.result.digest[2], none.result.digest[2]) << "neighbor 2";
  EXPECT_NE(one.result.digest[1], none.result.digest[1])
      << "checkpointing changed nothing observable for the faulted cell";
}

// ---------------------------------------------------------------------------
// run_deployment is the public per-slot function; it must agree with the
// fleet's own rows (the conformance suite's escape hatch for debugging a
// single cell out of a large fleet).

TEST(FleetConformance, RunDeploymentMatchesFleetRow) {
  const std::vector<DeploymentSpec> specs = mixed_specs();
  FleetConfig cfg;
  cfg.seed = 11;
  cfg.deployments = specs;
  obs::Observability obs(1 << 14);
  obs.enable_spans(1 << 15);
  cfg.obs = &obs;
  cfg.span_capacity = 1 << 12;
  cfg.merge_records = true;
  FleetSimulator fleet(std::move(cfg));
  const FleetResult res = fleet.run();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    obs::Observability dep_obs(fleet.config().trace_capacity);
    dep_obs.enable_spans(fleet.config().span_capacity);
    const DeploymentOutcome out = fleet.run_deployment(specs[i], &dep_obs);
    EXPECT_EQ(out.digest, res.digest[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace zeiot::fleet
