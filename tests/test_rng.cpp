#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace zeiot {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double s = 0.0, s2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(13);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(13);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.exponential(2.0);
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(23);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.poisson(3.5);
  EXPECT_NEAR(s / n, 3.5, 0.06);
}

TEST(Rng, PoissonMeanLarge) {
  Rng rng(23);
  double s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += rng.poisson(100.0);
  EXPECT_NEAR(s / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(29);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), Error);
  const std::vector<double> neg{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(neg), Error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(31);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(31);
  const auto p = rng.permutation(100);
  int fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10);  // expected ~1 fixed point
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(37);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(41), p2(41);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// Property sweep: uniform_int stays in bounds across many ranges.
class RngRangeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RngRangeTest, UniformIntInBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo) * 31 + static_cast<std::uint64_t>(hi));
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngRangeTest,
    ::testing::Values(std::pair{0, 1}, std::pair{-1, 1}, std::pair{0, 100},
                      std::pair{-1000, 1000}, std::pair{5, 5},
                      std::pair{-7, -7}, std::pair{0, 1000000}));

}  // namespace
}  // namespace zeiot
