// Property tests for the GEMM-backed CNN kernels (ml/kernels) against the
// retained naive reference implementations, plus the workspace/pool
// plumbing and the ReLU/Dropout mask rewrites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/kernels/gemm.hpp"
#include "ml/kernels/im2col.hpp"
#include "ml/kernels/reference.hpp"
#include "ml/kernels/workspace.hpp"
#include "ml/layers.hpp"
#include "ml/network.hpp"
#include "par/thread_pool.hpp"

namespace zeiot::ml {
namespace {

Tensor random_tensor(std::vector<int> shape, Rng& rng, double lo = -1.0,
                     double hi = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

/// Relative tolerance check: |a - b| <= rtol * max(1, |a|, |b|).
void expect_close(const Tensor& got, const Tensor& want, double rtol = 1e-5,
                  const char* what = "") {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = got[i], w = want[i];
    const double tol = rtol * std::max({1.0, std::abs(g), std::abs(w)});
    ASSERT_NEAR(g, w, tol) << what << " at flat index " << i;
  }
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " differs at flat index " << i;
  }
}

// ------------------------------------------------------------- raw kernels --

TEST(Gemm, MatchesNaiveTripleLoop) {
  Rng rng(11);
  for (int iter = 0; iter < 25; ++iter) {
    const int m = 1 + static_cast<int>(rng.uniform_int(0, 12));
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 600));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 160));
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f);
    std::vector<double> ref(c.begin(), c.end());
    kernels::sgemm_accum(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + kk]) *
                 static_cast<double>(b[static_cast<std::size_t>(kk) * n + j]);
        }
        ref[static_cast<std::size_t>(i) * n + j] += acc;
      }
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double tol = 1e-5 * std::max(1.0, std::abs(ref[i]));
      ASSERT_NEAR(c[i], ref[i], tol) << "m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(Gemm, AbtMatchesNaive) {
  Rng rng(12);
  for (int iter = 0; iter < 25; ++iter) {
    const int m = 1 + static_cast<int>(rng.uniform_int(0, 12));
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 500));
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({n, k}, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n, -0.25f);
    std::vector<double> ref(c.begin(), c.end());
    kernels::sgemm_abt_accum(m, n, k, a.data(), k, b.data(), k, c.data(), n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(a[static_cast<std::size_t>(i) * k + kk]) *
                 static_cast<double>(b[static_cast<std::size_t>(j) * k + kk]);
        }
        ref[static_cast<std::size_t>(i) * n + j] += acc;
      }
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double tol = 1e-5 * std::max(1.0, std::abs(ref[i]));
      ASSERT_NEAR(c[i], ref[i], tol) << "m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(Gemm, TransposeRoundTrip) {
  Rng rng(13);
  const int rows = 37, cols = 53;
  const Tensor src = random_tensor({rows, cols}, rng);
  std::vector<float> t(static_cast<std::size_t>(rows) * cols);
  std::vector<float> back(t.size());
  kernels::transpose(rows, cols, src.data(), cols, t.data(), rows);
  kernels::transpose(cols, rows, t.data(), rows, back.data(), cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * cols + c;
      ASSERT_EQ(t[static_cast<std::size_t>(c) * rows + r], src[i]);
      ASSERT_EQ(back[i], src[i]);
    }
  }
}

TEST(Im2col, MatchesDirectIndexing) {
  Rng rng(14);
  for (int iter = 0; iter < 30; ++iter) {
    const int c = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const int pad = static_cast<int>(rng.uniform_int(0, k + 2));  // pad >= k too
    const int hmin = std::max(1, k - 2 * pad);
    const int h = hmin + static_cast<int>(rng.uniform_int(0, 6));
    const int w = hmin + static_cast<int>(rng.uniform_int(0, 6));
    const int oh = h + 2 * pad - k + 1;
    const int ow = w + 2 * pad - k + 1;
    const Tensor x = random_tensor({c, h, w}, rng);
    std::vector<float> cols(static_cast<std::size_t>(c) * k * k * oh * ow);
    kernels::im2col(x.data(), c, h, w, k, pad, oh, ow, cols.data());
    for (int ic = 0; ic < c; ++ic) {
      for (int ky = 0; ky < k; ++ky) {
        for (int kx = 0; kx < k; ++kx) {
          const int row = (ic * k + ky) * k + kx;
          for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
              const int iy = oy + ky - pad;
              const int ix = ox + kx - pad;
              const float want =
                  (iy >= 0 && iy < h && ix >= 0 && ix < w)
                      ? x.at({ic, iy, ix})
                      : 0.0f;
              const std::size_t idx =
                  (static_cast<std::size_t>(row) * oh + oy) * ow + ox;
              ASSERT_EQ(cols[idx], want)
                  << "c=" << c << " k=" << k << " pad=" << pad << " h=" << h
                  << " w=" << w;
            }
          }
        }
      }
    }
  }
}

TEST(Im2col, Col2imScattersBack) {
  Rng rng(15);
  const int c = 3, h = 5, w = 7, k = 3, pad = 1;
  const int oh = h + 2 * pad - k + 1, ow = w + 2 * pad - k + 1;
  const std::size_t colsz = static_cast<std::size_t>(c) * k * k * oh * ow;
  std::vector<float> cols(colsz);
  for (std::size_t i = 0; i < colsz; ++i) {
    cols[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  Tensor gx({c, h, w});
  kernels::col2im_accum(cols.data(), c, h, w, k, pad, oh, ow, gx.data());
  // Reference scatter straight from the definition.
  Tensor ref({c, h, w});
  for (int ic = 0; ic < c; ++ic) {
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx) {
        const int row = (ic * k + ky) * k + kx;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            const int iy = oy + ky - pad;
            const int ix = ox + kx - pad;
            if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
            ref.at({ic, iy, ix}) +=
                cols[(static_cast<std::size_t>(row) * oh + oy) * ow + ox];
          }
        }
      }
    }
  }
  expect_close(gx, ref, 1e-6, "col2im");
}

// ----------------------------------------------- layers vs naive reference --

TEST(Conv2DKernels, ForwardBackwardMatchReferenceOnRandomShapes) {
  Rng rng(21);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const int ic = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int oc = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const int pad = static_cast<int>(rng.uniform_int(0, k + 2));  // pad >= k too
    const int hmin = std::max(1, k - 2 * pad);
    const int h = hmin + static_cast<int>(rng.uniform_int(0, 8));
    const int w = hmin + static_cast<int>(rng.uniform_int(0, 8));

    Conv2D conv(ic, oc, k, pad, rng);
    Tensor& weight = conv.params()[0]->value;
    Tensor& bias = conv.params()[1]->value;
    for (std::size_t i = 0; i < bias.size(); ++i) {
      bias[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
    const Tensor x = random_tensor({n, ic, h, w}, rng);

    const Tensor y = conv.forward(x, false);
    const Tensor y_ref = kernels::reference::conv2d_forward(x, weight, bias, pad);
    expect_close(y, y_ref, 1e-5, "conv forward");

    const Tensor gy = random_tensor(y.shape(), rng);
    conv.params()[0]->grad.fill(0.0f);
    conv.params()[1]->grad.fill(0.0f);
    const Tensor gx = conv.backward(gy);
    Tensor gw_ref = Tensor::zeros_like(weight);
    Tensor gb_ref = Tensor::zeros_like(bias);
    const Tensor gx_ref =
        kernels::reference::conv2d_backward(x, weight, gy, pad, gw_ref, gb_ref);
    expect_close(gx, gx_ref, 1e-5, "conv grad_x");
    expect_close(conv.params()[0]->grad, gw_ref, 1e-5, "conv grad_w");
    expect_close(conv.params()[1]->grad, gb_ref, 1e-5, "conv grad_b");
  }
}

TEST(Conv2DKernels, OneByOneInput) {
  Rng rng(22);
  // 1x1 spatial input, kernel 3, pad 1: a single output cell fed entirely
  // through padding except the centre tap.
  Conv2D conv(2, 3, 3, 1, rng);
  const Tensor x = random_tensor({2, 2, 1, 1}, rng);
  const Tensor y = conv.forward(x, false);
  const Tensor y_ref = kernels::reference::conv2d_forward(
      x, conv.params()[0]->value, conv.params()[1]->value, 1);
  expect_close(y, y_ref, 1e-5, "1x1 conv forward");

  const Tensor gy = random_tensor(y.shape(), rng);
  conv.params()[0]->grad.fill(0.0f);
  conv.params()[1]->grad.fill(0.0f);
  const Tensor gx = conv.backward(gy);
  Tensor gw_ref = Tensor::zeros_like(conv.params()[0]->value);
  Tensor gb_ref = Tensor::zeros_like(conv.params()[1]->value);
  const Tensor gx_ref = kernels::reference::conv2d_backward(
      x, conv.params()[0]->value, gy, 1, gw_ref, gb_ref);
  expect_close(gx, gx_ref, 1e-5, "1x1 conv grad_x");
  expect_close(conv.params()[0]->grad, gw_ref, 1e-5, "1x1 conv grad_w");
}

TEST(DenseKernels, ForwardBackwardMatchReferenceOnRandomShapes) {
  Rng rng(23);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    const int in = 1 + static_cast<int>(rng.uniform_int(0, 64));
    const int out = 1 + static_cast<int>(rng.uniform_int(0, 48));

    Dense dense(in, out, rng);
    Tensor& weight = dense.params()[0]->value;
    Tensor& bias = dense.params()[1]->value;
    for (std::size_t i = 0; i < bias.size(); ++i) {
      bias[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
    const Tensor x = random_tensor({n, in}, rng);

    const Tensor y = dense.forward(x, false);
    const Tensor y_ref = kernels::reference::dense_forward(x, weight, bias);
    expect_close(y, y_ref, 1e-5, "dense forward");

    const Tensor gy = random_tensor(y.shape(), rng);
    dense.params()[0]->grad.fill(0.0f);
    dense.params()[1]->grad.fill(0.0f);
    const Tensor gx = dense.backward(gy);
    Tensor gw_ref = Tensor::zeros_like(weight);
    Tensor gb_ref = Tensor::zeros_like(bias);
    const Tensor gx_ref =
        kernels::reference::dense_backward(x, weight, gy, gw_ref, gb_ref);
    expect_close(gx, gx_ref, 1e-5, "dense grad_x");
    expect_close(dense.params()[0]->grad, gw_ref, 1e-5, "dense grad_w");
    expect_close(dense.params()[1]->grad, gb_ref, 1e-5, "dense grad_b");
  }
}

// --------------------------------------------- determinism across pools --

TEST(KernelDeterminism, LayersBitIdenticalAcrossPoolSizes) {
  par::ThreadPool pool1(1);
  par::ThreadPool pool4(4);
  Rng rng_a(31), rng_b(31);
  Conv2D conv_a(3, 5, 3, 1, rng_a), conv_b(3, 5, 3, 1, rng_b);
  conv_a.set_pool(&pool1);
  conv_b.set_pool(&pool4);
  Rng xr(32);
  const Tensor x = random_tensor({9, 3, 11, 13}, xr);
  const Tensor ya = conv_a.forward(x, false);
  const Tensor yb = conv_b.forward(x, false);
  expect_bit_identical(ya, yb, "conv forward");

  Rng gr(33);
  const Tensor gy = random_tensor(ya.shape(), gr);
  conv_a.params()[0]->grad.fill(0.0f);
  conv_a.params()[1]->grad.fill(0.0f);
  conv_b.params()[0]->grad.fill(0.0f);
  conv_b.params()[1]->grad.fill(0.0f);
  const Tensor gxa = conv_a.backward(gy);
  const Tensor gxb = conv_b.backward(gy);
  expect_bit_identical(gxa, gxb, "conv grad_x");
  expect_bit_identical(conv_a.params()[0]->grad, conv_b.params()[0]->grad,
                       "conv grad_w");
  expect_bit_identical(conv_a.params()[1]->grad, conv_b.params()[1]->grad,
                       "conv grad_b");

  Rng dr_a(34), dr_b(34);
  Dense dense_a(48, 10, dr_a), dense_b(48, 10, dr_b);
  dense_a.set_pool(&pool1);
  dense_b.set_pool(&pool4);
  Rng dxr(35);
  const Tensor dx = random_tensor({17, 48}, dxr);
  const Tensor dya = dense_a.forward(dx, false);
  const Tensor dyb = dense_b.forward(dx, false);
  expect_bit_identical(dya, dyb, "dense forward");
  Rng dgr(36);
  const Tensor dgy = random_tensor(dya.shape(), dgr);
  dense_a.params()[0]->grad.fill(0.0f);
  dense_a.params()[1]->grad.fill(0.0f);
  dense_b.params()[0]->grad.fill(0.0f);
  dense_b.params()[1]->grad.fill(0.0f);
  expect_bit_identical(dense_a.backward(dgy), dense_b.backward(dgy),
                       "dense grad_x");
  expect_bit_identical(dense_a.params()[0]->grad, dense_b.params()[0]->grad,
                       "dense grad_w");
}

// --------------------------------------------------- workspace plumbing --

TEST(Workspace, NetworkArenaIsReusedAcrossForwards) {
  Rng rng(41);
  Network net;
  net.emplace<Conv2D>(2, 4, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2D>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(4 * 5 * 6, 3, rng);
  Rng xr(42);
  const Tensor x = random_tensor({4, 2, 10, 12}, xr);
  const Tensor y1 = net.forward(x, false);
  const std::size_t cap_after_first = net.workspace().capacity();
  EXPECT_GT(cap_after_first, 0u);
  for (int i = 0; i < 5; ++i) {
    const Tensor y = net.forward(x, false);
    expect_bit_identical(y, y1, "repeated forward");
  }
  // Steady state: no regrowth once every layer has carved its peak need.
  EXPECT_EQ(net.workspace().capacity(), cap_after_first);
}

TEST(Workspace, CloneGetsPrivateArenaAndSameResults) {
  Rng rng(43);
  Network net;
  net.emplace<Conv2D>(1, 3, 3, 1, rng);
  net.emplace<Flatten>();
  net.emplace<Dense>(3 * 6 * 7, 2, rng);
  Network copy = net.clone();
  EXPECT_NE(&net.workspace(), &copy.workspace());
  Rng xr(44);
  const Tensor x = random_tensor({2, 1, 6, 7}, xr);
  expect_bit_identical(net.forward(x, false), copy.forward(x, false),
                       "clone forward");
}

TEST(Workspace, StandaloneLayerWorksWithoutNetwork) {
  Rng rng(45);
  Conv2D conv(1, 2, 3, 0, rng);
  Rng xr(46);
  const Tensor x = random_tensor({1, 1, 5, 5}, xr);
  const Tensor y = conv.forward(x, false);  // falls back to a private arena
  const Tensor y_ref = kernels::reference::conv2d_forward(
      x, conv.params()[0]->value, conv.params()[1]->value, 0);
  expect_close(y, y_ref, 1e-5, "standalone conv");
}

TEST(Workspace, RequireAfterAllocIsRejected) {
  kernels::Workspace ws;
  ws.reset();
  ws.require(16);
  (void)ws.alloc(8);
  EXPECT_EQ(ws.used(), 8u);
  EXPECT_THROW(ws.require(32), zeiot::Error);
  ws.reset();
  EXPECT_NO_THROW(ws.require(32));
}

// ------------------------------------------------ ReLU / Dropout rewrite --

TEST(MaskRewrite, ReluMatchesDefinition) {
  Rng rng(51);
  ReLU relu;
  const Tensor x = random_tensor({3, 4, 5, 6}, rng);
  const Tensor y = relu.forward(x, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(y[i], x[i] > 0.0f ? x[i] : 0.0f);
  }
  const Tensor gy = random_tensor(x.shape(), rng);
  const Tensor gx = relu.backward(gy);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(gx[i], x[i] > 0.0f ? gy[i] : 0.0f);
  }
}

TEST(MaskRewrite, DropoutMatchesOriginalRngSequence) {
  // The pointer-loop rewrite must consume the SAME Bernoulli draws in the
  // same element order as the original per-element implementation.
  const double p = 0.4;
  Rng rng_layer(52);
  Dropout dropout(p, rng_layer);
  Rng xr(53);
  const Tensor x = random_tensor({4, 25}, xr);
  const Tensor y = dropout.forward(x, /*train=*/true);

  Rng rng_ref(52);  // replay the original element-order definition
  const auto keep = static_cast<float>(1.0 / (1.0 - p));
  std::vector<float> scale_ref(x.size(), 1.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    scale_ref[i] = rng_ref.bernoulli(p) ? 0.0f : keep;
    ASSERT_EQ(y[i], x[i] * scale_ref[i]) << "dropout forward at " << i;
  }
  Rng gr(54);
  const Tensor gy = random_tensor(x.shape(), gr);
  const Tensor gx = dropout.backward(gy);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(gx[i], gy[i] * scale_ref[i]) << "dropout backward at " << i;
  }
  // Eval mode is the identity and consumes no randomness.
  const Tensor y_eval = dropout.forward(x, /*train=*/false);
  expect_bit_identical(y_eval, x, "dropout eval");
}

}  // namespace
}  // namespace zeiot::ml
