#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/sim_probe.hpp"

namespace zeiot::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoTieBreak) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringEvents) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), Error);
}

TEST(Simulator, ScheduleAtRejectsPast) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), Error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto h = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const auto h = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const auto h = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelNullHandleReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  const auto n = sim.run_until(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(2.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunWithLimit) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 + i, [&] { ++fired; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 7u);
}

TEST(Simulator, PendingTracksCancellation) {
  Simulator sim;
  const auto h = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++count; });
  timer.start();
  sim.run_until(5.5);
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++count; });
  timer.start();
  sim.schedule(3.5, [&] { timer.stop(); });
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartWorks) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++count; });
  timer.start();
  sim.schedule(2.5, [&] { timer.stop(); });
  sim.schedule(5.0, [&] { timer.start(); });
  sim.run_until(7.5);
  EXPECT_EQ(count, 4);  // fires at 1, 2, 6, 7
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, 0.0, [] {}), Error);
}

TEST(SimObserver, ExecutedCounterMatchesRunReturn) {
  // The observer's events_executed counter and run()'s return value are
  // two independent tallies of the same thing; they must agree even when
  // cancelled events surface from the heap mid-run.
  obs::Observability o;
  obs::SimulatorProbe probe(o);
  Simulator sim;
  sim.set_observer(&probe);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(sim.schedule(static_cast<double>(i), [&sim] {
      sim.schedule(0.5, [] {});
    }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) sim.cancel(handles[i]);
  const std::size_t executed = sim.run();
  EXPECT_DOUBLE_EQ(o.metrics().counter_value("sim.events.executed"),
                   static_cast<double>(executed));
  EXPECT_DOUBLE_EQ(o.metrics().counter_value("sim.events.cancelled"), 17.0);
}

TEST(SimObserver, RunWithLimitMatchesObserver) {
  obs::Observability o;
  obs::SimulatorProbe probe(o);
  Simulator sim;
  sim.set_observer(&probe);
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 + i, [] {});
  const std::size_t executed = sim.run(4);
  EXPECT_EQ(executed, 4u);
  EXPECT_DOUBLE_EQ(o.metrics().counter_value("sim.events.executed"), 4.0);
}

TEST(PeriodicTimer, CanStopInsideCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, 1.0, [&] {
    if (++count == 3) timer.stop();
  });
  timer.start();
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace zeiot::sim
