// Cross-module integration tests: data generators feeding MicroDeep models
// over WSN topologies, and the headline comparisons of the paper at reduced
// scale (the full-scale runs live in bench/).
#include <gtest/gtest.h>

#include "backscatter/coexistence.hpp"
#include "datagen/ir_gait.hpp"
#include "datagen/temperature_field.hpp"
#include "microdeep/distributed.hpp"

namespace zeiot {
namespace {

using microdeep::AssignmentKind;
using microdeep::MicroDeepConfig;
using microdeep::MicroDeepModel;
using microdeep::WsnTopology;

ml::Network temperature_cnn(Rng& rng) {
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 4, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(4 * 8 * 12, 16, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(16, 2, rng);
  return net;
}

TEST(Integration, MicroDeepLearnsDiscomfortAtReducedScale) {
  datagen::TemperatureFieldConfig dcfg;
  dcfg.num_samples = 400;
  const ml::Dataset all = datagen::generate_temperature_dataset(dcfg);
  Rng split_rng(1);
  auto [train, test] = all.stratified_split(split_rng, 0.8);

  Rng rng(2);
  ml::Network net = temperature_cnn(rng);
  Rect area{0.0, 0.0, 50.0, 34.0};
  Rng wsn_rng(3);
  const auto wsn = WsnTopology::random_uniform(area, 50, wsn_rng);
  MicroDeepConfig cfg;
  cfg.assignment = AssignmentKind::BalancedHeuristic;
  cfg.staleness = 0.2;
  MicroDeepModel model(net, wsn, {1, 17, 25}, cfg);

  ml::Adam opt(0.005);
  ml::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 32;
  const auto hist = model.train(train, test, tcfg, opt);
  // The full-scale bench (2,961 samples, more epochs) reaches ~95%; at
  // this reduced scale anything clearly above chance-with-margin passes.
  EXPECT_GT(hist.best_val_accuracy, 0.8);
}

TEST(Integration, DistributedCutsPeakTrafficOnTemperatureGrid) {
  Rng rng(4);
  ml::Network net_a = temperature_cnn(rng);
  ml::Network net_b = temperature_cnn(rng);
  Rect area{0.0, 0.0, 50.0, 34.0};
  Rng wsn_rng(5);
  // The paper's lounge is a deliberately instrumented space: a (jittered)
  // planned layout of 50 sensors, not a uniform random scattering.
  const auto wsn = WsnTopology::jittered_grid(area, 10, 5, wsn_rng);

  MicroDeepConfig central;
  central.assignment = AssignmentKind::Centralized;
  central.sink = 22;
  MicroDeepConfig heur;
  heur.assignment = AssignmentKind::BalancedHeuristic;

  MicroDeepModel mc(net_a, wsn, {1, 17, 25}, central);
  MicroDeepModel mh(net_b, wsn, {1, 17, 25}, heur);
  const auto rc = mc.comm_cost();
  const auto rh = mh.comm_cost();
  // The paper reports the distributed peak at 13% of the centralized
  // CNN's; we require at least a 2.5x cut at this configuration.
  EXPECT_LT(rh.max_cost, rc.max_cost / 2.5);
}

TEST(Integration, StalenessCostsSomeAccuracyButNotMuch) {
  datagen::TemperatureFieldConfig dcfg;
  dcfg.num_samples = 300;
  const ml::Dataset all = datagen::generate_temperature_dataset(dcfg);
  Rng split_rng(6);
  auto [train, test] = all.stratified_split(split_rng, 0.8);
  Rect area{0.0, 0.0, 50.0, 34.0};
  Rng wsn_rng(7);
  const auto wsn = WsnTopology::random_uniform(area, 50, wsn_rng);

  auto run = [&](double staleness) {
    Rng rng(8);  // identical init for both runs
    ml::Network net = temperature_cnn(rng);
    MicroDeepConfig cfg;
    cfg.staleness = staleness;
    MicroDeepModel model(net, wsn, {1, 17, 25}, cfg);
    ml::Adam opt(0.005);
    ml::TrainConfig tcfg;
    tcfg.epochs = 5;
    tcfg.batch_size = 32;
    return model.train(train, test, tcfg, opt).best_val_accuracy;
  };
  const double exact = run(0.0);
  const double stale = run(0.5);
  // Local updates sacrifice a little accuracy, not a collapse.
  EXPECT_GE(exact + 0.02, stale);
  EXPECT_GT(stale, 0.7);
}

TEST(Integration, FallDetectionPipelineAtReducedScale) {
  datagen::IrGaitConfig dcfg;
  dcfg.num_streams = 12;
  dcfg.fall_streams = 6;
  dcfg.mirror_augment = false;
  const ml::Dataset all = datagen::generate_ir_dataset(dcfg);
  Rng split_rng(9);
  auto [train, test] = all.stratified_split(split_rng, 0.8);

  Rng rng(10);
  ml::Network net;
  net.emplace<ml::Conv2D>(10, 6, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(6 * 5 * 5, 24, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(24, 2, rng);

  Rect area{0.0, 0.0, 5.0, 5.0};
  const auto wsn = WsnTopology::grid(area, 5, 5);
  MicroDeepConfig cfg;
  cfg.staleness = 0.2;
  MicroDeepModel model(net, wsn, {10, 10, 10}, cfg);
  ml::Adam opt(0.003);
  ml::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.batch_size = 32;
  const auto hist = model.train(train, test, tcfg, opt);
  EXPECT_GT(hist.best_val_accuracy, 0.8);
}

TEST(Integration, NodeFailuresDegradeGracefully) {
  datagen::TemperatureFieldConfig dcfg;
  dcfg.num_samples = 250;
  const ml::Dataset all = datagen::generate_temperature_dataset(dcfg);
  Rng split_rng(11);
  auto [train, test] = all.stratified_split(split_rng, 0.8);
  Rect area{0.0, 0.0, 50.0, 34.0};
  Rng wsn_rng(12);
  const auto wsn = WsnTopology::random_uniform(area, 50, wsn_rng);
  Rng rng(13);
  ml::Network net = temperature_cnn(rng);
  microdeep::MicroDeepConfig cfg;
  cfg.staleness = 0.0;
  MicroDeepModel model(net, wsn, {1, 17, 25}, cfg);
  ml::Adam opt(0.005);
  ml::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.batch_size = 32;
  model.train(train, test, tcfg, opt);

  const double healthy = model.evaluate(test);
  std::vector<bool> dead(wsn.num_nodes(), false);
  Rng kill_rng(14);
  for (std::size_t i = 0; i < 5; ++i) {
    dead[static_cast<std::size_t>(
        kill_rng.uniform_int(0, static_cast<std::int64_t>(wsn.num_nodes()) - 1))] =
        true;
  }
  microdeep::CommCostReport after;
  const double degraded = model.evaluate_with_failures(test, dead, &after);
  // 10% dead nodes: accuracy dips but the system keeps working and the
  // migrated assignment still routes (cost report is well-formed).
  EXPECT_GT(degraded, 0.55);
  EXPECT_LE(degraded, healthy + 0.05);
  EXPECT_GT(after.total_messages, 0.0);
}

TEST(Integration, CoexistenceAndEnergyNumbersCoexist) {
  // Sanity: the backscatter coexistence simulator and the data pipelines
  // run in one process without interference (shared RNG misuse, etc.).
  backscatter::CoexistenceConfig ccfg;
  ccfg.duration_s = 10.0;
  ccfg.mode = backscatter::MacMode::Proposed;
  const auto m = backscatter::CoexistenceSimulator(ccfg).run();
  EXPECT_GT(m.frames_generated, 0u);

  datagen::TemperatureFieldConfig dcfg;
  dcfg.num_samples = 10;
  const auto ds = datagen::generate_temperature_dataset(dcfg);
  EXPECT_EQ(ds.size(), 10u);
}

}  // namespace
}  // namespace zeiot
