#include <gtest/gtest.h>

#include <cmath>

#include "ml/network.hpp"
#include "ml/optimizer.hpp"
#include "ml/trainer.hpp"

namespace zeiot::ml {
namespace {

/// Two-class ring dataset: class 1 inside the radius, class 0 outside —
/// not linearly separable, so the hidden layer must do real work.
Dataset make_ring_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor x({2});
    x[0] = static_cast<float>(rng.uniform(-1.0, 1.0));
    x[1] = static_cast<float>(rng.uniform(-1.0, 1.0));
    const int label = (x[0] * x[0] + x[1] * x[1] < 0.5) ? 1 : 0;
    ds.add(std::move(x), label);
  }
  return ds;
}

/// Tiny spatial dataset: the class is whether a bright blob sits in the
/// left or right half of a 1x6x6 image — exercises conv + pool.
Dataset make_blob_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor x({1, 6, 6});
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const int cx = label == 0 ? static_cast<int>(rng.uniform_int(0, 2))
                              : static_cast<int>(rng.uniform_int(3, 5));
    const int cy = static_cast<int>(rng.uniform_int(1, 4));
    for (int y = 0; y < 6; ++y) {
      for (int xx = 0; xx < 6; ++xx) {
        const double d2 = (y - cy) * (y - cy) + (xx - cx) * (xx - cx);
        x.at({0, y, xx}) = static_cast<float>(std::exp(-d2 / 2.0) +
                                              rng.normal(0.0, 0.05));
      }
    }
    ds.add(std::move(x), label);
  }
  return ds;
}

Network make_mlp(Rng& rng) {
  Network net;
  net.emplace<Dense>(2, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 2, rng);
  return net;
}

TEST(Network, ForwardShapes) {
  Rng rng(1);
  Network net = make_mlp(rng);
  Tensor x({4, 2}, 0.5f);
  const Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{4, 2}));
}

TEST(Network, ShapeTrace) {
  Rng rng(1);
  Network net;
  net.emplace<Conv2D>(1, 4, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2D>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(4 * 3 * 3, 2, rng);
  const auto trace = net.shape_trace({1, 6, 6});
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], (std::vector<int>{1, 6, 6}));
  EXPECT_EQ(trace[1], (std::vector<int>{4, 6, 6}));
  EXPECT_EQ(trace[3], (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(trace[5], (std::vector<int>{2}));
}

TEST(Network, ParamCounting) {
  Rng rng(1);
  Network net = make_mlp(rng);
  // Dense(2,16): 32+16; Dense(16,2): 32+2.
  EXPECT_EQ(net.num_parameters(), 32u + 16u + 32u + 2u);
  EXPECT_EQ(net.params().size(), 4u);
}

TEST(Network, ZeroGradsClears) {
  Rng rng(1);
  Network net = make_mlp(rng);
  Tensor x({2, 2}, 1.0f);
  Tensor y = net.forward(x, true);
  const auto lr = softmax_cross_entropy(y, {0, 1});
  net.backward(lr.grad);
  bool any_nonzero = false;
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      if (p->grad[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grads();
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      EXPECT_FLOAT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST(Network, EmptyNetworkThrows) {
  Network net;
  Tensor x({1, 2});
  EXPECT_THROW(net.forward(x, false), Error);
}

TEST(Trainer, LearnsRingWithSgd) {
  Rng rng(42);
  Network net = make_mlp(rng);
  Sgd opt(0.1, 0.9);
  Trainer trainer(net, opt, Rng(43));
  const Dataset all = make_ring_dataset(600, 44);
  Rng split_rng(45);
  auto [train, test] = all.split(split_rng, 0.8);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  const auto hist = trainer.fit(train, test, cfg);
  EXPECT_GT(hist.best_val_accuracy, 0.92);
  EXPECT_EQ(hist.epochs.size(), 60u);
}

TEST(Trainer, LearnsRingWithAdam) {
  Rng rng(50);
  Network net = make_mlp(rng);
  Adam opt(0.01);
  Trainer trainer(net, opt, Rng(51));
  const Dataset all = make_ring_dataset(600, 52);
  Rng split_rng(53);
  auto [train, test] = all.split(split_rng, 0.8);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 32;
  const auto hist = trainer.fit(train, test, cfg);
  EXPECT_GT(hist.best_val_accuracy, 0.92);
}

TEST(Trainer, CnnLearnsBlobPosition) {
  Rng rng(60);
  Network net;
  net.emplace<Conv2D>(1, 4, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2D>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(4 * 3 * 3, 2, rng);
  Adam opt(0.01);
  Trainer trainer(net, opt, Rng(61));
  const Dataset all = make_blob_dataset(400, 62);
  Rng split_rng(63);
  auto [train, test] = all.split(split_rng, 0.8);
  TrainConfig cfg;
  cfg.epochs = 15;
  cfg.batch_size = 16;
  const auto hist = trainer.fit(train, test, cfg);
  EXPECT_GT(hist.best_val_accuracy, 0.95);
}

TEST(Trainer, LossDecreasesOverTraining) {
  Rng rng(70);
  Network net = make_mlp(rng);
  Sgd opt(0.05);
  Trainer trainer(net, opt, Rng(71));
  const Dataset train = make_ring_dataset(400, 72);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  const auto hist = trainer.fit(train, {}, cfg);
  EXPECT_LT(hist.epochs.back().train_loss, hist.epochs.front().train_loss);
}

TEST(Trainer, EarlyStoppingHonorsPatience) {
  Rng rng(80);
  Network net = make_mlp(rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(81));
  const Dataset all = make_ring_dataset(200, 82);
  Rng split_rng(83);
  auto [train, test] = all.split(split_rng, 0.8);
  TrainConfig cfg;
  cfg.epochs = 200;
  cfg.batch_size = 32;
  cfg.patience = 5;
  const auto hist = trainer.fit(train, test, cfg);
  EXPECT_LT(hist.epochs.size(), 200u);
}

TEST(Trainer, GradHookIsInvoked) {
  Rng rng(90);
  Network net = make_mlp(rng);
  Sgd opt(0.05);
  Trainer trainer(net, opt, Rng(91));
  int hook_calls = 0;
  trainer.set_grad_hook([&](std::vector<Param*>& params) {
    ++hook_calls;
    EXPECT_EQ(params.size(), 4u);
  });
  const Dataset train = make_ring_dataset(64, 92);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  trainer.fit(train, {}, cfg);
  EXPECT_EQ(hook_calls, 4);  // 2 batches x 2 epochs
}

TEST(Trainer, PredictSingleSample) {
  Rng rng(95);
  Network net = make_mlp(rng);
  Adam opt(0.02);
  Trainer trainer(net, opt, Rng(96));
  const Dataset train = make_ring_dataset(400, 97);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  trainer.fit(train, {}, cfg);
  Tensor center({2});
  center[0] = 0.0f;
  center[1] = 0.0f;
  Tensor corner({2});
  corner[0] = 0.95f;
  corner[1] = 0.95f;
  EXPECT_EQ(trainer.predict(center), 1);
  EXPECT_EQ(trainer.predict(corner), 0);
}

TEST(Trainer, ConfusionMatrixTotalsMatch) {
  Rng rng(98);
  Network net = make_mlp(rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(99));
  const Dataset data = make_ring_dataset(100, 100);
  const auto cm = trainer.confusion(data, 2);
  EXPECT_EQ(cm.total(), 100u);
}

TEST(Sgd, RejectsBadHyperparams) {
  EXPECT_THROW(Sgd(0.0), Error);
  EXPECT_THROW(Sgd(0.1, 1.0), Error);
  EXPECT_THROW(Sgd(0.1, 0.5, -1.0), Error);
}

TEST(Adam, RejectsBadHyperparams) {
  EXPECT_THROW(Adam(0.0), Error);
  EXPECT_THROW(Adam(0.01, 1.0), Error);
  EXPECT_THROW(Adam(0.01, 0.9, 0.999, 0.0), Error);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Rng rng(101);
  Network net = make_mlp(rng);
  // Pure decay: zero gradients, positive weight decay.
  Sgd opt(0.1, 0.0, 0.5);
  net.zero_grads();
  const auto params = net.params();
  const float before = params[0]->value[0];
  opt.step(params);
  EXPECT_LT(std::abs(params[0]->value[0]), std::abs(before) + 1e-9);
}

TEST(Trainer, EarlyStoppingWithEmptyValTracksTrainLoss) {
  // Regression: with no validation set, val_accuracy sits pinned at 0.0 —
  // the old improvement test ("higher val accuracy") could then never
  // pass, so patience fired after exactly `patience` epochs no matter how
  // fast the train loss was falling.  With the train-loss fallback, a
  // model that is clearly still improving must outlive its patience.
  Rng rng(110);
  Network net = make_mlp(rng);
  Sgd opt(0.1);
  Trainer trainer(net, opt, Rng(111));
  const Dataset train = make_ring_dataset(200, 112);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  cfg.patience = 3;
  const auto hist = trainer.fit(train, {}, cfg);
  EXPECT_GT(hist.epochs.size(), static_cast<std::size_t>(cfg.patience));
  // Sanity: the loss actually fell while it ran.
  EXPECT_LT(hist.epochs.back().train_loss, hist.epochs.front().train_loss);
}

TEST(Trainer, EpochLossIsSampleWeightedNotBatchWeighted) {
  // Regression: the epoch loss used to average per-batch means, so a
  // trailing partial batch was over-weighted and the reported loss changed
  // with batch-size divisibility.  With sample weighting, training 20
  // samples in batches of 5 (even split) and 8 (trailing batch of 4) must
  // report the same epoch loss when the weights never move.
  const Dataset train = make_ring_dataset(20, 120);
  auto epoch_loss_with_batch = [&](int batch_size) {
    Rng rng(121);
    Network net = make_mlp(rng);
    Sgd opt(0.1);
    Trainer trainer(net, opt, Rng(122));
    // Freeze the weights: zeroed gradients make every step a no-op, so
    // each batch is evaluated against identical parameters and the epoch
    // loss differs only through the loss bookkeeping under test.
    trainer.set_grad_hook([](std::vector<Param*>& params) {
      for (Param* p : params) p->grad.fill(0.0f);
    });
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.batch_size = batch_size;
    return trainer.fit(train, {}, cfg).epochs.front().train_loss;
  };
  EXPECT_NEAR(epoch_loss_with_batch(5), epoch_loss_with_batch(8), 1e-9);
}

}  // namespace
}  // namespace zeiot::ml
