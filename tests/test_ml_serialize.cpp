#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace zeiot::ml {
namespace {

Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.emplace<Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2D>(2);
  net.emplace<Flatten>();
  net.emplace<Dense>(2 * 3 * 3, 4, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(4, 2, rng);
  return net;
}

TEST(Serialize, RoundTripPreservesWeightsExactly) {
  Network a = make_net(1);
  std::stringstream buf;
  save_weights(a, buf);
  Network b = make_net(999);  // same topology, different init
  load_weights(b, buf);
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.shape(), pb[i]->value.shape());
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);  // bit-exact
    }
  }
}

TEST(Serialize, LoadedNetworkPredictsIdentically) {
  Network a = make_net(2);
  std::stringstream buf;
  save_weights(a, buf);
  Network b = make_net(777);
  load_weights(b, buf);
  Rng rng(3);
  Tensor x({1, 1, 6, 6});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, RejectsGarbageStream) {
  Network net = make_net(4);
  std::stringstream buf;
  buf << "not a weight file at all";
  EXPECT_THROW(load_weights(net, buf), Error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Network a = make_net(5);
  std::stringstream buf;
  save_weights(a, buf);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Network b = make_net(6);
  EXPECT_THROW(load_weights(b, truncated), Error);
}

TEST(Serialize, RejectsTopologyMismatch) {
  Network a = make_net(7);
  std::stringstream buf;
  save_weights(a, buf);
  Rng rng(8);
  Network different;
  different.emplace<Dense>(4, 2, rng);
  EXPECT_THROW(load_weights(different, buf), Error);
}

TEST(Serialize, RejectsShapeMismatchSameCount) {
  Network a = make_net(9);
  std::stringstream buf;
  save_weights(a, buf);
  // Same number of parameter tensors (6) but different shapes.
  Rng rng(10);
  Network different;
  different.emplace<Conv2D>(1, 2, 5, 2, rng);  // 5x5 kernel instead of 3x3
  different.emplace<ReLU>();
  different.emplace<MaxPool2D>(2);
  different.emplace<Flatten>();
  different.emplace<Dense>(2 * 3 * 3, 4, rng);
  different.emplace<ReLU>();
  different.emplace<Dense>(4, 2, rng);
  EXPECT_THROW(load_weights(different, buf), Error);
}

TEST(Serialize, FileRoundTrip) {
  Network a = make_net(11);
  const std::string path = "/tmp/zeiot_weights_test.bin";
  save_weights(a, path);
  Network b = make_net(12);
  load_weights(b, path);
  const auto pa = a.params();
  const auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
  EXPECT_THROW(load_weights(b, std::string("/nonexistent/dir/w.bin")), Error);
}

}  // namespace
}  // namespace zeiot::ml
