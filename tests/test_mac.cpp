#include <gtest/gtest.h>

#include "mac/channel.hpp"
#include "mac/traffic.hpp"

namespace zeiot::mac {
namespace {

TEST(PoissonSource, MeanInterarrival) {
  PoissonSource src(100.0, 1000, Rng(1));
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += src.next_interarrival();
  EXPECT_NEAR(sum / n, 0.01, 0.0005);
  EXPECT_EQ(src.payload_bytes(), 1000u);
}

TEST(PoissonSource, RejectsBadParams) {
  EXPECT_THROW(PoissonSource(0.0, 100, Rng(1)), Error);
  EXPECT_THROW(PoissonSource(1.0, 0, Rng(1)), Error);
}

TEST(PeriodicSource, ExactWithoutJitter) {
  PeriodicSource src(0.5, 64, Rng(2));
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(src.next_interarrival(), 0.5);
}

TEST(PeriodicSource, JitterBounded) {
  PeriodicSource src(1.0, 64, Rng(3), 0.1);
  for (int i = 0; i < 1000; ++i) {
    const double d = src.next_interarrival();
    EXPECT_GE(d, 0.9);
    EXPECT_LE(d, 1.1);
  }
}

TEST(Channel, LogsTransmissions) {
  Channel ch;
  ch.add(0.0, 1.0, 1, "wlan", false);
  ch.add(2.0, 0.5, 2, "dummy", false);
  ASSERT_EQ(ch.log().size(), 2u);
  EXPECT_EQ(ch.log()[0].kind, "wlan");
  EXPECT_DOUBLE_EQ(ch.log()[1].end, 2.5);
}

TEST(Channel, RejectsOutOfOrder) {
  Channel ch;
  ch.add(5.0, 1.0, 1, "wlan", false);
  EXPECT_THROW(ch.add(4.0, 1.0, 2, "wlan", false), Error);
}

TEST(Channel, DetectsCollisions) {
  Channel ch;
  ch.add(0.0, 1.0, 1, "wlan", true);
  ch.add(0.5, 1.0, 2, "wlan", true);
  EXPECT_TRUE(ch.log()[0].collided);
  EXPECT_TRUE(ch.log()[1].collided);
}

TEST(Channel, NonInterferingOverlapDoesNotCollide) {
  Channel ch;
  ch.add(0.0, 1.0, 1, "wlan", false);
  ch.add(0.5, 1.0, 2, "backscatter", false);
  EXPECT_FALSE(ch.log()[0].collided);
  EXPECT_FALSE(ch.log()[1].collided);
}

TEST(Channel, DisjointNoCollision) {
  Channel ch;
  ch.add(0.0, 1.0, 1, "wlan", true);
  ch.add(1.0, 1.0, 2, "wlan", true);  // back-to-back: no overlap
  EXPECT_FALSE(ch.log()[0].collided);
  EXPECT_FALSE(ch.log()[1].collided);
}

TEST(Channel, BusyDuring) {
  Channel ch;
  ch.add(1.0, 1.0, 1, "wlan", false);
  EXPECT_TRUE(ch.busy_during(1.5, 1.6));
  EXPECT_TRUE(ch.busy_during(0.5, 1.1));
  EXPECT_FALSE(ch.busy_during(2.0, 3.0));
  EXPECT_FALSE(ch.busy_during(0.0, 1.0));
}

TEST(Channel, BusyTimePerKind) {
  Channel ch;
  ch.add(0.0, 1.0, 1, "wlan", false);
  ch.add(2.0, 0.5, 0, "dummy", false);
  ch.add(3.0, 1.0, 1, "wlan", false);
  EXPECT_DOUBLE_EQ(ch.busy_time("wlan", 10.0), 2.0);
  EXPECT_DOUBLE_EQ(ch.busy_time("dummy", 10.0), 0.5);
  // Horizon truncation.
  EXPECT_DOUBLE_EQ(ch.busy_time("wlan", 3.5), 1.5);
}

TEST(Channel, UtilizationMergesOverlaps) {
  Channel ch;
  ch.add(0.0, 2.0, 1, "wlan", false);
  ch.add(1.0, 2.0, 2, "backscatter", false);  // overlaps 1s
  EXPECT_NEAR(ch.utilization(10.0), 0.3, 1e-9);
}

TEST(Channel, UtilizationEmptyIsZero) {
  Channel ch;
  EXPECT_DOUBLE_EQ(ch.utilization(5.0), 0.0);
  EXPECT_THROW(ch.utilization(0.0), Error);
}

}  // namespace
}  // namespace zeiot::mac
