#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sim_probe.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace zeiot::obs {
namespace {

TEST(MetricsRegistry, CounterCreateAndIncrement) {
  MetricsRegistry reg;
  Counter& c = reg.counter("foo.count");
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(reg.counter_value("foo.count"), 3.5);
  // Same name resolves to the same counter.
  reg.counter("foo.count").inc();
  EXPECT_DOUBLE_EQ(c.value(), 4.5);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  reg.counter("msgs", {{"node", "1"}}).inc(10.0);
  reg.counter("msgs", {{"node", "2"}}).inc(20.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("msgs", {{"node", "1"}}), 10.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("msgs", {{"node", "2"}}), 20.0);
  EXPECT_FALSE(reg.has("msgs"));
  EXPECT_TRUE(reg.has("msgs", {{"node", "1"}}));
}

TEST(MetricsRegistry, FlatKeyFormat) {
  EXPECT_EQ(MetricsRegistry::flat_key("x", {}), "x");
  EXPECT_EQ(MetricsRegistry::flat_key("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=1,b=2}");
}

TEST(MetricsRegistry, GaugeTracksPeak) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max_seen(), 7.0);
}

TEST(MetricsRegistry, MergeRoundTrip) {
  MetricsRegistry a, b;
  a.counter("events").inc(5.0);
  b.counter("events").inc(7.0);
  b.counter("only_b").inc(1.0);
  a.gauge("peak").set(3.0);
  b.gauge("peak").set(2.0);
  a.histogram("lat", 0.0, 1.0, 10).observe(0.15);
  b.histogram("lat", 0.0, 1.0, 10).observe(0.85);
  a.summary("wall").observe(1.0);
  b.summary("wall").observe(3.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter_value("events"), 12.0);
  EXPECT_DOUBLE_EQ(a.counter_value("only_b"), 1.0);
  // Gauges take the other run's (later) value but keep the max over both.
  EXPECT_DOUBLE_EQ(a.gauge_value("peak"), 2.0);
  EXPECT_DOUBLE_EQ(a.gauge("peak").max_seen(), 3.0);
  EXPECT_EQ(a.histogram("lat", 0.0, 1.0, 10).histogram().total(), 2u);
  EXPECT_EQ(a.summary("wall").stats().count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("wall").stats().mean(), 2.0);
}

TEST(MetricsRegistry, HistogramSerialization) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat_s", 0.0, 10.0, 5);
  for (double x : {1.0, 1.5, 9.0}) h.observe(x);
  const std::string json = reg.to_json();
  // Structure: a "histograms" section with bounds, percentiles and bins.
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"bins\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
}

TEST(JsonWriter, EscapesAndNonFinite) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("s");
  w.value(std::string("a\"b\n"));
  w.key("inf");
  w.value(1.0 / 0.0);
  w.end_object();
  EXPECT_EQ(out.str(), "{\"s\":\"a\\\"b\\n\",\"inf\":null}");
}

TEST(TraceRecorder, RingWraparound) {
  TraceRecorder rec(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.record(static_cast<double>(i), TraceType::EventFired, i);
  }
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  // Oldest retained event is #12, newest #19.
  EXPECT_EQ(rec.at(0).a, 12u);
  EXPECT_EQ(rec.at(7).a, 19u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a, 12u + i);
  }
}

TEST(TraceRecorder, ExportJsonlOneLinePerEvent) {
  TraceRecorder rec(4);
  rec.record(0.5, TraceType::PacketTx, 1, 2, 3.0);
  rec.record(1.0, TraceType::EnergyBoot, 7);
  std::ostringstream out;
  rec.export_jsonl(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"type\":\"packet_tx\""), std::string::npos);
  EXPECT_NE(s.find("\"type\":\"energy_boot\""), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

// Runs a randomized simulator workload (schedules, cancels, nested
// schedules) with a probe attached and returns the trace.
std::vector<TraceEvent> traced_run(std::uint64_t seed) {
  Observability obs(1 << 12);
  SimulatorProbe probe(obs);
  sim::Simulator sim;
  sim.set_observer(&probe);
  Rng rng(seed);
  std::vector<sim::EventHandle> ids;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    ids.push_back(sim.schedule(t, [&sim, &rng] {
      if (rng.bernoulli(0.3)) {
        sim.schedule(rng.uniform(0.0, 5.0), [] {});
      }
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 7) sim.cancel(ids[i]);
  sim.run();
  return obs.trace().snapshot();
}

TEST(TraceDeterminism, SameSeedSameTrace) {
  const auto t1 = traced_run(42);
  const auto t2 = traced_run(42);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  // A different seed produces a different trace (sanity that the
  // comparison is meaningful).
  EXPECT_NE(t1, traced_run(43));
}

TEST(Report, WritesSchemaDocument) {
  Observability obs(4);
  obs.metrics().counter("sim.events.executed").inc(12.0);
  obs.trace().record(1.0, TraceType::EventFired);
  std::ostringstream out;
  Report report("bench_x");
  report.write(out, obs.metrics(), &obs.trace());
  const std::string s = out.str();
  EXPECT_NE(s.find("\"schema\":\"zeiot.obs.v1\""), std::string::npos);
  EXPECT_NE(s.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(s.find("\"sim.events.executed\":12"), std::string::npos);
  EXPECT_NE(s.find("\"recorded\":1"), std::string::npos);
}

TEST(ScopeTimer, NullSinkIsNoop) {
  // Must not crash and must not record anything.
  { ScopeTimer t(static_cast<RunningStats*>(nullptr)); }
  RunningStats s;
  { ScopeTimer t(&s); }
  EXPECT_EQ(s.count(), 1u);
  EXPECT_GE(s.min(), 0.0);
}

}  // namespace
}  // namespace zeiot::obs
