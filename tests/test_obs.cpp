#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sim_probe.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace zeiot::obs {
namespace {

TEST(MetricsRegistry, CounterCreateAndIncrement) {
  MetricsRegistry reg;
  Counter& c = reg.counter("foo.count");
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(reg.counter_value("foo.count"), 3.5);
  // Same name resolves to the same counter.
  reg.counter("foo.count").inc();
  EXPECT_DOUBLE_EQ(c.value(), 4.5);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  reg.counter("msgs", {{"node", "1"}}).inc(10.0);
  reg.counter("msgs", {{"node", "2"}}).inc(20.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("msgs", {{"node", "1"}}), 10.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("msgs", {{"node", "2"}}), 20.0);
  EXPECT_FALSE(reg.has("msgs"));
  EXPECT_TRUE(reg.has("msgs", {{"node", "1"}}));
}

TEST(MetricsRegistry, FlatKeyFormat) {
  EXPECT_EQ(MetricsRegistry::flat_key("x", {}), "x");
  EXPECT_EQ(MetricsRegistry::flat_key("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=1,b=2}");
}

TEST(MetricsRegistry, GaugeTracksPeak) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max_seen(), 7.0);
}

TEST(MetricsRegistry, MergeRoundTrip) {
  MetricsRegistry a, b;
  a.counter("events").inc(5.0);
  b.counter("events").inc(7.0);
  b.counter("only_b").inc(1.0);
  a.gauge("peak").set(3.0);
  b.gauge("peak").set(2.0);
  a.histogram("lat", 0.0, 1.0, 10).observe(0.15);
  b.histogram("lat", 0.0, 1.0, 10).observe(0.85);
  a.summary("wall").observe(1.0);
  b.summary("wall").observe(3.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter_value("events"), 12.0);
  EXPECT_DOUBLE_EQ(a.counter_value("only_b"), 1.0);
  // Gauges take the other run's (later) value but keep the max over both.
  EXPECT_DOUBLE_EQ(a.gauge_value("peak"), 2.0);
  EXPECT_DOUBLE_EQ(a.gauge("peak").max_seen(), 3.0);
  EXPECT_EQ(a.histogram("lat", 0.0, 1.0, 10).histogram().total(), 2u);
  EXPECT_EQ(a.summary("wall").stats().count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("wall").stats().mean(), 2.0);
}

TEST(MetricsRegistry, HistogramSerialization) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat_s", 0.0, 10.0, 5);
  for (double x : {1.0, 1.5, 9.0}) h.observe(x);
  const std::string json = reg.to_json();
  // Structure: a "histograms" section with bounds, percentiles and bins.
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"bins\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
}

TEST(JsonWriter, EscapesAndNonFinite) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("s");
  w.value(std::string("a\"b\n"));
  w.key("inf");
  w.value(1.0 / 0.0);
  w.end_object();
  EXPECT_EQ(out.str(), "{\"s\":\"a\\\"b\\n\",\"inf\":null}");
}

TEST(TraceRecorder, RingWraparound) {
  TraceRecorder rec(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.record(static_cast<double>(i), TraceType::EventFired, i);
  }
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  // Oldest retained event is #12, newest #19.
  EXPECT_EQ(rec.at(0).a, 12u);
  EXPECT_EQ(rec.at(7).a, 19u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a, 12u + i);
  }
}

TEST(TraceRecorder, ExportJsonlOneLinePerEvent) {
  TraceRecorder rec(4);
  rec.record(0.5, TraceType::PacketTx, 1, 2, 3.0);
  rec.record(1.0, TraceType::EnergyBoot, 7);
  std::ostringstream out;
  rec.export_jsonl(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"type\":\"packet_tx\""), std::string::npos);
  EXPECT_NE(s.find("\"type\":\"energy_boot\""), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

// Runs a randomized simulator workload (schedules, cancels, nested
// schedules) with a probe attached and returns the trace.
std::vector<TraceEvent> traced_run(std::uint64_t seed) {
  Observability obs(1 << 12);
  SimulatorProbe probe(obs);
  sim::Simulator sim;
  sim.set_observer(&probe);
  Rng rng(seed);
  std::vector<sim::EventHandle> ids;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    ids.push_back(sim.schedule(t, [&sim, &rng] {
      if (rng.bernoulli(0.3)) {
        sim.schedule(rng.uniform(0.0, 5.0), [] {});
      }
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 7) sim.cancel(ids[i]);
  sim.run();
  return obs.trace().snapshot();
}

TEST(TraceDeterminism, SameSeedSameTrace) {
  const auto t1 = traced_run(42);
  const auto t2 = traced_run(42);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  // A different seed produces a different trace (sanity that the
  // comparison is meaningful).
  EXPECT_NE(t1, traced_run(43));
}

TEST(Report, WritesSchemaDocument) {
  Observability obs(4);
  obs.metrics().counter("sim.events.executed").inc(12.0);
  obs.trace().record(1.0, TraceType::EventFired);
  std::ostringstream out;
  Report report("bench_x");
  report.write(out, obs.metrics(), &obs.trace());
  const std::string s = out.str();
  EXPECT_NE(s.find("\"schema\":\"zeiot.obs.v2\""), std::string::npos);
  EXPECT_NE(s.find("\"bench\":\"bench_x\""), std::string::npos);
  EXPECT_NE(s.find("\"sim.events.executed\":12"), std::string::npos);
  EXPECT_NE(s.find("\"recorded\":1"), std::string::npos);
  // Spans were never enabled: the v2 spans block must be absent (v1
  // consumers reading v2 reports only gain keys when spans are on).
  EXPECT_EQ(s.find("\"spans\""), std::string::npos);
}

TEST(Report, SpansBlockWhenEnabled) {
  Observability obs(4);
  obs.enable_spans(16);
  const SpanId root = obs.spans().open(SpanKind::Inference, 0.0);
  obs.spans().add(SpanKind::HopTx, 0.0, 1.0, root);
  obs.spans().close(root, 2.0);
  std::ostringstream out;
  Report report("bench_x");
  report.write(out, obs.metrics(), &obs.trace(), &obs.spans());
  const std::string s = out.str();
  EXPECT_NE(s.find("\"spans\":{\"recorded\":2,\"dropped\":0,\"roots\":1}"),
            std::string::npos)
      << s;
}

TEST(ScopeTimer, NullSinkIsNoop) {
  // Must not crash and must not record anything.
  { ScopeTimer t(static_cast<RunningStats*>(nullptr)); }
  RunningStats s;
  { ScopeTimer t(&s); }
  EXPECT_EQ(s.count(), 1u);
  EXPECT_GE(s.min(), 0.0);
}

// ---- SpanRecorder --------------------------------------------------------

TEST(SpanRecorder, OpenCloseAndAdd) {
  SpanRecorder rec(16);
  EXPECT_TRUE(rec.enabled());
  const SpanId root = rec.open(SpanKind::Inference, 0.0, 0, 77, 4, 2);
  ASSERT_NE(root, 0u);
  const SpanId child = rec.add(SpanKind::HopTx, 0.5, 1.5, root, 77, 3, 9, 2e-6);
  ASSERT_NE(child, 0u);
  rec.close(root, 2.0, 1.25);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.root_count(), 1u);
  const SpanEvent& r = rec.at(0);
  EXPECT_EQ(r.kind, SpanKind::Inference);
  EXPECT_EQ(r.trace_id, 77u);
  EXPECT_EQ(r.parent, 0u);
  EXPECT_DOUBLE_EQ(r.t0, 0.0);
  EXPECT_DOUBLE_EQ(r.t1, 2.0);
  EXPECT_DOUBLE_EQ(r.value, 1.25);
  EXPECT_EQ(r.a, 4u);
  EXPECT_EQ(r.b, 2u);
  const SpanEvent& c = rec.at(1);
  EXPECT_EQ(c.parent, root);
  EXPECT_DOUBLE_EQ(c.duration(), 1.0);
}

TEST(SpanRecorder, DisabledRecorderIsNullSink) {
  SpanRecorder rec;  // capacity 0
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.open(SpanKind::Inference, 0.0), 0u);
  EXPECT_EQ(rec.add(SpanKind::HopTx, 0.0, 1.0), 0u);
  rec.close(0, 1.0);  // close of the null id must be a no-op
  EXPECT_EQ(rec.size(), 0u);
  // A disabled recorder records nothing and *drops* nothing — it is off,
  // not overflowing.
  EXPECT_EQ(rec.dropped(), 0u);
  // Merging into a disabled recorder is ignored (the per-slot merge path
  // must be safe when spans were never enabled).
  SpanRecorder other(4);
  other.add(SpanKind::SimStep, 0.0, 1.0);
  rec.merge(other);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(SpanRecorder, FullRecorderDropsNewest) {
  SpanRecorder rec(2);
  const SpanId a = rec.add(SpanKind::SimStep, 0.0, 1.0);
  const SpanId b = rec.add(SpanKind::SimStep, 1.0, 2.0);
  const SpanId c = rec.add(SpanKind::SimStep, 2.0, 3.0);  // refused
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  // The *oldest* spans are retained (dropping them would orphan subtrees).
  EXPECT_DOUBLE_EQ(rec.at(0).t0, 0.0);
  EXPECT_DOUBLE_EQ(rec.at(1).t0, 1.0);
}

TEST(SpanRecorder, MergeRemapsIdsAndPreservesParents) {
  // Recording the same spans sequentially or via per-slot recorders merged
  // in slot order must produce bit-identical recorders — the property the
  // netexec evaluate() fan-out relies on for thread-count independence.
  SpanRecorder sequential(16);
  for (int slot = 0; slot < 2; ++slot) {
    const auto tid = static_cast<std::uint64_t>(100 + slot);
    const SpanId root = sequential.open(SpanKind::Inference, 0.0, 0, tid);
    sequential.add(SpanKind::HopTx, 0.0, 1.0, root, tid);
    sequential.close(root, 2.0);
  }

  SpanRecorder slots[2] = {SpanRecorder(8), SpanRecorder(8)};
  for (int slot = 0; slot < 2; ++slot) {
    const auto tid = static_cast<std::uint64_t>(100 + slot);
    const SpanId root = slots[slot].open(SpanKind::Inference, 0.0, 0, tid);
    slots[slot].add(SpanKind::HopTx, 0.0, 1.0, root, tid);
    slots[slot].close(root, 2.0);
  }
  SpanRecorder merged(16);
  merged.merge(slots[0]);
  merged.merge(slots[1]);

  ASSERT_EQ(merged.size(), sequential.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.at(i), sequential.at(i)) << "span " << i;
  }
  EXPECT_EQ(merged.digest(), sequential.digest());
  EXPECT_EQ(merged.root_count(), 2u);
  // Parent links survived the id remap: the second tree's child points at
  // the second root, not the first.
  EXPECT_EQ(merged.at(3).parent, merged.at(2).id);
}

TEST(SpanRecorder, DigestIsStableAndSensitive) {
  auto record = [](double shift) {
    SpanRecorder rec(8);
    const SpanId root = rec.open(SpanKind::Inference, 0.0, 0, 42);
    rec.add(SpanKind::NodeCompute, shift, shift + 0.5, root, 42, 1);
    rec.close(root, 1.0);
    return rec;
  };
  EXPECT_EQ(record(0.25).digest(), record(0.25).digest());
  EXPECT_NE(record(0.25).digest(), record(0.375).digest());
  EXPECT_NE(SpanRecorder(8).digest(), 0u);  // empty digest is the FNV basis
}

TEST(SpanRecorder, ExportJsonlFormat) {
  SpanRecorder rec(8);
  const SpanId root = rec.open(SpanKind::Inference, 0.0, 0, 7);
  rec.add(SpanKind::Backoff, 0.25, 0.5, root, 7, 3, 1);
  rec.close(root, 1.0, 0.5);
  std::ostringstream out;
  rec.export_jsonl(out);
  const std::string s = out.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_NE(s.find("\"kind\":\"inference\""), std::string::npos);
  EXPECT_NE(s.find("\"kind\":\"backoff\""), std::string::npos);
  EXPECT_NE(s.find("\"trace\":7"), std::string::npos);
  EXPECT_NE(s.find("\"parent\":1"), std::string::npos);
}

TEST(SpanRecorder, ExportChromeTraceFormat) {
  SpanRecorder rec(8);
  const SpanId root = rec.open(SpanKind::Inference, 0.0, 0, 9, 5);
  rec.close(root, 0.002);
  std::ostringstream out;
  rec.export_chrome_trace(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"inference\""), std::string::npos);
  // Virtual seconds export as microseconds; pid carries the trace id and
  // tid the span's `a` attribute.
  EXPECT_NE(s.find("\"dur\":2000"), std::string::npos);
  EXPECT_NE(s.find("\"pid\":9"), std::string::npos);
  EXPECT_NE(s.find("\"tid\":5"), std::string::npos);
}

TEST(SpanRecorder, RenderTreeIndentsChildren) {
  SpanRecorder rec(8);
  const SpanId root = rec.open(SpanKind::Inference, 0.0, 0, 1);
  const SpanId hop = rec.add(SpanKind::HopTx, 0.0, 1.0, root, 1);
  rec.add(SpanKind::Backoff, 1.0, 1.5, hop, 1);
  rec.close(root, 2.0);
  std::ostringstream out;
  rec.render_tree(out);
  const std::string s = out.str();
  const auto inf = s.find("inference");
  const auto tx = s.find("hop_tx");
  const auto bo = s.find("backoff");
  ASSERT_NE(inf, std::string::npos);
  ASSERT_NE(tx, std::string::npos);
  ASSERT_NE(bo, std::string::npos);
  EXPECT_LT(inf, tx);
  EXPECT_LT(tx, bo);
}

TEST(Observability, EnableSpansOptIn) {
  Observability obs;
  EXPECT_FALSE(obs.spans_enabled());
  obs.enable_spans(32);
  EXPECT_TRUE(obs.spans_enabled());
  EXPECT_EQ(obs.spans().capacity(), 32u);
}

// ---- ProfilerRegistry ----------------------------------------------------

TEST(Profiler, SelfExcludesInstrumentedCallees) {
  ProfilerRegistry prof;
  const auto outer = prof.region("outer");
  const auto inner = prof.region("inner");
  EXPECT_EQ(prof.region("outer"), outer);  // interning is idempotent
  {
    ScopedTimer t_outer(&prof, outer);
    ScopedTimer t_inner(&prof, inner);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  const auto& o = prof.at(outer);
  const auto& i = prof.at(inner);
  EXPECT_EQ(o.count, 1u);
  EXPECT_EQ(i.count, 1u);
  // Outer's total covers inner's total; outer's self excludes it.
  EXPECT_GE(o.total_s, i.total_s);
  EXPECT_LE(o.self_s, o.total_s);
  EXPECT_DOUBLE_EQ(i.self_s, i.total_s);  // inner has no instrumented callee
  EXPECT_DOUBLE_EQ(o.self_s, o.total_s - i.total_s);
}

TEST(Profiler, ReportPublishesGauges) {
  ProfilerRegistry prof;
  const auto id = prof.region("phase.x");
  { ScopedTimer t(&prof, id); }
  MetricsRegistry m;
  prof.report(m);
  EXPECT_TRUE(m.has("prof.phase.x.total_s"));
  EXPECT_TRUE(m.has("prof.phase.x.self_s"));
  EXPECT_TRUE(m.has("prof.phase.x.count"));
  EXPECT_DOUBLE_EQ(m.gauge_value("prof.phase.x.count"), 1.0);
}

TEST(Profiler, NullRegistryScopedTimerIsNoop) {
  // Must not crash; the id is meaningless when the registry is null.
  ScopedTimer t(nullptr, 123);
}

// ---------------------------------------------------------------------------
// Registry-merge order-independence fuzz (the fleet aggregation contract).
//
// The fleet merges per-deployment registries in slot order, which makes
// the merged bytes deterministic for a *fixed* order.  A stronger
// property holds for the key shapes fleet deployments actually produce —
// integer-valued shared counters, per-deployment (disjoint) labeled
// series, and shared-bounds histograms — and this fuzz pins it: merging N
// such registries in ANY order yields byte-identical JSON, including
// histogram bin counts and dropped-event accounting.  (Shared *gauges*
// are last-write by design and shared float summaries accumulate in
// merge order; neither shape is emitted per-deployment, so they are
// deliberately outside this property.)

std::vector<MetricsRegistry> make_fuzz_registries(std::uint64_t seed,
                                                  std::size_t n) {
  Rng rng(seed);
  std::vector<MetricsRegistry> regs(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& m = regs[i];
    // Shared counters with integer deltas: addition is exact and
    // commutative in doubles up to 2^53.
    m.counter("fuzz.events").inc(static_cast<double>(rng.uniform_int(0, 50)));
    m.counter("fuzz.frames_lost")
        .inc(static_cast<double>(rng.uniform_int(0, 5)));
    // Disjoint per-slot series (the fleet's per-deployment label pattern).
    const Labels slot{{"slot", std::to_string(i)}};
    m.gauge("fuzz.accuracy", slot).set(rng.uniform(0.0, 1.0));
    m.summary("fuzz.latency", slot).observe(rng.uniform(0.0, 0.25));
    auto& own_hist = m.histogram("fuzz.local_s", 0.0, 1.0, 16, slot);
    for (int k = rng.uniform_int(1, 4); k > 0; --k) {
      own_hist.observe(rng.uniform(0.0, 1.0));
    }
    // Shared-key histogram with identical bounds: bin counts add exactly;
    // constant-valued observations keep the attached RunningStats exact
    // (Welford's merge is exact when every sample equals the mean).
    auto& shared = m.histogram("fuzz.shared_s", 0.0, 1.0, 8);
    for (int k = rng.uniform_int(1, 6); k > 0; --k) shared.observe(0.125);
  }
  return regs;
}

TEST(MetricsRegistry, MergeIsSlotOrderIndependentForFleetShapes) {
  Rng order_rng(99);
  for (std::uint64_t seed : {7u, 21u, 1234u}) {
    for (std::size_t n : {2u, 5u, 9u}) {
      const auto regs = make_fuzz_registries(seed, n);
      std::vector<std::size_t> order(n);
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
      std::string reference;
      for (int perm = 0; perm < 6; ++perm) {
        MetricsRegistry merged;
        for (const std::size_t idx : order) merged.merge(regs[idx]);
        const std::string json = merged.to_json();
        if (perm == 0) {
          reference = json;
        } else {
          EXPECT_EQ(json, reference)
              << "seed " << seed << " n " << n << " perm " << perm;
        }
        order_rng.shuffle(order);
      }
    }
  }
}

TEST(TraceRecorder, MergeAppendsThroughRingAndFoldsDrops) {
  // Merge == replaying other's retained events in order; other's events
  // already lost to wraparound stay lost but remain counted.
  TraceRecorder a(8);
  TraceRecorder b(4);
  for (int i = 0; i < 3; ++i) {
    a.record(static_cast<double>(i), TraceType::EventFired,
             static_cast<std::uint32_t>(i));
  }
  for (int i = 0; i < 6; ++i) {  // wraps: retains 4, drops 2
    b.record(10.0 + i, TraceType::PacketTx, static_cast<std::uint32_t>(i));
  }
  ASSERT_EQ(b.size(), 4u);
  ASSERT_EQ(b.dropped(), 2u);

  TraceRecorder manual(8);
  for (int i = 0; i < 3; ++i) {
    manual.record(static_cast<double>(i), TraceType::EventFired,
                  static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const TraceEvent& e = b.at(i);
    manual.record(e.t, e.type, e.a, e.b, e.value);
  }

  a.merge(b);
  EXPECT_EQ(a.size(), 7u);
  EXPECT_EQ(a.digest(), manual.digest());
  // recorded() folds b's drop count so merged dropped() stays truthful.
  EXPECT_EQ(a.recorded(), 3u + 4u + 2u);
  EXPECT_EQ(a.dropped(), 0u + 2u);
}

TEST(TraceRecorder, MergeOfDisjointSlotsIsOrderSensitiveButDeterministic) {
  // The fleet contract is slot-ORDER merge, not order independence: trace
  // rings are sequences.  Double-merging in the same order must be
  // byte-identical; a different order legitimately yields another digest.
  const auto build = [](std::uint64_t seed) {
    TraceRecorder r(16);
    Rng rng(seed);
    for (int i = 0; i < 5; ++i) {
      r.record(rng.uniform(0.0, 1.0), TraceType::EventFired,
               static_cast<std::uint32_t>(rng.uniform_int(0, 9)));
    }
    return r;
  };
  const TraceRecorder x = build(1), y = build(2);
  TraceRecorder ab(64), ab2(64), ba(64);
  ab.merge(x);
  ab.merge(y);
  ab2.merge(x);
  ab2.merge(y);
  ba.merge(y);
  ba.merge(x);
  EXPECT_EQ(ab.digest(), ab2.digest());
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Observability, MergeFromCombinesMetricsTracesAndSpans) {
  Observability dst(64);
  dst.enable_spans(32);
  Observability src(64);
  src.enable_spans(32);

  dst.metrics().counter("m.count").inc(2.0);
  src.metrics().counter("m.count").inc(3.0);
  dst.trace().record(0.5, TraceType::EventFired, 1);
  src.trace().record(0.75, TraceType::PacketRx, 2);
  const SpanId root = src.spans().open(SpanKind::Inference, 0.0, 0, 42);
  src.spans().close(root, 1.0, 7.0);

  dst.merge_from(src);
  EXPECT_DOUBLE_EQ(dst.metrics().counter_value("m.count"), 5.0);
  EXPECT_EQ(dst.trace().size(), 2u);
  ASSERT_EQ(dst.spans().size(), 1u);
  EXPECT_EQ(dst.spans().at(0).trace_id, 42u);
  // Span ids were remapped past dst's existing size (none here), parent
  // links intact: the merged root is still a root.
  EXPECT_EQ(dst.spans().root_count(), 1u);
}

TEST(Profiler, ResetKeepsInternedIds) {
  ProfilerRegistry prof;
  const auto id = prof.region("r");
  { ScopedTimer t(&prof, id); }
  prof.reset();
  EXPECT_EQ(prof.at(id).count, 0u);
  EXPECT_DOUBLE_EQ(prof.at(id).total_s, 0.0);
  EXPECT_EQ(prof.region("r"), id);
}

}  // namespace
}  // namespace zeiot::obs
