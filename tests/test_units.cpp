#include "common/units.hpp"

#include <gtest/gtest.h>

namespace zeiot {
namespace {

TEST(Units, DbmToWattKnownValues) {
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-9);
  EXPECT_NEAR(dbm_to_watt(-30.0), 1e-6, 1e-12);
}

TEST(Units, WattToDbmKnownValues) {
  EXPECT_NEAR(watt_to_dbm(1e-3), 0.0, 1e-9);
  EXPECT_NEAR(watt_to_dbm(1.0), 30.0, 1e-9);
}

TEST(Units, DbmWattRoundtrip) {
  for (double dbm = -120.0; dbm <= 40.0; dbm += 7.3) {
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(dbm)), dbm, 1e-9);
  }
}

TEST(Units, RatioDbRoundtrip) {
  for (double db = -60.0; db <= 60.0; db += 9.7) {
    EXPECT_NEAR(ratio_to_db(db_to_ratio(db)), db, 1e-9);
  }
}

TEST(Units, ThreeDbDoubles) {
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-3);
}

TEST(Units, MwUw) {
  EXPECT_DOUBLE_EQ(mw(1.0), 1e-3);
  EXPECT_DOUBLE_EQ(uw(10.0), 1e-5);
}

TEST(Units, ThermalNoiseReferenceValue) {
  // kTB at 290 K over 1 Hz is -174 dBm.
  EXPECT_NEAR(watt_to_dbm(thermal_noise_watt(1.0)), -174.0, 0.1);
  // 2 MHz bandwidth: -174 + 10log10(2e6) ~= -111 dBm.
  EXPECT_NEAR(watt_to_dbm(thermal_noise_watt(2e6)), -111.0, 0.2);
}

TEST(Units, Wavelength) {
  EXPECT_NEAR(wavelength_m(2.4e9), 0.125, 0.001);
  EXPECT_NEAR(wavelength_m(5.2e9), 0.0577, 0.0005);
}

}  // namespace
}  // namespace zeiot
