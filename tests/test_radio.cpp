#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "radio/ber.hpp"
#include "radio/fading.hpp"
#include "radio/link.hpp"
#include "radio/propagation.hpp"

namespace zeiot::radio {
namespace {

TEST(FreeSpace, KnownValueAt2p4GHz) {
  // FSPL(1 m, 2.4 GHz) ~= 40.05 dB.
  FreeSpace m(2.4e9);
  EXPECT_NEAR(m.loss_db(1.0), 40.05, 0.1);
  // +20 dB per decade of distance.
  EXPECT_NEAR(m.loss_db(10.0) - m.loss_db(1.0), 20.0, 1e-9);
}

TEST(FreeSpace, MonotonicInDistance) {
  FreeSpace m(2.4e9);
  double prev = m.loss_db(0.5);
  for (double d = 1.0; d < 100.0; d *= 1.7) {
    const double cur = m.loss_db(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(FreeSpace, ClampsTinyDistances) {
  FreeSpace m(2.4e9);
  EXPECT_DOUBLE_EQ(m.loss_db(0.0), m.loss_db(0.1));
  EXPECT_DOUBLE_EQ(m.loss_db(0.01), m.loss_db(0.1));
}

TEST(LogDistance, SlopeMatchesExponent) {
  LogDistance m(40.0, 3.0);
  EXPECT_NEAR(m.loss_db(1.0), 40.0, 1e-9);
  EXPECT_NEAR(m.loss_db(10.0), 70.0, 1e-9);
  EXPECT_NEAR(m.loss_db(100.0), 100.0, 1e-9);
}

TEST(LogDistance, RejectsBadParams) {
  EXPECT_THROW(LogDistance(40.0, 0.0), Error);
  EXPECT_THROW(LogDistance(40.0, 2.0, 0.0), Error);
}

TEST(IndoorWalls, AddsPerWallLoss) {
  IndoorWalls m(LogDistance(40.0, 2.5), 6.0);
  EXPECT_NEAR(m.loss_db(5.0, 2) - m.loss_db(5.0, 0), 12.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.loss_db(5.0), m.loss_db(5.0, 0));
  EXPECT_THROW(m.loss_db(5.0, -1), Error);
}

TEST(Shadowing, ZeroSigmaIsZero) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(draw_shadowing_db(rng, 0.0), 0.0);
}

TEST(Shadowing, SigmaScales) {
  Rng rng(1);
  double s2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = draw_shadowing_db(rng, 4.0);
    s2 += x * x;
  }
  EXPECT_NEAR(std::sqrt(s2 / n), 4.0, 0.1);
}

TEST(ReceivedDbm, BudgetArithmetic) {
  LogDistance m(40.0, 2.0);
  // 0 dBm - 40 dB at 1 m = -40 dBm, plus gains.
  EXPECT_NEAR(received_dbm(m, 0.0, 1.0), -40.0, 1e-9);
  EXPECT_NEAR(received_dbm(m, 0.0, 1.0, 3.0, 2.0), -35.0, 1e-9);
}

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-4);
  EXPECT_NEAR(q_function(3.0), 0.00135, 1e-5);
}

TEST(BerBpsk, KnownValues) {
  // BPSK at 0 dB Eb/N0: Q(sqrt(2)) ~= 0.0786.
  EXPECT_NEAR(ber_bpsk(1.0), 0.0786, 1e-3);
  // At 9.6 dB ~ 1e-5.
  EXPECT_NEAR(ber_bpsk(db_to_ratio(9.6)), 1e-5, 5e-6);
}

TEST(BerOok, HalfAtZeroSnr) {
  EXPECT_DOUBLE_EQ(ber_noncoherent_ook(0.0), 0.5);
  EXPECT_LT(ber_noncoherent_ook(10.0), 0.01);
}

TEST(Ber802154, BoundedAndMonotonic) {
  double prev = ber_802154(0.0);
  EXPECT_LE(prev, 0.5);
  for (double snr = 0.05; snr < 2.0; snr += 0.05) {
    const double cur = ber_802154(snr);
    EXPECT_LE(cur, prev + 1e-12);
    EXPECT_GE(cur, 0.0);
    prev = cur;
  }
  // DSSS gain makes 802.15.4 robust around 0 dB SNR and essentially
  // error-free a little above it.
  EXPECT_LT(ber_802154(1.0), 1e-3);
  EXPECT_LT(ber_802154(2.0), 1e-6);
}

TEST(PerFromBer, Basics) {
  EXPECT_DOUBLE_EQ(per_from_ber(0.0, 1000), 0.0);
  EXPECT_NEAR(per_from_ber(1e-3, 1000), 1.0 - std::pow(1.0 - 1e-3, 1000.0),
              1e-9);
  EXPECT_NEAR(per_from_ber(0.5, 1), 0.5, 1e-12);
  EXPECT_THROW(per_from_ber(1.5, 10), Error);
}

TEST(PerFromBer, MonotonicInLength) {
  double prev = 0.0;
  for (std::size_t bits = 8; bits <= 8192; bits *= 2) {
    const double per = per_from_ber(1e-4, bits);
    EXPECT_GT(per, prev);
    prev = per;
  }
}

// Property sweep: all BER functions decrease with SNR.
class BerMonotonicTest : public ::testing::TestWithParam<double> {};

TEST_P(BerMonotonicTest, HigherSnrNeverWorse) {
  const double snr = GetParam();
  const double snr2 = snr * 2.0;
  EXPECT_LE(ber_bpsk(snr2), ber_bpsk(snr) + 1e-15);
  EXPECT_LE(ber_noncoherent_ook(snr2), ber_noncoherent_ook(snr) + 1e-15);
  EXPECT_LE(ber_80211(snr2), ber_80211(snr) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, BerMonotonicTest,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0,
                                           16.0));

TEST(Fading, RayleighUnitMeanPower) {
  Rng rng(3);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rayleigh_power_gain(rng);
  EXPECT_NEAR(s / n, 1.0, 0.03);
}

TEST(Fading, RayleighCoeffUnitMeanPower) {
  Rng rng(3);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += std::norm(rayleigh_coeff(rng));
  EXPECT_NEAR(s / n, 1.0, 0.03);
}

TEST(Fading, RicianUnitMeanAndConcentration) {
  Rng rng(5);
  double s0 = 0.0, s10 = 0.0, v10 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    s0 += rician_power_gain(rng, 0.0);
    const double g = rician_power_gain(rng, 10.0);
    s10 += g;
    v10 += (g - 1.0) * (g - 1.0);
  }
  EXPECT_NEAR(s0 / n, 1.0, 0.03);
  EXPECT_NEAR(s10 / n, 1.0, 0.03);
  // High K concentrates around the mean (variance << Rayleigh's 1).
  EXPECT_LT(v10 / n, 0.3);
}

TEST(Fading, RejectsNegativeK) {
  Rng rng(5);
  EXPECT_THROW(rician_power_gain(rng, -1.0), Error);
}

TEST(LinkBudget, SnrConsistency) {
  LogDistance m(40.0, 2.0);
  TxSpec tx{20.0, 0.0};  // 100 mW
  RxSpec rx;
  const auto b = compute_link(m, tx, rx, 10.0);
  EXPECT_NEAR(b.rx_power_dbm, 20.0 - 60.0, 1e-9);
  EXPECT_NEAR(b.snr_db, b.rx_power_dbm - b.noise_dbm, 1e-9);
  EXPECT_NEAR(b.snr_linear, db_to_ratio(b.snr_db), 1e-6);
}

TEST(LinkBudget, ExtraLossReducesSnr) {
  LogDistance m(40.0, 2.0);
  TxSpec tx{0.0};
  RxSpec rx;
  const auto clean = compute_link(m, tx, rx, 5.0);
  const auto lossy = compute_link(m, tx, rx, 5.0, 10.0);
  EXPECT_NEAR(clean.snr_db - lossy.snr_db, 10.0, 1e-9);
}

TEST(BackscatterBudget, DyadicLossExceedsOneWay) {
  LogDistance m(40.0, 2.0);
  TxSpec src{20.0};
  RxSpec rx;
  const auto direct = compute_link(m, src, rx, 4.0);
  const auto tagged = compute_backscatter_link(m, src, rx, 2.0, 2.0);
  // Two path-loss legs plus reflection loss are always worse than the
  // single direct leg of the same total distance.
  EXPECT_LT(tagged.rx_power_dbm, direct.rx_power_dbm);
}

TEST(BackscatterBudget, ReflectionLossCounts) {
  LogDistance m(40.0, 2.0);
  TxSpec src{20.0};
  RxSpec rx;
  const auto a = compute_backscatter_link(m, src, rx, 2.0, 3.0, 0.0);
  const auto b = compute_backscatter_link(m, src, rx, 2.0, 3.0, 6.0);
  EXPECT_NEAR(a.rx_power_dbm - b.rx_power_dbm, 6.0, 1e-9);
}

TEST(Sinr, InterferenceDominatesNoise) {
  // Strong interferer: SINR ~= SIR.
  const double v = sinr_db(-60.0, -65.0, -100.0);
  EXPECT_NEAR(v, 5.0, 0.1);
  // No interferer in practice: SINR ~= SNR.
  const double v2 = sinr_db(-60.0, -200.0, -90.0);
  EXPECT_NEAR(v2, 30.0, 0.1);
}

TEST(Harvesting, ScalesWithEfficiencyAndDistance) {
  LogDistance m(40.0, 2.0);
  TxSpec tx{30.0};  // 1 W carrier
  const double p1 = harvestable_power_watt(m, tx, 1.0, 0.3);
  const double p2 = harvestable_power_watt(m, tx, 2.0, 0.3);
  EXPECT_GT(p1, p2);
  EXPECT_NEAR(p1 / p2, 4.0, 0.01);  // exponent 2 -> inverse square
  EXPECT_NEAR(harvestable_power_watt(m, tx, 1.0, 0.6) / p1, 2.0, 0.01);
  EXPECT_THROW(harvestable_power_watt(m, tx, 1.0, 1.5), Error);
}

TEST(Harvesting, RealisticMicrowattRegime) {
  // 1 W transmitter at 5 m, indoor: harvested power should land in the
  // microwatt regime the paper quotes for backscatter devices.
  LogDistance m(40.0, 2.5);
  TxSpec tx{30.0};
  const double p = harvestable_power_watt(m, tx, 5.0, 0.3);
  EXPECT_GT(p, 1e-7);
  EXPECT_LT(p, 1e-3);
}

}  // namespace
}  // namespace zeiot::radio
