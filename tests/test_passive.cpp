#include "sensing/passive/transducer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace zeiot::sensing::passive {
namespace {

// -------------------------------------------------------------- bimetallic --

TEST(Bimetallic, SwitchesAtThreshold) {
  BimetallicTag tag(25.0, 1.0);
  EXPECT_FALSE(tag.update(24.0));
  EXPECT_TRUE(tag.update(25.5));
  // Hysteresis: stays closed just below threshold.
  EXPECT_TRUE(tag.update(24.5));
  EXPECT_FALSE(tag.update(23.5));
}

TEST(Bimetallic, RssiLevelsSeparate) {
  BimetallicTag tag(25.0);
  Rng rng(1);
  tag.update(30.0);
  double closed_mean = 0.0;
  for (int i = 0; i < 200; ++i) closed_mean += tag.observed_rssi_dbm(rng);
  closed_mean /= 200.0;
  tag.update(10.0);
  double open_mean = 0.0;
  for (int i = 0; i < 200; ++i) open_mean += tag.observed_rssi_dbm(rng);
  open_mean /= 200.0;
  EXPECT_GT(closed_mean, open_mean + 10.0);
}

TEST(Thermometer, DecodesWithinQuantization) {
  ThermometerArray arr(18.0, 2.0, 8);  // thresholds 18..32 C
  Rng rng(2);
  for (double truth : {19.0, 23.0, 27.5, 31.0}) {
    const auto rssi = arr.expose(truth, rng);
    const double est = arr.decode(rssi);
    EXPECT_NEAR(est, truth, arr.quantization_step_c())
        << "at true temperature " << truth;
  }
}

TEST(Thermometer, BelowRangeClamps) {
  ThermometerArray arr(18.0, 2.0, 8);
  Rng rng(3);
  const auto rssi = arr.expose(5.0, rng);
  EXPECT_LT(arr.decode(rssi), 18.0);
}

TEST(Thermometer, TracksRisingAndFallingSweep) {
  ThermometerArray arr(18.0, 1.0, 15);
  Rng rng(4);
  double max_err = 0.0;
  for (double t = 16.0; t <= 34.0; t += 0.5) {
    max_err = std::max(max_err, std::abs(arr.decode(arr.expose(t, rng)) - t));
  }
  for (double t = 34.0; t >= 16.0; t -= 0.5) {
    max_err = std::max(max_err, std::abs(arr.decode(arr.expose(t, rng)) - t));
  }
  // Quantization + hysteresis bound the worst error to ~2 steps.
  EXPECT_LT(max_err, 2.5);
}

TEST(Thermometer, RejectsBadConstruction) {
  EXPECT_THROW(ThermometerArray(18.0, 0.0, 8), Error);
  EXPECT_THROW(ThermometerArray(18.0, 1.0, 1), Error);
}

// ---------------------------------------------------------------- hydrogel --

TEST(Hydrogel, ReflectionMonotone) {
  HydrogelTag tag(25.0, 3.0);
  double prev = 0.0;
  for (double t = 10.0; t <= 40.0; t += 1.0) {
    const double r = tag.reflection(t);
    EXPECT_GT(r, prev);
    EXPECT_GE(r, 0.1);
    EXPECT_LE(r, 0.9);
    prev = r;
  }
}

TEST(Hydrogel, CalibratedDecodeAccurate) {
  HydrogelTag tag(25.0, 3.0);
  const auto cal = tag.calibrate(15.0, 35.0, 64);
  Rng rng(5);
  double max_err = 0.0;
  for (double truth = 17.0; truth <= 33.0; truth += 0.8) {
    const double rssi = tag.observed_rssi_dbm(truth, rng, 0.2);
    max_err = std::max(max_err, std::abs(cal.decode(rssi) - truth));
  }
  // Sub-degree accuracy in the steep transition band, worse at the tails;
  // overall within 2.5 C at 0.2 dB noise.
  EXPECT_LT(max_err, 2.5);
}

TEST(Hydrogel, DecodeClampsOutOfRange) {
  HydrogelTag tag(25.0, 3.0);
  const auto cal = tag.calibrate(15.0, 35.0, 32);
  EXPECT_DOUBLE_EQ(cal.decode(-100.0), 15.0);
  EXPECT_DOUBLE_EQ(cal.decode(0.0), 35.0);
}

TEST(Hydrogel, RejectsBadParams) {
  EXPECT_THROW(HydrogelTag(25.0, 0.0), Error);
  HydrogelTag tag(25.0, 3.0);
  EXPECT_THROW(tag.calibrate(30.0, 20.0, 16), Error);
  EXPECT_THROW(tag.calibrate(20.0, 30.0, 1), Error);
}

// --------------------------------------------------------------- vibration --

TEST(Vibration, WaveformShape) {
  VibrationTagConfig cfg;
  Rng rng(6);
  const auto w = vibration_waveform(cfg, 5.0, 2.0, rng);
  EXPECT_EQ(w.size(), static_cast<std::size_t>(2.0 * cfg.sample_rate_hz));
}

TEST(Vibration, FrequencyEstimateAccurate) {
  VibrationTagConfig cfg;
  Rng rng(7);
  for (double truth : {2.0, 5.0, 10.0, 20.0}) {
    const auto w = vibration_waveform(cfg, truth, 5.0, rng);
    const double est = estimate_vibration_hz(cfg, w);
    EXPECT_NEAR(est, truth, 0.15 * truth) << "at " << truth << " Hz";
  }
}

TEST(Vibration, RejectsAboveNyquist) {
  VibrationTagConfig cfg;
  cfg.sample_rate_hz = 50.0;
  Rng rng(8);
  EXPECT_THROW(vibration_waveform(cfg, 30.0, 1.0, rng), Error);
}

TEST(Vibration, RejectsShortWaveform) {
  VibrationTagConfig cfg;
  EXPECT_THROW(estimate_vibration_hz(cfg, std::vector<double>(4, -60.0)),
               Error);
}

TEST(Vibration, NoisyWaveformStillDecodes) {
  VibrationTagConfig cfg;
  cfg.noise_db = 3.0;
  Rng rng(9);
  const auto w = vibration_waveform(cfg, 8.0, 5.0, rng);
  EXPECT_NEAR(estimate_vibration_hz(cfg, w), 8.0, 2.0);
}

}  // namespace
}  // namespace zeiot::sensing::passive
