// zeiot::fault — plan generation, injector semantics, invariant checking,
// and the injection points wired through the MAC / backscatter / MicroDeep /
// energy subsystems.  Everything here is seeded: a failing case names the
// exact plan digest needed to replay it.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "backscatter/coexistence.hpp"
#include "common/error.hpp"
#include "energy/device.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "mac/collection.hpp"
#include "mac/csma.hpp"
#include "microdeep/executor.hpp"
#include "netexec/netexec.hpp"
#include "sim/simulator.hpp"

namespace zeiot::fault {
namespace {

FaultSpec busy_spec(std::uint64_t seed = 9) {
  FaultSpec s;
  s.horizon_s = 100.0;
  s.num_targets = 16;
  s.node_death_rate = 5.0;
  s.mean_downtime_s = 20.0;
  s.drop_rate = 4.0;
  s.corrupt_rate = 3.0;
  s.delay_rate = 2.0;
  s.brownout_rate = 2.0;
  s.drought_rate = 2.0;
  s.seed = seed;
  return s;
}

// -- Plan generation -------------------------------------------------------

TEST(FaultPlan, GenerationIsDeterministic) {
  const FaultPlan a = generate_plan(busy_spec());
  const FaultPlan b = generate_plan(busy_spec());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.digest(), b.digest());
  const FaultPlan c = generate_plan(busy_spec(10));
  EXPECT_NE(a.digest(), c.digest()) << "seed must change the schedule";
}

TEST(FaultPlan, IntensityZeroMeansEmptyAndScalesCounts) {
  FaultSpec s = busy_spec();
  s.intensity = 0.0;
  EXPECT_TRUE(generate_plan(s).empty());
  s.intensity = 1.0;
  const std::size_t base = generate_plan(s).size();
  s.intensity = 4.0;
  const std::size_t heavy = generate_plan(s).size();
  EXPECT_GT(base, 0u);
  EXPECT_GT(heavy, base) << "4x intensity must inject more events";
}

TEST(FaultPlan, FaultClassesUseIndependentSubstreams) {
  FaultSpec with_drops = busy_spec();
  FaultSpec without_drops = busy_spec();
  without_drops.drop_rate = 0.0;
  auto deaths_of = [](const FaultPlan& p) {
    std::vector<FaultEvent> out;
    for (const auto& e : p.events()) {
      if (e.type == FaultType::NodeDeath || e.type == FaultType::NodeRevival) {
        out.push_back(e);
      }
    }
    return out;
  };
  EXPECT_EQ(deaths_of(generate_plan(with_drops)),
            deaths_of(generate_plan(without_drops)))
      << "zeroing one class's rate must not shift another class's schedule";
}

TEST(FaultPlan, JsonRoundTripIsExact) {
  const FaultPlan plan = generate_plan(busy_spec());
  const FaultPlan back = FaultPlan::from_json_text(plan.to_json());
  EXPECT_EQ(plan.events(), back.events());
  EXPECT_EQ(plan.digest(), back.digest());
}

TEST(FaultPlan, RejectsMalformedJson) {
  const std::string good = generate_plan(busy_spec()).to_json();
  EXPECT_THROW((void)FaultPlan::from_json_text(""), Error);
  EXPECT_THROW(
      (void)FaultPlan::from_json_text(good.substr(0, good.size() / 2)),
      Error);
  EXPECT_THROW((void)FaultPlan::from_json_text(good + "x"), Error)
      << "trailing bytes must be rejected";
  EXPECT_THROW((void)FaultPlan::from_json_text(
                   R"({"schema":"other.v1","events":[]})"),
               Error);
  EXPECT_THROW((void)FaultPlan::from_json_text(
                   R"({"schema":"zeiot.fault.v1","events":[{"type":"bogus","t":1}]})"),
               Error);
}

// -- Injector state queries ------------------------------------------------

TEST(FaultInjector, DeathRevivalSpans) {
  FaultInjector inj(FaultPlan({{5.0, FaultType::NodeDeath, 3},
                               {9.0, FaultType::NodeRevival, 3}}));
  EXPECT_FALSE(inj.node_dead(4.9, 3));
  EXPECT_TRUE(inj.node_dead(5.0, 3));
  EXPECT_TRUE(inj.node_dead(8.9, 3));
  EXPECT_FALSE(inj.node_dead(9.0, 3));
  EXPECT_FALSE(inj.node_dead(7.0, 2)) << "other nodes stay alive";
}

TEST(FaultInjector, DeadMaskAndWildcardTarget) {
  FaultInjector inj(FaultPlan({{1.0, FaultType::NodeDeath, kAllTargets},
                               {2.0, FaultType::NodeRevival, 0}}));
  const auto all_dead = inj.dead_mask(1.5, 4);
  EXPECT_EQ(all_dead, std::vector<bool>(4, true));
  const auto after = inj.dead_mask(2.5, 4);
  EXPECT_EQ(after, (std::vector<bool>{false, true, true, true}));
}

TEST(FaultInjector, DropWindowFiresOnlyInside) {
  // magnitude 1.0 => certain drop inside [10, 20), never outside.
  FaultInjector inj(
      FaultPlan({{10.0, FaultType::MessageDrop, 2, 10.0, 1.0}}));
  EXPECT_FALSE(inj.should_drop(9.9, 2, 7));
  EXPECT_TRUE(inj.should_drop(10.0, 2, 7));
  EXPECT_TRUE(inj.should_drop(19.9, 7, 2)) << "either endpoint matches";
  EXPECT_FALSE(inj.should_drop(20.0, 2, 7)) << "window end is exclusive";
  EXPECT_FALSE(inj.should_drop(15.0, 4, 5)) << "unrelated endpoints";
  EXPECT_EQ(inj.injected(FaultType::MessageDrop), 2u);
}

TEST(FaultInjector, ProbabilisticDrawsAreSeedReproducible) {
  const FaultPlan plan(
      {{0.0, FaultType::MessageDrop, kAllTargets, 100.0, 0.5}});
  FaultInjector a(plan, 123), b(plan, 123);
  std::size_t drops = 0;
  for (int i = 0; i < 200; ++i) {
    const bool da = a.should_drop(1.0, 0, 1);
    ASSERT_EQ(da, b.should_drop(1.0, 0, 1)) << "draw " << i << " diverged";
    if (da) ++drops;
  }
  EXPECT_GT(drops, 50u);
  EXPECT_LT(drops, 150u) << "Bernoulli(0.5) should land near half";
}

TEST(FaultInjector, CorruptWindowIndependentOfDrop) {
  FaultInjector inj(
      FaultPlan({{0.0, FaultType::MessageCorrupt, 1, 5.0, 1.0}}));
  EXPECT_FALSE(inj.should_drop(1.0, 1, 2)) << "no drop window exists";
  EXPECT_TRUE(inj.should_corrupt(1.0, 1, 2));
  EXPECT_FALSE(inj.should_corrupt(6.0, 1, 2));
  EXPECT_EQ(inj.injected(FaultType::MessageCorrupt), 1u);
}

TEST(FaultInjector, DelayWindowsOverlapToMax) {
  FaultInjector inj(
      FaultPlan({{0.0, FaultType::MessageDelay, 4, 10.0, 0.010},
                 {5.0, FaultType::MessageDelay, 4, 10.0, 0.030}}));
  EXPECT_DOUBLE_EQ(inj.message_delay_s(2.0, 4, 9), 0.010);
  EXPECT_DOUBLE_EQ(inj.message_delay_s(7.0, 4, 9), 0.030)
      << "largest active delay wins in the overlap";
  EXPECT_DOUBLE_EQ(inj.message_delay_s(20.0, 4, 9), 0.0);
  EXPECT_EQ(inj.injected(FaultType::MessageDelay), 2u);
}

TEST(FaultInjector, BrownoutAndDroughtWindows) {
  FaultInjector inj(
      FaultPlan({{1.0, FaultType::Brownout, 0, 2.0, 1.0},
                 {0.0, FaultType::HarvestDrought, 0, 10.0, 0.5},
                 {4.0, FaultType::HarvestDrought, 0, 10.0, 0.1}}));
  EXPECT_FALSE(inj.in_brownout(0.5, 0));
  EXPECT_TRUE(inj.in_brownout(1.5, 0));
  EXPECT_FALSE(inj.in_brownout(3.5, 0));
  EXPECT_DOUBLE_EQ(inj.harvest_scale(2.0, 0), 0.5);
  EXPECT_DOUBLE_EQ(inj.harvest_scale(5.0, 0), 0.1)
      << "overlapping droughts: the smallest scale (worst case) wins";
  EXPECT_DOUBLE_EQ(inj.harvest_scale(5.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(inj.harvest_scale(50.0, 0), 1.0);
}

TEST(FaultInjector, RecordsInjectionsIntoObservability) {
  obs::Observability obs;
  FaultInjector inj(
      FaultPlan({{0.0, FaultType::MessageDrop, 1, 10.0, 1.0}}));
  inj.set_observability(&obs);
  ASSERT_TRUE(inj.should_drop(1.0, 1, 2));
  EXPECT_EQ(obs.metrics()
                .counter("fault.injected", {{"type", "message_drop"}})
                .value(),
            1.0);
  ASSERT_EQ(obs.trace().size(), 1u);
  EXPECT_EQ(obs.trace().at(0).type, obs::TraceType::FaultInjected);
  EXPECT_EQ(obs.trace().at(0).a, 1u);
}

TEST(FaultDriver, ArmsPlanTransitionsOnTheKernel) {
  obs::Observability obs;
  FaultInjector inj(FaultPlan({{2.0, FaultType::NodeDeath, 1},
                               {5.0, FaultType::NodeRevival, 1}}));
  inj.set_observability(&obs);
  sim::Simulator sim;
  FaultDriver driver(sim, inj);
  driver.arm();
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0) << "fault events advance the clock";
  EXPECT_EQ(obs.metrics()
                .counter("fault.transitions", {{"type", "node_death"}})
                .value(),
            1.0);
  EXPECT_EQ(obs.metrics()
                .counter("fault.transitions", {{"type", "node_revival"}})
                .value(),
            1.0);
}

// -- Invariant checker -----------------------------------------------------

TEST(InvariantChecker, EnergyBoundsAndRequireClean) {
  InvariantChecker chk;
  EXPECT_TRUE(chk.check_energy_bounds(1.0, 0, 0.5, 3.3));
  EXPECT_TRUE(chk.clean());
  EXPECT_NO_THROW(chk.require_clean());
  EXPECT_FALSE(chk.check_energy_bounds(2.0, 0, -1e-9, 3.3));
  EXPECT_FALSE(chk.check_energy_bounds(3.0, 1, 0.1, std::nan("")));
  ASSERT_EQ(chk.violations().size(), 2u);
  EXPECT_THROW(chk.require_clean(), Error);
}

TEST(InvariantChecker, NoDeadSenderScansTrace) {
  obs::Observability obs;
  obs.trace().record(1.0, obs::TraceType::PacketTx, /*a=*/3);
  obs.trace().record(6.0, obs::TraceType::PacketTx, /*a=*/3);
  FaultInjector inj(FaultPlan({{5.0, FaultType::NodeDeath, 3}}));
  InvariantChecker chk;
  EXPECT_FALSE(chk.check_no_dead_sender(obs.trace(), inj))
      << "the t=6 transmission comes from a node dead since t=5";
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_DOUBLE_EQ(chk.violations().front().t, 6.0);
}

TEST(InvariantChecker, UnitCoverUnderDropout) {
  InvariantChecker chk;
  const std::vector<std::uint32_t> ok{0, 1, 2, 1};
  EXPECT_TRUE(chk.check_unit_cover(0.0, ok, 3, {}));
  EXPECT_FALSE(chk.check_unit_cover(1.0, {0, 5}, 3, {}))
      << "node 5 is out of range";
  EXPECT_FALSE(chk.check_unit_cover(2.0, ok, 3, {false, true, false}))
      << "units hosted on dead node 1";
  // One violation per offending unit: node 5 out of range, plus units 1
  // and 3 both hosted on dead node 1.
  EXPECT_EQ(chk.violations().size(), 3u);
}

TEST(InvariantChecker, ForwardConservationTolerance) {
  InvariantChecker chk;
  EXPECT_TRUE(chk.check_forward_conservation(0.0, 1.0000004, 1.0, 1e-6));
  EXPECT_FALSE(chk.check_forward_conservation(1.0, 1.1, 1.0, 1e-6));
  EXPECT_FALSE(chk.check_forward_conservation(2.0, std::nan(""), 1.0, 1e-6));
  EXPECT_EQ(chk.violations().size(), 2u);
}

TEST(InvariantChecker, AttachedChecksRunAtStepBoundaries) {
  sim::Simulator sim;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(static_cast<double>(i + 1), [] {});
  }
  InvariantChecker chk;
  std::size_t calls = 0;
  chk.add_check("count", [&](double) {
    ++calls;
    return std::nullopt;
  });
  chk.attach_to_simulator(sim, /*stride=*/2);
  sim.run();
  EXPECT_EQ(calls, 5u) << "stride 2 over 10 events";
  EXPECT_EQ(chk.checks_run(), 5u);
  EXPECT_TRUE(chk.clean());
}

// -- Wired subsystems ------------------------------------------------------

TEST(FaultWiring, CsmaDeadStationsNeverTransmit) {
  mac::CsmaConfig cfg;
  cfg.num_stations = 4;
  cfg.seed = 3;
  FaultInjector inj(FaultPlan({{0.0, FaultType::NodeDeath, kAllTargets}}));
  const auto m = mac::simulate_csma(cfg, 20000, nullptr, &inj);
  EXPECT_EQ(m.successes, 0u);
  EXPECT_EQ(m.collisions, 0u);
}

TEST(FaultWiring, CsmaEmptyPlanMatchesNoInjector) {
  mac::CsmaConfig cfg;
  cfg.num_stations = 6;
  cfg.seed = 5;
  FaultInjector empty{FaultPlan{}};
  const auto base = mac::simulate_csma(cfg, 30000);
  const auto with = mac::simulate_csma(cfg, 30000, nullptr, &empty);
  EXPECT_EQ(base.successes, with.successes);
  EXPECT_EQ(base.collisions, with.collisions);
  EXPECT_EQ(base.per_station_successes, with.per_station_successes);
  EXPECT_EQ(with.fault_dropped, 0u);
}

TEST(FaultWiring, CsmaDropWindowForcesRetries) {
  mac::CsmaConfig cfg;
  cfg.num_stations = 2;
  cfg.seed = 8;
  FaultInjector inj(FaultPlan(
      {{0.0, FaultType::MessageDrop, kAllTargets, 50000.0, 1.0}}));
  const auto m = mac::simulate_csma(cfg, 30000, nullptr, &inj);
  EXPECT_EQ(m.successes, 0u) << "every clean win is dropped in flight";
  EXPECT_GT(m.fault_dropped, 0u);
  EXPECT_GT(m.drops, 0u) << "retry limits must eventually discard frames";
}

TEST(FaultWiring, CollectionReplayRecoversAndLoses) {
  std::vector<mac::DeviceRequirement> devices{
      {0, {1.0, 1.0}, 1.0, 16}, {1, {2.0, 1.0}, 1.0, 16}};
  mac::CollectionConfig cfg;
  cfg.recovery_slots = 1;
  const auto schedule = mac::synthesize_schedule(devices, cfg);
  ASSERT_TRUE(schedule.feasible);

  FaultInjector none{FaultPlan{}};
  const auto clean = mac::replay_schedule_with_faults(schedule, none);
  EXPECT_EQ(clean.instances, 2u);
  EXPECT_EQ(clean.delivered_first_try, 2u);
  EXPECT_EQ(clean.lost, 0u);
  EXPECT_DOUBLE_EQ(clean.delivery_ratio(), 1.0);

  // Window over device 0's primary transmission only: the reserved
  // recovery slot must save the instance.
  double primary_start = 0.0, recovery_start = 0.0;
  for (const auto& e : schedule.entries) {
    if (e.device != 0) continue;
    (e.recovery ? recovery_start : primary_start) = e.start_s;
  }
  ASSERT_LT(primary_start, recovery_start);
  FaultInjector partial(FaultPlan({{primary_start, FaultType::MessageDrop, 0,
                                    (recovery_start - primary_start) / 2.0,
                                    1.0}}));
  const auto rec = mac::replay_schedule_with_faults(schedule, partial);
  EXPECT_EQ(rec.recovered, 1u);
  EXPECT_EQ(rec.lost, 0u);
  EXPECT_EQ(rec.faulted_windows, 1u);

  // Certain drop over the whole hyperperiod: everything is lost.
  FaultInjector total(FaultPlan({{0.0, FaultType::MessageDrop, kAllTargets,
                                  schedule.hyperperiod_s + 1.0, 1.0}}));
  const auto lost = mac::replay_schedule_with_faults(schedule, total);
  EXPECT_EQ(lost.lost, 2u);
  EXPECT_DOUBLE_EQ(lost.delivery_ratio(), 0.0);

  // Dead device: windows are skipped, not transmitted-and-dropped.
  FaultInjector dead(FaultPlan({{0.0, FaultType::NodeDeath, 0}}));
  const auto d = mac::replay_schedule_with_faults(schedule, dead);
  EXPECT_EQ(d.lost, 1u);
  EXPECT_GT(d.dead_windows, 0u);
  EXPECT_EQ(d.delivered_first_try, 1u) << "device 1 is unaffected";
}

TEST(FaultWiring, CoexistenceChaosIsSeedReproducible) {
  const FaultPlan plan = generate_plan([] {
    FaultSpec s;
    s.horizon_s = 20.0;
    s.num_targets = 4;
    s.node_death_rate = 2.0;
    s.mean_downtime_s = 5.0;
    s.drop_rate = 2.0;
    s.drop_probability = 0.7;
    s.seed = 21;
    return s;
  }());
  auto run_once = [&](obs::Observability& obs) {
    backscatter::CoexistenceConfig cfg;
    cfg.duration_s = 20.0;
    cfg.num_devices = 4;
    cfg.wlan_rate_hz = 40.0;
    FaultInjector inj(plan);
    inj.set_observability(&obs);
    backscatter::CoexistenceSimulator sim(cfg);
    sim.set_observability(&obs);
    sim.set_fault_injector(&inj);
    return sim.run();
  };
  obs::Observability oa, ob;
  const auto ma = run_once(oa);
  const auto mb = run_once(ob);
  EXPECT_EQ(ma.frames_delivered, mb.frames_delivered);
  EXPECT_EQ(ma.frames_suppressed, mb.frames_suppressed);
  EXPECT_EQ(ma.frames_faulted, mb.frames_faulted);
  EXPECT_EQ(oa.trace().digest(), ob.trace().digest())
      << "protocol + fault interleaving must be bit-identical";
  EXPECT_GT(ma.frames_suppressed + ma.frames_faulted, 0u)
      << "the plan should actually bite at this intensity";
}

TEST(FaultWiring, ExecutorEmptyPlanMatchesNoInjectorExactly) {
  Rng rng(1);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 4, rng);
  net.emplace<ml::Dense>(4, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
  const auto wsn = microdeep::WsnTopology::grid({0, 0, 10, 10}, 3, 3);
  const auto a = microdeep::assign_nearest(graph, wsn);
  ml::Tensor sample({1, 6, 6});
  Rng srng(4);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(srng.uniform(-1.0, 1.0));
  }
  const auto base = microdeep::execute_distributed(net, graph, a, wsn, sample);
  FaultInjector empty{FaultPlan{}};
  const auto with = microdeep::execute_distributed(
      net, graph, a, wsn, sample, {}, nullptr, &empty, 1.0);
  ASSERT_EQ(base.output.size(), with.output.size());
  for (std::size_t i = 0; i < base.output.size(); ++i) {
    EXPECT_EQ(base.output[i], with.output[i]) << "logit " << i;
  }
  EXPECT_EQ(base.inference_latency_s, with.inference_latency_s);
  EXPECT_EQ(with.messages_faulted, 0.0);
}

TEST(FaultWiring, ExecutorSurvivesTotalMessageLoss) {
  Rng rng(2);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2 * 2 * 2, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 4, 4});
  const auto wsn = microdeep::WsnTopology::grid({0, 0, 10, 10}, 2, 2);
  const auto a = microdeep::assign_nearest(graph, wsn);
  ml::Tensor sample({1, 4, 4});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = 1.0f;
  }
  FaultInjector all_lost(FaultPlan(
      {{0.0, FaultType::MessageDrop, kAllTargets, 100.0, 1.0}}));
  const auto res = microdeep::execute_distributed(
      net, graph, a, wsn, sample, {}, nullptr, &all_lost, 1.0);
  EXPECT_GT(res.messages_faulted, 0.0);
  EXPECT_EQ(res.messages_faulted, res.total_messages)
      << "every cross-node message sits inside the certain-drop window";
  for (std::size_t i = 0; i < res.output.size(); ++i) {
    EXPECT_TRUE(std::isfinite(res.output[i]))
        << "missing data must degrade, never produce inf/nan";
  }
}

TEST(FaultWiring, ExecutorDelayStretchesLatency) {
  Rng rng(3);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2 * 4 * 4, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 4, 4});
  const auto wsn = microdeep::WsnTopology::grid({0, 0, 10, 10}, 2, 2);
  const auto a = microdeep::assign_nearest(graph, wsn);
  ml::Tensor sample({1, 4, 4});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = 0.5f;
  }
  const auto base = microdeep::execute_distributed(net, graph, a, wsn, sample);
  FaultInjector slow(FaultPlan(
      {{0.0, FaultType::MessageDelay, kAllTargets, 100.0, 0.250}}));
  const auto delayed = microdeep::execute_distributed(
      net, graph, a, wsn, sample, {}, nullptr, &slow, 1.0);
  EXPECT_GT(delayed.inference_latency_s, base.inference_latency_s + 0.2)
      << "every cross-node hop gained 250 ms";
  for (std::size_t i = 0; i < base.output.size(); ++i) {
    EXPECT_EQ(base.output[i], delayed.output[i])
        << "delay changes timing, never values";
  }
}

TEST(FaultWiring, DeviceDroughtStopsChargingAndBrownoutDeniesWork) {
  using namespace zeiot::energy;
  auto make_device = [] {
    return IntermittentDevice(std::make_unique<ConstantHarvester>(1e-3),
                              Capacitor(100e-6, 5.0, 0.0),
                              HysteresisSwitch(3.0, 2.0));
  };
  // Drought with scale 0 over [0, 10): no charge is accumulated.
  IntermittentDevice dry = make_device();
  FaultInjector drought(FaultPlan(
      {{0.0, FaultType::HarvestDrought, 0, 10.0, 0.0}}));
  dry.set_fault_injector(&drought);
  IntermittentDevice wet = make_device();
  dry.advance(5.0);
  wet.advance(5.0);
  EXPECT_LT(dry.stored_joule(), wet.stored_joule())
      << "scaled-to-zero harvest must fall behind the healthy device";

  // Brownout window: the rail is held in reset, so activities are denied
  // even though the capacitor is charged and the switch is ON.
  IntermittentDevice dev = make_device();
  FaultInjector rail(FaultPlan({{1.0, FaultType::Brownout, 0, 2.0, 1.0}}));
  dev.set_fault_injector(&rail);
  dev.advance(0.5);
  ASSERT_TRUE(dev.is_on());
  EXPECT_TRUE(dev.try_sense(0.01));
  dev.advance(1.5);  // inside the brownout window
  EXPECT_TRUE(dev.is_on()) << "capacitor is still charged";
  EXPECT_FALSE(dev.try_sense(0.01)) << "rail fault denies the activity";
  dev.advance(3.5);  // past the window
  EXPECT_TRUE(dev.try_sense(0.01));
}

TEST(FaultWiring, InvariantCheckerHoldsUnderChaosRun) {
  // End-to-end: drive coexistence under a fault plan with the checker
  // attached at step boundaries; nothing physically impossible may happen.
  obs::Observability obs;
  FaultInjector inj(generate_plan([] {
    FaultSpec s;
    s.horizon_s = 15.0;
    s.num_targets = 4;
    s.node_death_rate = 2.0;
    s.drop_rate = 2.0;
    s.seed = 33;
    return s;
  }()));
  inj.set_observability(&obs);
  backscatter::CoexistenceConfig cfg;
  cfg.duration_s = 15.0;
  cfg.num_devices = 4;
  cfg.wlan_rate_hz = 30.0;
  backscatter::CoexistenceSimulator sim(cfg);
  sim.set_observability(&obs);
  sim.set_fault_injector(&inj);
  (void)sim.run();
  InvariantChecker chk(&obs);
  EXPECT_TRUE(chk.check_no_dead_sender(obs.trace(), inj))
      << "no delivered backscatter frame may originate from a dead tag";
  chk.require_clean();
}

// -- Network-in-the-loop execution under faults ----------------------------

TEST(FaultWiring, NetexecNodeDeathMidInferenceTerminatesDegraded) {
  // Kill the node owning a hidden-layer (dense) unit while its inference is
  // in flight.  The event loop must still drain (the per-layer deadline is
  // the termination guarantee), the consumers must substitute the missing
  // activations, and the result must carry the degraded flag.
  Rng rng(41);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
  const auto wsn = microdeep::WsnTopology::grid({0.0, 0.0, 10.0, 10.0}, 4, 4);
  const auto assignment = microdeep::assign_nearest(graph, wsn);

  // The first Dense layer in the unit graph is the hidden one; its owner is
  // the victim.
  microdeep::UnitId hidden_unit = 0;
  bool found = false;
  for (const auto& layer : graph.layers()) {
    if (layer.kind == microdeep::UnitLayer::Kind::Dense) {
      hidden_unit = layer.first_unit;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const auto victim = assignment.node_of(hidden_unit);

  // Death at 1 ms: input frames are already in flight (per-hop airtime is
  // ~1.3 ms under the default 802.15.4 channel) but the hidden layer has
  // not computed yet — squarely mid-inference.
  FaultPlan plan({FaultEvent{1e-3, FaultType::NodeDeath,
                             static_cast<std::uint32_t>(victim)}});
  FaultInjector inj(std::move(plan));

  netexec::NetExecConfig cfg;
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(net, graph, assignment, wsn, cfg);

  ml::Tensor sample({1, 6, 6});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto r = exec.run(sample);  // returning at all proves termination

  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.substitutions, 0u);
  EXPECT_EQ(r.output.size(), 2u);
  EXPECT_GT(r.latency_s, 0.0);
  // A dead owner never ships its outputs: the frames addressed to / from it
  // are abandoned, not retried forever.
  EXPECT_GT(r.frames_lost + r.substitutions, 0u);

  // The executor must stay usable after the fault run: the victim stays
  // dead (point event, no revival), so later inferences degrade too but
  // still terminate.
  const auto r2 = exec.run(sample);
  EXPECT_TRUE(r2.degraded);
}

TEST(FaultWiring, NetexecDeadSensingNodeSubstitutesItsInputs) {
  // A node that is already dead at t=0 cannot sense: every input unit it
  // owns is substituted (zeros on first contact) and the run degrades, but
  // the remaining nodes still produce a full-sized output vector.
  Rng rng(42);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 2, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(2 * 6 * 6, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
  const auto wsn = microdeep::WsnTopology::grid({0.0, 0.0, 10.0, 10.0}, 3, 3);
  const auto assignment = microdeep::assign_nearest(graph, wsn);

  const auto victim = assignment.node_of(graph.layers().front().first_unit);
  FaultPlan plan({FaultEvent{0.0, FaultType::NodeDeath,
                             static_cast<std::uint32_t>(victim)}});
  FaultInjector inj(std::move(plan));

  netexec::NetExecConfig cfg;
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(net, graph, assignment, wsn, cfg);

  ml::Tensor sample({1, 6, 6});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto r = exec.run(sample);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.substitutions, 0u);
  EXPECT_EQ(r.output.size(), 2u);
}

TEST(FaultWiring, NetexecBrownoutWithCheckpointsResumesCorrectLate) {
  // A whole-cell supply brownout mid-inference (Sec. III.A's intermittency
  // meeting the distributed executor): with per-unit NVM checkpoints the
  // round suspends instead of dying, resumes from the durable image at
  // revival, and completes with logits bit-identical to the uninterrupted
  // run — correct, just late.  (The degradation control arm and the codec
  // properties live in tests/test_intermittent_exec.cpp.)
  Rng rng(43);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 6, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(6, 2, rng);
  const auto graph = microdeep::UnitGraph::build(net, {1, 6, 6});
  const auto wsn = microdeep::WsnTopology::grid({0.0, 0.0, 10.0, 10.0}, 4, 4);
  const auto assignment = microdeep::assign_nearest(graph, wsn);

  ml::Tensor sample({1, 6, 6});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  netexec::NetExecConfig base;
  base.checkpoint.policy = netexec::CheckpointPolicy::EveryUnit;
  netexec::NetworkExecutor clean(net, graph, assignment, wsn, base);
  const auto ref = clean.run(sample);
  ASSERT_FALSE(ref.degraded);

  // All nodes lose their supply from 1 ms (frames in flight) to 51 ms.
  FaultPlan plan({FaultEvent{1e-3, FaultType::Brownout, kAllTargets, 50e-3,
                             1.0}});
  FaultInjector inj(std::move(plan));
  netexec::NetExecConfig cfg = base;
  cfg.fault = &inj;
  netexec::NetworkExecutor exec(net, graph, assignment, wsn, cfg);
  const auto r = exec.run(sample);

  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.substitutions, 0u);
  EXPECT_GT(r.suspensions, 0u);
  EXPECT_GT(r.resumes, 0u);
  EXPECT_GE(r.latency_s, 51e-3) << "completion waits for the revival";
  EXPECT_GT(r.latency_s, ref.latency_s);
  ASSERT_EQ(r.output.size(), ref.output.size());
  for (std::size_t i = 0; i < r.output.size(); ++i) {
    const float fg = r.output[i];
    const float fw = ref.output[i];
    std::uint32_t got = 0;
    std::uint32_t want = 0;
    std::memcpy(&got, &fg, sizeof(got));
    std::memcpy(&want, &fw, sizeof(want));
    EXPECT_EQ(got, want) << "logit " << i << " differs in bits after resume";
  }
}

}  // namespace
}  // namespace zeiot::fault
