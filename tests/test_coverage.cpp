#include "radio/coverage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zeiot::radio {
namespace {

const Rect kArea{0.0, 0.0, 20.0, 20.0};

LogDistance model() { return LogDistance(40.0, 2.5); }

TEST(Coverage, MapDimensions) {
  const auto m = model();
  const auto map = compute_coverage(kArea, 2.0, {}, m);
  EXPECT_EQ(map.cols, 10);
  EXPECT_EQ(map.rows, 10);
  EXPECT_EQ(map.harvest_watt.size(), 100u);
}

TEST(Coverage, EmptyCarriersZeroEverywhere) {
  const auto m = model();
  const auto map = compute_coverage(kArea, 2.0, {}, m);
  EXPECT_DOUBLE_EQ(map.worst_watt(), 0.0);
  EXPECT_DOUBLE_EQ(map.covered_fraction(1e-9), 0.0);
}

TEST(Coverage, PowerPeaksNearCarrier) {
  const auto m = model();
  const auto map =
      compute_coverage(kArea, 2.0, {{{3.0, 3.0}, {30.0, 2.0}}}, m);
  // The cell containing the carrier beats the opposite corner.
  EXPECT_GT(map.at(1, 1), map.at(9, 9) * 10.0);
}

TEST(Coverage, TwoCarriersSuperpose) {
  const auto m = model();
  const Carrier c1{{5.0, 5.0}, {30.0, 2.0}};
  const Carrier c2{{15.0, 15.0}, {30.0, 2.0}};
  const auto lone = compute_coverage(kArea, 2.0, {c1}, m);
  const auto both = compute_coverage(kArea, 2.0, {c1, c2}, m);
  for (int r = 0; r < lone.rows; ++r) {
    for (int c = 0; c < lone.cols; ++c) {
      EXPECT_GT(both.at(c, r), lone.at(c, r));
    }
  }
}

TEST(Coverage, CoveredFractionMonotoneInThreshold) {
  const auto m = model();
  const auto map =
      compute_coverage(kArea, 2.0, {{{10.0, 10.0}, {30.0, 2.0}}}, m);
  double prev = 1.0;
  for (double thr = 1e-9; thr < 1e-3; thr *= 10.0) {
    const double f = map.covered_fraction(thr);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(Coverage, GreedyPlacementImprovesWithK) {
  const auto m = model();
  const double thr = 2e-7;  // 0.2 uW to operate
  const auto one = greedy_place_carriers(kArea, 2.0, 5.0, 1, m, thr);
  const auto three = greedy_place_carriers(kArea, 2.0, 5.0, 3, m, thr);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(three.size(), 3u);
  const auto cov1 = compute_coverage(kArea, 2.0, one, m).covered_fraction(thr);
  const auto cov3 =
      compute_coverage(kArea, 2.0, three, m).covered_fraction(thr);
  EXPECT_GT(cov3, cov1);
}

TEST(Coverage, GreedyFirstCarrierNearCenter) {
  const auto m = model();
  const auto placed =
      greedy_place_carriers(kArea, 2.0, 2.5, 1, m, 2e-7);
  ASSERT_EQ(placed.size(), 1u);
  // The single best site for a symmetric area is near the middle.
  EXPECT_NEAR(placed[0].position.x, 10.0, 3.0);
  EXPECT_NEAR(placed[0].position.y, 10.0, 3.0);
}

TEST(Coverage, GreedyStopsAtFullCoverage) {
  const auto m = model();
  // Trivial threshold: one carrier covers everything, so asking for five
  // must stop early.
  const auto placed =
      greedy_place_carriers(kArea, 2.0, 5.0, 5, m, 1e-12);
  EXPECT_EQ(placed.size(), 1u);
}

TEST(Coverage, RejectsBadArguments) {
  const auto m = model();
  EXPECT_THROW(compute_coverage(kArea, 0.0, {}, m), Error);
  EXPECT_THROW(greedy_place_carriers(kArea, 2.0, 5.0, 0, m, 1e-7), Error);
  EXPECT_THROW(greedy_place_carriers(kArea, 2.0, 5.0, 1, m, 0.0), Error);
  EXPECT_THROW(compute_coverage({0, 0, 0, 0}, 1.0, {}, m), Error);
}

}  // namespace
}  // namespace zeiot::radio
