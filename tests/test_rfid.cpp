#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "sensing/rfid/sociogram.hpp"
#include "sensing/rfid/tag_array.hpp"
#include "sensing/rfid/trajectory.hpp"

namespace zeiot::sensing::rfid {
namespace {

// -------------------------------------------------------------- tag array --

TEST(TagArray, PostureNamesDistinct) {
  EXPECT_EQ(posture_name(Posture::Standing), "standing");
  EXPECT_EQ(posture_name(Posture::Lying), "lying");
}

TEST(TagArray, PosturesHaveDistinctGeometry) {
  Rng rng(1);
  const auto standing = tag_positions(Posture::Standing, {2.0, 2.0}, 1.7, rng);
  const auto lying = tag_positions(Posture::Lying, {2.0, 2.0}, 1.7, rng);
  ASSERT_EQ(standing.size(), static_cast<std::size_t>(kNumJoints));
  // Standing head is high; lying head is near the floor.
  EXPECT_GT(standing[static_cast<int>(Joint::Head)].z, 1.4);
  EXPECT_LT(lying[static_cast<int>(Joint::Head)].z, 0.4);
}

TEST(TagArray, ReadingShape) {
  TagArrayConfig cfg;
  Rng rng(2);
  const auto r = read_tags(cfg, Posture::Standing, rng);
  EXPECT_EQ(r.antennas, 4);
  EXPECT_EQ(r.joints, kNumJoints);
  EXPECT_EQ(r.phase_rad.size(), static_cast<std::size_t>(4 * kNumJoints));
  for (double ph : r.phase_rad) {
    EXPECT_GE(ph, 0.0);
    EXPECT_LT(ph, 2.0 * M_PI + 1e-9);
  }
}

TEST(TagArray, RefineRangeResolvesAmbiguity) {
  const double carrier = 920e6;
  const double lambda = wavelength_m(carrier);
  for (double true_d : {0.8, 1.7, 2.9, 4.2}) {
    const double phase = std::fmod(4.0 * M_PI * true_d / lambda, 2.0 * M_PI);
    // Coarse estimate off by up to a third of the ambiguity step.
    const double coarse = true_d + 0.3 * lambda / 2.0;
    EXPECT_NEAR(refine_range(coarse, phase, carrier), true_d, 1e-9);
  }
}

TEST(TagArray, TrilaterationRecoversPosition) {
  const std::vector<Point3D> antennas{
      {0.0, 0.0, 2.5}, {4.0, 0.0, 2.5}, {0.0, 4.0, 2.5}, {4.0, 4.0, 2.5}};
  const Point3D truth{1.5, 2.2, 0.9};
  std::vector<double> ranges;
  for (const auto& a : antennas) ranges.push_back(distance(a, truth));
  const Point3D est = trilaterate(antennas, ranges);
  EXPECT_NEAR(distance(est, truth), 0.0, 0.05);
}

TEST(TagArray, SkeletonReconstructionAccurate) {
  TagArrayConfig cfg;
  cfg.phase_noise_rad = 0.05;
  Rng rng(3);
  // Render a known subject and reconstruct it.
  const auto r = read_tags(cfg, Posture::Standing, rng);
  const auto joints = reconstruct_skeleton(cfg, r);
  ASSERT_EQ(joints.size(), static_cast<std::size_t>(kNumJoints));
  // Head must be clearly above the ankle in a standing reconstruction.
  EXPECT_GT(joints[static_cast<int>(Joint::Head)].z,
            joints[static_cast<int>(Joint::LeftAnkle)].z + 0.8);
}

TEST(TagArray, FeaturesDiscriminateStandingFromLying) {
  TagArrayConfig cfg;
  Rng rng(4);
  const auto fs = skeleton_features(reconstruct_skeleton(
      cfg, read_tags(cfg, Posture::Standing, rng)));
  const auto fl = skeleton_features(reconstruct_skeleton(
      cfg, read_tags(cfg, Posture::Lying, rng)));
  // Torso verticality collapses when lying.
  EXPECT_GT(fs[0], fl[0] + 0.3);
  // Vertical extent collapses too.
  EXPECT_GT(fs[1], fl[1] + 0.5);
}

TEST(TagArray, PostureRecognizerAccuracy) {
  TagArrayConfig cfg;
  PostureRecognizer rec(cfg);
  Rng rng(5);
  rec.train(40, rng);
  const auto cm = rec.evaluate(25, rng);
  EXPECT_GT(cm.accuracy(), 0.9);
}

TEST(TagArray, RecognizerRequiresTraining) {
  TagArrayConfig cfg;
  PostureRecognizer rec(cfg);
  Rng rng(6);
  const auto r = read_tags(cfg, Posture::Standing, rng);
  EXPECT_THROW(rec.classify(r), Error);
}

// ------------------------------------------------------------- trajectory --

TEST(Trajectory, UnwrapRecoversMonotonePhase) {
  // A steadily increasing true phase wrapped into [0, 2pi).
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) {
    wrapped.push_back(std::fmod(0.4 * i, 2.0 * M_PI));
  }
  const auto u = unwrap_phase(wrapped);
  for (int i = 1; i < 100; ++i) {
    EXPECT_NEAR(u[static_cast<std::size_t>(i)] -
                    u[static_cast<std::size_t>(i - 1)],
                0.4, 1e-9);
  }
}

TEST(Trajectory, RadialVelocityOfRecedingTag) {
  TrajectoryConfig cfg;
  cfg.phase_noise_rad = 0.02;
  Rng rng(7);
  // Straight-line recession from antenna A along +x.
  const auto track = simulate_track(cfg, {1.0, 0.0}, {0.8, 0.0}, 3.0, rng);
  const auto v = radial_velocity(cfg, track.t_s, track.phase_a_rad);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 0.8, 0.1);
}

TEST(Trajectory, ApproachingTagHasNegativeRadialVelocity) {
  TrajectoryConfig cfg;
  cfg.phase_noise_rad = 0.02;
  Rng rng(8);
  const auto track = simulate_track(cfg, {5.0, 0.0}, {-0.6, 0.0}, 3.0, rng);
  const auto v = radial_velocity(cfg, track.t_s, track.phase_b_rad);
  ASSERT_TRUE(v.has_value());
  EXPECT_LT(*v, -0.4);
}

TEST(Trajectory, DetectsInwardCrossing) {
  TrajectoryConfig cfg;
  Rng rng(9);
  const auto track = simulate_track(cfg, {-3.0, 0.3}, {1.2, 0.0}, 5.0, rng);
  const auto ev = detect_crossing(cfg, track);
  EXPECT_EQ(ev.direction, CrossingDirection::Inward);
  EXPECT_NEAR(ev.speed_mps, 1.2, 0.3);
}

TEST(Trajectory, DetectsOutwardCrossing) {
  TrajectoryConfig cfg;
  Rng rng(10);
  const auto track = simulate_track(cfg, {3.0, -0.3}, {-0.9, 0.0}, 7.0, rng);
  const auto ev = detect_crossing(cfg, track);
  EXPECT_EQ(ev.direction, CrossingDirection::Outward);
  EXPECT_NEAR(ev.speed_mps, 0.9, 0.25);
}

TEST(Trajectory, NoCrossingWhenTagStaysOutside) {
  TrajectoryConfig cfg;
  Rng rng(11);
  // Parallel to the boundary, far away: never crosses.
  const auto track = simulate_track(cfg, {-5.0, 3.0}, {0.0, 0.5}, 5.0, rng);
  const auto ev = detect_crossing(cfg, track);
  EXPECT_EQ(ev.direction, CrossingDirection::None);
}

TEST(Trajectory, MissedReadsBeyondRange) {
  TrajectoryConfig cfg;
  cfg.read_range_m = 2.0;
  Rng rng(12);
  const auto track = simulate_track(cfg, {10.0, 0.0}, {0.1, 0.0}, 2.0, rng);
  for (double ph : track.phase_a_rad) EXPECT_TRUE(std::isnan(ph));
}

// -------------------------------------------------------------- sociogram --

TEST(Sociogram, WeightAccumulation) {
  Sociogram g(3);
  // Children 0 and 1 overlap 30 s in zone 5; child 2 elsewhere.
  g.accumulate({{0, 5, 0.0, 60.0}, {1, 5, 30.0, 90.0}, {2, 7, 0.0, 90.0}});
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(g.weight(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.weight(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.total_copresence(0), 30.0);
}

TEST(Sociogram, SameZoneDifferentTimesDoNotCount) {
  Sociogram g(2);
  g.accumulate({{0, 1, 0.0, 10.0}, {1, 1, 20.0, 30.0}});
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.0);
}

TEST(Sociogram, RejectsBadInput) {
  EXPECT_THROW(Sociogram(1), Error);
  Sociogram g(2);
  EXPECT_THROW(g.weight(0, 0), Error);
  EXPECT_THROW(g.accumulate({{5, 1, 0.0, 1.0}}), Error);
}

TEST(Sociogram, CommunitiesRecoverPlantedGroups) {
  PlaygroundConfig cfg;
  cfg.loners = 0;
  const auto truth = simulate_playground(cfg);
  Sociogram g(cfg.num_children);
  g.accumulate(truth.sightings);
  Rng rng(13);
  const auto detected = g.communities(rng);
  EXPECT_GT(rand_index(detected, truth.group_of_child), 0.85);
}

TEST(Sociogram, IsolatedChildrenSurface) {
  PlaygroundConfig cfg;
  cfg.loners = 2;
  cfg.cohesion = 0.95;
  const auto truth = simulate_playground(cfg);
  Sociogram g(cfg.num_children);
  g.accumulate(truth.sightings);
  const auto iso = g.isolated(0.5);
  // The loners (the last `loners` ids) should dominate the isolated list.
  std::size_t loners_found = 0;
  for (ChildId c : iso) {
    if (c >= cfg.num_children - cfg.loners) ++loners_found;
  }
  EXPECT_GE(loners_found, 1u);
}

TEST(Sociogram, RandIndexProperties) {
  const std::vector<int> a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
  const std::vector<int> b{1, 1, 0, 0};  // same partition, renamed
  EXPECT_DOUBLE_EQ(rand_index(a, b), 1.0);
  const std::vector<int> c{0, 1, 0, 1};
  EXPECT_LT(rand_index(a, c), 1.0);
}

TEST(Sociogram, PlaygroundGeneratorShapes) {
  PlaygroundConfig cfg;
  const auto truth = simulate_playground(cfg);
  EXPECT_EQ(truth.group_of_child.size(), cfg.num_children);
  EXPECT_FALSE(truth.sightings.empty());
  for (const auto& s : truth.sightings) {
    EXPECT_LT(s.child, cfg.num_children);
    EXPECT_LT(s.zone, cfg.num_zones);
    EXPECT_LE(s.start_s, s.end_s);
    EXPECT_LE(s.end_s, cfg.day_length_s + 1e-9);
  }
}

}  // namespace
}  // namespace zeiot::sensing::rfid
