// Seed-sweep smoke test: every bench_e* binary must run end-to-end in
// --smoke mode across three seeds and emit a well-formed metrics report
// conforming to the `zeiot.obs.v2` schema.  This is the cheapest guard
// against a bench that compiles but crashes mid-run (bad smoke knobs, a
// config invariant tripped only at reduced scale) or that silently stops
// writing its report.
//
// The binaries are located via ZEIOT_BENCH_BIN_DIR (a compile definition
// pointing at the bench output directory); each run gets a private
// ZEIOT_METRICS_DIR so concurrent ctest jobs cannot clobber each other.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- Minimal JSON well-formedness checker --------------------------------
// Recursive descent over the full grammar (objects, arrays, strings with
// escapes, numbers, true/false/null).  Returns false instead of throwing so
// a malformed report fails the EXPECT with the offending file name.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[pos_ - 1])) != 0;
  }

  bool literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs `<bench> --smoke --seed <seed>` for seeds 1..3, each into a private
/// metrics dir, and validates every emitted report.  `required_series` must
/// all appear (as quoted JSON names) in each report.
void run_seed_sweep(const std::string& bench,
                    const std::vector<std::string>& required_series) {
  const std::string bin = std::string(ZEIOT_BENCH_BIN_DIR) + "/" + bench;
  for (int seed = 1; seed <= 3; ++seed) {
    std::string dir = ::testing::TempDir() + bench + "_seed" +
                      std::to_string(seed) + "_XXXXXX";
    ASSERT_NE(::mkdtemp(dir.data()), nullptr) << dir;
    const std::string cmd = "ZEIOT_METRICS_DIR=" + dir + " " + bin +
                            " --smoke --seed " + std::to_string(seed) +
                            " > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << bench << " --smoke --seed " << seed
                     << " exited with " << rc;
    const std::string report = dir + "/" + bench + ".metrics.json";
    const std::string text = slurp(report);
    ASSERT_FALSE(text.empty()) << "no report at " << report;
    EXPECT_TRUE(JsonChecker(text).valid())
        << report << " is not well-formed JSON";
    EXPECT_NE(text.find("\"schema\":\"zeiot.obs.v2\""), std::string::npos)
        << report << " does not declare schema zeiot.obs.v2";
    for (const std::string& series : required_series) {
      EXPECT_NE(text.find("\"" + series + "\""), std::string::npos)
          << report << " is missing series " << series;
    }
    std::remove(report.c_str());
    // Span-enabled benches also write the sibling exports.
    std::remove((dir + "/" + bench + ".spans.jsonl").c_str());
    std::remove((dir + "/" + bench + ".trace.json").c_str());
    ::rmdir(dir.c_str());
  }
}

// The two MicroDeep benches must additionally carry the network-in-the-loop
// rows (the netexec.* gauges are part of the report contract).
TEST(BenchSmoke, E1TemperatureSeedSweep) {
  run_seed_sweep("bench_e1_microdeep_temperature",
                 {"netexec.accuracy", "netexec.p50_latency_s",
                  "netexec.p99_latency_s", "netexec.energy_per_inference_j"});
}

TEST(BenchSmoke, E2FallSeedSweep) {
  run_seed_sweep("bench_e2_fall_commcost",
                 {"netexec.accuracy", "netexec.p50_latency_s",
                  "netexec.p99_latency_s", "netexec.energy_per_inference_j"});
}

TEST(BenchSmoke, E3TrainSeedSweep) {
  run_seed_sweep("bench_e3_train_congestion", {});
}

TEST(BenchSmoke, E4RoomSeedSweep) {
  run_seed_sweep("bench_e4_room_count", {});
}

TEST(BenchSmoke, E5CsiSeedSweep) {
  run_seed_sweep("bench_e5_csi_localization", {});
}

TEST(BenchSmoke, E6BackscatterSeedSweep) {
  run_seed_sweep("bench_e6_backscatter_mac", {});
}

TEST(BenchSmoke, E7EnergySeedSweep) {
  run_seed_sweep("bench_e7_energy_budget", {});
}

// The fleet bench must report the fleet aggregates plus the headline
// devices/wall-second throughput gauge (perf.a8.fleet.items_per_s).
TEST(BenchSmoke, A8FleetSeedSweep) {
  run_seed_sweep("bench_a8_fleet",
                 {"fleet.deployments", "fleet.devices", "fleet.accuracy",
                  "fleet.e6.delivery_ratio", "perf.a8.fleet.wall_s",
                  "perf.a8.fleet.items_per_s"});
}

// The serving bench must report the request accounting, the plan-cache
// hit rate, and the headline requests/wall-second throughput gauge
// (perf.a9.serve.items_per_s).
TEST(BenchSmoke, A9ServeSeedSweep) {
  run_seed_sweep("bench_a9_serve",
                 {"serve.offered", "serve.served", "serve.shed",
                  "serve.rejected", "serve.plan_cache.hit_rate",
                  "perf.a9.serve.wall_s", "perf.a9.serve.items_per_s"});
}

}  // namespace
