// Conformance suite of the zeiot::serve front-end.
//
// The load-bearing contracts:
//  * accounting — served + shed + rejected == offered on every workload,
//    and the queue never exceeds its bound (the admission-control
//    properties of the ISSUE);
//  * determinism — the full response stream (ServeReport::digest()) is
//    bit-identical across reruns and across worker counts (1 vs 4);
//  * plan-cache safety — a cached unit-assignment plan rebound to a
//    topology REBUILT from the same seed/parameters reproduces the fresh
//    search bit-for-bit (no dangling node-index assumptions), and the LRU
//    hit/miss/eviction bookkeeping is exact;
//  * spans — every ServeRequest root is tiled exactly by its ServeQueue +
//    ServeService children (the netexec phase-tiling convention).
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "microdeep/comm_cost.hpp"
#include "microdeep/search.hpp"
#include "par/thread_pool.hpp"
#include "serve/workload.hpp"

namespace zeiot::serve {
namespace {

/// Shared route set: built once per test binary (training the five
/// pipelines dominates suite runtime otherwise).  Sized down from the
/// serving defaults but structurally complete — every route has a pool,
/// the CNN routes have two deployments each.
RouteSet& shared_routes() {
  static std::unique_ptr<RouteSet> routes = [] {
    RouteSetConfig cfg;
    cfg.e1_variants = 2;
    cfg.e2_variants = 2;
    cfg.e3_train_trips_per_level = 6;
    cfg.e3_scenarios = 8;
    cfg.e4_train_rounds_per_count = 6;
    cfg.e4_measurements = 16;
    cfg.e5_frames_per_position = 4;
    return make_routes(cfg);
  }();
  return *routes;
}

/// Server config with a minimal plan search (nearest + one heuristic):
/// cache misses stay cheap so suites can afford many of them.
ServeConfig test_config(obs::Observability* obs = nullptr) {
  ServeConfig cfg;
  cfg.search.include_nearest = true;
  cfg.search.max_balance_slack = 0;
  cfg.search.random_restarts = 0;
  cfg.obs = obs;
  return cfg;
}

WorkloadConfig test_workload(std::size_t n = 600) {
  WorkloadConfig w;
  w.num_requests = n;
  w.mean_rate_per_s = 120000.0;
  return w;
}

TEST(TopologyDigest, StableAcrossRebuildDistinctAcrossSeeds) {
  const Rect area{0.0, 0.0, 10.0, 10.0};
  Rng a(77);
  Rng b(77);
  Rng c(78);
  const auto t1 = microdeep::WsnTopology::jittered_grid(area, 4, 4, a);
  const auto t2 = microdeep::WsnTopology::jittered_grid(area, 4, 4, b);
  const auto t3 = microdeep::WsnTopology::jittered_grid(area, 4, 4, c);
  EXPECT_EQ(t1.digest(), t2.digest());
  EXPECT_NE(t1.digest(), t3.digest());
  // Structural inputs are digested too, not just positions.
  const auto g1 = microdeep::WsnTopology::grid(area, 4, 4);
  const auto g2 = microdeep::WsnTopology::grid(Rect{0.0, 0.0, 10.0, 12.0}, 4, 4);
  EXPECT_NE(g1.digest(), g2.digest());
}

TEST(PlanCacheLru, HitMissEvictExactBookkeeping) {
  PlanCache cache(2);
  const auto build = [](std::uint64_t key) {
    return [key] {
      CachedPlan p;
      p.topology_digest = key;
      p.max_cost = static_cast<double>(key);
      return p;
    };
  };
  EXPECT_FALSE(cache.ensure(1, build(1)).hit);
  EXPECT_FALSE(cache.ensure(2, build(2)).hit);
  EXPECT_TRUE(cache.ensure(1, build(1)).hit);   // 1 now MRU
  EXPECT_FALSE(cache.ensure(3, build(3)).hit);  // evicts 2 (LRU)
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.25);
}

ml::Network rebind_cnn(std::uint64_t seed) {
  Rng rng(seed);
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 3 * 3, 4, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(4, 2, rng);
  return net;
}

// Satellite 3 of the ISSUE: a cached plan must be independent of the
// objects the search ran against.  Search against one topology/graph, let
// BOTH die, rebuild structurally identical ones from the same seeds, bind
// the cached map — and get the fresh search result bit for bit.
TEST(PlanCacheSafety, CachedPlanRebindsToRebuiltTopologyBitwise) {
  const Rect area{0.0, 0.0, 10.0, 10.0};
  const std::vector<int> shape{1, 6, 6};
  microdeep::AssignmentSearchOptions opts;
  opts.random_restarts = 2;

  CachedPlan plan;
  {
    const ml::Network net1 = rebind_cnn(11);
    const auto graph1 = microdeep::UnitGraph::build(net1, shape);
    Rng trng(77);
    const auto topo1 = microdeep::WsnTopology::jittered_grid(area, 4, 4, trng);
    const auto s1 = microdeep::search_assignment(graph1, topo1, opts);
    plan.topology_digest = topo1.digest();
    plan.unit_to_node = s1.best.unit_map();
    plan.max_cost = s1.best_max_cost;
    plan.mean_cost = s1.best_mean_cost;
    plan.candidates = s1.candidates.size();
  }  // search-time network, graph and topology destroyed here

  const ml::Network net2 = rebind_cnn(11);
  const auto graph2 = microdeep::UnitGraph::build(net2, shape);
  Rng trng(77);
  const auto topo2 = microdeep::WsnTopology::jittered_grid(area, 4, 4, trng);
  ASSERT_EQ(topo2.digest(), plan.topology_digest);

  const microdeep::Assignment bound = plan.bind(graph2);
  const auto s2 = microdeep::search_assignment(graph2, topo2, opts);
  EXPECT_EQ(bound.unit_map(), s2.best.unit_map());

  // Re-scoring the bound plan on the rebuilt topology reproduces the
  // cached scores exactly (EXPECT_EQ on doubles = bitwise here).
  const auto cost =
      microdeep::compute_comm_cost(bound, topo2, opts.cost_options);
  EXPECT_EQ(cost.max_cost, plan.max_cost);
  EXPECT_EQ(cost.mean_cost, plan.mean_cost);
  EXPECT_EQ(s2.best_max_cost, plan.max_cost);
  EXPECT_EQ(s2.candidates.size(), plan.candidates);
}

TEST(Workload, SortedDenseAndInBounds) {
  RouteSet& routes = shared_routes();
  const auto reqs = generate_workload(test_workload(800), routes);
  ASSERT_EQ(reqs.size(), 800u);
  double prev = 0.0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, i);
    EXPECT_GE(reqs[i].arrival_s, prev);
    prev = reqs[i].arrival_s;
    EXPECT_LT(reqs[i].sample, routes.pool_size(reqs[i].route));
    EXPECT_LT(reqs[i].variant, routes.num_variants(reqs[i].route));
  }
}

// Property: every offered request gets exactly one typed outcome, the
// totals conserve, and the queue never exceeds its bound — across a sweep
// of admission rates and queue bounds that force all three outcomes.
TEST(Admission, ShedServedRejectedConserveAndQueueBounded) {
  RouteSet& routes = shared_routes();
  const auto reqs = generate_workload(test_workload(900), routes);
  bool saw_shed = false;
  bool saw_rejected = false;
  for (const double rate : {30000.0, 90000.0, 1e9}) {
    for (const std::size_t qcap : {std::size_t{16}, std::size_t{4096}}) {
      ServeConfig cfg = test_config();
      cfg.admission_rate_per_s = rate;
      cfg.admission_burst = 32.0;
      cfg.queue_capacity = qcap;
      Server server(&routes, cfg);
      const ServeReport rep = server.run(reqs);
      EXPECT_EQ(rep.offered, reqs.size());
      EXPECT_EQ(rep.served + rep.shed + rep.rejected, rep.offered);
      EXPECT_LE(rep.peak_queue_depth, qcap);
      std::uint64_t served = 0, shed = 0, rejected = 0;
      for (const Response& r : rep.responses) {
        switch (r.outcome) {
          case Outcome::Served:
            ++served;
            EXPECT_GE(r.label, 0);
            EXPECT_GT(r.latency_s, 0.0);
            break;
          case Outcome::Shed:
            ++shed;
            EXPECT_EQ(r.latency_s, 0.0);
            break;
          case Outcome::Rejected:
            ++rejected;
            EXPECT_EQ(r.latency_s, 0.0);
            break;
        }
      }
      EXPECT_EQ(served, rep.served);
      EXPECT_EQ(shed, rep.shed);
      EXPECT_EQ(rejected, rep.rejected);
      saw_shed = saw_shed || rep.shed > 0;
      saw_rejected = saw_rejected || rep.rejected > 0;
    }
  }
  // The sweep must actually exercise both refusal paths.
  EXPECT_TRUE(saw_shed);
  EXPECT_TRUE(saw_rejected);
}

// The determinism acceptance of the ISSUE: bit-identical serve results at
// 1 vs 4 workers and across reruns, pinned through the report digest.
TEST(Determinism, ReportDigestIdenticalAcrossThreadCountsAndReruns) {
  RouteSet& routes = shared_routes();
  const auto reqs = generate_workload(test_workload(500), routes);
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const ServeConfig cfg = test_config();

  routes.set_pool(&one);
  const std::uint64_t d1 = Server(&routes, cfg).run(reqs).digest();
  const std::uint64_t d1_rerun = Server(&routes, cfg).run(reqs).digest();
  routes.set_pool(&four);
  const std::uint64_t d4 = Server(&routes, cfg).run(reqs).digest();
  routes.set_pool(nullptr);

  EXPECT_EQ(d1, d1_rerun);
  EXPECT_EQ(d1, d4);

  // Different workload => different stream (digest is not degenerate).
  WorkloadConfig other = test_workload(500);
  other.seed = 8;
  const auto reqs2 = generate_workload(other, routes);
  EXPECT_NE(d1, Server(&routes, cfg).run(reqs2).digest());
}

TEST(PlanCacheServing, HitsMissesAndEvictionsUnderLru) {
  RouteSet& routes = shared_routes();
  // CNN-only traffic so every batch resolves a plan.
  WorkloadConfig w = test_workload(200);
  w.route_mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  const auto reqs = generate_workload(w, routes);

  {
    // Capacity covers both E1 deployments: exactly one miss per variant,
    // everything else hits.
    ServeConfig cfg = test_config();
    cfg.plan_cache_capacity = 8;
    const ServeReport rep = Server(&routes, cfg).run(reqs);
    EXPECT_EQ(rep.plan_misses, routes.num_variants(Route::E1Temperature));
    EXPECT_EQ(rep.plan_evictions, 0u);
    EXPECT_EQ(rep.plan_hits + rep.plan_misses, rep.batches);
    EXPECT_GT(rep.plan_hits, 0u);
  }
  {
    // Capacity 1 with two alternating deployments: every variant switch
    // evicts and re-searches.
    ServeConfig cfg = test_config();
    cfg.plan_cache_capacity = 1;
    const ServeReport rep = Server(&routes, cfg).run(reqs);
    EXPECT_GT(rep.plan_evictions, 0u);
    EXPECT_EQ(rep.plan_misses, rep.plan_evictions + 1);
    EXPECT_EQ(rep.plan_hits + rep.plan_misses, rep.batches);
  }
}

TEST(ServiceModel, UncontendedLatencyMatchesRouteParams) {
  RouteSet& routes = shared_routes();
  // Evenly spaced single-route traffic with gaps far above the service
  // time: no queueing, every batch is one request.
  std::vector<Request> reqs;
  for (std::uint64_t i = 0; i < 40; ++i) {
    Request r;
    r.id = i;
    r.route = Route::E4RoomCount;
    r.arrival_s = static_cast<double>(i) * 1e-3;
    r.sample = static_cast<std::uint32_t>(
        i % routes.pool_size(Route::E4RoomCount));
    reqs.push_back(r);
  }
  const ServeConfig cfg = test_config();
  const ServeReport rep = Server(&routes, cfg).run(reqs);
  const RouteParams& p = cfg.routes[static_cast<std::size_t>(Route::E4RoomCount)];
  ASSERT_EQ(rep.served, rep.offered);
  for (const Response& r : rep.responses) {
    // (arrival + service) - arrival: equal up to rounding of the virtual
    // clock addition, whose ulp is set by the arrival magnitude.
    EXPECT_NEAR(r.latency_s, p.batch_overhead_s + p.per_item_s, 1e-12);
  }
}

TEST(Batching, SaturatedEngineCoalescesUpToMaxBatch) {
  RouteSet& routes = shared_routes();
  WorkloadConfig w = test_workload(600);
  w.mean_rate_per_s = 5e6;  // far beyond the virtual service capacity
  w.route_mix = {0.0, 0.0, 0.0, 1.0, 0.0};
  const auto reqs = generate_workload(w, routes);
  ServeConfig cfg = test_config();
  cfg.admission_rate_per_s = 1e12;  // isolate the batcher from policing
  cfg.admission_burst = 1e12;
  const ServeReport rep = Server(&routes, cfg).run(reqs);
  ASSERT_EQ(rep.served, rep.offered);
  const std::size_t max_batch =
      cfg.routes[static_cast<std::size_t>(Route::E4RoomCount)].max_batch;
  std::size_t largest = 0;
  std::vector<std::size_t> batch_sizes;
  for (const Response& r : rep.responses) {
    if (batch_sizes.size() <= r.batch_seq) batch_sizes.resize(r.batch_seq + 1);
    ++batch_sizes[r.batch_seq];
  }
  for (const std::size_t s : batch_sizes) {
    EXPECT_LE(s, max_batch);
    largest = std::max(largest, s);
  }
  EXPECT_GT(largest, 1u);  // saturation must actually coalesce
  EXPECT_LT(rep.batches, rep.served);
}

TEST(Spans, QueueAndServiceTileEveryRequestRoot) {
  RouteSet& routes = shared_routes();
  obs::Observability obs;
  obs.enable_spans(1 << 14);
  const auto reqs = generate_workload(test_workload(300), routes);
  const ServeReport rep = Server(&routes, test_config(&obs)).run(reqs);

  const auto& sp = obs.spans();
  EXPECT_EQ(sp.dropped(), 0u);
  EXPECT_EQ(sp.root_count(), rep.served);
  std::size_t roots = 0;
  for (std::size_t i = 0; i < sp.size(); ++i) {
    const obs::SpanEvent& s = sp.at(i);
    if (s.kind != obs::SpanKind::ServeRequest) continue;
    ++roots;
    // Children are recorded immediately after their root: queue then
    // service, tiling [t0, t1] exactly.
    ASSERT_LT(i + 2, sp.size());
    const obs::SpanEvent& queue = sp.at(i + 1);
    const obs::SpanEvent& service = sp.at(i + 2);
    ASSERT_EQ(queue.kind, obs::SpanKind::ServeQueue);
    ASSERT_EQ(service.kind, obs::SpanKind::ServeService);
    EXPECT_EQ(queue.parent, s.id);
    EXPECT_EQ(service.parent, s.id);
    EXPECT_EQ(queue.trace_id, s.trace_id);
    EXPECT_EQ(queue.t0, s.t0);
    EXPECT_EQ(queue.t1, service.t0);
    EXPECT_EQ(service.t1, s.t1);
    EXPECT_EQ(s.value, s.t1 - s.t0);
  }
  EXPECT_EQ(roots, rep.served);
}

TEST(Metrics, ServeCountersAndSloGaugesMatchReport) {
  RouteSet& routes = shared_routes();
  obs::Observability obs;
  const auto reqs = generate_workload(test_workload(500), routes);
  ServeConfig cfg = test_config(&obs);
  cfg.admission_rate_per_s = 60000.0;  // force some shed
  const ServeReport rep = Server(&routes, cfg).run(reqs);

  const auto& m = obs.metrics();
  EXPECT_EQ(m.counter_value("serve.offered"), static_cast<double>(rep.offered));
  EXPECT_EQ(m.counter_value("serve.served"), static_cast<double>(rep.served));
  EXPECT_EQ(m.counter_value("serve.shed"), static_cast<double>(rep.shed));
  EXPECT_EQ(m.counter_value("serve.rejected"),
            static_cast<double>(rep.rejected));
  EXPECT_EQ(m.counter_value("serve.batches"), static_cast<double>(rep.batches));
  EXPECT_EQ(m.counter_value("serve.plan_cache.hits"),
            static_cast<double>(rep.plan_hits));
  EXPECT_EQ(m.counter_value("serve.plan_cache.misses"),
            static_cast<double>(rep.plan_misses));
  const double hit_rate = m.gauge_value("serve.plan_cache.hit_rate");
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  // Per-route accounting sums to the totals.
  double offered_by_route = 0.0;
  for (std::size_t r = 0; r < kNumRoutes; ++r) {
    const obs::Labels labels{{"route", route_name(static_cast<Route>(r))}};
    offered_by_route += m.counter_value("serve.offered", labels);
  }
  EXPECT_EQ(offered_by_route, static_cast<double>(rep.offered));
  // SLO gauges mirror the report's nearest-rank quantiles.
  EXPECT_EQ(m.gauge_value("serve.slo.e4_room_count.p99_s"),
            rep.latency_quantile(Route::E4RoomCount, 0.99));
  EXPECT_EQ(m.gauge_value("serve.slo.e4_room_count.p50_s"),
            rep.latency_quantile(Route::E4RoomCount, 0.50));
}

}  // namespace
}  // namespace zeiot::serve
