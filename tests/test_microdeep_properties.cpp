// Property sweeps over the MicroDeep machinery: invariants that must hold
// for every combination of deployment style and assignment strategy.
#include <gtest/gtest.h>

#include <set>

#include "microdeep/comm_cost.hpp"
#include "microdeep/executor.hpp"

namespace zeiot::microdeep {
namespace {

const Rect kArea{0.0, 0.0, 12.0, 12.0};

enum class Deploy { Grid, Jittered, Random };
enum class Assign { Centralized, Nearest, Heuristic };

struct Combo {
  Deploy deploy;
  Assign assign;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s;
  switch (info.param.deploy) {
    case Deploy::Grid: s = "Grid"; break;
    case Deploy::Jittered: s = "Jittered"; break;
    case Deploy::Random: s = "Random"; break;
  }
  switch (info.param.assign) {
    case Assign::Centralized: s += "Centralized"; break;
    case Assign::Nearest: s += "Nearest"; break;
    case Assign::Heuristic: s += "Heuristic"; break;
  }
  return s;
}

WsnTopology make_wsn(Deploy d) {
  Rng rng(77);
  switch (d) {
    case Deploy::Grid: return WsnTopology::grid(kArea, 4, 4);
    case Deploy::Jittered:
      return WsnTopology::jittered_grid(kArea, 4, 4, rng);
    case Deploy::Random:
      return WsnTopology::random_uniform(kArea, 16, rng);
  }
  throw Error("unreachable");
}

ml::Network make_net(Rng& rng) {
  ml::Network net;
  net.emplace<ml::Conv2D>(2, 3, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(3 * 4 * 4, 5, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(5, 2, rng);
  return net;
}

Assignment make_assignment(Assign a, const UnitGraph& g,
                           const WsnTopology& wsn) {
  switch (a) {
    case Assign::Centralized:
      return assign_centralized(g, wsn,
                                static_cast<NodeId>(wsn.num_nodes() / 2));
    case Assign::Nearest: return assign_nearest(g, wsn);
    case Assign::Heuristic: return assign_balanced_heuristic(g, wsn);
  }
  throw Error("unreachable");
}

class MicroDeepPropertyTest : public ::testing::TestWithParam<Combo> {
 protected:
  MicroDeepPropertyTest()
      : wsn_(make_wsn(GetParam().deploy)),
        rng_(5),
        net_(make_net(rng_)),
        graph_(UnitGraph::build(net_, {2, 8, 8})),
        assignment_(make_assignment(GetParam().assign, graph_, wsn_)) {}

  WsnTopology wsn_;
  Rng rng_;
  ml::Network net_;
  UnitGraph graph_;
  Assignment assignment_;
};

TEST_P(MicroDeepPropertyTest, EveryUnitOnAValidNode) {
  for (UnitId u = 0; u < graph_.num_units(); ++u) {
    EXPECT_LT(assignment_.node_of(u), wsn_.num_nodes());
  }
  const auto counts = assignment_.units_per_node(wsn_.num_nodes());
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, graph_.num_units());
}

TEST_P(MicroDeepPropertyTest, CostAccountingBalances) {
  const auto r = compute_comm_cost(assignment_, wsn_);
  double sum = 0.0;
  for (double c : r.per_node) sum += c;
  // Every hop transmission charges exactly one tx and one rx.
  EXPECT_NEAR(sum, 2.0 * r.total_hop_transmissions, 1e-9);
  EXPECT_GE(r.max_cost, r.mean_cost);
  EXPECT_EQ(r.per_node.size(), wsn_.num_nodes());
}

TEST_P(MicroDeepPropertyTest, MessageCountIsRoutingIndependent) {
  CommCostOptions multi;
  multi.multihop = true;
  multi.aggregate_dense = false;
  CommCostOptions single = multi;
  single.multihop = false;
  const auto rm = compute_comm_cost(assignment_, wsn_, multi);
  const auto rs = compute_comm_cost(assignment_, wsn_, single);
  EXPECT_DOUBLE_EQ(rm.total_messages, rs.total_messages);
  EXPECT_GE(rm.total_hop_transmissions, rs.total_hop_transmissions);
}

TEST_P(MicroDeepPropertyTest, DenseAggregationNeverIncreasesTraffic) {
  CommCostOptions agg;
  agg.aggregate_dense = true;
  CommCostOptions raw;
  raw.aggregate_dense = false;
  const auto ra = compute_comm_cost(assignment_, wsn_, agg);
  const auto rr = compute_comm_cost(assignment_, wsn_, raw);
  EXPECT_LE(ra.total_hop_transmissions, rr.total_hop_transmissions + 1e-9);
}

TEST_P(MicroDeepPropertyTest, CrossFractionWithinBounds) {
  const double f = assignment_.cross_edge_fraction();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  for (std::size_t l = 1; l < graph_.layers().size(); ++l) {
    const double fl = assignment_.cross_edge_fraction_into_layer(l);
    EXPECT_GE(fl, 0.0);
    EXPECT_LE(fl, 1.0);
  }
}

TEST_P(MicroDeepPropertyTest, ExecutorMatchesNetworkForward) {
  Rng srng(31);
  ml::Tensor sample({2, 8, 8});
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<float>(srng.uniform(-1.0, 1.0));
  }
  const ml::Tensor expected =
      net_.forward(sample.reshape({1, 2, 8, 8}), false);
  const auto result =
      execute_distributed(net_, graph_, assignment_, wsn_, sample);
  ASSERT_EQ(result.output.shape(), expected.shape());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(result.output[i], expected[i], 1e-3);
  }
  EXPECT_GE(result.inference_latency_s, 0.0);
}

TEST_P(MicroDeepPropertyTest, FailureMigrationPreservesUnitCount) {
  Assignment migrated = assignment_;
  std::vector<bool> dead(wsn_.num_nodes(), false);
  dead[0] = dead[wsn_.num_nodes() - 1] = true;
  migrated.reassign_dead_nodes(wsn_, dead);
  const auto counts = migrated.units_per_node(wsn_.num_nodes());
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[wsn_.num_nodes() - 1], 0u);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, graph_.num_units());
  // The migrated assignment still routes.
  const auto r = compute_comm_cost(migrated, wsn_);
  EXPECT_GE(r.total_messages, 0.0);
}

// --- Randomized layouts + CNN shapes -------------------------------------
// Property sweep over seeded random deployments and network shapes: the
// assignment invariants must hold for *every* draw, not just the fixtures
// above.  Failures print the seed, which reproduces the exact case.

struct RandomScenario {
  WsnTopology wsn;
  ml::Network net;
  UnitGraph graph;
  std::vector<int> input_shape;
};

RandomScenario make_random_scenario(std::uint64_t seed) {
  // Drawn from the paper's sensing regime: a *planned* (jittered-grid)
  // sensor field — the lounge deployment is instrumented, not scattered —
  // feeding a sizable input plane, where delivering raw readings to one
  // sink is the dominant traffic term (Sec. III / Fig. 10).
  Rng rng(seed);
  const int grid = 10 + 2 * static_cast<int>(rng.uniform_int(0, 2));  // 10/12/14
  const int in_ch = 1 + static_cast<int>(rng.uniform_int(0, 1));
  const int conv_ch = 2 + static_cast<int>(rng.uniform_int(0, 1));
  const int hidden = 4 + static_cast<int>(rng.uniform_int(0, 4));
  const int classes = 2 + static_cast<int>(rng.uniform_int(0, 1));
  const int rows = 5 + static_cast<int>(rng.uniform_int(0, 3));
  const int cols = 5 + static_cast<int>(rng.uniform_int(0, 3));

  ml::Network net;
  net.emplace<ml::Conv2D>(in_ch, conv_ch, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(conv_ch * (grid / 2) * (grid / 2), hidden, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(hidden, classes, rng);

  WsnTopology wsn = WsnTopology::jittered_grid(kArea, rows, cols, rng);
  UnitGraph graph = UnitGraph::build(net, {in_ch, grid, grid});
  return {std::move(wsn), std::move(net), std::move(graph),
          {in_ch, grid, grid}};
}

constexpr std::uint64_t kRandomSeeds[] = {101, 202, 303, 404, 505,
                                          606, 707, 808};

TEST(AssignmentRandomized, EveryUnitAssignedExactlyOnce) {
  for (const std::uint64_t seed : kRandomSeeds) {
    const auto sc = make_random_scenario(seed);
    for (const Assignment& a :
         {assign_nearest(sc.graph, sc.wsn),
          assign_balanced_heuristic(sc.graph, sc.wsn),
          assign_centralized(sc.graph, sc.wsn, 0)}) {
      std::size_t total = 0;
      for (const std::size_t c : a.units_per_node(sc.wsn.num_nodes())) {
        total += c;
      }
      EXPECT_EQ(total, sc.graph.num_units()) << "seed " << seed;
      for (UnitId u = 0; u < sc.graph.num_units(); ++u) {
        ASSERT_LT(a.node_of(u), sc.wsn.num_nodes())
            << "seed " << seed << " unit " << u;
      }
    }
  }
}

TEST(AssignmentRandomized, HeuristicPeakCostNeverExceedsNaiveSink) {
  // The balanced heuristic exists to beat the naive everything-to-the-sink
  // deployment on peak per-node traffic (paper Fig. 10); that ordering
  // must hold on every random layout.
  for (const std::uint64_t seed : kRandomSeeds) {
    const auto sc = make_random_scenario(seed);
    const auto naive = compute_comm_cost(
        assign_centralized(sc.graph, sc.wsn, 0), sc.wsn);
    const auto smart = compute_comm_cost(
        assign_balanced_heuristic(sc.graph, sc.wsn), sc.wsn);
    EXPECT_LE(smart.max_cost, naive.max_cost + 1e-9) << "seed " << seed;
  }
}

TEST(AssignmentRandomized, PipelineIsDeterministicForFixedSeed) {
  for (const std::uint64_t seed : kRandomSeeds) {
    const auto a = make_random_scenario(seed);
    const auto b = make_random_scenario(seed);
    ASSERT_EQ(a.graph.num_units(), b.graph.num_units()) << "seed " << seed;
    const Assignment ha = assign_balanced_heuristic(a.graph, a.wsn);
    const Assignment hb = assign_balanced_heuristic(b.graph, b.wsn);
    for (UnitId u = 0; u < a.graph.num_units(); ++u) {
      ASSERT_EQ(ha.node_of(u), hb.node_of(u))
          << "seed " << seed << " diverged at unit " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MicroDeepPropertyTest,
    ::testing::Values(Combo{Deploy::Grid, Assign::Centralized},
                      Combo{Deploy::Grid, Assign::Nearest},
                      Combo{Deploy::Grid, Assign::Heuristic},
                      Combo{Deploy::Jittered, Assign::Centralized},
                      Combo{Deploy::Jittered, Assign::Nearest},
                      Combo{Deploy::Jittered, Assign::Heuristic},
                      Combo{Deploy::Random, Assign::Centralized},
                      Combo{Deploy::Random, Assign::Nearest},
                      Combo{Deploy::Random, Assign::Heuristic}),
    combo_name);

}  // namespace
}  // namespace zeiot::microdeep
