// Round-trip and robustness fuzzing for the weight container format.
//
// The property suite here complements test_ml_serialize.cpp's example-based
// cases: seeded random architectures must round-trip byte-identically, and
// *every* truncation/corruption of a valid stream must surface as a clean
// zeiot::Error — never a crash, hang, or silent partial load.  Failures
// print the seed (and byte offset), which reproduces the exact case.
#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace zeiot::ml {
namespace {

// A random-but-valid architecture drawn from `seed`.  Conv front end is
// optional so the sweep also covers pure-MLP parameter lists.
Network make_random_net(std::uint64_t seed) {
  Rng rng(seed);
  Network net;
  const bool with_conv = rng.uniform_int(0, 1) == 0;
  const int grid = 4 + 2 * static_cast<int>(rng.uniform_int(0, 1));  // 4/6
  const int in_ch = 1 + static_cast<int>(rng.uniform_int(0, 1));
  int flat = in_ch * grid * grid;
  if (with_conv) {
    const int conv_ch = 2 + static_cast<int>(rng.uniform_int(0, 2));
    net.emplace<Conv2D>(in_ch, conv_ch, 3, 1, rng);
    net.emplace<ReLU>();
    net.emplace<MaxPool2D>(2);
    net.emplace<Flatten>();
    flat = conv_ch * (grid / 2) * (grid / 2);
  } else {
    net.emplace<Flatten>();
  }
  const int hidden = 2 + static_cast<int>(rng.uniform_int(0, 5));
  const int classes = 2 + static_cast<int>(rng.uniform_int(0, 2));
  net.emplace<Dense>(flat, hidden, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(hidden, classes, rng);
  return net;
}

std::string serialize_to_string(const Network& net) {
  std::stringstream buf;
  save_weights(net, buf);
  return buf.str();
}

// Loads `bytes` into a fresh copy of the `seed` architecture.  Returns true
// on success; a zeiot::Error is the only acceptable failure mode.
bool try_load(std::uint64_t seed, const std::string& bytes) {
  Network net = make_random_net(seed);
  std::stringstream in(bytes);
  try {
    load_weights(net, in);
  } catch (const Error&) {
    return false;
  }
  return true;
}

constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55, 66, 77, 88};

TEST(SerializeFuzz, SaveLoadSaveIsByteIdentical) {
  for (const std::uint64_t seed : kSeeds) {
    const Network a = make_random_net(seed);
    const std::string first = serialize_to_string(a);
    // Same topology, different weights — load must overwrite all of them.
    Network b = make_random_net(seed);
    for (Param* p : b.params()) {
      for (std::size_t j = 0; j < p->value.size(); ++j) {
        p->value[j] = p->value[j] * 0.5f + 1.0f;
      }
    }
    std::stringstream in(first);
    load_weights(b, in);
    const std::string second = serialize_to_string(b);
    ASSERT_EQ(first, second) << "seed " << seed;
  }
}

TEST(SerializeFuzz, EveryTruncationThrowsCleanly) {
  // Exhaustive over the header + first tensors, sampled over the payload
  // tail: no prefix of a valid stream is itself a valid stream.
  const std::uint64_t seed = kSeeds[0];
  const std::string full = serialize_to_string(make_random_net(seed));
  ASSERT_GT(full.size(), 64u);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 64; ++i) cuts.push_back(i);
  for (std::size_t i = 64; i < full.size(); i += 7) cuts.push_back(i);
  for (const std::size_t cut : cuts) {
    EXPECT_FALSE(try_load(seed, full.substr(0, cut)))
        << "truncation at byte " << cut << " of " << full.size();
  }
  EXPECT_TRUE(try_load(seed, full));
}

TEST(SerializeFuzz, TrailingBytesThrow) {
  for (const std::uint64_t seed : {kSeeds[1], kSeeds[2]}) {
    const std::string full = serialize_to_string(make_random_net(seed));
    for (const std::size_t extra : {std::size_t{1}, std::size_t{4},
                                    std::size_t{129}}) {
      EXPECT_FALSE(try_load(seed, full + std::string(extra, '\x5a')))
          << "seed " << seed << " extra " << extra;
    }
  }
}

TEST(SerializeFuzz, SingleByteCorruptionNeverCrashes) {
  // Flip one byte at a time.  Header/shape corruption must throw; payload
  // corruption merely changes float values and may load — either way the
  // call returns instead of crashing, and a successful load still
  // round-trips to exactly the corrupted bytes (no silent normalization).
  const std::uint64_t seed = kSeeds[3];
  const std::string full = serialize_to_string(make_random_net(seed));
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string mutated = full;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    Network net = make_random_net(seed);
    std::stringstream in(mutated);
    bool loaded = true;
    try {
      load_weights(net, in);
    } catch (const Error&) {
      loaded = false;
    }
    if (i < 12) {
      // Magic, version, or parameter count: must always be rejected.
      EXPECT_FALSE(loaded) << "header byte " << i;
    } else if (loaded) {
      EXPECT_EQ(serialize_to_string(net), mutated) << "byte " << i;
    }
  }
}

TEST(SerializeFuzz, RandomGarbageStreamsThrow) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, 512));
    std::string bytes(len, '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    EXPECT_FALSE(try_load(kSeeds[4], bytes)) << "trial " << trial;
  }
}

TEST(SerializeFuzz, MutatedHeaderFieldsThrow) {
  const std::uint64_t seed = kSeeds[5];
  const std::string full = serialize_to_string(make_random_net(seed));
  auto with_u32_at = [&](std::size_t off, std::uint32_t v) {
    std::string s = full;
    for (int k = 0; k < 4; ++k) {
      s[off + static_cast<std::size_t>(k)] =
          static_cast<char>((v >> (8 * k)) & 0xff);
    }
    return s;
  };
  EXPECT_FALSE(try_load(seed, with_u32_at(0, 0xdeadbeef)));  // magic
  EXPECT_FALSE(try_load(seed, with_u32_at(4, 2)));           // version
  EXPECT_FALSE(try_load(seed, with_u32_at(8, 0)));           // count low
  EXPECT_FALSE(try_load(seed, with_u32_at(8, 1u << 20)));    // count huge
  EXPECT_FALSE(try_load(seed, with_u32_at(12, 7)));          // first rank
}

TEST(SerializeFuzz, CrossArchitectureLoadsAlwaysThrow) {
  // A stream saved from one random architecture must never load into a
  // different one (parameter count or some shape will mismatch).
  for (std::size_t i = 0; i + 1 < std::size(kSeeds); ++i) {
    const Network a = make_random_net(kSeeds[i]);
    const Network b = make_random_net(kSeeds[i + 1]);
    if (serialize_to_string(a).size() == serialize_to_string(b).size()) {
      continue;  // identical draw — nothing to assert
    }
    EXPECT_FALSE(try_load(kSeeds[i + 1], serialize_to_string(a)))
        << "seeds " << kSeeds[i] << " -> " << kSeeds[i + 1];
  }
}

}  // namespace
}  // namespace zeiot::ml
