#include "netexec/netexec.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "sim/simulator.hpp"

namespace zeiot::netexec {

double ChannelConfig::hop_latency_s(std::size_t payload_bytes) const {
  if (fixed_hop_latency_s >= 0.0) return fixed_hop_latency_s;
  return phy.frame_airtime_s(payload_bytes);
}

ChannelConfig ChannelConfig::ideal() {
  ChannelConfig c;
  c.loss_per_hop = 0.0;
  c.hop_processing_s = 0.0;
  c.fixed_hop_latency_s = 0.0;
  return c;
}

NetworkExecutor::NetworkExecutor(ml::Network& net,
                                 const microdeep::UnitGraph& graph,
                                 const microdeep::Assignment& assignment,
                                 const microdeep::WsnTopology& wsn,
                                 NetExecConfig cfg)
    : net_(net), graph_(graph), assignment_(assignment), wsn_(wsn),
      cfg_(std::move(cfg)) {
  ZEIOT_CHECK_MSG(cfg_.max_retries >= 0, "max_retries must be >= 0");
  ZEIOT_CHECK_MSG(cfg_.channel.loss_per_hop >= 0.0 &&
                      cfg_.channel.loss_per_hop < 1.0,
                  "loss_per_hop must be in [0, 1)");
  ZEIOT_CHECK_MSG(cfg_.layer_deadline_s > 0.0,
                  "layer_deadline_s must be > 0 (termination guarantee)");
  build_plans();
}

void NetworkExecutor::reset_memory() { memory_.clear(); }

void NetworkExecutor::build_plans() {
  const auto& layers = graph_.layers();
  const std::size_t n_nodes = wsn_.num_nodes();
  std::uint64_t next_uid = 0;
  std::size_t unit_layer = 0;  // current (producer) unit layer index

  for (std::size_t li = 0; li < net_.num_layers(); ++li) {
    const int produced = graph_.unit_layer_of_net_layer(li);
    if (produced < 0) {
      if (dynamic_cast<ml::ReLU*>(&net_.layer(li)) != nullptr) {
        ZEIOT_CHECK_MSG(!plans_.empty() &&
                            plans_.back().out_layer == unit_layer,
                        "netexec: ReLU must follow a producing layer");
        plans_.back().relu_after = true;
      }
      continue;  // Flatten / Dropout: no units, no traffic
    }

    LayerPlan p;
    p.net_layer = li;
    p.in_layer = unit_layer;
    p.out_layer = static_cast<std::size_t>(produced);
    ZEIOT_CHECK_MSG(p.out_layer == p.in_layer + 1,
                    "netexec expects sequential unit layers");
    const microdeep::UnitLayer& in = layers[p.in_layer];
    const microdeep::UnitLayer& out = layers[p.out_layer];
    p.payload_bytes = static_cast<std::size_t>(in.channels) * sizeof(float) +
                      cfg_.channel.header_bytes;
    p.first_uid = next_uid;
    p.out_msgs.resize(n_nodes);
    p.in_msgs.resize(n_nodes);
    p.local_srcs.resize(n_nodes);
    p.units.resize(n_nodes);

    // Walk consumer units and their inputs in the exact order of the
    // shared unit-compute kernel, deduplicating per (producer unit,
    // consumer node) — the ideal executor's message set, in its insertion
    // order.
    std::unordered_set<std::uint64_t> seen;
    auto visit_src = [&](UnitId src, NodeId dst_node) {
      const NodeId src_node = assignment_.node_of(src);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src) << 32) | dst_node;
      if (!seen.insert(key).second) return;
      if (src_node == dst_node) {
        p.local_srcs[dst_node].push_back(src);
        return;
      }
      Message m;
      m.src = src;
      m.src_node = src_node;
      m.dst_node = dst_node;
      m.hops = wsn_.hops(src_node, dst_node);
      const std::size_t mi = p.messages.size();
      p.messages.push_back(m);
      p.out_msgs[src_node].push_back(mi);
      p.in_msgs[dst_node].push_back(mi);
    };

    const UnitId in_begin = in.first_unit;
    const UnitId in_end = in.first_unit + static_cast<UnitId>(in.num_units());
    for (int i = 0; i < out.num_units(); ++i) {
      const UnitId u = out.first_unit + static_cast<UnitId>(i);
      const NodeId n = assignment_.node_of(u);
      p.units[n].push_back(u);
      if (out.kind == microdeep::UnitLayer::Kind::Dense) {
        for (UnitId src = in_begin; src < in_end; ++src) visit_src(src, n);
      } else {
        for (const UnitId src : graph_.graph_neighbors(u)) {
          if (src >= in_begin && src < in_end) visit_src(src, n);
        }
      }
    }
    next_uid += p.messages.size();
    unit_layer = p.out_layer;
    plans_.push_back(std::move(p));
  }
  ZEIOT_CHECK_MSG(!plans_.empty(), "network produces no unit layers");
}

NetInferenceResult NetworkExecutor::run_impl(
    const ml::Tensor& sample, std::uint64_t seed, obs::Observability* obs,
    fault::FaultInjector* fault, microdeep::ActTable* memory) const {
  const auto& layers = graph_.layers();
  const microdeep::UnitLayer& input = layers.front();
  ZEIOT_CHECK_MSG(sample.ndim() == 3 && sample.dim(0) == input.channels &&
                      sample.dim(1) == input.height &&
                      sample.dim(2) == input.width,
                  "sample shape does not match the unit graph input");

  const std::size_t n_nodes = wsn_.num_nodes();
  const std::size_t n_plans = plans_.size();
  const double off = cfg_.fault_time_offset;

  NetInferenceResult res;
  sim::Simulator sim;

  microdeep::ActTable acts(graph_.num_units());
  std::vector<char> unit_valid(graph_.num_units(), 0);
  for (int y = 0; y < input.height; ++y) {
    for (int x = 0; x < input.width; ++x) {
      const UnitId u =
          input.first_unit + static_cast<UnitId>(y * input.width + x);
      acts[u].resize(static_cast<std::size_t>(input.channels));
      for (int c = 0; c < input.channels; ++c) {
        acts[u][static_cast<std::size_t>(c)] = sample.at({c, y, x});
      }
    }
  }

  std::vector<double> radio_free(n_nodes, 0.0);
  std::vector<double> cpu_free(n_nodes, 0.0);
  std::vector<energy::EnergyLedger> ledger(n_nodes);

  // Per-plan dynamic state.  stage: 0 = waiting, 1 = compute scheduled,
  // 2 = done (computed, or skipped because the node was dead).
  struct PlanState {
    std::vector<std::size_t> pending;
    std::vector<char> stage;
    std::vector<char> delivered;
    double finish_s = 0.0;
    bool any_computed = false;
  };
  std::vector<PlanState> st(n_plans);
  for (std::size_t k = 0; k < n_plans; ++k) {
    const LayerPlan& p = plans_[k];
    st[k].stage.assign(n_nodes, 0);
    st[k].delivered.assign(p.messages.size(), 0);
    st[k].pending.assign(n_nodes, 0);
    for (NodeId n = 0; n < n_nodes; ++n) {
      st[k].pending[n] =
          p.in_msgs[n].size() + (p.local_srcs[n].empty() ? 0 : 1);
    }
  }

  // Mutually recursive event handlers (all state lives in this frame; the
  // simulator runs to completion before it unwinds).
  std::function<void(std::size_t, NodeId)> schedule_compute;
  std::function<void(std::size_t, NodeId)> dec_pending;
  std::function<void(std::size_t, NodeId)> layer_done;
  std::function<void(std::size_t, std::size_t)> start_frame;
  std::function<void(std::size_t, std::size_t, NodeId, int, int)> attempt_hop;
  std::function<void(std::size_t, std::size_t, NodeId, int)> arrive;

  dec_pending = [&](std::size_t k, NodeId n) {
    auto& s = st[k];
    if (s.pending[n] == 0) return;
    if (--s.pending[n] == 0 && s.stage[n] == 0 && !plans_[k].units[n].empty())
      schedule_compute(k, n);
  };

  layer_done = [&](std::size_t done_layer, NodeId n) {
    // Unit layer `done_layer` is final on node n: ship its activations to
    // remote consumers and release the local dependency of the next plan.
    if (done_layer >= n_plans) return;  // logits: nothing downstream
    const LayerPlan& p = plans_[done_layer];
    for (const std::size_t mi : p.out_msgs[n]) start_frame(done_layer, mi);
    if (!p.local_srcs[n].empty()) dec_pending(done_layer, n);
  };

  schedule_compute = [&](std::size_t k, NodeId n) {
    auto& s = st[k];
    if (s.stage[n] != 0) return;
    s.stage[n] = 1;
    const LayerPlan& p = plans_[k];
    const double start = std::max(sim.now(), cpu_free[n]);
    const double dur =
        static_cast<double>(p.units[n].size()) * cfg_.unit_compute_s;
    cpu_free[n] = start + dur;  // reserve the MCU now (serial execution)
    sim.schedule_at(start, [&, k, n, start, dur]() {
      auto& sk = st[k];
      const LayerPlan& plan = plans_[k];
      if (fault != nullptr && fault->node_dead(off + start, n)) {
        sk.stage[n] = 2;  // node died before computing: units stay invalid
        return;
      }
      // Substitute activations that never arrived (lost frames, dead or
      // late producers) with the last-known value — zeros on first contact.
      const auto in_ch =
          static_cast<std::size_t>(layers[plan.in_layer].channels);
      std::vector<std::pair<UnitId, std::vector<float>>> saved;
      auto substitute = [&](UnitId src) {
        saved.emplace_back(src, std::move(acts[src]));
        if (memory != nullptr && src < memory->size() &&
            !(*memory)[src].empty()) {
          acts[src] = (*memory)[src];
        } else {
          acts[src].assign(in_ch, 0.0f);
        }
        ++res.substitutions;
      };
      for (const std::size_t mi : plan.in_msgs[n]) {
        if (!sk.delivered[mi]) substitute(plan.messages[mi].src);
      }
      for (const UnitId src : plan.local_srcs[n]) {
        if (!unit_valid[src]) substitute(src);
      }

      std::function<bool(UnitId)> mine = [&, n](UnitId u) {
        return assignment_.node_of(u) == n;
      };
      microdeep::UnitComputeHooks hooks;
      hooks.unit_filter = &mine;
      compute_unit_layer(net_.layer(plan.net_layer), graph_, plan.in_layer,
                         plan.out_layer, acts, hooks);
      if (plan.relu_after) {
        apply_relu_layer(graph_, plan.out_layer, acts, &mine);
      }
      for (auto& [src, prev] : saved) acts[src] = std::move(prev);

      ledger[n].record("compute", cfg_.costs.compute_watt * dur);
      const double finish = start + dur;
      sim.schedule_at(finish, [&, k, n, finish]() {
        auto& sf = st[k];
        sf.stage[n] = 2;
        sf.finish_s = std::max(sf.finish_s, finish);
        sf.any_computed = true;
        for (const UnitId u : plans_[k].units[n]) unit_valid[u] = 1;
        layer_done(plans_[k].out_layer, n);
      });
    });
  };

  start_frame = [&](std::size_t k, std::size_t mi) {
    const Message& m = plans_[k].messages[mi];
    ++res.messages;
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::MicroDeepHop, m.src_node,
                          m.dst_node, static_cast<double>(m.hops));
    }
    attempt_hop(k, mi, m.src_node, 0, 0);
  };

  attempt_hop = [&](std::size_t k, std::size_t mi, NodeId cur, int hop,
                    int attempt) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    const double now = sim.now();
    if (fault != nullptr && fault->node_dead(off + now, cur)) {
      ++res.frames_lost;  // holder died with the frame in its buffer
      return;
    }
    if (radio_free[cur] > now) {  // radio busy: defer, not an attempt yet
      sim.schedule_at(radio_free[cur], [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt);
      });
      return;
    }
    const NodeId nxt = wsn_.next_hop(cur, m.dst_node);
    const double air = cfg_.channel.hop_latency_s(plan.payload_bytes);
    radio_free[cur] = now + air;
    ++res.transmissions;
    if (attempt > 0) ++res.retransmissions;
    ledger[cur].record("tx", cfg_.costs.backscatter_tx_watt * air);
    ledger[nxt].record("rx", cfg_.costs.rx_watt * air);
    if (obs != nullptr) {
      obs->trace().record(now, obs::TraceType::PacketTx, cur, nxt, air);
    }

    // Loss: keyed per-(frame, hop, attempt) channel draw — a pure function
    // of (seed, uid, hop, attempt), so raising loss_per_hop can only turn
    // successes into losses (monotone coupling) — then injected faults,
    // then a dead receiver.
    bool lost = false;
    if (cfg_.channel.loss_per_hop > 0.0) {
      Rng draw = Rng(seed)
                     .split(plan.first_uid + mi)
                     .split(static_cast<std::uint64_t>(hop))
                     .split(static_cast<std::uint64_t>(attempt));
      lost = draw.uniform() < cfg_.channel.loss_per_hop;
    }
    if (!lost && fault != nullptr) {
      lost = fault->should_drop(off + now, cur, nxt) ||
             fault->should_corrupt(off + now, cur, nxt);
    }
    double arrive_t = now + air + cfg_.channel.hop_processing_s;
    if (fault != nullptr) arrive_t += fault->message_delay_s(off + now, cur, nxt);
    if (!lost && fault != nullptr && fault->node_dead(off + arrive_t, nxt)) {
      lost = true;
    }
    if (lost) {
      if (attempt >= cfg_.max_retries) {
        ++res.frames_lost;  // abandoned; the consumer's deadline substitutes
        return;
      }
      const double wait =
          cfg_.ack_timeout_s * std::pow(cfg_.backoff_factor, attempt);
      sim.schedule_at(now + air + wait, [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt + 1);
      });
      return;
    }
    sim.schedule_at(arrive_t, [&, k, mi, nxt, hop]() {
      arrive(k, mi, nxt, hop + 1);
    });
  };

  arrive = [&](std::size_t k, std::size_t mi, NodeId at, int hop) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::PacketRx, at, m.dst_node,
                          static_cast<double>(plan.payload_bytes));
    }
    if (at != m.dst_node) {
      attempt_hop(k, mi, at, hop, 0);  // forward along the shortest path
      return;
    }
    auto& s = st[k];
    if (s.delivered[mi]) return;
    s.delivered[mi] = 1;
    if (s.stage[at] == 2) {
      ++res.late_frames;  // consumer already computed with a substitute
      return;
    }
    dec_pending(k, at);
  };

  // t = 0: sensing nodes publish their input units and feed plan 0.
  sim.schedule(0.0, [&]() {
    std::vector<char> owns(n_nodes, 0);
    for (int i = 0; i < input.num_units(); ++i) {
      const UnitId u = input.first_unit + static_cast<UnitId>(i);
      owns[assignment_.node_of(u)] = 1;
    }
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!owns[n]) continue;
      if (fault != nullptr && fault->node_dead(off, n)) continue;
      for (int i = 0; i < input.num_units(); ++i) {
        const UnitId u = input.first_unit + static_cast<UnitId>(i);
        if (assignment_.node_of(u) == n) unit_valid[u] = 1;
      }
      ledger[n].record("sense", cfg_.costs.sense_watt * cfg_.sense_s);
      layer_done(0, n);
    }
  });

  // Termination guarantee: plan k's consumers stop waiting at absolute
  // time (k+1) * layer_deadline_s no matter what was lost.
  for (std::size_t k = 0; k < n_plans; ++k) {
    sim.schedule_at(static_cast<double>(k + 1) * cfg_.layer_deadline_s,
                    [&, k]() {
                      for (NodeId n = 0; n < n_nodes; ++n) {
                        if (st[k].stage[n] == 0 && !plans_[k].units[n].empty())
                          schedule_compute(k, n);
                      }
                    });
  }

  sim.run();
  ZEIOT_CHECK_MSG(sim.pending() == 0, "netexec event loop did not drain");

  // Logits from the final unit layer; invalid outputs fall back to the
  // last-known value (degradation, not a crash).
  const microdeep::UnitLayer& last = layers.back();
  ZEIOT_CHECK_MSG(last.kind == microdeep::UnitLayer::Kind::Dense,
                  "network must end in a dense (logit) layer");
  res.output = ml::Tensor({1, last.num_units()});
  for (int i = 0; i < last.num_units(); ++i) {
    const UnitId u = last.first_unit + static_cast<UnitId>(i);
    if (unit_valid[u]) {
      res.output.at({0, i}) = acts[u][0];
    } else {
      res.output.at({0, i}) =
          (memory != nullptr && u < memory->size() && !(*memory)[u].empty())
              ? (*memory)[u][0]
              : 0.0f;
      ++res.substitutions;
    }
  }
  res.latency_s = st.back().any_computed
                      ? st.back().finish_s
                      : static_cast<double>(n_plans) * cfg_.layer_deadline_s;
  res.degraded = res.substitutions > 0;

  for (NodeId n = 0; n < n_nodes; ++n) {
    res.tx_energy_j += ledger[n].of("tx");
    res.rx_energy_j += ledger[n].of("rx");
    res.compute_energy_j += ledger[n].of("compute");
    res.sense_energy_j += ledger[n].of("sense");
    res.energy_j += ledger[n].total_joule();
  }

  if (memory != nullptr) {
    memory->resize(graph_.num_units());
    for (UnitId u = 0; u < graph_.num_units(); ++u) {
      if (unit_valid[u]) (*memory)[u] = acts[u];
    }
  }

  if (obs != nullptr) {
    auto& m = obs->metrics();
    m.counter("netexec.exec.messages").inc(static_cast<double>(res.messages));
    m.counter("netexec.exec.transmissions")
        .inc(static_cast<double>(res.transmissions));
    m.counter("netexec.exec.retransmissions")
        .inc(static_cast<double>(res.retransmissions));
    m.counter("netexec.exec.frames_lost")
        .inc(static_cast<double>(res.frames_lost));
    m.counter("netexec.exec.substitutions")
        .inc(static_cast<double>(res.substitutions));
    if (res.degraded) m.counter("netexec.exec.degraded").inc();
    m.summary("netexec.exec.latency_s").observe(res.latency_s);
    m.summary("netexec.exec.energy_j").observe(res.energy_j);
  }
  return res;
}

NetInferenceResult NetworkExecutor::run(const ml::Tensor& sample) {
  Rng base(cfg_.seed);
  const std::uint64_t run_seed = par::substream(base, runs_++)();
  return run_impl(sample, run_seed, cfg_.obs, cfg_.fault, &memory_);
}

NetEvalResult NetworkExecutor::evaluate(const ml::Dataset& data,
                                        par::ThreadPool* pool,
                                        std::size_t max_samples) {
  ZEIOT_CHECK_MSG(cfg_.fault == nullptr,
                  "evaluate() does not support fault injection (the injector "
                  "RNG is call-order coupled); use run()");
  const std::size_t n =
      max_samples > 0 ? std::min(max_samples, data.size()) : data.size();
  ZEIOT_CHECK_MSG(n > 0, "evaluate() needs at least one sample");

  // One independent simulation per sample into its own slot; aggregation
  // below runs on the calling thread in index order, so the result is
  // bit-identical for any worker count.
  std::vector<NetInferenceResult> slots(n);
  const Rng base(cfg_.seed);
  par::parallel_for(
      n,
      [&](std::size_t i) {
        Rng child = par::substream(base, i);
        slots[i] = run_impl(data.x(i), child(), nullptr, nullptr, nullptr);
      },
      pool);

  NetEvalResult ev;
  ev.samples = n;
  std::vector<double> lat;
  lat.reserve(n);
  std::size_t correct = 0, degraded = 0;
  double energy = 0.0, retrans = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NetInferenceResult& r = slots[i];
    if (static_cast<int>(r.output.argmax()) == data.label(i)) ++correct;
    if (r.degraded) ++degraded;
    lat.push_back(r.latency_s);
    energy += r.energy_j;
    retrans += static_cast<double>(r.retransmissions);
    ev.messages += r.messages;
    ev.frames_lost += r.frames_lost;
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        std::llround(q * static_cast<double>(n - 1)));
    return lat[std::min(idx, n - 1)];
  };
  ev.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  ev.p50_latency_s = pct(0.50);
  ev.p99_latency_s = pct(0.99);
  ev.mean_energy_j = energy / static_cast<double>(n);
  ev.degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(n);
  ev.mean_retransmissions = retrans / static_cast<double>(n);

  if (cfg_.obs != nullptr) {
    auto& m = cfg_.obs->metrics();
    m.gauge("netexec.accuracy").set(ev.accuracy);
    m.gauge("netexec.p50_latency_s").set(ev.p50_latency_s);
    m.gauge("netexec.p99_latency_s").set(ev.p99_latency_s);
    m.gauge("netexec.energy_per_inference_j").set(ev.mean_energy_j);
    m.gauge("netexec.degraded_fraction").set(ev.degraded_fraction);
    m.counter("netexec.eval.messages").inc(static_cast<double>(ev.messages));
    m.counter("netexec.eval.frames_lost")
        .inc(static_cast<double>(ev.frames_lost));
    m.counter("netexec.eval.samples").inc(static_cast<double>(n));
  }
  return ev;
}

}  // namespace zeiot::netexec
