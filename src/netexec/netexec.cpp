#include "netexec/netexec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/stats.hpp"
#include "sim/simulator.hpp"

namespace zeiot::netexec {

double ChannelConfig::hop_latency_s(std::size_t payload_bytes) const {
  if (fixed_hop_latency_s >= 0.0) return fixed_hop_latency_s;
  return phy.frame_airtime_s(payload_bytes);
}

ChannelConfig ChannelConfig::ideal() {
  ChannelConfig c;
  c.loss_per_hop = 0.0;
  c.hop_processing_s = 0.0;
  c.fixed_hop_latency_s = 0.0;
  return c;
}

namespace {

/// Half-open activity interval on the virtual time axis.
struct Ival {
  double lo = 0.0;
  double hi = 0.0;
};

/// Partitions [0, horizon] into the latency phases by a sweep over the
/// recorded activity intervals.  Overlaps resolve by priority
/// compute > checkpoint > airtime > retry (a tick where any MCU computes
/// counts as compute even if a radio is also on air); uncovered time is
/// idle.  The sums telescope over the same segment boundaries, so they add
/// up to `horizon` to within floating-point association error.
PhaseBreakdown attribute_phases(const std::vector<Ival>& compute,
                                const std::vector<Ival>& checkpoint,
                                const std::vector<Ival>& airtime,
                                const std::vector<Ival>& retry,
                                double horizon) {
  PhaseBreakdown out;
  if (horizon <= 0.0) return out;
  struct Edge {
    double t;
    int cat;    // 0 compute, 1 checkpoint, 2 airtime, 3 retry
    int delta;  // +1 open, -1 close
  };
  std::vector<Edge> edges;
  edges.reserve(2 * (compute.size() + checkpoint.size() + airtime.size() +
                     retry.size()));
  auto push = [&](const std::vector<Ival>& ivals, int cat) {
    for (const Ival& iv : ivals) {
      const double lo = std::max(0.0, iv.lo);
      const double hi = std::min(horizon, iv.hi);
      if (hi <= lo) continue;  // empty or entirely past the horizon
      edges.push_back(Edge{lo, cat, +1});
      edges.push_back(Edge{hi, cat, -1});
    }
  };
  push(compute, 0);
  push(checkpoint, 1);
  push(airtime, 2);
  push(retry, 3);
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.delta < y.delta;  // closes before opens at equal times
  });
  int active[4] = {0, 0, 0, 0};
  double acc[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
  double prev = 0.0;
  auto flush = [&](double t) {
    if (t <= prev) return;
    const int cat = active[0] > 0 ? 0 : active[1] > 0 ? 1
                                    : active[2] > 0   ? 2
                                    : active[3] > 0   ? 3
                                                      : 4;
    acc[cat] += t - prev;
    prev = t;
  };
  for (const Edge& e : edges) {
    flush(e.t);
    active[e.cat] += e.delta;
  }
  flush(horizon);
  out.compute_s = acc[0];
  out.checkpoint_s = acc[1];
  out.airtime_s = acc[2];
  out.retry_s = acc[3];
  out.idle_s = acc[4];
  return out;
}

}  // namespace

NetworkExecutor::NetworkExecutor(ml::Network& net,
                                 const microdeep::UnitGraph& graph,
                                 const microdeep::Assignment& assignment,
                                 const microdeep::WsnTopology& wsn,
                                 NetExecConfig cfg)
    : net_(net), graph_(graph), assignment_(assignment), wsn_(wsn),
      cfg_(std::move(cfg)) {
  ZEIOT_CHECK_MSG(cfg_.max_retries >= 0, "max_retries must be >= 0");
  ZEIOT_CHECK_MSG(cfg_.channel.loss_per_hop >= 0.0 &&
                      cfg_.channel.loss_per_hop < 1.0,
                  "loss_per_hop must be in [0, 1)");
  ZEIOT_CHECK_MSG(cfg_.layer_deadline_s > 0.0,
                  "layer_deadline_s must be > 0 (termination guarantee)");
  if (cfg_.quantized_transport) {
    ZEIOT_CHECK_MSG(cfg_.act_scales.size() == graph_.layers().size(),
                    "quantized_transport requires one activation scale per "
                    "unit layer (microdeep::calibrate_unit_activation_scales)");
    for (const float s : cfg_.act_scales) {
      ZEIOT_CHECK_MSG(s > 0.0f, "activation scales must be positive");
    }
  }
  ZEIOT_CHECK_MSG(cfg_.checkpoint.costs.base_j >= 0.0 &&
                      cfg_.checkpoint.costs.write_j_per_byte >= 0.0 &&
                      cfg_.checkpoint.costs.write_s_per_byte >= 0.0,
                  "checkpoint costs must be >= 0");
  if (cfg_.harvest.enabled) {
    ZEIOT_CHECK_MSG(cfg_.harvest.valid(),
                    "harvest config invalid (watt/initial >= 0, "
                    "0 < initial <= capacity)");
  }
  if (cfg_.checkpoint.policy == CheckpointPolicy::EnergyAdaptive) {
    ZEIOT_CHECK_MSG(cfg_.harvest.enabled,
                    "EnergyAdaptive checkpointing requires the harvest model "
                    "(the policy keys off the capacitor level)");
    ZEIOT_CHECK_MSG(cfg_.checkpoint.adaptive_reserve_j >= 0.0,
                    "adaptive_reserve_j must be >= 0");
  }
  build_plans();
  // Worst-case NVM image per node under the shared framing (header +
  // trailer, one entry per resident activation slot).  Computed through the
  // residency model so search_assignment and the executor can never
  // disagree about what fits.
  nvm_bytes_ = microdeep::compute_node_checkpoint_bytes(
      graph_, assignment_, wsn_.num_nodes(), microdeep::NodeMemoryModel{});
  if (cfg_.checkpoint.enabled() && cfg_.checkpoint.nvm_budget_bytes > 0) {
    for (NodeId n = 0; n < wsn_.num_nodes(); ++n) {
      ZEIOT_CHECK_MSG(nvm_bytes_[n] <= cfg_.checkpoint.nvm_budget_bytes,
                      "node " << n << " checkpoint image (" << nvm_bytes_[n]
                              << " B) exceeds the NVM budget of "
                              << cfg_.checkpoint.nvm_budget_bytes
                              << " B; re-run search_assignment with "
                                 "memory.nvm_budget_bytes set");
    }
  }
}

void NetworkExecutor::reset_memory() { memory_.clear(); }

void NetworkExecutor::build_plans() {
  const auto& layers = graph_.layers();
  const std::size_t n_nodes = wsn_.num_nodes();
  std::uint64_t next_uid = 0;
  std::size_t unit_layer = 0;  // current (producer) unit layer index

  for (std::size_t li = 0; li < net_.num_layers(); ++li) {
    const int produced = graph_.unit_layer_of_net_layer(li);
    if (produced < 0) {
      if (dynamic_cast<ml::ReLU*>(&net_.layer(li)) != nullptr) {
        ZEIOT_CHECK_MSG(!plans_.empty() &&
                            plans_.back().out_layer == unit_layer,
                        "netexec: ReLU must follow a producing layer");
        plans_.back().relu_after = true;
      }
      continue;  // Flatten / Dropout: no units, no traffic
    }

    LayerPlan p;
    p.net_layer = li;
    p.in_layer = unit_layer;
    p.out_layer = static_cast<std::size_t>(produced);
    ZEIOT_CHECK_MSG(p.out_layer == p.in_layer + 1,
                    "netexec expects sequential unit layers");
    const microdeep::UnitLayer& in = layers[p.in_layer];
    const microdeep::UnitLayer& out = layers[p.out_layer];
    // Float transport ships 4 bytes per channel; quantized transport ships
    // the paper's 1-byte unit messages (symmetric int8).
    const std::size_t bytes_per_channel =
        cfg_.quantized_transport ? 1 : sizeof(float);
    p.payload_bytes = static_cast<std::size_t>(in.channels) * bytes_per_channel +
                      cfg_.channel.header_bytes;
    p.first_uid = next_uid;
    p.out_msgs.resize(n_nodes);
    p.in_msgs.resize(n_nodes);
    p.local_srcs.resize(n_nodes);
    p.units.resize(n_nodes);

    // Walk consumer units and their inputs in the exact order of the
    // shared unit-compute kernel, deduplicating per (producer unit,
    // consumer node) — the ideal executor's message set, in its insertion
    // order.
    std::unordered_set<std::uint64_t> seen;
    auto visit_src = [&](UnitId src, NodeId dst_node) {
      const NodeId src_node = assignment_.node_of(src);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src) << 32) | dst_node;
      if (!seen.insert(key).second) return;
      if (src_node == dst_node) {
        p.local_srcs[dst_node].push_back(src);
        return;
      }
      Message m;
      m.src = src;
      m.src_node = src_node;
      m.dst_node = dst_node;
      m.hops = wsn_.hops(src_node, dst_node);
      const std::size_t mi = p.messages.size();
      p.messages.push_back(m);
      p.out_msgs[src_node].push_back(mi);
      p.in_msgs[dst_node].push_back(mi);
    };

    const UnitId in_begin = in.first_unit;
    const UnitId in_end = in.first_unit + static_cast<UnitId>(in.num_units());
    for (int i = 0; i < out.num_units(); ++i) {
      const UnitId u = out.first_unit + static_cast<UnitId>(i);
      const NodeId n = assignment_.node_of(u);
      p.units[n].push_back(u);
      if (out.kind == microdeep::UnitLayer::Kind::Dense) {
        for (UnitId src = in_begin; src < in_end; ++src) visit_src(src, n);
      } else {
        for (const UnitId src : graph_.graph_neighbors(u)) {
          if (src >= in_begin && src < in_end) visit_src(src, n);
        }
      }
    }
    next_uid += p.messages.size();
    unit_layer = p.out_layer;
    plans_.push_back(std::move(p));
  }
  ZEIOT_CHECK_MSG(!plans_.empty(), "network produces no unit layers");
}

std::size_t NetworkExecutor::spans_per_run_bound() const {
  // Root + 4 phase children + per-node sense markers + per-(plan, node)
  // compute spans and deadline markers + per hop traversal at most
  // (1 + max_retries) tx attempts, each possibly followed by a backoff
  // span.  Radio-busy deferrals record nothing.
  std::size_t hop_traversals = 0;
  for (const LayerPlan& p : plans_) {
    for (const Message& m : p.messages) {
      hop_traversals += static_cast<std::size_t>(m.hops);
    }
  }
  const std::size_t attempts = static_cast<std::size_t>(cfg_.max_retries) + 1;
  const std::size_t n_nodes = wsn_.num_nodes();
  // Checkpointing adds at most one Checkpoint span per (plan, node) commit
  // plus one per sense commit per node, and a fifth phase child.  (Brownout
  // recomputes can exceed the per-(plan, node) counts, but faults are
  // run()-only — evaluate(), which this bound sizes, forbids them.)
  const std::size_t ckpt_spans =
      cfg_.checkpoint.enabled() ? (plans_.size() + 1) * n_nodes + 1 : 0;
  return 1 + 4 + n_nodes + 2 * plans_.size() * n_nodes +
         2 * hop_traversals * attempts + ckpt_spans;
}

NetInferenceResult NetworkExecutor::run_impl(
    const ml::Tensor& sample, std::uint64_t seed, obs::Observability* obs,
    fault::FaultInjector* fault, microdeep::ActTable* memory,
    obs::SpanRecorder* spans, std::uint64_t trace_id) const {
  const auto& layers = graph_.layers();
  const microdeep::UnitLayer& input = layers.front();
  ZEIOT_CHECK_MSG(sample.ndim() == 3 && sample.dim(0) == input.channels &&
                      sample.dim(1) == input.height &&
                      sample.dim(2) == input.width,
                  "sample shape does not match the unit graph input");

  const std::size_t n_nodes = wsn_.num_nodes();
  const std::size_t n_plans = plans_.size();
  const double off = cfg_.fault_time_offset;

  // Intermittent-execution modes.  Brownout windows are honoured whenever
  // checkpointing or harvesting is on; the all-default configuration takes
  // none of these branches and is bit-identical to the classic executor.
  const bool ckpt = cfg_.checkpoint.enabled();
  const bool harvesting = cfg_.harvest.enabled;
  const bool adaptive =
      cfg_.checkpoint.policy == CheckpointPolicy::EnergyAdaptive;
  const bool intermittent = ckpt || harvesting;
  const double kInf = std::numeric_limits<double>::infinity();

  // Static scan of the fault plan: brownout suspend/revive windows per node
  // and harvest-drought scaling windows.  The plan is pure data — scanning
  // it consumes no injector RNG, so run() reproducibility is untouched.
  struct Window {
    double lo = 0.0;
    double hi = 0.0;
    double scale = 1.0;
  };
  std::vector<std::vector<Window>> brownouts(intermittent ? n_nodes : 0);
  std::vector<std::vector<Window>> droughts(harvesting ? n_nodes : 0);
  double last_revival = 0.0;
  if (fault != nullptr && intermittent) {
    auto add_window = [&](std::vector<std::vector<Window>>& per_node,
                          const fault::FaultEvent& e) {
      const double lo = std::max(0.0, e.t - off);
      const double hi = e.t - off + e.duration_s;
      if (e.duration_s <= 0.0 || hi <= 0.0) return;
      if (e.target == fault::kAllTargets) {
        for (NodeId n = 0; n < n_nodes; ++n) {
          per_node[n].push_back(Window{lo, hi, e.magnitude});
        }
      } else if (e.target < n_nodes) {
        per_node[e.target].push_back(Window{lo, hi, e.magnitude});
      }
    };
    for (const fault::FaultEvent& e : fault->plan().events()) {
      if (e.type == fault::FaultType::Brownout) {
        add_window(brownouts, e);
        if (e.duration_s > 0.0 && e.t - off + e.duration_s > 0.0) {
          last_revival = std::max(last_revival, e.t - off + e.duration_s);
        }
      } else if (harvesting && e.type == fault::FaultType::HarvestDrought) {
        add_window(droughts, e);
      }
    }
    for (auto& w : brownouts) {  // merge overlaps: clean suspend/revive pairs
      std::sort(w.begin(), w.end(), [](const Window& a, const Window& b) {
        return a.lo < b.lo;
      });
      std::vector<Window> merged;
      for (const Window& x : w) {
        if (!merged.empty() && x.lo <= merged.back().hi) {
          merged.back().hi = std::max(merged.back().hi, x.hi);
        } else {
          merged.push_back(x);
        }
      }
      w = std::move(merged);
    }
  }
  // Revival time when `t` falls inside a brownout window of node n, else -1.
  auto brownout_until = [&](NodeId n, double t) -> double {
    if (fault == nullptr || !intermittent) return -1.0;
    for (const Window& w : brownouts[n]) {
      if (t >= w.lo && t < w.hi) return w.hi;
    }
    return -1.0;
  };

  NetInferenceResult res;
  sim::Simulator sim;

  microdeep::ActTable acts(graph_.num_units());
  std::vector<char> unit_valid(graph_.num_units(), 0);
  for (int y = 0; y < input.height; ++y) {
    for (int x = 0; x < input.width; ++x) {
      const UnitId u =
          input.first_unit + static_cast<UnitId>(y * input.width + x);
      acts[u].resize(static_cast<std::size_t>(input.channels));
      for (int c = 0; c < input.channels; ++c) {
        acts[u][static_cast<std::size_t>(c)] = sample.at({c, y, x});
      }
    }
  }

  std::vector<double> radio_free(n_nodes, 0.0);
  std::vector<double> cpu_free(n_nodes, 0.0);
  std::vector<energy::EnergyLedger> ledger(n_nodes);

  // Input units owned per node (sensing, and the None-policy volatile wipe).
  std::vector<std::vector<UnitId>> own_inputs(n_nodes);
  for (int i = 0; i < input.num_units(); ++i) {
    const UnitId u = input.first_unit + static_cast<UnitId>(i);
    own_inputs[assignment_.node_of(u)].push_back(u);
  }

  // Per-node capacitor: piecewise-constant harvest rate (drought windows
  // scale it), lazily integrated forward to the query time.
  std::vector<double> stored(harvesting ? n_nodes : 0, cfg_.harvest.initial_j);
  std::vector<double> stored_t(harvesting ? n_nodes : 0, 0.0);
  auto harvest_rate = [&](NodeId n, double t, double* next_change) -> double {
    double scale = 1.0;
    double next = kInf;
    for (const Window& w : droughts[n]) {
      if (t >= w.lo && t < w.hi) {
        scale = std::min(scale, w.scale);
        next = std::min(next, w.hi);
      } else if (w.lo > t) {
        next = std::min(next, w.lo);
      }
    }
    if (next_change != nullptr) *next_change = next;
    return cfg_.harvest.harvest_watt * scale;
  };
  auto accrue = [&](NodeId n, double t) {
    if (!harvesting) return;
    double cur = stored_t[n];
    while (cur < t) {
      double next = kInf;
      const double rate = harvest_rate(n, cur, &next);
      const double seg = std::min(t, next);
      stored[n] =
          std::min(cfg_.harvest.capacity_j, stored[n] + rate * (seg - cur));
      cur = seg;
    }
    stored_t[n] = std::max(stored_t[n], t);
  };
  auto spend_stored = [&](NodeId n, double t, double j) {
    if (!harvesting) return;
    accrue(n, t);
    stored[n] = std::max(0.0, stored[n] - j);
  };
  // Earliest time >= t when node n's capacitor reaches `need`; -1 when the
  // harvest can never get there (the layer deadline then takes over).
  auto harvest_ready_time = [&](NodeId n, double t, double need) -> double {
    accrue(n, t);
    need = std::min(need, cfg_.harvest.capacity_j);
    double have = stored[n];
    double cur = t;
    for (int guard = 0; guard < 65536 && have < need; ++guard) {
      double next = kInf;
      const double rate = harvest_rate(n, cur, &next);
      if (rate > 0.0) {
        const double t_need = cur + (need - have) / rate;
        if (t_need <= next) return t_need;
      }
      if (next == kInf) return -1.0;
      have = std::min(cfg_.harvest.capacity_j, have + rate * (next - cur));
      cur = next;
    }
    return have >= need ? cur : -1.0;
  };

  // Durable per-node NVM image (checkpointing only): the decoded state plus
  // its canonical encoding — revival round-trips through the codec so the
  // restore path exercised here is the one corruption tests attack.
  std::vector<NodeCheckpointState> nvm_state;
  std::vector<std::vector<std::uint8_t>> nvm_image;
  if (ckpt) {
    nvm_state.resize(n_nodes);
    for (NodeId n = 0; n < n_nodes; ++n) {
      nvm_state[n].node = static_cast<std::uint32_t>(n);
    }
    nvm_image.resize(n_nodes);
  }

  // Harvest-aware admission: computing plan k on node n needs the compute
  // burst, the worst-case commit, and the first TX attempt of every frame
  // the result ships (plan k feeds plan k+1's out_msgs).
  std::vector<std::vector<double>> admission;
  if (harvesting) {
    admission.assign(n_plans, std::vector<double>(n_nodes, 0.0));
    for (std::size_t k = 0; k < n_plans; ++k) {
      const LayerPlan& p = plans_[k];
      const auto out_ch =
          static_cast<std::size_t>(layers[p.out_layer].channels);
      for (NodeId n = 0; n < n_nodes; ++n) {
        if (p.units[n].empty()) continue;
        const double compute_j = cfg_.costs.compute_watt *
                                 static_cast<double>(p.units[n].size()) *
                                 cfg_.unit_compute_s;
        double ckpt_j = 0.0;
        if (ckpt) {
          const std::size_t bytes =
              p.units[n].size() * (microdeep::kNvmEntryOverheadBytes +
                                   out_ch * microdeep::kNvmBytesPerActivation);
          ckpt_j = cfg_.checkpoint.costs.energy_j(bytes);
        }
        double tx_j = 0.0;
        if (k + 1 < n_plans) {
          const LayerPlan& nxt = plans_[k + 1];
          tx_j = static_cast<double>(nxt.out_msgs[n].size()) *
                 cfg_.costs.backscatter_tx_watt *
                 cfg_.channel.hop_latency_s(nxt.payload_bytes);
        }
        admission[k][n] = compute_j + ckpt_j + tx_j;
      }
    }
  }

  // Causal span tree (opt-in).  The root Inference span opens at t = 0 and
  // closes at the final latency; activity spans attach energy-ledger
  // deltas as their value.  Hop/backoff spans parent to the span that
  // *produced* the activations they carry (a Sense span for plan 0, the
  // plan k-1 NodeCompute span otherwise), making the tree causal rather
  // than purely temporal.
  obs::SpanRecorder* const sp =
      (spans != nullptr && spans->enabled()) ? spans : nullptr;
  const obs::SpanId root =
      sp != nullptr ? sp->open(obs::SpanKind::Inference, 0.0, 0, trace_id,
                               static_cast<std::uint32_t>(n_nodes),
                               static_cast<std::uint32_t>(n_plans))
                    : 0;
  std::vector<obs::SpanId> sense_span(sp != nullptr ? n_nodes : 0, 0);
  std::vector<std::vector<obs::SpanId>> compute_span;
  if (sp != nullptr) {
    compute_span.assign(n_plans, std::vector<obs::SpanId>(n_nodes, 0));
  }
  // Latency-attribution intervals are collected unconditionally (one
  // push_back per activity); the sweep after sim.run() turns them into
  // res.breakdown, span recording or not.
  std::vector<Ival> compute_ivals;
  std::vector<Ival> ckpt_ivals;
  std::vector<Ival> air_ivals;
  std::vector<Ival> retry_ivals;

  // Per-plan dynamic state.  stage: 0 = waiting, 1 = compute scheduled,
  // 2 = done (computed, or skipped because the node was dead).
  struct PlanState {
    std::vector<std::size_t> pending;
    std::vector<char> stage;
    std::vector<char> delivered;
    double finish_s = 0.0;
    bool any_computed = false;
  };
  std::vector<PlanState> st(n_plans);
  for (std::size_t k = 0; k < n_plans; ++k) {
    const LayerPlan& p = plans_[k];
    st[k].stage.assign(n_nodes, 0);
    st[k].delivered.assign(p.messages.size(), 0);
    st[k].pending.assign(n_nodes, 0);
    for (NodeId n = 0; n < n_nodes; ++n) {
      st[k].pending[n] =
          p.in_msgs[n].size() + (p.local_srcs[n].empty() ? 0 : 1);
    }
  }

  // Event-invalidation epochs: every in-flight compute / commit / deferral
  // event captures epoch[k][n] and bails when a brownout suspend bumped it —
  // the rollback edge of the resumable unit-state machine.  Always allocated
  // and guarded; without faults the guards are no-ops.
  std::vector<std::vector<std::uint32_t>> epoch(
      n_plans, std::vector<std::uint32_t>(n_nodes, 0));

  // One durable commit burst on node n: merge the entries into the node's
  // NVM state, re-encode the canonical image, and charge exactly one
  // "checkpoint" ledger record (base + per-byte) for the bytes written.
  // Returns {energy, duration} of the write burst.
  struct CommitReceipt {
    double energy_j = 0.0;
    double duration_s = 0.0;
  };
  auto nvm_commit = [&](NodeId n, const std::vector<UnitId>& units_list,
                        std::size_t plans_done, double t) -> CommitReceipt {
    NodeCheckpointState& state = nvm_state[n];
    // First-ever commit also writes the frame (header + trailer).
    std::size_t bytes =
        nvm_image[n].empty() ? microdeep::kNvmImageOverheadBytes : 0;
    for (const UnitId u : units_list) {
      auto it = std::lower_bound(
          state.entries.begin(), state.entries.end(), u,
          [](const CheckpointEntry& e, UnitId v) { return e.unit < v; });
      const std::size_t value_bytes =
          acts[u].size() * microdeep::kNvmBytesPerActivation;
      if (it != state.entries.end() && it->unit == u) {
        it->values = acts[u];
        bytes += value_bytes;  // overwrite in place, entry header untouched
      } else {
        bytes += microdeep::kNvmEntryOverheadBytes + value_bytes;
        state.entries.insert(it, CheckpointEntry{u, acts[u]});
      }
    }
    state.plans_done =
        std::max(state.plans_done, static_cast<std::uint32_t>(plans_done));
    nvm_image[n] = encode_checkpoint(state);
    CommitReceipt receipt;
    receipt.energy_j = cfg_.checkpoint.costs.energy_j(bytes);
    receipt.duration_s = cfg_.checkpoint.costs.duration_s(bytes);
    ledger[n].record("checkpoint", receipt.energy_j);
    spend_stored(n, t, receipt.energy_j);
    ++res.checkpoints;
    res.checkpoint_bytes += bytes;
    return receipt;
  };

  // Mutually recursive event handlers (all state lives in this frame; the
  // simulator runs to completion before it unwinds).
  std::function<void(std::size_t, NodeId, bool)> schedule_compute;
  std::function<void(std::size_t, NodeId)> dec_pending;
  std::function<void(std::size_t, NodeId)> layer_done;
  std::function<void(std::size_t, std::size_t)> start_frame;
  std::function<void(std::size_t, std::size_t, NodeId, int, int)> attempt_hop;
  std::function<void(std::size_t, std::size_t, NodeId, int)> arrive;

  dec_pending = [&](std::size_t k, NodeId n) {
    auto& s = st[k];
    if (s.pending[n] == 0) return;
    if (--s.pending[n] == 0 && s.stage[n] == 0 && !plans_[k].units[n].empty())
      schedule_compute(k, n, /*forced=*/false);
  };

  layer_done = [&](std::size_t done_layer, NodeId n) {
    // Unit layer `done_layer` is final on node n: ship its activations to
    // remote consumers and release the local dependency of the next plan.
    if (done_layer >= n_plans) return;  // logits: nothing downstream
    const LayerPlan& p = plans_[done_layer];
    for (const std::size_t mi : p.out_msgs[n]) start_frame(done_layer, mi);
    if (!p.local_srcs[n].empty()) dec_pending(done_layer, n);
  };

  schedule_compute = [&](std::size_t k, NodeId n, bool forced) {
    auto& s = st[k];
    if (s.stage[n] != 0) return;
    const double now_s = sim.now();
    if (brownout_until(n, now_s) >= 0.0) {
      // Suspended node.  With checkpointing the revival restore re-enters
      // this plan from NVM; without it the node is simply dark — a forced
      // (deadline) call marks the plan skipped so consumers substitute.
      if (!ckpt && forced) s.stage[n] = 2;
      return;
    }
    if (harvesting) {
      accrue(n, now_s);
      if (stored[n] < admission[k][n]) {
        if (forced) {
          // Deadline fired on a dry capacitor: the plan is starved, its
          // units stay invalid, and downstream consumers substitute.
          ++res.starved;
          s.stage[n] = 2;
          return;
        }
        // Defer until the capacitor covers compute + commit + first TX.
        // The layer deadline is the backstop when the harvest never gets
        // there; a suspend invalidates the retry through the epoch.
        ++res.deferrals;
        const double ready = harvest_ready_time(n, now_s, admission[k][n]);
        if (ready >= 0.0) {
          // The exact ready-time solve can round one ULP short: re-checking
          // at `ready` would find a ~1e-22 J deficit whose own retry delay
          // underflows below the ULP of `now`, freezing virtual time.  A
          // 1 ns floor per retry guarantees progress (1 ns of any positive
          // harvest rate dwarfs the FP residue).
          const double ready_at = std::max(now_s + 1e-9, ready);
          const std::uint32_t ep = epoch[k][n];
          sim.schedule_at(ready_at, [&, k, n, ep]() {
            if (epoch[k][n] != ep) return;
            schedule_compute(k, n, /*forced=*/false);
          });
        }
        return;
      }
    }
    s.stage[n] = 1;
    const LayerPlan& p = plans_[k];
    const double start = std::max(now_s, cpu_free[n]);
    const double dur =
        static_cast<double>(p.units[n].size()) * cfg_.unit_compute_s;
    cpu_free[n] = start + dur;  // reserve the MCU now (serial execution)
    const std::uint32_t ep = epoch[k][n];
    sim.schedule_at(start, [&, k, n, start, dur, ep]() {
      if (epoch[k][n] != ep) return;  // suspended while queued
      auto& sk = st[k];
      const LayerPlan& plan = plans_[k];
      if (fault != nullptr && fault->node_dead(off + start, n)) {
        sk.stage[n] = 2;  // node died before computing: units stay invalid
        return;
      }
      // Substitute activations that never arrived (lost frames, dead or
      // late producers) with the last-known value — zeros on first contact.
      const auto in_ch =
          static_cast<std::size_t>(layers[plan.in_layer].channels);
      // Quantized transport: values that crossed the radio are snapped onto
      // the consumed unit layer's symmetric int8 grid.  Snapping is
      // idempotent (round(q*s / s) == q), so it is safe when several
      // consumer nodes process the same producer in one plan.
      const float qs = cfg_.quantized_transport
                           ? cfg_.act_scales[plan.in_layer]
                           : 0.0f;
      auto snap = [&](std::vector<float>& v) {
        for (float& x : v) {
          const long q = std::clamp(
              std::lround(static_cast<double>(x) / static_cast<double>(qs)),
              -127L, 127L);
          x = static_cast<float>(q) * qs;
        }
      };
      std::vector<std::pair<UnitId, std::vector<float>>> saved;
      auto substitute = [&](UnitId src, bool remote) {
        saved.emplace_back(src, std::move(acts[src]));
        if (memory != nullptr && src < memory->size() &&
            !(*memory)[src].empty()) {
          acts[src] = (*memory)[src];
          // A remote consumer only ever saw the quantized stream, so its
          // last-known value is on-grid too; local memory stays exact.
          if (remote && cfg_.quantized_transport) snap(acts[src]);
        } else {
          acts[src].assign(in_ch, 0.0f);  // zero is on every symmetric grid
        }
        ++res.substitutions;
      };
      auto fake_quant = [&](UnitId src) {
        // Save the producer's exact vector (restored after the compute so
        // same-node consumers and activation memory keep full precision),
        // then snap the working copy onto the transmitted grid.
        saved.emplace_back(src, acts[src]);
        snap(acts[src]);
      };
      for (const std::size_t mi : plan.in_msgs[n]) {
        if (!sk.delivered[mi]) {
          substitute(plan.messages[mi].src, /*remote=*/true);
        } else if (cfg_.quantized_transport) {
          fake_quant(plan.messages[mi].src);
        }
      }
      for (const UnitId src : plan.local_srcs[n]) {
        if (!unit_valid[src]) substitute(src, /*remote=*/false);
      }

      std::function<bool(UnitId)> mine = [&, n](UnitId u) {
        return assignment_.node_of(u) == n;
      };
      microdeep::UnitComputeHooks hooks;
      hooks.unit_filter = &mine;
      compute_unit_layer(net_.layer(plan.net_layer), graph_, plan.in_layer,
                         plan.out_layer, acts, hooks);
      if (plan.relu_after) {
        apply_relu_layer(graph_, plan.out_layer, acts, &mine);
      }
      for (auto& [src, prev] : saved) acts[src] = std::move(prev);

      ledger[n].record("compute", cfg_.costs.compute_watt * dur);
      spend_stored(n, start, cfg_.costs.compute_watt * dur);
      const double finish = start + dur;
      compute_ivals.push_back(Ival{start, finish});
      if (sp != nullptr) {
        compute_span[k][n] = sp->add(
            obs::SpanKind::NodeCompute, start, finish, root, trace_id,
            static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(k),
            cfg_.costs.compute_watt * dur);
      }
      sim.schedule_at(finish, [&, k, n, finish, ep]() {
        if (epoch[k][n] != ep) return;  // suspended mid-compute: no commit
        const LayerPlan& pl = plans_[k];
        for (const UnitId u : pl.units[n]) unit_valid[u] = 1;
        // Commit what the policy says cannot stay volatile: EveryUnit
        // persists every finished unit layer; EnergyAdaptive persists only
        // while the capacitor is below the reserve (when energy is
        // plentiful, re-execution after a brown-out is cheaper than the
        // write burst — progress can be recomputed, inputs cannot).
        bool commit = false;
        if (ckpt) {
          if (!adaptive) {
            commit = true;
          } else {
            accrue(n, finish);
            commit = stored[n] < cfg_.checkpoint.adaptive_reserve_j;
          }
        }
        double done_t = finish;
        if (commit) {
          const CommitReceipt receipt =
              nvm_commit(n, pl.units[n], k + 1, finish);
          done_t = finish + receipt.duration_s;
          cpu_free[n] = std::max(cpu_free[n], done_t);
          ckpt_ivals.push_back(Ival{finish, done_t});
          if (sp != nullptr) {
            const obs::SpanId parent =
                compute_span[k][n] != 0 ? compute_span[k][n] : root;
            sp->add(obs::SpanKind::Checkpoint, finish, done_t, parent,
                    trace_id, static_cast<std::uint32_t>(n),
                    static_cast<std::uint32_t>(k), receipt.energy_j);
          }
        }
        // The plan completes (and ships downstream) only once the commit
        // burst ends — atomic commit-at-end: a brown-out during the write
        // invalidates this event chain and the revival replays the layer.
        auto complete = [&, k, n](double t_done) {
          auto& sg = st[k];
          sg.stage[n] = 2;
          sg.finish_s = std::max(sg.finish_s, t_done);
          sg.any_computed = true;
          layer_done(plans_[k].out_layer, n);
        };
        if (done_t > finish) {
          sim.schedule_at(done_t, [&, k, n, done_t, ep, complete]() {
            if (epoch[k][n] != ep) return;
            complete(done_t);
          });
        } else {
          complete(finish);
        }
      });
    });
  };

  start_frame = [&](std::size_t k, std::size_t mi) {
    const Message& m = plans_[k].messages[mi];
    ++res.messages;
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::MicroDeepHop, m.src_node,
                          m.dst_node, static_cast<double>(m.hops));
    }
    attempt_hop(k, mi, m.src_node, 0, 0);
  };

  // Span parent of every frame of plan k: the span that produced its
  // activations.  Falls back to the root when the producer recorded no
  // span (dead node, deadline-skipped compute).
  auto frame_parent = [&](std::size_t k, const Message& m) -> obs::SpanId {
    const obs::SpanId p =
        k == 0 ? sense_span[m.src_node] : compute_span[k - 1][m.src_node];
    return p != 0 ? p : root;
  };

  attempt_hop = [&](std::size_t k, std::size_t mi, NodeId cur, int hop,
                    int attempt) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    const double now = sim.now();
    if (fault != nullptr && fault->node_dead(off + now, cur)) {
      ++res.frames_lost;  // holder died with the frame in its buffer
      return;
    }
    if (intermittent) {
      const double revival = brownout_until(cur, now);
      if (revival >= 0.0) {
        if (!ckpt) {
          ++res.frames_lost;  // volatile buffer died with the node
          return;
        }
        // Durable TX queue: the frame waits out the brown-out in NVM and
        // the attempt replays at revival (not an ARQ attempt — the keyed
        // loss draws are untouched, preserving bit-identical resume).
        sim.schedule_at(revival, [&, k, mi, cur, hop, attempt]() {
          attempt_hop(k, mi, cur, hop, attempt);
        });
        return;
      }
    }
    if (radio_free[cur] > now) {  // radio busy: defer, not an attempt yet
      sim.schedule_at(radio_free[cur], [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt);
      });
      return;
    }
    const NodeId nxt = wsn_.next_hop(cur, m.dst_node);
    const double air = cfg_.channel.hop_latency_s(plan.payload_bytes);
    radio_free[cur] = now + air;
    ++res.transmissions;
    if (attempt > 0) ++res.retransmissions;
    ledger[cur].record("tx", cfg_.costs.backscatter_tx_watt * air);
    ledger[nxt].record("rx", cfg_.costs.rx_watt * air);
    spend_stored(cur, now, cfg_.costs.backscatter_tx_watt * air);
    spend_stored(nxt, now, cfg_.costs.rx_watt * air);
    air_ivals.push_back(Ival{now, now + air});
    if (obs != nullptr) {
      obs->trace().record(now, obs::TraceType::PacketTx, cur, nxt, air);
    }
    if (sp != nullptr) {
      sp->add(
          attempt == 0 ? obs::SpanKind::HopTx : obs::SpanKind::HopRetryTx,
          now, now + air, frame_parent(k, m), trace_id,
          static_cast<std::uint32_t>(cur), static_cast<std::uint32_t>(nxt),
          cfg_.costs.backscatter_tx_watt * air);
    }

    // Loss: keyed per-(frame, hop, attempt) channel draw — a pure function
    // of (seed, uid, hop, attempt), so raising loss_per_hop can only turn
    // successes into losses (monotone coupling) — then injected faults,
    // then a dead receiver.
    bool lost = false;
    if (cfg_.channel.loss_per_hop > 0.0) {
      Rng draw = Rng(seed)
                     .split(plan.first_uid + mi)
                     .split(static_cast<std::uint64_t>(hop))
                     .split(static_cast<std::uint64_t>(attempt));
      lost = draw.uniform() < cfg_.channel.loss_per_hop;
    }
    if (!lost && fault != nullptr) {
      lost = fault->should_drop(off + now, cur, nxt) ||
             fault->should_corrupt(off + now, cur, nxt);
    }
    double arrive_t = now + air + cfg_.channel.hop_processing_s;
    if (fault != nullptr) arrive_t += fault->message_delay_s(off + now, cur, nxt);
    if (!lost && fault != nullptr && fault->node_dead(off + arrive_t, nxt)) {
      lost = true;
    }
    if (!lost && intermittent) {
      // Checked after the loss draw so the channel outcomes match the
      // uninterrupted run draw-for-draw.
      const double revival = brownout_until(nxt, arrive_t);
      if (revival >= 0.0) {
        if (ckpt) {
          arrive_t = revival;  // wake-up receiver latches the frame to NVM
        } else {
          lost = true;  // receiver dark, volatile inbox: ARQ retries
        }
      }
    }
    if (lost) {
      if (attempt >= cfg_.max_retries) {
        ++res.frames_lost;  // abandoned; the consumer's deadline substitutes
        return;
      }
      const double wait =
          cfg_.ack_timeout_s * std::pow(cfg_.backoff_factor, attempt);
      retry_ivals.push_back(Ival{now + air, now + air + wait});
      if (sp != nullptr) {
        sp->add(obs::SpanKind::Backoff, now + air, now + air + wait,
                frame_parent(k, m), trace_id, static_cast<std::uint32_t>(cur),
                static_cast<std::uint32_t>(attempt + 1), 0.0);
      }
      sim.schedule_at(now + air + wait, [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt + 1);
      });
      return;
    }
    sim.schedule_at(arrive_t, [&, k, mi, nxt, hop]() {
      arrive(k, mi, nxt, hop + 1);
    });
  };

  arrive = [&](std::size_t k, std::size_t mi, NodeId at, int hop) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::PacketRx, at, m.dst_node,
                          static_cast<double>(plan.payload_bytes));
    }
    if (at != m.dst_node) {
      attempt_hop(k, mi, at, hop, 0);  // forward along the shortest path
      return;
    }
    auto& s = st[k];
    if (s.delivered[mi]) return;
    s.delivered[mi] = 1;
    if (ckpt) {
      // Write-through durable inbox: the payload is latched into NVM on
      // delivery (remote activations cannot be recomputed locally), so
      // delivered frames survive a brown-out without retransmission.
      nvm_commit(at, {m.src}, /*plans_done=*/0, sim.now());
    }
    if (s.stage[at] == 2) {
      ++res.late_frames;  // consumer already computed with a substitute
      return;
    }
    dec_pending(k, at);
  };

  // Sensing on one node: publish its input units, charge the sense burst,
  // and (checkpointing) commit the inputs immediately — sensed samples are
  // the one thing re-execution can never recover.
  std::function<void(NodeId)> do_sense = [&](NodeId n) {
    const double t = sim.now();
    if (fault != nullptr && fault->node_dead(off + t, n)) return;
    const double revival = brownout_until(n, t);
    if (revival >= 0.0) {
      // Browned out at sample time: with NVM the node samples at revival
      // (late but durable); without, the sample is lost and plan-0
      // deadlines substitute.
      if (ckpt) sim.schedule_at(revival, [&, n]() { do_sense(n); });
      return;
    }
    for (const UnitId u : own_inputs[n]) unit_valid[u] = 1;
    ledger[n].record("sense", cfg_.costs.sense_watt * cfg_.sense_s);
    spend_stored(n, t, cfg_.costs.sense_watt * cfg_.sense_s);
    if (sp != nullptr) {
      // Zero-duration marker: sensing costs energy over sense_s but does
      // not delay the inference (inputs are ready at sample time).
      sense_span[n] = sp->add(obs::SpanKind::Sense, t, t, root, trace_id,
                              static_cast<std::uint32_t>(n), 0,
                              cfg_.costs.sense_watt * cfg_.sense_s);
    }
    if (ckpt) {
      // Input commit is charged in full but modelled as instantaneous,
      // matching the zero-duration sense convention above (both policies:
      // inputs are unrecoverable, so they always go durable).
      const CommitReceipt receipt = nvm_commit(n, own_inputs[n], 0, t);
      if (sp != nullptr) {
        sp->add(obs::SpanKind::Checkpoint, t, t,
                sense_span[n] != 0 ? sense_span[n] : root, trace_id,
                static_cast<std::uint32_t>(n), 0, receipt.energy_j);
      }
    }
    layer_done(0, n);
  };

  // t = 0: sensing nodes publish their input units and feed plan 0.
  sim.schedule(0.0, [&]() {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!own_inputs[n].empty()) do_sense(n);
    }
  });

  // Brownout windows: suspend at window entry, revive at window exit.
  // Suspension kills every in-flight per-node event through the epoch bump
  // and wipes the volatile compute state; what survives differs by policy —
  // with checkpointing, NVM (inputs, inbox, committed outputs) plus the
  // durable delivered flags; without, nothing.
  if (fault != nullptr && intermittent) {
    auto suspend = [&](NodeId n) {
      ++res.suspensions;
      for (std::size_t k = 0; k < n_plans; ++k) ++epoch[k][n];
      for (const UnitId u : own_inputs[n]) unit_valid[u] = 0;
      for (std::size_t k = 0; k < n_plans; ++k) {
        const LayerPlan& p = plans_[k];
        for (const UnitId u : p.units[n]) unit_valid[u] = 0;
        if (ckpt) continue;  // revival rebuilds the plan state from NVM
        auto& s = st[k];
        if (s.stage[n] == 2) continue;  // already shipped downstream
        s.stage[n] = 0;
        for (const std::size_t mi : p.in_msgs[n]) s.delivered[mi] = 0;
        s.pending[n] =
            p.in_msgs[n].size() + (p.local_srcs[n].empty() ? 0 : 1);
      }
    };
    auto revive = [&](NodeId n) {
      ++res.resumes;
      // Round-trip through the codec: a corrupt, truncated, or foreign
      // image falls back to a clean restart (degrade, never garbage).
      const NodeCheckpointState snap = restore_node_from_nvm(nvm_image[n], n);
      for (const CheckpointEntry& e : snap.entries) {
        acts[e.unit].assign(e.values.begin(), e.values.end());
        if (assignment_.node_of(e.unit) == n) unit_valid[e.unit] = 1;
      }
      // Rebuild the per-plan state machine from durable facts only.  A plan
      // is done iff every unit it produces here was committed; a torn or
      // skipped commit re-enters the scheduler with pending recomputed from
      // the durable delivered flags and the restored local inputs.  The
      // rebuild runs to completion before any frame ships or compute kicks,
      // so nothing observes a half-restored node.
      std::vector<std::size_t> to_ship;
      for (std::size_t k = 0; k < n_plans; ++k) {
        const LayerPlan& p = plans_[k];
        if (p.units[n].empty()) continue;
        auto& s = st[k];
        bool done = true;
        for (const UnitId u : p.units[n]) done = done && unit_valid[u] != 0;
        if (done) {
          // Restored complete from NVM.  If the pre-suspend run never
          // shipped it (commit landed, brown-out hit before layer_done),
          // re-send its frames below; consumers deduplicate.
          if (s.stage[n] != 2) {
            s.finish_s = std::max(s.finish_s, sim.now());
            to_ship.push_back(k);
          }
          s.stage[n] = 2;
          s.any_computed = true;
          continue;
        }
        s.stage[n] = 0;
        std::size_t pend = 0;
        for (const std::size_t mi : p.in_msgs[n]) {
          if (!s.delivered[mi]) ++pend;
        }
        bool locals_ok = true;
        for (const UnitId u : p.local_srcs[n]) {
          locals_ok = locals_ok && unit_valid[u] != 0;
        }
        if (!p.local_srcs[n].empty() && !locals_ok) ++pend;
        s.pending[n] = pend;
      }
      // Re-ship remote frames only: the local release of a restored-done
      // producer is already folded into the recomputed pending above, so
      // calling dec_pending here would double-count it.
      for (const std::size_t k : to_ship) {
        const std::size_t out = plans_[k].out_layer;
        if (out >= n_plans) continue;  // logits: nothing downstream
        for (const std::size_t mi : plans_[out].out_msgs[n]) {
          start_frame(out, mi);
        }
      }
      for (std::size_t k = 0; k < n_plans; ++k) {
        auto& s = st[k];
        if (plans_[k].units[n].empty() || s.stage[n] != 0) continue;
        if (s.pending[n] == 0) schedule_compute(k, n, /*forced=*/false);
      }
    };
    for (NodeId n = 0; n < n_nodes; ++n) {
      for (const Window& w : brownouts[n]) {
        sim.schedule_at(w.lo, [&, n, suspend]() { suspend(n); });
        if (ckpt) {
          sim.schedule_at(w.hi, [&, n, revive]() { revive(n); });
        }
      }
    }
  }

  // Termination guarantee: plan k's consumers stop waiting at absolute
  // time (k+1) * layer_deadline_s no matter what was lost.  Under
  // checkpointing the whole ladder shifts past the last revival — the
  // resumable executor finishes correctly late instead of degrading, and
  // no deadline can force a compute inside a brownout window.
  const double dl_shift =
      (ckpt && fault != nullptr) ? last_revival : 0.0;
  for (std::size_t k = 0; k < n_plans; ++k) {
    const double fire_t =
        dl_shift + static_cast<double>(k + 1) * cfg_.layer_deadline_s;
    sim.schedule_at(fire_t, [&, k, fire_t]() {
      for (NodeId n = 0; n < n_nodes; ++n) {
        if (st[k].stage[n] == 0 && !plans_[k].units[n].empty()) {
          if (sp != nullptr) {
            sp->add(obs::SpanKind::DeadlineFire, fire_t, fire_t, root,
                    trace_id, static_cast<std::uint32_t>(n),
                    static_cast<std::uint32_t>(k), 0.0);
          }
          schedule_compute(k, n, /*forced=*/true);
        }
      }
    });
  }

  sim.run();
  ZEIOT_CHECK_MSG(sim.pending() == 0, "netexec event loop did not drain");

  // Logits from the final unit layer; invalid outputs fall back to the
  // last-known value (degradation, not a crash).
  const microdeep::UnitLayer& last = layers.back();
  ZEIOT_CHECK_MSG(last.kind == microdeep::UnitLayer::Kind::Dense,
                  "network must end in a dense (logit) layer");
  res.output = ml::Tensor({1, last.num_units()});
  for (int i = 0; i < last.num_units(); ++i) {
    const UnitId u = last.first_unit + static_cast<UnitId>(i);
    if (unit_valid[u]) {
      res.output.at({0, i}) = acts[u][0];
    } else {
      res.output.at({0, i}) =
          (memory != nullptr && u < memory->size() && !(*memory)[u].empty())
              ? (*memory)[u][0]
              : 0.0f;
      ++res.substitutions;
    }
  }
  res.latency_s =
      st.back().any_computed
          ? st.back().finish_s
          : dl_shift + static_cast<double>(n_plans) * cfg_.layer_deadline_s;
  res.degraded = res.substitutions > 0;
  res.breakdown = attribute_phases(compute_ivals, ckpt_ivals, air_ivals,
                                   retry_ivals, res.latency_s);

  for (NodeId n = 0; n < n_nodes; ++n) {
    res.tx_energy_j += ledger[n].of("tx");
    res.rx_energy_j += ledger[n].of("rx");
    res.compute_energy_j += ledger[n].of("compute");
    res.sense_energy_j += ledger[n].of("sense");
    res.checkpoint_energy_j += ledger[n].of("checkpoint");
    res.energy_j += ledger[n].total_joule();
  }

  if (sp != nullptr) {
    // Phase children tile [0, latency] in a fixed stacking order, so their
    // durations (the breakdown components) sum to the root duration by
    // construction — the invariant tools/obs_report.py checks.  The fifth
    // (checkpoint) child appears only when checkpointing is on, keeping
    // classic traces byte-stable.
    struct Ph {
      obs::SpanKind kind;
      double dur;
    };
    std::vector<Ph> phases = {
        {obs::SpanKind::PhaseCompute, res.breakdown.compute_s},
        {obs::SpanKind::PhaseAirtime, res.breakdown.airtime_s},
        {obs::SpanKind::PhaseRetry, res.breakdown.retry_s}};
    if (ckpt) {
      phases.push_back({obs::SpanKind::PhaseCheckpoint,
                        res.breakdown.checkpoint_s});
    }
    phases.push_back({obs::SpanKind::PhaseIdle, res.breakdown.idle_s});
    double t = 0.0;
    for (const auto& ph : phases) {
      sp->add(ph.kind, t, t + ph.dur, root, trace_id, 0, 0, ph.dur);
      t += ph.dur;
    }
    sp->close(root, res.latency_s, res.energy_j);
  }

  if (memory != nullptr) {
    memory->resize(graph_.num_units());
    for (UnitId u = 0; u < graph_.num_units(); ++u) {
      if (unit_valid[u]) (*memory)[u] = acts[u];
    }
  }

  if (obs != nullptr) {
    auto& m = obs->metrics();
    m.counter("netexec.exec.messages").inc(static_cast<double>(res.messages));
    m.counter("netexec.exec.transmissions")
        .inc(static_cast<double>(res.transmissions));
    m.counter("netexec.exec.retransmissions")
        .inc(static_cast<double>(res.retransmissions));
    m.counter("netexec.exec.frames_lost")
        .inc(static_cast<double>(res.frames_lost));
    m.counter("netexec.exec.substitutions")
        .inc(static_cast<double>(res.substitutions));
    if (intermittent) {  // gated: classic configs gain no metric keys
      m.counter("netexec.exec.checkpoints")
          .inc(static_cast<double>(res.checkpoints));
      m.counter("netexec.exec.checkpoint_bytes")
          .inc(static_cast<double>(res.checkpoint_bytes));
      m.counter("netexec.exec.resumes").inc(static_cast<double>(res.resumes));
      m.counter("netexec.exec.suspensions")
          .inc(static_cast<double>(res.suspensions));
      m.counter("netexec.exec.deferrals")
          .inc(static_cast<double>(res.deferrals));
      m.counter("netexec.exec.starved").inc(static_cast<double>(res.starved));
    }
    if (res.degraded) m.counter("netexec.exec.degraded").inc();
    m.summary("netexec.exec.latency_s").observe(res.latency_s);
    m.summary("netexec.exec.energy_j").observe(res.energy_j);
  }
  return res;
}

NetInferenceResult NetworkExecutor::run(const ml::Tensor& sample) {
  Rng base(cfg_.seed);
  const std::uint64_t run_seed = par::substream(base, runs_++)();
  obs::SpanRecorder* spans =
      (cfg_.obs != nullptr && cfg_.obs->spans_enabled()) ? &cfg_.obs->spans()
                                                         : nullptr;
  // The loss-substream seed doubles as the trace id: seed-derived, stable
  // across reruns, unique per run() call.
  return run_impl(sample, run_seed, cfg_.obs, cfg_.fault, &memory_, spans,
                  run_seed);
}

NetEvalResult NetworkExecutor::evaluate(const ml::Dataset& data,
                                        par::ThreadPool* pool,
                                        std::size_t max_samples) {
  ZEIOT_CHECK_MSG(cfg_.fault == nullptr,
                  "evaluate() does not support fault injection (the injector "
                  "RNG is call-order coupled); use run()");
  const std::size_t n =
      max_samples > 0 ? std::min(max_samples, data.size()) : data.size();
  if (n == 0) {
    // Zero-sample population (everything upstream shed or terminated, or an
    // empty dataset): every aggregate is a defined zero.  Dividing by n or
    // indexing the latency vectors here was the crash path this guards.
    NetEvalResult empty;
    if (cfg_.obs != nullptr) {
      cfg_.obs->metrics().counter("netexec.eval.samples").inc(0.0);
    }
    return empty;
  }

  // One independent simulation per sample into its own slot; aggregation
  // below runs on the calling thread in index order, so the result is
  // bit-identical for any worker count.
  std::vector<NetInferenceResult> slots(n);
  const bool spanning = cfg_.obs != nullptr && cfg_.obs->spans_enabled();
  std::vector<obs::SpanRecorder> span_slots;
  if (spanning) {
    // One private recorder per sample, sized so nothing is ever dropped;
    // merged below in index order (the parallel_sweep pattern), so the
    // merged stream is bit-identical at any ZEIOT_THREADS.
    const std::size_t cap = spans_per_run_bound();
    span_slots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) span_slots.emplace_back(cap);
  }
  const Rng base(cfg_.seed);
  par::parallel_for(
      n,
      [&](std::size_t i) {
        Rng child = par::substream(base, i);
        const std::uint64_t s = child();
        slots[i] = run_impl(data.x(i), s, nullptr, nullptr, nullptr,
                            spanning ? &span_slots[i] : nullptr, s);
      },
      pool);
  if (spanning) {
    for (const obs::SpanRecorder& r : span_slots) cfg_.obs->spans().merge(r);
  }

  NetEvalResult ev;
  ev.samples = n;
  std::vector<double> lat, ph_compute, ph_ckpt, ph_air, ph_retry, ph_idle;
  lat.reserve(n);
  ph_compute.reserve(n);
  ph_ckpt.reserve(n);
  ph_air.reserve(n);
  ph_retry.reserve(n);
  ph_idle.reserve(n);
  std::size_t correct = 0, degraded = 0;
  double energy = 0.0, retrans = 0.0, ckpt_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NetInferenceResult& r = slots[i];
    if (static_cast<int>(r.output.argmax()) == data.label(i)) ++correct;
    if (r.degraded) ++degraded;
    lat.push_back(r.latency_s);
    ph_compute.push_back(r.breakdown.compute_s);
    ph_ckpt.push_back(r.breakdown.checkpoint_s);
    ph_air.push_back(r.breakdown.airtime_s);
    ph_retry.push_back(r.breakdown.retry_s);
    ph_idle.push_back(r.breakdown.idle_s);
    energy += r.energy_j;
    ckpt_energy += r.checkpoint_energy_j;
    retrans += static_cast<double>(r.retransmissions);
    ev.messages += r.messages;
    ev.frames_lost += r.frames_lost;
    ev.checkpoints += r.checkpoints;
    ev.resumes += r.resumes;
  }
  // Shared nearest-rank convention (common/stats.hpp) — also used by the
  // fleet aggregator and tools/obs_report.py.
  const auto pct = [](std::vector<double> v, double q) {
    return nearest_rank_quantile(std::move(v), q);
  };
  ev.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  ev.p50_latency_s = pct(lat, 0.50);
  ev.p99_latency_s = pct(lat, 0.99);
  ev.mean_energy_j = energy / static_cast<double>(n);
  ev.degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(n);
  ev.mean_retransmissions = retrans / static_cast<double>(n);
  ev.mean_checkpoint_energy_j = ckpt_energy / static_cast<double>(n);
  ev.p50_breakdown = PhaseBreakdown{pct(ph_compute, 0.50), pct(ph_air, 0.50),
                                    pct(ph_retry, 0.50), pct(ph_idle, 0.50),
                                    pct(ph_ckpt, 0.50)};
  ev.p99_breakdown = PhaseBreakdown{pct(ph_compute, 0.99), pct(ph_air, 0.99),
                                    pct(ph_retry, 0.99), pct(ph_idle, 0.99),
                                    pct(ph_ckpt, 0.99)};
  ev.latencies_s = lat;  // unsorted: dataset index order

  if (cfg_.obs != nullptr) {
    auto& m = cfg_.obs->metrics();
    m.gauge("netexec.accuracy").set(ev.accuracy);
    m.gauge("netexec.p50_latency_s").set(ev.p50_latency_s);
    m.gauge("netexec.p99_latency_s").set(ev.p99_latency_s);
    m.gauge("netexec.energy_per_inference_j").set(ev.mean_energy_j);
    m.gauge("netexec.degraded_fraction").set(ev.degraded_fraction);
    m.gauge("netexec.breakdown.compute_p50_s").set(ev.p50_breakdown.compute_s);
    m.gauge("netexec.breakdown.compute_p99_s").set(ev.p99_breakdown.compute_s);
    m.gauge("netexec.breakdown.airtime_p50_s").set(ev.p50_breakdown.airtime_s);
    m.gauge("netexec.breakdown.airtime_p99_s").set(ev.p99_breakdown.airtime_s);
    m.gauge("netexec.breakdown.retry_p50_s").set(ev.p50_breakdown.retry_s);
    m.gauge("netexec.breakdown.retry_p99_s").set(ev.p99_breakdown.retry_s);
    m.gauge("netexec.breakdown.idle_p50_s").set(ev.p50_breakdown.idle_s);
    m.gauge("netexec.breakdown.idle_p99_s").set(ev.p99_breakdown.idle_s);
    if (cfg_.checkpoint.enabled()) {
      // Gated so classic configurations gain no metric keys (report and
      // baseline stability).
      m.counter("netexec.checkpoints")
          .inc(static_cast<double>(ev.checkpoints));
      m.counter("netexec.resumes").inc(static_cast<double>(ev.resumes));
      m.gauge("netexec.checkpoint_energy_per_inference_j")
          .set(ev.mean_checkpoint_energy_j);
      m.gauge("netexec.breakdown.checkpoint_p50_s")
          .set(ev.p50_breakdown.checkpoint_s);
      m.gauge("netexec.breakdown.checkpoint_p99_s")
          .set(ev.p99_breakdown.checkpoint_s);
    }
    // Per-phase latency histograms over the sample population — the
    // root-span-derived distribution behind the p50/p99 gauges.  Bounds
    // cover the termination guarantee (latency <= n_plans * deadline).
    const double hist_hi =
        static_cast<double>(plans_.size()) * cfg_.layer_deadline_s;
    const struct {
      const char* phase;
      const std::vector<double>* samples;
    } phase_rows[5] = {{"total", &lat},
                       {"compute", &ph_compute},
                       {"airtime", &ph_air},
                       {"retry", &ph_retry},
                       {"idle", &ph_idle}};
    for (const auto& row : phase_rows) {
      auto& h = m.histogram("netexec.latency_breakdown_s", 0.0, hist_hi, 64,
                            {{"phase", row.phase}});
      for (const double x : *row.samples) h.observe(x);
    }
    if (cfg_.checkpoint.enabled()) {
      auto& h = m.histogram("netexec.latency_breakdown_s", 0.0, hist_hi, 64,
                            {{"phase", "checkpoint"}});
      for (const double x : ph_ckpt) h.observe(x);
    }
    m.counter("netexec.eval.messages").inc(static_cast<double>(ev.messages));
    m.counter("netexec.eval.frames_lost")
        .inc(static_cast<double>(ev.frames_lost));
    m.counter("netexec.eval.samples").inc(static_cast<double>(n));
  }
  return ev;
}

}  // namespace zeiot::netexec
