#include "netexec/netexec.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/stats.hpp"
#include "sim/simulator.hpp"

namespace zeiot::netexec {

double ChannelConfig::hop_latency_s(std::size_t payload_bytes) const {
  if (fixed_hop_latency_s >= 0.0) return fixed_hop_latency_s;
  return phy.frame_airtime_s(payload_bytes);
}

ChannelConfig ChannelConfig::ideal() {
  ChannelConfig c;
  c.loss_per_hop = 0.0;
  c.hop_processing_s = 0.0;
  c.fixed_hop_latency_s = 0.0;
  return c;
}

namespace {

/// Half-open activity interval on the virtual time axis.
struct Ival {
  double lo = 0.0;
  double hi = 0.0;
};

/// Partitions [0, horizon] into the four latency phases by a sweep over
/// the recorded activity intervals.  Overlaps resolve by priority
/// compute > airtime > retry (a tick where any MCU computes counts as
/// compute even if a radio is also on air); uncovered time is idle.  The
/// four sums telescope over the same segment boundaries, so they add up
/// to `horizon` to within floating-point association error.
PhaseBreakdown attribute_phases(const std::vector<Ival>& compute,
                                const std::vector<Ival>& airtime,
                                const std::vector<Ival>& retry,
                                double horizon) {
  PhaseBreakdown out;
  if (horizon <= 0.0) return out;
  struct Edge {
    double t;
    int cat;    // 0 compute, 1 airtime, 2 retry
    int delta;  // +1 open, -1 close
  };
  std::vector<Edge> edges;
  edges.reserve(2 * (compute.size() + airtime.size() + retry.size()));
  auto push = [&](const std::vector<Ival>& ivals, int cat) {
    for (const Ival& iv : ivals) {
      const double lo = std::max(0.0, iv.lo);
      const double hi = std::min(horizon, iv.hi);
      if (hi <= lo) continue;  // empty or entirely past the horizon
      edges.push_back(Edge{lo, cat, +1});
      edges.push_back(Edge{hi, cat, -1});
    }
  };
  push(compute, 0);
  push(airtime, 1);
  push(retry, 2);
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.delta < y.delta;  // closes before opens at equal times
  });
  int active[3] = {0, 0, 0};
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  double prev = 0.0;
  auto flush = [&](double t) {
    if (t <= prev) return;
    const int cat = active[0] > 0 ? 0 : active[1] > 0 ? 1
                                    : active[2] > 0   ? 2
                                                      : 3;
    acc[cat] += t - prev;
    prev = t;
  };
  for (const Edge& e : edges) {
    flush(e.t);
    active[e.cat] += e.delta;
  }
  flush(horizon);
  out.compute_s = acc[0];
  out.airtime_s = acc[1];
  out.retry_s = acc[2];
  out.idle_s = acc[3];
  return out;
}

}  // namespace

NetworkExecutor::NetworkExecutor(ml::Network& net,
                                 const microdeep::UnitGraph& graph,
                                 const microdeep::Assignment& assignment,
                                 const microdeep::WsnTopology& wsn,
                                 NetExecConfig cfg)
    : net_(net), graph_(graph), assignment_(assignment), wsn_(wsn),
      cfg_(std::move(cfg)) {
  ZEIOT_CHECK_MSG(cfg_.max_retries >= 0, "max_retries must be >= 0");
  ZEIOT_CHECK_MSG(cfg_.channel.loss_per_hop >= 0.0 &&
                      cfg_.channel.loss_per_hop < 1.0,
                  "loss_per_hop must be in [0, 1)");
  ZEIOT_CHECK_MSG(cfg_.layer_deadline_s > 0.0,
                  "layer_deadline_s must be > 0 (termination guarantee)");
  if (cfg_.quantized_transport) {
    ZEIOT_CHECK_MSG(cfg_.act_scales.size() == graph_.layers().size(),
                    "quantized_transport requires one activation scale per "
                    "unit layer (microdeep::calibrate_unit_activation_scales)");
    for (const float s : cfg_.act_scales) {
      ZEIOT_CHECK_MSG(s > 0.0f, "activation scales must be positive");
    }
  }
  build_plans();
}

void NetworkExecutor::reset_memory() { memory_.clear(); }

void NetworkExecutor::build_plans() {
  const auto& layers = graph_.layers();
  const std::size_t n_nodes = wsn_.num_nodes();
  std::uint64_t next_uid = 0;
  std::size_t unit_layer = 0;  // current (producer) unit layer index

  for (std::size_t li = 0; li < net_.num_layers(); ++li) {
    const int produced = graph_.unit_layer_of_net_layer(li);
    if (produced < 0) {
      if (dynamic_cast<ml::ReLU*>(&net_.layer(li)) != nullptr) {
        ZEIOT_CHECK_MSG(!plans_.empty() &&
                            plans_.back().out_layer == unit_layer,
                        "netexec: ReLU must follow a producing layer");
        plans_.back().relu_after = true;
      }
      continue;  // Flatten / Dropout: no units, no traffic
    }

    LayerPlan p;
    p.net_layer = li;
    p.in_layer = unit_layer;
    p.out_layer = static_cast<std::size_t>(produced);
    ZEIOT_CHECK_MSG(p.out_layer == p.in_layer + 1,
                    "netexec expects sequential unit layers");
    const microdeep::UnitLayer& in = layers[p.in_layer];
    const microdeep::UnitLayer& out = layers[p.out_layer];
    // Float transport ships 4 bytes per channel; quantized transport ships
    // the paper's 1-byte unit messages (symmetric int8).
    const std::size_t bytes_per_channel =
        cfg_.quantized_transport ? 1 : sizeof(float);
    p.payload_bytes = static_cast<std::size_t>(in.channels) * bytes_per_channel +
                      cfg_.channel.header_bytes;
    p.first_uid = next_uid;
    p.out_msgs.resize(n_nodes);
    p.in_msgs.resize(n_nodes);
    p.local_srcs.resize(n_nodes);
    p.units.resize(n_nodes);

    // Walk consumer units and their inputs in the exact order of the
    // shared unit-compute kernel, deduplicating per (producer unit,
    // consumer node) — the ideal executor's message set, in its insertion
    // order.
    std::unordered_set<std::uint64_t> seen;
    auto visit_src = [&](UnitId src, NodeId dst_node) {
      const NodeId src_node = assignment_.node_of(src);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src) << 32) | dst_node;
      if (!seen.insert(key).second) return;
      if (src_node == dst_node) {
        p.local_srcs[dst_node].push_back(src);
        return;
      }
      Message m;
      m.src = src;
      m.src_node = src_node;
      m.dst_node = dst_node;
      m.hops = wsn_.hops(src_node, dst_node);
      const std::size_t mi = p.messages.size();
      p.messages.push_back(m);
      p.out_msgs[src_node].push_back(mi);
      p.in_msgs[dst_node].push_back(mi);
    };

    const UnitId in_begin = in.first_unit;
    const UnitId in_end = in.first_unit + static_cast<UnitId>(in.num_units());
    for (int i = 0; i < out.num_units(); ++i) {
      const UnitId u = out.first_unit + static_cast<UnitId>(i);
      const NodeId n = assignment_.node_of(u);
      p.units[n].push_back(u);
      if (out.kind == microdeep::UnitLayer::Kind::Dense) {
        for (UnitId src = in_begin; src < in_end; ++src) visit_src(src, n);
      } else {
        for (const UnitId src : graph_.graph_neighbors(u)) {
          if (src >= in_begin && src < in_end) visit_src(src, n);
        }
      }
    }
    next_uid += p.messages.size();
    unit_layer = p.out_layer;
    plans_.push_back(std::move(p));
  }
  ZEIOT_CHECK_MSG(!plans_.empty(), "network produces no unit layers");
}

std::size_t NetworkExecutor::spans_per_run_bound() const {
  // Root + 4 phase children + per-node sense markers + per-(plan, node)
  // compute spans and deadline markers + per hop traversal at most
  // (1 + max_retries) tx attempts, each possibly followed by a backoff
  // span.  Radio-busy deferrals record nothing.
  std::size_t hop_traversals = 0;
  for (const LayerPlan& p : plans_) {
    for (const Message& m : p.messages) {
      hop_traversals += static_cast<std::size_t>(m.hops);
    }
  }
  const std::size_t attempts = static_cast<std::size_t>(cfg_.max_retries) + 1;
  const std::size_t n_nodes = wsn_.num_nodes();
  return 1 + 4 + n_nodes + 2 * plans_.size() * n_nodes +
         2 * hop_traversals * attempts;
}

NetInferenceResult NetworkExecutor::run_impl(
    const ml::Tensor& sample, std::uint64_t seed, obs::Observability* obs,
    fault::FaultInjector* fault, microdeep::ActTable* memory,
    obs::SpanRecorder* spans, std::uint64_t trace_id) const {
  const auto& layers = graph_.layers();
  const microdeep::UnitLayer& input = layers.front();
  ZEIOT_CHECK_MSG(sample.ndim() == 3 && sample.dim(0) == input.channels &&
                      sample.dim(1) == input.height &&
                      sample.dim(2) == input.width,
                  "sample shape does not match the unit graph input");

  const std::size_t n_nodes = wsn_.num_nodes();
  const std::size_t n_plans = plans_.size();
  const double off = cfg_.fault_time_offset;

  NetInferenceResult res;
  sim::Simulator sim;

  microdeep::ActTable acts(graph_.num_units());
  std::vector<char> unit_valid(graph_.num_units(), 0);
  for (int y = 0; y < input.height; ++y) {
    for (int x = 0; x < input.width; ++x) {
      const UnitId u =
          input.first_unit + static_cast<UnitId>(y * input.width + x);
      acts[u].resize(static_cast<std::size_t>(input.channels));
      for (int c = 0; c < input.channels; ++c) {
        acts[u][static_cast<std::size_t>(c)] = sample.at({c, y, x});
      }
    }
  }

  std::vector<double> radio_free(n_nodes, 0.0);
  std::vector<double> cpu_free(n_nodes, 0.0);
  std::vector<energy::EnergyLedger> ledger(n_nodes);

  // Causal span tree (opt-in).  The root Inference span opens at t = 0 and
  // closes at the final latency; activity spans attach energy-ledger
  // deltas as their value.  Hop/backoff spans parent to the span that
  // *produced* the activations they carry (a Sense span for plan 0, the
  // plan k-1 NodeCompute span otherwise), making the tree causal rather
  // than purely temporal.
  obs::SpanRecorder* const sp =
      (spans != nullptr && spans->enabled()) ? spans : nullptr;
  const obs::SpanId root =
      sp != nullptr ? sp->open(obs::SpanKind::Inference, 0.0, 0, trace_id,
                               static_cast<std::uint32_t>(n_nodes),
                               static_cast<std::uint32_t>(n_plans))
                    : 0;
  std::vector<obs::SpanId> sense_span(sp != nullptr ? n_nodes : 0, 0);
  std::vector<std::vector<obs::SpanId>> compute_span;
  if (sp != nullptr) {
    compute_span.assign(n_plans, std::vector<obs::SpanId>(n_nodes, 0));
  }
  // Latency-attribution intervals are collected unconditionally (one
  // push_back per activity); the sweep after sim.run() turns them into
  // res.breakdown, span recording or not.
  std::vector<Ival> compute_ivals;
  std::vector<Ival> air_ivals;
  std::vector<Ival> retry_ivals;

  // Per-plan dynamic state.  stage: 0 = waiting, 1 = compute scheduled,
  // 2 = done (computed, or skipped because the node was dead).
  struct PlanState {
    std::vector<std::size_t> pending;
    std::vector<char> stage;
    std::vector<char> delivered;
    double finish_s = 0.0;
    bool any_computed = false;
  };
  std::vector<PlanState> st(n_plans);
  for (std::size_t k = 0; k < n_plans; ++k) {
    const LayerPlan& p = plans_[k];
    st[k].stage.assign(n_nodes, 0);
    st[k].delivered.assign(p.messages.size(), 0);
    st[k].pending.assign(n_nodes, 0);
    for (NodeId n = 0; n < n_nodes; ++n) {
      st[k].pending[n] =
          p.in_msgs[n].size() + (p.local_srcs[n].empty() ? 0 : 1);
    }
  }

  // Mutually recursive event handlers (all state lives in this frame; the
  // simulator runs to completion before it unwinds).
  std::function<void(std::size_t, NodeId)> schedule_compute;
  std::function<void(std::size_t, NodeId)> dec_pending;
  std::function<void(std::size_t, NodeId)> layer_done;
  std::function<void(std::size_t, std::size_t)> start_frame;
  std::function<void(std::size_t, std::size_t, NodeId, int, int)> attempt_hop;
  std::function<void(std::size_t, std::size_t, NodeId, int)> arrive;

  dec_pending = [&](std::size_t k, NodeId n) {
    auto& s = st[k];
    if (s.pending[n] == 0) return;
    if (--s.pending[n] == 0 && s.stage[n] == 0 && !plans_[k].units[n].empty())
      schedule_compute(k, n);
  };

  layer_done = [&](std::size_t done_layer, NodeId n) {
    // Unit layer `done_layer` is final on node n: ship its activations to
    // remote consumers and release the local dependency of the next plan.
    if (done_layer >= n_plans) return;  // logits: nothing downstream
    const LayerPlan& p = plans_[done_layer];
    for (const std::size_t mi : p.out_msgs[n]) start_frame(done_layer, mi);
    if (!p.local_srcs[n].empty()) dec_pending(done_layer, n);
  };

  schedule_compute = [&](std::size_t k, NodeId n) {
    auto& s = st[k];
    if (s.stage[n] != 0) return;
    s.stage[n] = 1;
    const LayerPlan& p = plans_[k];
    const double start = std::max(sim.now(), cpu_free[n]);
    const double dur =
        static_cast<double>(p.units[n].size()) * cfg_.unit_compute_s;
    cpu_free[n] = start + dur;  // reserve the MCU now (serial execution)
    sim.schedule_at(start, [&, k, n, start, dur]() {
      auto& sk = st[k];
      const LayerPlan& plan = plans_[k];
      if (fault != nullptr && fault->node_dead(off + start, n)) {
        sk.stage[n] = 2;  // node died before computing: units stay invalid
        return;
      }
      // Substitute activations that never arrived (lost frames, dead or
      // late producers) with the last-known value — zeros on first contact.
      const auto in_ch =
          static_cast<std::size_t>(layers[plan.in_layer].channels);
      // Quantized transport: values that crossed the radio are snapped onto
      // the consumed unit layer's symmetric int8 grid.  Snapping is
      // idempotent (round(q*s / s) == q), so it is safe when several
      // consumer nodes process the same producer in one plan.
      const float qs = cfg_.quantized_transport
                           ? cfg_.act_scales[plan.in_layer]
                           : 0.0f;
      auto snap = [&](std::vector<float>& v) {
        for (float& x : v) {
          const long q = std::clamp(
              std::lround(static_cast<double>(x) / static_cast<double>(qs)),
              -127L, 127L);
          x = static_cast<float>(q) * qs;
        }
      };
      std::vector<std::pair<UnitId, std::vector<float>>> saved;
      auto substitute = [&](UnitId src, bool remote) {
        saved.emplace_back(src, std::move(acts[src]));
        if (memory != nullptr && src < memory->size() &&
            !(*memory)[src].empty()) {
          acts[src] = (*memory)[src];
          // A remote consumer only ever saw the quantized stream, so its
          // last-known value is on-grid too; local memory stays exact.
          if (remote && cfg_.quantized_transport) snap(acts[src]);
        } else {
          acts[src].assign(in_ch, 0.0f);  // zero is on every symmetric grid
        }
        ++res.substitutions;
      };
      auto fake_quant = [&](UnitId src) {
        // Save the producer's exact vector (restored after the compute so
        // same-node consumers and activation memory keep full precision),
        // then snap the working copy onto the transmitted grid.
        saved.emplace_back(src, acts[src]);
        snap(acts[src]);
      };
      for (const std::size_t mi : plan.in_msgs[n]) {
        if (!sk.delivered[mi]) {
          substitute(plan.messages[mi].src, /*remote=*/true);
        } else if (cfg_.quantized_transport) {
          fake_quant(plan.messages[mi].src);
        }
      }
      for (const UnitId src : plan.local_srcs[n]) {
        if (!unit_valid[src]) substitute(src, /*remote=*/false);
      }

      std::function<bool(UnitId)> mine = [&, n](UnitId u) {
        return assignment_.node_of(u) == n;
      };
      microdeep::UnitComputeHooks hooks;
      hooks.unit_filter = &mine;
      compute_unit_layer(net_.layer(plan.net_layer), graph_, plan.in_layer,
                         plan.out_layer, acts, hooks);
      if (plan.relu_after) {
        apply_relu_layer(graph_, plan.out_layer, acts, &mine);
      }
      for (auto& [src, prev] : saved) acts[src] = std::move(prev);

      ledger[n].record("compute", cfg_.costs.compute_watt * dur);
      const double finish = start + dur;
      compute_ivals.push_back(Ival{start, finish});
      if (sp != nullptr) {
        compute_span[k][n] = sp->add(
            obs::SpanKind::NodeCompute, start, finish, root, trace_id,
            static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(k),
            cfg_.costs.compute_watt * dur);
      }
      sim.schedule_at(finish, [&, k, n, finish]() {
        auto& sf = st[k];
        sf.stage[n] = 2;
        sf.finish_s = std::max(sf.finish_s, finish);
        sf.any_computed = true;
        for (const UnitId u : plans_[k].units[n]) unit_valid[u] = 1;
        layer_done(plans_[k].out_layer, n);
      });
    });
  };

  start_frame = [&](std::size_t k, std::size_t mi) {
    const Message& m = plans_[k].messages[mi];
    ++res.messages;
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::MicroDeepHop, m.src_node,
                          m.dst_node, static_cast<double>(m.hops));
    }
    attempt_hop(k, mi, m.src_node, 0, 0);
  };

  // Span parent of every frame of plan k: the span that produced its
  // activations.  Falls back to the root when the producer recorded no
  // span (dead node, deadline-skipped compute).
  auto frame_parent = [&](std::size_t k, const Message& m) -> obs::SpanId {
    const obs::SpanId p =
        k == 0 ? sense_span[m.src_node] : compute_span[k - 1][m.src_node];
    return p != 0 ? p : root;
  };

  attempt_hop = [&](std::size_t k, std::size_t mi, NodeId cur, int hop,
                    int attempt) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    const double now = sim.now();
    if (fault != nullptr && fault->node_dead(off + now, cur)) {
      ++res.frames_lost;  // holder died with the frame in its buffer
      return;
    }
    if (radio_free[cur] > now) {  // radio busy: defer, not an attempt yet
      sim.schedule_at(radio_free[cur], [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt);
      });
      return;
    }
    const NodeId nxt = wsn_.next_hop(cur, m.dst_node);
    const double air = cfg_.channel.hop_latency_s(plan.payload_bytes);
    radio_free[cur] = now + air;
    ++res.transmissions;
    if (attempt > 0) ++res.retransmissions;
    ledger[cur].record("tx", cfg_.costs.backscatter_tx_watt * air);
    ledger[nxt].record("rx", cfg_.costs.rx_watt * air);
    air_ivals.push_back(Ival{now, now + air});
    if (obs != nullptr) {
      obs->trace().record(now, obs::TraceType::PacketTx, cur, nxt, air);
    }
    if (sp != nullptr) {
      sp->add(
          attempt == 0 ? obs::SpanKind::HopTx : obs::SpanKind::HopRetryTx,
          now, now + air, frame_parent(k, m), trace_id,
          static_cast<std::uint32_t>(cur), static_cast<std::uint32_t>(nxt),
          cfg_.costs.backscatter_tx_watt * air);
    }

    // Loss: keyed per-(frame, hop, attempt) channel draw — a pure function
    // of (seed, uid, hop, attempt), so raising loss_per_hop can only turn
    // successes into losses (monotone coupling) — then injected faults,
    // then a dead receiver.
    bool lost = false;
    if (cfg_.channel.loss_per_hop > 0.0) {
      Rng draw = Rng(seed)
                     .split(plan.first_uid + mi)
                     .split(static_cast<std::uint64_t>(hop))
                     .split(static_cast<std::uint64_t>(attempt));
      lost = draw.uniform() < cfg_.channel.loss_per_hop;
    }
    if (!lost && fault != nullptr) {
      lost = fault->should_drop(off + now, cur, nxt) ||
             fault->should_corrupt(off + now, cur, nxt);
    }
    double arrive_t = now + air + cfg_.channel.hop_processing_s;
    if (fault != nullptr) arrive_t += fault->message_delay_s(off + now, cur, nxt);
    if (!lost && fault != nullptr && fault->node_dead(off + arrive_t, nxt)) {
      lost = true;
    }
    if (lost) {
      if (attempt >= cfg_.max_retries) {
        ++res.frames_lost;  // abandoned; the consumer's deadline substitutes
        return;
      }
      const double wait =
          cfg_.ack_timeout_s * std::pow(cfg_.backoff_factor, attempt);
      retry_ivals.push_back(Ival{now + air, now + air + wait});
      if (sp != nullptr) {
        sp->add(obs::SpanKind::Backoff, now + air, now + air + wait,
                frame_parent(k, m), trace_id, static_cast<std::uint32_t>(cur),
                static_cast<std::uint32_t>(attempt + 1), 0.0);
      }
      sim.schedule_at(now + air + wait, [&, k, mi, cur, hop, attempt]() {
        attempt_hop(k, mi, cur, hop, attempt + 1);
      });
      return;
    }
    sim.schedule_at(arrive_t, [&, k, mi, nxt, hop]() {
      arrive(k, mi, nxt, hop + 1);
    });
  };

  arrive = [&](std::size_t k, std::size_t mi, NodeId at, int hop) {
    const LayerPlan& plan = plans_[k];
    const Message& m = plan.messages[mi];
    if (obs != nullptr) {
      obs->trace().record(sim.now(), obs::TraceType::PacketRx, at, m.dst_node,
                          static_cast<double>(plan.payload_bytes));
    }
    if (at != m.dst_node) {
      attempt_hop(k, mi, at, hop, 0);  // forward along the shortest path
      return;
    }
    auto& s = st[k];
    if (s.delivered[mi]) return;
    s.delivered[mi] = 1;
    if (s.stage[at] == 2) {
      ++res.late_frames;  // consumer already computed with a substitute
      return;
    }
    dec_pending(k, at);
  };

  // t = 0: sensing nodes publish their input units and feed plan 0.
  sim.schedule(0.0, [&]() {
    std::vector<char> owns(n_nodes, 0);
    for (int i = 0; i < input.num_units(); ++i) {
      const UnitId u = input.first_unit + static_cast<UnitId>(i);
      owns[assignment_.node_of(u)] = 1;
    }
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!owns[n]) continue;
      if (fault != nullptr && fault->node_dead(off, n)) continue;
      for (int i = 0; i < input.num_units(); ++i) {
        const UnitId u = input.first_unit + static_cast<UnitId>(i);
        if (assignment_.node_of(u) == n) unit_valid[u] = 1;
      }
      ledger[n].record("sense", cfg_.costs.sense_watt * cfg_.sense_s);
      if (sp != nullptr) {
        // Zero-duration marker: sensing costs energy over sense_s but does
        // not delay the inference (inputs are ready at t = 0).
        sense_span[n] =
            sp->add(obs::SpanKind::Sense, 0.0, 0.0, root, trace_id,
                    static_cast<std::uint32_t>(n), 0,
                    cfg_.costs.sense_watt * cfg_.sense_s);
      }
      layer_done(0, n);
    }
  });

  // Termination guarantee: plan k's consumers stop waiting at absolute
  // time (k+1) * layer_deadline_s no matter what was lost.
  for (std::size_t k = 0; k < n_plans; ++k) {
    const double fire_t = static_cast<double>(k + 1) * cfg_.layer_deadline_s;
    sim.schedule_at(fire_t, [&, k, fire_t]() {
      for (NodeId n = 0; n < n_nodes; ++n) {
        if (st[k].stage[n] == 0 && !plans_[k].units[n].empty()) {
          if (sp != nullptr) {
            sp->add(obs::SpanKind::DeadlineFire, fire_t, fire_t, root,
                    trace_id, static_cast<std::uint32_t>(n),
                    static_cast<std::uint32_t>(k), 0.0);
          }
          schedule_compute(k, n);
        }
      }
    });
  }

  sim.run();
  ZEIOT_CHECK_MSG(sim.pending() == 0, "netexec event loop did not drain");

  // Logits from the final unit layer; invalid outputs fall back to the
  // last-known value (degradation, not a crash).
  const microdeep::UnitLayer& last = layers.back();
  ZEIOT_CHECK_MSG(last.kind == microdeep::UnitLayer::Kind::Dense,
                  "network must end in a dense (logit) layer");
  res.output = ml::Tensor({1, last.num_units()});
  for (int i = 0; i < last.num_units(); ++i) {
    const UnitId u = last.first_unit + static_cast<UnitId>(i);
    if (unit_valid[u]) {
      res.output.at({0, i}) = acts[u][0];
    } else {
      res.output.at({0, i}) =
          (memory != nullptr && u < memory->size() && !(*memory)[u].empty())
              ? (*memory)[u][0]
              : 0.0f;
      ++res.substitutions;
    }
  }
  res.latency_s = st.back().any_computed
                      ? st.back().finish_s
                      : static_cast<double>(n_plans) * cfg_.layer_deadline_s;
  res.degraded = res.substitutions > 0;
  res.breakdown =
      attribute_phases(compute_ivals, air_ivals, retry_ivals, res.latency_s);

  for (NodeId n = 0; n < n_nodes; ++n) {
    res.tx_energy_j += ledger[n].of("tx");
    res.rx_energy_j += ledger[n].of("rx");
    res.compute_energy_j += ledger[n].of("compute");
    res.sense_energy_j += ledger[n].of("sense");
    res.energy_j += ledger[n].total_joule();
  }

  if (sp != nullptr) {
    // Four phase children tile [0, latency] in a fixed stacking order, so
    // their durations (the breakdown components) sum to the root duration
    // by construction — the invariant tools/obs_report.py checks.
    const struct {
      obs::SpanKind kind;
      double dur;
    } phases[4] = {{obs::SpanKind::PhaseCompute, res.breakdown.compute_s},
                   {obs::SpanKind::PhaseAirtime, res.breakdown.airtime_s},
                   {obs::SpanKind::PhaseRetry, res.breakdown.retry_s},
                   {obs::SpanKind::PhaseIdle, res.breakdown.idle_s}};
    double t = 0.0;
    for (const auto& ph : phases) {
      sp->add(ph.kind, t, t + ph.dur, root, trace_id, 0, 0, ph.dur);
      t += ph.dur;
    }
    sp->close(root, res.latency_s, res.energy_j);
  }

  if (memory != nullptr) {
    memory->resize(graph_.num_units());
    for (UnitId u = 0; u < graph_.num_units(); ++u) {
      if (unit_valid[u]) (*memory)[u] = acts[u];
    }
  }

  if (obs != nullptr) {
    auto& m = obs->metrics();
    m.counter("netexec.exec.messages").inc(static_cast<double>(res.messages));
    m.counter("netexec.exec.transmissions")
        .inc(static_cast<double>(res.transmissions));
    m.counter("netexec.exec.retransmissions")
        .inc(static_cast<double>(res.retransmissions));
    m.counter("netexec.exec.frames_lost")
        .inc(static_cast<double>(res.frames_lost));
    m.counter("netexec.exec.substitutions")
        .inc(static_cast<double>(res.substitutions));
    if (res.degraded) m.counter("netexec.exec.degraded").inc();
    m.summary("netexec.exec.latency_s").observe(res.latency_s);
    m.summary("netexec.exec.energy_j").observe(res.energy_j);
  }
  return res;
}

NetInferenceResult NetworkExecutor::run(const ml::Tensor& sample) {
  Rng base(cfg_.seed);
  const std::uint64_t run_seed = par::substream(base, runs_++)();
  obs::SpanRecorder* spans =
      (cfg_.obs != nullptr && cfg_.obs->spans_enabled()) ? &cfg_.obs->spans()
                                                         : nullptr;
  // The loss-substream seed doubles as the trace id: seed-derived, stable
  // across reruns, unique per run() call.
  return run_impl(sample, run_seed, cfg_.obs, cfg_.fault, &memory_, spans,
                  run_seed);
}

NetEvalResult NetworkExecutor::evaluate(const ml::Dataset& data,
                                        par::ThreadPool* pool,
                                        std::size_t max_samples) {
  ZEIOT_CHECK_MSG(cfg_.fault == nullptr,
                  "evaluate() does not support fault injection (the injector "
                  "RNG is call-order coupled); use run()");
  const std::size_t n =
      max_samples > 0 ? std::min(max_samples, data.size()) : data.size();
  if (n == 0) {
    // Zero-sample population (everything upstream shed or terminated, or an
    // empty dataset): every aggregate is a defined zero.  Dividing by n or
    // indexing the latency vectors here was the crash path this guards.
    NetEvalResult empty;
    if (cfg_.obs != nullptr) {
      cfg_.obs->metrics().counter("netexec.eval.samples").inc(0.0);
    }
    return empty;
  }

  // One independent simulation per sample into its own slot; aggregation
  // below runs on the calling thread in index order, so the result is
  // bit-identical for any worker count.
  std::vector<NetInferenceResult> slots(n);
  const bool spanning = cfg_.obs != nullptr && cfg_.obs->spans_enabled();
  std::vector<obs::SpanRecorder> span_slots;
  if (spanning) {
    // One private recorder per sample, sized so nothing is ever dropped;
    // merged below in index order (the parallel_sweep pattern), so the
    // merged stream is bit-identical at any ZEIOT_THREADS.
    const std::size_t cap = spans_per_run_bound();
    span_slots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) span_slots.emplace_back(cap);
  }
  const Rng base(cfg_.seed);
  par::parallel_for(
      n,
      [&](std::size_t i) {
        Rng child = par::substream(base, i);
        const std::uint64_t s = child();
        slots[i] = run_impl(data.x(i), s, nullptr, nullptr, nullptr,
                            spanning ? &span_slots[i] : nullptr, s);
      },
      pool);
  if (spanning) {
    for (const obs::SpanRecorder& r : span_slots) cfg_.obs->spans().merge(r);
  }

  NetEvalResult ev;
  ev.samples = n;
  std::vector<double> lat, ph_compute, ph_air, ph_retry, ph_idle;
  lat.reserve(n);
  ph_compute.reserve(n);
  ph_air.reserve(n);
  ph_retry.reserve(n);
  ph_idle.reserve(n);
  std::size_t correct = 0, degraded = 0;
  double energy = 0.0, retrans = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NetInferenceResult& r = slots[i];
    if (static_cast<int>(r.output.argmax()) == data.label(i)) ++correct;
    if (r.degraded) ++degraded;
    lat.push_back(r.latency_s);
    ph_compute.push_back(r.breakdown.compute_s);
    ph_air.push_back(r.breakdown.airtime_s);
    ph_retry.push_back(r.breakdown.retry_s);
    ph_idle.push_back(r.breakdown.idle_s);
    energy += r.energy_j;
    retrans += static_cast<double>(r.retransmissions);
    ev.messages += r.messages;
    ev.frames_lost += r.frames_lost;
  }
  // Shared nearest-rank convention (common/stats.hpp) — also used by the
  // fleet aggregator and tools/obs_report.py.
  const auto pct = [](std::vector<double> v, double q) {
    return nearest_rank_quantile(std::move(v), q);
  };
  ev.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  ev.p50_latency_s = pct(lat, 0.50);
  ev.p99_latency_s = pct(lat, 0.99);
  ev.mean_energy_j = energy / static_cast<double>(n);
  ev.degraded_fraction =
      static_cast<double>(degraded) / static_cast<double>(n);
  ev.mean_retransmissions = retrans / static_cast<double>(n);
  ev.p50_breakdown = PhaseBreakdown{pct(ph_compute, 0.50), pct(ph_air, 0.50),
                                    pct(ph_retry, 0.50), pct(ph_idle, 0.50)};
  ev.p99_breakdown = PhaseBreakdown{pct(ph_compute, 0.99), pct(ph_air, 0.99),
                                    pct(ph_retry, 0.99), pct(ph_idle, 0.99)};
  ev.latencies_s = lat;  // unsorted: dataset index order

  if (cfg_.obs != nullptr) {
    auto& m = cfg_.obs->metrics();
    m.gauge("netexec.accuracy").set(ev.accuracy);
    m.gauge("netexec.p50_latency_s").set(ev.p50_latency_s);
    m.gauge("netexec.p99_latency_s").set(ev.p99_latency_s);
    m.gauge("netexec.energy_per_inference_j").set(ev.mean_energy_j);
    m.gauge("netexec.degraded_fraction").set(ev.degraded_fraction);
    m.gauge("netexec.breakdown.compute_p50_s").set(ev.p50_breakdown.compute_s);
    m.gauge("netexec.breakdown.compute_p99_s").set(ev.p99_breakdown.compute_s);
    m.gauge("netexec.breakdown.airtime_p50_s").set(ev.p50_breakdown.airtime_s);
    m.gauge("netexec.breakdown.airtime_p99_s").set(ev.p99_breakdown.airtime_s);
    m.gauge("netexec.breakdown.retry_p50_s").set(ev.p50_breakdown.retry_s);
    m.gauge("netexec.breakdown.retry_p99_s").set(ev.p99_breakdown.retry_s);
    m.gauge("netexec.breakdown.idle_p50_s").set(ev.p50_breakdown.idle_s);
    m.gauge("netexec.breakdown.idle_p99_s").set(ev.p99_breakdown.idle_s);
    // Per-phase latency histograms over the sample population — the
    // root-span-derived distribution behind the p50/p99 gauges.  Bounds
    // cover the termination guarantee (latency <= n_plans * deadline).
    const double hist_hi =
        static_cast<double>(plans_.size()) * cfg_.layer_deadline_s;
    const struct {
      const char* phase;
      const std::vector<double>* samples;
    } phase_rows[5] = {{"total", &lat},
                       {"compute", &ph_compute},
                       {"airtime", &ph_air},
                       {"retry", &ph_retry},
                       {"idle", &ph_idle}};
    for (const auto& row : phase_rows) {
      auto& h = m.histogram("netexec.latency_breakdown_s", 0.0, hist_hi, 64,
                            {{"phase", row.phase}});
      for (const double x : *row.samples) h.observe(x);
    }
    m.counter("netexec.eval.messages").inc(static_cast<double>(ev.messages));
    m.counter("netexec.eval.frames_lost")
        .inc(static_cast<double>(ev.frames_lost));
    m.counter("netexec.eval.samples").inc(static_cast<double>(n));
  }
  return ev;
}

}  // namespace zeiot::netexec
