#include "netexec/checkpoint.hpp"

#include <cstring>

namespace zeiot::netexec {

namespace {

constexpr char kMagic[4] = {'Z', 'N', 'V', 'M'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 20;   // magic + version + flags + 3*u32
constexpr std::size_t kTrailerBytes = 8;   // FNV-1a 64 of everything before

// The residency model in microdeep/memory.hpp sizes NVM budgets against
// exactly this framing; keep the two in lockstep.
static_assert(kHeaderBytes + kTrailerBytes ==
              microdeep::kNvmImageOverheadBytes);
static_assert(2 * sizeof(std::uint32_t) == microdeep::kNvmEntryOverheadBytes);
static_assert(sizeof(float) == microdeep::kNvmBytesPerActivation);

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  std::uint8_t buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* data, std::size_t& off) {
  T v;
  std::memcpy(&v, data + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace

const char* checkpoint_policy_name(CheckpointPolicy policy) {
  switch (policy) {
    case CheckpointPolicy::None: return "none";
    case CheckpointPolicy::EveryUnit: return "every_unit";
    case CheckpointPolicy::EnergyAdaptive: return "adaptive";
  }
  return "unknown";
}

std::size_t checkpoint_image_bytes(const NodeCheckpointState& state) {
  std::size_t bytes = kHeaderBytes + kTrailerBytes;
  for (const CheckpointEntry& e : state.entries) {
    bytes += microdeep::kNvmEntryOverheadBytes +
             e.values.size() * sizeof(float);
  }
  return bytes;
}

std::vector<std::uint8_t> encode_checkpoint(const NodeCheckpointState& state) {
  std::vector<std::uint8_t> out;
  out.reserve(checkpoint_image_bytes(state));
  out.insert(out.end(), kMagic, kMagic + 4);
  put<std::uint16_t>(out, kVersion);
  put<std::uint16_t>(out, 0);  // flags, reserved
  put<std::uint32_t>(out, state.node);
  put<std::uint32_t>(out, state.plans_done);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(state.entries.size()));
  for (const CheckpointEntry& e : state.entries) {
    put<std::uint32_t>(out, e.unit);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(e.values.size()));
    for (float v : e.values) put<float>(out, v);
  }
  put<std::uint64_t>(out, fnv1a64(out.data(), out.size()));
  return out;
}

bool decode_checkpoint(const std::uint8_t* data, std::size_t size,
                       NodeCheckpointState& out) {
  out = NodeCheckpointState{};
  if (data == nullptr || size < kHeaderBytes + kTrailerBytes) return false;
  if (std::memcmp(data, kMagic, 4) != 0) return false;
  // Checksum first: after it passes, the length walk can only fail on a
  // frame that was malformed when written (still rejected below).
  const std::uint64_t stored =
      [&] { std::size_t off = size - kTrailerBytes;
            return get<std::uint64_t>(data, off); }();
  if (stored != fnv1a64(data, size - kTrailerBytes)) return false;

  std::size_t off = 4;
  const auto version = get<std::uint16_t>(data, off);
  const auto flags = get<std::uint16_t>(data, off);
  if (version != kVersion || flags != 0) return false;
  NodeCheckpointState st;
  st.node = get<std::uint32_t>(data, off);
  st.plans_done = get<std::uint32_t>(data, off);
  const auto n_entries = get<std::uint32_t>(data, off);
  const std::size_t payload_end = size - kTrailerBytes;
  st.entries.reserve(n_entries);
  std::uint32_t prev_unit = 0;
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    if (payload_end - off < 2 * sizeof(std::uint32_t)) return false;
    CheckpointEntry e;
    e.unit = get<std::uint32_t>(data, off);
    if (i > 0 && e.unit <= prev_unit) return false;  // canonical order
    prev_unit = e.unit;
    const auto len = get<std::uint32_t>(data, off);
    if ((payload_end - off) / sizeof(float) < len) return false;
    e.values.resize(len);
    if (len > 0) {
      std::memcpy(e.values.data(), data + off, len * sizeof(float));
      off += len * sizeof(float);
    }
    st.entries.push_back(std::move(e));
  }
  if (off != payload_end) return false;  // trailing payload garbage
  out = std::move(st);
  return true;
}

NodeCheckpointState restore_node_from_nvm(
    const std::vector<std::uint8_t>& image, std::uint32_t node) {
  NodeCheckpointState st;
  if (decode_checkpoint(image.data(), image.size(), st) && st.node == node) {
    return st;
  }
  // Corrupt, truncated, or foreign image: clean restart for this node.
  st = NodeCheckpointState{};
  st.node = node;
  return st;
}

}  // namespace zeiot::netexec
