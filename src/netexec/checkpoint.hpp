// NVM checkpointing for the distributed executor — the intermittent-
// computing layer of netexec (paper Sec. III.A brought to the network).
//
// Each node owns a bounded non-volatile region holding one checkpoint
// image: the sensed inputs and computed unit outputs resident on the node
// plus the latched remote inbox, framed as
//
//   "ZNVM" | version u16 | flags u16 | node u32 | plans_done u32 |
//   n_entries u32 | entries... | fnv1a64 trailer
//   entry := unit u32 | len u32 | len x float (raw little-endian bits)
//
// Values are committed as raw float bits so a resumed inference replays
// bit-identically to the uninterrupted run.  Decoding is strict: any
// truncation or bit flip fails the frame (length walk + FNV-1a trailer)
// and the node falls back to a clean restart instead of consuming garbage.
// The framing constants are shared with microdeep/memory.hpp so
// search_assignment can bound the image size before deployment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "energy/device.hpp"
#include "microdeep/memory.hpp"

namespace zeiot::netexec {

enum class CheckpointPolicy : std::uint8_t {
  /// Volatile only: a brown-out wipes all progress on the node.
  None,
  /// Commit every computed unit layer (and all sensed inputs) to NVM.
  EveryUnit,
  /// Commit sensed inputs and the inbox always (they are unrecoverable),
  /// but compute outputs only while the capacitor is low — when energy is
  /// plentiful, re-execution is cheaper than the write burst.
  EnergyAdaptive,
};

const char* checkpoint_policy_name(CheckpointPolicy policy);

/// Checkpointing knobs for NetExecConfig.
struct CheckpointConfig {
  CheckpointPolicy policy = CheckpointPolicy::None;
  /// Energy/latency of NVM commits; shared with energy/intermittent_task
  /// so both intermittent paths price a checkpointed byte identically.
  energy::CheckpointCosts costs{};
  /// Per-node NVM capacity; 0 = unchecked.  When set, the executor verifies
  /// at construction that every node's worst-case image fits.
  std::size_t nvm_budget_bytes = 0;
  /// EnergyAdaptive commits compute outputs only while the capacitor holds
  /// less than this reserve (harvest must be enabled for the policy).
  double adaptive_reserve_j = 50e-6;

  bool enabled() const { return policy != CheckpointPolicy::None; }
};

/// Per-node energy-harvesting model for the harvest-aware scheduler: a
/// capacitor trickle-charged at `harvest_watt` (scaled by any active
/// HarvestDrought fault window), debited by compute/TX/checkpoint work.
struct HarvestConfig {
  bool enabled = false;
  double harvest_watt = 100e-6;  // ambient RF/solar intake, tens of µW
  double initial_j = 0.0;        // capacitor charge at t = 0
  double capacity_j = 1e-3;      // storage ceiling

  bool valid() const {
    return harvest_watt >= 0.0 && initial_j >= 0.0 && capacity_j > 0.0 &&
           initial_j <= capacity_j;
  }
};

/// One durable activation slot: a unit's output channels as raw floats.
struct CheckpointEntry {
  std::uint32_t unit = 0;
  std::vector<float> values;

  friend bool operator==(const CheckpointEntry& a, const CheckpointEntry& b) {
    return a.unit == b.unit && a.values == b.values;
  }
};

/// The full durable state of one node mid-inference.
struct NodeCheckpointState {
  std::uint32_t node = 0;
  /// Unit layers 0..plans_done-1 are complete on this node (resume skips
  /// them); layers >= plans_done re-enter the scheduler.
  std::uint32_t plans_done = 0;
  /// Sorted by unit id (the codec enforces the order on decode so the
  /// image bytes are a canonical function of the state).
  std::vector<CheckpointEntry> entries;

  friend bool operator==(const NodeCheckpointState& a,
                         const NodeCheckpointState& b) {
    return a.node == b.node && a.plans_done == b.plans_done &&
           a.entries == b.entries;
  }
};

/// Serializes `state` into one NVM image (see framing above).
std::vector<std::uint8_t> encode_checkpoint(const NodeCheckpointState& state);

/// Strict decode: returns false (and clears `out`) on any truncation,
/// framing violation, unsorted entries, or checksum mismatch.
bool decode_checkpoint(const std::uint8_t* data, std::size_t size,
                       NodeCheckpointState& out);

/// What a reviving node does: decode its NVM image, falling back to a
/// clean state for `node` (no progress, no entries) when the image is
/// empty, corrupt, or belongs to a different node.
NodeCheckpointState restore_node_from_nvm(const std::vector<std::uint8_t>& image,
                                          std::uint32_t node);

/// Image size of `state` without serializing (header + trailer + entries).
std::size_t checkpoint_image_bytes(const NodeCheckpointState& state);

}  // namespace zeiot::netexec
