// Network-in-the-loop MicroDeep execution (paper Sec. IV.A / IV.C).
//
// The ideal executor (microdeep/executor.hpp) delivers activations by
// assumption: every cross-node message arrives after hop_latency_s * hops,
// never lost, never queued.  NetworkExecutor closes that gap — it lowers
// the same per-(producer unit, consumer node) message set into timestamped
// frames forwarded hop by hop inside sim::Simulator, with
//  * per-hop airtime from phy::Dot154Phy (or a fixed override),
//  * per-node radio/CPU serialization,
//  * loss, retry/timeout/exponential backoff, and per-frame abandonment,
//  * energy charged per activity through energy::EnergyLedger,
//  * graceful degradation: a node missing remote activations past the
//    layer deadline substitutes its last-known value (zero on first
//    contact) and flags the inference as degraded,
//  * fault::FaultInjector integration — a node dying mid-inference stops
//    transmitting and computing but never deadlocks the event loop.
//
// Conformance contract (locked down by tests/test_netexec_conformance.cpp):
// over ChannelConfig::ideal() with zero compute time and no faults, the
// executor reproduces execute_distributed bit-for-bit — identical logits,
// identical logical message set, identical MicroDeepHop trace multiset —
// because both walk the shared microdeep/unit_compute kernels in the same
// canonical order.
#pragma once

#include <cstdint>

#include "energy/device.hpp"
#include "fault/injector.hpp"
#include "microdeep/assignment.hpp"
#include "netexec/checkpoint.hpp"
#include "microdeep/unit_compute.hpp"
#include "ml/dataset.hpp"
#include "par/parallel.hpp"
#include "phy/airtime.hpp"

namespace zeiot::netexec {

using microdeep::NodeId;
using microdeep::UnitId;

/// Transport model of one WSN hop.
struct ChannelConfig {
  /// Independent loss probability per hop *attempt* (frames are re-drawn on
  /// every retry from a keyed substream, so realizations are coupled
  /// monotonically across loss levels: raising the probability can only
  /// turn successes into losses, never the reverse).
  double loss_per_hop = 0.0;
  /// Forwarding overhead added after each hop's airtime (queueing, turnaround).
  double hop_processing_s = 0.0;
  /// 802.15.4 O-QPSK airtime model for activation frames.
  phy::Dot154Phy phy{};
  /// MAC/NWK header bytes added to every activation payload.
  std::size_t header_bytes = 9;
  /// When >= 0, overrides the airtime model with a fixed per-hop latency
  /// (0 gives the zero-latency conformance channel).
  double fixed_hop_latency_s = -1.0;

  /// Airtime of one frame carrying `payload_bytes` of activations.
  double hop_latency_s(std::size_t payload_bytes) const;

  /// Zero-loss / zero-latency channel: the conformance configuration that
  /// must reproduce the ideal executor bit-for-bit.
  static ChannelConfig ideal();
};

struct NetExecConfig {
  ChannelConfig channel{};
  /// Retransmissions allowed per hop before the frame is abandoned.
  int max_retries = 3;
  /// First retry delay after a lost frame (no ACK within this window).
  double ack_timeout_s = 4e-3;
  /// Retry k waits ack_timeout_s * backoff_factor^k.
  double backoff_factor = 2.0;
  /// Per-unit MCU compute time (0 gives the zero-time conformance setup).
  double unit_compute_s = 100e-6;
  /// Energy-accounting duration of the initial sensing activity (does not
  /// affect timing; inputs are available at t = 0 like the ideal executor).
  double sense_s = 10e-3;
  /// Node computing unit layer k+1 gives up waiting for remote activations
  /// at absolute time (k+1) * layer_deadline_s and substitutes last-known
  /// values — the termination guarantee of the event loop.
  double layer_deadline_s = 0.25;
  /// Seed of the keyed per-(frame, hop, attempt) loss substreams.
  std::uint64_t seed = 1;
  energy::ActivityCosts costs{};
  /// Null-sink observability (metrics + MicroDeepHop/PacketTx/PacketRx
  /// traces) following the library convention.
  obs::Observability* obs = nullptr;
  /// Optional fault injector; node death/drop/corrupt/delay are honored at
  /// plan time fault_time_offset + sim.now().  run() only — evaluate()
  /// requires nullptr (the injector RNG is call-order coupled).
  fault::FaultInjector* fault = nullptr;
  double fault_time_offset = 0.0;
  /// Quantized activation transport: every inter-node frame carries ONE
  /// byte per channel instead of four.  Frames shrink (payload_bytes =
  /// channels * 1 + header), so airtime, tx/rx energy, and retry exposure
  /// all drop; the cost is that every value crossing the radio is snapped
  /// onto the symmetric int8 grid of its producing unit layer —
  /// clamp(round(v / s), -127, 127) * s with s = act_scales[unit layer].
  /// Same-node activations never touch the radio and stay exact, as do
  /// locally substituted values; remote substitutes are snapped because the
  /// consumer only ever saw the quantized stream.  Requires one positive
  /// scale per unit layer (microdeep::calibrate_unit_activation_scales).
  bool quantized_transport = false;
  std::vector<float> act_scales;
  /// NVM checkpointing (see netexec/checkpoint.hpp).  With a policy other
  /// than None, fault Brownout windows suspend a node instead of killing
  /// its round: in-flight work rolls back to the last durable commit, the
  /// wake-up receiver latches arriving frames into NVM, and on revival the
  /// node resumes from its checkpoint — layer deadlines shift past the
  /// last revival so the inference completes correctly, late.  Sensed
  /// inputs and the delivered inbox are always committed (they cannot be
  /// recomputed); compute outputs follow the policy.
  CheckpointConfig checkpoint{};
  /// Harvest-aware scheduling.  When enabled, each node accrues capacitor
  /// charge at harvest_watt (scaled by HarvestDrought windows) and a unit
  /// layer's evaluation is deferred until the capacitor covers
  /// compute + checkpoint + first-attempt TX; a deadline-forced compute
  /// with an empty capacitor is starved (units stay invalid, downstream
  /// substitutes).  Brownout windows are honoured (suspend/wipe semantics
  /// per the checkpoint policy) whenever checkpointing OR harvesting is on;
  /// the all-default configuration is bit-identical to the previous
  /// executor.
  HarvestConfig harvest{};
};

/// Latency attribution of one inference: a disjoint partition of the root
/// interval [0, latency_s] by activity, computed from the recorded
/// compute/airtime/backoff intervals with a priority sweep (overlaps
/// resolved compute > airtime > retry; uncovered time is idle).  The four
/// components always sum to latency_s up to floating-point association —
/// well under one virtual tick (1 us).
struct PhaseBreakdown {
  double compute_s = 0.0;  // >= 1 MCU busy computing units
  double airtime_s = 0.0;  // >= 1 radio transmitting (and not compute)
  double retry_s = 0.0;    // ARQ backoff wait only (no compute / airtime)
  double idle_s = 0.0;     // uncovered: queueing, turnaround, deadline slack
  /// NVM commit bursts (checkpointing only; stays 0.0 — and the phase lane
  /// stays four children — when the policy is None).  Declared last so the
  /// historical four-field aggregate initializers keep their meaning.
  double checkpoint_s = 0.0;

  double total_s() const {
    return compute_s + airtime_s + retry_s + idle_s + checkpoint_s;
  }
};

/// Outcome of one network-in-the-loop inference.
struct NetInferenceResult {
  ml::Tensor output;            // logits, shape (1, K)
  double latency_s = 0.0;       // last output unit available
  bool degraded = false;        // any activation substituted
  std::uint64_t messages = 0;         // logical (producer unit, consumer node)
  std::uint64_t transmissions = 0;    // per-hop frame attempts
  std::uint64_t retransmissions = 0;  // of those, retries after a loss
  std::uint64_t frames_lost = 0;      // frames abandoned after max_retries
  std::uint64_t late_frames = 0;      // delivered after the consumer computed
  std::uint64_t substitutions = 0;    // activations replaced by last-known
  double energy_j = 0.0;        // total across nodes
  double tx_energy_j = 0.0;
  double rx_energy_j = 0.0;
  double compute_energy_j = 0.0;
  double sense_energy_j = 0.0;
  /// Intermittent execution (all zero unless checkpoint/harvest enabled).
  std::uint64_t checkpoints = 0;       // NVM commit operations (incl. latches)
  std::uint64_t checkpoint_bytes = 0;  // bytes written across all commits
  std::uint64_t resumes = 0;           // brownout revivals restored from NVM
  std::uint64_t suspensions = 0;       // brownout windows entered
  std::uint64_t deferrals = 0;         // computes postponed awaiting harvest
  std::uint64_t starved = 0;           // deadline-forced computes skipped dry
  double checkpoint_energy_j = 0.0;    // ledger total of "checkpoint"
  /// Where the latency went (always computed; spans are optional).
  PhaseBreakdown breakdown{};
};

/// Dataset-level aggregate of evaluate().
struct NetEvalResult {
  double accuracy = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_energy_j = 0.0;
  double degraded_fraction = 0.0;
  double mean_retransmissions = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t frames_lost = 0;
  std::size_t samples = 0;
  /// Intermittent execution totals (zero when checkpointing is off).
  std::uint64_t checkpoints = 0;
  std::uint64_t resumes = 0;
  double mean_checkpoint_energy_j = 0.0;
  /// Per-phase latency percentiles over the sample population (each phase's
  /// per-inference duration sorted independently, same p50/p99 convention
  /// as the latency percentiles above).
  PhaseBreakdown p50_breakdown{};
  PhaseBreakdown p99_breakdown{};
  /// Per-sample end-to-end latencies in dataset index order — the raw
  /// population behind the percentiles, so fleet-level aggregation can
  /// compute exact percentiles across many deployments instead of
  /// approximating from per-deployment summaries.
  std::vector<double> latencies_s;
};

class NetworkExecutor {
 public:
  /// `net` must be the network `graph` was built from; all four references
  /// must outlive the executor.  The inter-node message plan is lowered
  /// once here and reused by every inference.
  NetworkExecutor(ml::Network& net, const microdeep::UnitGraph& graph,
                  const microdeep::Assignment& assignment,
                  const microdeep::WsnTopology& wsn, NetExecConfig cfg = {});

  /// Runs one (C,H,W) sample through the simulated network.  Sequential
  /// inferences share the last-known activation memory, so a degraded
  /// inference substitutes values from the previous one.
  NetInferenceResult run(const ml::Tensor& sample);

  /// Evaluates `data` (capped at `max_samples` when > 0) with one
  /// independent simulation per sample (seed split per index, no shared
  /// memory), chunked over `pool` — bit-identical for any ZEIOT_THREADS.
  /// Emits netexec.accuracy / netexec.p50_latency_s / netexec.p99_latency_s
  /// / netexec.energy_per_inference_j / netexec.degraded_fraction and
  /// netexec.breakdown.{compute,airtime,retry,idle}_{p50,p99}_s gauges
  /// (plus message counters and per-phase latency histograms) into cfg.obs.
  /// When cfg.obs has spans enabled, each sample records its causal span
  /// tree into a private per-slot recorder; the slots are merged into
  /// cfg.obs->spans() in index order, so the merged stream (and its
  /// digest) is bit-identical at any ZEIOT_THREADS — one root Inference
  /// span per sample.  Requires cfg.fault == nullptr.
  NetEvalResult evaluate(const ml::Dataset& data,
                         par::ThreadPool* pool = nullptr,
                         std::size_t max_samples = 0);

  /// Clears the last-known activation memory (fresh deployment).
  void reset_memory();

  const NetExecConfig& config() const { return cfg_; }

  /// Worst-case NVM checkpoint image per node (indexed by NodeId), as the
  /// executor will produce it — by construction equal to
  /// microdeep::compute_node_checkpoint_bytes for the same assignment.
  const std::vector<std::size_t>& nvm_footprint_bytes() const {
    return nvm_bytes_;
  }

 private:
  /// One logical activation message: the producer unit's channel vector,
  /// routed src_node -> dst_node over BFS shortest paths.
  struct Message {
    UnitId src = 0;
    NodeId src_node = 0;
    NodeId dst_node = 0;
    int hops = 0;
  };

  /// Static lowering of one produced unit layer (plan k: unit layer k ->
  /// unit layer k+1).
  struct LayerPlan {
    std::size_t net_layer = 0;  // index into net of the producing layer
    std::size_t in_layer = 0;   // consumed unit layer
    std::size_t out_layer = 0;  // produced unit layer
    bool relu_after = false;    // folded elementwise ReLU
    std::size_t payload_bytes = 0;  // activation bytes per message
    std::uint64_t first_uid = 0;    // global uid of messages[0]
    std::vector<Message> messages;  // canonical executor dedup order
    std::vector<std::vector<std::size_t>> out_msgs;  // per src node
    std::vector<std::vector<std::size_t>> in_msgs;   // per dst node
    std::vector<std::vector<UnitId>> local_srcs;     // per node, same-node deps
    std::vector<std::vector<UnitId>> units;          // produced units per node
  };

  void build_plans();
  /// `spans` (nullable) receives the causal span tree of this inference
  /// under a root Inference span with the given `trace_id` (by convention
  /// the inference's loss-substream seed, making trace ids seed-derived
  /// and stable across reruns and thread counts).
  NetInferenceResult run_impl(const ml::Tensor& sample, std::uint64_t seed,
                              obs::Observability* obs,
                              fault::FaultInjector* fault,
                              microdeep::ActTable* memory,
                              obs::SpanRecorder* spans = nullptr,
                              std::uint64_t trace_id = 0) const;
  /// Upper bound on spans one run_impl can record (used to size per-slot
  /// recorders in evaluate() so nothing is dropped).
  std::size_t spans_per_run_bound() const;

  ml::Network& net_;
  const microdeep::UnitGraph& graph_;
  const microdeep::Assignment& assignment_;
  const microdeep::WsnTopology& wsn_;
  NetExecConfig cfg_;
  std::vector<LayerPlan> plans_;
  std::vector<std::size_t> nvm_bytes_;  // worst-case checkpoint image per node
  microdeep::ActTable memory_;  // last-known activations across run() calls
  std::uint64_t runs_ = 0;      // run() counter, keys per-inference substreams
};

}  // namespace zeiot::netexec
