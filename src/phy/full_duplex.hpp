// In-band full-duplex access point model (paper Sec. IV.A, Fig. 4 and
// refs [21][22]): the AP transmits the carrier and *simultaneously*
// receives the tag's backscatter on the same frequency.  What limits the
// uplink is the AP's own transmit signal leaking into its receiver; the
// self-interference cancellation (SIC) chain — antenna isolation, analog
// cancellation, digital cancellation — determines the residual
// interference floor and therefore the backscatter SINR and range.
#pragma once

#include "radio/link.hpp"

namespace zeiot::phy {

struct FullDuplexAp {
  double tx_power_dbm = 20.0;     // 100 mW carrier
  /// SIC chain, in dB of suppression.
  double antenna_isolation_db = 40.0;
  double analog_cancellation_db = 30.0;
  double digital_cancellation_db = 40.0;
  radio::RxSpec rx{};

  /// Total self-interference suppression.
  double total_sic_db() const;
  /// Residual self-interference power at the receiver input (dBm).
  double residual_si_dbm() const;
};

/// SINR (dB) of a backscatter uplink at a full-duplex AP: the tag at
/// `d_tag_m` reflects the AP's own carrier (monostatic dyadic channel),
/// competing against the residual self-interference plus thermal noise.
double backscatter_sinr_db(const FullDuplexAp& ap,
                           const radio::PathLossModel& model, double d_tag_m,
                           double reflection_loss_db = 6.0);

/// Largest tag distance at which the uplink SINR stays at or above
/// `required_sinr_db` (binary search over [0.1, max_search_m]; returns 0
/// if even the closest range fails).
double backscatter_range_m(const FullDuplexAp& ap,
                           const radio::PathLossModel& model,
                           double required_sinr_db,
                           double reflection_loss_db = 6.0,
                           double max_search_m = 100.0);

}  // namespace zeiot::phy
