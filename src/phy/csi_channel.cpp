#include "phy/csi_channel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace zeiot::phy {

Cx& CsiMatrix::at(int k, int r, int t) {
  ZEIOT_CHECK(k >= 0 && k < subcarriers && r >= 0 && r < rx && t >= 0 && t < tx);
  return data[(static_cast<std::size_t>(k) * rx + r) * tx + t];
}

Cx CsiMatrix::at(int k, int r, int t) const {
  ZEIOT_CHECK(k >= 0 && k < subcarriers && r >= 0 && r < rx && t >= 0 && t < tx);
  return data[(static_cast<std::size_t>(k) * rx + r) * tx + t];
}

namespace {

/// Perpendicular distance from point p to segment a-b, used for LoS
/// blockage detection.
double seg_distance(Point2D a, Point2D b, Point2D p) {
  const double dx = b.x - a.x, dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return distance(a, p);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return distance({a.x + t * dx, a.y + t * dy}, p);
}

struct Ray {
  double length_m;
  double amplitude;
};

}  // namespace

CsiMatrix generate_csi(const CsiEnvironment& env, Point2D body,
                       double body_jitter_m, Rng& rng) {
  ZEIOT_CHECK_MSG(env.ap_antennas > 0 && env.client_antennas > 0,
                  "antenna counts must be > 0");
  ZEIOT_CHECK_MSG(env.subcarriers > 0, "need subcarriers");
  ZEIOT_CHECK_MSG(body_jitter_m >= 0.0, "jitter must be >= 0");

  // Jittered body position for this snapshot.
  const Point2D b{body.x + rng.normal(0.0, body_jitter_m),
                  body.y + rng.normal(0.0, body_jitter_m)};

  CsiMatrix h;
  h.subcarriers = env.subcarriers;
  h.rx = env.client_antennas;
  h.tx = env.ap_antennas;
  h.data.assign(static_cast<std::size_t>(env.subcarriers) * h.rx * h.tx,
                Cx{0.0, 0.0});

  // Linear arrays along the y axis.
  auto ap_elem = [&](int t) {
    return Point2D{env.ap.x,
                   env.ap.y + (t - (env.ap_antennas - 1) / 2.0) *
                                  env.antenna_spacing_m};
  };
  auto cl_elem = [&](int r) {
    return Point2D{env.client.x,
                   env.client.y + (r - (env.client_antennas - 1) / 2.0) *
                                      env.antenna_spacing_m};
  };

  for (int r = 0; r < h.rx; ++r) {
    for (int t = 0; t < h.tx; ++t) {
      const Point2D pa = ap_elem(t);
      const Point2D pc = cl_elem(r);

      std::vector<Ray> rays;
      // LoS, attenuated when the body stands within 0.4 m of the path.
      {
        const double d = distance(pa, pc);
        double amp = 1.0 / std::max(0.5, d);
        if (seg_distance(pa, pc, b) < 0.4) amp *= env.body_blockage;
        rays.push_back({d, amp});
      }
      // First-order wall reflections via image sources.
      const Point2D images[4] = {
          {2.0 * env.room.x0 - pa.x, pa.y},  // left wall
          {2.0 * env.room.x1 - pa.x, pa.y},  // right wall
          {pa.x, 2.0 * env.room.y0 - pa.y},  // bottom wall
          {pa.x, 2.0 * env.room.y1 - pa.y},  // top wall
      };
      for (const Point2D& img : images) {
        const double d = distance(img, pc);
        rays.push_back({d, env.wall_reflection / std::max(0.5, d)});
      }
      // Body scatter path: AP -> body -> client.
      {
        const double d = distance(pa, b) + distance(b, pc);
        rays.push_back({d, env.body_reflection / std::max(0.5, d)});
      }

      for (int k = 0; k < env.subcarriers; ++k) {
        const double f = env.carrier_hz +
                         (k - env.subcarriers / 2) * env.subcarrier_spacing_hz;
        Cx acc{0.0, 0.0};
        for (const Ray& ray : rays) {
          const double tau = ray.length_m / kSpeedOfLight;
          const double phase = -2.0 * M_PI * f * tau;
          acc += ray.amplitude * Cx{std::cos(phase), std::sin(phase)};
        }
        // Additive measurement noise.
        acc += Cx{rng.normal(0.0, env.noise_sigma),
                  rng.normal(0.0, env.noise_sigma)};
        h.at(k, r, t) = acc;
      }
    }
  }
  return h;
}

}  // namespace zeiot::phy
