#include "phy/airtime.hpp"

#include "common/error.hpp"

namespace zeiot::phy {

namespace {
double payload_time(std::size_t bytes, double rate_bps) {
  ZEIOT_CHECK_MSG(rate_bps > 0.0, "data rate must be > 0");
  return static_cast<double>(bytes) * 8.0 / rate_bps;
}
}  // namespace

double Dot11Phy::frame_airtime_s(std::size_t payload_bytes) const {
  return preamble_s + payload_time(payload_bytes, data_rate_bps);
}

double Dot11Phy::exchange_airtime_s(std::size_t payload_bytes) const {
  return difs_s + frame_airtime_s(payload_bytes) + sifs_s + ack_s;
}

double Dot154Phy::frame_airtime_s(std::size_t payload_bytes) const {
  return preamble_s + payload_time(payload_bytes, data_rate_bps);
}

double BackscatterPhy::frame_airtime_s(std::size_t payload_bytes) const {
  return sync_s + payload_time(payload_bytes, data_rate_bps);
}

}  // namespace zeiot::phy
