// IEEE 802.11ac compressed beamforming feedback (explicit CSI feedback).
//
// A beamformee feeds back the right-singular matrix V of each subcarrier's
// channel, compressed as Givens-rotation angles (phi in [0, 2pi), psi in
// [0, pi/2]) and quantised per the standard's codebook.  The CSI learning
// system of the paper (ref [8]) extracts its 624 features from exactly
// these angles: 12 angles per subcarrier group x 52 groups for a 4x3 V.
#pragma once

#include <vector>

#include "phy/csi_channel.hpp"

namespace zeiot::phy {

/// Dense complex matrix, row-major, sized rows x cols.
struct CxMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<Cx> data;

  CxMatrix() = default;
  CxMatrix(int r, int c) : rows(r), cols(c), data(static_cast<std::size_t>(r) * c) {}
  Cx& at(int r, int c) { return data[static_cast<std::size_t>(r) * cols + c]; }
  Cx at(int r, int c) const { return data[static_cast<std::size_t>(r) * cols + c]; }
};

/// Top-`streams` right singular vectors of the rx-by-tx channel `h` at
/// subcarrier `k`: the tx-by-streams steering matrix V (via power iteration
/// with deflation on H^H H).
CxMatrix beamforming_v(const CsiMatrix& h, int k, int streams);

/// Givens-angle decomposition of V (Nr x Nc, Nr >= Nc).  Returns the
/// standard's angle sequence: for each column i, first the phi angles
/// (rows i..Nr-2), then the psi angles (rows i+1..Nr-1).
/// Size = sum_{i=0}^{min(Nc,Nr-1)-1} 2*(Nr-1-i).
std::vector<double> givens_angles(const CxMatrix& v);

/// Reconstructs V from angles (inverse of givens_angles, up to the
/// per-column phase that compression legitimately discards).
CxMatrix reconstruct_v(const std::vector<double>& angles, int nr, int nc);

/// Codebook quantisation of the standard: phi with `bits_phi` bits over
/// [0, 2pi), psi with `bits_psi` bits over [0, pi/2].  Returns the
/// *reconstructed* (dequantised) angle.
double quantize_phi(double phi, int bits_phi);
double quantize_psi(double psi, int bits_psi);

struct FeedbackConfig {
  int streams = 3;
  int bits_phi = 9;  // SU-MIMO codebook (psi, phi) = (7, 9)
  int bits_psi = 7;
};

/// Full feedback pipeline for one CSI snapshot: per-subcarrier V ->
/// Givens angles -> quantisation -> concatenated feature vector.
/// For a 4-antenna AP, 3 streams and 52 subcarriers this yields the
/// 624-dimensional feature vector of the paper's CSI learning system.
std::vector<double> compressed_feedback_features(const CsiMatrix& h,
                                                 const FeedbackConfig& cfg = {});

}  // namespace zeiot::phy
