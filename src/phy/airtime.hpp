// Frame airtime models for the PHYs involved in the coexistence study
// (paper Sec. IV.A): IEEE 802.11 OFDM, IEEE 802.15.4 O-QPSK, and the
// backscatter uplink whose bit rate is far below both.
#pragma once

#include <cstddef>

namespace zeiot::phy {

/// IEEE 802.11 (OFDM, 20 MHz) timing parameters.
struct Dot11Phy {
  double data_rate_bps = 54e6;
  double preamble_s = 20e-6;   // PLCP preamble + header
  double sifs_s = 16e-6;
  double difs_s = 34e-6;
  double slot_s = 9e-6;
  double ack_s = 44e-6;        // ACK frame incl. preamble at basic rate

  /// Airtime of a data frame of `payload_bytes` (preamble + payload).
  double frame_airtime_s(std::size_t payload_bytes) const;
  /// Complete exchange: DIFS + data + SIFS + ACK.
  double exchange_airtime_s(std::size_t payload_bytes) const;
};

/// IEEE 802.15.4 2.4 GHz O-QPSK timing (250 kbps, 32-chip DSSS).
struct Dot154Phy {
  double data_rate_bps = 250e3;
  double preamble_s = 160e-6;  // 4-byte preamble + SFD at 62.5 ksym/s
  double lifs_s = 640e-6;

  double frame_airtime_s(std::size_t payload_bytes) const;
};

/// Backscatter uplink: tags modulate at a low chip rate on top of an
/// ambient carrier.  Defaults give 250 kbps effective — the middle of the
/// paper's regimes (kbps RFID up to "several Mbps" Wi-Fi backscatter) —
/// so a small sensor reading fits within one carrier packet.
struct BackscatterPhy {
  double data_rate_bps = 250e3;
  double sync_s = 50e-6;  // synchronisation header while the carrier settles

  double frame_airtime_s(std::size_t payload_bytes) const;
};

}  // namespace zeiot::phy
