#include "phy/full_duplex.hpp"

#include "common/units.hpp"

namespace zeiot::phy {

double FullDuplexAp::total_sic_db() const {
  ZEIOT_CHECK_MSG(antenna_isolation_db >= 0.0 &&
                      analog_cancellation_db >= 0.0 &&
                      digital_cancellation_db >= 0.0,
                  "SIC stages must be >= 0 dB");
  return antenna_isolation_db + analog_cancellation_db +
         digital_cancellation_db;
}

double FullDuplexAp::residual_si_dbm() const {
  return tx_power_dbm - total_sic_db();
}

double backscatter_sinr_db(const FullDuplexAp& ap,
                           const radio::PathLossModel& model, double d_tag_m,
                           double reflection_loss_db) {
  // Monostatic dyadic channel: the carrier travels AP -> tag -> AP.
  const auto uplink = radio::compute_backscatter_link(
      model, {ap.tx_power_dbm, 0.0}, ap.rx, d_tag_m, d_tag_m,
      reflection_loss_db);
  const double noise_dbm = uplink.noise_dbm;
  return radio::sinr_db(uplink.rx_power_dbm, ap.residual_si_dbm(), noise_dbm);
}

double backscatter_range_m(const FullDuplexAp& ap,
                           const radio::PathLossModel& model,
                           double required_sinr_db,
                           double reflection_loss_db, double max_search_m) {
  ZEIOT_CHECK_MSG(max_search_m > 0.1, "search range too small");
  // SINR is monotone decreasing in distance: binary search the boundary.
  if (backscatter_sinr_db(ap, model, 0.1, reflection_loss_db) <
      required_sinr_db) {
    return 0.0;
  }
  double lo = 0.1, hi = max_search_m;
  if (backscatter_sinr_db(ap, model, hi, reflection_loss_db) >=
      required_sinr_db) {
    return hi;
  }
  for (int it = 0; it < 60; ++it) {
    const double mid = (lo + hi) / 2.0;
    if (backscatter_sinr_db(ap, model, mid, reflection_loss_db) >=
        required_sinr_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace zeiot::phy
