// Multipath MIMO-OFDM channel model producing per-subcarrier channel
// matrices — the synthetic stand-in for capturing real 802.11ac CSI
// feedback frames (paper Sec. IV.B, ref [8]).
//
// The environment is a rectangular room: rays are the line-of-sight path,
// first-order wall reflections (image method), and a scatterer for the
// human body whose position is the quantity the localization pipeline
// estimates.  Each ray contributes amplitude * exp(-j 2 pi f tau) per
// subcarrier and per antenna pair, so moving the body shifts both the
// amplitude and the phase structure of H — exactly the signal the
// compressed-beamforming angles encode.
#pragma once

#include <complex>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace zeiot::phy {

using Cx = std::complex<double>;

/// Channel matrices for all subcarriers: h[k] is rx_antennas x tx_antennas
/// (row-major).
struct CsiMatrix {
  int subcarriers = 0;
  int rx = 0;
  int tx = 0;
  std::vector<Cx> data;  // [k][r][t]

  Cx& at(int k, int r, int t);
  Cx at(int k, int r, int t) const;
};

struct CsiEnvironment {
  Rect room{0.0, 0.0, 8.0, 6.0};
  Point2D ap{0.5, 3.0};
  Point2D client{7.5, 3.0};
  /// Antenna element spacing (metres) for the AP and client linear arrays.
  double antenna_spacing_m = 0.06;
  int ap_antennas = 4;      // Nr of the fed-back V
  int client_antennas = 3;  // Nc (spatial streams)
  double carrier_hz = 5.21e9;   // 802.11ac channel 42
  double subcarrier_spacing_hz = 312.5e3;
  int subcarriers = 52;     // data subcarriers of a 20 MHz VHT symbol
  /// Reflection loss at walls (amplitude factor).
  double wall_reflection = 0.35;
  /// Scattering strength of a human body (amplitude factor at 1 m).
  double body_reflection = 0.5;
  /// Extra attenuation (amplitude) when the body blocks the LoS corridor.
  double body_blockage = 0.55;
  /// Measurement noise added to each H entry (std dev, relative).
  double noise_sigma = 0.02;
};

/// Generates one CSI snapshot.  `body` is the person's position;
/// `body_jitter_m` models posture/micro-movement (e.g. a walking person has
/// larger jitter, which the paper found *helps* classification).
CsiMatrix generate_csi(const CsiEnvironment& env, Point2D body,
                       double body_jitter_m, Rng& rng);

}  // namespace zeiot::phy
