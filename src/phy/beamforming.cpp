#include "phy/beamforming.hpp"

#include <cmath>

#include "common/error.hpp"

namespace zeiot::phy {

namespace {

/// A^H A for the rx-by-tx submatrix of subcarrier k (tx-by-tx Hermitian).
CxMatrix gram_matrix(const CsiMatrix& h, int k) {
  CxMatrix a(h.tx, h.tx);
  for (int i = 0; i < h.tx; ++i) {
    for (int j = 0; j < h.tx; ++j) {
      Cx acc{0.0, 0.0};
      for (int r = 0; r < h.rx; ++r) {
        acc += std::conj(h.at(k, r, i)) * h.at(k, r, j);
      }
      a.at(i, j) = acc;
    }
  }
  return a;
}

/// Dominant eigenvector of a Hermitian PSD matrix by power iteration.
std::vector<Cx> power_iteration(const CxMatrix& a, int iters = 200) {
  const int n = a.rows;
  std::vector<Cx> v(static_cast<std::size_t>(n));
  // Deterministic non-degenerate start.
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = Cx{1.0 + 0.1 * i, 0.05 * (i + 1)};
  }
  std::vector<Cx> w(static_cast<std::size_t>(n));
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < n; ++i) {
      Cx acc{0.0, 0.0};
      for (int j = 0; j < n; ++j) acc += a.at(i, j) * v[static_cast<std::size_t>(j)];
      w[static_cast<std::size_t>(i)] = acc;
    }
    double norm = 0.0;
    for (const Cx& x : w) norm += std::norm(x);
    norm = std::sqrt(norm);
    if (norm < 1e-30) break;  // null matrix (fully deflated)
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] =
        w[static_cast<std::size_t>(i)] / norm;
  }
  return v;
}

double eigenvalue_of(const CxMatrix& a, const std::vector<Cx>& v) {
  const int n = a.rows;
  Cx acc{0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    Cx row{0.0, 0.0};
    for (int j = 0; j < n; ++j) row += a.at(i, j) * v[static_cast<std::size_t>(j)];
    acc += std::conj(v[static_cast<std::size_t>(i)]) * row;
  }
  return acc.real();
}

}  // namespace

CxMatrix beamforming_v(const CsiMatrix& h, int k, int streams) {
  ZEIOT_CHECK_MSG(k >= 0 && k < h.subcarriers, "subcarrier out of range");
  ZEIOT_CHECK_MSG(streams >= 1 && streams <= h.tx && streams <= h.rx,
                  "streams must be in [1, min(rx,tx)]");
  CxMatrix a = gram_matrix(h, k);
  CxMatrix v(h.tx, streams);
  for (int s = 0; s < streams; ++s) {
    const auto vec = power_iteration(a);
    const double lambda = eigenvalue_of(a, vec);
    for (int i = 0; i < h.tx; ++i) v.at(i, s) = vec[static_cast<std::size_t>(i)];
    // Deflate: a -= lambda * vec vec^H.
    for (int i = 0; i < h.tx; ++i) {
      for (int j = 0; j < h.tx; ++j) {
        a.at(i, j) -= lambda * vec[static_cast<std::size_t>(i)] *
                      std::conj(vec[static_cast<std::size_t>(j)]);
      }
    }
  }
  return v;
}

std::vector<double> givens_angles(const CxMatrix& v_in) {
  const int nr = v_in.rows, nc = v_in.cols;
  ZEIOT_CHECK_MSG(nr >= nc && nc >= 1, "V must be tall (Nr >= Nc >= 1)");
  CxMatrix v = v_in;

  // Step 0: make the last row real non-negative — V := V * Dtilde, a
  // per-column phase the beamformer never needs.
  for (int c = 0; c < nc; ++c) {
    const double ph = std::arg(v.at(nr - 1, c));
    const Cx rot{std::cos(-ph), std::sin(-ph)};
    for (int r = 0; r < nr; ++r) v.at(r, c) *= rot;
  }

  std::vector<double> angles;
  const int steps = std::min(nc, nr - 1);
  for (int i = 0; i < steps; ++i) {
    // Phi angles: remove phases of column i, rows i..nr-2 (last row is
    // already real) by premultiplying D_i^H.
    for (int l = i; l < nr - 1; ++l) {
      double phi = std::arg(v.at(l, i));
      if (phi < 0.0) phi += 2.0 * M_PI;
      angles.push_back(phi);
      const Cx rot{std::cos(-phi), std::sin(-phi)};
      for (int c = i; c < nc; ++c) v.at(l, c) *= rot;
    }
    // Psi angles: Givens rotations zeroing column i below the diagonal.
    for (int l = i + 1; l < nr; ++l) {
      const double x = v.at(i, i).real();
      const double y = v.at(l, i).real();
      const double r = std::hypot(x, y);
      double psi = r > 0.0 ? std::atan2(y, x) : 0.0;
      if (psi < 0.0) psi = 0.0;  // numerical guard; entries are >= 0
      angles.push_back(psi);
      const double cs = std::cos(psi), sn = std::sin(psi);
      // G(l,i)^T applied to rows i and l.
      for (int c = i; c < nc; ++c) {
        const Cx vi = v.at(i, c);
        const Cx vl = v.at(l, c);
        v.at(i, c) = cs * vi + sn * vl;
        v.at(l, c) = -sn * vi + cs * vl;
      }
    }
  }
  return angles;
}

CxMatrix reconstruct_v(const std::vector<double>& angles, int nr, int nc) {
  ZEIOT_CHECK_MSG(nr >= nc && nc >= 1, "V must be tall (Nr >= Nc >= 1)");
  // Expected angle count.
  std::size_t expected = 0;
  const int steps = std::min(nc, nr - 1);
  for (int i = 0; i < steps; ++i)
    expected += 2 * static_cast<std::size_t>(nr - 1 - i);
  ZEIOT_CHECK_MSG(angles.size() == expected,
                  "angle count " << angles.size() << " != expected " << expected);

  // V = prod_i [ D_i * prod_l G(l,i)^T ]^H applied to I_{nr x nc}; build by
  // applying the inverse operations in reverse order to the identity.
  CxMatrix v(nr, nc);
  for (int c = 0; c < nc; ++c) v.at(c, c) = Cx{1.0, 0.0};

  // Collect the operations in forward order first.
  struct Op {
    bool is_phi;
    int l;
    int i;
    double angle;
  };
  std::vector<Op> ops;
  std::size_t idx = 0;
  for (int i = 0; i < steps; ++i) {
    for (int l = i; l < nr - 1; ++l) ops.push_back({true, l, i, angles[idx++]});
    for (int l = i + 1; l < nr; ++l) ops.push_back({false, l, i, angles[idx++]});
  }
  // Inverse application in reverse order.
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (it->is_phi) {
      const Cx rot{std::cos(it->angle), std::sin(it->angle)};
      for (int c = 0; c < nc; ++c) v.at(it->l, c) *= rot;
    } else {
      const double cs = std::cos(it->angle), sn = std::sin(it->angle);
      for (int c = 0; c < nc; ++c) {
        const Cx vi = v.at(it->i, c);
        const Cx vl = v.at(it->l, c);
        v.at(it->i, c) = cs * vi - sn * vl;
        v.at(it->l, c) = sn * vi + cs * vl;
      }
    }
  }
  return v;
}

double quantize_phi(double phi, int bits_phi) {
  ZEIOT_CHECK_MSG(bits_phi >= 1 && bits_phi <= 16, "bits_phi in [1,16]");
  // Codebook centres: phi_k = k*pi/2^{b-1} + pi/2^b, k = 0..2^b - 1.
  const double step = M_PI / std::pow(2.0, bits_phi - 1);
  const double offset = M_PI / std::pow(2.0, bits_phi);
  double p = std::fmod(phi, 2.0 * M_PI);
  if (p < 0.0) p += 2.0 * M_PI;
  double k = std::round((p - offset) / step);
  const double levels = std::pow(2.0, bits_phi);
  if (k < 0.0) k = 0.0;
  if (k > levels - 1.0) k = levels - 1.0;
  return k * step + offset;
}

double quantize_psi(double psi, int bits_psi) {
  ZEIOT_CHECK_MSG(bits_psi >= 1 && bits_psi <= 16, "bits_psi in [1,16]");
  // Codebook centres: psi_k = k*pi/2^{b+1} + pi/2^{b+2}, k = 0..2^b - 1.
  const double step = M_PI / std::pow(2.0, bits_psi + 1);
  const double offset = M_PI / std::pow(2.0, bits_psi + 2);
  double p = psi;
  if (p < 0.0) p = 0.0;
  if (p > M_PI / 2.0) p = M_PI / 2.0;
  double k = std::round((p - offset) / step);
  const double levels = std::pow(2.0, bits_psi);
  if (k < 0.0) k = 0.0;
  if (k > levels - 1.0) k = levels - 1.0;
  return k * step + offset;
}

std::vector<double> compressed_feedback_features(const CsiMatrix& h,
                                                 const FeedbackConfig& cfg) {
  std::vector<double> features;
  const int steps = std::min(cfg.streams, h.tx - 1);
  std::size_t per_sc = 0;
  for (int i = 0; i < steps; ++i)
    per_sc += 2 * static_cast<std::size_t>(h.tx - 1 - i);
  features.reserve(per_sc * static_cast<std::size_t>(h.subcarriers));
  for (int k = 0; k < h.subcarriers; ++k) {
    const CxMatrix v = beamforming_v(h, k, cfg.streams);
    const auto angles = givens_angles(v);
    // Angle order per column i: first (h.tx-1-i) phis, then as many psis.
    std::size_t idx = 0;
    for (int i = 0; i < steps; ++i) {
      const int nphi = h.tx - 1 - i;
      for (int a = 0; a < nphi; ++a)
        features.push_back(quantize_phi(angles[idx++], cfg.bits_phi));
      for (int a = 0; a < nphi; ++a)
        features.push_back(quantize_psi(angles[idx++], cfg.bits_psi));
    }
  }
  return features;
}

}  // namespace zeiot::phy
