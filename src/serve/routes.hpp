// The five serving routes: one per trained context-recognition pipeline
// of the paper's experiment suite.
//
//  * E1Temperature — the lounge temperature CNN (17x25 grid, 50-node
//    jittered-grid WSN); batched Network::forward over zeiot::par.
//  * E2Fall        — the IR-array fall-detection CNN (10x10x10 windows,
//    100-node grid WSN); batched Network::forward.
//  * E3Congestion  — railway-car congestion from Bluetooth RSSI
//    (Gaussian-NB likelihood voting over precomputed trip scenarios).
//  * E4RoomCount   — room people-count from 802.15.4 RSSI deviations
//    (Gaussian NB over precomputed measurement rounds).
//  * E5Csi         — device-free localization from beamforming feedback
//    (standardized kNN over captured CSI feature bursts).
//
// Construction follows the fleet-template pattern: everything immutable —
// trained estimators, CNN weights, unit graphs, topology variants, request
// sample pools — is built ONCE from fixed seeds and shared by every
// request.  The RouteSet is non-copyable and lives behind a unique_ptr so
// internal pointers (none today, but the unit graphs are bind targets for
// cached plans) keep stable addresses.
//
// The CNN routes carry topology VARIANTS: a request names which of the
// route's deployments it targets, and the server resolves that deployment's
// unit-assignment plan through the LRU PlanCache keyed by
// WsnTopology::digest().  Digests are precomputed here so the request hot
// path never re-hashes a topology.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "microdeep/unit_graph.hpp"
#include "microdeep/wsn.hpp"
#include "ml/dataset.hpp"
#include "ml/knn.hpp"
#include "ml/network.hpp"
#include "ml/quantize.hpp"
#include "ml/standardize.hpp"
#include "sensing/rssi/room_count.hpp"
#include "sensing/rssi/train_car.hpp"

namespace zeiot::serve {

enum class Route : std::uint8_t {
  E1Temperature = 0,
  E2Fall = 1,
  E3Congestion = 2,
  E4RoomCount = 3,
  E5Csi = 4,
};

inline constexpr std::size_t kNumRoutes = 5;

/// Stable lowercase name used in metrics labels and reports.
const char* route_name(Route r);

struct RouteSetConfig {
  /// Topology variants per CNN route (distinct jittered deployments, each
  /// a distinct plan-cache key).
  std::size_t e1_variants = 3;
  std::size_t e2_variants = 3;
  /// E3: training trips per congestion level and precomputed request
  /// scenarios.
  int e3_train_trips_per_level = 12;
  std::size_t e3_scenarios = 24;
  /// E4: training rounds per people count and precomputed request rounds.
  int e4_train_rounds_per_count = 10;
  std::size_t e4_measurements = 48;
  /// E5: CSI frames captured per position for the train and request pools
  /// (>= 4 each; the pools use different capture seeds).
  int e5_frames_per_position = 4;
  /// Base seed of all route-local randomness (pool draws, variants).
  std::uint64_t seed = 99;
  /// Worker pool for batched CNN forwards (null = par::global_pool()).
  par::ThreadPool* pool = nullptr;
  /// Serve the CNN routes (E1/E2) through an int8 QuantizedNetwork built at
  /// construction, calibrated on each route's own request pool.  The float
  /// network is kept — it still backs the unit graph and plan machinery —
  /// but execute() runs the quantized forward.  Non-CNN routes are
  /// unaffected.
  bool quantize_cnn = false;
};

/// One CNN route's immutable context.
struct CnnRoute {
  CnnRoute(ml::Network n, std::vector<int> s, ml::Dataset p,
           std::vector<microdeep::WsnTopology> vars)
      : net(std::move(n)),
        shape(std::move(s)),
        graph(microdeep::UnitGraph::build(net, shape)),
        pool(std::move(p)),
        variants(std::move(vars)) {
    variant_digests.reserve(variants.size());
    for (const auto& w : variants) variant_digests.push_back(w.digest());
  }

  ml::Network net;  // fixed-seed feasible CNN (untrained: serving exercises
                    // the execution path, not the accuracy claims)
  std::vector<int> shape;
  microdeep::UnitGraph graph;
  ml::Dataset pool;  // request sample pool (fixed-seed datagen)
  std::vector<microdeep::WsnTopology> variants;
  std::vector<std::uint64_t> variant_digests;  // digest per variant
  /// Int8 serving path (RouteSetConfig::quantize_cnn): built once from the
  /// float net, calibrated on `pool`.  Null when quantization is off.
  std::unique_ptr<ml::QuantizedNetwork> qnet;
};

/// Immutable shared context of all five routes.
struct RouteSet {
  RouteSetConfig cfg;

  CnnRoute e1;
  CnnRoute e2;

  // E3: trained congestion estimator + precomputed trip scenarios with
  // their (deterministic) position posteriors.
  sensing::rssi::TrainConfig e3_cfg;
  sensing::rssi::CongestionEstimator e3_estimator;
  std::vector<sensing::rssi::TrainScenario> e3_scenarios;
  std::vector<std::vector<sensing::rssi::PositionEstimate>> e3_positions;

  // E4: trained count estimator + precomputed measurement rounds.
  sensing::rssi::RoomConfig e4_cfg;
  sensing::rssi::RoomCountEstimator e4_estimator;
  std::vector<sensing::rssi::RoomMeasurement> e4_measurements;

  // E5: standardized kNN over CSI captures + request feature pool.
  ml::Standardizer e5_std;
  ml::KnnClassifier e5_knn;
  ml::FeatureMatrix e5_pool;

  RouteSet(const RouteSetConfig& c);
  RouteSet(const RouteSet&) = delete;
  RouteSet& operator=(const RouteSet&) = delete;

  /// Number of request-pool samples of a route (valid `Request::sample`
  /// values are [0, size)).
  std::size_t pool_size(Route r) const;
  /// Topology variants of a route (1 for non-CNN routes: they have a
  /// single implicit deployment and no plan).
  std::size_t num_variants(Route r) const;
  /// True for routes whose dispatch resolves a unit-assignment plan.
  bool uses_plans(Route r) const {
    return r == Route::E1Temperature || r == Route::E2Fall;
  }
  const CnnRoute& cnn(Route r) const;
  CnnRoute& cnn(Route r);

  /// Rebinds the worker pool used by batched execution (null =
  /// par::global_pool()).  Results are worker-count independent, so this
  /// never changes labels — the thread-identity conformance tests flip it
  /// between runs to prove exactly that.
  void set_pool(par::ThreadPool* pool);

  /// Executes one batch of same-route requests (sample indices into the
  /// route's pool) and returns one label per request, in order:
  /// CNN argmax class (E1/E2), packed per-car congestion levels (E3),
  /// estimated people count (E4), predicted position (E5).  Batched
  /// Network::forward runs over the configured pool; E5 items fan out via
  /// par::parallel_for into per-item slots.  Deterministic at any worker
  /// count.
  std::vector<int> execute(Route r, const std::vector<std::uint32_t>& samples);
};

/// Builds the full route set from fixed seeds (expensive: trains the NB /
/// kNN estimators and synthesizes every request pool).
std::unique_ptr<RouteSet> make_routes(const RouteSetConfig& cfg = {});

}  // namespace zeiot::serve
