#include "serve/workload.hpp"

#include <cmath>

#include "common/error.hpp"

namespace zeiot::serve {

std::vector<Request> generate_workload(const WorkloadConfig& cfg,
                                       const RouteSet& routes) {
  ZEIOT_CHECK_MSG(cfg.mean_rate_per_s > 0.0, "mean rate must be positive");
  ZEIOT_CHECK_MSG(cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude < 1.0,
                  "diurnal amplitude must be in [0, 1)");
  double mix_total = 0.0;
  for (const double w : cfg.route_mix) {
    ZEIOT_CHECK_MSG(w >= 0.0, "route mix weights must be >= 0");
    mix_total += w;
  }
  ZEIOT_CHECK_MSG(mix_total > 0.0, "route mix must have positive mass");

  Rng rng(cfg.seed);
  std::vector<Request> out;
  out.reserve(cfg.num_requests);
  double t = 0.0;
  int burst_left = 0;
  for (std::size_t i = 0; i < cfg.num_requests; ++i) {
    // Instantaneous rate at the current time: diurnal sinusoid, scaled up
    // while a burst is active.
    double rate =
        cfg.mean_rate_per_s *
        (1.0 + cfg.diurnal_amplitude *
                   std::sin(2.0 * M_PI * t / cfg.diurnal_period_s));
    if (burst_left > 0) {
      rate *= cfg.burst_speedup;
      --burst_left;
    } else if (rng.uniform() < cfg.burst_prob) {
      burst_left = cfg.burst_len;
    }
    t += rng.exponential(rate);

    // Route from the mix, payload uniform over the route's pool/variants.
    const double pickv = rng.uniform() * mix_total;
    double acc = 0.0;
    std::size_t ri = kNumRoutes - 1;
    for (std::size_t r = 0; r < kNumRoutes; ++r) {
      acc += cfg.route_mix[r];
      if (pickv < acc) {
        ri = r;
        break;
      }
    }
    const Route route = static_cast<Route>(ri);

    Request req;
    req.id = i;
    req.route = route;
    req.arrival_s = t;
    req.sample = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(routes.pool_size(route)) - 1));
    if (routes.uses_plans(route)) {
      req.variant = static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(routes.num_variants(route)) - 1));
    }
    out.push_back(req);
  }
  return out;
}

}  // namespace zeiot::serve
