// Admission control for the serving front-end: a token bucket on the
// virtual arrival clock.
//
// The bucket polices the long-run request rate while absorbing bursts up
// to its depth — the standard shape for an open-loop service that must
// shed load gracefully instead of letting queues grow without bound.
// Refill happens lazily at each take() from the elapsed virtual time, so
// the bucket is a pure function of the (deterministic) arrival timestamp
// sequence: same workload, same shed decisions, bit for bit, at any
// ZEIOT_THREADS.  No wall clock is ever consulted.
#pragma once

#include <algorithm>

namespace zeiot::serve {

class TokenBucket {
 public:
  /// `rate_per_s` tokens accrue per virtual second up to `burst` (the
  /// bucket starts full).  A non-positive rate never admits; a huge rate
  /// effectively disables policing.
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Takes one token at virtual time `t` (monotone non-decreasing across
  /// calls).  Returns false — shed — when the bucket is empty.
  bool try_take(double t) {
    tokens_ = std::min(burst_, tokens_ + (t - last_t_) * rate_);
    last_t_ = t;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_t_ = 0.0;
};

}  // namespace zeiot::serve
