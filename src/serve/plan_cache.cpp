#include "serve/plan_cache.hpp"

#include "common/error.hpp"

namespace zeiot::serve {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  ZEIOT_CHECK_MSG(capacity_ >= 1, "plan cache capacity must be >= 1");
}

PlanCache::Ensured PlanCache::ensure(
    std::uint64_t digest, const std::function<CachedPlan()>& build) {
  const auto it = index_.find(digest);
  if (it != index_.end()) {
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return {&*it->second, true};
  }
  ++misses_;
  if (order_.size() >= capacity_) {
    const auto victim = std::prev(order_.end());
    index_.erase(victim->topology_digest);
    order_.erase(victim);
    ++evictions_;
  }
  CachedPlan plan = build();
  ZEIOT_CHECK_MSG(plan.topology_digest == digest,
                  "plan builder returned digest " << plan.topology_digest
                                                  << " for key " << digest);
  order_.push_front(std::move(plan));
  index_.emplace(digest, order_.begin());
  return {&order_.front(), false};
}

const CachedPlan* PlanCache::find(std::uint64_t digest) const {
  const auto it = index_.find(digest);
  return it == index_.end() ? nullptr : &*it->second;
}

double PlanCache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace zeiot::serve
