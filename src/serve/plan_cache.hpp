// LRU cache of unit-assignment search results, keyed by the canonical
// WsnTopology::digest().
//
// The assignment search (microdeep/search.hpp) is the expensive step of
// bringing up a context-recognition deployment: a portfolio of heuristic
// candidates scored by full communication-cost evaluations.  A serving
// front-end sees the same few deployments over and over — every request
// against a structurally identical topology can reuse the plan found the
// first time.  Two rules make that reuse safe:
//
//  * the KEY is the topology's structural digest.  Equal digests mean
//    bitwise-identical deployments (positions, area, radius), so a cached
//    plan applies to a topology REBUILT from the same seed/parameters —
//    the cache never needs the original WsnTopology object alive;
//  * the VALUE is only the portable state of the search result: the raw
//    unit->node map plus its scores.  No pointer into the source graph or
//    topology is retained (Assignment holds a UnitGraph*, so caching an
//    Assignment directly would dangle the moment the search-time graph
//    dies).  `CachedPlan::bind()` reconstructs an Assignment against
//    whatever long-lived graph the route owns.
//
// Determinism: lookup order is driven by the (deterministic) request
// stream, the LRU list evolves as a pure function of that order, and the
// builder itself is the deterministic search — so hit/miss/eviction
// counts are bit-identical across reruns and worker counts.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "microdeep/assignment.hpp"

namespace zeiot::serve {

/// The portable result of one assignment search: everything needed to
/// re-apply the winning plan to a structurally identical deployment,
/// nothing that ties it to the objects the search ran against.
struct CachedPlan {
  /// WsnTopology::digest() of the deployment this plan was searched for.
  std::uint64_t topology_digest = 0;
  /// Winning unit->node map in UnitId order (Assignment::unit_map()).
  std::vector<microdeep::NodeId> unit_to_node;
  /// Scores of the winning candidate (peak / mean per-node comm cost).
  double max_cost = 0.0;
  double mean_cost = 0.0;
  /// Portfolio size the winner was chosen from.
  std::size_t candidates = 0;

  /// Rebinds the cached map to a route-owned unit graph.  `graph` must be
  /// built from the same network/shape the plan was searched with (the
  /// Assignment constructor checks the unit count).  The returned
  /// Assignment points into `graph`, never into cache storage.
  microdeep::Assignment bind(const microdeep::UnitGraph& graph) const {
    return microdeep::Assignment(&graph, unit_to_node);
  }
};

/// Bounded LRU map digest -> CachedPlan.  Not thread-safe (one per
/// server, like MetricsRegistry).
class PlanCache {
 public:
  /// `capacity` >= 1: the number of plans retained.
  explicit PlanCache(std::size_t capacity);

  struct Ensured {
    /// Valid until a later ensure() evicts this entry (never the call
    /// that returned it: the just-used entry is most-recently-used).
    const CachedPlan* plan = nullptr;
    bool hit = false;
  };

  /// Returns the cached plan for `digest`, building (and caching) it via
  /// `build` on a miss.  A miss at capacity evicts the least-recently-used
  /// plan.  `build` must return a plan whose topology_digest == digest.
  Ensured ensure(std::uint64_t digest,
                 const std::function<CachedPlan()>& build);

  /// Lookup without building or touching LRU order (tests / inspection).
  const CachedPlan* find(std::uint64_t digest) const;

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// hits / (hits + misses); 0 before any lookup.
  double hit_rate() const;

 private:
  std::size_t capacity_;
  /// Front = most recently used.  std::list keeps node addresses stable,
  /// so Ensured::plan survives later splices (only eviction invalidates).
  std::list<CachedPlan> order_;
  std::unordered_map<std::uint64_t, std::list<CachedPlan>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace zeiot::serve
