// Open-loop workload synthesis for the serving front-end: a Poisson
// arrival process modulated two ways —
//
//  * diurnal: the instantaneous rate follows a sinusoid around the mean
//    (the day/night swing of a deployed building's request traffic);
//  * bursty: a Markov-modulated on/off burst state multiplies the rate
//    while active (a fleet of sensors phase-locking after an event).
//
// Requests draw their route from a fixed mix and their payload uniformly
// from the route's request pool (the fixed-seed datagen sample pools of
// routes.hpp) — the serving tier sees the same synthetic distributions the
// experiment benches generate, just behind an arrival process.  The whole
// stream is a pure function of (config, pool sizes): deterministic,
// sorted by arrival, ids dense.
#pragma once

#include <array>
#include <vector>

#include "serve/serve.hpp"

namespace zeiot::serve {

struct WorkloadConfig {
  std::size_t num_requests = 20000;
  /// Mean arrival rate of the unmodulated process.
  double mean_rate_per_s = 120000.0;
  /// rate(t) = mean * (1 + amplitude * sin(2 pi t / period)), floored at
  /// (1 - amplitude); amplitude in [0, 1).
  double diurnal_amplitude = 0.6;
  double diurnal_period_s = 0.5;
  /// Burst state: entered with `burst_prob` per arrival, lasting
  /// ~`burst_len` arrivals, multiplying the rate by `burst_speedup`.
  double burst_prob = 0.004;
  int burst_len = 64;
  double burst_speedup = 6.0;
  /// Route mix (normalized internally).  Defaults favour the cheap
  /// NB routes, with the CNN and kNN routes as a costly minority.
  std::array<double, kNumRoutes> route_mix{0.04, 0.04, 0.24, 0.58, 0.10};
  std::uint64_t seed = 7;
};

/// Synthesizes the arrival stream against `routes` (pool sizes and variant
/// counts bound the per-request draws).
std::vector<Request> generate_workload(const WorkloadConfig& cfg,
                                       const RouteSet& routes);

}  // namespace zeiot::serve
