#include "serve/serve.hpp"

#include <deque>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace zeiot::serve {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Served: return "served";
    case Outcome::Shed: return "shed";
    case Outcome::Rejected: return "rejected";
  }
  return "unknown";
}

std::uint64_t ServeReport::digest() const {
  const auto mix = [](std::uint64_t& h, std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  const auto bits = [](double d) {
    std::uint64_t u;
    __builtin_memcpy(&u, &d, sizeof(u));
    return u;
  };
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Response& r : responses) {
    mix(h, r.id);
    mix(h, static_cast<std::uint64_t>(r.route));
    mix(h, static_cast<std::uint64_t>(r.outcome));
    mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r.label)));
    mix(h, bits(r.latency_s));
    mix(h, r.batch_seq);
    mix(h, r.plan_hit ? 1 : 0);
  }
  return h;
}

double ServeReport::latency_quantile(Route r, double q) const {
  std::vector<double> lat;
  for (const Response& resp : responses) {
    if (resp.route == r && resp.outcome == Outcome::Served) {
      lat.push_back(resp.latency_s);
    }
  }
  return nearest_rank_quantile(std::move(lat), q);
}

Server::Server(RouteSet* routes, ServeConfig cfg)
    : routes_(routes), cfg_(std::move(cfg)) {
  ZEIOT_CHECK_MSG(routes_ != nullptr, "server needs a route set");
  ZEIOT_CHECK_MSG(cfg_.queue_capacity >= 1, "queue capacity must be >= 1");
}

namespace {

/// Per-route metric handles resolved once per run (the emit sites then
/// cost one pointer test + one arithmetic op, never a map lookup).
struct RouteMetrics {
  obs::Counter* offered = nullptr;
  obs::Counter* served = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* slo_violations = nullptr;
  obs::HistogramMetric* latency = nullptr;
  obs::Summary* batch_size = nullptr;
};

}  // namespace

ServeReport Server::run(const std::vector<Request>& arrivals) {
  ServeReport rep;
  rep.responses.resize(arrivals.size());

  TokenBucket bucket(cfg_.admission_rate_per_s, cfg_.admission_burst);
  PlanCache cache(cfg_.plan_cache_capacity);
  std::array<std::deque<std::size_t>, kNumRoutes> queues;
  std::size_t queued = 0;
  double engine_free = 0.0;
  std::uint32_t batch_seq = 0;

  obs::Observability* obs = cfg_.obs;
  const bool spans = obs != nullptr && obs->spans_enabled();
  std::array<RouteMetrics, kNumRoutes> rm{};
  obs::Counter* c_offered = nullptr;
  obs::Counter* c_served = nullptr;
  obs::Counter* c_shed = nullptr;
  obs::Counter* c_rejected = nullptr;
  obs::Counter* c_batches = nullptr;
  obs::Gauge* g_depth = nullptr;
  if (obs != nullptr) {
    auto& m = obs->metrics();
    for (std::size_t r = 0; r < kNumRoutes; ++r) {
      const obs::Labels labels{{"route", route_name(static_cast<Route>(r))}};
      rm[r].offered = &m.counter("serve.offered", labels);
      rm[r].served = &m.counter("serve.served", labels);
      rm[r].shed = &m.counter("serve.shed", labels);
      rm[r].rejected = &m.counter("serve.rejected", labels);
      rm[r].slo_violations = &m.counter("serve.slo.violations", labels);
      rm[r].latency = &m.histogram("serve.latency_s", 0.0, 1.0, 64, labels);
      rm[r].batch_size = &m.summary("serve.batch.size", labels);
    }
    c_offered = &m.counter("serve.offered");
    c_served = &m.counter("serve.served");
    c_shed = &m.counter("serve.shed");
    c_rejected = &m.counter("serve.rejected");
    c_batches = &m.counter("serve.batches");
    g_depth = &m.gauge("serve.queue.depth");
  }

  std::size_t i = 0;
  const std::size_t n = arrivals.size();
  double prev_arrival = 0.0;

  const auto admit = [&](std::size_t idx) {
    const Request& r = arrivals[idx];
    ZEIOT_CHECK_MSG(r.id == idx, "request ids must be dense arrival indices");
    ZEIOT_CHECK_MSG(r.arrival_s >= prev_arrival,
                    "arrivals must be sorted by time");
    prev_arrival = r.arrival_s;
    const auto ri = static_cast<std::size_t>(r.route);
    ++rep.offered;
    if (obs != nullptr) {
      c_offered->inc();
      rm[ri].offered->inc();
    }
    Response& resp = rep.responses[idx];
    resp.id = r.id;
    resp.route = r.route;
    if (!bucket.try_take(r.arrival_s)) {
      resp.outcome = Outcome::Shed;
      ++rep.shed;
      if (obs != nullptr) {
        c_shed->inc();
        rm[ri].shed->inc();
      }
      return;
    }
    if (queued >= cfg_.queue_capacity) {
      resp.outcome = Outcome::Rejected;
      ++rep.rejected;
      if (obs != nullptr) {
        c_rejected->inc();
        rm[ri].rejected->inc();
      }
      return;
    }
    queues[ri].push_back(idx);
    ++queued;
    if (queued > rep.peak_queue_depth) rep.peak_queue_depth = queued;
    if (obs != nullptr) g_depth->set(static_cast<double>(queued));
  };

  // Longest-waiting head-of-line request wins; ties break toward the lower
  // route index.  Pure function of queue state.
  const auto pick_route = [&]() {
    std::size_t best = kNumRoutes;
    double best_arrival = 0.0;
    for (std::size_t r = 0; r < kNumRoutes; ++r) {
      if (queues[r].empty()) continue;
      const double a = arrivals[queues[r].front()].arrival_s;
      if (best == kNumRoutes || a < best_arrival) {
        best = r;
        best_arrival = a;
      }
    }
    return best;
  };

  std::vector<std::size_t> batch;
  std::vector<std::uint32_t> samples;
  while (i < n || queued > 0) {
    if (queued == 0) {
      admit(i++);
      continue;
    }
    const std::size_t ri = pick_route();
    const Route route = static_cast<Route>(ri);
    const double dispatch_t =
        std::max(engine_free, arrivals[queues[ri].front()].arrival_s);
    // Requests arriving up to the dispatch instant are admitted first so
    // they can coalesce into this batch (or a later one on their route).
    if (i < n && arrivals[i].arrival_s <= dispatch_t) {
      admit(i++);
      continue;
    }

    // Form the batch: the head-of-line prefix of the route's queue — for
    // CNN routes restricted to the head's deployment variant, since one
    // batched forward runs under one unit-assignment plan.
    const RouteParams& params = cfg_.routes[ri];
    const bool planned = routes_->uses_plans(route);
    const std::uint32_t variant = arrivals[queues[ri].front()].variant;
    batch.clear();
    samples.clear();
    while (!queues[ri].empty() && batch.size() < params.max_batch) {
      const std::size_t idx = queues[ri].front();
      if (planned && arrivals[idx].variant != variant) break;
      queues[ri].pop_front();
      --queued;
      batch.push_back(idx);
      samples.push_back(arrivals[idx].sample);
    }
    if (obs != nullptr) g_depth->set(static_cast<double>(queued));

    // Resolve the deployment's plan through the LRU cache; a miss runs the
    // real assignment search and charges the virtual build penalty.
    bool plan_hit = false;
    double service_s = params.batch_overhead_s +
                       static_cast<double>(batch.size()) * params.per_item_s;
    if (planned) {
      const CnnRoute& c = routes_->cnn(route);
      ZEIOT_CHECK_MSG(variant < c.variant_digests.size(),
                      "variant " << variant << " out of range on "
                                 << route_name(route));
      const std::uint64_t key = c.variant_digests[variant];
      const auto ensured = cache.ensure(key, [&] {
        const auto search = microdeep::search_assignment(
            c.graph, c.variants[variant], cfg_.search, obs);
        CachedPlan plan;
        plan.topology_digest = key;
        plan.unit_to_node = search.best.unit_map();
        plan.max_cost = search.best_max_cost;
        plan.mean_cost = search.best_mean_cost;
        plan.candidates = search.candidates.size();
        return plan;
      });
      plan_hit = ensured.hit;
      if (!plan_hit) service_s += params.plan_build_s;
    }

    const double completion_t = dispatch_t + service_s;
    engine_free = completion_t;

    const std::vector<int> labels = routes_->execute(route, samples);
    for (std::size_t j = 0; j < batch.size(); ++j) {
      const std::size_t idx = batch[j];
      Response& resp = rep.responses[idx];
      resp.outcome = Outcome::Served;
      resp.label = labels[j];
      resp.latency_s = completion_t - arrivals[idx].arrival_s;
      resp.batch_seq = batch_seq;
      resp.plan_hit = plan_hit;
      ++rep.served;
      if (obs != nullptr) {
        c_served->inc();
        rm[ri].served->inc();
        rm[ri].latency->observe(resp.latency_s);
        if (resp.latency_s > params.slo_s) rm[ri].slo_violations->inc();
      }
      if (spans) {
        auto& sp = obs->spans();
        const double arrival = arrivals[idx].arrival_s;
        const auto root =
            sp.add(obs::SpanKind::ServeRequest, arrival, completion_t, 0,
                   resp.id, static_cast<std::uint32_t>(ri), batch_seq,
                   resp.latency_s);
        sp.add(obs::SpanKind::ServeQueue, arrival, dispatch_t, root, resp.id,
               static_cast<std::uint32_t>(ri));
        sp.add(obs::SpanKind::ServeService, dispatch_t, completion_t, root,
               resp.id, static_cast<std::uint32_t>(ri),
               static_cast<std::uint32_t>(batch.size()));
      }
    }
    if (obs != nullptr) {
      c_batches->inc();
      rm[ri].batch_size->observe(static_cast<double>(batch.size()));
    }
    ++batch_seq;
    ++rep.batches;
    rep.horizon_s = completion_t;
  }

  rep.plan_hits = cache.hits();
  rep.plan_misses = cache.misses();
  rep.plan_evictions = cache.evictions();
  if (obs != nullptr) {
    auto& m = obs->metrics();
    m.counter("serve.plan_cache.hits").inc(static_cast<double>(cache.hits()));
    m.counter("serve.plan_cache.misses")
        .inc(static_cast<double>(cache.misses()));
    m.counter("serve.plan_cache.evictions")
        .inc(static_cast<double>(cache.evictions()));
    m.gauge("serve.plan_cache.hit_rate").set(cache.hit_rate());
    for (std::size_t r = 0; r < kNumRoutes; ++r) {
      const Route route = static_cast<Route>(r);
      const std::string prefix = std::string("serve.slo.") + route_name(route);
      m.gauge(prefix + ".p99_s").set(rep.latency_quantile(route, 0.99));
      m.gauge(prefix + ".p50_s").set(rep.latency_quantile(route, 0.50));
    }
  }
  return rep;
}

}  // namespace zeiot::serve
