#include "serve/routes.hpp"

#include "common/error.hpp"
#include "fleet/templates.hpp"
#include "par/parallel.hpp"
#include "phy/csi_channel.hpp"
#include "sensing/csi/localization.hpp"

namespace zeiot::serve {

const char* route_name(Route r) {
  switch (r) {
    case Route::E1Temperature: return "e1_temperature";
    case Route::E2Fall: return "e2_fall";
    case Route::E3Congestion: return "e3_congestion";
    case Route::E4RoomCount: return "e4_room_count";
    case Route::E5Csi: return "e5_csi";
  }
  return "unknown";
}

namespace {

// Substream keys of route-local randomness (arbitrary fixed tags; changing
// any is a behavior change for every server).
constexpr std::uint64_t kE1VariantKey = 0x5E10E101;
constexpr std::uint64_t kE2VariantKey = 0x5E10E102;
constexpr std::uint64_t kE3Key = 0x5E10E103;
constexpr std::uint64_t kE4Key = 0x5E10E104;
constexpr std::uint64_t kE5TrainKey = 0x5E10E105;
constexpr std::uint64_t kE5PoolKey = 0x5E10E106;
constexpr int kE5KnnK = 3;

/// Jittered deployments of one CNN route: structurally distinct topologies
/// over the same area/grid, each a distinct plan-cache key.  Variant
/// topologies are pure functions of (base seed, key, variant index), so a
/// topology rebuilt elsewhere from the same inputs digests identically —
/// what makes cached plans portable.
std::vector<microdeep::WsnTopology> make_variants(Rect area, int cols,
                                                  int rows, std::size_t count,
                                                  std::uint64_t base_seed,
                                                  std::uint64_t key) {
  ZEIOT_CHECK_MSG(count >= 1, "CNN route needs >= 1 topology variant");
  std::vector<microdeep::WsnTopology> vars;
  vars.reserve(count);
  const Rng base(base_seed);
  for (std::size_t v = 0; v < count; ++v) {
    Rng rng = par::substream(base, key + v);
    vars.push_back(microdeep::WsnTopology::jittered_grid(area, cols, rows, rng));
  }
  return vars;
}

CnnRoute make_cnn_route(const fleet::InferenceTemplate& tmpl, Rect area,
                        int cols, int rows, std::size_t num_variants,
                        std::uint64_t base_seed, std::uint64_t key) {
  return CnnRoute(
      tmpl.net.clone(), tmpl.shape, tmpl.data,
      make_variants(area, cols, rows, num_variants, base_seed, key));
}

/// Packs one congestion level per car into a single label (base-3 digits,
/// car 0 least significant) so a multi-car estimate fits the scalar label
/// slot of a Response.
int pack_congestion(const std::vector<sensing::rssi::Congestion>& levels) {
  int packed = 0;
  int scale = 1;
  for (const auto level : levels) {
    packed += scale * static_cast<int>(level);
    scale *= 3;
  }
  return packed;
}

}  // namespace

RouteSet::RouteSet(const RouteSetConfig& c)
    : cfg(c),
      e1(make_cnn_route(*fleet::make_lounge_template(),
                        Rect{0.0, 0.0, 50.0, 34.0}, 10, 5, c.e1_variants,
                        c.seed, kE1VariantKey)),
      e2(make_cnn_route(*fleet::make_ir_array_template(),
                        Rect{0.0, 0.0, 5.0, 5.0}, 10, 10, c.e2_variants,
                        c.seed, kE2VariantKey)),
      e3_estimator(e3_cfg),
      e4_estimator(e4_cfg) {
  if (cfg.pool != nullptr) {
    e1.net.set_pool(cfg.pool);
    e2.net.set_pool(cfg.pool);
  }
  if (cfg.quantize_cnn) {
    // Calibrate each route's int8 network on its own request pool — the
    // exact distribution the serving path will see.  Build is deterministic
    // (pure function of net weights + pool), so every server constructed
    // from the same config serves identical quantized labels.
    auto quantize_route = [](CnnRoute& route) {
      std::vector<std::size_t> idx(route.pool.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      const auto [calib, labels] = route.pool.batch(idx);
      route.qnet = std::make_unique<ml::QuantizedNetwork>(
          ml::QuantizedNetwork::build(route.net, route.shape, calib));
    };
    quantize_route(e1);
    quantize_route(e2);
  }
  const Rng base(cfg.seed);

  // E3: train the congestion likelihoods, then precompute the request
  // scenario pool with its (deterministic) position posteriors so the hot
  // path is pure estimation.
  {
    ZEIOT_CHECK_MSG(cfg.e3_scenarios >= 1, "E3 needs >= 1 scenario");
    Rng rng = par::substream(base, kE3Key);
    e3_estimator.train(cfg.e3_train_trips_per_level, rng);
    e3_scenarios.reserve(cfg.e3_scenarios);
    e3_positions.reserve(cfg.e3_scenarios);
    for (std::size_t s = 0; s < cfg.e3_scenarios; ++s) {
      std::vector<sensing::rssi::Congestion> levels;
      levels.reserve(static_cast<std::size_t>(e3_cfg.num_cars));
      for (int car = 0; car < e3_cfg.num_cars; ++car) {
        levels.push_back(
            static_cast<sensing::rssi::Congestion>(rng.uniform_int(0, 2)));
      }
      e3_scenarios.push_back(
          sensing::rssi::simulate_trip(e3_cfg, levels, rng));
      e3_positions.push_back(
          sensing::rssi::estimate_positions(e3_cfg, e3_scenarios.back()));
    }
  }

  // E4: train the count likelihoods, then precompute measurement rounds
  // cycling through every occupancy 0..max_people.
  {
    ZEIOT_CHECK_MSG(cfg.e4_measurements >= 1, "E4 needs >= 1 measurement");
    Rng rng = par::substream(base, kE4Key);
    e4_estimator.train(cfg.e4_train_rounds_per_count, rng);
    e4_measurements.reserve(cfg.e4_measurements);
    for (std::size_t m = 0; m < cfg.e4_measurements; ++m) {
      const int people = static_cast<int>(m) % (e4_cfg.max_people + 1);
      e4_measurements.push_back(
          sensing::rssi::measure_room(e4_cfg, people, rng));
    }
  }

  // E5: fit the standardized kNN on one capture set; a second capture with
  // a different seed becomes the request pool, pre-standardized so a
  // request costs one kNN query and no transform.
  {
    const phy::CsiEnvironment env;  // the default 8x6 m room
    const sensing::csi::Pattern pattern{sensing::csi::Behavior::Static,
                                        sensing::csi::AntennaConfig::Divergent};
    sensing::csi::LocalizationConfig cap;
    cap.frames_per_position = cfg.e5_frames_per_position;
    cap.seed = par::substream(base, kE5TrainKey)();
    const auto train = sensing::csi::capture_localization_dataset(env, pattern, cap);
    e5_std.fit(train.x);
    e5_knn = ml::KnnClassifier(kE5KnnK);
    e5_knn.fit(e5_std.transform(train.x), train.y);
    cap.seed = par::substream(base, kE5PoolKey)();
    const auto pool = sensing::csi::capture_localization_dataset(env, pattern, cap);
    e5_pool = e5_std.transform(pool.x);
  }
}

std::size_t RouteSet::pool_size(Route r) const {
  switch (r) {
    case Route::E1Temperature: return e1.pool.size();
    case Route::E2Fall: return e2.pool.size();
    case Route::E3Congestion: return e3_scenarios.size();
    case Route::E4RoomCount: return e4_measurements.size();
    case Route::E5Csi: return e5_pool.size();
  }
  return 0;
}

std::size_t RouteSet::num_variants(Route r) const {
  return uses_plans(r) ? cnn(r).variants.size() : 1;
}

const CnnRoute& RouteSet::cnn(Route r) const {
  ZEIOT_CHECK_MSG(uses_plans(r), route_name(r) << " is not a CNN route");
  return r == Route::E1Temperature ? e1 : e2;
}

CnnRoute& RouteSet::cnn(Route r) {
  ZEIOT_CHECK_MSG(uses_plans(r), route_name(r) << " is not a CNN route");
  return r == Route::E1Temperature ? e1 : e2;
}

void RouteSet::set_pool(par::ThreadPool* pool) {
  cfg.pool = pool;
  e1.net.set_pool(pool);
  e2.net.set_pool(pool);
}

std::vector<int> RouteSet::execute(Route r,
                                   const std::vector<std::uint32_t>& samples) {
  std::vector<int> labels(samples.size());
  switch (r) {
    case Route::E1Temperature:
    case Route::E2Fall: {
      CnnRoute& route = cnn(r);
      std::vector<std::size_t> idx;
      idx.reserve(samples.size());
      for (const std::uint32_t s : samples) idx.push_back(s);
      const auto [x, y] = route.pool.batch(idx);
      const ml::Tensor out = route.qnet != nullptr
                                 ? route.qnet->forward(x)
                                 : route.net.forward(x, /*train=*/false);
      const auto n = static_cast<std::size_t>(samples.size());
      const auto classes = static_cast<std::size_t>(out.shape().back());
      const float* logits = out.data();
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes; ++c) {
          if (logits[i * classes + c] > logits[i * classes + best]) best = c;
        }
        labels[i] = static_cast<int>(best);
      }
      break;
    }
    case Route::E3Congestion: {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const std::size_t s = samples[i];
        labels[i] = pack_congestion(
            e3_estimator.estimate(e3_scenarios[s], e3_positions[s]));
      }
      break;
    }
    case Route::E4RoomCount: {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        labels[i] = e4_estimator.estimate(e4_measurements[samples[i]]);
      }
      break;
    }
    case Route::E5Csi: {
      // Per-item fan-out into disjoint slots: worker-count independent.
      par::parallel_for(
          samples.size(),
          [&](std::size_t i) { labels[i] = e5_knn.predict(e5_pool[samples[i]]); },
          cfg.pool);
      break;
    }
  }
  return labels;
}

std::unique_ptr<RouteSet> make_routes(const RouteSetConfig& cfg) {
  return std::make_unique<RouteSet>(cfg);
}

}  // namespace zeiot::serve
