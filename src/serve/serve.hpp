// zeiot::serve — the context-recognition serving front-end.
//
// Wraps the five trained pipelines (routes.hpp) behind a request API with
// the three mechanisms every production inference tier needs:
//
//  * a deterministic router/batcher — a single-server discrete-event loop
//    on the VIRTUAL arrival clock that coalesces queued same-route (and,
//    for CNN routes, same-deployment) requests into one batched
//    Network::forward over zeiot::par.  Admission happens strictly in
//    arrival order; a batch dispatches the moment the engine is free, from
//    the route whose head-of-line request has waited longest (ties broken
//    by route index).  Latency is virtual completion minus arrival under a
//    fixed service-time model, so queueing results never depend on wall
//    clocks, machine speed, or ZEIOT_THREADS — only real *labels* come
//    from real compute, which is itself worker-count independent;
//  * an LRU plan cache — CNN dispatches resolve the deployment's
//    unit-assignment plan through PlanCache keyed by WsnTopology::digest();
//    a miss runs the real assignment search and charges a virtual
//    plan-build penalty, a hit is a hash lookup (plan_cache.hpp);
//  * admission control — a token bucket polices the offered rate (typed
//    Shed) and a bounded queue applies backpressure (typed Rejected),
//    with the invariant served + shed + rejected == offered.
//
// Observability: serve.* counters, per-route latency histograms and SLO
// gauges via zeiot::obs, plus — when spans are enabled — one ServeRequest
// root per served request tiled exactly by its ServeQueue + ServeService
// children (the netexec phase-tiling convention).  ServeReport::digest()
// is the bit-identity handle the conformance tests pin across thread
// counts and reruns.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "microdeep/search.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"
#include "serve/plan_cache.hpp"
#include "serve/routes.hpp"

namespace zeiot::serve {

/// One request against a route's deployment.  `id` is the dense arrival
/// index (requests arrive in id order, arrival_s non-decreasing).
struct Request {
  std::uint64_t id = 0;
  Route route = Route::E4RoomCount;
  double arrival_s = 0.0;
  /// Index into the route's request pool ([0, pool_size(route))).
  std::uint32_t sample = 0;
  /// CNN routes: which topology variant (deployment) this request targets
  /// ([0, num_variants(route))); ignored elsewhere.
  std::uint32_t variant = 0;
};

enum class Outcome : std::uint8_t {
  Served = 0,    // admitted, batched, executed
  Shed = 1,      // token bucket empty at arrival (rate policing)
  Rejected = 2,  // queue at capacity at arrival (backpressure)
};

const char* outcome_name(Outcome o);

struct Response {
  std::uint64_t id = 0;
  Route route = Route::E4RoomCount;
  Outcome outcome = Outcome::Shed;
  /// Route-specific result (Served only): CNN argmax class, packed
  /// congestion levels, people count, or predicted position.
  int label = -1;
  /// Virtual completion - arrival (0 for Shed/Rejected).
  double latency_s = 0.0;
  /// Dispatch sequence number of the serving batch (Served only).
  std::uint32_t batch_seq = 0;
  /// CNN routes: whether the plan cache hit at this request's dispatch.
  bool plan_hit = false;
};

/// Virtual service-time model of one route's batched execution:
/// service_s = batch_overhead_s + batch_size * per_item_s
///           (+ plan_build_s when the dispatch missed the plan cache).
struct RouteParams {
  std::size_t max_batch = 32;
  double batch_overhead_s = 2e-5;
  double per_item_s = 2e-6;
  double plan_build_s = 2e-2;
  /// Latency SLO; serve.slo.<route>.violations counts served requests over.
  double slo_s = 5e-3;
};

struct ServeConfig {
  /// Token-bucket admission: sustained rate and burst depth.
  double admission_rate_per_s = 150000.0;
  double admission_burst = 512.0;
  /// Bound on requests queued (all routes together).
  std::size_t queue_capacity = 4096;
  std::size_t plan_cache_capacity = 8;
  std::array<RouteParams, kNumRoutes> routes{};
  /// Assignment search used to fill plan-cache misses.  Kept small by
  /// default: the cache makes misses rare, not cheap.
  microdeep::AssignmentSearchOptions search = make_default_search();
  obs::Observability* obs = nullptr;

  static microdeep::AssignmentSearchOptions make_default_search() {
    microdeep::AssignmentSearchOptions s;
    s.random_restarts = 2;
    return s;
  }
};

struct ServeReport {
  /// One response per request, in id (arrival) order.
  std::vector<Response> responses;
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_evictions = 0;
  /// Peak queue depth observed (never exceeds queue_capacity).
  std::size_t peak_queue_depth = 0;
  /// Virtual completion time of the last batch.
  double horizon_s = 0.0;

  /// FNV-1a digest over every response field in id order — the
  /// determinism handle: bit-identical across reruns and thread counts.
  std::uint64_t digest() const;

  /// Nearest-rank virtual-latency quantile of a route's served requests
  /// (0 when the route served nothing).
  double latency_quantile(Route r, double q) const;
};

/// The serving front-end.  Holds the (expensive, immutable) RouteSet by
/// pointer — build it once with make_routes() and reuse it across servers
/// and runs; `run()` only mutates transient per-call state, so repeated
/// runs over the same workload are bit-identical.
class Server {
 public:
  /// `routes` must outlive the server.
  Server(RouteSet* routes, ServeConfig cfg);

  /// Serves one open-loop workload: `arrivals` sorted by (arrival_s, id)
  /// with dense ids 0..n-1.  Deterministic: same arrivals + config =>
  /// same report digest at any ZEIOT_THREADS.
  ServeReport run(const std::vector<Request>& arrivals);

  const ServeConfig& config() const { return cfg_; }

 private:
  RouteSet* routes_;
  ServeConfig cfg_;
};

}  // namespace zeiot::serve
