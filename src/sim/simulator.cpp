#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

namespace zeiot::sim {

Simulator::~Simulator() {
  while (!heap_.empty()) {
    delete heap_.top();
    heap_.pop();
  }
  for (Event* ev : free_) delete ev;
}

EventHandle Simulator::push(Time t, Callback cb) {
  Event* ev;
  if (free_.empty()) {
    ev = new Event{t, next_seq_++, std::move(cb), false};
  } else {
    ev = free_.back();
    free_.pop_back();
    ev->time = t;
    ev->seq = next_seq_++;
    ev->cb = std::move(cb);
    ev->cancelled = false;
  }
  heap_.push(ev);
  live_ids_.insert(ev->seq);
  if (observer_ != nullptr) observer_->on_scheduled(t, ev->seq);
  return EventHandle(ev->seq);
}

void Simulator::recycle(Event* ev) {
  ev->cb = nullptr;  // release captured state now, not at reuse time
  free_.push_back(ev);
}

EventHandle Simulator::schedule(Time delay, Callback cb) {
  ZEIOT_CHECK_MSG(delay >= 0.0, "schedule() requires delay >= 0, got " << delay);
  return push(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time t, Callback cb) {
  ZEIOT_CHECK_MSG(t >= now_, "schedule_at() in the past: t=" << t
                                                             << " now=" << now_);
  return push(t, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (h.id_ == 0) return false;
  // Cancellation is lazy: the event cannot be removed from the middle of the
  // heap, so drop it from the live set and skip it when it surfaces.
  const bool cancelled = live_ids_.erase(h.id_) > 0;
  if (cancelled && observer_ != nullptr) observer_->on_cancelled(now_, h.id_);
  return cancelled;
}

bool Simulator::pop_and_run() {
  Event* ev = heap_.top();
  heap_.pop();
  if (live_ids_.erase(ev->seq) == 0) {  // was cancelled
    recycle(ev);
    return false;
  }
  now_ = ev->time;
  const Time t = ev->time;
  const std::uint64_t seq = ev->seq;
  if (observer_ == nullptr) {
    ev->cb();
    recycle(ev);
    if (post_step_hook_) post_step_hook_(t);
    return true;
  }
  // Wall-clock timing of the callback only happens when observed, so the
  // unobserved hot path stays a single pointer test.
  const auto start = std::chrono::steady_clock::now();
  ev->cb();
  recycle(ev);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  observer_->on_executed(t, seq, live_ids_.size(), wall.count());
  if (post_step_hook_) post_step_hook_(t);
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  // Lazily-cancelled events popped off the heap do not count as executed
  // (the observer's events_executed counter matches the return value).
  while (!heap_.empty() && executed < limit) {
    if (pop_and_run()) ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(Time t) {
  ZEIOT_CHECK_MSG(t >= now_, "run_until() in the past");
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top()->time <= t) {
    if (pop_and_run()) ++executed;
  }
  now_ = std::max(now_, t);
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Time period,
                             Simulator::Callback cb)
    : sim_(sim), period_(period), cb_(std::move(cb)) {
  ZEIOT_CHECK_MSG(period > 0.0, "PeriodicTimer requires period > 0");
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule(period_, [this] {
    if (!running_) return;
    cb_();
    if (running_) arm();
  });
}

}  // namespace zeiot::sim
