// Discrete-event simulation kernel.
//
// All protocol simulations in the library (backscatter MAC coexistence,
// WSN data collection, energy harvesting) run on this kernel: a priority
// queue of timestamped callbacks with deterministic FIFO tie-breaking so a
// given seed always reproduces the same trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"

namespace zeiot::sim {

/// Simulation time in seconds.
using Time = double;

/// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  // 0 = null handle
};

/// Event-driven simulator.  Not thread-safe; one instance per experiment.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(Time delay, Callback cb);

  /// Schedules `cb` at absolute time `t` (t >= now()).
  EventHandle schedule_at(Time t, Callback cb);

  /// Cancels a previously scheduled event.  Returns false if the event
  /// already ran, was already cancelled, or the handle is null.
  bool cancel(EventHandle h);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `t`, then advances the clock to `t`.
  std::size_t run_until(Time t);

  /// Number of events currently pending (scheduled, not yet run/cancelled).
  std::size_t pending() const { return live_ids_.size(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    Callback cb;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Event* a, const Event* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  EventHandle push(Time t, Callback cb);
  void pop_and_run();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  // Events are heap-allocated individually (owned; freed when popped) so the
  // priority queue can hold stable pointers.  live_ids_ tracks events that
  // are scheduled and not cancelled.
  std::priority_queue<Event*, std::vector<Event*>, Order> heap_;
  std::unordered_set<std::uint64_t> live_ids_;
};

/// Repeating timer helper: reschedules itself every `period` until stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, Simulator::Callback cb);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing `period` from now.  No-op if already running.
  void start();
  /// Stops future firings.
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Time period_;
  Simulator::Callback cb_;
  EventHandle pending_{};
  bool running_ = false;
};

}  // namespace zeiot::sim
