// Discrete-event simulation kernel.
//
// All protocol simulations in the library (backscatter MAC coexistence,
// WSN data collection, energy harvesting) run on this kernel: a priority
// queue of timestamped callbacks with deterministic FIFO tie-breaking so a
// given seed always reproduces the same trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"

namespace zeiot::sim {

/// Simulation time in seconds.
using Time = double;

/// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  // 0 = null handle
};

/// Optional observer of simulator internals (scheduling, execution,
/// cancellation, queue depth, per-callback wall time).  The default
/// implementations are no-ops, so observers override only what they need.
/// `zeiot::obs::SimulatorProbe` adapts this interface onto the metrics /
/// tracing layer; with no observer installed the kernel pays only a null
/// pointer test per event.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// An event was scheduled for absolute time `t` with sequence id `id`.
  virtual void on_scheduled(Time t, std::uint64_t id) { (void)t; (void)id; }
  /// A live event was cancelled at simulation time `now`.
  virtual void on_cancelled(Time now, std::uint64_t id) {
    (void)now; (void)id;
  }
  /// An event's callback ran at simulation time `t`.  `queue_depth` is the
  /// number of events still pending after this one; `wall_s` is the host
  /// wall-clock duration of the callback.
  virtual void on_executed(Time t, std::uint64_t id, std::size_t queue_depth,
                           double wall_s) {
    (void)t; (void)id; (void)queue_depth; (void)wall_s;
  }
};

/// Event-driven simulator.  Not thread-safe; one instance per experiment.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(Time delay, Callback cb);

  /// Schedules `cb` at absolute time `t` (t >= now()).
  EventHandle schedule_at(Time t, Callback cb);

  /// Cancels a previously scheduled event.  Returns false if the event
  /// already ran, was already cancelled, or the handle is null.
  bool cancel(EventHandle h);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `t`, then advances the clock to `t`.
  std::size_t run_until(Time t);

  /// Number of events currently pending (scheduled, not yet run/cancelled).
  std::size_t pending() const { return live_ids_.size(); }

  /// Installs (or clears, with nullptr) the observer.  The observer must
  /// outlive the simulator or be cleared first; it is notified of every
  /// schedule/cancel/execute from the moment it is set.
  void set_observer(SimObserver* observer) { observer_ = observer; }
  SimObserver* observer() const { return observer_; }

  /// Installs (or clears, with {}) a hook run after each executed event's
  /// callback, at the event's timestamp.  This is the step-boundary seam
  /// the fault layer's InvariantChecker attaches to; install a wrapper that
  /// calls the previous hook to chain.  Null hook costs one test per event.
  void set_post_step_hook(std::function<void(Time)> hook) {
    post_step_hook_ = std::move(hook);
  }
  const std::function<void(Time)>& post_step_hook() const {
    return post_step_hook_;
  }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    Callback cb;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Event* a, const Event* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  EventHandle push(Time t, Callback cb);
  /// Pops the earliest event; returns true if its callback ran (false for
  /// lazily-cancelled events surfacing from the heap).
  bool pop_and_run();
  /// Returns a popped event's slot to free_ for reuse (its callback is
  /// released first so captured state never outlives the event).
  void recycle(Event* ev);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  // Events are heap-allocated so the priority queue can hold stable
  // pointers, but popped events are recycled through free_ instead of
  // deleted: a steady-state simulation performs no per-event allocation
  // beyond what the callbacks themselves capture.  This is the arena that
  // keeps fleet-scale runs (millions of events across thousands of
  // deployments) off the allocator.  live_ids_ tracks events that are
  // scheduled and not cancelled.
  std::priority_queue<Event*, std::vector<Event*>, Order> heap_;
  std::vector<Event*> free_;
  std::unordered_set<std::uint64_t> live_ids_;
  SimObserver* observer_ = nullptr;
  std::function<void(Time)> post_step_hook_;
};

/// Repeating timer helper: reschedules itself every `period` until stopped.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, Simulator::Callback cb);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing `period` from now.  No-op if already running.
  void start();
  /// Stops future firings.
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Time period_;
  Simulator::Callback cb_;
  EventHandle pending_{};
  bool running_ = false;
};

}  // namespace zeiot::sim
