#include "par/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace zeiot::par {

namespace {

/// True while the current thread is executing a pool task (any pool).
/// Guards against nested parallel regions blocking on their own pool.
thread_local bool t_in_pool_task = false;

/// Sentinel the index counter is parked at between jobs: any fetch_add
/// from a straggling worker yields a value >= every possible task count.
constexpr std::size_t kParked = std::numeric_limits<std::size_t>::max() / 2;

}  // namespace

std::size_t default_threads() {
  if (const char* env = std::getenv("ZEIOT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return v > 512 ? 512 : static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ThreadPool::Impl {
  std::mutex m;
  std::condition_variable cv_work;   // workers wait for a new generation
  std::condition_variable cv_done;   // caller waits for done == total
  // Job state.  fn/total are atomics because straggling workers read them
  // without the lock; publication order (fn, total, then next) plus the
  // acquire/release pairing on `next` makes those reads well-defined.
  std::atomic<const std::function<void(std::size_t)>*> fn{nullptr};
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> next{kParked};
  std::size_t done = 0;              // guarded by m
  std::uint64_t generation = 0;      // guarded by m
  bool shutdown = false;             // guarded by m
  std::exception_ptr error;          // guarded by m; lowest failing index
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::vector<std::thread> workers;

  /// Consumes task indices until the job is drained.  Runs on workers and
  /// on the calling thread alike.
  void work() {
    t_in_pool_task = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_acq_rel);
      const std::size_t n = total.load(std::memory_order_acquire);
      if (i >= n) break;
      const auto* f = fn.load(std::memory_order_acquire);
      try {
        (*f)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lk(m);
      if (++done == n) cv_done.notify_all();
    }
    t_in_pool_task = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(m);
        cv_work.wait(lk, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      work();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : impl_(std::make_unique<Impl>()),
      num_threads_(num_threads == 0 ? default_threads() : num_threads) {
  for (std::size_t i = 0; i + 1 < num_threads_; ++i) {
    impl_->workers.emplace_back([s = impl_.get()] { s->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->workers.empty() || count == 1 || t_in_pool_task) {
    // Serial / nested execution: same index order a one-thread pool uses,
    // and the first throwing index propagates naturally.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  Impl* s = impl_.get();
  {
    std::lock_guard<std::mutex> lk(s->m);
    s->done = 0;
    s->error = nullptr;
    s->error_index = std::numeric_limits<std::size_t>::max();
    s->fn.store(&fn, std::memory_order_relaxed);
    s->total.store(count, std::memory_order_relaxed);
    // Publish last: a worker that observes the fresh counter value also
    // observes fn/total (release paired with the acquire in work()).
    s->next.store(0, std::memory_order_release);
    ++s->generation;
  }
  s->cv_work.notify_all();
  s->work();  // the caller participates
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(s->m);
    s->cv_done.wait(lk, [&] { return s->done == s->total.load(); });
    // Park the counter so late-waking workers take no indices from the
    // next job before its fn/total are published.
    s->next.store(kParked, std::memory_order_release);
    err = s->error;
    s->error = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_threads());
  return pool;
}

}  // namespace zeiot::par
