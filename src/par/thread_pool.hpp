// Deterministic parallel execution substrate.
//
// A fixed-size pool of workers executes indexed tasks; callers obtain
// *bit-identical results regardless of worker count* by following two
// rules that every zeiot wire-in (ml::Trainer shards, microdeep assignment
// search, bench sweeps) obeys:
//   1. work is split into fixed-index chunks whose layout depends only on
//      the problem size (see par::make_chunks), never on the thread count;
//   2. per-chunk results land in per-chunk slots and are reduced on the
//      calling thread in chunk order (see par::ordered_reduce), and any
//      per-chunk randomness comes from a SplitMix substream keyed by the
//      chunk index (see par::substream) — the same keyed-stream convention
//      zeiot::fault uses for its event classes.
//
// The worker count defaults to std::thread::hardware_concurrency and can
// be overridden with the ZEIOT_THREADS environment variable (read once,
// when the global pool is first used).  ZEIOT_THREADS=1 runs everything
// inline on the calling thread with no workers spawned at all.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace zeiot::par {

/// Worker count resolution: ZEIOT_THREADS when set to a positive integer
/// (clamped to 512), otherwise std::thread::hardware_concurrency, never
/// less than 1.
std::size_t default_threads();

/// Fixed-size worker pool.  `run` distributes task indices over the
/// workers; the calling thread participates, so a pool of N threads uses
/// N-1 standing workers.  Reentrant `run` calls from inside a task execute
/// inline on the calling thread (nested parallel regions serialize instead
/// of deadlocking), which keeps results independent of nesting depth.
class ThreadPool {
 public:
  /// `num_threads == 0` resolves to default_threads().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Executes fn(i) for every i in [0, count) and blocks until all have
  /// completed.  The index -> thread mapping is unspecified; determinism
  /// comes from the caller's chunk/slot discipline, not from scheduling.
  /// If invocations throw, the exception of the lowest failing index is
  /// rethrown after the region completes (matching what a serial loop
  /// that kept going would report first).
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t num_threads_;
};

/// Process-wide pool, lazily constructed with default_threads().  All
/// library defaults (Trainer, assignment search, bench sweeps) route here
/// when no explicit pool is supplied, so one ZEIOT_THREADS setting governs
/// the whole binary.
ThreadPool& global_pool();

}  // namespace zeiot::par
