// Deterministic chunking, parallel loops, and ordered reductions on top of
// par::ThreadPool.
//
// Everything here is worker-count independent by construction: chunk
// layouts depend only on the problem size, per-chunk results are stored in
// per-chunk slots, and reductions run on the calling thread in chunk
// order.  Floating-point results are therefore bit-identical between
// ZEIOT_THREADS=1 and ZEIOT_THREADS=N.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "par/thread_pool.hpp"

namespace zeiot::par {

/// Half-open index range [begin, end) with its position in the chunk list.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;
  std::size_t size() const { return end - begin; }
};

/// Upper bound on the chunk count when no grain is given: enough slack for
/// any sane worker count while keeping per-chunk bookkeeping negligible.
inline constexpr std::size_t kDefaultMaxChunks = 64;

/// Splits [0, n) into fixed chunks of at most `grain` items (the last chunk
/// may be smaller).  `grain == 0` picks ceil(n / kDefaultMaxChunks).  The
/// layout is a pure function of (n, grain) — never of the worker count —
/// which is what makes chunked reductions reproducible.
inline std::vector<ChunkRange> make_chunks(std::size_t n, std::size_t grain = 0) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (grain == 0) grain = (n + kDefaultMaxChunks - 1) / kDefaultMaxChunks;
  chunks.reserve((n + grain - 1) / grain);
  for (std::size_t b = 0, c = 0; b < n; b += grain, ++c) {
    chunks.push_back({b, std::min(n, b + grain), c});
  }
  return chunks;
}

/// Executes fn(i) for every i in [0, n), chunked over `pool` (the global
/// pool when null).  Use only when iterations are independent and write to
/// disjoint state; then the result cannot depend on the worker count.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         ThreadPool* pool = nullptr, std::size_t grain = 0) {
  const auto chunks = make_chunks(n, grain);
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  p.run(chunks.size(), [&](std::size_t c) {
    for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) fn(i);
  });
}

/// Chunk-at-a-time variant for bodies that amortize per-chunk setup (a
/// scratch buffer, a replica, a substream RNG).
inline void parallel_for_chunks(std::size_t n, std::size_t grain,
                                const std::function<void(const ChunkRange&)>& fn,
                                ThreadPool* pool = nullptr) {
  const auto chunks = make_chunks(n, grain);
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  p.run(chunks.size(), [&](std::size_t c) { fn(chunks[c]); });
}

/// Ordered map/reduce: maps every chunk concurrently into its own slot,
/// then folds the slots on the calling thread in chunk order:
///   reduce(...reduce(reduce(init, map(chunk 0)), map(chunk 1))...)
/// Because the fold order is fixed, non-associative combines (float sums)
/// give bit-identical results for any worker count.
template <typename T, typename MapFn, typename ReduceFn>
T ordered_reduce(std::size_t n, T init, MapFn map, ReduceFn reduce,
                 ThreadPool* pool = nullptr, std::size_t grain = 0) {
  const auto chunks = make_chunks(n, grain);
  std::vector<std::optional<T>> partial(chunks.size());
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  p.run(chunks.size(), [&](std::size_t c) { partial[c].emplace(map(chunks[c])); });
  T acc = std::move(init);
  for (auto& slot : partial) acc = reduce(std::move(acc), std::move(*slot));
  return acc;
}

/// Independent RNG substream keyed by chunk index.  Copies `base` so the
/// caller's stream is never advanced: substream(base, k) is a pure function
/// of (base state, k), identical no matter how many chunks were split off,
/// in what order, or on which thread — the zeiot::fault keyed-substream
/// convention extended to parallel chunks.
inline Rng substream(const Rng& base, std::uint64_t index) {
  Rng child = base;
  return child.split(index);
}

}  // namespace zeiot::par
