// Synthetic IR sensor-array gait/fall streams — the substitute for the
// paper's prototyped film-type IR array experiment (Sec. IV.C, Fig. 9):
// 55 gait samples from five subjects imitating elders' falls, captured as
// streams of 66 frames at 5 fps; 10-frame (2 s) sliding windows become the
// 3-D arrays fed to a CNN with one conv, one pool and two FC layers.
//
// The kinematic model renders the subject as a heat blob on the array:
// upright while walking (tall/narrow footprint), transitioning to lying
// (wide/flat footprint) over a short fall, after which the blob stays
// down.  Normal streams traverse the array at a per-subject speed; fall
// streams stop mid-passage and collapse.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace zeiot::datagen {

struct IrGaitConfig {
  int grid = 10;            // square sensor array (grid x grid)
  int frames_per_stream = 66;
  int window_frames = 10;   // 2 s at 5 fps
  int num_streams = 55;
  int num_subjects = 5;
  /// Streams containing a fall event.
  int fall_streams = 28;
  /// Mirror-augment windows (doubles the dataset, as data augmentation of
  /// the real experiment would).
  bool mirror_augment = true;
  /// Frames the fall transition spans.
  int fall_duration_frames = 6;
  /// A window is labelled "fall" when it overlaps at least this many
  /// transition-or-later frames.
  int fall_overlap_frames = 3;
  /// Sensor noise per cell (relative to unit body heat).
  double sensor_noise = 0.15;
  /// Probability that a *normal* stream contains a crouch/sit-down pause —
  /// the confusable non-fall behaviour that makes fall detection hard
  /// (the subject lowers and widens, but does not go horizontal).
  double crouch_prob = 0.5;
  /// Label noise fraction (annotation ambiguity at transition boundaries).
  double label_noise = 0.02;
  std::uint64_t seed = 55;
};

struct IrStream {
  /// frames_per_stream tensors of (grid x grid) heat intensity.
  std::vector<ml::Tensor> frames;  // each (1, grid, grid)
  /// Frame at which the fall begins (-1 for normal gait).
  int fall_start = -1;
  int subject = 0;
};

/// Renders one stream for `subject`; `fall` selects a fall passage.
IrStream generate_ir_stream(const IrGaitConfig& cfg, int subject, bool fall,
                            Rng& rng);

/// Slides windows over all streams and stacks frames as channels:
/// samples of shape (window_frames, grid, grid); label 1 = fall window.
ml::Dataset generate_ir_dataset(const IrGaitConfig& cfg);

}  // namespace zeiot::datagen
