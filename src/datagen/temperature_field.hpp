// Synthetic lounge temperature field — the substitute for the paper's
// MicroDeep experiment data (Sec. IV.C): a >1,400 m^2 lounge divided into
// 25 x 17 cells, measured every 30 minutes by 50 temperature sensors from
// Aug 26 to Oct 27 2016 (2,961 samples), labelled for "discomfort".
//
// The generator reproduces the statistical structure the CNN must exploit:
// a seasonal + diurnal base temperature, smooth HVAC cooling zones, solar
// gain along a window wall, and localized occupancy heat clusters.  A map
// is labelled "discomfort" when some local region departs the comfort band
// — a spatial pattern, so convolution genuinely helps.
#pragma once

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace zeiot::datagen {

struct TemperatureFieldConfig {
  int cols = 25;
  int rows = 17;
  int num_samples = 2961;
  /// Sampling interval (30 min) and season start (late August).
  double sample_interval_s = 1800.0;
  /// Comfort band; a map is uncomfortable when a kernel-sized region's
  /// mean leaves [comfort_lo, comfort_hi].
  double comfort_lo_c = 21.0;
  double comfort_hi_c = 27.5;
  int region_kernel = 3;
  /// Occupancy clusters per map (Poisson mean) and their heat.
  double clusters_mean = 1.2;
  double cluster_heat_c = 4.0;
  double cluster_sigma_cells = 1.6;
  /// Sensor noise per cell (degrees C).
  double sensor_noise_c = 0.25;
  /// Label noise: fraction of labels flipped (measurement/annotation
  /// ambiguity); caps the best achievable accuracy.
  double label_noise = 0.015;
  std::uint64_t seed = 2016;
};

struct TemperatureSample {
  ml::Tensor map;  // (1, rows, cols), degrees C
  int discomfort = 0;
};

/// Generates one sample at sample index `t`.
TemperatureSample generate_temperature_sample(const TemperatureFieldConfig& cfg,
                                              int t, Rng& rng);

/// Generates the full dataset (shape (1, rows, cols), labels {0, 1}).
/// Values are normalised to zero-mean/unit-ish scale for training.
ml::Dataset generate_temperature_dataset(const TemperatureFieldConfig& cfg);

}  // namespace zeiot::datagen
