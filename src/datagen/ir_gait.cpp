#include "datagen/ir_gait.hpp"

#include <algorithm>
#include <cmath>

namespace zeiot::datagen {

namespace {

/// Renders an anisotropic Gaussian heat blob.
void render_blob(ml::Tensor& frame, double cy, double cx, double sy,
                 double sx, double intensity) {
  const int rows = frame.dim(1), cols = frame.dim(2);
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      const double dy = (y - cy) / sy;
      const double dx = (x - cx) / sx;
      frame.at({0, y, x}) +=
          static_cast<float>(intensity * std::exp(-0.5 * (dy * dy + dx * dx)));
    }
  }
}

}  // namespace

IrStream generate_ir_stream(const IrGaitConfig& cfg, int subject, bool fall,
                            Rng& rng) {
  ZEIOT_CHECK_MSG(cfg.grid >= 6, "grid too small");
  ZEIOT_CHECK_MSG(subject >= 0 && subject < cfg.num_subjects,
                  "subject out of range");
  IrStream st;
  st.subject = subject;

  // Per-subject gait parameters (consistent within a subject, as real
  // subjects differ in speed and size).
  Rng subj_rng(cfg.seed * 1000 + static_cast<std::uint64_t>(subject));
  const double base_speed =
      (static_cast<double>(cfg.grid) + 4.0) /
      static_cast<double>(cfg.frames_per_stream) * subj_rng.uniform(0.8, 1.3);
  const double body_heat = subj_rng.uniform(0.9, 1.1);
  const double body_size = subj_rng.uniform(0.9, 1.15);

  // Trajectory: left-to-right passage at a per-stream lane.
  const double lane = rng.uniform(2.0, static_cast<double>(cfg.grid) - 3.0);
  const double speed = base_speed * rng.uniform(0.9, 1.1);
  double x = -2.0;

  if (fall) {
    st.fall_start = static_cast<int>(
        rng.uniform_int(cfg.window_frames,
                        cfg.frames_per_stream - cfg.fall_duration_frames -
                            cfg.window_frames / 2));
  }
  // Confounder: a crouch/sit-down pause in some normal passages.  It looks
  // like the onset of a fall (the blob lowers and widens) but recovers.
  int crouch_start = -1;
  constexpr int kCrouchFrames = 12;
  if (!fall && rng.bernoulli(cfg.crouch_prob)) {
    crouch_start = static_cast<int>(rng.uniform_int(
        cfg.window_frames, cfg.frames_per_stream - kCrouchFrames - 1));
  }

  for (int f = 0; f < cfg.frames_per_stream; ++f) {
    ml::Tensor frame({1, cfg.grid, cfg.grid});
    double sy = 1.9 * body_size;  // upright: tall
    double sx = 0.8 * body_size;  // upright: narrow
    double cy = lane;
    double intensity = body_heat;

    if (fall && f >= st.fall_start) {
      const double prog = std::min(
          1.0, static_cast<double>(f - st.fall_start) /
                   static_cast<double>(cfg.fall_duration_frames));
      // Body rotates to lying: footprint widens, flattens, settles slightly
      // off-lane, and the blob stops advancing.
      sy = (1.9 - 1.1 * prog) * body_size;
      sx = (0.8 + 1.8 * prog) * body_size;
      cy = lane + 0.8 * prog;
      intensity = body_heat * (1.0 - 0.15 * prog);  // more floor contact
    } else if (crouch_start >= 0 && f >= crouch_start &&
               f < crouch_start + kCrouchFrames) {
      // Crouch: down and slightly wider, paused — then stands back up.
      const double phase =
          static_cast<double>(f - crouch_start) / kCrouchFrames;
      const double depth = std::sin(phase * M_PI);  // down then up
      sy = (1.9 - 0.8 * depth) * body_size;
      sx = (0.8 + 0.7 * depth) * body_size;
      cy = lane + 0.3 * depth;
    } else {
      x += speed * (1.0 + 0.15 * std::sin(f * 1.1));  // gait oscillation
    }
    render_blob(frame, cy, x, sy, sx, intensity);

    for (std::size_t i = 0; i < frame.size(); ++i) {
      frame[i] += static_cast<float>(rng.normal(0.0, cfg.sensor_noise));
    }
    st.frames.push_back(std::move(frame));
  }
  return st;
}

ml::Dataset generate_ir_dataset(const IrGaitConfig& cfg) {
  ZEIOT_CHECK_MSG(cfg.fall_streams <= cfg.num_streams,
                  "more fall streams than streams");
  ZEIOT_CHECK_MSG(cfg.window_frames < cfg.frames_per_stream,
                  "window must fit in a stream");
  Rng rng(cfg.seed);
  ml::Dataset ds;

  for (int s = 0; s < cfg.num_streams; ++s) {
    const int subject = s % cfg.num_subjects;
    const bool fall = s < cfg.fall_streams;
    const IrStream st = generate_ir_stream(cfg, subject, fall, rng);

    const int num_windows = cfg.frames_per_stream - cfg.window_frames + 1;
    for (int w = 0; w < num_windows; ++w) {
      // Label: does the window overlap the fall (transition or lying)?
      int label = 0;
      if (st.fall_start >= 0) {
        const int overlap =
            std::max(0, std::min(w + cfg.window_frames,
                                 cfg.frames_per_stream) -
                            std::max(w, st.fall_start));
        if (overlap >= cfg.fall_overlap_frames) label = 1;
      }
      if (rng.bernoulli(cfg.label_noise)) label = 1 - label;

      ml::Tensor window({cfg.window_frames, cfg.grid, cfg.grid});
      for (int f = 0; f < cfg.window_frames; ++f) {
        const ml::Tensor& fr = st.frames[static_cast<std::size_t>(w + f)];
        std::copy(fr.data(), fr.data() + fr.size(),
                  window.data() + static_cast<std::size_t>(f) * fr.size());
      }
      if (cfg.mirror_augment) {
        // Horizontal mirror (the same passage walked the other way).
        ml::Tensor mirrored({cfg.window_frames, cfg.grid, cfg.grid});
        for (int f = 0; f < cfg.window_frames; ++f) {
          for (int y = 0; y < cfg.grid; ++y) {
            for (int xx = 0; xx < cfg.grid; ++xx) {
              mirrored.at({f, y, xx}) =
                  window.at({f, y, cfg.grid - 1 - xx});
            }
          }
        }
        ds.add(std::move(mirrored), label);
      }
      ds.add(std::move(window), label);
    }
  }
  return ds;
}

}  // namespace zeiot::datagen
