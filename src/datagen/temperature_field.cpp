#include "datagen/temperature_field.hpp"

#include <cmath>

namespace zeiot::datagen {

namespace {

/// Mean temperature of the `k`x`k` region with top-left (y, x).
double region_mean(const ml::Tensor& map, int y, int x, int k) {
  double s = 0.0;
  for (int dy = 0; dy < k; ++dy) {
    for (int dx = 0; dx < k; ++dx) {
      s += map.at({0, y + dy, x + dx});
    }
  }
  return s / static_cast<double>(k * k);
}

}  // namespace

TemperatureSample generate_temperature_sample(const TemperatureFieldConfig& cfg,
                                              int t, Rng& rng) {
  ZEIOT_CHECK_MSG(cfg.cols > cfg.region_kernel && cfg.rows > cfg.region_kernel,
                  "grid too small for the region kernel");
  const double day = static_cast<double>(t) * cfg.sample_interval_s / 86400.0;
  // Season: late-August warmth cooling toward late October (~ -6 C drift
  // over the two-month campaign), plus the diurnal cycle.
  const double season = 26.0 - 6.0 * day / 62.0;
  const double diurnal = 2.5 * std::sin(2.0 * M_PI * (day - 0.3));

  ml::Tensor map({1, cfg.rows, cfg.cols});
  // HVAC cooling zones: four fixed vents pulling toward a setpoint.
  const double vents[4][2] = {{0.2, 0.25}, {0.8, 0.25}, {0.2, 0.75},
                              {0.8, 0.75}};
  // Daytime solar gain along the x1 (window) wall.
  const double solar = std::max(0.0, std::sin(2.0 * M_PI * (day - 0.25))) * 2.0;

  for (int y = 0; y < cfg.rows; ++y) {
    for (int x = 0; x < cfg.cols; ++x) {
      const double fx = (static_cast<double>(x) + 0.5) / cfg.cols;
      const double fy = (static_cast<double>(y) + 0.5) / cfg.rows;
      double temp = season + diurnal;
      for (const auto& v : vents) {
        const double d2 = (fx - v[0]) * (fx - v[0]) * 4.0 +
                          (fy - v[1]) * (fy - v[1]) * 4.0;
        temp -= 2.2 * std::exp(-d2 / 0.12);
      }
      temp += solar * fx * fx;  // stronger near the window wall
      map.at({0, y, x}) = static_cast<float>(temp);
    }
  }

  // Occupancy heat clusters (meetings, crowds) — the local anomalies that
  // push regions out of the comfort band.
  const int clusters = rng.poisson(cfg.clusters_mean);
  for (int c = 0; c < clusters; ++c) {
    const double cy = rng.uniform(0.0, static_cast<double>(cfg.rows));
    const double cx = rng.uniform(0.0, static_cast<double>(cfg.cols));
    const double heat = cfg.cluster_heat_c * rng.uniform(0.6, 1.4);
    for (int y = 0; y < cfg.rows; ++y) {
      for (int x = 0; x < cfg.cols; ++x) {
        const double d2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
        map.at({0, y, x}) += static_cast<float>(
            heat * std::exp(-d2 / (2.0 * cfg.cluster_sigma_cells *
                                   cfg.cluster_sigma_cells)));
      }
    }
  }

  // Label before sensor noise: any region mean outside the comfort band.
  int discomfort = 0;
  for (int y = 0; y + cfg.region_kernel <= cfg.rows && !discomfort; ++y) {
    for (int x = 0; x + cfg.region_kernel <= cfg.cols; ++x) {
      const double m = region_mean(map, y, x, cfg.region_kernel);
      if (m < cfg.comfort_lo_c || m > cfg.comfort_hi_c) {
        discomfort = 1;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < map.size(); ++i) {
    map[i] += static_cast<float>(rng.normal(0.0, cfg.sensor_noise_c));
  }
  if (rng.bernoulli(cfg.label_noise)) discomfort = 1 - discomfort;

  return {std::move(map), discomfort};
}

ml::Dataset generate_temperature_dataset(const TemperatureFieldConfig& cfg) {
  ZEIOT_CHECK_MSG(cfg.num_samples > 0, "need samples");
  Rng rng(cfg.seed);
  ml::Dataset ds;
  for (int t = 0; t < cfg.num_samples; ++t) {
    TemperatureSample s = generate_temperature_sample(cfg, t, rng);
    // Normalise to roughly unit scale around the comfort midpoint.
    const float mid =
        static_cast<float>((cfg.comfort_lo_c + cfg.comfort_hi_c) / 2.0);
    for (std::size_t i = 0; i < s.map.size(); ++i) {
      s.map[i] = (s.map[i] - mid) / 5.0f;
    }
    ds.add(std::move(s.map), s.discomfort);
  }
  return ds;
}

}  // namespace zeiot::datagen
