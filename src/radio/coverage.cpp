#include "radio/coverage.hpp"

#include <algorithm>

namespace zeiot::radio {

double CoverageMap::at(int col, int row) const {
  ZEIOT_CHECK(col >= 0 && col < cols && row >= 0 && row < rows);
  return harvest_watt[static_cast<std::size_t>(row * cols + col)];
}

double CoverageMap::covered_fraction(double threshold_watt) const {
  ZEIOT_CHECK_MSG(threshold_watt >= 0.0, "threshold must be >= 0");
  if (harvest_watt.empty()) return 0.0;
  std::size_t covered = 0;
  for (double w : harvest_watt) {
    if (w >= threshold_watt) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(harvest_watt.size());
}

double CoverageMap::worst_watt() const {
  ZEIOT_CHECK_MSG(!harvest_watt.empty(), "empty coverage map");
  return *std::min_element(harvest_watt.begin(), harvest_watt.end());
}

CoverageMap compute_coverage(const Rect& area, double cell_m,
                             const std::vector<Carrier>& carriers,
                             const PathLossModel& model,
                             double rectifier_efficiency) {
  ZEIOT_CHECK_MSG(cell_m > 0.0, "cell size must be > 0");
  ZEIOT_CHECK_MSG(area.width() > 0.0 && area.height() > 0.0,
                  "area must be non-degenerate");
  CoverageMap map;
  map.area = area;
  map.cols = std::max(1, static_cast<int>(area.width() / cell_m));
  map.rows = std::max(1, static_cast<int>(area.height() / cell_m));
  map.harvest_watt.assign(
      static_cast<std::size_t>(map.cols) * static_cast<std::size_t>(map.rows),
      0.0);
  for (int r = 0; r < map.rows; ++r) {
    for (int c = 0; c < map.cols; ++c) {
      const Point2D p{area.x0 + (c + 0.5) * area.width() / map.cols,
                      area.y0 + (r + 0.5) * area.height() / map.rows};
      double total = 0.0;
      for (const Carrier& carrier : carriers) {
        total += harvestable_power_watt(model, carrier.tx,
                                        distance(p, carrier.position),
                                        rectifier_efficiency);
      }
      map.harvest_watt[static_cast<std::size_t>(r * map.cols + c)] = total;
    }
  }
  return map;
}

std::vector<Carrier> greedy_place_carriers(const Rect& area, double cell_m,
                                           double candidate_step_m, int k,
                                           const PathLossModel& model,
                                           double threshold_watt,
                                           const TxSpec& carrier_tx,
                                           double rectifier_efficiency) {
  ZEIOT_CHECK_MSG(k >= 1, "must place at least one carrier");
  ZEIOT_CHECK_MSG(candidate_step_m > 0.0, "candidate step must be > 0");
  ZEIOT_CHECK_MSG(threshold_watt > 0.0, "threshold must be > 0");

  // Candidate sites on a grid (interior points).
  std::vector<Point2D> candidates;
  for (double y = area.y0 + candidate_step_m / 2.0; y < area.y1;
       y += candidate_step_m) {
    for (double x = area.x0 + candidate_step_m / 2.0; x < area.x1;
         x += candidate_step_m) {
      candidates.push_back({x, y});
    }
  }
  ZEIOT_CHECK_MSG(!candidates.empty(), "no candidate sites in area");

  std::vector<Carrier> placed;
  CoverageMap current = compute_coverage(area, cell_m, placed, model,
                                         rectifier_efficiency);
  for (int round = 0; round < k; ++round) {
    if (current.covered_fraction(threshold_watt) >= 1.0) break;
    std::size_t best_site = 0;
    double best_covered = -1.0;
    CoverageMap best_map;
    for (std::size_t s = 0; s < candidates.size(); ++s) {
      std::vector<Carrier> trial = placed;
      trial.push_back({candidates[s], carrier_tx});
      CoverageMap m =
          compute_coverage(area, cell_m, trial, model, rectifier_efficiency);
      const double covered = m.covered_fraction(threshold_watt);
      if (covered > best_covered) {
        best_covered = covered;
        best_site = s;
        best_map = std::move(m);
      }
    }
    placed.push_back({candidates[best_site], carrier_tx});
    current = std::move(best_map);
  }
  return placed;
}

}  // namespace zeiot::radio
