#include "radio/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace zeiot::radio {

namespace {
constexpr double kMinDistanceM = 0.1;
}

FreeSpace::FreeSpace(double freq_hz) : freq_hz_(freq_hz) {
  ZEIOT_CHECK_MSG(freq_hz > 0.0, "FreeSpace requires freq > 0");
}

double FreeSpace::loss_db(double d_m) const {
  const double d = std::max(d_m, kMinDistanceM);
  // FSPL = 20 log10(4 pi d / lambda)
  const double lambda = wavelength_m(freq_hz_);
  return 20.0 * std::log10(4.0 * M_PI * d / lambda);
}

LogDistance::LogDistance(double loss_at_ref_db, double exponent,
                         double ref_dist_m)
    : loss_at_ref_db_(loss_at_ref_db),
      exponent_(exponent),
      ref_dist_m_(ref_dist_m) {
  ZEIOT_CHECK_MSG(exponent > 0.0, "LogDistance requires exponent > 0");
  ZEIOT_CHECK_MSG(ref_dist_m > 0.0, "LogDistance requires ref_dist > 0");
}

double LogDistance::loss_db(double d_m) const {
  const double d = std::max(d_m, kMinDistanceM);
  return loss_at_ref_db_ + 10.0 * exponent_ * std::log10(d / ref_dist_m_);
}

IndoorWalls::IndoorWalls(LogDistance base, double wall_loss_db)
    : base_(base), wall_loss_db_(wall_loss_db) {
  ZEIOT_CHECK_MSG(wall_loss_db >= 0.0, "wall loss must be >= 0 dB");
}

double IndoorWalls::loss_db(double d_m) const { return base_.loss_db(d_m); }

double IndoorWalls::loss_db(double d_m, int walls) const {
  ZEIOT_CHECK_MSG(walls >= 0, "wall count must be >= 0");
  return base_.loss_db(d_m) + wall_loss_db_ * static_cast<double>(walls);
}

double draw_shadowing_db(Rng& rng, double sigma_db) {
  ZEIOT_CHECK_MSG(sigma_db >= 0.0, "shadowing sigma must be >= 0");
  return rng.normal(0.0, sigma_db);
}

double received_dbm(const PathLossModel& model, double tx_dbm, double d_m,
                    double tx_gain_db, double rx_gain_db) {
  return tx_dbm + tx_gain_db + rx_gain_db - model.loss_db(d_m);
}

}  // namespace zeiot::radio
