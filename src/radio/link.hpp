// Link budget computation: ties together propagation, noise and BER models
// into per-link SNR/SINR and packet success probabilities.
//
// Backscatter links are the special case the paper cares about: the signal
// traverses source -> tag -> receiver with a reflection loss at the tag, so
// the budget multiplies two path losses (the "dyadic backscatter channel").
#pragma once

#include "radio/ber.hpp"
#include "radio/propagation.hpp"

namespace zeiot::radio {

/// Static description of a transmitter for budget purposes.
struct TxSpec {
  double power_dbm = 0.0;
  double antenna_gain_db = 0.0;
};

/// Static description of a receiver.
struct RxSpec {
  double antenna_gain_db = 0.0;
  double noise_figure_db = 6.0;
  double bandwidth_hz = 2e6;
};

/// Computed link budget.
struct LinkBudget {
  double rx_power_dbm = 0.0;
  double noise_dbm = 0.0;
  double snr_db = 0.0;
  double snr_linear = 0.0;
};

/// One-hop budget over `model` at distance `d_m`, plus optional extra loss
/// (shadowing, walls, body) in dB.
LinkBudget compute_link(const PathLossModel& model, const TxSpec& tx,
                        const RxSpec& rx, double d_m, double extra_loss_db = 0.0);

/// Backscatter (dyadic) budget: carrier source at distance `d_source_tag_m`
/// from the tag, receiver at `d_tag_rx_m`.  `reflection_loss_db` models the
/// tag's modulation efficiency (typically 5-10 dB when impedance switching).
LinkBudget compute_backscatter_link(const PathLossModel& model,
                                    const TxSpec& source, const RxSpec& rx,
                                    double d_source_tag_m, double d_tag_rx_m,
                                    double reflection_loss_db = 6.0,
                                    double extra_loss_db = 0.0);

/// SINR in dB when an interferer of `interference_dbm` overlaps the signal.
double sinr_db(double signal_dbm, double interference_dbm, double noise_dbm);

/// RF power (watts) available for harvesting at distance `d_m` from `tx`
/// through `model`, scaled by rectifier efficiency in [0,1].
double harvestable_power_watt(const PathLossModel& model, const TxSpec& tx,
                              double d_m, double rectifier_efficiency = 0.3);

}  // namespace zeiot::radio
