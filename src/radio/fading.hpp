// Small-scale fading sample generators.
//
// Used (a) to perturb instantaneous RSSI measurements in the sensing
// simulators and (b) to synthesize multipath CSI.  Power gains are
// normalised to unit mean so they compose with the large-scale models.
#pragma once

#include <complex>

#include "common/rng.hpp"

namespace zeiot::radio {

/// One Rayleigh-fading power gain (exponential with unit mean).
double rayleigh_power_gain(Rng& rng);

/// One Rician-fading power gain with K-factor `k` (linear, >= 0).
/// k = 0 degenerates to Rayleigh; large k approaches a constant 1.
double rician_power_gain(Rng& rng, double k);

/// Complex circular Gaussian sample with E[|h|^2] = 1 (Rayleigh amplitude).
std::complex<double> rayleigh_coeff(Rng& rng);

/// Complex Rician coefficient: deterministic LoS component of relative power
/// k/(k+1) at `los_phase` radians plus scattered component.
std::complex<double> rician_coeff(Rng& rng, double k, double los_phase);

}  // namespace zeiot::radio
