// Radio-propagation evaluation for deployment planning (paper Sec. V:
// "the radio wave propagation evaluation tools and network simulators can
// be used together to generate appropriate initial values depending on
// given location environments").
//
// For zero-energy fleets the planning question is concrete: where must
// the RF carriers (readers / APs) stand so that every tag position
// harvests enough power to operate?  This module rasterises harvestable
// power over the deployment area and greedily places carriers to maximise
// the covered fraction.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "radio/link.hpp"

namespace zeiot::radio {

/// A placed RF carrier (power source).
struct Carrier {
  Point2D position{};
  TxSpec tx{30.0, 2.0};  // 1 W EIRP-ish default
};

/// Rasterised harvestable power over the area.
struct CoverageMap {
  Rect area{};
  int cols = 0;
  int rows = 0;
  /// Harvestable power (watts) per cell, row-major.
  std::vector<double> harvest_watt;

  double at(int col, int row) const;
  /// Fraction of cells at or above `threshold_watt`.
  double covered_fraction(double threshold_watt) const;
  /// Weakest cell's harvestable power.
  double worst_watt() const;
};

/// Computes the coverage map: per cell, the *sum* of harvested power from
/// all carriers through `model` with the given rectifier efficiency.
CoverageMap compute_coverage(const Rect& area, double cell_m,
                             const std::vector<Carrier>& carriers,
                             const PathLossModel& model,
                             double rectifier_efficiency = 0.3);

/// Greedy carrier placement: repeatedly adds, from a grid of candidate
/// sites (`candidate_step_m` pitch), the carrier that most increases the
/// number of cells meeting `threshold_watt`, until `k` carriers are
/// placed or full coverage is reached.  Returns the chosen carriers.
std::vector<Carrier> greedy_place_carriers(
    const Rect& area, double cell_m, double candidate_step_m, int k,
    const PathLossModel& model, double threshold_watt,
    const TxSpec& carrier_tx = {30.0, 2.0}, double rectifier_efficiency = 0.3);

}  // namespace zeiot::radio
