#include "radio/ber.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace zeiot::radio {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ber_bpsk(double ebn0) {
  ZEIOT_CHECK_MSG(ebn0 >= 0.0, "Eb/N0 must be >= 0");
  return q_function(std::sqrt(2.0 * ebn0));
}

double ber_noncoherent_ook(double snr) {
  ZEIOT_CHECK_MSG(snr >= 0.0, "SNR must be >= 0");
  return 0.5 * std::exp(-snr / 2.0);
}

double ber_802154(double sinr) {
  ZEIOT_CHECK_MSG(sinr >= 0.0, "SINR must be >= 0");
  // IEEE 802.15.4-2006 Annex E: BER for the 2.4 GHz PHY as a function of
  // SINR, derived from 16-ary orthogonal signalling over 32 chips.
  // BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*SINR*(1/k - 1))
  double sum = 0.0;
  double binom = 16.0;  // C(16,1); updated multiplicatively
  for (int k = 2; k <= 16; ++k) {
    binom = binom * static_cast<double>(16 - k + 1) / static_cast<double>(k);
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    sum += sign * binom * std::exp(20.0 * sinr * (1.0 / static_cast<double>(k) - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * sum;
  return ber < 0.0 ? 0.0 : (ber > 0.5 ? 0.5 : ber);
}

double per_from_ber(double ber, std::size_t bits) {
  ZEIOT_CHECK_MSG(ber >= 0.0 && ber <= 1.0, "BER must be in [0,1]");
  if (ber == 0.0) return 0.0;
  // 1 - (1-ber)^bits, computed in log space for numerical stability.
  return 1.0 - std::exp(static_cast<double>(bits) * std::log1p(-ber));
}

double ber_80211(double snr, double coding_gain_db) {
  ZEIOT_CHECK_MSG(snr >= 0.0, "SNR must be >= 0");
  return ber_bpsk(snr * db_to_ratio(coding_gain_db));
}

}  // namespace zeiot::radio
