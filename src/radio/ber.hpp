// Bit- and packet-error-rate models for the PHYs used in the paper's
// ecosystem: IEEE 802.11 OFDM, IEEE 802.15.4 O-QPSK/DSSS, Bluetooth GFSK,
// and non-coherent backscatter on-off keying.
//
// All functions take the per-bit (or per-symbol) SNR as a *linear* ratio.
#pragma once

#include <cstddef>

namespace zeiot::radio {

/// Gaussian tail function Q(x) = P[N(0,1) > x].
double q_function(double x);

/// Coherent BPSK/QPSK bit error rate at Eb/N0 = `ebn0` (linear).
double ber_bpsk(double ebn0);

/// Non-coherent binary FSK / OOK with envelope detection — the standard
/// model for ultra-simple backscatter receivers: 0.5 * exp(-snr/2).
double ber_noncoherent_ook(double snr);

/// IEEE 802.15.4 2.4 GHz O-QPSK with 32-chip DSSS (16-ary orthogonal
/// approximation per the standard's Annex E formula).  `sinr` is the
/// per-chip SINR (linear).
double ber_802154(double sinr);

/// Packet error rate for `bits` independent bit errors at rate `ber`.
double per_from_ber(double ber, std::size_t bits);

/// Effective BER of an OFDM 802.11 link, abstracted as BPSK over the
/// per-subcarrier SNR with a coding gain of `coding_gain_db` (default 3 dB,
/// approximating rate-1/2 convolutional coding).
double ber_80211(double snr, double coding_gain_db = 3.0);

}  // namespace zeiot::radio
