// Large-scale radio propagation models.
//
// Every wireless subsystem in the library (WLAN, 802.15.4, BLE, backscatter)
// computes received power as
//   Prx[dBm] = Ptx[dBm] + Gtx[dB] + Grx[dB] - PL(d)[dB] - X[dB]
// where PL is one of the deterministic models below and X an optional
// log-normal shadowing term that is *static per link* (re-drawn only when a
// deployment changes), matching how indoor shadowing behaves.
#pragma once

#include <memory>

#include "common/geometry.hpp"
#include "common/rng.hpp"

namespace zeiot::radio {

/// Interface: deterministic path loss in dB at distance `d_m` metres.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;
  /// Path loss in dB; d_m is clamped to >= 0.1 m internally.
  virtual double loss_db(double d_m) const = 0;
};

/// Friis free-space path loss at carrier `freq_hz`.
class FreeSpace final : public PathLossModel {
 public:
  explicit FreeSpace(double freq_hz);
  double loss_db(double d_m) const override;

 private:
  double freq_hz_;
};

/// Log-distance model: PL(d) = PL(d0) + 10 n log10(d/d0).
/// Typical indoor 2.4 GHz: n in [2.5, 4], PL(1m) ~ 40 dB.
class LogDistance final : public PathLossModel {
 public:
  LogDistance(double loss_at_ref_db, double exponent, double ref_dist_m = 1.0);
  double loss_db(double d_m) const override;

  double exponent() const { return exponent_; }

 private:
  double loss_at_ref_db_;
  double exponent_;
  double ref_dist_m_;
};

/// ITU-style indoor model with wall penetration: log-distance plus
/// `wall_loss_db` per wall crossed (caller supplies the wall count).
class IndoorWalls final : public PathLossModel {
 public:
  IndoorWalls(LogDistance base, double wall_loss_db);
  double loss_db(double d_m) const override;
  /// Loss including `walls` penetrations.
  double loss_db(double d_m, int walls) const;

 private:
  LogDistance base_;
  double wall_loss_db_;
};

/// Draws a static log-normal shadowing offset (dB) for a link.
double draw_shadowing_db(Rng& rng, double sigma_db);

/// Convenience: received power in dBm through a model (no shadowing).
double received_dbm(const PathLossModel& model, double tx_dbm, double d_m,
                    double tx_gain_db = 0.0, double rx_gain_db = 0.0);

}  // namespace zeiot::radio
