#include "radio/link.hpp"

#include <cmath>

#include "common/units.hpp"

namespace zeiot::radio {

namespace {

LinkBudget finish(double rx_power_dbm, const RxSpec& rx) {
  LinkBudget b;
  b.rx_power_dbm = rx_power_dbm;
  b.noise_dbm =
      watt_to_dbm(thermal_noise_watt(rx.bandwidth_hz)) + rx.noise_figure_db;
  b.snr_db = b.rx_power_dbm - b.noise_dbm;
  b.snr_linear = db_to_ratio(b.snr_db);
  return b;
}

}  // namespace

LinkBudget compute_link(const PathLossModel& model, const TxSpec& tx,
                        const RxSpec& rx, double d_m, double extra_loss_db) {
  const double prx = tx.power_dbm + tx.antenna_gain_db + rx.antenna_gain_db -
                     model.loss_db(d_m) - extra_loss_db;
  return finish(prx, rx);
}

LinkBudget compute_backscatter_link(const PathLossModel& model,
                                    const TxSpec& source, const RxSpec& rx,
                                    double d_source_tag_m, double d_tag_rx_m,
                                    double reflection_loss_db,
                                    double extra_loss_db) {
  ZEIOT_CHECK_MSG(reflection_loss_db >= 0.0, "reflection loss must be >= 0");
  const double prx = source.power_dbm + source.antenna_gain_db +
                     rx.antenna_gain_db - model.loss_db(d_source_tag_m) -
                     reflection_loss_db - model.loss_db(d_tag_rx_m) -
                     extra_loss_db;
  return finish(prx, rx);
}

double sinr_db(double signal_dbm, double interference_dbm, double noise_dbm) {
  const double denom_w = dbm_to_watt(interference_dbm) + dbm_to_watt(noise_dbm);
  return watt_to_dbm(dbm_to_watt(signal_dbm)) - watt_to_dbm(denom_w);
}

double harvestable_power_watt(const PathLossModel& model, const TxSpec& tx,
                              double d_m, double rectifier_efficiency) {
  ZEIOT_CHECK_MSG(rectifier_efficiency >= 0.0 && rectifier_efficiency <= 1.0,
                  "rectifier efficiency in [0,1]");
  const double prx_dbm =
      tx.power_dbm + tx.antenna_gain_db - model.loss_db(d_m);
  return dbm_to_watt(prx_dbm) * rectifier_efficiency;
}

}  // namespace zeiot::radio
