#include "radio/fading.hpp"

#include <cmath>

namespace zeiot::radio {

double rayleigh_power_gain(Rng& rng) { return rng.exponential(1.0); }

double rician_power_gain(Rng& rng, double k) {
  ZEIOT_CHECK_MSG(k >= 0.0, "Rician K-factor must be >= 0");
  const auto h = rician_coeff(rng, k, 0.0);
  return std::norm(h);
}

std::complex<double> rayleigh_coeff(Rng& rng) {
  // Independent real/imag N(0, 1/2) gives E[|h|^2] = 1.
  const double s = std::sqrt(0.5);
  return {rng.normal(0.0, s), rng.normal(0.0, s)};
}

std::complex<double> rician_coeff(Rng& rng, double k, double los_phase) {
  ZEIOT_CHECK_MSG(k >= 0.0, "Rician K-factor must be >= 0");
  const double los_amp = std::sqrt(k / (k + 1.0));
  const double nlos_scale = std::sqrt(1.0 / (k + 1.0));
  const std::complex<double> los{los_amp * std::cos(los_phase),
                                 los_amp * std::sin(los_phase)};
  return los + nlos_scale * rayleigh_coeff(rng);
}

}  // namespace zeiot::radio
