#include "ml/dataset.hpp"

#include <algorithm>
#include <map>

namespace zeiot::ml {

void Dataset::add(Tensor x, int label) {
  ZEIOT_CHECK_MSG(label >= 0, "labels must be >= 0");
  if (!xs_.empty()) {
    ZEIOT_CHECK_MSG(x.shape() == xs_.front().shape(),
                    "sample shape " << x.shape_str() << " != dataset shape "
                                    << xs_.front().shape_str());
  }
  xs_.push_back(std::move(x));
  ys_.push_back(label);
}

const Tensor& Dataset::x(std::size_t i) const {
  ZEIOT_CHECK(i < xs_.size());
  return xs_[i];
}

int Dataset::label(std::size_t i) const {
  ZEIOT_CHECK(i < ys_.size());
  return ys_[i];
}

std::vector<int> Dataset::sample_shape() const {
  return xs_.empty() ? std::vector<int>{} : xs_.front().shape();
}

int Dataset::num_classes() const {
  int mx = -1;
  for (int y : ys_) mx = std::max(mx, y);
  return mx + 1;
}

std::pair<Tensor, std::vector<int>> Dataset::batch(
    const std::vector<std::size_t>& indices) const {
  ZEIOT_CHECK_MSG(!indices.empty(), "empty batch");
  std::vector<int> shape = sample_shape();
  shape.insert(shape.begin(), static_cast<int>(indices.size()));
  Tensor xb(shape);
  std::vector<int> yb;
  yb.reserve(indices.size());
  const std::size_t stride = xs_.front().size();
  for (std::size_t bi = 0; bi < indices.size(); ++bi) {
    const std::size_t i = indices[bi];
    ZEIOT_CHECK(i < xs_.size());
    std::copy(xs_[i].data(), xs_[i].data() + stride, xb.data() + bi * stride);
    yb.push_back(ys_[i]);
  }
  return {std::move(xb), std::move(yb)};
}

std::pair<Dataset, Dataset> Dataset::split(Rng& rng,
                                           double train_fraction) const {
  ZEIOT_CHECK_MSG(train_fraction > 0.0 && train_fraction < 1.0,
                  "train fraction must be in (0,1)");
  ZEIOT_CHECK_MSG(size() >= 2, "need >= 2 samples to split");
  auto order = rng.permutation(size());
  auto n_train = static_cast<std::size_t>(train_fraction *
                                          static_cast<double>(size()));
  n_train = std::clamp<std::size_t>(n_train, 1, size() - 1);
  Dataset train, test;
  for (std::size_t k = 0; k < order.size(); ++k) {
    auto& side = k < n_train ? train : test;
    side.add(xs_[order[k]], ys_[order[k]]);
  }
  return {std::move(train), std::move(test)};
}

std::pair<Dataset, Dataset> Dataset::stratified_split(
    Rng& rng, double train_fraction) const {
  ZEIOT_CHECK_MSG(train_fraction > 0.0 && train_fraction < 1.0,
                  "train fraction must be in (0,1)");
  ZEIOT_CHECK_MSG(size() >= 2, "need >= 2 samples to split");
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < size(); ++i) by_class[ys_[i]].push_back(i);
  Dataset train, test;
  for (auto& [label, idx] : by_class) {
    (void)label;
    rng.shuffle(idx);
    auto n_train = static_cast<std::size_t>(train_fraction *
                                            static_cast<double>(idx.size()));
    if (idx.size() >= 2) {
      n_train = std::clamp<std::size_t>(n_train, 1, idx.size() - 1);
    }
    for (std::size_t k = 0; k < idx.size(); ++k) {
      auto& side = k < n_train ? train : test;
      side.add(xs_[idx[k]], ys_[idx[k]]);
    }
  }
  ZEIOT_CHECK_MSG(!train.empty() && !test.empty(),
                  "stratified split produced an empty side");
  return {std::move(train), std::move(test)};
}

}  // namespace zeiot::ml
