#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zeiot::ml {

LogisticRegression::LogisticRegression(LogisticConfig cfg) : cfg_(cfg) {
  ZEIOT_CHECK_MSG(cfg.epochs > 0 && cfg.batch_size > 0, "epochs/batch > 0");
  ZEIOT_CHECK_MSG(cfg.lr > 0.0, "lr > 0");
  ZEIOT_CHECK_MSG(cfg.l2 >= 0.0, "l2 >= 0");
}

void LogisticRegression::fit(const FeatureMatrix& x, const LabelVector& y,
                             Rng& rng) {
  ZEIOT_CHECK_MSG(!x.empty() && x.size() == y.size(), "aligned non-empty x/y");
  dim_ = x.front().size();
  int mx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ZEIOT_CHECK_MSG(x[i].size() == dim_, "ragged feature matrix");
    ZEIOT_CHECK_MSG(y[i] >= 0, "labels must be >= 0");
    mx = std::max(mx, y[i]);
  }
  num_classes_ = mx + 1;
  const auto k = static_cast<std::size_t>(num_classes_);
  w_.assign(k * dim_, 0.0);
  b_.assign(k, 0.0);

  std::vector<double> probs(k);
  std::vector<double> gw(k * dim_);
  std::vector<double> gb(k);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    auto order = rng.permutation(x.size());
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch_size));
      std::fill(gw.begin(), gw.end(), 0.0);
      std::fill(gb.begin(), gb.end(), 0.0);
      for (std::size_t oi = start; oi < end; ++oi) {
        const std::size_t i = order[oi];
        probs = predict_proba(x[i]);
        for (std::size_t c = 0; c < k; ++c) {
          const double err =
              probs[c] - (static_cast<int>(c) == y[i] ? 1.0 : 0.0);
          gb[c] += err;
          for (std::size_t j = 0; j < dim_; ++j)
            gw[c * dim_ + j] += err * x[i][j];
        }
      }
      const double scale = cfg_.lr / static_cast<double>(end - start);
      for (std::size_t c = 0; c < k; ++c) {
        b_[c] -= scale * gb[c];
        for (std::size_t j = 0; j < dim_; ++j) {
          w_[c * dim_ + j] -=
              scale * (gw[c * dim_ + j] + cfg_.l2 * w_[c * dim_ + j]);
        }
      }
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(
    const std::vector<double>& row) const {
  ZEIOT_CHECK_MSG(num_classes_ > 0, "predict before fit");
  ZEIOT_CHECK_MSG(row.size() == dim_, "feature count mismatch");
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<double> z(k);
  for (std::size_t c = 0; c < k; ++c) {
    double acc = b_[c];
    for (std::size_t j = 0; j < dim_; ++j) acc += w_[c * dim_ + j] * row[j];
    z[c] = acc;
  }
  const double mx = *std::max_element(z.begin(), z.end());
  double denom = 0.0;
  for (auto& v : z) {
    v = std::exp(v - mx);
    denom += v;
  }
  for (auto& v : z) v /= denom;
  return z;
}

int LogisticRegression::predict(const std::vector<double>& row) const {
  const auto p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double LogisticRegression::score(const FeatureMatrix& x,
                                 const LabelVector& y) const {
  ZEIOT_CHECK_MSG(x.size() == y.size() && !x.empty(), "aligned non-empty x/y");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace zeiot::ml
