// Labelled dataset container with batching and deterministic splits.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace zeiot::ml {

/// A set of equally shaped feature tensors with integer class labels.
class Dataset {
 public:
  Dataset() = default;

  /// Adds one sample; all samples must share the same shape.
  void add(Tensor x, int label);

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const Tensor& x(std::size_t i) const;
  int label(std::size_t i) const;
  const std::vector<int>& labels() const { return ys_; }
  /// Shape of one sample (empty if the dataset is empty).
  std::vector<int> sample_shape() const;
  /// Number of distinct classes = max label + 1.
  int num_classes() const;

  /// Stacks the samples at `indices` into a batch tensor (N prepended to the
  /// sample shape) and the matching label vector.
  std::pair<Tensor, std::vector<int>> batch(
      const std::vector<std::size_t>& indices) const;

  /// Deterministic shuffled split: first ~`train_fraction` to train.
  /// Guarantees both sides non-empty when size >= 2.
  std::pair<Dataset, Dataset> split(Rng& rng, double train_fraction) const;

  /// Stratified split preserving class proportions on both sides.
  std::pair<Dataset, Dataset> stratified_split(Rng& rng,
                                               double train_fraction) const;

 private:
  std::vector<Tensor> xs_;
  std::vector<int> ys_;
};

}  // namespace zeiot::ml
