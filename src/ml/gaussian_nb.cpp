#include "ml/gaussian_nb.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zeiot::ml {

GaussianNaiveBayes::GaussianNaiveBayes(double var_floor)
    : var_floor_(var_floor) {
  ZEIOT_CHECK_MSG(var_floor > 0.0, "variance floor must be > 0");
}

void GaussianNaiveBayes::fit(const FeatureMatrix& x, const LabelVector& y) {
  ZEIOT_CHECK_MSG(!x.empty() && x.size() == y.size(), "aligned non-empty x/y");
  dim_ = x.front().size();
  int mx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ZEIOT_CHECK_MSG(x[i].size() == dim_, "ragged feature matrix");
    ZEIOT_CHECK_MSG(y[i] >= 0, "labels must be >= 0");
    mx = std::max(mx, y[i]);
  }
  num_classes_ = mx + 1;
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<std::size_t> counts(k, 0);
  mean_.assign(k * dim_, 0.0);
  var_.assign(k * dim_, 0.0);
  log_prior_.assign(k, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto c = static_cast<std::size_t>(y[i]);
    ++counts[c];
    for (std::size_t j = 0; j < dim_; ++j) mean_[c * dim_ + j] += x[i][j];
  }
  for (std::size_t c = 0; c < k; ++c) {
    ZEIOT_CHECK_MSG(counts[c] > 0, "class " << c << " has no training samples");
    for (std::size_t j = 0; j < dim_; ++j)
      mean_[c * dim_ + j] /= static_cast<double>(counts[c]);
    log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                             static_cast<double>(x.size()));
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto c = static_cast<std::size_t>(y[i]);
    for (std::size_t j = 0; j < dim_; ++j) {
      const double d = x[i][j] - mean_[c * dim_ + j];
      var_[c * dim_ + j] += d * d;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t j = 0; j < dim_; ++j) {
      var_[c * dim_ + j] = std::max(
          var_floor_, var_[c * dim_ + j] / static_cast<double>(counts[c]));
    }
  }
}

std::vector<double> GaussianNaiveBayes::log_likelihoods(
    const std::vector<double>& row) const {
  ZEIOT_CHECK_MSG(num_classes_ > 0, "predict before fit");
  ZEIOT_CHECK_MSG(row.size() == dim_, "feature count mismatch");
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<double> ll(k);
  for (std::size_t c = 0; c < k; ++c) {
    double acc = log_prior_[c];
    for (std::size_t j = 0; j < dim_; ++j) {
      const double v = var_[c * dim_ + j];
      const double d = row[j] - mean_[c * dim_ + j];
      acc += -0.5 * (std::log(2.0 * M_PI * v) + d * d / v);
    }
    ll[c] = acc;
  }
  return ll;
}

int GaussianNaiveBayes::predict(const std::vector<double>& row) const {
  const auto ll = log_likelihoods(row);
  return static_cast<int>(std::max_element(ll.begin(), ll.end()) - ll.begin());
}

double GaussianNaiveBayes::score(const FeatureMatrix& x,
                                 const LabelVector& y) const {
  ZEIOT_CHECK_MSG(x.size() == y.size() && !x.empty(), "aligned non-empty x/y");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace zeiot::ml
