#include "ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/kernels/gemm.hpp"
#include "ml/kernels/im2col.hpp"
#include "par/parallel.hpp"

namespace zeiot::ml {

namespace {

void check_nchw(const Tensor& x, const char* who) {
  ZEIOT_CHECK_MSG(x.ndim() == 4, who << " expects NCHW input, got rank "
                                     << x.ndim());
}

// Fixed chunk target for batch/row parallelism.  The grain is a pure
// function of n (never of the worker count), so chunk boundaries — and with
// them every per-chunk partial sum and its fold order — are identical for
// ZEIOT_THREADS=1 and ZEIOT_THREADS=N.
constexpr std::size_t kChunkTarget = 8;

std::size_t chunk_grain(std::size_t n) {
  return (n + kChunkTarget - 1) / kChunkTarget;
}

}  // namespace

// ---------------------------------------------------------------- Conv2D --

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int padding,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding) {
  ZEIOT_CHECK_MSG(in_channels > 0 && out_channels > 0, "channels must be > 0");
  ZEIOT_CHECK_MSG(kernel > 0, "kernel must be > 0");
  ZEIOT_CHECK_MSG(padding >= 0, "padding must be >= 0");
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  weight_.value.he_init(rng, in_channels * kernel * kernel);
  weight_.grad = Tensor::zeros_like(weight_.value);
  bias_.value = Tensor({out_channels});
  bias_.grad = Tensor::zeros_like(bias_.value);
}

std::vector<int> Conv2D::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 3, "conv2d input shape must be (C,H,W)");
  ZEIOT_CHECK_MSG(in[0] == in_channels_, "conv2d channel mismatch");
  const int oh = in[1] + 2 * padding_ - kernel_ + 1;
  const int ow = in[2] + 2 * padding_ - kernel_ + 1;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "conv2d output would be empty");
  return {out_channels_, oh, ow};
}

Tensor Conv2D::forward(const Tensor& x, bool /*train*/) {
  check_nchw(x, "Conv2D");
  ZEIOT_CHECK_MSG(x.dim(1) == in_channels_, "Conv2D channel mismatch: got "
                                                << x.dim(1) << " expected "
                                                << in_channels_);
  cached_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = h + 2 * padding_ - kernel_ + 1;
  const int ow = w + 2 * padding_ - kernel_ + 1;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "Conv2D output would be empty");
  // The convolution as a GEMM: weight (oc x K) times the im2col panel
  // (K x P) per image, K = ic*k*k, P = oh*ow.
  const int kdim = in_channels_ * kernel_ * kernel_;
  const int p = oh * ow;
  Tensor y({n, out_channels_, oh, ow});

  const auto grain = chunk_grain(static_cast<std::size_t>(n));
  const auto chunks = par::make_chunks(static_cast<std::size_t>(n), grain);
  // Carve sizes rounded to 64-byte multiples so every panel starts on an
  // aligned boundary (the padding floats are never read or written).
  const std::size_t colsz = kernels::Workspace::align_floats(
      static_cast<std::size_t>(kdim) * static_cast<std::size_t>(p));
  // One im2col panel per chunk, carved on the calling thread before the
  // parallel region (Workspace::alloc is not thread-safe).
  auto& ws = scratch();
  ws.reset();
  ws.require(chunks.size() * colsz);
  std::vector<float*> cols(chunks.size());
  for (const auto& ch : chunks) cols[ch.index] = ws.alloc(colsz);

  const float* wmat = weight_.value.data();  // (oc, K) row-major already
  const float* bias = bias_.value.data();
  const std::size_t xstride =
      static_cast<std::size_t>(in_channels_) * h * static_cast<std::size_t>(w);
  const std::size_t ystride =
      static_cast<std::size_t>(out_channels_) * static_cast<std::size_t>(p);
  par::parallel_for_chunks(
      static_cast<std::size_t>(n), grain,
      [&](const par::ChunkRange& ch) {
        float* panel = cols[ch.index];
        for (std::size_t b = ch.begin; b < ch.end; ++b) {
          kernels::im2col(x.data() + b * xstride, in_channels_, h, w, kernel_,
                          padding_, oh, ow, panel);
          float* yb = y.data() + b * ystride;
          for (int oc = 0; oc < out_channels_; ++oc) {
            std::fill(yb + static_cast<std::size_t>(oc) * p,
                      yb + static_cast<std::size_t>(oc + 1) * p, bias[oc]);
          }
          kernels::sgemm_accum(out_channels_, p, kdim, wmat, kdim, panel, p,
                               yb, p);
        }
      },
      pool_);
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!cached_x_.empty(), "backward before forward");
  const Tensor& x = cached_x_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = grad_y.dim(2), ow = grad_y.dim(3);
  const int kdim = in_channels_ * kernel_ * kernel_;
  const int p = oh * ow;
  Tensor grad_x = Tensor::zeros_like(x);

  const auto grain = chunk_grain(static_cast<std::size_t>(n));
  const auto chunks = par::make_chunks(static_cast<std::size_t>(n), grain);
  const std::size_t colsz = kernels::Workspace::align_floats(
      static_cast<std::size_t>(kdim) * static_cast<std::size_t>(p));
  const std::size_t wsz = static_cast<std::size_t>(out_channels_) * kdim;
  const std::size_t awsz = kernels::Workspace::align_floats(wsz);
  const std::size_t ocsz = static_cast<std::size_t>(out_channels_);
  const std::size_t aocsz = kernels::Workspace::align_floats(ocsz);
  // Per chunk: an im2col panel, a dcols panel for the data gradient, and
  // private weight/bias gradient partials folded in chunk order below.
  auto& ws = scratch();
  ws.reset();
  ws.require(awsz + chunks.size() * (2 * colsz + awsz + aocsz));
  float* wt = ws.alloc(awsz);  // weight transposed to (K, oc)
  std::vector<float*> cols(chunks.size()), dcols(chunks.size()),
      gw_part(chunks.size()), gb_part(chunks.size());
  for (const auto& ch : chunks) {
    cols[ch.index] = ws.alloc(colsz);
    dcols[ch.index] = ws.alloc(colsz);
    gw_part[ch.index] = ws.alloc(awsz);
    gb_part[ch.index] = ws.alloc(aocsz);
  }
  kernels::transpose(out_channels_, kdim, weight_.value.data(), kdim, wt,
                     out_channels_);

  const std::size_t xstride =
      static_cast<std::size_t>(in_channels_) * h * static_cast<std::size_t>(w);
  const std::size_t ystride =
      static_cast<std::size_t>(out_channels_) * static_cast<std::size_t>(p);
  par::parallel_for_chunks(
      static_cast<std::size_t>(n), grain,
      [&](const par::ChunkRange& ch) {
        float* panel = cols[ch.index];
        float* dpanel = dcols[ch.index];
        float* gwp = gw_part[ch.index];
        float* gbp = gb_part[ch.index];
        std::fill(gwp, gwp + wsz, 0.0f);
        std::fill(gbp, gbp + ocsz, 0.0f);
        for (std::size_t b = ch.begin; b < ch.end; ++b) {
          const float* gy = grad_y.data() + b * ystride;
          // dL/dW += gy (oc x P) * cols^T (P x K) — one A*B^T GEMM.
          kernels::im2col(x.data() + b * xstride, in_channels_, h, w, kernel_,
                          padding_, oh, ow, panel);
          kernels::sgemm_abt_accum(out_channels_, kdim, p, gy, p, panel, p,
                                   gwp, kdim);
          // dL/dbias: row reductions of gy.
          for (int oc = 0; oc < out_channels_; ++oc) {
            const float* row = gy + static_cast<std::size_t>(oc) * p;
            float acc = 0.0f;
            for (int j = 0; j < p; ++j) acc += row[j];
            gbp[oc] += acc;
          }
          // dL/dx: dcols (K x P) = W^T (K x oc) * gy (oc x P), scattered
          // back through col2im.
          std::fill(dpanel, dpanel + colsz, 0.0f);
          kernels::sgemm_accum(kdim, p, out_channels_, wt, out_channels_, gy,
                               p, dpanel, p);
          kernels::col2im_accum(dpanel, in_channels_, h, w, kernel_, padding_,
                                oh, ow, grad_x.data() + b * xstride);
        }
      },
      pool_);

  // Fold the per-chunk gradient partials on the calling thread in chunk
  // order — the ordered-reduce discipline that keeps parameter gradients
  // bit-identical at any thread count.
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  for (const auto& ch : chunks) {
    const float* gwp = gw_part[ch.index];
    for (std::size_t i = 0; i < wsz; ++i) gw[i] += gwp[i];
    const float* gbp = gb_part[ch.index];
    for (std::size_t i = 0; i < ocsz; ++i) gb[i] += gbp[i];
  }
  return grad_x;
}

// -------------------------------------------------------------- MaxPool2D --

MaxPool2D::MaxPool2D(int k) : k_(k) {
  ZEIOT_CHECK_MSG(k > 0, "pool size must be > 0");
}

std::vector<int> MaxPool2D::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 3, "pool input shape must be (C,H,W)");
  const int oh = in[1] / k_;
  const int ow = in[2] / k_;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "pool output would be empty");
  return {in[0], oh, ow};
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*train*/) {
  check_nchw(x, "MaxPool2D");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / k_, ow = w / k_;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "MaxPool2D output would be empty");
  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.size(), 0);
  const std::size_t planes = static_cast<std::size_t>(n) * c;
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  par::parallel_for_chunks(
      planes, chunk_grain(planes),
      [&](const par::ChunkRange& ch) {
        for (std::size_t pl = ch.begin; pl < ch.end; ++pl) {
          const float* xp = x.data() + pl * in_plane;
          float* yp = y.data() + pl * out_plane;
          std::size_t* ap = argmax_.data() + pl * out_plane;
          std::size_t out_i = 0;
          for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox, ++out_i) {
              float best = -std::numeric_limits<float>::infinity();
              std::size_t best_idx = 0;
              const std::size_t win =
                  static_cast<std::size_t>(oy) * k_ * w +
                  static_cast<std::size_t>(ox) * k_;
              for (int ky = 0; ky < k_; ++ky) {
                const float* row = xp + win + static_cast<std::size_t>(ky) * w;
                for (int kx = 0; kx < k_; ++kx) {
                  if (row[kx] > best) {
                    best = row[kx];
                    best_idx = pl * in_plane + win +
                               static_cast<std::size_t>(ky) * w + kx;
                  }
                }
              }
              yp[out_i] = best;
              ap[out_i] = best_idx;
            }
          }
        }
      },
      pool_);
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  ZEIOT_CHECK_MSG(grad_y.size() == argmax_.size(), "pool backward size mismatch");
  Tensor grad_x(in_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_x[argmax_[i]] += grad_y[i];
  }
  return grad_x;
}

// ------------------------------------------------------------------- ReLU --

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  mask_.resize(x.size());
  const float* src = x.data();
  float* dst = y.data();
  std::uint8_t* m = mask_.data();
  const std::size_t sz = x.size();
  for (std::size_t i = 0; i < sz; ++i) {
    const bool pos = src[i] > 0.0f;
    m[i] = pos ? 1 : 0;
    if (!pos) dst[i] = 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(grad_y.size() == mask_.size(), "relu backward size mismatch");
  Tensor grad_x = grad_y;
  float* g = grad_x.data();
  const std::uint8_t* m = mask_.data();
  const std::size_t sz = grad_x.size();
  for (std::size_t i = 0; i < sz; ++i) {
    if (m[i] == 0) g[i] = 0.0f;
  }
  return grad_x;
}

// ---------------------------------------------------------------- Flatten --

std::vector<int> Flatten::output_shape(const std::vector<int>& in) const {
  int prod = 1;
  for (int d : in) prod *= d;
  return {prod};
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int features = static_cast<int>(x.size()) / n;
  return x.reshape({n, features});
}

Tensor Flatten::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  return grad_y.reshape(in_shape_);
}

// ------------------------------------------------------------------ Dense --

Dense::Dense(int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  ZEIOT_CHECK_MSG(in_features > 0 && out_features > 0, "features must be > 0");
  weight_.value = Tensor({out_features, in_features});
  weight_.value.he_init(rng, in_features);
  weight_.grad = Tensor::zeros_like(weight_.value);
  bias_.value = Tensor({out_features});
  bias_.grad = Tensor::zeros_like(bias_.value);
}

std::vector<int> Dense::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 1 && in[0] == in_features_,
                  "dense input shape mismatch");
  return {out_features_};
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  ZEIOT_CHECK_MSG(x.ndim() == 2, "Dense expects (N, features)");
  ZEIOT_CHECK_MSG(x.dim(1) == in_features_, "Dense feature mismatch: got "
                                                << x.dim(1) << " expected "
                                                << in_features_);
  cached_x_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_features_});
  const float* wmat = weight_.value.data();
  const float* bias = bias_.value.data();
  const auto grain = chunk_grain(static_cast<std::size_t>(n));
  // y = x * W^T + bias: bias-prefill rows, then one A*B^T GEMM per batch
  // chunk (disjoint row ranges, so any thread count gives the same bits).
  par::parallel_for_chunks(
      static_cast<std::size_t>(n), grain,
      [&](const par::ChunkRange& ch) {
        float* yb = y.data() + ch.begin * out_features_;
        for (std::size_t r = 0; r < ch.size(); ++r) {
          std::copy(bias, bias + out_features_, yb + r * out_features_);
        }
        kernels::sgemm_abt_accum(static_cast<int>(ch.size()), out_features_,
                                 in_features_,
                                 x.data() + ch.begin * in_features_,
                                 in_features_, wmat, in_features_, yb,
                                 out_features_);
      },
      pool_);
  return y;
}

Tensor Dense::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!cached_x_.empty(), "backward before forward");
  const Tensor& x = cached_x_;
  const int n = x.dim(0);
  Tensor grad_x({n, in_features_});
  const float* wmat = weight_.value.data();

  // dL/dx (n x in) = gy (n x out) * W (out x in), chunked over batch rows.
  const auto rgrain = chunk_grain(static_cast<std::size_t>(n));
  par::parallel_for_chunks(
      static_cast<std::size_t>(n), rgrain,
      [&](const par::ChunkRange& ch) {
        kernels::sgemm_accum(static_cast<int>(ch.size()), in_features_,
                             out_features_,
                             grad_y.data() + ch.begin * out_features_,
                             out_features_, wmat, in_features_,
                             grad_x.data() + ch.begin * in_features_,
                             in_features_);
      },
      pool_);

  // dL/dW (out x in) += gy^T (out x n) * x (n x in) and dL/dbias row sums,
  // chunked over output rows — each row accumulates its own k-sum, so the
  // result is independent of the chunk-to-thread mapping.
  auto& ws = scratch();
  ws.reset();
  const std::size_t gtsz =
      static_cast<std::size_t>(out_features_) * static_cast<std::size_t>(n);
  ws.require(gtsz);
  float* gt = ws.alloc(gtsz);
  kernels::transpose(n, out_features_, grad_y.data(), out_features_, gt, n);
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  const auto ograin = chunk_grain(static_cast<std::size_t>(out_features_));
  par::parallel_for_chunks(
      static_cast<std::size_t>(out_features_), ograin,
      [&](const par::ChunkRange& ch) {
        kernels::sgemm_accum(static_cast<int>(ch.size()), in_features_, n,
                             gt + ch.begin * n, n, x.data(), in_features_,
                             gw + ch.begin * in_features_, in_features_);
        for (std::size_t o = ch.begin; o < ch.end; ++o) {
          const float* row = gt + o * n;
          float acc = 0.0f;
          for (int b = 0; b < n; ++b) acc += row[b];
          gb[o] += acc;
        }
      },
      pool_);
  return grad_x;
}

// ---------------------------------------------------------------- Dropout --

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(rng) {
  ZEIOT_CHECK_MSG(p >= 0.0 && p < 1.0, "dropout p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  Tensor y = x;
  scale_.assign(x.size(), 1.0f);
  if (train && p_ > 0.0) {
    const auto keep = static_cast<float>(1.0 / (1.0 - p_));
    float* dst = y.data();
    float* sc = scale_.data();
    const std::size_t sz = y.size();
    for (std::size_t i = 0; i < sz; ++i) {
      if (rng_.bernoulli(p_)) {
        sc[i] = 0.0f;
        dst[i] = 0.0f;
      } else {
        sc[i] = keep;
        dst[i] *= keep;
      }
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(grad_y.size() == scale_.size(), "dropout size mismatch");
  Tensor grad_x = grad_y;
  float* g = grad_x.data();
  const float* sc = scale_.data();
  const std::size_t sz = grad_x.size();
  for (std::size_t i = 0; i < sz; ++i) g[i] *= sc[i];
  return grad_x;
}

}  // namespace zeiot::ml
