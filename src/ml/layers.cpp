#include "ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace zeiot::ml {

namespace {

void check_nchw(const Tensor& x, const char* who) {
  ZEIOT_CHECK_MSG(x.ndim() == 4, who << " expects NCHW input, got rank "
                                     << x.ndim());
}

}  // namespace

// ---------------------------------------------------------------- Conv2D --

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int padding,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding) {
  ZEIOT_CHECK_MSG(in_channels > 0 && out_channels > 0, "channels must be > 0");
  ZEIOT_CHECK_MSG(kernel > 0, "kernel must be > 0");
  ZEIOT_CHECK_MSG(padding >= 0, "padding must be >= 0");
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  weight_.value.he_init(rng, in_channels * kernel * kernel);
  weight_.grad = Tensor::zeros_like(weight_.value);
  bias_.value = Tensor({out_channels});
  bias_.grad = Tensor::zeros_like(bias_.value);
}

std::vector<int> Conv2D::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 3, "conv2d input shape must be (C,H,W)");
  ZEIOT_CHECK_MSG(in[0] == in_channels_, "conv2d channel mismatch");
  const int oh = in[1] + 2 * padding_ - kernel_ + 1;
  const int ow = in[2] + 2 * padding_ - kernel_ + 1;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "conv2d output would be empty");
  return {out_channels_, oh, ow};
}

Tensor Conv2D::forward(const Tensor& x, bool /*train*/) {
  check_nchw(x, "Conv2D");
  ZEIOT_CHECK_MSG(x.dim(1) == in_channels_, "Conv2D channel mismatch: got "
                                                << x.dim(1) << " expected "
                                                << in_channels_);
  cached_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = h + 2 * padding_ - kernel_ + 1;
  const int ow = w + 2 * padding_ - kernel_ + 1;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "Conv2D output would be empty");
  Tensor y({n, out_channels_, oh, ow});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float bias = bias_.value[static_cast<std::size_t>(oc)];
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = bias;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy + ky - padding_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox + kx - padding_;
                if (ix < 0 || ix >= w) continue;
                acc += x.at({b, ic, iy, ix}) *
                       weight_.value.at({oc, ic, ky, kx});
              }
            }
          }
          y.at({b, oc, oy, ox}) = acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!cached_x_.empty(), "backward before forward");
  const Tensor& x = cached_x_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = grad_y.dim(2), ow = grad_y.dim(3);
  Tensor grad_x = Tensor::zeros_like(x);
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = grad_y.at({b, oc, oy, ox});
          if (g == 0.0f) continue;
          bias_.grad[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy + ky - padding_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox + kx - padding_;
                if (ix < 0 || ix >= w) continue;
                weight_.grad.at({oc, ic, ky, kx}) += g * x.at({b, ic, iy, ix});
                grad_x.at({b, ic, iy, ix}) +=
                    g * weight_.value.at({oc, ic, ky, kx});
              }
            }
          }
        }
      }
    }
  }
  return grad_x;
}

// -------------------------------------------------------------- MaxPool2D --

MaxPool2D::MaxPool2D(int k) : k_(k) {
  ZEIOT_CHECK_MSG(k > 0, "pool size must be > 0");
}

std::vector<int> MaxPool2D::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 3, "pool input shape must be (C,H,W)");
  const int oh = in[1] / k_;
  const int ow = in[2] / k_;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "pool output would be empty");
  return {in[0], oh, ow};
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*train*/) {
  check_nchw(x, "MaxPool2D");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / k_, ow = w / k_;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "MaxPool2D output would be empty");
  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.size(), 0);
  std::size_t out_i = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (int ky = 0; ky < k_; ++ky) {
            for (int kx = 0; kx < k_; ++kx) {
              const int iy = oy * k_ + ky;
              const int ix = ox * k_ + kx;
              const std::size_t idx = x.offset({b, ch, iy, ix});
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y[out_i] = best;
          argmax_[out_i] = best_idx;
          ++out_i;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  ZEIOT_CHECK_MSG(grad_y.size() == argmax_.size(), "pool backward size mismatch");
  Tensor grad_x(in_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_x[argmax_[i]] += grad_y[i];
  }
  return grad_x;
}

// ------------------------------------------------------------------- ReLU --

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  mask_.assign(x.size(), false);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(grad_y.size() == mask_.size(), "relu backward size mismatch");
  Tensor grad_x = grad_y;
  for (std::size_t i = 0; i < grad_x.size(); ++i) {
    if (!mask_[i]) grad_x[i] = 0.0f;
  }
  return grad_x;
}

// ---------------------------------------------------------------- Flatten --

std::vector<int> Flatten::output_shape(const std::vector<int>& in) const {
  int prod = 1;
  for (int d : in) prod *= d;
  return {prod};
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  const int n = x.dim(0);
  const int features = static_cast<int>(x.size()) / n;
  return x.reshape({n, features});
}

Tensor Flatten::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  return grad_y.reshape(in_shape_);
}

// ------------------------------------------------------------------ Dense --

Dense::Dense(int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  ZEIOT_CHECK_MSG(in_features > 0 && out_features > 0, "features must be > 0");
  weight_.value = Tensor({out_features, in_features});
  weight_.value.he_init(rng, in_features);
  weight_.grad = Tensor::zeros_like(weight_.value);
  bias_.value = Tensor({out_features});
  bias_.grad = Tensor::zeros_like(bias_.value);
}

std::vector<int> Dense::output_shape(const std::vector<int>& in) const {
  ZEIOT_CHECK_MSG(in.size() == 1 && in[0] == in_features_,
                  "dense input shape mismatch");
  return {out_features_};
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  ZEIOT_CHECK_MSG(x.ndim() == 2, "Dense expects (N, features)");
  ZEIOT_CHECK_MSG(x.dim(1) == in_features_, "Dense feature mismatch: got "
                                                << x.dim(1) << " expected "
                                                << in_features_);
  cached_x_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_features_});
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<std::size_t>(b) * in_features_;
    for (int o = 0; o < out_features_; ++o) {
      const float* wrow =
          weight_.value.data() + static_cast<std::size_t>(o) * in_features_;
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_features_; ++i) acc += wrow[i] * xb[i];
      y.at({b, o}) = acc;
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(!cached_x_.empty(), "backward before forward");
  const Tensor& x = cached_x_;
  const int n = x.dim(0);
  Tensor grad_x({n, in_features_});
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<std::size_t>(b) * in_features_;
    float* gxb = grad_x.data() + static_cast<std::size_t>(b) * in_features_;
    for (int o = 0; o < out_features_; ++o) {
      const float g = grad_y.at({b, o});
      if (g == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(o)] += g;
      float* gw =
          weight_.grad.data() + static_cast<std::size_t>(o) * in_features_;
      const float* wrow =
          weight_.value.data() + static_cast<std::size_t>(o) * in_features_;
      for (int i = 0; i < in_features_; ++i) {
        gw[i] += g * xb[i];
        gxb[i] += g * wrow[i];
      }
    }
  }
  return grad_x;
}

// ---------------------------------------------------------------- Dropout --

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(rng) {
  ZEIOT_CHECK_MSG(p >= 0.0 && p < 1.0, "dropout p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  Tensor y = x;
  scale_.assign(x.size(), 1.0f);
  if (train && p_ > 0.0) {
    const auto keep = static_cast<float>(1.0 / (1.0 - p_));
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (rng_.bernoulli(p_)) {
        scale_[i] = 0.0f;
        y[i] = 0.0f;
      } else {
        scale_[i] = keep;
        y[i] *= keep;
      }
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_y) {
  ZEIOT_CHECK_MSG(grad_y.size() == scale_.size(), "dropout size mismatch");
  Tensor grad_x = grad_y;
  for (std::size_t i = 0; i < grad_x.size(); ++i) grad_x[i] *= scale_[i];
  return grad_x;
}

}  // namespace zeiot::ml
