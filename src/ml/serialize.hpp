// Weight (de)serialization for trained networks.
//
// A deployed MicroDeep network is trained once and then distributed to
// sensor nodes; persisting and reloading the learned parameters is the
// bridge between the two phases.  The format is a small, versioned,
// endian-explicit binary container of the network's parameter tensors
// (architecture is code, weights are data — the loaded network must be
// constructed with the same topology).
#pragma once

#include <iosfwd>
#include <string>

#include "ml/network.hpp"
#include "ml/quantize.hpp"

namespace zeiot::ml {

/// Writes all trainable parameters of `net` to `os`.
/// Throws zeiot::Error on stream failure.
void save_weights(const Network& net, std::ostream& os);
void save_weights(const Network& net, const std::string& path);

/// Loads parameters into `net`, which must have the exact same parameter
/// structure (count and shapes) as the network that was saved.
/// Throws zeiot::Error on format mismatch or stream failure.
void load_weights(Network& net, std::istream& is);
void load_weights(Network& net, const std::string& path);

/// Writes a quantized network (op list, geometry, int8 weights, int32
/// biases, requant tables, scales) to `os`.  Unlike the float format the
/// container is self-describing: load_quantized reconstructs the network
/// without a pre-built architecture.  Magic "ZEIQ", version 1,
/// little-endian.  Throws zeiot::Error on stream failure.
void save_quantized(const QuantizedNetwork& qnet, std::ostream& os);
void save_quantized(const QuantizedNetwork& qnet, const std::string& path);

/// Loads a quantized network saved by save_quantized.  Throws zeiot::Error
/// on format mismatch, truncation, or trailing bytes.
QuantizedNetwork load_quantized(std::istream& is);
QuantizedNetwork load_quantized(const std::string& path);

}  // namespace zeiot::ml
