// Runtime-dispatched SIMD backend table for the GEMM/im2col kernels.
//
// Every hot-path entry point (sgemm_accum, sgemm_abt_accum, igemm_abt_accum,
// im2col) routes through one function-pointer table selected ONCE at first
// use:
//
//   1. the ZEIOT_KERNEL_BACKEND environment variable ("scalar", "avx2",
//      "auto"/unset) — requesting a backend the host cannot run throws
//      zeiot::Error (loud beats silently slow), and
//   2. otherwise CPUID: the fastest backend the host supports (AVX2 requires
//      both the avx2 and fma feature bits).
//
// Determinism contract: each backend keeps its OWN fixed summation order —
// a pure function of the operand shapes, never of the worker count — so a
// given backend is bit-identical at any ZEIOT_THREADS and across reruns.
// Backends may differ from each other within small ULP bounds on float
// kernels (the scalar order groups k-terms in fours; the AVX2 order uses
// 8-lane FMA chains); tests/test_kernel_backends.cpp pins both the per-
// backend bit-identity and the cross-backend ULP agreement.  The int8
// kernel is exact integer arithmetic, so its results are identical across
// ALL backends.
//
// The dispatch matrix:
//
//   backend | float GEMMs              | int8 GEMM          | im2col
//   --------+--------------------------+--------------------+--------------
//   scalar  | cache-blocked, k-by-4    | exact i32 dots     | row copies
//   avx2    | 8-lane FMA register tile | madd_epi16 widening| (same: pure
//           |                          | (exact, == scalar) |  data movement)
//
// NEON is a recognised name but reports unavailable until an aarch64
// backend lands; the scalar loops auto-vectorise reasonably there.
#pragma once

#include <cstdint>
#include <string>

namespace zeiot::ml::kernels {

enum class BackendKind : int { Scalar = 0, Avx2 = 1, Neon = 2 };

inline constexpr int kNumBackendKinds = 3;

using SgemmFn = void (*)(int m, int n, int k, const float* a, int lda,
                         const float* b, int ldb, float* c, int ldc);
using IgemmAbtFn = void (*)(int m, int n, int k, const std::int8_t* a,
                            int lda, const std::int8_t* b, int ldb,
                            std::int32_t* c, int ldc);
using Im2colFn = void (*)(const float* x, int channels, int h, int w,
                          int kernel, int pad, int oh, int ow, float* out);

/// One dispatch-table row.  All pointers are non-null for available
/// backends.
struct Backend {
  BackendKind kind = BackendKind::Scalar;
  const char* name = "scalar";
  SgemmFn sgemm_accum = nullptr;
  SgemmFn sgemm_abt_accum = nullptr;
  IgemmAbtFn igemm_abt_accum = nullptr;
  Im2colFn im2col = nullptr;
};

/// The active table row.  First call resolves ZEIOT_KERNEL_BACKEND / CPUID;
/// later calls are one atomic pointer load.
const Backend& active_backend();

/// True when the host can execute `kind` (scalar: always; avx2: CPUID
/// avx2+fma and the AVX2 translation unit was built; neon: never yet).
bool backend_available(BackendKind kind);

/// Forces the active backend (tests and benches; not thread-safe against
/// concurrent kernel calls).  Throws zeiot::Error when unavailable.
void set_backend(BackendKind kind);

/// Stable lowercase name ("scalar", "avx2", "neon").
const char* backend_name(BackendKind kind);

/// Parses a backend name (the ZEIOT_KERNEL_BACKEND grammar; "auto" and ""
/// mean best-available).  Throws zeiot::Error on unknown names.
BackendKind parse_backend(const std::string& name);

/// RAII pin for tests: forces `kind` for the scope, restores on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(BackendKind kind);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  BackendKind prev_;
};

namespace detail {

// Scalar reference kernels (always available; the pre-dispatch bodies,
// byte-for-byte — existing goldens were recorded against these orders).
void sgemm_accum_scalar(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc);
void sgemm_abt_accum_scalar(int m, int n, int k, const float* a, int lda,
                            const float* b, int ldb, float* c, int ldc);
void igemm_abt_accum_scalar(int m, int n, int k, const std::int8_t* a,
                            int lda, const std::int8_t* b, int ldb,
                            std::int32_t* c, int ldc);
void im2col_scalar(const float* x, int channels, int h, int w, int kernel,
                   int pad, int oh, int ow, float* out);

/// Null when the AVX2 translation unit was compiled without AVX2 support
/// (non-x86 target or a compiler without -mavx2/-mfma).
const Backend* avx2_backend();
/// CPUID probe (false on non-x86 builds).
bool cpu_has_avx2_fma();

}  // namespace detail

}  // namespace zeiot::ml::kernels
