// Naive reference kernels — the original straight-loop Conv2D/Dense
// implementations, retained verbatim as the ground truth the GEMM-backed
// layers are property-tested against (tests/test_ml_kernels.cpp).  They are
// also the easiest place to audit the exact arithmetic against the
// per-unit distributed version in src/microdeep.  Not used on any hot path.
#pragma once

#include "ml/tensor.hpp"

namespace zeiot::ml::kernels::reference {

/// y (n, oc, oh, ow) = conv2d(x (n, ic, h, w), weight (oc, ic, k, k)) +
/// bias (oc); stride 1, symmetric zero padding `pad`.
Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, int pad);

/// Backward of conv2d_forward: returns dL/dx and ACCUMULATES dL/dweight and
/// dL/dbias into `gw` / `gb` (matching the Layer::backward contract of
/// accumulating parameter gradients across calls).
Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Tensor& grad_y, int pad, Tensor& gw, Tensor& gb);

/// y (n, out) = x (n, in) * weight^T (out, in) + bias (out).
Tensor dense_forward(const Tensor& x, const Tensor& weight,
                     const Tensor& bias);

/// Backward of dense_forward: returns dL/dx, accumulates into `gw` / `gb`.
Tensor dense_backward(const Tensor& x, const Tensor& weight,
                      const Tensor& grad_y, Tensor& gw, Tensor& gb);

}  // namespace zeiot::ml::kernels::reference
