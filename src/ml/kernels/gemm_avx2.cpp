// AVX2+FMA backend row.  This translation unit is the ONLY one compiled
// with -mavx2 -mfma (per-file COMPILE_OPTIONS in src/ml/CMakeLists.txt);
// nothing here runs unless CPUID reported avx2+fma, so the intrinsics are
// safe even though the rest of the build targets the baseline ISA.
//
// Fixed summation-order contract for this backend (a pure function of the
// operand shapes — never of ZEIOT_THREADS — so results are bit-identical
// across thread counts and reruns):
//
//   sgemm_accum     per element C[i][j]: one FMA chain in ascending k
//                   (c = fma(a_k, b_k, c), a single rounding per term).
//                   Which vector width covers a column (16-wide tile,
//                   8-wide tile, masked tail) only changes WHICH LANE the
//                   element rides in, not its arithmetic.
//   sgemm_abt_accum per element: 8 lane accumulators over k (lane L sums
//                   terms k ≡ L mod 8, ascending), then the fixed pairwise
//                   lane reduce (0+4,1+5,2+6,3+7 → 02,13 → 0123…), then the
//                   scalar k-tail terms in ascending order.
//   igemm_abt_accum exact int32 arithmetic — bit-identical to every other
//                   backend regardless of order.
//
// All loads/stores are unaligned-tolerant (loadu/maskload); Tensor and
// Workspace hand out 64-byte-aligned bases anyway, so these decay to
// aligned accesses on the hot paths.
#include "ml/kernels/backend.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace zeiot::ml::kernels::detail {

namespace {

// Lane mask for the final j-tail (rem in [1,7]): lane L active iff L < rem.
inline __m256i tail_mask(int rem) {
  alignas(32) std::int32_t lanes[8];
  for (int l = 0; l < 8; ++l) lanes[l] = l < rem ? -1 : 0;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

// Fixed pairwise horizontal sum: (0+4,1+5,2+6,3+7) → (02,13) → scalar.
inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

inline std::int32_t hsum8_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
  return _mm_cvtsi128_si32(s);
}

// One 4-row x 16-column register tile of sgemm_accum: C block lives in 8
// ymm accumulators while a single ascending-k sweep streams A broadcasts
// and two B row segments per step.
template <int Rows>
inline void sgemm_tile16(int k, const float* a, int lda, const float* b,
                         int ldb, float* c, int ldc) {
  __m256 acc[Rows][2];
  for (int r = 0; r < Rows; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    acc[r][0] = _mm256_loadu_ps(crow);
    acc[r][1] = _mm256_loadu_ps(crow + 8);
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<std::size_t>(kk) * ldb;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < Rows; ++r) {
      const __m256 av =
          _mm256_broadcast_ss(a + static_cast<std::size_t>(r) * lda + kk);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < Rows; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    _mm256_storeu_ps(crow, acc[r][0]);
    _mm256_storeu_ps(crow + 8, acc[r][1]);
  }
}

// 4-row x 8-column tile (plain or masked) for the column remainder.
template <int Rows>
inline void sgemm_tile8(int k, const float* a, int lda, const float* b,
                        int ldb, float* c, int ldc, const __m256i* mask) {
  __m256 acc[Rows];
  for (int r = 0; r < Rows; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    acc[r] = mask ? _mm256_maskload_ps(crow, *mask) : _mm256_loadu_ps(crow);
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<std::size_t>(kk) * ldb;
    const __m256 bv =
        mask ? _mm256_maskload_ps(brow, *mask) : _mm256_loadu_ps(brow);
    for (int r = 0; r < Rows; ++r) {
      const __m256 av =
          _mm256_broadcast_ss(a + static_cast<std::size_t>(r) * lda + kk);
      acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < Rows; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    if (mask) {
      _mm256_maskstore_ps(crow, *mask, acc[r]);
    } else {
      _mm256_storeu_ps(crow, acc[r]);
    }
  }
}

template <int Rows>
inline void sgemm_rows(int n, int k, const float* a, int lda, const float* b,
                       int ldb, float* c, int ldc) {
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    sgemm_tile16<Rows>(k, a, lda, b + j, ldb, c + j, ldc);
  }
  if (j + 8 <= n) {
    sgemm_tile8<Rows>(k, a, lda, b + j, ldb, c + j, ldc, nullptr);
    j += 8;
  }
  if (j < n) {
    const __m256i mask = tail_mask(n - j);
    sgemm_tile8<Rows>(k, a, lda, b + j, ldb, c + j, ldc, &mask);
  }
}

void sgemm_accum_avx2(int m, int n, int k, const float* a, int lda,
                      const float* b, int ldb, float* c, int ldc) {
  // 6-row main block: 12 live accumulators + 2 B segments + 1 A broadcast
  // fits the 16 ymm registers and keeps both FMA ports busy.  Row blocking
  // never affects the per-element summation order (always ascending k), so
  // the remainder schedule below is purely a throughput choice.
  int i = 0;
  for (; i + 6 <= m; i += 6) {
    sgemm_rows<6>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                  c + static_cast<std::size_t>(i) * ldc, ldc);
  }
  switch (m - i) {
    case 5:
      sgemm_rows<5>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                    c + static_cast<std::size_t>(i) * ldc, ldc);
      break;
    case 4:
      sgemm_rows<4>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                    c + static_cast<std::size_t>(i) * ldc, ldc);
      break;
    case 3:
      sgemm_rows<3>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                    c + static_cast<std::size_t>(i) * ldc, ldc);
      break;
    case 2:
      sgemm_rows<2>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                    c + static_cast<std::size_t>(i) * ldc, ldc);
      break;
    case 1:
      sgemm_rows<1>(n, k, a + static_cast<std::size_t>(i) * lda, lda, b, ldb,
                    c + static_cast<std::size_t>(i) * ldc, ldc);
      break;
    default: break;
  }
}

void sgemm_abt_accum_avx2(int m, int n, int k, const float* a, int lda,
                          const float* b, int ldb, float* c, int ldc) {
  const int k8 = k & ~7;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<std::size_t>(j) * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      __m256 v0 = _mm256_setzero_ps();
      __m256 v1 = _mm256_setzero_ps();
      __m256 v2 = _mm256_setzero_ps();
      __m256 v3 = _mm256_setzero_ps();
      for (int kk = 0; kk < k8; kk += 8) {
        const __m256 av = _mm256_loadu_ps(arow + kk);
        v0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), v0);
        v1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), v1);
        v2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), v2);
        v3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), v3);
      }
      float s0 = hsum8(v0);
      float s1 = hsum8(v1);
      float s2 = hsum8(v2);
      float s3 = hsum8(v3);
      for (int kk = k8; kk < k; ++kk) {
        const float av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      crow[j + 0] += s0;
      crow[j + 1] += s1;
      crow[j + 2] += s2;
      crow[j + 3] += s3;
    }
    for (; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * ldb;
      __m256 v = _mm256_setzero_ps();
      for (int kk = 0; kk < k8; kk += 8) {
        v = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                            _mm256_loadu_ps(brow + kk), v);
      }
      float s = hsum8(v);
      for (int kk = k8; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] += s;
    }
  }
}

void igemm_abt_accum_avx2(int m, int n, int k, const std::int8_t* a, int lda,
                          const std::int8_t* b, int ldb, std::int32_t* c,
                          int ldc) {
  const int k16 = k & ~15;
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
    std::int32_t* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const std::int8_t* brow = b + static_cast<std::size_t>(j) * ldb;
      __m256i acc = _mm256_setzero_si256();
      for (int kk = 0; kk < k16; kk += 16) {
        // 16 int8 -> 16 int16 each side; madd pairs into 8 exact int32
        // partials (each |term| <= 2 * 127^2, far below int32 range).
        const __m256i a16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(arow + kk)));
        const __m256i b16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(brow + kk)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
      }
      std::int32_t s = hsum8_epi32(acc);
      for (int kk = k16; kk < k; ++kk) {
        s += static_cast<std::int32_t>(arow[kk]) *
             static_cast<std::int32_t>(brow[kk]);
      }
      crow[j] += s;
    }
  }
}

const Backend kAvx2Backend{
    BackendKind::Avx2,         "avx2",
    &sgemm_accum_avx2,         &sgemm_abt_accum_avx2,
    &igemm_abt_accum_avx2,     &im2col_scalar,
};

}  // namespace

const Backend* avx2_backend() { return &kAvx2Backend; }

}  // namespace zeiot::ml::kernels::detail

#else  // !(__AVX2__ && __FMA__): non-x86 target or no -mavx2 support.

namespace zeiot::ml::kernels::detail {

const Backend* avx2_backend() { return nullptr; }

}  // namespace zeiot::ml::kernels::detail

#endif
