#include "ml/kernels/reference.hpp"

namespace zeiot::ml::kernels::reference {

Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, int pad) {
  const int n = x.dim(0), ic_n = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oc_n = weight.dim(0), k = weight.dim(2);
  const int oh = h + 2 * pad - k + 1;
  const int ow = w + 2 * pad - k + 1;
  ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "conv2d output would be empty");
  Tensor y({n, oc_n, oh, ow});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < oc_n; ++oc) {
      const float bv = bias[static_cast<std::size_t>(oc)];
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = bv;
          for (int ic = 0; ic < ic_n; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox + kx - pad;
                if (ix < 0 || ix >= w) continue;
                acc += x.at({b, ic, iy, ix}) * weight.at({oc, ic, ky, kx});
              }
            }
          }
          y.at({b, oc, oy, ox}) = acc;
        }
      }
    }
  }
  return y;
}

Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Tensor& grad_y, int pad, Tensor& gw, Tensor& gb) {
  const int n = x.dim(0), ic_n = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oc_n = weight.dim(0), k = weight.dim(2);
  const int oh = grad_y.dim(2), ow = grad_y.dim(3);
  Tensor grad_x = Tensor::zeros_like(x);
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < oc_n; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g = grad_y.at({b, oc, oy, ox});
          if (g == 0.0f) continue;
          gb[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < ic_n; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy + ky - pad;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox + kx - pad;
                if (ix < 0 || ix >= w) continue;
                gw.at({oc, ic, ky, kx}) += g * x.at({b, ic, iy, ix});
                grad_x.at({b, ic, iy, ix}) += g * weight.at({oc, ic, ky, kx});
              }
            }
          }
        }
      }
    }
  }
  return grad_x;
}

Tensor dense_forward(const Tensor& x, const Tensor& weight,
                     const Tensor& bias) {
  const int n = x.dim(0), in = x.dim(1), out = weight.dim(0);
  Tensor y({n, out});
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<std::size_t>(b) * in;
    for (int o = 0; o < out; ++o) {
      const float* wrow = weight.data() + static_cast<std::size_t>(o) * in;
      float acc = bias[static_cast<std::size_t>(o)];
      for (int i = 0; i < in; ++i) acc += wrow[i] * xb[i];
      y.at({b, o}) = acc;
    }
  }
  return y;
}

Tensor dense_backward(const Tensor& x, const Tensor& weight,
                      const Tensor& grad_y, Tensor& gw, Tensor& gb) {
  const int n = x.dim(0), in = x.dim(1), out = weight.dim(0);
  Tensor grad_x({n, in});
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<std::size_t>(b) * in;
    float* gxb = grad_x.data() + static_cast<std::size_t>(b) * in;
    for (int o = 0; o < out; ++o) {
      const float g = grad_y.at({b, o});
      if (g == 0.0f) continue;
      gb[static_cast<std::size_t>(o)] += g;
      float* gwrow = gw.data() + static_cast<std::size_t>(o) * in;
      const float* wrow = weight.data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) {
        gwrow[i] += g * xb[i];
        gxb[i] += g * wrow[i];
      }
    }
  }
  return grad_x;
}

}  // namespace zeiot::ml::kernels::reference
