#include "ml/kernels/gemm.hpp"

#include <algorithm>
#include <cstdint>

#include "ml/kernels/backend.hpp"

namespace zeiot::ml::kernels {

namespace {

// Panel sizes: a k-panel of B (kBlockK x kBlockN floats = 256 KiB) stays
// L2-resident while every row of the C block streams over it.  The blocking
// is a pure function of the shapes, so the per-element accumulation order
// is fixed regardless of who executes the call.
constexpr int kBlockK = 128;
constexpr int kBlockN = 512;

}  // namespace

void sgemm_accum(int m, int n, int k, const float* a, int lda, const float* b,
                 int ldb, float* c, int ldc) {
  active_backend().sgemm_accum(m, n, k, a, lda, b, ldb, c, ldc);
}

void sgemm_abt_accum(int m, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float* c, int ldc) {
  active_backend().sgemm_abt_accum(m, n, k, a, lda, b, ldb, c, ldc);
}

void igemm_abt_accum(int m, int n, int k, const std::int8_t* a, int lda,
                     const std::int8_t* b, int ldb, std::int32_t* c,
                     int ldc) {
  active_backend().igemm_abt_accum(m, n, k, a, lda, b, ldb, c, ldc);
}

void transpose(int rows, int cols, const float* src, int lds, float* dst,
               int ldd) {
  constexpr int kTile = 32;
  for (int rb = 0; rb < rows; rb += kTile) {
    const int rend = std::min(rows, rb + kTile);
    for (int cb = 0; cb < cols; cb += kTile) {
      const int cend = std::min(cols, cb + kTile);
      for (int r = rb; r < rend; ++r) {
        const float* __restrict srow = src + static_cast<std::size_t>(r) * lds;
        for (int c = cb; c < cend; ++c) {
          dst[static_cast<std::size_t>(c) * ldd + r] = srow[c];
        }
      }
    }
  }
}

namespace detail {

void sgemm_accum_scalar(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc) {
  for (int kb = 0; kb < k; kb += kBlockK) {
    const int kend = std::min(k, kb + kBlockK);
    for (int jb = 0; jb < n; jb += kBlockN) {
      const int jend = std::min(n, jb + kBlockN);
      for (int i = 0; i < m; ++i) {
        const float* __restrict arow = a + static_cast<std::size_t>(i) * lda;
        float* __restrict crow = c + static_cast<std::size_t>(i) * ldc;
        int kk = kb;
        for (; kk + 4 <= kend; kk += 4) {
          const float a0 = arow[kk + 0];
          const float a1 = arow[kk + 1];
          const float a2 = arow[kk + 2];
          const float a3 = arow[kk + 3];
          const float* __restrict b0 = b + static_cast<std::size_t>(kk) * ldb;
          const float* __restrict b1 = b0 + ldb;
          const float* __restrict b2 = b1 + ldb;
          const float* __restrict b3 = b2 + ldb;
          for (int j = jb; j < jend; ++j) {
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; kk < kend; ++kk) {
          const float a0 = arow[kk];
          const float* __restrict b0 = b + static_cast<std::size_t>(kk) * ldb;
          for (int j = jb; j < jend; ++j) crow[j] += a0 * b0[j];
        }
      }
    }
  }
}

void sgemm_abt_accum_scalar(int m, int n, int k, const float* a, int lda,
                            const float* b, int ldb, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    const float* __restrict arow = a + static_cast<std::size_t>(i) * lda;
    float* __restrict crow = c + static_cast<std::size_t>(i) * ldc;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = b + static_cast<std::size_t>(j) * ldb;
      const float* __restrict b1 = b0 + ldb;
      const float* __restrict b2 = b1 + ldb;
      const float* __restrict b3 = b2 + ldb;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      crow[j + 0] += s0;
      crow[j + 1] += s1;
      crow[j + 2] += s2;
      crow[j + 3] += s3;
    }
    for (; j < n; ++j) {
      const float* __restrict brow = b + static_cast<std::size_t>(j) * ldb;
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] += s;
    }
  }
}

void igemm_abt_accum_scalar(int m, int n, int k, const std::int8_t* a,
                            int lda, const std::int8_t* b, int ldb,
                            std::int32_t* c, int ldc) {
  // Exact int32 arithmetic: any evaluation order gives the same result, so
  // the int8 kernel is bit-identical across backends by construction.
  for (int i = 0; i < m; ++i) {
    const std::int8_t* __restrict arow =
        a + static_cast<std::size_t>(i) * lda;
    std::int32_t* __restrict crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const std::int8_t* __restrict brow =
          b + static_cast<std::size_t>(j) * ldb;
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(arow[kk]) *
             static_cast<std::int32_t>(brow[kk]);
      }
      crow[j] += s;
    }
  }
}

}  // namespace detail

}  // namespace zeiot::ml::kernels
