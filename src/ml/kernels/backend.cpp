#include "ml/kernels/backend.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"

namespace zeiot::ml::kernels {

namespace {

const Backend kScalarBackend{
    BackendKind::Scalar,
    "scalar",
    &detail::sgemm_accum_scalar,
    &detail::sgemm_abt_accum_scalar,
    &detail::igemm_abt_accum_scalar,
    &detail::im2col_scalar,
};

const Backend* table_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return &kScalarBackend;
    case BackendKind::Avx2:
      return detail::cpu_has_avx2_fma() ? detail::avx2_backend() : nullptr;
    case BackendKind::Neon:
      return nullptr;  // recognised name, no implementation yet
  }
  return nullptr;
}

const Backend* best_available() {
  if (const Backend* avx2 = table_for(BackendKind::Avx2)) return avx2;
  return &kScalarBackend;
}

const Backend* select_startup_backend() {
  const char* env = std::getenv("ZEIOT_KERNEL_BACKEND");
  if (env == nullptr || *env == '\0') return best_available();
  const BackendKind kind = parse_backend(env);
  const Backend* table = table_for(kind);
  ZEIOT_CHECK_MSG(table != nullptr,
                  std::string("ZEIOT_KERNEL_BACKEND=") + env +
                      " requested but that backend is unavailable on this "
                      "host/build");
  return table;
}

std::atomic<const Backend*>& active_slot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

}  // namespace

const Backend& active_backend() {
  const Backend* cur = active_slot().load(std::memory_order_acquire);
  if (cur != nullptr) return *cur;
  // First use (or races on first use: select_startup_backend is pure, every
  // racer stores the same pointer).
  const Backend* chosen = select_startup_backend();
  active_slot().store(chosen, std::memory_order_release);
  return *chosen;
}

bool backend_available(BackendKind kind) { return table_for(kind) != nullptr; }

void set_backend(BackendKind kind) {
  const Backend* table = table_for(kind);
  ZEIOT_CHECK_MSG(table != nullptr,
                  std::string("kernel backend '") + backend_name(kind) +
                      "' is unavailable on this host/build");
  active_slot().store(table, std::memory_order_release);
}

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Scalar:
      return "scalar";
    case BackendKind::Avx2:
      return "avx2";
    case BackendKind::Neon:
      return "neon";
  }
  return "?";
}

BackendKind parse_backend(const std::string& name) {
  if (name.empty() || name == "auto") {
    return best_available()->kind;
  }
  if (name == "scalar") return BackendKind::Scalar;
  if (name == "avx2") return BackendKind::Avx2;
  if (name == "neon") return BackendKind::Neon;
  throw Error("unknown kernel backend '" + name +
              "' (expected scalar, avx2, neon, or auto)");
}

ScopedBackend::ScopedBackend(BackendKind kind)
    : prev_(active_backend().kind) {
  set_backend(kind);
}

ScopedBackend::~ScopedBackend() { set_backend(prev_); }

namespace detail {

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace detail

}  // namespace zeiot::ml::kernels
