// Bump-allocated float arena for kernel scratch buffers (im2col panels,
// transposed weight copies, per-chunk gradient partials).
//
// The hot CNN paths reuse one arena per Network instead of allocating
// per-batch temporaries: a layer call is
//
//   ws.reset();                 // forget the previous layer's carvings
//   ws.require(total_floats);   // grow once, BEFORE any alloc()
//   float* a = ws.alloc(n0);    // O(1) pointer bumps, stable until reset()
//   float* b = ws.alloc(n1);
//
// require() may reallocate the backing store, so it must precede every
// alloc() of the call; alloc() itself never reallocates, which is what
// makes the carved pointers safe to hand to concurrent worker chunks.
// Memory returned by alloc() is NOT zeroed — callers initialise it
// (bias prefill, std::fill) as part of the kernel.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "ml/kernels/aligned.hpp"

namespace zeiot::ml::kernels {

class Workspace {
 public:
  /// Starts a new carving sequence; previously alloc()ed pointers are
  /// invalidated logically (the memory is reused by the next alloc()s).
  void reset() { used_ = 0; }

  /// Ensures capacity for `floats` total elements.  Must be called with no
  /// outstanding carvings (directly after reset()): growth reallocates.
  void require(std::size_t floats) {
    ZEIOT_CHECK_MSG(used_ == 0, "workspace require() after alloc()");
    if (buf_.size() < floats) buf_.resize(floats);
  }

  /// Carves `floats` elements out of the reserved block (uninitialised).
  float* alloc(std::size_t floats) {
    ZEIOT_CHECK_MSG(used_ + floats <= buf_.size(),
                    "workspace overflow: " << used_ << " + " << floats
                                           << " > " << buf_.size());
    float* p = buf_.data() + used_;
    used_ += floats;
    return p;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t used() const { return used_; }

  /// Rounds a float count up to a 64-byte multiple (16 floats).  The arena
  /// base is 64-byte aligned; callers that size every carving (and the
  /// matching require() sum) with align_floats keep EACH carved pointer
  /// 64-byte aligned, not just the first.
  static constexpr std::size_t align_floats(std::size_t floats) {
    return (floats + 15) & ~static_cast<std::size_t>(15);
  }

 private:
  AlignedVector<float> buf_;
  std::size_t used_ = 0;
};

}  // namespace zeiot::ml::kernels
