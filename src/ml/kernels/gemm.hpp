// GEMM kernels for the CNN hot paths, runtime-dispatched over SIMD
// backends (see ml/kernels/backend.hpp for the dispatch matrix and the
// ZEIOT_KERNEL_BACKEND override).
//
// All kernels accumulate into C (callers prefill C with the bias or zero),
// use raw pointer arithmetic with row strides, and keep a FIXED summation
// order that depends only on the operand shapes — never on the worker
// count — so layer outputs are bit-identical at any ZEIOT_THREADS value.
// The order does differ from the historical naive element loops (terms are
// grouped four at a time), which is why the layer rewrite regenerated the
// float-exact goldens once; see tests/test_ml_kernels.cpp for the
// naive-vs-GEMM equivalence bounds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zeiot::ml::kernels {

/// C (m x n, row stride ldc) += A (m x k, row stride lda) * B (k x n, row
/// stride ldb).  Broadcast/axpy form: the unit-stride inner loop runs over
/// columns of C, which auto-vectorises without reassociating any per-element
/// accumulation chain.  Blocked over k and n for cache residency; per
/// element the k-terms are applied in ascending k order, grouped in fours.
void sgemm_accum(int m, int n, int k, const float* a, int lda, const float* b,
                 int ldb, float* c, int ldc);

/// C (m x n) += A (m x k) * B^T, with B stored row-major as (n x k) — the
/// weight-gradient form (dW += dY * X_col^T) that wants dot products over
/// the long shared dimension.  Register-blocked four rows of B at a time;
/// each dot product accumulates in ascending k order.
void sgemm_abt_accum(int m, int n, int k, const float* a, int lda,
                     const float* b, int ldb, float* c, int ldc);

/// C (m x n, int32) += A (m x k, int8) * B^T with B stored row-major as
/// (n x k, int8) — the quantized-inference form shared by conv (A = weight
/// rows, B = transposed int8 im2col panel) and dense (A = activation rows,
/// B = weight rows).  Accumulation is exact int32 arithmetic (|a|,|b| <= 127
/// so the dot fits comfortably for k < 2^16), which makes the result
/// bit-identical across ALL backends, not merely per-backend.
void igemm_abt_accum(int m, int n, int k, const std::int8_t* a, int lda,
                     const std::int8_t* b, int ldb, std::int32_t* c, int ldc);

/// dst (cols x rows, row stride ldd) = transpose of src (rows x cols, row
/// stride lds).  Tiled to keep both sides cache-friendly.
void transpose(int rows, int cols, const float* src, int lds, float* dst,
               int ldd);

}  // namespace zeiot::ml::kernels
