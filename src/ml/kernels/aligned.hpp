// Minimal C++17 aligned allocator so Tensor storage and the Workspace
// arena hand out 64-byte (cache-line / ZMM-width) aligned bases.  SIMD
// backends still use unaligned-tolerant loads for safety, but on aligned
// bases those decay to full-speed aligned accesses and cache-line splits
// disappear; alignment is also a prerequisite for any future backend that
// wants genuinely aligned intrinsics.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace zeiot::ml::kernels {

inline constexpr std::size_t kTensorAlignment = 64;

template <typename T, std::size_t Alignment = kTensorAlignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two >= alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (p == nullptr) return;
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector<float> with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kTensorAlignment>>;

}  // namespace zeiot::ml::kernels
