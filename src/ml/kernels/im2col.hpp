// im2col / col2im packing for convolution-as-GEMM (stride 1, symmetric
// zero padding — the only convolution geometry the CNN substrate uses).
//
// The column matrix is (channels * kernel * kernel) rows by (oh * ow)
// columns, row index r = (ic * kernel + ky) * kernel + kx — the same
// (ic, ky, kx) order as the Conv2D weight layout, so the packed panel
// multiplies directly against the (out_channels x K) weight matrix.
// Padding cells are materialised as zeros; each interior row segment is a
// straight std::copy of the input row, so packing runs at memcpy speed.
#pragma once

namespace zeiot::ml::kernels {

/// Packs one (channels x h x w) image into `out` (K x P, row-major) where
/// K = channels * kernel * kernel and P = oh * ow.
void im2col(const float* x, int channels, int h, int w, int kernel, int pad,
            int oh, int ow, float* out);

/// Scatter-adds a column matrix (same geometry as im2col) back into the
/// (channels x h x w) image gradient `gx` — the col2im half of the
/// data-gradient GEMM.  Accumulates: callers zero `gx` beforehand.
void col2im_accum(const float* cols, int channels, int h, int w, int kernel,
                  int pad, int oh, int ow, float* gx);

}  // namespace zeiot::ml::kernels
