#include "ml/kernels/im2col.hpp"

#include <algorithm>
#include <cstddef>

#include "ml/kernels/backend.hpp"

namespace zeiot::ml::kernels {

void im2col(const float* x, int channels, int h, int w, int kernel, int pad,
            int oh, int ow, float* out) {
  active_backend().im2col(x, channels, h, w, kernel, pad, oh, ow, out);
}

namespace detail {

// Pure data movement (copies and zero fills — no arithmetic), so every
// backend currently shares this body; it sits in the dispatch table so a
// future backend can fuse packing with quantization.
void im2col_scalar(const float* x, int channels, int h, int w, int kernel,
                   int pad, int oh, int ow, float* out) {
  float* dst = out;
  for (int ic = 0; ic < channels; ++ic) {
    const float* plane =
        x + static_cast<std::size_t>(ic) * h * static_cast<std::size_t>(w);
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        // Valid output columns: 0 <= ox + kx - pad < w.
        const int lo = std::max(0, pad - kx);
        const int hi = std::min(ow, w - kx + pad);
        for (int oy = 0; oy < oh; ++oy, dst += ow) {
          const int iy = oy + ky - pad;
          if (iy < 0 || iy >= h || lo >= hi) {
            std::fill(dst, dst + ow, 0.0f);
            continue;
          }
          std::fill(dst, dst + lo, 0.0f);
          const float* srow =
              plane + static_cast<std::size_t>(iy) * w + (lo + kx - pad);
          std::copy(srow, srow + (hi - lo), dst + lo);
          std::fill(dst + hi, dst + ow, 0.0f);
        }
      }
    }
  }
}

}  // namespace detail

void col2im_accum(const float* cols, int channels, int h, int w, int kernel,
                  int pad, int oh, int ow, float* gx) {
  const float* src = cols;
  for (int ic = 0; ic < channels; ++ic) {
    float* plane =
        gx + static_cast<std::size_t>(ic) * h * static_cast<std::size_t>(w);
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const int lo = std::max(0, pad - kx);
        const int hi = std::min(ow, w - kx + pad);
        for (int oy = 0; oy < oh; ++oy, src += ow) {
          const int iy = oy + ky - pad;
          if (iy < 0 || iy >= h || lo >= hi) continue;
          float* drow =
              plane + static_cast<std::size_t>(iy) * w + (lo + kx - pad);
          const float* srow = src + lo;
          const int len = hi - lo;
          for (int t = 0; t < len; ++t) drow[t] += srow[t];
        }
      }
    }
  }
}

}  // namespace zeiot::ml::kernels
