#include "ml/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace zeiot::ml {

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  ZEIOT_CHECK_MSG(!shape_.empty() && shape_.size() <= 4,
                  "tensor rank must be 1..4");
  std::size_t n = 1;
  for (int d : shape_) {
    ZEIOT_CHECK_MSG(d > 0, "tensor dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, fill);
}

int Tensor::dim(int i) const {
  ZEIOT_CHECK_MSG(i >= 0 && i < ndim(), "dim index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::offset(std::initializer_list<int> idx) const {
  ZEIOT_CHECK_MSG(static_cast<int>(idx.size()) == ndim(),
                  "index arity " << idx.size() << " != rank " << ndim());
  std::size_t off = 0;
  int d = 0;
  for (int i : idx) {
    ZEIOT_CHECK_MSG(i >= 0 && i < shape_[static_cast<std::size_t>(d)],
                    "index " << i << " out of bounds for dim " << d << " (size "
                             << shape_[static_cast<std::size_t>(d)] << ")");
    off = off * static_cast<std::size_t>(shape_[static_cast<std::size_t>(d)]) +
          static_cast<std::size_t>(i);
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<int> idx) { return data_[offset(idx)]; }
float Tensor::at(std::initializer_list<int> idx) const {
  return data_[offset(idx)];
}

Tensor Tensor::reshape(std::vector<int> new_shape) const {
  Tensor out(std::move(new_shape));
  ZEIOT_CHECK_MSG(out.size() == size(), "reshape must preserve element count: "
                                            << size() << " -> " << out.size());
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
  ZEIOT_CHECK_MSG(shape_ == other.shape_, "add_ shape mismatch: " << shape_str()
                                              << " vs " << other.shape_str());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

std::size_t Tensor::argmax() const {
  ZEIOT_CHECK_MSG(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

void Tensor::randomize_normal(Rng& rng, double sigma) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, sigma));
}

void Tensor::he_init(Rng& rng, int fan_in) {
  ZEIOT_CHECK_MSG(fan_in > 0, "he_init requires fan_in > 0");
  randomize_normal(rng, std::sqrt(2.0 / static_cast<double>(fan_in)));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace zeiot::ml
