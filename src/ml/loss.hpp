// Softmax cross-entropy loss (combined, for numerical stability).
#pragma once

#include <vector>

#include "ml/tensor.hpp"

namespace zeiot::ml {

struct LossResult {
  double loss = 0.0;   // mean over the batch
  Tensor grad;         // dL/dlogits, shape (N, K)
};

/// Row-wise softmax of logits (N, K).
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of `logits` (N, K) against integer `labels` (size N),
/// plus the gradient w.r.t. the logits.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace zeiot::ml
