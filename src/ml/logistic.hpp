// Multinomial logistic regression trained by mini-batch SGD — the light
// estimation model used where the paper's systems feed handcrafted features
// into a shallow learner.
#pragma once

#include "common/rng.hpp"
#include "ml/features.hpp"

namespace zeiot::ml {

struct LogisticConfig {
  int epochs = 100;
  int batch_size = 32;
  double lr = 0.1;
  double l2 = 1e-4;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig cfg = {});

  /// Trains from scratch on x/y.  Labels must be 0..K-1 with every class
  /// present at least once.
  void fit(const FeatureMatrix& x, const LabelVector& y, Rng& rng);

  /// Class probabilities for one row.
  std::vector<double> predict_proba(const std::vector<double>& row) const;
  int predict(const std::vector<double>& row) const;
  double score(const FeatureMatrix& x, const LabelVector& y) const;

  int num_classes() const { return num_classes_; }

 private:
  LogisticConfig cfg_;
  int num_classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> w_;  // (K, D) row-major
  std::vector<double> b_;  // (K)
};

}  // namespace zeiot::ml
