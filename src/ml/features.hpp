// Flat feature-vector dataset used by the classical classifiers (kNN,
// logistic regression, Gaussian naive Bayes) that back the CSI and RSSI
// sensing pipelines.
#pragma once

#include <vector>

namespace zeiot::ml {

/// Row-per-sample feature matrix.
using FeatureMatrix = std::vector<std::vector<double>>;

/// Labels aligned with FeatureMatrix rows.
using LabelVector = std::vector<int>;

}  // namespace zeiot::ml
