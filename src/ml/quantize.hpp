// int8 post-training quantization for the CNN substrate.
//
// Scheme ("Split CNN Inference on Networked Microcontrollers" is the
// blueprint; gemmlowp-style requantization):
//   - weights:     per-output-channel symmetric int8 (scale = absmax/127,
//                  zero-point 0),
//   - activations: per-tensor symmetric int8 with STATIC calibration
//                  (absmax recorded over a calibration batch run through
//                  the float network once at build time),
//   - accumulation: exact int32 (kernels::igemm_abt_accum), bias folded in
//                  as int32 in (s_in * s_w[oc]) units,
//   - requantize:  acc * M where M = s_in*s_w[oc]/s_out is precomputed as
//                  an int32 Q31 multiplier + right shift — pure integer
//                  arithmetic, so quantized outputs are bit-identical
//                  across backends, thread counts, and reruns,
//   - ReLU:        folded into the requantize clamp ([0,127] instead of
//                  [-127,127]) whenever it directly follows a GEMM layer,
//   - output:      the final Dense dequantizes int32 accumulators straight
//                  to float logits (no final activation grid).
//
// A QuantizedNetwork is a self-describing op list (architecture + weights
// + scales), detached from the float Network it was built from; see
// ml/serialize.hpp for the on-disk format.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/network.hpp"
#include "ml/tensor.hpp"

namespace zeiot::ml {

/// Fixed-point multiplier: x * real_multiplier ≈ (x * multiplier) >> shift,
/// rounding half up, with multiplier a Q(shift-31)… more precisely
/// real_multiplier = multiplier * 2^-shift and multiplier in [2^30, 2^31).
struct RequantScale {
  std::int32_t multiplier = 0;
  int shift = 0;  // total right shift, in [1, 62]
};

/// Decomposes a positive real multiplier (requant ratios are ~1e-3..8).
/// Throws zeiot::Error when m is not finite-positive or too extreme to
/// represent.
RequantScale make_requant_scale(double m);

/// (acc * multiplier + 2^(shift-1)) >> shift — exact int64 intermediate,
/// round half toward +inf.  No clamping.
inline std::int32_t requantize(std::int32_t acc, const RequantScale& s) {
  const std::int64_t prod =
      static_cast<std::int64_t>(acc) * static_cast<std::int64_t>(s.multiplier);
  const std::int64_t round = std::int64_t{1} << (s.shift - 1);
  return static_cast<std::int32_t>((prod + round) >> s.shift);
}

/// clamp(round_half_away(v / scale), -127, 127) — the symmetric int8 grid.
std::int8_t quantize_value(float v, float scale);

/// One quantized layer.  Geometry mirrors the float layers; MaxPool and
/// ReLU run directly in the int8 domain (both commute with the monotone
/// quantization map), Flatten is a pure shape change.
struct QuantOp {
  enum class Kind : int { Conv2D = 0, MaxPool2D = 1, Flatten = 2, Relu = 3, Dense = 4 };
  Kind kind = Kind::Flatten;

  // Conv2D geometry (stride 1, symmetric padding — the substrate's only
  // convolution shape).
  int in_channels = 0, out_channels = 0, kernel = 0, padding = 0;
  // Dense geometry.
  int in_features = 0, out_features = 0;
  // MaxPool window.
  int pool_k = 0;

  bool relu_after = false;      // ReLU folded into the requantize clamp
  bool dequant_output = false;  // Dense only: emit float, skip the int8 grid

  float in_scale = 1.0f;   // activation scale at this op's input
  float out_scale = 1.0f;  // activation scale at this op's (quantized) output

  std::vector<std::int8_t> weight;     // conv: (oc x K); dense: (out x in)
  std::vector<std::int32_t> bias;      // int32, in s_in * s_w[oc] units
  std::vector<RequantScale> requant;   // per out channel (quantized output)
  std::vector<float> dequant_scale;    // per out channel (dequant_output)
};

/// Post-training-quantized network: float in, float logits out, int8
/// everywhere in between.  Build once from a trained float network plus a
/// calibration batch; forward never touches the float weights again.
/// Options for QuantizedNetwork::build.
struct QuantBuildOptions {
  /// Upper bound on calibration samples actually run (the batch is
  /// truncated, never cycled).
  int max_calibration_samples = 64;
};

class QuantizedNetwork {
 public:
  using BuildOptions = QuantBuildOptions;

  QuantizedNetwork() = default;

  /// Quantizes `net` for inputs shaped `input_shape` (excluding batch).
  /// `calibration` is a batch of representative inputs whose per-boundary
  /// absmax values become the static activation scales.
  static QuantizedNetwork build(Network& net,
                                const std::vector<int>& input_shape,
                                const Tensor& calibration,
                                const QuantBuildOptions& opts = {});

  /// Float batch in (N, input_shape...), float logits out.  Deterministic:
  /// exact integer arithmetic end to end, so results are bit-identical
  /// across kernel backends, ZEIOT_THREADS, and reruns.
  Tensor forward(const Tensor& x) const;

  const std::vector<QuantOp>& ops() const { return ops_; }
  const std::vector<int>& input_shape() const { return input_shape_; }
  float input_scale() const { return input_scale_; }

  /// int8 weight + int32 bias + requant table bytes across all ops — the
  /// deployed model footprint.
  std::size_t weight_bytes() const;
  /// Peak per-sample activation footprint in bytes (input + output buffers
  /// of the widest op, 1 byte per int8 activation).
  std::size_t peak_activation_bytes() const;

 private:
  friend QuantizedNetwork load_quantized_detail(std::vector<QuantOp> ops,
                                                std::vector<int> input_shape,
                                                float input_scale);

  std::vector<QuantOp> ops_;
  std::vector<int> input_shape_;  // excluding batch
  float input_scale_ = 1.0f;
};

/// Per-boundary activation absmax of `net` over (up to max_samples of) a
/// calibration batch: index 0 is the network input, index i+1 the output
/// of layer i.  Exposed for the distributed calibration path (microdeep
/// maps these onto unit layers).
std::vector<float> calibration_absmax(Network& net, const Tensor& calibration,
                                      int max_samples);

/// Internal constructor used by load_quantized (ml/serialize.hpp).
QuantizedNetwork load_quantized_detail(std::vector<QuantOp> ops,
                                       std::vector<int> input_shape,
                                       float input_scale);

}  // namespace zeiot::ml
