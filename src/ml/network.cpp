#include "ml/network.hpp"

#include <algorithm>

namespace zeiot::ml {

Layer& Network::add(std::unique_ptr<Layer> layer) {
  ZEIOT_CHECK_MSG(layer != nullptr, "cannot add null layer");
  layer->set_workspace(workspace_.get());
  layer->set_pool(pool_);
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

void Network::set_pool(par::ThreadPool* pool) {
  pool_ = pool;
  for (auto& l : layers_) l->set_pool(pool);
}

Layer& Network::layer(std::size_t i) {
  ZEIOT_CHECK_MSG(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Network::layer(std::size_t i) const {
  ZEIOT_CHECK_MSG(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Network::forward(const Tensor& x, bool train) {
  ZEIOT_CHECK_MSG(!layers_.empty(), "empty network");
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Network::backward(const Tensor& grad_out) {
  ZEIOT_CHECK_MSG(!layers_.empty(), "empty network");
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> all;
  for (auto& l : layers_) {
    for (Param* p : l->params()) all.push_back(p);
  }
  return all;
}

void Network::zero_grads() {
  for (Param* p : params()) p->grad.fill(0.0f);
}

Network Network::clone() const {
  Network copy;
  copy.pool_ = pool_;
  for (const auto& l : layers_) {
    // Clones arrive unbound (Layer copies drop transient bindings); each
    // replica gets its OWN arena so concurrent replicas never share scratch.
    auto cl = l->clone();
    cl->set_workspace(copy.workspace_.get());
    cl->set_pool(copy.pool_);
    copy.layers_.push_back(std::move(cl));
  }
  return copy;
}

bool Network::parallel_safe() const {
  for (const auto& l : layers_) {
    if (l->rng_forward()) return false;
  }
  return true;
}

void Network::copy_param_values_from(Network& src) {
  const auto mine = params();
  const auto theirs = src.params();
  ZEIOT_CHECK_MSG(mine.size() == theirs.size(),
                  "copy_param_values_from: architecture mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    ZEIOT_CHECK_MSG(mine[i]->value.size() == theirs[i]->value.size(),
                    "copy_param_values_from: shape mismatch at param " << i);
    std::copy(theirs[i]->value.data(),
              theirs[i]->value.data() + theirs[i]->value.size(),
              mine[i]->value.data());
  }
}

std::size_t Network::num_parameters() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    for (Param* p : const_cast<Layer&>(*l).params()) n += p->value.size();
  }
  return n;
}

std::vector<std::vector<int>> Network::shape_trace(
    const std::vector<int>& input) const {
  std::vector<std::vector<int>> trace;
  trace.push_back(input);
  std::vector<int> cur = input;
  for (const auto& l : layers_) {
    cur = l->output_shape(cur);
    trace.push_back(cur);
  }
  return trace;
}

}  // namespace zeiot::ml
