#include "ml/optimizer.hpp"

#include <cmath>

namespace zeiot::ml {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  ZEIOT_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  ZEIOT_CHECK_MSG(momentum >= 0.0 && momentum < 1.0, "momentum in [0,1)");
  ZEIOT_CHECK_MSG(weight_decay >= 0.0, "weight decay must be >= 0");
}

void Sgd::set_lr(double lr) {
  ZEIOT_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  lr_ = lr;
}

void Sgd::step(const std::vector<Param*>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Param* p : params) velocity_.emplace_back(p->value.size(), 0.0f);
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    ZEIOT_CHECK_MSG(velocity_[pi].size() == p.value.size(),
                    "optimizer was initialised for a different network");
    auto& vel = velocity_[pi];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g =
          p.grad[i] + weight_decay_ * static_cast<double>(p.value[i]);
      vel[i] = static_cast<float>(momentum_ * vel[i] - lr_ * g);
      p.value[i] += vel[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  ZEIOT_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  ZEIOT_CHECK_MSG(beta1 >= 0.0 && beta1 < 1.0, "beta1 in [0,1)");
  ZEIOT_CHECK_MSG(beta2 >= 0.0 && beta2 < 1.0, "beta2 in [0,1)");
  ZEIOT_CHECK_MSG(eps > 0.0, "eps must be > 0");
}

void Adam::set_lr(double lr) {
  ZEIOT_CHECK_MSG(lr > 0.0, "learning rate must be > 0");
  lr_ = lr;
}

void Adam::step(const std::vector<Param*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const Param* p : params) {
      m_.emplace_back(p->value.size(), 0.0f);
      v_.emplace_back(p->value.size(), 0.0f);
    }
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    ZEIOT_CHECK_MSG(m_[pi].size() == p.value.size(),
                    "optimizer was initialised for a different network");
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g = p.grad[i];
      m_[pi][i] = static_cast<float>(beta1_ * m_[pi][i] + (1.0 - beta1_) * g);
      v_[pi][i] =
          static_cast<float>(beta2_ * v_[pi][i] + (1.0 - beta2_) * g * g);
      const double mhat = m_[pi][i] / bc1;
      const double vhat = v_[pi][i] / bc2;
      p.value[i] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace zeiot::ml
