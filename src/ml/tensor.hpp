// Minimal dense float tensor (row-major, up to 4 dimensions) backing the
// from-scratch CNN used by MicroDeep.  Sized for sensing workloads (tens of
// channels, grids of a few hundred cells), not for GPU-scale training.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/kernels/aligned.hpp"

namespace zeiot::ml {

class Tensor {
 public:
  Tensor() = default;
  /// Allocates a tensor of the given shape filled with `fill`.
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& t) { return Tensor(t.shape_); }

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t flat) { return data_[flat]; }
  float operator[](std::size_t flat) const { return data_[flat]; }

  /// Bounds-checked multi-index access (arity must match ndim).
  float& at(std::initializer_list<int> idx);
  float at(std::initializer_list<int> idx) const;

  /// Flat offset of a multi-index (bounds-checked).
  std::size_t offset(std::initializer_list<int> idx) const;

  /// Returns a copy with a new shape of identical element count.
  Tensor reshape(std::vector<int> new_shape) const;

  void fill(float v);
  /// In-place elementwise add; shapes must match exactly.
  void add_(const Tensor& other);
  /// In-place scalar multiply.
  void scale_(float s);
  /// Sum of all elements.
  double sum() const;
  /// Index of the maximum element (first on ties).
  std::size_t argmax() const;

  /// Fills with N(0, sigma) values.
  void randomize_normal(Rng& rng, double sigma);
  /// He initialisation for a layer with `fan_in` inputs.
  void he_init(Rng& rng, int fan_in);

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  // 64-byte-aligned storage (see kernels/aligned.hpp): SIMD backends read
  // tensor data directly, and an aligned base keeps vector loads off
  // cache-line splits.  Guaranteed by tests/test_kernel_backends.cpp.
  kernels::AlignedVector<float> data_;
};

}  // namespace zeiot::ml
