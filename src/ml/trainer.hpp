// Mini-batch training loop with per-epoch history and evaluation helpers.
//
// The trainer exposes a gradient-transform hook: MicroDeep uses it to model
// the accuracy impact of node-local weight updates (cross-node gradient
// terms arriving stale/partial) without duplicating the training loop.
#pragma once

#include <functional>
#include <vector>

#include "common/confusion.hpp"
#include "ml/dataset.hpp"
#include "ml/loss.hpp"
#include "ml/network.hpp"
#include "ml/optimizer.hpp"

namespace zeiot::ml {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  /// Stop early when validation accuracy has not improved for this many
  /// epochs (0 disables early stopping).
  int patience = 0;
  /// Print per-epoch progress to stderr.
  bool verbose = false;
};

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  double best_val_accuracy = 0.0;
};

class Trainer {
 public:
  /// Called after gradients are accumulated, before the optimizer step.
  /// MicroDeep installs its distributed-update model here.
  using GradHook = std::function<void(std::vector<Param*>&)>;

  Trainer(Network& net, Optimizer& opt, Rng rng);

  void set_grad_hook(GradHook hook) { grad_hook_ = std::move(hook); }

  /// Trains on `train`, tracking accuracy on `val` each epoch.
  TrainHistory fit(const Dataset& train, const Dataset& val,
                   const TrainConfig& cfg);

  /// Accuracy of the current network on `data`.
  double evaluate(const Dataset& data);

  /// Full confusion matrix on `data`.
  ConfusionMatrix confusion(const Dataset& data, int num_classes);

  /// Predicted label for one sample.
  int predict(const Tensor& x);

 private:
  Network& net_;
  Optimizer& opt_;
  Rng rng_;
  GradHook grad_hook_;
};

}  // namespace zeiot::ml
