// Mini-batch training loop with per-epoch history and evaluation helpers.
//
// The trainer exposes a gradient-transform hook: MicroDeep uses it to model
// the accuracy impact of node-local weight updates (cross-node gradient
// terms arriving stale/partial) without duplicating the training loop.
//
// Execution is data-parallel and deterministic: each mini-batch is split
// into fixed-size shards (cfg.shard_grain samples, independent of the
// worker count), every shard runs forward/backward on its own network
// replica, and the shard gradients are summed into the primary network in
// shard order before the optimizer step.  Results are therefore
// bit-identical between ZEIOT_THREADS=1 and ZEIOT_THREADS=N.  Networks
// containing RNG-consuming layers (Dropout) fall back to the serial
// whole-batch path at any thread count, which is equally deterministic.
#pragma once

#include <functional>
#include <vector>

#include "common/confusion.hpp"
#include "ml/dataset.hpp"
#include "ml/loss.hpp"
#include "ml/network.hpp"
#include "ml/optimizer.hpp"

namespace zeiot::par {
class ThreadPool;
}

namespace zeiot::obs {
class Observability;
}

namespace zeiot::ml {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  /// Stop early when the model has not improved for this many epochs
  /// (0 disables early stopping).  Improvement means higher validation
  /// accuracy, or — when no validation set is supplied — lower epoch
  /// train loss.
  int patience = 0;
  /// Print per-epoch progress to stderr.
  bool verbose = false;
  /// Samples per data-parallel shard.  Fixed shard boundaries (not tied to
  /// the worker count) are what keep training reproducible; lower values
  /// expose more parallelism, higher values amortize more per-shard work.
  int shard_grain = 8;
  /// Worker pool for sharded execution (null = par::global_pool(), which
  /// honours ZEIOT_THREADS).
  par::ThreadPool* pool = nullptr;
  /// Null-sink observability.  With spans enabled, fit() records one
  /// TrainEpoch span per epoch on the virtual epoch axis (t = epoch index,
  /// value = epoch train loss) with TrainShard children for the
  /// data-parallel shards (recorded on the calling thread during the
  /// shard-order reduction, so the stream is thread-count independent).
  /// The profiler gains trainer.fit / trainer.epoch wall-time regions.
  obs::Observability* obs = nullptr;
};

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
  double best_val_accuracy = 0.0;
};

class Trainer {
 public:
  /// Called after gradients are accumulated, before the optimizer step.
  /// MicroDeep installs its distributed-update model here.
  using GradHook = std::function<void(std::vector<Param*>&)>;

  /// `pool` is the default worker pool for fit/evaluate (null =
  /// par::global_pool()); TrainConfig::pool overrides it per fit.
  Trainer(Network& net, Optimizer& opt, Rng rng,
          par::ThreadPool* pool = nullptr);

  void set_grad_hook(GradHook hook) { grad_hook_ = std::move(hook); }

  /// Trains on `train`, tracking accuracy on `val` each epoch.
  TrainHistory fit(const Dataset& train, const Dataset& val,
                   const TrainConfig& cfg);

  /// Accuracy of the current network on `data`.
  double evaluate(const Dataset& data);

  /// Full confusion matrix on `data`.
  ConfusionMatrix confusion(const Dataset& data, int num_classes);

  /// Predicted label for one sample.
  int predict(const Tensor& x);

 private:
  /// Replica pool sized to `count`, lazily cloned from net_.
  void ensure_replicas(std::size_t count);

  Network& net_;
  Optimizer& opt_;
  Rng rng_;
  GradHook grad_hook_;
  par::ThreadPool* pool_;
  std::vector<Network> replicas_;
  std::vector<std::vector<Param*>> replica_params_;
};

}  // namespace zeiot::ml
