// First-order optimizers over a network's parameter list.
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace zeiot::ml {

/// Interface: applies one update step from accumulated gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Consumes the gradients currently stored in `params` (does not zero
  /// them; callers zero before the next accumulation).
  virtual void step(const std::vector<Param*>& params) = 0;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void step(const std::vector<Param*>& params) override;

  double lr() const { return lr_; }
  void set_lr(double lr);

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;  // lazily sized per param
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<Param*>& params) override;

  double lr() const { return lr_; }
  void set_lr(double lr);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace zeiot::ml
