#include "ml/standardize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace zeiot::ml {

void Standardizer::fit(const FeatureMatrix& x) {
  ZEIOT_CHECK_MSG(!x.empty(), "Standardizer::fit on empty matrix");
  const std::size_t d = x.front().size();
  ZEIOT_CHECK_MSG(d > 0, "Standardizer::fit on zero-width matrix");
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : x) {
    ZEIOT_CHECK_MSG(row.size() == d, "ragged feature matrix");
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(x.size());
  std::vector<double> var(d, 0.0);
  for (const auto& row : x) {
    for (std::size_t j = 0; j < d; ++j) {
      const double dv = row[j] - mean_[j];
      var[j] += dv * dv;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Standardizer::transform(
    const std::vector<double>& row) const {
  ZEIOT_CHECK_MSG(fitted(), "Standardizer not fitted");
  ZEIOT_CHECK_MSG(row.size() == mean_.size(), "feature count mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  return out;
}

FeatureMatrix Standardizer::transform(const FeatureMatrix& x) const {
  FeatureMatrix out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace zeiot::ml
