#include "ml/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>

namespace zeiot::ml {

namespace {

constexpr std::uint32_t kMagic = 0x5A45494F;  // "ZEIO"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  // Little-endian, explicitly.
  const unsigned char b[4] = {
      static_cast<unsigned char>(v & 0xff),
      static_cast<unsigned char>((v >> 8) & 0xff),
      static_cast<unsigned char>((v >> 16) & 0xff),
      static_cast<unsigned char>((v >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  ZEIOT_CHECK_MSG(is.good(), "weight stream truncated");
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void write_f32(std::ostream& os, float f) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(f));
  __builtin_memcpy(&bits, &f, sizeof(bits));
  write_u32(os, bits);
}

float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float f;
  __builtin_memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace

void save_weights(const Network& net, std::ostream& os) {
  auto params = const_cast<Network&>(net).params();
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    const auto& shape = p->value.shape();
    write_u32(os, static_cast<std::uint32_t>(shape.size()));
    for (int d : shape) write_u32(os, static_cast<std::uint32_t>(d));
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      write_f32(os, p->value[i]);
    }
  }
  ZEIOT_CHECK_MSG(os.good(), "weight stream write failed");
}

void save_weights(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  ZEIOT_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_weights(net, os);
}

void load_weights(Network& net, std::istream& is) {
  ZEIOT_CHECK_MSG(read_u32(is) == kMagic, "not a zeiot weight stream");
  const std::uint32_t version = read_u32(is);
  ZEIOT_CHECK_MSG(version == kVersion,
                  "unsupported weight version " << version);
  auto params = net.params();
  const std::uint32_t count = read_u32(is);
  ZEIOT_CHECK_MSG(count == params.size(),
                  "parameter count mismatch: stream has "
                      << count << ", network has " << params.size());
  for (Param* p : params) {
    const std::uint32_t rank = read_u32(is);
    const auto& shape = p->value.shape();
    ZEIOT_CHECK_MSG(rank == shape.size(), "parameter rank mismatch");
    for (int d : shape) {
      const std::uint32_t sd = read_u32(is);
      ZEIOT_CHECK_MSG(sd == static_cast<std::uint32_t>(d),
                      "parameter shape mismatch: stream dim "
                          << sd << " vs network dim " << d);
    }
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] = read_f32(is);
    }
  }
  ZEIOT_CHECK_MSG(is.good(), "weight stream read failed");
  // Strict framing: the stream must end exactly at the last tensor value.
  // Trailing bytes mean the payload does not belong to this architecture.
  is.peek();
  ZEIOT_CHECK_MSG(is.eof(), "trailing bytes after weight stream");
}

void load_weights(Network& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ZEIOT_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  load_weights(net, is);
}

}  // namespace zeiot::ml
