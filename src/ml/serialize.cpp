#include "ml/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>

namespace zeiot::ml {

namespace {

constexpr std::uint32_t kMagic = 0x5A45494F;  // "ZEIO"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kQuantMagic = 0x5A454951;  // "ZEIQ"
constexpr std::uint32_t kQuantVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  // Little-endian, explicitly.
  const unsigned char b[4] = {
      static_cast<unsigned char>(v & 0xff),
      static_cast<unsigned char>((v >> 8) & 0xff),
      static_cast<unsigned char>((v >> 16) & 0xff),
      static_cast<unsigned char>((v >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  ZEIOT_CHECK_MSG(is.good(), "weight stream truncated");
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void write_f32(std::ostream& os, float f) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(f));
  __builtin_memcpy(&bits, &f, sizeof(bits));
  write_u32(os, bits);
}

float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float f;
  __builtin_memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace

void save_weights(const Network& net, std::ostream& os) {
  auto params = const_cast<Network&>(net).params();
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    const auto& shape = p->value.shape();
    write_u32(os, static_cast<std::uint32_t>(shape.size()));
    for (int d : shape) write_u32(os, static_cast<std::uint32_t>(d));
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      write_f32(os, p->value[i]);
    }
  }
  ZEIOT_CHECK_MSG(os.good(), "weight stream write failed");
}

void save_weights(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  ZEIOT_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_weights(net, os);
}

void load_weights(Network& net, std::istream& is) {
  ZEIOT_CHECK_MSG(read_u32(is) == kMagic, "not a zeiot weight stream");
  const std::uint32_t version = read_u32(is);
  ZEIOT_CHECK_MSG(version == kVersion,
                  "unsupported weight version " << version);
  auto params = net.params();
  const std::uint32_t count = read_u32(is);
  ZEIOT_CHECK_MSG(count == params.size(),
                  "parameter count mismatch: stream has "
                      << count << ", network has " << params.size());
  for (Param* p : params) {
    const std::uint32_t rank = read_u32(is);
    const auto& shape = p->value.shape();
    ZEIOT_CHECK_MSG(rank == shape.size(), "parameter rank mismatch");
    for (int d : shape) {
      const std::uint32_t sd = read_u32(is);
      ZEIOT_CHECK_MSG(sd == static_cast<std::uint32_t>(d),
                      "parameter shape mismatch: stream dim "
                          << sd << " vs network dim " << d);
    }
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] = read_f32(is);
    }
  }
  ZEIOT_CHECK_MSG(is.good(), "weight stream read failed");
  // Strict framing: the stream must end exactly at the last tensor value.
  // Trailing bytes mean the payload does not belong to this architecture.
  is.peek();
  ZEIOT_CHECK_MSG(is.eof(), "trailing bytes after weight stream");
}

void load_weights(Network& net, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ZEIOT_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  load_weights(net, is);
}

namespace {

void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}

std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

void write_i8_block(std::ostream& os, const std::vector<std::int8_t>& v) {
  write_u32(os, static_cast<std::uint32_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size()));
  }
}

std::vector<std::int8_t> read_i8_block(std::istream& is) {
  const std::uint32_t count = read_u32(is);
  std::vector<std::int8_t> v(count);
  if (count > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(count));
    ZEIOT_CHECK_MSG(is.good(), "quantized weight stream truncated");
  }
  return v;
}

}  // namespace

void save_quantized(const QuantizedNetwork& qnet, std::ostream& os) {
  write_u32(os, kQuantMagic);
  write_u32(os, kQuantVersion);
  const auto& shape = qnet.input_shape();
  write_u32(os, static_cast<std::uint32_t>(shape.size()));
  for (int d : shape) write_u32(os, static_cast<std::uint32_t>(d));
  write_f32(os, qnet.input_scale());
  write_u32(os, static_cast<std::uint32_t>(qnet.ops().size()));
  for (const QuantOp& op : qnet.ops()) {
    write_u32(os, static_cast<std::uint32_t>(op.kind));
    write_i32(os, op.in_channels);
    write_i32(os, op.out_channels);
    write_i32(os, op.kernel);
    write_i32(os, op.padding);
    write_i32(os, op.in_features);
    write_i32(os, op.out_features);
    write_i32(os, op.pool_k);
    write_u32(os, (op.relu_after ? 1u : 0u) | (op.dequant_output ? 2u : 0u));
    write_f32(os, op.in_scale);
    write_f32(os, op.out_scale);
    write_i8_block(os, op.weight);
    write_u32(os, static_cast<std::uint32_t>(op.bias.size()));
    for (std::int32_t b : op.bias) write_i32(os, b);
    write_u32(os, static_cast<std::uint32_t>(op.requant.size()));
    for (const RequantScale& r : op.requant) {
      write_i32(os, r.multiplier);
      write_i32(os, r.shift);
    }
    write_u32(os, static_cast<std::uint32_t>(op.dequant_scale.size()));
    for (float s : op.dequant_scale) write_f32(os, s);
  }
  ZEIOT_CHECK_MSG(os.good(), "quantized weight stream write failed");
}

void save_quantized(const QuantizedNetwork& qnet, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  ZEIOT_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_quantized(qnet, os);
}

QuantizedNetwork load_quantized(std::istream& is) {
  ZEIOT_CHECK_MSG(read_u32(is) == kQuantMagic,
                  "not a zeiot quantized weight stream");
  const std::uint32_t version = read_u32(is);
  ZEIOT_CHECK_MSG(version == kQuantVersion,
                  "unsupported quantized weight version " << version);
  const std::uint32_t rank = read_u32(is);
  ZEIOT_CHECK_MSG(rank >= 1 && rank <= 4, "bad quantized input rank " << rank);
  std::vector<int> input_shape(rank);
  for (auto& d : input_shape) d = static_cast<int>(read_u32(is));
  const float input_scale = read_f32(is);
  const std::uint32_t num_ops = read_u32(is);
  std::vector<QuantOp> ops(num_ops);
  for (QuantOp& op : ops) {
    const std::uint32_t kind = read_u32(is);
    ZEIOT_CHECK_MSG(kind <= static_cast<std::uint32_t>(QuantOp::Kind::Dense),
                    "bad quantized op kind " << kind);
    op.kind = static_cast<QuantOp::Kind>(kind);
    op.in_channels = read_i32(is);
    op.out_channels = read_i32(is);
    op.kernel = read_i32(is);
    op.padding = read_i32(is);
    op.in_features = read_i32(is);
    op.out_features = read_i32(is);
    op.pool_k = read_i32(is);
    const std::uint32_t flags = read_u32(is);
    op.relu_after = (flags & 1u) != 0;
    op.dequant_output = (flags & 2u) != 0;
    op.in_scale = read_f32(is);
    op.out_scale = read_f32(is);
    op.weight = read_i8_block(is);
    op.bias.resize(read_u32(is));
    for (auto& b : op.bias) b = read_i32(is);
    op.requant.resize(read_u32(is));
    for (auto& r : op.requant) {
      r.multiplier = read_i32(is);
      r.shift = read_i32(is);
    }
    op.dequant_scale.resize(read_u32(is));
    for (auto& s : op.dequant_scale) s = read_f32(is);
  }
  ZEIOT_CHECK_MSG(is.good(), "quantized weight stream read failed");
  is.peek();
  ZEIOT_CHECK_MSG(is.eof(), "trailing bytes after quantized weight stream");
  return load_quantized_detail(std::move(ops), std::move(input_shape),
                               input_scale);
}

QuantizedNetwork load_quantized(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ZEIOT_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  return load_quantized(is);
}

}  // namespace zeiot::ml
