#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zeiot::ml {

KnnClassifier::KnnClassifier(int k) : k_(k) {
  ZEIOT_CHECK_MSG(k > 0, "kNN requires k > 0");
}

void KnnClassifier::fit(FeatureMatrix x, LabelVector y) {
  ZEIOT_CHECK_MSG(!x.empty() && x.size() == y.size(),
                  "kNN fit requires aligned non-empty x/y");
  const std::size_t d = x.front().size();
  int mx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ZEIOT_CHECK_MSG(x[i].size() == d, "ragged feature matrix");
    ZEIOT_CHECK_MSG(y[i] >= 0, "labels must be >= 0");
    mx = std::max(mx, y[i]);
  }
  x_ = std::move(x);
  y_ = std::move(y);
  num_classes_ = mx + 1;
}

int KnnClassifier::predict(const std::vector<double>& row) const {
  ZEIOT_CHECK_MSG(!x_.empty(), "kNN predict before fit");
  ZEIOT_CHECK_MSG(row.size() == x_.front().size(), "feature count mismatch");
  // Partial selection of the k smallest distances.  Keys are (d^2, training
  // index): breaking distance ties by index makes the neighbor set — and
  // therefore the prediction — independent of the (unstable) partial_sort
  // implementation when several training points are equidistant.
  std::vector<std::pair<double, std::size_t>> dist;  // (d^2, index)
  dist.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double dv = row[j] - x_[i][j];
      d2 += dv * dv;
    }
    dist.emplace_back(d2, i);
  }
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                              dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  std::vector<double> vote_dist(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const auto label = static_cast<std::size_t>(y_[dist[i].second]);
    ++votes[label];
    vote_dist[label] += dist[i].first;
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    const auto cb = static_cast<std::size_t>(best);
    if (votes[cc] > votes[cb] ||
        (votes[cc] == votes[cb] && vote_dist[cc] < vote_dist[cb])) {
      best = c;
    }
  }
  return best;
}

double KnnClassifier::score(const FeatureMatrix& x, const LabelVector& y) const {
  ZEIOT_CHECK_MSG(x.size() == y.size() && !x.empty(),
                  "score requires aligned non-empty x/y");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace zeiot::ml
