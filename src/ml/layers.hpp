// Neural-network layers for the from-scratch CNN substrate.
//
// Data layout is NCHW (batch, channels, height, width) for spatial layers
// and (batch, features) for dense layers.  Conv2D and Dense run as GEMMs
// (im2col packing + the cache-blocked kernels in ml/kernels), with scratch
// carved from a per-Network workspace arena and the batch chunked over
// zeiot::par.  Chunk layouts and summation orders are pure functions of
// the shapes, so results are bit-identical at any thread count.  The
// original straight-loop arithmetic is retained in ml/kernels/reference.hpp
// as the audited ground truth the GEMM path is property-tested against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/kernels/workspace.hpp"
#include "ml/tensor.hpp"

namespace zeiot::par {
class ThreadPool;
}  // namespace zeiot::par

namespace zeiot::ml {

/// A trainable parameter tensor paired with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;
};

/// Base layer: forward caches whatever backward needs.
class Layer {
 public:
  virtual ~Layer() = default;
  /// Forward pass; `train` enables behaviours like dropout.
  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// Backward pass: receives dL/dy, accumulates parameter gradients,
  /// returns dL/dx.  Must be called after forward on the same input.
  virtual Tensor backward(const Tensor& grad_y) = 0;
  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }
  virtual std::string name() const = 0;
  /// Output shape (excluding batch) for an input shape (excluding batch).
  virtual std::vector<int> output_shape(const std::vector<int>& in) const = 0;
  /// Deep copy for data-parallel replicas: parameter values and gradients
  /// are copied, forward caches come along but are overwritten by the next
  /// forward.  Layers whose *training* forward draws randomness (Dropout)
  /// share the original generator and must report rng_forward() = true so
  /// the trainer keeps them off the sharded path.
  virtual std::unique_ptr<Layer> clone() const = 0;
  /// True when forward(x, /*train=*/true) consumes shared RNG state.
  virtual bool rng_forward() const { return false; }

  /// Binds the scratch arena this layer carves kernel temporaries from.
  /// Owned by the enclosing Network; standalone layers fall back to a
  /// private arena on first use.  The binding is transient: layer copies
  /// (clone) start unbound and are re-bound by their new owner.
  void set_workspace(kernels::Workspace* ws) { workspace_ = ws; }
  /// Binds the thread pool batch-parallel kernels run on (null = global
  /// pool).  Transient, like set_workspace().
  void set_pool(par::ThreadPool* pool) { pool_ = pool; }

 protected:
  Layer() = default;
  /// Workspace/pool bindings and the private arena are deliberately NOT
  /// copied: a cloned layer must not share scratch memory with its source
  /// (replicas run concurrently in the trainer).
  Layer(const Layer&) noexcept {}
  Layer& operator=(const Layer&) noexcept { return *this; }

  /// The bound arena, or a lazily created private one when standalone.
  kernels::Workspace& scratch() {
    if (workspace_ != nullptr) return *workspace_;
    if (!local_ws_) local_ws_ = std::make_unique<kernels::Workspace>();
    return *local_ws_;
  }

  par::ThreadPool* pool_ = nullptr;

 private:
  kernels::Workspace* workspace_ = nullptr;
  std::unique_ptr<kernels::Workspace> local_ws_;
};

/// 2-D convolution, stride 1, symmetric zero padding.
class Conv2D final : public Layer {
 public:
  /// Kernels are `out_channels` x `in_channels` x `k` x `k`.
  Conv2D(int in_channels, int out_channels, int kernel, int padding, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "conv2d"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2D>(*this);
  }
  std::vector<int> output_shape(const std::vector<int>& in) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int padding() const { return padding_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int padding_;
  Param weight_;
  Param bias_;
  Tensor cached_x_;
};

/// Max pooling with square window `k`, stride `k` (floor division of dims).
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(int k);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::string name() const override { return "maxpool2d"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2D>(*this);
  }
  std::vector<int> output_shape(const std::vector<int>& in) const override;

  int k() const { return k_; }

 private:
  int k_;
  std::vector<int> in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::string name() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }
  std::vector<int> output_shape(const std::vector<int>& in) const override {
    return in;
  }

 private:
  std::vector<std::uint8_t> mask_;  // 1 where x > 0 (byte mask: bit access
                                    // in vector<bool> defeats the pointer
                                    // loops and is not addressable)
};

/// Collapses (N,C,H,W) (or any rank) to (N, features).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::string name() const override { return "flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }
  std::vector<int> output_shape(const std::vector<int>& in) const override;

 private:
  std::vector<int> in_shape_;
};

/// Fully connected layer: (N, in) -> (N, out).
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }
  std::vector<int> output_shape(const std::vector<int>& in) const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor cached_x_;
};

/// Inverted dropout with keep probability 1-p.
class Dropout final : public Layer {
 public:
  Dropout(double p, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_y) override;
  std::string name() const override { return "dropout"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }
  bool rng_forward() const override { return true; }
  std::vector<int> output_shape(const std::vector<int>& in) const override {
    return in;
  }

 private:
  double p_;
  Rng& rng_;
  std::vector<float> scale_;  // 0 or 1/(1-p) per element of the last forward
};

}  // namespace zeiot::ml
