// Gaussian naive Bayes — the likelihood-function estimator style used by the
// paper's congestion/position pipeline ("our method is based on likelihood
// functions ... built according to our preliminary experiments").
#pragma once

#include "ml/features.hpp"

namespace zeiot::ml {

class GaussianNaiveBayes {
 public:
  /// Variance floor avoids degenerate spikes on (near-)constant features.
  explicit GaussianNaiveBayes(double var_floor = 1e-6);

  void fit(const FeatureMatrix& x, const LabelVector& y);

  /// Log p(class) + sum_j log N(row_j; mu_cj, var_cj), per class.
  std::vector<double> log_likelihoods(const std::vector<double>& row) const;
  int predict(const std::vector<double>& row) const;
  double score(const FeatureMatrix& x, const LabelVector& y) const;

  int num_classes() const { return num_classes_; }

 private:
  double var_floor_;
  int num_classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> log_prior_;  // (K)
  std::vector<double> mean_;       // (K, D)
  std::vector<double> var_;        // (K, D)
};

}  // namespace zeiot::ml
