// k-nearest-neighbour classifier (Euclidean), used by the CSI localization
// pipeline where the paper's system matches captured feedback frames against
// labelled recordings.
#pragma once

#include "ml/features.hpp"

namespace zeiot::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 5);

  /// Stores the training set (copies).  Rows must be rectangular.
  void fit(FeatureMatrix x, LabelVector y);

  /// Majority vote among the k nearest training rows; ties break toward the
  /// nearer neighbour set (lower summed distance).
  int predict(const std::vector<double>& row) const;

  /// Batch accuracy.
  double score(const FeatureMatrix& x, const LabelVector& y) const;

  int k() const { return k_; }

 private:
  int k_;
  FeatureMatrix x_;
  LabelVector y_;
  int num_classes_ = 0;
};

}  // namespace zeiot::ml
