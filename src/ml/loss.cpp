#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>

namespace zeiot::ml {

Tensor softmax(const Tensor& logits) {
  ZEIOT_CHECK_MSG(logits.ndim() == 2, "softmax expects (N, K)");
  const int n = logits.dim(0), k = logits.dim(1);
  Tensor out({n, k});
  for (int b = 0; b < n; ++b) {
    const float* row = logits.data() + static_cast<std::size_t>(b) * k;
    float* orow = out.data() + static_cast<std::size_t>(b) * k;
    const float mx = *std::max_element(row, row + k);
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int j = 0; j < k; ++j)
      orow[j] = static_cast<float>(orow[j] / denom);
  }
  return out;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  ZEIOT_CHECK_MSG(logits.ndim() == 2, "loss expects (N, K) logits");
  const int n = logits.dim(0), k = logits.dim(1);
  ZEIOT_CHECK_MSG(static_cast<int>(labels.size()) == n,
                  "labels size " << labels.size() << " != batch " << n);
  LossResult r;
  r.grad = softmax(logits);
  double total = 0.0;
  for (int b = 0; b < n; ++b) {
    const int y = labels[static_cast<std::size_t>(b)];
    ZEIOT_CHECK_MSG(y >= 0 && y < k, "label " << y << " out of range 0.." << k - 1);
    float* grow = r.grad.data() + static_cast<std::size_t>(b) * k;
    const double p = std::max(1e-12, static_cast<double>(grow[y]));
    total -= std::log(p);
    grow[y] -= 1.0f;
    // Mean over batch.
    for (int j = 0; j < k; ++j) grow[j] /= static_cast<float>(n);
  }
  r.loss = total / static_cast<double>(n);
  return r;
}

}  // namespace zeiot::ml
