// Per-feature standardisation (z-scoring) fitted on training data and
// applied to held-out data — required by the distance-based classifiers.
#pragma once

#include "ml/features.hpp"

namespace zeiot::ml {

class Standardizer {
 public:
  /// Learns per-column mean and standard deviation from `x` (non-empty,
  /// rectangular).  Columns with zero variance are passed through unscaled.
  void fit(const FeatureMatrix& x);

  /// Applies the learned transform.  Must be fitted first; column count must
  /// match the fitted data.
  std::vector<double> transform(const std::vector<double>& row) const;
  FeatureMatrix transform(const FeatureMatrix& x) const;

  bool fitted() const { return !mean_.empty(); }
  std::size_t num_features() const { return mean_.size(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace zeiot::ml
