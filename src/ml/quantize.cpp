#include "ml/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "ml/kernels/gemm.hpp"

namespace zeiot::ml {

namespace {

float absmax_range(const float* p, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float scale_from_absmax(float absmax) {
  return absmax > 0.0f ? absmax / 127.0f : 1.0f;
}

std::int8_t clamp_i8(long v, long lo) {
  return static_cast<std::int8_t>(std::clamp(v, lo, long{127}));
}

// Packs one int8 image (c x h x w) into a (P x K) row panel: row p is
// output position (oy, ox), column r = (ic*k + ky)*k + kx — the same K
// order as the conv weight rows, so igemm_abt_accum(Wq, panel) is the
// quantized convolution.  Padding cells are exact zeros (zero-point 0).
void im2row_i8(const std::int8_t* img, int c, int h, int w, int k, int pad,
               int oh, int ow, std::int8_t* out) {
  const int kdim = c * k * k;
  std::int8_t* row = out;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox, row += kdim) {
      for (int ic = 0; ic < c; ++ic) {
        const std::int8_t* plane =
            img + static_cast<std::size_t>(ic) * h * static_cast<std::size_t>(w);
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy + ky - pad;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox + kx - pad;
            row[(ic * k + ky) * k + kx] =
                (iy >= 0 && iy < h && ix >= 0 && ix < w)
                    ? plane[static_cast<std::size_t>(iy) * w + ix]
                    : std::int8_t{0};
          }
        }
      }
    }
  }
}

// Quantizes one weight matrix of `rows` rows x `cols` columns (row-major
// float) into int8 rows with per-row symmetric scales.
std::vector<float> quantize_weight_rows(const float* w, int rows, int cols,
                                        std::vector<std::int8_t>& out) {
  out.resize(static_cast<std::size_t>(rows) * cols);
  std::vector<float> scales(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* src = w + static_cast<std::size_t>(r) * cols;
    const float s = scale_from_absmax(absmax_range(src, cols));
    scales[static_cast<std::size_t>(r)] = s;
    std::int8_t* dst = out.data() + static_cast<std::size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = quantize_value(src[c], s);
  }
  return scales;
}

int prod(const std::vector<int>& dims) {
  int p = 1;
  for (int d : dims) p *= d;
  return p;
}

}  // namespace

RequantScale make_requant_scale(double m) {
  ZEIOT_CHECK_MSG(std::isfinite(m) && m > 0.0,
                  "requant multiplier must be finite and positive, got " << m);
  int e = 0;
  const double m0 = std::frexp(m, &e);  // m = m0 * 2^e, m0 in [0.5, 1)
  auto mult = static_cast<std::int64_t>(std::llround(m0 * 2147483648.0));
  if (mult == (std::int64_t{1} << 31)) {  // m0 rounded up to exactly 1.0
    mult >>= 1;
    ++e;
  }
  const int shift = 31 - e;
  ZEIOT_CHECK_MSG(shift >= 1 && shift <= 62,
                  "requant multiplier out of representable range: " << m);
  return RequantScale{static_cast<std::int32_t>(mult), shift};
}

std::int8_t quantize_value(float v, float scale) {
  const long r =
      std::lround(static_cast<double>(v) / static_cast<double>(scale));
  return clamp_i8(r, -127);
}

std::vector<float> calibration_absmax(Network& net, const Tensor& calibration,
                                      int max_samples) {
  ZEIOT_CHECK_MSG(calibration.ndim() >= 2, "calibration batch must be (N,...)");
  ZEIOT_CHECK_MSG(max_samples > 0, "max_samples must be > 0");
  Tensor cur = calibration;
  if (calibration.dim(0) > max_samples) {
    std::vector<int> sub_shape = calibration.shape();
    sub_shape[0] = max_samples;
    Tensor sub(sub_shape);
    std::copy(calibration.data(), calibration.data() + sub.size(), sub.data());
    cur = std::move(sub);
  }
  std::vector<float> absmax;
  absmax.reserve(net.num_layers() + 1);
  absmax.push_back(absmax_range(cur.data(), cur.size()));
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    cur = net.layer(i).forward(cur, /*train=*/false);
    absmax.push_back(absmax_range(cur.data(), cur.size()));
  }
  return absmax;
}

QuantizedNetwork QuantizedNetwork::build(Network& net,
                                         const std::vector<int>& input_shape,
                                         const Tensor& calibration,
                                         const QuantBuildOptions& opts) {
  ZEIOT_CHECK_MSG(net.num_layers() > 0, "cannot quantize an empty network");
  const std::vector<float> absmax =
      calibration_absmax(net, calibration, opts.max_calibration_samples);
  std::vector<float> scales(absmax.size());
  for (std::size_t i = 0; i < absmax.size(); ++i) {
    scales[i] = scale_from_absmax(absmax[i]);
  }

  QuantizedNetwork q;
  q.input_shape_ = input_shape;
  q.input_scale_ = scales[0];

  std::size_t last_dense = static_cast<std::size_t>(-1);
  std::size_t li = 0;
  while (li < net.num_layers()) {
    Layer& layer = net.layer(li);
    // ReLU directly after a GEMM layer folds into its requantize clamp.
    const bool next_is_relu =
        li + 1 < net.num_layers() &&
        dynamic_cast<const ReLU*>(&net.layer(li + 1)) != nullptr;

    if (auto* conv = dynamic_cast<Conv2D*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::Conv2D;
      op.in_channels = conv->in_channels();
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      op.padding = conv->padding();
      op.relu_after = next_is_relu;
      op.in_scale = scales[li];
      op.out_scale = scales[li + (next_is_relu ? 2 : 1)];
      const int kdim = op.in_channels * op.kernel * op.kernel;
      const auto params = conv->params();
      const std::vector<float> wscale = quantize_weight_rows(
          params[0]->value.data(), op.out_channels, kdim, op.weight);
      const float* bias = params[1]->value.data();
      op.bias.resize(static_cast<std::size_t>(op.out_channels));
      op.requant.resize(static_cast<std::size_t>(op.out_channels));
      for (int oc = 0; oc < op.out_channels; ++oc) {
        const double unit = static_cast<double>(op.in_scale) * wscale[oc];
        op.bias[static_cast<std::size_t>(oc)] = static_cast<std::int32_t>(
            std::llround(static_cast<double>(bias[oc]) / unit));
        op.requant[static_cast<std::size_t>(oc)] =
            make_requant_scale(unit / op.out_scale);
      }
      q.ops_.push_back(std::move(op));
      li += next_is_relu ? 2 : 1;
    } else if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::Dense;
      op.in_features = dense->in_features();
      op.out_features = dense->out_features();
      op.relu_after = next_is_relu;
      op.in_scale = scales[li];
      op.out_scale = scales[li + (next_is_relu ? 2 : 1)];
      const auto params = dense->params();
      const std::vector<float> wscale = quantize_weight_rows(
          params[0]->value.data(), op.out_features, op.in_features, op.weight);
      const float* bias = params[1]->value.data();
      op.bias.resize(static_cast<std::size_t>(op.out_features));
      op.requant.resize(static_cast<std::size_t>(op.out_features));
      op.dequant_scale.resize(static_cast<std::size_t>(op.out_features));
      for (int o = 0; o < op.out_features; ++o) {
        const double unit = static_cast<double>(op.in_scale) * wscale[o];
        op.bias[static_cast<std::size_t>(o)] = static_cast<std::int32_t>(
            std::llround(static_cast<double>(bias[o]) / unit));
        op.requant[static_cast<std::size_t>(o)] =
            make_requant_scale(unit / op.out_scale);
        op.dequant_scale[static_cast<std::size_t>(o)] =
            static_cast<float>(unit);
      }
      last_dense = q.ops_.size();
      q.ops_.push_back(std::move(op));
      li += next_is_relu ? 2 : 1;
    } else if (auto* pool = dynamic_cast<MaxPool2D*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::MaxPool2D;
      op.pool_k = pool->k();
      op.in_scale = op.out_scale = scales[li];
      q.ops_.push_back(std::move(op));
      ++li;
    } else if (dynamic_cast<Flatten*>(&layer) != nullptr) {
      QuantOp op;
      op.kind = QuantOp::Kind::Flatten;
      op.in_scale = op.out_scale = scales[li];
      q.ops_.push_back(std::move(op));
      ++li;
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      QuantOp op;  // a ReLU that did not fold (not preceded by a GEMM)
      op.kind = QuantOp::Kind::Relu;
      op.in_scale = op.out_scale = scales[li];
      q.ops_.push_back(std::move(op));
      ++li;
    } else if (dynamic_cast<Dropout*>(&layer) != nullptr) {
      ++li;  // identity at inference
    } else {
      throw Error("cannot quantize layer '" + layer.name() + "'");
    }
  }

  ZEIOT_CHECK_MSG(!q.ops_.empty(), "network quantized to an empty op list");
  // The final Dense skips the int8 grid and emits float logits directly
  // from the int32 accumulators.
  if (last_dense == q.ops_.size() - 1) {
    q.ops_[last_dense].dequant_output = true;
  }
  return q;
}

Tensor QuantizedNetwork::forward(const Tensor& x) const {
  ZEIOT_CHECK_MSG(!ops_.empty(), "forward on an empty quantized network");
  ZEIOT_CHECK_MSG(x.ndim() == static_cast<int>(input_shape_.size()) + 1,
                  "quantized forward rank mismatch");
  for (std::size_t i = 0; i < input_shape_.size(); ++i) {
    ZEIOT_CHECK_MSG(x.dim(static_cast<int>(i) + 1) == input_shape_[i],
                    "quantized forward shape mismatch at dim " << i + 1);
  }
  const int n = x.dim(0);
  std::vector<int> shape = input_shape_;  // per-sample shape
  std::size_t elems = static_cast<std::size_t>(prod(shape));

  // Quantize the input onto the calibrated grid.
  std::vector<std::int8_t> cur(static_cast<std::size_t>(n) * elems);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    cur[i] = quantize_value(x[i], input_scale_);
  }

  std::vector<std::int8_t> next;
  std::vector<std::int8_t> panel;
  std::vector<std::int32_t> acc;
  float cur_scale = input_scale_;

  for (const QuantOp& op : ops_) {
    switch (op.kind) {
      case QuantOp::Kind::Conv2D: {
        const int h = shape[1], w = shape[2];
        const int oh = h + 2 * op.padding - op.kernel + 1;
        const int ow = w + 2 * op.padding - op.kernel + 1;
        ZEIOT_CHECK_MSG(shape[0] == op.in_channels && oh > 0 && ow > 0,
                        "quantized conv geometry mismatch");
        const int kdim = op.in_channels * op.kernel * op.kernel;
        const int p = oh * ow;
        const std::size_t out_elems =
            static_cast<std::size_t>(op.out_channels) * p;
        panel.resize(static_cast<std::size_t>(p) * kdim);
        acc.resize(out_elems);
        next.resize(static_cast<std::size_t>(n) * out_elems);
        const long lo = op.relu_after ? 0 : -127;
        for (int b = 0; b < n; ++b) {
          im2row_i8(cur.data() + static_cast<std::size_t>(b) * elems,
                    op.in_channels, h, w, op.kernel, op.padding, oh, ow,
                    panel.data());
          for (int oc = 0; oc < op.out_channels; ++oc) {
            std::fill(acc.begin() + static_cast<std::size_t>(oc) * p,
                      acc.begin() + static_cast<std::size_t>(oc + 1) * p,
                      op.bias[static_cast<std::size_t>(oc)]);
          }
          kernels::igemm_abt_accum(op.out_channels, p, kdim, op.weight.data(),
                                   kdim, panel.data(), kdim, acc.data(), p);
          std::int8_t* dst = next.data() + static_cast<std::size_t>(b) * out_elems;
          for (int oc = 0; oc < op.out_channels; ++oc) {
            const RequantScale& rs = op.requant[static_cast<std::size_t>(oc)];
            const std::int32_t* arow = acc.data() + static_cast<std::size_t>(oc) * p;
            std::int8_t* drow = dst + static_cast<std::size_t>(oc) * p;
            for (int j = 0; j < p; ++j) {
              drow[j] = clamp_i8(requantize(arow[j], rs), lo);
            }
          }
        }
        cur.swap(next);
        shape = {op.out_channels, oh, ow};
        elems = out_elems;
        cur_scale = op.out_scale;
        break;
      }
      case QuantOp::Kind::MaxPool2D: {
        const int c = shape[0], h = shape[1], w = shape[2];
        const int oh = h / op.pool_k, ow = w / op.pool_k;
        ZEIOT_CHECK_MSG(oh > 0 && ow > 0, "quantized pool output empty");
        const std::size_t out_elems = static_cast<std::size_t>(c) * oh * ow;
        next.resize(static_cast<std::size_t>(n) * out_elems);
        for (int b = 0; b < n; ++b) {
          const std::int8_t* src = cur.data() + static_cast<std::size_t>(b) * elems;
          std::int8_t* dst = next.data() + static_cast<std::size_t>(b) * out_elems;
          for (int ic = 0; ic < c; ++ic) {
            const std::int8_t* plane =
                src + static_cast<std::size_t>(ic) * h * static_cast<std::size_t>(w);
            std::int8_t* oplane =
                dst + static_cast<std::size_t>(ic) * oh * static_cast<std::size_t>(ow);
            for (int oy = 0; oy < oh; ++oy) {
              for (int ox = 0; ox < ow; ++ox) {
                std::int8_t best = std::numeric_limits<std::int8_t>::min();
                for (int ky = 0; ky < op.pool_k; ++ky) {
                  const std::int8_t* row =
                      plane +
                      static_cast<std::size_t>(oy * op.pool_k + ky) * w +
                      static_cast<std::size_t>(ox) * op.pool_k;
                  for (int kx = 0; kx < op.pool_k; ++kx) {
                    best = std::max(best, row[kx]);
                  }
                }
                oplane[static_cast<std::size_t>(oy) * ow + ox] = best;
              }
            }
          }
        }
        cur.swap(next);
        shape = {c, oh, ow};
        elems = out_elems;
        break;
      }
      case QuantOp::Kind::Flatten: {
        shape = {static_cast<int>(elems)};
        break;
      }
      case QuantOp::Kind::Relu: {
        for (auto& v : cur) v = std::max(v, std::int8_t{0});
        break;
      }
      case QuantOp::Kind::Dense: {
        ZEIOT_CHECK_MSG(static_cast<int>(elems) == op.in_features,
                        "quantized dense feature mismatch");
        const std::size_t out_elems = static_cast<std::size_t>(op.out_features);
        acc.resize(static_cast<std::size_t>(n) * out_elems);
        for (int b = 0; b < n; ++b) {
          for (int o = 0; o < op.out_features; ++o) {
            acc[static_cast<std::size_t>(b) * out_elems + o] =
                op.bias[static_cast<std::size_t>(o)];
          }
        }
        kernels::igemm_abt_accum(n, op.out_features, op.in_features,
                                 cur.data(), op.in_features, op.weight.data(),
                                 op.in_features, acc.data(), op.out_features);
        if (op.dequant_output) {
          std::vector<int> out_shape = {n, op.out_features};
          Tensor out(out_shape);
          for (int b = 0; b < n; ++b) {
            for (int o = 0; o < op.out_features; ++o) {
              float v = static_cast<float>(
                  acc[static_cast<std::size_t>(b) * out_elems + o] *
                  static_cast<double>(
                      op.dequant_scale[static_cast<std::size_t>(o)]));
              if (op.relu_after) v = std::max(v, 0.0f);
              out[static_cast<std::size_t>(b) * out_elems + o] = v;
            }
          }
          return out;
        }
        const long lo = op.relu_after ? 0 : -127;
        next.resize(static_cast<std::size_t>(n) * out_elems);
        for (int b = 0; b < n; ++b) {
          for (int o = 0; o < op.out_features; ++o) {
            const std::size_t idx = static_cast<std::size_t>(b) * out_elems + o;
            next[idx] = clamp_i8(
                requantize(acc[idx], op.requant[static_cast<std::size_t>(o)]),
                lo);
          }
        }
        cur.swap(next);
        shape = {op.out_features};
        elems = out_elems;
        cur_scale = op.out_scale;
        break;
      }
    }
  }

  // The op list did not end in a dequantizing Dense: dequantize whatever is
  // left on the int8 grid.
  std::vector<int> out_shape;
  out_shape.reserve(shape.size() + 1);
  out_shape.push_back(n);
  out_shape.insert(out_shape.end(), shape.begin(), shape.end());
  Tensor out(out_shape);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    out[i] = static_cast<float>(cur[i]) * cur_scale;
  }
  return out;
}

std::size_t QuantizedNetwork::weight_bytes() const {
  std::size_t bytes = 0;
  for (const QuantOp& op : ops_) {
    bytes += op.weight.size() * sizeof(std::int8_t);
    bytes += op.bias.size() * sizeof(std::int32_t);
    bytes += op.requant.size() * (sizeof(std::int32_t) + sizeof(std::int32_t));
    bytes += op.dequant_scale.size() * sizeof(float);
  }
  return bytes;
}

std::size_t QuantizedNetwork::peak_activation_bytes() const {
  std::vector<int> shape = input_shape_;
  std::size_t elems = static_cast<std::size_t>(prod(shape));
  std::size_t peak = elems;
  for (const QuantOp& op : ops_) {
    std::size_t out_elems = elems;
    switch (op.kind) {
      case QuantOp::Kind::Conv2D: {
        const int oh = shape[1] + 2 * op.padding - op.kernel + 1;
        const int ow = shape[2] + 2 * op.padding - op.kernel + 1;
        shape = {op.out_channels, oh, ow};
        out_elems = static_cast<std::size_t>(prod(shape));
        break;
      }
      case QuantOp::Kind::MaxPool2D: {
        shape = {shape[0], shape[1] / op.pool_k, shape[2] / op.pool_k};
        out_elems = static_cast<std::size_t>(prod(shape));
        break;
      }
      case QuantOp::Kind::Flatten:
        shape = {static_cast<int>(elems)};
        break;
      case QuantOp::Kind::Relu:
        break;
      case QuantOp::Kind::Dense:
        shape = {op.out_features};
        out_elems = static_cast<std::size_t>(op.out_features);
        break;
    }
    peak = std::max(peak, elems + out_elems);  // in + out live concurrently
    elems = out_elems;
  }
  return peak;
}

QuantizedNetwork load_quantized_detail(std::vector<QuantOp> ops,
                                       std::vector<int> input_shape,
                                       float input_scale) {
  QuantizedNetwork q;
  q.ops_ = std::move(ops);
  q.input_shape_ = std::move(input_shape);
  q.input_scale_ = input_scale;
  return q;
}

}  // namespace zeiot::ml
