// Sequential network container: composes layers, exposes the parameter list
// for optimizers, and reports per-layer shapes for the MicroDeep
// unit-assignment machinery (which needs to know the geometry of every
// layer to map units onto sensor nodes).
#pragma once

#include <memory>
#include <vector>

#include "ml/layers.hpp"

namespace zeiot::ml {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns a reference for further configuration.  The
  /// layer is bound to this network's workspace arena and thread pool.
  Layer& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Forward pass through all layers.
  Tensor forward(const Tensor& x, bool train);
  /// Backward pass; call with dL/d(output of last layer).
  Tensor backward(const Tensor& grad_out);

  /// All trainable parameters in layer order.
  std::vector<Param*> params();
  /// Zeroes every parameter gradient.
  void zero_grads();
  /// Deep copy (layer clones) for data-parallel replicas.
  Network clone() const;
  /// True when no layer consumes shared RNG state in its training forward
  /// — the precondition for sharding a batch across replicas.
  bool parallel_safe() const;
  /// Copies parameter *values* from `src` (identical architecture
  /// required); gradients are untouched.  Used to resync replicas with the
  /// primary before each sharded batch.
  void copy_param_values_from(Network& src);
  /// Total number of trainable scalars.
  std::size_t num_parameters() const;

  /// Shapes (excluding batch) flowing through the network for a given input
  /// shape — index 0 is the input itself, index i+1 the output of layer i.
  std::vector<std::vector<int>> shape_trace(const std::vector<int>& input) const;

  /// Binds the thread pool the layers' batch-parallel kernels run on
  /// (null = global pool, sized by ZEIOT_THREADS).  Propagates to every
  /// current and future layer.
  void set_pool(par::ThreadPool* pool);
  par::ThreadPool* pool() const { return pool_; }

  /// The scratch arena shared by this network's layers.  Held behind a
  /// unique_ptr so its address survives Network moves (the trainer moves
  /// replica networks into vectors) while layer bindings stay valid.
  kernels::Workspace& workspace() { return *workspace_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<kernels::Workspace> workspace_ =
      std::make_unique<kernels::Workspace>();
  par::ThreadPool* pool_ = nullptr;
};

}  // namespace zeiot::ml
