#include "ml/trainer.hpp"

#include <algorithm>
#include <iostream>
#include <limits>

#include "obs/obs.hpp"
#include "par/parallel.hpp"

namespace zeiot::ml {

namespace {

/// Correct predictions of `net` over samples [lo, hi) of `data`, evaluated
/// in fixed 64-sample batches.  Counts are integers, so the total is
/// independent of how the range is split across workers.
std::size_t count_correct(Network& net, const Dataset& data, std::size_t lo,
                          std::size_t hi) {
  constexpr std::size_t kEvalBatch = 64;
  std::size_t correct = 0;
  std::vector<std::size_t> idx;
  for (std::size_t start = lo; start < hi; start += kEvalBatch) {
    const std::size_t end = std::min(hi, start + kEvalBatch);
    idx.clear();
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    auto [xb, yb] = data.batch(idx);
    Tensor logits = net.forward(xb, /*train=*/false);
    const int k = logits.dim(1);
    for (int b = 0; b < logits.dim(0); ++b) {
      const float* row = logits.data() + static_cast<std::size_t>(b) * k;
      const int pred =
          static_cast<int>(std::max_element(row, row + k) - row);
      if (pred == yb[static_cast<std::size_t>(b)]) ++correct;
    }
  }
  return correct;
}

/// Correct predictions among the logit rows of one (shard) batch.
std::size_t batch_correct(const Tensor& logits, const std::vector<int>& yb) {
  std::size_t correct = 0;
  const int k = logits.dim(1);
  for (int b = 0; b < logits.dim(0); ++b) {
    const float* row = logits.data() + static_cast<std::size_t>(b) * k;
    const int pred = static_cast<int>(std::max_element(row, row + k) - row);
    if (pred == yb[static_cast<std::size_t>(b)]) ++correct;
  }
  return correct;
}

}  // namespace

Trainer::Trainer(Network& net, Optimizer& opt, Rng rng, par::ThreadPool* pool)
    : net_(net), opt_(opt), rng_(rng), pool_(pool) {}

void Trainer::ensure_replicas(std::size_t count) {
  // Network moves (vector growth) relocate only the layer-pointer table;
  // the Layer objects — and therefore the cached Param* lists — stay put.
  while (replicas_.size() < count) {
    replicas_.push_back(net_.clone());
    replica_params_.push_back(replicas_.back().params());
  }
}

TrainHistory Trainer::fit(const Dataset& train, const Dataset& val,
                          const TrainConfig& cfg) {
  ZEIOT_CHECK_MSG(!train.empty(), "cannot fit on an empty dataset");
  ZEIOT_CHECK_MSG(cfg.epochs > 0 && cfg.batch_size > 0,
                  "epochs and batch_size must be > 0");
  ZEIOT_CHECK_MSG(cfg.shard_grain > 0, "shard_grain must be > 0");
  par::ThreadPool& pool =
      cfg.pool != nullptr ? *cfg.pool
                          : (pool_ != nullptr ? *pool_ : par::global_pool());
  const auto grain = static_cast<std::size_t>(cfg.shard_grain);
  const bool shardable = net_.parallel_safe();

  // Observability: virtual-time spans on the epoch axis + wall-time
  // profiler regions.  Shard spans are recorded on this thread during the
  // shard-order reduction — never from worker bodies — so the span stream
  // is identical at any ZEIOT_THREADS.
  obs::SpanRecorder* const sp =
      (cfg.obs != nullptr && cfg.obs->spans_enabled()) ? &cfg.obs->spans()
                                                       : nullptr;
  obs::ProfilerRegistry* const prof =
      cfg.obs != nullptr ? &cfg.obs->profiler() : nullptr;
  const obs::ProfilerRegistry::RegionId fit_region =
      prof != nullptr ? prof->region("trainer.fit") : 0;
  const obs::ProfilerRegistry::RegionId epoch_region =
      prof != nullptr ? prof->region("trainer.epoch") : 0;
  obs::ScopedTimer fit_timer(prof, fit_region);

  TrainHistory hist;
  auto params = net_.params();
  int since_best = 0;
  double best_train_loss = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(prof, epoch_region);
    const obs::SpanId epoch_span =
        sp != nullptr
            ? sp->open(obs::SpanKind::TrainEpoch, static_cast<double>(epoch),
                       0, 0, static_cast<std::uint32_t>(epoch), 0)
            : 0;
    auto order = rng_.permutation(train.size());
    double loss_sum = 0.0;  // sample-weighted: sum of per-sample losses
    std::size_t correct = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg.batch_size));
      const std::size_t bn = end - start;
      const auto shards = par::make_chunks(bn, grain);
      if (!shardable || shards.size() <= 1) {
        // Serial whole-batch path.  A single-shard batch computes the same
        // bits here as on a replica, so thread count still cannot matter.
        const std::vector<std::size_t> idx(
            order.begin() + static_cast<long>(start),
            order.begin() + static_cast<long>(end));
        auto [xb, yb] = train.batch(idx);
        net_.zero_grads();
        Tensor logits = net_.forward(xb, /*train=*/true);
        const LossResult lr = softmax_cross_entropy(logits, yb);
        loss_sum += lr.loss * static_cast<double>(bn);
        correct += batch_correct(logits, yb);
        net_.backward(lr.grad);
      } else {
        // Data-parallel path: fixed shards, per-shard replicas, gradients
        // reduced into the primary in shard order.
        ensure_replicas(shards.size());
        std::vector<double> shard_loss(shards.size(), 0.0);
        std::vector<std::size_t> shard_correct(shards.size(), 0);
        pool.run(shards.size(), [&](std::size_t s) {
          Network& rep = replicas_[s];
          rep.copy_param_values_from(net_);  // concurrent reads only
          rep.zero_grads();
          const std::vector<std::size_t> idx(
              order.begin() + static_cast<long>(start + shards[s].begin),
              order.begin() + static_cast<long>(start + shards[s].end));
          auto [xb, yb] = train.batch(idx);
          Tensor logits = rep.forward(xb, /*train=*/true);
          LossResult lr = softmax_cross_entropy(logits, yb);
          shard_loss[s] = lr.loss;
          shard_correct[s] = batch_correct(logits, yb);
          // The shard loss gradient is normalized by the shard size;
          // reweight so the summed shard gradients equal the batch-mean
          // gradient: d(mean over batch) = sum_s (n_s / bn) d(mean over s).
          lr.grad.scale_(static_cast<float>(shards[s].size()) /
                         static_cast<float>(bn));
          rep.backward(lr.grad);
        });
        net_.zero_grads();
        // The batch occupies [epoch + start/n, epoch + end/n] on the
        // virtual epoch axis; shard spans tile it evenly.
        const double bt0 = static_cast<double>(epoch) +
                           static_cast<double>(start) /
                               static_cast<double>(order.size());
        const double bt1 = static_cast<double>(epoch) +
                           static_cast<double>(end) /
                               static_cast<double>(order.size());
        const double shard_w =
            (bt1 - bt0) / static_cast<double>(shards.size());
        const auto batch_idx = static_cast<std::uint32_t>(
            start / static_cast<std::size_t>(cfg.batch_size));
        for (std::size_t s = 0; s < shards.size(); ++s) {
          for (std::size_t p = 0; p < params.size(); ++p) {
            params[p]->grad.add_(replica_params_[s][p]->grad);
          }
          loss_sum += shard_loss[s] * static_cast<double>(shards[s].size());
          correct += shard_correct[s];
          if (sp != nullptr) {
            sp->add(obs::SpanKind::TrainShard,
                    bt0 + static_cast<double>(s) * shard_w,
                    bt0 + static_cast<double>(s + 1) * shard_w, epoch_span,
                    0, static_cast<std::uint32_t>(s), batch_idx,
                    shard_loss[s]);
          }
        }
      }
      if (grad_hook_) grad_hook_(params);
      opt_.step(params);
    }
    EpochStats es;
    es.train_loss = loss_sum / static_cast<double>(train.size());
    es.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(train.size());
    es.val_accuracy = val.empty() ? 0.0 : evaluate(val);
    hist.epochs.push_back(es);
    if (sp != nullptr) {
      sp->close(epoch_span, static_cast<double>(epoch + 1), es.train_loss);
    }
    // Early stopping tracks validation accuracy when a validation set is
    // supplied; with none, it falls back to train-loss improvement (a
    // val_accuracy pinned at 0.0 would otherwise never "improve" and
    // patience would always fire after exactly `patience` epochs).
    bool improved;
    if (!val.empty()) {
      improved = es.val_accuracy > hist.best_val_accuracy;
      if (improved) hist.best_val_accuracy = es.val_accuracy;
    } else {
      improved = es.train_loss < best_train_loss;
      if (improved) best_train_loss = es.train_loss;
    }
    since_best = improved ? 0 : since_best + 1;
    if (cfg.verbose) {
      std::cerr << "epoch " << epoch + 1 << "/" << cfg.epochs << " loss="
                << es.train_loss << " train_acc=" << es.train_accuracy
                << " val_acc=" << es.val_accuracy << '\n';
    }
    if (cfg.patience > 0 && since_best >= cfg.patience) break;
  }
  return hist;
}

double Trainer::evaluate(const Dataset& data) {
  if (data.empty()) return 0.0;
  const std::size_t n = data.size();
  // Chunk layout depends only on n: the classic 64-sample eval batches,
  // merged into at most 16 worker chunks so the replica pool stays small.
  const std::size_t grain = std::max<std::size_t>(64, (n + 15) / 16);
  const auto chunks = par::make_chunks(n, grain);
  par::ThreadPool& pool = pool_ != nullptr ? *pool_ : par::global_pool();
  std::size_t correct = 0;
  if (chunks.size() <= 1 || pool.num_threads() <= 1) {
    correct = count_correct(net_, data, 0, n);
  } else {
    ensure_replicas(chunks.size());
    std::vector<std::size_t> per_chunk(chunks.size(), 0);
    pool.run(chunks.size(), [&](std::size_t c) {
      replicas_[c].copy_param_values_from(net_);
      per_chunk[c] =
          count_correct(replicas_[c], data, chunks[c].begin, chunks[c].end);
    });
    for (std::size_t v : per_chunk) correct += v;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

ConfusionMatrix Trainer::confusion(const Dataset& data, int num_classes) {
  ZEIOT_CHECK_MSG(num_classes > 0, "num_classes must be > 0");
  ConfusionMatrix cm(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < data.size(); ++i) {
    cm.add(static_cast<std::size_t>(data.label(i)),
           static_cast<std::size_t>(predict(data.x(i))));
  }
  return cm;
}

int Trainer::predict(const Tensor& x) {
  std::vector<int> shape = x.shape();
  shape.insert(shape.begin(), 1);
  Tensor xb = x.reshape(shape);
  Tensor logits = net_.forward(xb, /*train=*/false);
  return static_cast<int>(logits.argmax());
}

}  // namespace zeiot::ml
