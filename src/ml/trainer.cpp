#include "ml/trainer.hpp"

#include <algorithm>
#include <iostream>

namespace zeiot::ml {

Trainer::Trainer(Network& net, Optimizer& opt, Rng rng)
    : net_(net), opt_(opt), rng_(rng) {}

TrainHistory Trainer::fit(const Dataset& train, const Dataset& val,
                          const TrainConfig& cfg) {
  ZEIOT_CHECK_MSG(!train.empty(), "cannot fit on an empty dataset");
  ZEIOT_CHECK_MSG(cfg.epochs > 0 && cfg.batch_size > 0,
                  "epochs and batch_size must be > 0");
  TrainHistory hist;
  int since_best = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    auto order = rng_.permutation(train.size());
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg.batch_size));
      const std::vector<std::size_t> idx(order.begin() + static_cast<long>(start),
                                         order.begin() + static_cast<long>(end));
      auto [xb, yb] = train.batch(idx);
      net_.zero_grads();
      Tensor logits = net_.forward(xb, /*train=*/true);
      const LossResult lr = softmax_cross_entropy(logits, yb);
      loss_sum += lr.loss;
      ++batches;
      // Batch accuracy bookkeeping.
      const int k = logits.dim(1);
      for (int b = 0; b < logits.dim(0); ++b) {
        const float* row = logits.data() + static_cast<std::size_t>(b) * k;
        const int pred = static_cast<int>(
            std::max_element(row, row + k) - row);
        if (pred == yb[static_cast<std::size_t>(b)]) ++correct;
      }
      net_.backward(lr.grad);
      if (grad_hook_) {
        auto params = net_.params();
        grad_hook_(params);
      }
      opt_.step(net_.params());
    }
    EpochStats es;
    es.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    es.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(train.size());
    es.val_accuracy = val.empty() ? 0.0 : evaluate(val);
    hist.epochs.push_back(es);
    if (es.val_accuracy > hist.best_val_accuracy) {
      hist.best_val_accuracy = es.val_accuracy;
      since_best = 0;
    } else {
      ++since_best;
    }
    if (cfg.verbose) {
      std::cerr << "epoch " << epoch + 1 << "/" << cfg.epochs << " loss="
                << es.train_loss << " train_acc=" << es.train_accuracy
                << " val_acc=" << es.val_accuracy << '\n';
    }
    if (cfg.patience > 0 && since_best >= cfg.patience) break;
  }
  return hist;
}

double Trainer::evaluate(const Dataset& data) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  constexpr std::size_t kEvalBatch = 64;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < data.size(); start += kEvalBatch) {
    const std::size_t end = std::min(data.size(), start + kEvalBatch);
    idx.clear();
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    auto [xb, yb] = data.batch(idx);
    Tensor logits = net_.forward(xb, /*train=*/false);
    const int k = logits.dim(1);
    for (int b = 0; b < logits.dim(0); ++b) {
      const float* row = logits.data() + static_cast<std::size_t>(b) * k;
      const int pred =
          static_cast<int>(std::max_element(row, row + k) - row);
      if (pred == yb[static_cast<std::size_t>(b)]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

ConfusionMatrix Trainer::confusion(const Dataset& data, int num_classes) {
  ZEIOT_CHECK_MSG(num_classes > 0, "num_classes must be > 0");
  ConfusionMatrix cm(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < data.size(); ++i) {
    cm.add(static_cast<std::size_t>(data.label(i)),
           static_cast<std::size_t>(predict(data.x(i))));
  }
  return cm;
}

int Trainer::predict(const Tensor& x) {
  std::vector<int> shape = x.shape();
  shape.insert(shape.begin(), 1);
  Tensor xb = x.reshape(shape);
  Tensor logits = net_.forward(xb, /*train=*/false);
  return static_cast<int>(logits.argmax());
}

}  // namespace zeiot::ml
