#include "fleet/templates.hpp"

#include "common/error.hpp"
#include "datagen/ir_gait.hpp"
#include "datagen/temperature_field.hpp"
#include "par/parallel.hpp"

namespace zeiot::fleet {

const char* template_name(TemplateKind kind) {
  switch (kind) {
    case TemplateKind::LoungeE1: return "lounge_e1";
    case TemplateKind::IrArrayE2: return "ir_array_e2";
    case TemplateKind::BackscatterCellE6: return "backscatter_e6";
  }
  return "unknown";
}

namespace {

// Template seeds are constants deliberately NOT derived from the fleet
// seed: the shared immutable context (weights, topology, sample pool) is
// part of the template's identity, while the fleet seed only steers
// per-deployment randomness.  This keeps deployment results a pure
// function of (fleet_seed, kind, cell_id, parameters).
constexpr std::uint64_t kLoungeNetSeed = 3;
constexpr std::uint64_t kLoungeWsnSeed = 2;
constexpr std::uint64_t kIrNetSeed = 200;

// Substream keys of the per-deployment seed derivation (arbitrary fixed
// tags; changing any is a behavior change for every fleet).
constexpr std::uint64_t kKindKeyBase = 0x5EED0001;
constexpr std::uint64_t kSampleKey = 0xDA7A;
constexpr std::uint64_t kExecKey = 0xE8EC;
constexpr std::uint64_t kCellKey = 0xCE11;

ml::Network lounge_feasible_cnn(Rng& rng) {
  // bench_e1's "feasible parameter set" CNN for the 25x17 grid / 50 nodes.
  ml::Network net;
  net.emplace<ml::Conv2D>(1, 4, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(4 * 8 * 12, 8, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(8, 2, rng);
  return net;
}

ml::Network ir_feasible_cnn(Rng& rng) {
  // bench_e2's "feasible parameter set" CNN for the 10x10 IR array.
  ml::Network net;
  net.emplace<ml::Conv2D>(10, 4, 3, 1, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::MaxPool2D>(2);
  net.emplace<ml::Flatten>();
  net.emplace<ml::Dense>(4 * 5 * 5, 16, rng);
  net.emplace<ml::ReLU>();
  net.emplace<ml::Dense>(16, 2, rng);
  return net;
}

}  // namespace

std::unique_ptr<InferenceTemplate> make_lounge_template() {
  Rng net_rng(kLoungeNetSeed);
  Rng wsn_rng(kLoungeWsnSeed);
  datagen::TemperatureFieldConfig field;
  field.num_samples = 96;  // shared pool; deployments draw a few each
  return std::make_unique<InferenceTemplate>(
      lounge_feasible_cnn(net_rng), std::vector<int>{1, 17, 25},
      microdeep::WsnTopology::jittered_grid(Rect{0.0, 0.0, 50.0, 34.0}, 10, 5,
                                            wsn_rng),
      datagen::generate_temperature_dataset(field));
}

std::unique_ptr<InferenceTemplate> make_ir_array_template() {
  Rng net_rng(kIrNetSeed);
  datagen::IrGaitConfig gait;
  gait.num_streams = 6;
  gait.fall_streams = 3;
  gait.mirror_augment = false;
  return std::make_unique<InferenceTemplate>(
      ir_feasible_cnn(net_rng), std::vector<int>{10, 10, 10},
      microdeep::WsnTopology::grid(Rect{0.0, 0.0, 5.0, 5.0}, 10, 10),
      datagen::generate_ir_dataset(gait));
}

std::uint64_t deployment_seed(std::uint64_t fleet_seed,
                              const DeploymentSpec& spec) {
  Rng base(fleet_seed);
  Rng kind_stream =
      par::substream(base, kKindKeyBase + static_cast<std::uint64_t>(spec.kind));
  Rng cell_stream = par::substream(kind_stream, kCellKey ^ spec.cell_id);
  return cell_stream();
}

ml::Dataset deployment_dataset(const InferenceTemplate& tmpl,
                               const DeploymentSpec& spec,
                               std::uint64_t dep_seed) {
  ZEIOT_CHECK_MSG(tmpl.data.size() > 0, "template sample pool is empty");
  Rng base(dep_seed);
  Rng pick = par::substream(base, kSampleKey);
  ml::Dataset out;
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const auto idx = static_cast<std::size_t>(pick.uniform_int(
        0, static_cast<std::int64_t>(tmpl.data.size()) - 1));
    out.add(tmpl.data.x(idx), tmpl.data.label(idx));
  }
  return out;
}

netexec::NetExecConfig deployment_netexec_config(
    std::uint64_t dep_seed, obs::Observability* obs,
    netexec::CheckpointPolicy checkpoint) {
  netexec::NetExecConfig cfg;
  cfg.channel.loss_per_hop = 0.01;  // benign indoor link, as in bench_e1/e2
  Rng base(dep_seed);
  cfg.seed = par::substream(base, kExecKey)();
  cfg.obs = obs;
  cfg.checkpoint.policy = checkpoint;
  if (checkpoint == netexec::CheckpointPolicy::EnergyAdaptive) {
    // The adaptive policy keys off the capacitor level, so it implies the
    // harvest model with a capacitor comfortably above the reserve.
    cfg.harvest.enabled = true;
    cfg.harvest.initial_j = 0.5e-3;
  }
  return cfg;
}

backscatter::CoexistenceConfig deployment_coexistence_config(
    const DeploymentSpec& spec, std::uint64_t dep_seed) {
  backscatter::CoexistenceConfig cfg;
  cfg.mode = backscatter::MacMode::Proposed;
  cfg.duration_s = spec.horizon_s;
  cfg.wlan_rate_hz = spec.wlan_rate_hz;
  cfg.num_devices = spec.devices;
  cfg.device_period_s = 1.0;
  cfg.seed = dep_seed;
  return cfg;
}

}  // namespace zeiot::fleet
