// Sharded fleet simulator: thousands of independent deployments advanced
// concurrently over zeiot::par with a deterministic aggregation contract.
//
// A "fleet" is a list of DeploymentSpecs (see fleet/templates.hpp) — E1
// lounges, E2 IR arrays, E6 backscatter cells — each simulated in complete
// isolation: its own RNG substream (keyed by fleet seed + identity), its
// own event-driven simulator, its own per-slot obs::Observability.  The
// per-slot contexts are then merged into the fleet-level context in slot
// order, and scalar aggregates are folded sequentially in the same order,
// so the whole FleetResult is bit-identical for any ZEIOT_THREADS.
//
// Conformance properties (pinned by tests/test_fleet.cpp):
//  (1) a 1-deployment fleet reproduces the standalone executor /
//      coexistence simulator bit-for-bit;
//  (2) results and merged metric/trace/span digests are identical at any
//      worker count and across reruns;
//  (3) a deployment's outcome is independent of fleet size and ordering;
//  (4) a fault plan injected into one deployment never perturbs neighbors.
//
// Memory is bounded two ways for million-device runs: deployments are
// processed in fixed "waves" (only wave_size per-slot contexts live at
// once — the wave layout is a pure function of the config, so it cannot
// leak into results), and the per-deployment event queues recycle their
// events through sim::Simulator's freelist arena.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/templates.hpp"
#include "obs/obs.hpp"
#include "par/parallel.hpp"

namespace zeiot::fleet {

struct FleetConfig {
  std::uint64_t seed = 1;
  std::vector<DeploymentSpec> deployments;

  /// Fleet-level sink for merged per-deployment registries and fleet.*
  /// metrics (nullable, library convention).
  obs::Observability* obs = nullptr;

  /// Per-deployment recorder capacities.  span_capacity 0 keeps span
  /// recording disabled (the cheap default for large fleets).
  std::size_t trace_capacity = 512;
  std::size_t span_capacity = 0;

  /// Merge per-deployment metrics registries into `obs` (slot order).
  bool merge_metrics = true;
  /// Also merge per-deployment trace rings and span streams into `obs`.
  /// Off by default: a fleet-level ring holding a blend of thousands of
  /// deployments is rarely useful, and merging is O(events).
  bool merge_records = false;

  /// Record wall-clock gauges (fleet.wall_s / fleet.devices_per_s).
  /// Wall time is host noise, so the byte-identity tests keep this off.
  bool record_timing = false;

  /// Deployments simulated per wave; bounds live per-slot contexts.
  std::size_t wave_size = 1024;
};

/// Result of one deployment, in deployment-local terms.  For inference
/// cells (E1/E2) accuracy/latency/energy mean what NetEvalResult means;
/// for backscatter cells accuracy is the tag frame delivery ratio, latency
/// is the mean ready->delivered time, and energy is 0 (zero-energy tags).
struct DeploymentOutcome {
  TemplateKind kind = TemplateKind::BackscatterCellE6;
  std::uint64_t cell_id = 0;
  std::uint32_t devices = 0;
  std::uint64_t work_items = 0;  // inferences run, or tag frames generated
  double accuracy = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double energy_per_item_j = 0.0;
  std::uint64_t frames_lost = 0;  // abandoned (E1/E2) or expired+collided+faulted (E6)
  std::uint64_t frames_delivered = 0;  // E6 only: tag frames delivered
  /// Per-inference latencies in sample order (inference cells only) — the
  /// raw population the fleet-level percentiles are computed from.
  std::vector<double> latencies_s;
  std::uint64_t trace_digest = 0;
  std::uint64_t span_digest = 0;
  /// FNV-1a over every field above: the deployment's behavioral identity.
  /// Equal digests <=> bitwise-equal outcomes, which is how the
  /// conformance suite states fleet-size independence and fault isolation.
  std::uint64_t digest = 0;
};

/// Fleet-level aggregate.  Per-deployment columns are stored SoA in slot
/// order (== FleetConfig::deployments order); scalar aggregates are folded
/// sequentially in the same order.
struct FleetResult {
  // Per-deployment columns, one row per spec, slot order.
  std::vector<std::uint8_t> kind;
  std::vector<std::uint64_t> cell_id;
  std::vector<std::uint32_t> devices;
  std::vector<std::uint64_t> work_items;
  std::vector<double> accuracy;
  std::vector<double> p50_latency_s;
  std::vector<double> p99_latency_s;
  std::vector<double> energy_per_item_j;
  std::vector<std::uint64_t> digest;

  // Fleet aggregates.
  std::uint64_t total_devices = 0;
  std::uint64_t inference_count = 0;  // inferences across E1/E2 cells
  double fleet_accuracy = 0.0;        // inference-weighted mean
  /// Exact percentiles over the concatenated per-inference latency
  /// population (netexec's sorted llround(q*(n-1)) convention) — not an
  /// approximation from per-deployment summaries.
  double fleet_p50_latency_s = 0.0;
  double fleet_p99_latency_s = 0.0;
  double energy_per_inference_j = 0.0;
  std::uint64_t frames_lost = 0;
  std::uint64_t e6_cells = 0;
  std::uint64_t e6_frames_generated = 0;
  std::uint64_t e6_frames_delivered = 0;
  double e6_delivery_ratio = 0.0;

  // Filled only when FleetConfig::record_timing is set.
  double wall_s = 0.0;
  double devices_per_s = 0.0;
};

class FleetSimulator {
 public:
  /// Builds the shared immutable templates the configured deployments
  /// need (each kind once, fixed seeds) on the calling thread.
  explicit FleetSimulator(FleetConfig cfg);

  /// Simulates every deployment (chunked over `pool`, global pool when
  /// null) and aggregates in slot order.  Emits fleet.* gauges/counters
  /// and a fleet.latency_s histogram into cfg.obs when present.
  FleetResult run(par::ThreadPool* pool = nullptr);

  /// Simulates one deployment into `dep_obs` (nullable).  This is the
  /// exact function the fleet applies per slot — public so conformance
  /// tests can reconstruct any deployment standalone.  `pool` is handed
  /// to the nested netexec evaluation; inside a fleet region it must be
  /// the fleet's own pool so the nested run inlines (reentrant-region
  /// rule) instead of cross-calling another pool.  Results never depend
  /// on it (determinism contract).
  DeploymentOutcome run_deployment(const DeploymentSpec& spec,
                                   obs::Observability* dep_obs,
                                   par::ThreadPool* pool = nullptr);

  const FleetConfig& config() const { return cfg_; }

 private:
  // Non-const because NetworkExecutor takes ml::Network by mutable
  // reference; the executor only ever reads it (evaluate() is already
  // thread-parallel over one shared network).
  InferenceTemplate& require_template(TemplateKind kind);
  DeploymentOutcome run_inference_cell(const DeploymentSpec& spec,
                                       std::uint64_t dep_seed,
                                       obs::Observability* dep_obs,
                                       par::ThreadPool* pool);
  DeploymentOutcome run_backscatter_cell(const DeploymentSpec& spec,
                                         std::uint64_t dep_seed,
                                         obs::Observability* dep_obs);

  FleetConfig cfg_;
  std::unique_ptr<InferenceTemplate> lounge_;
  std::unique_ptr<InferenceTemplate> ir_array_;
};

}  // namespace zeiot::fleet
