#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace zeiot::fleet {

namespace {

/// FNV-1a over 64-bit words, byte by byte (same scheme as the trace and
/// span digests, so all three compose into one behavioral identity).
class Fnv {
 public:
  void mix(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (word >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix_bits(double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    mix(u);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// netexec's percentile convention (common/stats nearest_rank_quantile),
/// shared so the 1-deployment fleet matches NetEvalResult bit-for-bit and
/// fleet-level percentiles stay on the same definition.  Empty populations
/// (every inference shed or terminated) aggregate to a defined zero.
double pct(std::vector<double> v, double q) {
  return nearest_rank_quantile(std::move(v), q);
}

void seal_digest(DeploymentOutcome& out) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(out.kind));
  f.mix(out.cell_id);
  f.mix(out.devices);
  f.mix(out.work_items);
  f.mix_bits(out.accuracy);
  f.mix_bits(out.p50_latency_s);
  f.mix_bits(out.p99_latency_s);
  f.mix_bits(out.energy_per_item_j);
  f.mix(out.frames_lost);
  f.mix(out.frames_delivered);
  for (const double lat : out.latencies_s) f.mix_bits(lat);
  f.mix(out.trace_digest);
  f.mix(out.span_digest);
  out.digest = f.value();
}

void capture_record_digests(const obs::Observability* dep_obs,
                            DeploymentOutcome& out) {
  if (dep_obs == nullptr) return;
  out.trace_digest = dep_obs->trace().digest();
  if (dep_obs->spans_enabled()) out.span_digest = dep_obs->spans().digest();
}

}  // namespace

FleetSimulator::FleetSimulator(FleetConfig cfg) : cfg_(std::move(cfg)) {
  // Shared immutable templates are built once, eagerly, on this thread —
  // the parallel region below then only ever reads them.
  for (const DeploymentSpec& spec : cfg_.deployments) {
    if (spec.kind == TemplateKind::LoungeE1 && lounge_ == nullptr) {
      lounge_ = make_lounge_template();
    } else if (spec.kind == TemplateKind::IrArrayE2 && ir_array_ == nullptr) {
      ir_array_ = make_ir_array_template();
    }
  }
}

InferenceTemplate& FleetSimulator::require_template(TemplateKind kind) {
  InferenceTemplate* tmpl =
      kind == TemplateKind::LoungeE1 ? lounge_.get() : ir_array_.get();
  ZEIOT_CHECK_MSG(tmpl != nullptr,
                  "no template built for kind " << template_name(kind)
                                                << " (spec not in config?)");
  return *tmpl;
}

DeploymentOutcome FleetSimulator::run_deployment(const DeploymentSpec& spec,
                                                 obs::Observability* dep_obs,
                                                 par::ThreadPool* pool) {
  const std::uint64_t dep_seed = deployment_seed(cfg_.seed, spec);
  if (spec.kind == TemplateKind::BackscatterCellE6) {
    return run_backscatter_cell(spec, dep_seed, dep_obs);
  }
  return run_inference_cell(spec, dep_seed, dep_obs, pool);
}

DeploymentOutcome FleetSimulator::run_inference_cell(
    const DeploymentSpec& spec, std::uint64_t dep_seed,
    obs::Observability* dep_obs, par::ThreadPool* pool) {
  ZEIOT_CHECK_MSG(spec.samples > 0, "inference cell needs samples > 0");
  InferenceTemplate& tmpl = require_template(spec.kind);
  const ml::Dataset data = deployment_dataset(tmpl, spec, dep_seed);

  DeploymentOutcome out;
  out.kind = spec.kind;
  out.cell_id = spec.cell_id;
  out.devices = tmpl.devices;
  out.work_items = spec.samples;

  netexec::NetExecConfig ncfg =
      deployment_netexec_config(dep_seed, dep_obs, spec.checkpoint);
  if (!spec.fault.has_value()) {
    netexec::NetworkExecutor exec(tmpl.net, tmpl.graph, tmpl.assignment,
                                  tmpl.wsn, ncfg);
    const netexec::NetEvalResult ev = exec.evaluate(data, pool);
    out.accuracy = ev.accuracy;
    out.p50_latency_s = ev.p50_latency_s;
    out.p99_latency_s = ev.p99_latency_s;
    out.energy_per_item_j = ev.mean_energy_j;
    out.frames_lost = ev.frames_lost;
    out.latencies_s = ev.latencies_s;
  } else {
    // evaluate() forbids fault injection (the injector RNG is call-order
    // coupled), so a faulted cell replays its samples through the
    // sequential run() loop — still fully deterministic, because the
    // injector is rebuilt from the deployment-local plan every time.
    fault::FaultInjector inj(fault::generate_plan(*spec.fault));
    if (dep_obs != nullptr) inj.set_observability(dep_obs);
    ncfg.fault = &inj;
    netexec::NetworkExecutor exec(tmpl.net, tmpl.graph, tmpl.assignment,
                                  tmpl.wsn, ncfg);
    std::size_t correct = 0;
    double energy = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const netexec::NetInferenceResult r = exec.run(data.x(i));
      if (static_cast<int>(r.output.argmax()) == data.label(i)) ++correct;
      out.latencies_s.push_back(r.latency_s);
      out.frames_lost += r.frames_lost;
      energy += r.energy_j;
    }
    out.accuracy =
        static_cast<double>(correct) / static_cast<double>(data.size());
    out.p50_latency_s = pct(out.latencies_s, 0.50);
    out.p99_latency_s = pct(out.latencies_s, 0.99);
    out.energy_per_item_j = energy / static_cast<double>(data.size());
  }
  capture_record_digests(dep_obs, out);
  seal_digest(out);
  return out;
}

DeploymentOutcome FleetSimulator::run_backscatter_cell(
    const DeploymentSpec& spec, std::uint64_t dep_seed,
    obs::Observability* dep_obs) {
  const backscatter::CoexistenceConfig ccfg =
      deployment_coexistence_config(spec, dep_seed);
  std::unique_ptr<fault::FaultInjector> inj;
  if (spec.fault.has_value()) {
    inj = std::make_unique<fault::FaultInjector>(
        fault::generate_plan(*spec.fault));
    if (dep_obs != nullptr) inj->set_observability(dep_obs);
  }
  backscatter::CoexistenceSimulator sim(ccfg);
  sim.set_observability(dep_obs);
  if (inj != nullptr) sim.set_fault_injector(inj.get());
  const backscatter::CoexistenceMetrics m = sim.run();

  DeploymentOutcome out;
  out.kind = spec.kind;
  out.cell_id = spec.cell_id;
  out.devices = static_cast<std::uint32_t>(spec.devices);
  out.work_items = m.frames_generated;
  // Backscatter cells map onto the shared columns as documented on
  // DeploymentOutcome: delivery ratio for accuracy, mean frame latency for
  // both percentiles, zero energy (the tags are zero-energy by design).
  out.accuracy = m.delivery_ratio();
  out.p50_latency_s = m.mean_latency_s;
  out.p99_latency_s = m.mean_latency_s;
  out.energy_per_item_j = 0.0;
  out.frames_lost = static_cast<std::uint64_t>(m.frames_expired) +
                    m.frames_collided + m.frames_faulted;
  out.frames_delivered = m.frames_delivered;
  capture_record_digests(dep_obs, out);
  seal_digest(out);
  return out;
}

FleetResult FleetSimulator::run(par::ThreadPool* pool) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = cfg_.deployments.size();
  ZEIOT_CHECK_MSG(n > 0, "fleet has no deployments");
  ZEIOT_CHECK_MSG(cfg_.wave_size > 0, "wave_size must be > 0");

  FleetResult res;
  res.kind.resize(n);
  res.cell_id.resize(n);
  res.devices.resize(n);
  res.work_items.resize(n);
  res.accuracy.resize(n);
  res.p50_latency_s.resize(n);
  res.p99_latency_s.resize(n);
  res.energy_per_item_j.resize(n);
  res.digest.resize(n);

  // Slot-order concatenation of every inference latency in the fleet —
  // the population behind the exact fleet-level percentiles.
  std::vector<double> all_latencies;
  double weighted_accuracy = 0.0;
  double total_energy = 0.0;

  // Waves bound live per-slot contexts to wave_size.  The wave layout is
  // a pure function of (n, wave_size): results cannot depend on it beyond
  // peak memory, and the sequential merge below still runs in global slot
  // order because waves are processed in order.
  for (std::size_t wave_begin = 0; wave_begin < n;
       wave_begin += cfg_.wave_size) {
    const std::size_t wave_end = std::min(n, wave_begin + cfg_.wave_size);
    const std::size_t wave_n = wave_end - wave_begin;
    std::vector<std::unique_ptr<obs::Observability>> slots(wave_n);
    std::vector<DeploymentOutcome> outcomes(wave_n);

    par::parallel_for(
        wave_n,
        [&](std::size_t i) {
          if (cfg_.obs != nullptr) {
            slots[i] = std::make_unique<obs::Observability>(
                cfg_.trace_capacity, 0);
            if (cfg_.span_capacity > 0) {
              slots[i]->enable_spans(cfg_.span_capacity);
            }
          }
          outcomes[i] = run_deployment(cfg_.deployments[wave_begin + i],
                                       slots[i].get(), pool);
        },
        pool);

    // Sequential slot-order fold: registries, SoA rows, and the scalar
    // aggregates all see deployments in the same fixed order regardless
    // of the worker count.
    for (std::size_t i = 0; i < wave_n; ++i) {
      const std::size_t g = wave_begin + i;
      DeploymentOutcome& out = outcomes[i];
      if (cfg_.obs != nullptr && slots[i] != nullptr) {
        if (cfg_.merge_metrics) cfg_.obs->metrics().merge(slots[i]->metrics());
        if (cfg_.merge_records) {
          cfg_.obs->trace().merge(slots[i]->trace());
          if (cfg_.obs->spans_enabled() && slots[i]->spans_enabled()) {
            cfg_.obs->spans().merge(slots[i]->spans());
          }
        }
      }
      res.kind[g] = static_cast<std::uint8_t>(out.kind);
      res.cell_id[g] = out.cell_id;
      res.devices[g] = out.devices;
      res.work_items[g] = out.work_items;
      res.accuracy[g] = out.accuracy;
      res.p50_latency_s[g] = out.p50_latency_s;
      res.p99_latency_s[g] = out.p99_latency_s;
      res.energy_per_item_j[g] = out.energy_per_item_j;
      res.digest[g] = out.digest;

      res.total_devices += out.devices;
      res.frames_lost += out.frames_lost;
      if (out.kind == TemplateKind::BackscatterCellE6) {
        res.e6_cells += 1;
        res.e6_frames_generated += out.work_items;
        res.e6_frames_delivered += out.frames_delivered;
      } else {
        const auto items = static_cast<double>(out.work_items);
        res.inference_count += out.work_items;
        weighted_accuracy += out.accuracy * items;
        total_energy += out.energy_per_item_j * items;
        all_latencies.insert(all_latencies.end(), out.latencies_s.begin(),
                             out.latencies_s.end());
      }
    }
  }

  if (res.inference_count > 0) {
    const auto inf = static_cast<double>(res.inference_count);
    res.fleet_accuracy = weighted_accuracy / inf;
    res.energy_per_inference_j = total_energy / inf;
    res.fleet_p50_latency_s = pct(all_latencies, 0.50);
    res.fleet_p99_latency_s = pct(all_latencies, 0.99);
  }
  if (res.e6_frames_generated > 0) {
    res.e6_delivery_ratio = static_cast<double>(res.e6_frames_delivered) /
                            static_cast<double>(res.e6_frames_generated);
  }

  if (cfg_.record_timing) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    res.wall_s = dt.count();
    res.devices_per_s =
        res.wall_s > 0.0 ? static_cast<double>(res.total_devices) / res.wall_s
                         : 0.0;
  }

  if (cfg_.obs != nullptr) {
    auto& m = cfg_.obs->metrics();
    m.gauge("fleet.deployments").set(static_cast<double>(n));
    m.gauge("fleet.devices").set(static_cast<double>(res.total_devices));
    m.gauge("fleet.inferences").set(static_cast<double>(res.inference_count));
    m.gauge("fleet.accuracy").set(res.fleet_accuracy);
    m.gauge("fleet.p50_latency_s").set(res.fleet_p50_latency_s);
    m.gauge("fleet.p99_latency_s").set(res.fleet_p99_latency_s);
    m.gauge("fleet.energy_per_inference_j").set(res.energy_per_inference_j);
    m.gauge("fleet.e6.cells").set(static_cast<double>(res.e6_cells));
    m.gauge("fleet.e6.delivery_ratio").set(res.e6_delivery_ratio);
    m.counter("fleet.e6.frames_generated")
        .inc(static_cast<double>(res.e6_frames_generated));
    m.counter("fleet.e6.frames_delivered")
        .inc(static_cast<double>(res.e6_frames_delivered));
    m.counter("fleet.frames_lost").inc(static_cast<double>(res.frames_lost));
    auto& lat_hist = m.histogram("fleet.latency_s", 0.0, 2.0, 64);
    for (const double lat : all_latencies) lat_hist.observe(lat);
    if (cfg_.record_timing) {
      m.gauge("fleet.wall_s").set(res.wall_s);
      m.gauge("fleet.devices_per_s").set(res.devices_per_s);
    }
  }
  return res;
}

}  // namespace zeiot::fleet
