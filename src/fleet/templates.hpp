// Deployment templates: the reusable per-deployment construction behind
// the fleet simulator (and the conformance suite's standalone reference).
//
// One city-scale fleet instantiates thousands of independent cells cut
// from three templates of the paper's experiments:
//  * LoungeE1          — the E1 lounge: 50-node jittered-grid WSN running
//                        the feasible temperature CNN over netexec;
//  * IrArrayE2         — the E2 IR sensor array: 100-node grid WSN running
//                        the feasible fall-detection CNN over netexec;
//  * BackscatterCellE6 — one E6 backscatter cell: zero-energy tags and a
//                        WLAN AP coexisting through the proposed MAC.
//
// Everything immutable is built ONCE per template (network weights, unit
// graph, topology, assignment, sample pool — all from fixed seeds) and
// shared read-only by every deployment of that kind; per-deployment state
// is only the executor / coexistence simulator plus its RNG substream.
// The substream convention is the load-bearing determinism contract:
//
//   deployment_seed(fleet_seed, spec) is a pure function of the fleet
//   seed and the spec's identity (kind, cell_id) — never of which other
//   deployments run, their order, or the worker count.
//
// The functions here are deliberately free and pure so the fleet
// conformance tests can reconstruct any single deployment standalone,
// bit-for-bit, without going through FleetSimulator at all.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "backscatter/coexistence.hpp"
#include "fault/injector.hpp"
#include "microdeep/assignment.hpp"
#include "ml/dataset.hpp"
#include "netexec/netexec.hpp"

namespace zeiot::fleet {

enum class TemplateKind : std::uint8_t {
  LoungeE1 = 0,
  IrArrayE2 = 1,
  BackscatterCellE6 = 2,
};

/// Stable lowercase name used in metrics labels and bench tables.
const char* template_name(TemplateKind kind);

/// One deployment of the fleet.  `cell_id` is the deployment's identity:
/// two specs with the same (kind, cell_id, parameters) are the same
/// deployment no matter where they appear in a fleet (or in which fleet).
struct DeploymentSpec {
  TemplateKind kind = TemplateKind::BackscatterCellE6;
  std::uint64_t cell_id = 0;

  // Inference cells (LoungeE1 / IrArrayE2): inferences per run, drawn from
  // the template's shared sample pool by the deployment substream.
  std::size_t samples = 2;

  // Backscatter cells (BackscatterCellE6): zero-energy tags, horizon, and
  // offered WLAN load of this cell.
  std::size_t devices = 8;
  double horizon_s = 1.0;
  double wlan_rate_hz = 50.0;

  /// Optional deployment-local fault plan (replayable from its own seed).
  /// Faults injected here must never perturb any other deployment — the
  /// isolation property the fleet conformance suite pins.
  std::optional<fault::FaultSpec> fault;

  /// NVM checkpoint policy of the cell's executor (inference cells only).
  /// None preserves the classic volatile executor bit-for-bit; any other
  /// policy makes brownout faults suspend/resume instead of being ignored.
  netexec::CheckpointPolicy checkpoint = netexec::CheckpointPolicy::None;
};

/// Immutable shared context of one inference template (E1 / E2).
/// Members are constructed in place (Assignment keeps a pointer into
/// `graph`), so templates live behind a stable address — the fleet holds
/// them in unique_ptrs and never moves them.
struct InferenceTemplate {
  InferenceTemplate(ml::Network n, std::vector<int> s,
                    microdeep::WsnTopology w, ml::Dataset d)
      : net(std::move(n)),
        shape(std::move(s)),
        wsn(std::move(w)),
        graph(microdeep::UnitGraph::build(net, shape)),
        assignment(microdeep::assign_balanced_heuristic(graph, wsn)),
        data(std::move(d)),
        devices(static_cast<std::uint32_t>(wsn.num_nodes())) {}
  InferenceTemplate(const InferenceTemplate&) = delete;
  InferenceTemplate& operator=(const InferenceTemplate&) = delete;

  ml::Network net;  // untrained feasible CNN, fixed-seed weights
  std::vector<int> shape;
  microdeep::WsnTopology wsn;
  microdeep::UnitGraph graph;
  microdeep::Assignment assignment;
  ml::Dataset data;  // shared synthetic sample pool (fixed-seed datagen)
  std::uint32_t devices = 0;  // WSN nodes simulated per deployment
};

/// E1 lounge template: 17x25 temperature grid, 50-node jittered-grid WSN,
/// feasible CNN, balanced-heuristic assignment (bench_e1's MicroDeep row,
/// minus the training).
std::unique_ptr<InferenceTemplate> make_lounge_template();

/// E2 IR-array template: 10-channel 10x10 windows, 100-node grid WSN,
/// feasible CNN, balanced-heuristic assignment (bench_e2's variant (b)).
std::unique_ptr<InferenceTemplate> make_ir_array_template();

/// Per-deployment seed: substream keyed by (kind, cell_id) split off the
/// fleet seed.  Pure function; see the header comment.
std::uint64_t deployment_seed(std::uint64_t fleet_seed,
                              const DeploymentSpec& spec);

/// The deployment's inference workload: `spec.samples` draws (with
/// replacement) from the template pool, chosen by the deployment seed.
ml::Dataset deployment_dataset(const InferenceTemplate& tmpl,
                               const DeploymentSpec& spec,
                               std::uint64_t dep_seed);

/// Network-in-the-loop configuration of one inference deployment: 1%
/// per-hop loss (the benign indoor link of bench_e1/e2), loss substreams
/// keyed by `dep_seed`.  A non-None `checkpoint` enables NVM checkpointing
/// with the default commit costs (energy::CheckpointCosts).
netexec::NetExecConfig deployment_netexec_config(
    std::uint64_t dep_seed, obs::Observability* obs,
    netexec::CheckpointPolicy checkpoint = netexec::CheckpointPolicy::None);

/// Coexistence configuration of one backscatter cell (proposed MAC).
backscatter::CoexistenceConfig deployment_coexistence_config(
    const DeploymentSpec& spec, std::uint64_t dep_seed);

}  // namespace zeiot::fleet
