#include "backscatter/bmac.hpp"

#include <algorithm>
#include <limits>

namespace zeiot::backscatter {

void CycleScheduler::register_device(const CycleRegistration& reg) {
  ZEIOT_CHECK_MSG(reg.period_s > 0.0, "cycle period must be > 0");
  ZEIOT_CHECK_MSG(reg.frame_bytes > 0, "frame size must be > 0");
  for (const auto& r : registry_) {
    ZEIOT_CHECK_MSG(r.device != reg.device,
                    "device " << reg.device << " registered twice");
  }
  registry_.push_back(reg);
}

const CycleRegistration& CycleScheduler::registration(DeviceId id) const {
  for (const auto& r : registry_) {
    if (r.device == id) return r;
  }
  throw Error("unknown device id " + std::to_string(id));
}

void CycleScheduler::enqueue(PendingFrame frame) {
  ZEIOT_CHECK_MSG(frame.deadline > frame.ready_at,
                  "frame deadline must follow ready time");
  const auto pos = std::upper_bound(
      pending_.begin(), pending_.end(), frame,
      [](const PendingFrame& a, const PendingFrame& b) {
        return a.deadline < b.deadline;
      });
  pending_.insert(pos, frame);
}

std::optional<PendingFrame> CycleScheduler::pop_earliest_deadline(
    double now, double tx_time_s, std::size_t& expired) {
  while (!pending_.empty()) {
    const PendingFrame f = pending_.front();
    if (f.deadline < now + tx_time_s) {
      // Cannot complete before the deadline any more.
      pending_.erase(pending_.begin());
      ++expired;
      continue;
    }
    pending_.erase(pending_.begin());
    return f;
  }
  return std::nullopt;
}

std::size_t CycleScheduler::drop_expired(double now) {
  std::size_t dropped = 0;
  while (!pending_.empty() && pending_.front().deadline < now) {
    pending_.erase(pending_.begin());
    ++dropped;
  }
  return dropped;
}

double CycleScheduler::next_deadline() const {
  return pending_.empty() ? std::numeric_limits<double>::infinity()
                          : pending_.front().deadline;
}

}  // namespace zeiot::backscatter
