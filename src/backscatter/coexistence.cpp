#include "backscatter/coexistence.hpp"

#include <algorithm>
#include <cmath>

namespace zeiot::backscatter {

CoexistenceSimulator::CoexistenceSimulator(CoexistenceConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  ZEIOT_CHECK_MSG(cfg.duration_s > 0.0, "duration must be > 0");
  ZEIOT_CHECK_MSG(cfg.wlan_rate_hz >= 0.0, "wlan rate must be >= 0");
  ZEIOT_CHECK_MSG(cfg.num_devices > 0, "need at least one device");
  ZEIOT_CHECK_MSG(cfg.device_period_s > 0.0, "device period must be > 0");
  ZEIOT_CHECK_MSG(cfg.naive_persistence > 0.0 && cfg.naive_persistence <= 1.0,
                  "persistence in (0,1]");
  for (std::size_t i = 0; i < cfg.num_devices; ++i) {
    DeviceState d;
    d.id = static_cast<DeviceId>(i);
    d.period_s = cfg.device_period_s;
    d.frame_bytes = cfg.device_frame_bytes;
    devices_.push_back(d);
    scheduler_.register_device(
        {d.id, d.period_s, d.frame_bytes});
  }
}

double CoexistenceSimulator::backscatter_airtime(std::size_t bytes) const {
  return bs_phy_.frame_airtime_s(bytes);
}

void CoexistenceSimulator::set_fault_injector(fault::FaultInjector* fault) {
  fault_ = fault;
  fault_driver_.reset();
  if (fault_ != nullptr) {
    fault_driver_ = std::make_unique<fault::FaultDriver>(sim_, *fault_);
  }
}

bool CoexistenceSimulator::frame_faulted(double t, DeviceId dev) {
  if (fault_ == nullptr) return false;
  if (fault_->should_drop(t, dev, fault::kInfrastructure) ||
      fault_->should_corrupt(t, dev, fault::kInfrastructure)) {
    ++metrics_.frames_faulted;
    return true;
  }
  return false;
}

void CoexistenceSimulator::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ != nullptr) {
    probe_ = std::make_unique<obs::SimulatorProbe>(*obs_);
    sim_.set_observer(probe_.get());
  } else {
    sim_.set_observer(nullptr);
    probe_.reset();
  }
}

void CoexistenceSimulator::schedule_wlan_arrival() {
  if (cfg_.wlan_rate_hz <= 0.0) return;
  const double dt = rng_.exponential(cfg_.wlan_rate_hz);
  const double t = sim_.now() + dt;
  if (t > cfg_.duration_s) return;
  sim_.schedule(dt, [this] {
    ++metrics_.wlan_offered;
    wlan_queue_.emplace(cfg_.wlan_payload_bytes, false);
    try_start_wlan();
    schedule_wlan_arrival();
  });
}

void CoexistenceSimulator::schedule_device_cycle(std::size_t dev_index,
                                                 double at) {
  if (at > cfg_.duration_s) return;
  sim_.schedule_at(at, [this, dev_index] {
    DeviceState& d = devices_[dev_index];
    const double now = sim_.now();
    if (fault_ != nullptr && fault_->node_dead(now, d.id)) {
      // A dead tag neither harvests nor registers this cycle.
      ++metrics_.frames_suppressed;
      schedule_device_cycle(dev_index, now + d.period_s);
      return;
    }
    ++metrics_.frames_generated;
    if (cfg_.mode == MacMode::Proposed) {
      scheduler_.enqueue({d.id, now, now + d.period_s});
      // Deadline guard: if WLAN traffic does not offer a carrier in time,
      // the AP injects a dummy carrier shortly before the deadline.
      const double tb = backscatter_airtime(d.frame_bytes);
      const double guard_at = std::max(now, now + d.period_s - 2.0 * tb);
      sim_.schedule_at(guard_at, [this] { proposed_check_deadlines(); });
    } else {
      if (d.has_frame) {
        // Previous frame missed its cycle.
        ++metrics_.frames_expired;
      }
      d.has_frame = true;
      d.ready_at = now;
      d.deadline = now + d.period_s;
      d.remaining_airtime_s = backscatter_airtime(d.frame_bytes);
      d.last_carrier_end = -1.0;
    }
    schedule_device_cycle(dev_index, now + d.period_s);
  });
}

void CoexistenceSimulator::try_start_wlan() {
  const double now = sim_.now();
  if (now < channel_free_at_ || wlan_queue_.empty()) return;
  auto [bytes, is_retry] = wlan_queue_.front();
  wlan_queue_.pop();
  ++metrics_.wlan_attempts;
  const double airtime = wlan_phy_.exchange_airtime_s(bytes);
  channel_free_at_ = now + airtime;
  channel_.add(now, airtime, 0, "wlan", false);

  bool corrupted;
  if (cfg_.mode == MacMode::Proposed) {
    const bool rode = proposed_on_carrier(now, airtime);
    corrupted = rode && rng_.bernoulli(cfg_.proposed_corruption);
  } else {
    naive_on_carrier(now, airtime);
    corrupted = last_carrier_corrupted_;
  }
  if (fault_ != nullptr && !corrupted &&
      fault_->should_corrupt(now, fault::kInfrastructure,
                             fault::kInfrastructure)) {
    corrupted = true;  // injected interference on the WLAN exchange
  }

  const bool retry = is_retry;
  sim_.schedule_at(channel_free_at_, [this, corrupted, retry, bytes] {
    if (corrupted) {
      ++metrics_.wlan_corrupted;
      if (!retry) {
        wlan_queue_.emplace(bytes, true);  // one retransmission attempt
      }
    } else {
      ++metrics_.wlan_delivered;
    }
    try_start_wlan();
  });
}

bool CoexistenceSimulator::proposed_on_carrier(double start,
                                               double carrier_airtime) {
  std::size_t expired = 0;
  metrics_.frames_expired += scheduler_.drop_expired(start);
  // The AP can extend the carrier with a dummy tail, so a grant only needs
  // the deadline to accommodate the full backscatter frame from now.
  const double tb = backscatter_airtime(cfg_.device_frame_bytes);
  auto f = scheduler_.pop_earliest_deadline(start, tb, expired);
  metrics_.frames_expired += expired;
  if (!f.has_value()) return false;
  channel_.add(start, tb, f->device + 1, "backscatter", false);
  if (obs_ != nullptr) {
    obs_->trace().record(start, obs::TraceType::BackscatterWindowOpen,
                         f->device, 0, tb);
    obs_->trace().record(start + tb, obs::TraceType::BackscatterWindowClose,
                         f->device);
  }
  if (tb > carrier_airtime) {
    // Extend the carrier with a dummy tail so the tag finishes its frame.
    const double extension = tb - carrier_airtime;
    channel_.add(channel_free_at_, extension, 0, "dummy", false);
    if (obs_ != nullptr) {
      obs_->metrics().counter("backscatter.dummy.injections").inc();
      obs_->trace().record(channel_free_at_,
                           obs::TraceType::DummyCarrierInjected, f->device, 0,
                           extension);
    }
    channel_free_at_ += extension;
    dummy_airtime_ += extension;
  }
  if (!rng_.bernoulli(1.0 - cfg_.backscatter_noise_per)) {
    ++metrics_.frames_collided;  // noise loss (counted as link failure)
  } else if (!frame_faulted(start + tb, f->device)) {
    ++metrics_.frames_delivered;
    const double latency = start + tb - f->ready_at;
    latency_sum_ += latency;
    if (obs_ != nullptr) {
      obs_->metrics()
          .histogram("backscatter.latency_s", 0.0, cfg_.device_period_s, 50)
          .observe(latency);
    }
  }
  return true;
}

void CoexistenceSimulator::proposed_check_deadlines() {
  const double now = sim_.now();
  metrics_.frames_expired += scheduler_.drop_expired(now);
  if (!scheduler_.has_pending()) return;
  const double tb = backscatter_airtime(cfg_.device_frame_bytes);
  // Only act when the earliest deadline is actually at risk.
  if (scheduler_.next_deadline() - now > 4.0 * tb) return;
  if (now < channel_free_at_) {
    // Channel busy: re-check as soon as it frees.
    sim_.schedule_at(channel_free_at_, [this] { proposed_check_deadlines(); });
    return;
  }
  std::size_t expired = 0;
  auto f = scheduler_.pop_earliest_deadline(now, tb, expired);
  metrics_.frames_expired += expired;
  if (!f.has_value()) return;
  // Dedicated dummy carrier for this frame.
  channel_free_at_ = now + tb;
  channel_.add(now, tb, 0, "dummy", false);
  dummy_airtime_ += tb;
  channel_.add(now, tb, f->device + 1, "backscatter", false);
  if (obs_ != nullptr) {
    obs_->metrics().counter("backscatter.dummy.injections").inc();
    obs_->trace().record(now, obs::TraceType::DummyCarrierInjected, f->device,
                         0, tb);
    obs_->trace().record(now, obs::TraceType::BackscatterWindowOpen,
                         f->device, 0, tb);
    obs_->trace().record(channel_free_at_,
                         obs::TraceType::BackscatterWindowClose, f->device);
  }
  const PendingFrame frame = *f;
  sim_.schedule_at(channel_free_at_, [this, frame, tb] {
    if (!rng_.bernoulli(1.0 - cfg_.backscatter_noise_per)) {
      ++metrics_.frames_collided;
    } else if (!frame_faulted(sim_.now(), frame.device)) {
      ++metrics_.frames_delivered;
      const double latency = sim_.now() - frame.ready_at;
      latency_sum_ += latency;
      if (obs_ != nullptr) {
        obs_->metrics()
            .histogram("backscatter.latency_s", 0.0, cfg_.device_period_s, 50)
            .observe(latency);
      }
    }
    try_start_wlan();
  });
}

void CoexistenceSimulator::naive_on_carrier(double start,
                                            double carrier_airtime) {
  last_carrier_corrupted_ = false;
  std::vector<std::size_t> riders;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    DeviceState& d = devices_[i];
    if (!d.has_frame) continue;
    if (start >= d.deadline) {
      d.has_frame = false;
      ++metrics_.frames_expired;
      continue;
    }
    if (rng_.bernoulli(cfg_.naive_persistence)) riders.push_back(i);
  }
  if (riders.empty()) return;
  // Tag modulation appears as interference to the WLAN receiver.
  const double corrupt_p =
      1.0 - std::pow(1.0 - cfg_.naive_corruption_per_tag,
                     static_cast<double>(riders.size()));
  last_carrier_corrupted_ = rng_.bernoulli(corrupt_p);

  if (riders.size() > 1) {
    // Tags cannot hear each other: simultaneous backscatter collides and
    // the in-flight frames must start over.
    if (obs_ != nullptr) {
      obs_->trace().record(start, obs::TraceType::PacketCollision,
                           static_cast<std::uint32_t>(riders.size()));
    }
    for (std::size_t i : riders) {
      DeviceState& d = devices_[i];
      d.remaining_airtime_s = backscatter_airtime(d.frame_bytes);
      d.last_carrier_end = start + carrier_airtime;
      ++metrics_.frames_collided;
    }
    return;
  }

  DeviceState& d = devices_[riders.front()];
  // A long carrier gap loses the partial frame.
  if (d.last_carrier_end >= 0.0 &&
      start - d.last_carrier_end > cfg_.naive_gap_tolerance_s &&
      d.remaining_airtime_s < backscatter_airtime(d.frame_bytes)) {
    d.remaining_airtime_s = backscatter_airtime(d.frame_bytes);
  }
  channel_.add(start, carrier_airtime, d.id + 1, "backscatter", false);
  if (obs_ != nullptr) {
    obs_->trace().record(start, obs::TraceType::BackscatterWindowOpen, d.id, 0,
                         carrier_airtime);
    obs_->trace().record(start + carrier_airtime,
                         obs::TraceType::BackscatterWindowClose, d.id);
  }
  d.remaining_airtime_s -= carrier_airtime;
  d.last_carrier_end = start + carrier_airtime;
  if (d.remaining_airtime_s <= 0.0) {
    const double finish = start + carrier_airtime + d.remaining_airtime_s;
    d.has_frame = false;
    if (finish > d.deadline) {
      ++metrics_.frames_expired;
    } else if (!rng_.bernoulli(1.0 - cfg_.backscatter_noise_per)) {
      ++metrics_.frames_collided;  // noise loss
    } else if (!frame_faulted(finish, d.id)) {
      ++metrics_.frames_delivered;
      const double latency = finish - d.ready_at;
      latency_sum_ += latency;
      if (obs_ != nullptr) {
        obs_->metrics()
            .histogram("backscatter.latency_s", 0.0, cfg_.device_period_s, 50)
            .observe(latency);
      }
    }
  }
}

CoexistenceMetrics CoexistenceSimulator::run() {
  if (fault_driver_ != nullptr) fault_driver_->arm();
  schedule_wlan_arrival();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    // Stagger cycle phases uniformly.
    schedule_device_cycle(i, rng_.uniform(0.0, devices_[i].period_s));
  }
  sim_.run();

  if (metrics_.frames_delivered > 0) {
    metrics_.mean_latency_s =
        latency_sum_ / static_cast<double>(metrics_.frames_delivered);
  }
  metrics_.wlan_goodput_bps =
      static_cast<double>(metrics_.wlan_delivered) *
      static_cast<double>(cfg_.wlan_payload_bytes) * 8.0 / cfg_.duration_s;
  metrics_.utilization = channel_.utilization(cfg_.duration_s);
  metrics_.dummy_airtime_fraction = dummy_airtime_ / cfg_.duration_s;

  if (obs_ != nullptr) {
    const obs::Labels mode{
        {"mac", cfg_.mode == MacMode::Proposed ? "proposed" : "naive"}};
    auto& m = obs_->metrics();
    m.counter("backscatter.frames.generated", mode)
        .inc(static_cast<double>(metrics_.frames_generated));
    m.counter("backscatter.frames.delivered", mode)
        .inc(static_cast<double>(metrics_.frames_delivered));
    m.counter("backscatter.frames.expired", mode)
        .inc(static_cast<double>(metrics_.frames_expired));
    m.counter("backscatter.frames.collided", mode)
        .inc(static_cast<double>(metrics_.frames_collided));
    m.counter("backscatter.wlan.attempts", mode)
        .inc(static_cast<double>(metrics_.wlan_attempts));
    m.counter("backscatter.wlan.corrupted", mode)
        .inc(static_cast<double>(metrics_.wlan_corrupted));
    if (fault_ != nullptr) {
      m.counter("backscatter.frames.suppressed", mode)
          .inc(static_cast<double>(metrics_.frames_suppressed));
      m.counter("backscatter.frames.faulted", mode)
          .inc(static_cast<double>(metrics_.frames_faulted));
    }
    m.counter("backscatter.dummy.airtime_s").inc(dummy_airtime_);
    m.gauge("backscatter.delivery_ratio", mode)
        .set(metrics_.delivery_ratio());
    m.gauge("backscatter.wlan.error_rate", mode)
        .set(metrics_.wlan_error_rate());
    m.gauge("backscatter.channel.utilization", mode)
        .set(metrics_.utilization);
    m.gauge("backscatter.dummy.airtime_fraction", mode)
        .set(metrics_.dummy_airtime_fraction);
  }
  return metrics_;
}

}  // namespace zeiot::backscatter
