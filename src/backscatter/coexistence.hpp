// Event-driven coexistence simulator: IEEE 802.11 WLAN traffic and ambient
// backscatter IoT devices sharing one channel through a full-duplex AP
// (paper Sec. IV.A, Fig. 4, and the MAC protocol of ref [64]).
//
// Two MAC modes are compared:
//  * Proposed — the cycle-registration MAC: the AP grants exactly one
//    device per carrier opportunity (EDF over registered cycles), rides
//    WLAN packets when available, extends/injects dummy carrier packets
//    when WLAN traffic alone cannot meet a deadline.  Full-duplex
//    self-interference cancellation keeps WLAN corruption negligible.
//  * Naive — uncoordinated: every device with a pending frame backscatters
//    on any passing WLAN packet with some persistence probability;
//    simultaneous tags collide, modulation corrupts the carrier WLAN
//    packet, and frames needing more airtime than one WLAN packet must
//    catch follow-up packets before a gap timeout.
#pragma once

#include <memory>
#include <queue>

#include "backscatter/bmac.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "mac/channel.hpp"
#include "mac/traffic.hpp"
#include "obs/sim_probe.hpp"
#include "phy/airtime.hpp"
#include "sim/simulator.hpp"

namespace zeiot::backscatter {

enum class MacMode { Proposed, Naive };

struct CoexistenceConfig {
  MacMode mode = MacMode::Proposed;
  double duration_s = 60.0;
  /// Offered WLAN load: Poisson packet arrivals.
  double wlan_rate_hz = 200.0;
  std::size_t wlan_payload_bytes = 1500;
  /// IoT devices: all share this acquisition cycle unless customised via
  /// add_device().
  std::size_t num_devices = 8;
  double device_period_s = 1.0;
  std::size_t device_frame_bytes = 8;
  /// Naive mode: probability a pending device rides a given WLAN packet.
  double naive_persistence = 0.5;
  /// Naive mode: max carrier gap before an in-flight frame aborts (the
  /// receiver's correlator hold-over time).
  double naive_gap_tolerance_s = 25e-3;
  /// Probability one riding tag corrupts the WLAN packet it rides (naive).
  double naive_corruption_per_tag = 0.25;
  /// Residual WLAN corruption under the proposed MAC (full-duplex SIC).
  double proposed_corruption = 0.02;
  /// Noise-floor error probability of a granted backscatter frame.
  double backscatter_noise_per = 0.02;
  std::uint64_t seed = 7;
};

struct CoexistenceMetrics {
  // Backscatter side.
  std::size_t frames_generated = 0;
  std::size_t frames_delivered = 0;
  std::size_t frames_expired = 0;
  std::size_t frames_collided = 0;
  // Injected-fault outcomes (zero without an injector).
  std::size_t frames_suppressed = 0;  // cycles skipped: device was dead
  std::size_t frames_faulted = 0;     // clean deliveries lost to drop/corrupt
  double mean_latency_s = 0.0;  // ready -> delivered, delivered frames only
  // WLAN side.
  std::size_t wlan_offered = 0;    // packet arrivals
  std::size_t wlan_attempts = 0;   // transmissions (arrivals + retries)
  std::size_t wlan_delivered = 0;
  std::size_t wlan_corrupted = 0;
  double wlan_goodput_bps = 0.0;
  // Channel.
  double utilization = 0.0;
  double dummy_airtime_fraction = 0.0;

  double delivery_ratio() const {
    return frames_generated == 0
               ? 0.0
               : static_cast<double>(frames_delivered) /
                     static_cast<double>(frames_generated);
  }
  /// Fraction of WLAN transmission attempts corrupted by tag modulation.
  double wlan_error_rate() const {
    return wlan_attempts == 0 ? 0.0
                              : static_cast<double>(wlan_corrupted) /
                                    static_cast<double>(wlan_attempts);
  }
};

class CoexistenceSimulator {
 public:
  explicit CoexistenceSimulator(CoexistenceConfig cfg);

  /// Installs an observability context (or clears it with nullptr).  The
  /// internal event kernel gets a SimulatorProbe, backscatter scheduling
  /// decisions emit window-open/close and dummy-carrier trace events, and
  /// `run()` publishes the coexistence counters/gauges labeled with the
  /// MAC mode.  Must be called before `run()`.
  void set_observability(obs::Observability* obs);

  /// Installs (or clears) a fault injector.  Dead devices skip their
  /// acquisition cycles (frames_suppressed), successful backscatter
  /// deliveries can be dropped or corrupted in flight (frames_faulted),
  /// and WLAN packets can be corrupted by infrastructure-side windows.
  /// The injector's plan is armed on the event kernel at `run()` so fault
  /// transitions appear in the trace at their exact simulation time.
  /// Must be called before `run()`; the injector must outlive it.
  void set_fault_injector(fault::FaultInjector* fault);

  /// Runs the full scenario and returns the metrics.
  CoexistenceMetrics run();

  /// Read-only view of the medium occupancy log (valid after run()) —
  /// the MAC property tests audit grant exclusivity, carrier coverage,
  /// and dummy/WLAN separation from these intervals.
  const mac::Channel& channel() const { return channel_; }

 private:
  struct DeviceState {
    DeviceId id = 0;
    double period_s = 1.0;
    std::size_t frame_bytes = 8;
    // Naive mode per-frame progress.
    bool has_frame = false;
    double ready_at = 0.0;
    double deadline = 0.0;
    double remaining_airtime_s = 0.0;
    double last_carrier_end = -1.0;
  };

  void schedule_wlan_arrival();
  void schedule_device_cycle(std::size_t dev_index, double at);
  void try_start_wlan();
  /// Returns true if a backscatter grant rode this carrier.
  bool proposed_on_carrier(double start, double carrier_airtime);
  void proposed_check_deadlines();
  void naive_on_carrier(double start, double carrier_airtime);
  double backscatter_airtime(std::size_t bytes) const;
  /// Consults the injector (if any) about an in-flight backscatter frame.
  bool frame_faulted(double t, DeviceId dev);

  CoexistenceConfig cfg_;
  sim::Simulator sim_;
  Rng rng_;
  phy::Dot11Phy wlan_phy_;
  phy::BackscatterPhy bs_phy_;
  mac::Channel channel_;
  CycleScheduler scheduler_;  // proposed mode
  std::vector<DeviceState> devices_;
  // WLAN queue: payload sizes awaiting the channel.
  std::queue<std::pair<std::size_t, bool>> wlan_queue_;  // (bytes, is_retry)
  double channel_free_at_ = 0.0;
  bool last_carrier_corrupted_ = false;
  CoexistenceMetrics metrics_;
  double latency_sum_ = 0.0;
  double dummy_airtime_ = 0.0;
  obs::Observability* obs_ = nullptr;
  std::unique_ptr<obs::SimulatorProbe> probe_;
  fault::FaultInjector* fault_ = nullptr;
  std::unique_ptr<fault::FaultDriver> fault_driver_;
};

}  // namespace zeiot::backscatter
