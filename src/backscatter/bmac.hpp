// Backscatter MAC protocol of ref [64] (paper Sec. IV.A): IoT devices
// register their data-acquisition cycles with the access point; the AP
// schedules which device may backscatter on which carrier packet, injecting
// a dummy carrier packet when WLAN traffic alone cannot meet a device's
// cycle deadline.  Exactly one device is granted per carrier, so granted
// transmissions never collide.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace zeiot::backscatter {

using DeviceId = std::uint32_t;

/// Registration entry: a device's constant communication cycle.
struct CycleRegistration {
  DeviceId device = 0;
  double period_s = 1.0;       // data produced once per period
  std::size_t frame_bytes = 8; // sensor reading size
};

/// A sensor frame awaiting uplink.
struct PendingFrame {
  DeviceId device = 0;
  double ready_at = 0.0;
  double deadline = 0.0;  // start of the next cycle
};

/// AP-side scheduler state for the proposed MAC: earliest-deadline-first
/// over the registered devices' pending frames.
class CycleScheduler {
 public:
  void register_device(const CycleRegistration& reg);

  const std::vector<CycleRegistration>& registrations() const {
    return registry_;
  }
  const CycleRegistration& registration(DeviceId id) const;

  /// Queues a newly produced frame.
  void enqueue(PendingFrame frame);

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }

  /// Pops the pending frame with the earliest deadline that is still
  /// meetable at time `now` given `tx_time_s` of required carrier
  /// (deadline >= now + tx_time_s).  Expired frames encountered on the way
  /// are dropped and counted in `expired`.
  std::optional<PendingFrame> pop_earliest_deadline(double now,
                                                    double tx_time_s,
                                                    std::size_t& expired);

  /// Drops frames whose deadline passed; returns how many were dropped.
  std::size_t drop_expired(double now);

  /// Earliest deadline among pending frames (infinity if none).
  double next_deadline() const;

 private:
  std::vector<CycleRegistration> registry_;
  std::vector<PendingFrame> pending_;  // kept deadline-sorted
};

}  // namespace zeiot::backscatter
