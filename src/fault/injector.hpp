// Runtime side of fault injection: components query a `FaultInjector` at
// their decision points exactly the way they emit into `obs::Observability`
// — through a nullable pointer defaulting to nullptr, so un-faulted runs
// pay one pointer test per site and stay at seed speed.
//
// State queries (node_dead, in_brownout, harvest_scale, message_delay_s)
// are pure functions of the plan and can be asked at any time, in any
// order.  Probabilistic queries (should_drop / should_corrupt) consume the
// injector's own SplitMix-seeded substream in call order; since every
// zeiot simulation is single-threaded and deterministic, a fixed (plan,
// seed) pair reproduces the identical fault realization run after run.
// Every applied fault is counted in the metrics registry and recorded
// through the TraceRecorder, so a failure is replayable from one seed.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace zeiot::fault {

/// Pseudo-target for infrastructure traffic (the WLAN side of the
/// coexistence model) so plans can fault it independently of device ids.
inline constexpr std::uint32_t kInfrastructure = 0xfffffffeu;

class FaultInjector {
 public:
  /// `seed` drives the probabilistic window draws; the plan's digest is
  /// mixed in so distinct plans decorrelate even under the default seed.
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0);

  /// Installs (or clears) the observability context.  Applied faults emit
  ///   fault.injected{type=...}   (counters)
  /// plus one FaultInjected trace event (a = target, b = fault type,
  /// value = magnitude).
  void set_observability(obs::Observability* obs);
  obs::Observability* observability() const { return obs_; }

  const FaultPlan& plan() const { return plan_; }

  // -- State queries (pure w.r.t. the plan) --------------------------------

  /// True when `node` is inside a death..revival span at time `t`.
  bool node_dead(double t, std::uint32_t node) const;

  /// Dead flags for nodes [0, num_nodes) at time `t`.
  std::vector<bool> dead_mask(double t, std::size_t num_nodes) const;

  /// True when `device` sits inside a Brownout window at `t`.
  bool in_brownout(double t, std::uint32_t device) const;

  /// Product is not meaningful for overlapping droughts; the *smallest*
  /// active scale wins (worst case).  1.0 when no drought is active.
  double harvest_scale(double t, std::uint32_t device) const;

  /// Largest active delay among MessageDelay windows matching either
  /// endpoint at `t`; 0 when none.  Records the injection when > 0.
  double message_delay_s(double t, std::uint32_t src, std::uint32_t dst);

  // -- Probabilistic queries (consume the injector RNG in call order) ------

  /// True when an active MessageDrop window matching either endpoint fires
  /// its Bernoulli(magnitude) draw.  No RNG is consumed outside windows.
  bool should_drop(double t, std::uint32_t src, std::uint32_t dst);

  /// Same contract for MessageCorrupt windows.
  bool should_corrupt(double t, std::uint32_t src, std::uint32_t dst);

  // -- Bookkeeping ---------------------------------------------------------

  /// Number of faults of `type` actually applied (dropped messages, delayed
  /// messages...; state queries such as node_dead do not count).
  std::uint64_t injected(FaultType type) const;
  std::uint64_t total_injected() const;

 private:
  /// Largest magnitude among active windows of `type` matching the target
  /// set; nullopt-style: returns false when no window is active.
  bool active_window(double t, FaultType type, std::uint32_t a,
                     std::uint32_t b, double& magnitude) const;
  bool matches(const FaultEvent& e, std::uint32_t a, std::uint32_t b) const;
  void note_injection(double t, FaultType type, std::uint32_t target,
                      double magnitude);

  FaultPlan plan_;
  Rng rng_;
  obs::Observability* obs_ = nullptr;
  std::vector<std::uint64_t> injected_;
};

/// Bridges a plan onto a discrete-event simulator: schedules one kernel
/// event per plan entry inside [0, horizon] so state transitions are traced
/// at their exact simulation time (and so same-seed runs interleave fault
/// events identically with protocol events).  The injector must outlive the
/// simulator run.
class FaultDriver {
 public:
  FaultDriver(sim::Simulator& sim, FaultInjector& injector);

  /// Schedules the plan's events from the simulator's current time onward.
  /// Events in the past (t < sim.now()) are skipped.
  void arm();

 private:
  sim::Simulator& sim_;
  FaultInjector& injector_;
};

}  // namespace zeiot::fault
