// Cross-subsystem invariant checking at simulation-step boundaries.
//
// Fault injection is only trustworthy when the system under test stays
// physically sensible while being broken: energy stores must never go
// negative, dead nodes must never source traffic, and the distributed CNN
// must keep every unit assigned exactly once no matter which nodes died.
// The `InvariantChecker` collects those assertions behind one interface:
// built-in checks take plain data (so the fault library depends on nothing
// above obs/sim), callers register custom predicates, and
// `attach_to_simulator` runs the registered set at event boundaries via the
// kernel's post-step hook.  Violations are accumulated (not thrown) so a
// chaos sweep can report every breakage of a run; `require_clean()`
// escalates to an exception for tests and CI.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace zeiot::fault {

struct Violation {
  double t = 0.0;
  std::string invariant;
  std::string detail;
};

class InvariantChecker {
 public:
  /// Violations emit fault.invariant.violations{invariant=...} counters and
  /// InvariantViolation trace events when `obs` is non-null.
  explicit InvariantChecker(obs::Observability* obs = nullptr);

  /// Registers a named predicate run by `run(t)`.  The predicate returns a
  /// violation description, or nullopt when the invariant holds.
  void add_check(std::string name,
                 std::function<std::optional<std::string>(double t)> check);

  /// Runs every registered predicate at time `t`; returns the number of
  /// new violations.
  std::size_t run(double t);

  /// Runs the registered predicates after every `stride`-th executed kernel
  /// event via the kernel's post-step hook, chaining any hook already
  /// installed (the observer/metrics probe is untouched).  The checker must
  /// outlive the simulator run.
  void attach_to_simulator(sim::Simulator& sim, std::size_t stride = 1);

  // -- Built-in cross-subsystem checks (record a violation, return ok) -----

  /// Energy sanity: stored energy and voltage must be finite and >= 0.
  bool check_energy_bounds(double t, std::uint32_t device, double stored_j,
                           double voltage_v);

  /// No traffic-sourcing trace event (PacketTx, MicroDeepHop) may have been
  /// recorded while its source was dead under `inj`'s plan.
  bool check_no_dead_sender(const obs::TraceRecorder& trace,
                            const FaultInjector& inj);

  /// Assignment cover under dropout: every unit mapped to exactly one node,
  /// that node in range, and not dead.  `unit_to_node[u]` is the hosting
  /// node of unit `u`; `dead` may be empty (no failures).
  bool check_unit_cover(double t,
                        const std::vector<std::uint32_t>& unit_to_node,
                        std::size_t num_nodes, const std::vector<bool>& dead);

  /// Forward/backward conservation: the distributed execution value must
  /// match the centralized reference within `tol` (use 0 faults => exact
  /// dataflow equivalence; under dropout both sides must agree on the same
  /// masked inputs).
  bool check_forward_conservation(double t, double distributed,
                                  double centralized, double tol);

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::size_t checks_run() const { return checks_run_; }

  /// Throws zeiot::Error describing the first violation (all are listed in
  /// the message up to a small cap) unless clean.
  void require_clean() const;

 private:
  void record_violation(double t, const std::string& invariant,
                        const std::string& detail);

  struct Named {
    std::string name;
    std::function<std::optional<std::string>(double)> fn;
  };

  obs::Observability* obs_;
  std::vector<Named> checks_;
  std::vector<Violation> violations_;
  std::size_t checks_run_ = 0;
};

}  // namespace zeiot::fault
