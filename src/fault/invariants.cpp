#include "fault/invariants.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "common/error.hpp"

namespace zeiot::fault {

InvariantChecker::InvariantChecker(obs::Observability* obs) : obs_(obs) {}

void InvariantChecker::add_check(
    std::string name, std::function<std::optional<std::string>(double)> check) {
  ZEIOT_CHECK_MSG(check != nullptr, "invariant check must be callable");
  checks_.push_back({std::move(name), std::move(check)});
}

std::size_t InvariantChecker::run(double t) {
  std::size_t found = 0;
  for (const Named& c : checks_) {
    ++checks_run_;
    if (auto detail = c.fn(t)) {
      record_violation(t, c.name, *detail);
      ++found;
    }
  }
  if (obs_ != nullptr) {
    obs_->metrics().counter("fault.invariant.checks")
        .inc(static_cast<double>(checks_.size()));
  }
  return found;
}

void InvariantChecker::attach_to_simulator(sim::Simulator& sim,
                                           std::size_t stride) {
  ZEIOT_CHECK_MSG(stride >= 1, "invariant stride must be >= 1");
  auto previous = sim.post_step_hook();
  auto counter = std::make_shared<std::size_t>(0);
  InvariantChecker* self = this;
  sim.set_post_step_hook([self, stride, counter,
                          previous = std::move(previous)](sim::Time t) {
    if (previous) previous(t);
    if (++*counter % stride == 0) self->run(t);
  });
}

bool InvariantChecker::check_energy_bounds(double t, std::uint32_t device,
                                           double stored_j, double voltage_v) {
  if (std::isfinite(stored_j) && std::isfinite(voltage_v) && stored_j >= 0.0 &&
      voltage_v >= 0.0) {
    return true;
  }
  std::ostringstream os;
  os << "device " << device << " stored=" << stored_j << " J, voltage="
     << voltage_v << " V";
  record_violation(t, "energy_non_negative", os.str());
  return false;
}

bool InvariantChecker::check_no_dead_sender(const obs::TraceRecorder& trace,
                                            const FaultInjector& inj) {
  bool ok = true;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceEvent& e = trace.at(i);
    if (e.type != obs::TraceType::PacketTx &&
        e.type != obs::TraceType::MicroDeepHop) {
      continue;
    }
    if (inj.node_dead(e.t, e.a)) {
      std::ostringstream os;
      os << obs::trace_type_name(e.type) << " from dead node " << e.a << " at t="
         << e.t;
      record_violation(e.t, "no_dead_sender", os.str());
      ok = false;
    }
  }
  return ok;
}

bool InvariantChecker::check_unit_cover(
    double t, const std::vector<std::uint32_t>& unit_to_node,
    std::size_t num_nodes, const std::vector<bool>& dead) {
  bool ok = true;
  for (std::size_t u = 0; u < unit_to_node.size(); ++u) {
    const std::uint32_t n = unit_to_node[u];
    if (n >= num_nodes) {
      std::ostringstream os;
      os << "unit " << u << " assigned to out-of-range node " << n;
      record_violation(t, "unit_cover", os.str());
      ok = false;
    } else if (n < dead.size() && dead[n]) {
      std::ostringstream os;
      os << "unit " << u << " assigned to dead node " << n;
      record_violation(t, "unit_cover", os.str());
      ok = false;
    }
  }
  return ok;
}

bool InvariantChecker::check_forward_conservation(double t, double distributed,
                                                  double centralized,
                                                  double tol) {
  if (std::isfinite(distributed) && std::isfinite(centralized) &&
      std::abs(distributed - centralized) <= tol) {
    return true;
  }
  std::ostringstream os;
  os << "distributed=" << distributed << " centralized=" << centralized
     << " tol=" << tol;
  record_violation(t, "forward_conservation", os.str());
  return false;
}

void InvariantChecker::record_violation(double t, const std::string& invariant,
                                        const std::string& detail) {
  violations_.push_back({t, invariant, detail});
  if (obs_ != nullptr) {
    obs_->metrics()
        .counter("fault.invariant.violations", {{"invariant", invariant}})
        .inc();
    obs_->trace().record(t, obs::TraceType::InvariantViolation,
                         static_cast<std::uint32_t>(violations_.size()));
  }
}

void InvariantChecker::require_clean() const {
  if (violations_.empty()) return;
  std::ostringstream os;
  os << violations_.size() << " invariant violation(s):";
  constexpr std::size_t kMaxListed = 5;
  for (std::size_t i = 0; i < violations_.size() && i < kMaxListed; ++i) {
    const Violation& v = violations_[i];
    os << "\n  [" << v.invariant << "] t=" << v.t << ": " << v.detail;
  }
  if (violations_.size() > kMaxListed) {
    os << "\n  ... and " << violations_.size() - kMaxListed << " more";
  }
  throw Error(os.str());
}

}  // namespace zeiot::fault
