// Deterministic fault injection for zeiot experiments.
//
// The paper's robustness story (Secs. III, IV.A, IV.C / Fig. 10) treats
// unreliability as an *input* of every experiment: zero-energy nodes die
// and revive, backscatter frames are lost under WLAN contention, devices
// brown out mid-task, harvest sources dry up.  This module makes those
// failure schedules first-class: a `FaultPlan` is an explicit, sorted list
// of typed events, either generated from a SplitMix-seeded `FaultSpec` or
// loaded from JSON, so that a single seed reproduces the exact same fault
// trajectory run after run (and any run can be replayed from its exported
// plan).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace zeiot::fault {

/// Fault vocabulary shared by all injection points.
enum class FaultType : std::uint8_t {
  /// Point event: the target node/device stops operating at `t`.
  NodeDeath,
  /// Point event: the target node/device resumes operating at `t`.
  NodeRevival,
  /// Window: messages touching the target are lost with prob `magnitude`.
  MessageDrop,
  /// Window: messages touching the target are corrupted with prob
  /// `magnitude` (delivered but unusable / flagged bad).
  MessageCorrupt,
  /// Window: messages touching the target arrive `magnitude` seconds late.
  MessageDelay,
  /// Window: the target device's supply fails (forced OFF, paper Sec. III).
  Brownout,
  /// Window: the target's harvested power is scaled by `magnitude`
  /// (0 = complete drought).
  HarvestDrought,
};

inline constexpr std::size_t kNumFaultTypes = 7;

/// Stable lowercase name used in JSON plans and trace/metric labels.
const char* fault_type_name(FaultType type);
/// Inverse of fault_type_name; returns false for unknown names.
bool fault_type_from_name(const std::string& name, FaultType& out);

/// Wildcard target: the fault applies to every node/device/station.
inline constexpr std::uint32_t kAllTargets = 0xffffffffu;

/// One scheduled fault.  `t` is in the time base of whatever component the
/// injector is wired into (seconds for event-driven simulations, slots for
/// the slotted CSMA model, abstract [0,1] for the MicroDeep chaos sweeps).
struct FaultEvent {
  double t = 0.0;
  FaultType type = FaultType::NodeDeath;
  std::uint32_t target = kAllTargets;
  /// Window length; 0 for the point events (NodeDeath / NodeRevival).
  double duration_s = 0.0;
  /// Type-dependent payload: probability (drop/corrupt), seconds (delay),
  /// power scale (drought); unused (1.0) for the others.
  double magnitude = 1.0;

  bool operator==(const FaultEvent&) const = default;
};

/// Generator spec: expected event counts over the horizon per fault class,
/// all scaled by `intensity` (the chaos-sweep knob).  Every class draws
/// from its own SplitMix-derived substream, so changing one rate never
/// shifts another class's schedule.
struct FaultSpec {
  double horizon_s = 60.0;
  /// Targets are drawn uniformly from [0, num_targets).
  std::uint32_t num_targets = 8;
  /// Global multiplier applied to every rate (0 = empty plan).
  double intensity = 1.0;

  /// Expected node deaths over the horizon (fleet-wide).
  double node_death_rate = 0.0;
  /// Mean death->revival delay (exponential); <= 0 means permanent death.
  double mean_downtime_s = 0.0;

  double drop_rate = 0.0;
  double drop_window_s = 5.0;
  double drop_probability = 0.5;

  double corrupt_rate = 0.0;
  double corrupt_window_s = 5.0;
  double corrupt_probability = 0.5;

  double delay_rate = 0.0;
  double delay_window_s = 5.0;
  double delay_s = 10e-3;

  double brownout_rate = 0.0;
  double brownout_s = 2.0;

  double drought_rate = 0.0;
  double drought_s = 10.0;
  double drought_scale = 0.0;

  std::uint64_t seed = 1;
};

/// An immutable, time-sorted fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Takes ownership of `events` and sorts them by (t, type, target).
  explicit FaultPlan(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Number of events of one type (chaos-report bookkeeping).
  std::size_t count(FaultType type) const;

  /// FNV-1a digest over the canonical event encoding.  Two plans with the
  /// same digest injected into the same seeded experiment reproduce the
  /// same trajectory — the reproducibility handle the chaos benches assert.
  std::uint64_t digest() const;

  /// Serializes as {"schema":"zeiot.fault.v1","events":[...]}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  /// Parses a plan previously written by write_json (or hand-authored to
  /// the same schema).  Throws zeiot::Error on malformed input.
  static FaultPlan from_json(std::istream& in);
  static FaultPlan from_json_text(const std::string& text);

 private:
  std::vector<FaultEvent> events_;
};

/// Generates a plan from the spec.  Deterministic: equal specs (including
/// seed) produce byte-identical plans.
FaultPlan generate_plan(const FaultSpec& spec);

}  // namespace zeiot::fault
