#include "fault/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace zeiot::fault {

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::NodeDeath: return "node_death";
    case FaultType::NodeRevival: return "node_revival";
    case FaultType::MessageDrop: return "message_drop";
    case FaultType::MessageCorrupt: return "message_corrupt";
    case FaultType::MessageDelay: return "message_delay";
    case FaultType::Brownout: return "brownout";
    case FaultType::HarvestDrought: return "harvest_drought";
  }
  return "unknown";
}

bool fault_type_from_name(const std::string& name, FaultType& out) {
  for (std::size_t i = 0; i < kNumFaultTypes; ++i) {
    const auto t = static_cast<FaultType>(i);
    if (name == fault_type_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& e : events_) {
    ZEIOT_CHECK_MSG(std::isfinite(e.t) && std::isfinite(e.duration_s) &&
                        std::isfinite(e.magnitude),
                    "fault event fields must be finite");
    ZEIOT_CHECK_MSG(e.duration_s >= 0.0, "fault duration must be >= 0");
  }
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.type != b.type) return a.type < b.type;
              return a.target < b.target;
            });
}

std::size_t FaultPlan::count(FaultType type) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  __builtin_memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

std::uint64_t FaultPlan::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const FaultEvent& e : events_) {
    fnv_mix(h, double_bits(e.t));
    fnv_mix(h, static_cast<std::uint64_t>(e.type));
    fnv_mix(h, e.target);
    fnv_mix(h, double_bits(e.duration_s));
    fnv_mix(h, double_bits(e.magnitude));
  }
  return h;
}

void FaultPlan::write_json(std::ostream& out) const {
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("zeiot.fault.v1");
  w.key("events").begin_array();
  for (const FaultEvent& e : events_) {
    w.begin_object();
    w.key("t").value(e.t);
    w.key("type").value(fault_type_name(e.type));
    w.key("target").value(static_cast<std::uint64_t>(e.target));
    w.key("duration").value(e.duration_s);
    w.key("magnitude").value(e.magnitude);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

namespace {

/// Recursive-descent parser for exactly the zeiot.fault.v1 schema: an
/// object of strings/numbers/arrays-of-flat-objects.  Small on purpose —
/// this is the only JSON the library ever reads.
class PlanParser {
 public:
  explicit PlanParser(const std::string& text) : s_(text) {}

  FaultPlan parse() {
    skip_ws();
    expect('{');
    bool saw_schema = false;
    std::vector<FaultEvent> events;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        get();
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string k = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (k == "schema") {
        const std::string schema = parse_string();
        ZEIOT_CHECK_MSG(schema == "zeiot.fault.v1",
                        "unsupported fault plan schema '" << schema << "'");
        saw_schema = true;
      } else if (k == "events") {
        events = parse_events();
      } else {
        fail("unknown top-level key '" + k + "'");
      }
    }
    skip_ws();
    ZEIOT_CHECK_MSG(pos_ == s_.size(),
                    "trailing bytes after fault plan JSON");
    ZEIOT_CHECK_MSG(saw_schema, "fault plan JSON missing \"schema\"");
    return FaultPlan(std::move(events));
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("fault plan JSON: " + why + " at byte " +
                std::to_string(pos_));
  }
  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported string escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string tok = s_.substr(start, pos_ - start);
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(tok, &used);
    } catch (const std::exception&) {
      fail("malformed number '" + tok + "'");
    }
    if (used != tok.size()) fail("malformed number '" + tok + "'");
    return v;
  }

  std::vector<FaultEvent> parse_events() {
    expect('[');
    std::vector<FaultEvent> events;
    skip_ws();
    if (peek() == ']') {
      get();
      return events;
    }
    while (true) {
      skip_ws();
      events.push_back(parse_event());
      skip_ws();
      const char c = get();
      if (c == ']') return events;
      if (c != ',') fail("expected ',' or ']' in events array");
    }
  }

  FaultEvent parse_event() {
    expect('{');
    FaultEvent e;
    bool saw_t = false, saw_type = false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        get();
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string k = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (k == "t") {
        e.t = parse_number();
        saw_t = true;
      } else if (k == "type") {
        const std::string name = parse_string();
        ZEIOT_CHECK_MSG(fault_type_from_name(name, e.type),
                        "unknown fault type '" << name << "'");
        saw_type = true;
      } else if (k == "target") {
        const double v = parse_number();
        ZEIOT_CHECK_MSG(v >= 0.0 && v <= 4294967295.0,
                        "fault target out of range");
        e.target = static_cast<std::uint32_t>(v);
      } else if (k == "duration") {
        e.duration_s = parse_number();
      } else if (k == "magnitude") {
        e.magnitude = parse_number();
      } else {
        fail("unknown event key '" + k + "'");
      }
    }
    ZEIOT_CHECK_MSG(saw_t && saw_type,
                    "fault event requires at least \"t\" and \"type\"");
    return e;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

FaultPlan FaultPlan::from_json_text(const std::string& text) {
  return PlanParser(text).parse();
}

FaultPlan FaultPlan::from_json(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  ZEIOT_CHECK_MSG(!in.bad(), "fault plan stream read failed");
  return from_json_text(buf.str());
}

namespace {

/// Substream ids, one per fault class, so rates are independent knobs.
enum : std::uint64_t {
  kStreamDeath = 1,
  kStreamDrop,
  kStreamCorrupt,
  kStreamDelay,
  kStreamBrownout,
  kStreamDrought,
};

void generate_windows(Rng rng, const FaultSpec& spec, double rate,
                      FaultType type, double window_s, double magnitude,
                      std::vector<FaultEvent>& out) {
  if (rate <= 0.0 || spec.intensity <= 0.0) return;
  const int n = rng.poisson(rate * spec.intensity);
  for (int i = 0; i < n; ++i) {
    FaultEvent e;
    e.t = rng.uniform(0.0, spec.horizon_s);
    e.type = type;
    e.target = spec.num_targets == 0
                   ? kAllTargets
                   : static_cast<std::uint32_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(spec.num_targets) - 1));
    e.duration_s = window_s;
    e.magnitude = magnitude;
    out.push_back(e);
  }
}

}  // namespace

FaultPlan generate_plan(const FaultSpec& spec) {
  ZEIOT_CHECK_MSG(spec.horizon_s > 0.0, "fault horizon must be > 0");
  ZEIOT_CHECK_MSG(spec.intensity >= 0.0, "fault intensity must be >= 0");
  Rng root(spec.seed);
  // Split every class substream up front (split() advances the parent), so
  // each class's schedule depends only on the seed, never on which other
  // rates are zero.
  Rng death_rng = root.split(kStreamDeath);
  Rng drop_rng = root.split(kStreamDrop);
  Rng corrupt_rng = root.split(kStreamCorrupt);
  Rng delay_rng = root.split(kStreamDelay);
  Rng brownout_rng = root.split(kStreamBrownout);
  Rng drought_rng = root.split(kStreamDrought);
  std::vector<FaultEvent> events;

  // Node deaths (paired with revivals when downtime is finite).
  if (spec.node_death_rate > 0.0 && spec.intensity > 0.0) {
    Rng& rng = death_rng;
    const int n = rng.poisson(spec.node_death_rate * spec.intensity);
    for (int i = 0; i < n; ++i) {
      FaultEvent death;
      death.t = rng.uniform(0.0, spec.horizon_s);
      death.type = FaultType::NodeDeath;
      death.target = spec.num_targets == 0
                         ? kAllTargets
                         : static_cast<std::uint32_t>(rng.uniform_int(
                               0,
                               static_cast<std::int64_t>(spec.num_targets) - 1));
      death.duration_s = 0.0;
      events.push_back(death);
      if (spec.mean_downtime_s > 0.0) {
        const double revive_at =
            death.t + rng.exponential(1.0 / spec.mean_downtime_s);
        if (revive_at < spec.horizon_s) {
          FaultEvent revive = death;
          revive.t = revive_at;
          revive.type = FaultType::NodeRevival;
          events.push_back(revive);
        }
      }
    }
  }

  generate_windows(drop_rng, spec, spec.drop_rate, FaultType::MessageDrop,
                   spec.drop_window_s, spec.drop_probability, events);
  generate_windows(corrupt_rng, spec, spec.corrupt_rate,
                   FaultType::MessageCorrupt, spec.corrupt_window_s,
                   spec.corrupt_probability, events);
  generate_windows(delay_rng, spec, spec.delay_rate, FaultType::MessageDelay,
                   spec.delay_window_s, spec.delay_s, events);
  generate_windows(brownout_rng, spec, spec.brownout_rate,
                   FaultType::Brownout, spec.brownout_s, 1.0, events);
  generate_windows(drought_rng, spec, spec.drought_rate,
                   FaultType::HarvestDrought, spec.drought_s,
                   spec.drought_scale, events);

  return FaultPlan(std::move(events));
}

}  // namespace zeiot::fault
