#include "fault/injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zeiot::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      rng_(seed ^ plan_.digest()),
      injected_(kNumFaultTypes, 0) {}

void FaultInjector::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ != nullptr) {
    obs_->metrics().gauge("fault.plan.events")
        .set(static_cast<double>(plan_.size()));
  }
}

bool FaultInjector::matches(const FaultEvent& e, std::uint32_t a,
                            std::uint32_t b) const {
  return e.target == kAllTargets || e.target == a || e.target == b;
}

bool FaultInjector::node_dead(double t, std::uint32_t node) const {
  // Events are time-sorted; the last death/revival affecting `node` at or
  // before `t` decides.  Plans are small (tens to hundreds of events), so
  // the linear scan is cheaper than maintaining per-node timelines.
  bool dead = false;
  for (const FaultEvent& e : plan_.events()) {
    if (e.t > t) break;
    if (e.target != node && e.target != kAllTargets) continue;
    if (e.type == FaultType::NodeDeath) {
      dead = true;
    } else if (e.type == FaultType::NodeRevival) {
      dead = false;
    }
  }
  return dead;
}

std::vector<bool> FaultInjector::dead_mask(double t,
                                           std::size_t num_nodes) const {
  std::vector<bool> mask(num_nodes, false);
  for (const FaultEvent& e : plan_.events()) {
    if (e.t > t) break;
    if (e.type != FaultType::NodeDeath && e.type != FaultType::NodeRevival) {
      continue;
    }
    const bool dead = e.type == FaultType::NodeDeath;
    if (e.target == kAllTargets) {
      mask.assign(num_nodes, dead);
    } else if (e.target < num_nodes) {
      mask[e.target] = dead;
    }
  }
  return mask;
}

bool FaultInjector::active_window(double t, FaultType type, std::uint32_t a,
                                  std::uint32_t b, double& magnitude) const {
  bool found = false;
  magnitude = 0.0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.t > t) break;
    if (e.type != type || t >= e.t + e.duration_s) continue;
    if (!matches(e, a, b)) continue;
    magnitude = found ? std::max(magnitude, e.magnitude) : e.magnitude;
    found = true;
  }
  return found;
}

bool FaultInjector::in_brownout(double t, std::uint32_t device) const {
  double mag;
  return active_window(t, FaultType::Brownout, device, device, mag);
}

double FaultInjector::harvest_scale(double t, std::uint32_t device) const {
  double scale = 1.0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.t > t) break;
    if (e.type != FaultType::HarvestDrought || t >= e.t + e.duration_s) {
      continue;
    }
    if (!matches(e, device, device)) continue;
    scale = std::min(scale, std::max(0.0, e.magnitude));
  }
  return scale;
}

double FaultInjector::message_delay_s(double t, std::uint32_t src,
                                      std::uint32_t dst) {
  double delay;
  if (!active_window(t, FaultType::MessageDelay, src, dst, delay) ||
      delay <= 0.0) {
    return 0.0;
  }
  note_injection(t, FaultType::MessageDelay, src, delay);
  return delay;
}

bool FaultInjector::should_drop(double t, std::uint32_t src,
                                std::uint32_t dst) {
  double p;
  if (!active_window(t, FaultType::MessageDrop, src, dst, p)) return false;
  if (!rng_.bernoulli(std::clamp(p, 0.0, 1.0))) return false;
  note_injection(t, FaultType::MessageDrop, src, p);
  return true;
}

bool FaultInjector::should_corrupt(double t, std::uint32_t src,
                                   std::uint32_t dst) {
  double p;
  if (!active_window(t, FaultType::MessageCorrupt, src, dst, p)) return false;
  if (!rng_.bernoulli(std::clamp(p, 0.0, 1.0))) return false;
  note_injection(t, FaultType::MessageCorrupt, src, p);
  return true;
}

void FaultInjector::note_injection(double t, FaultType type,
                                   std::uint32_t target, double magnitude) {
  ++injected_[static_cast<std::size_t>(type)];
  if (obs_ != nullptr) {
    obs_->metrics()
        .counter("fault.injected", {{"type", fault_type_name(type)}})
        .inc();
    obs_->trace().record(t, obs::TraceType::FaultInjected, target,
                         static_cast<std::uint32_t>(type), magnitude);
  }
}

std::uint64_t FaultInjector::injected(FaultType type) const {
  return injected_[static_cast<std::size_t>(type)];
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

FaultDriver::FaultDriver(sim::Simulator& sim, FaultInjector& injector)
    : sim_(sim), injector_(injector) {}

void FaultDriver::arm() {
  for (const FaultEvent& e : injector_.plan().events()) {
    if (e.t < sim_.now()) continue;
    FaultInjector* inj = &injector_;
    sim_.schedule_at(e.t, [inj, e] {
      obs::Observability* obs = inj->observability();
      if (obs != nullptr) {
        obs->metrics()
            .counter("fault.transitions", {{"type", fault_type_name(e.type)}})
            .inc();
        obs->trace().record(e.t, obs::TraceType::FaultInjected, e.target,
                            static_cast<std::uint32_t>(e.type), e.magnitude);
      }
    });
  }
}

}  // namespace zeiot::fault
