#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace zeiot {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ZEIOT_CHECK_MSG(!header_.empty(), "Table requires a non-empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  ZEIOT_CHECK_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << "\"\"";
          else os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void print_bar_series(std::ostream& os, const std::string& title,
                      const std::vector<double>& values, int width) {
  os << title << '\n';
  if (values.empty()) {
    os << "  (empty)\n";
    return;
  }
  const double vmax = *std::max_element(values.begin(), values.end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int bar =
        vmax <= 0.0 ? 0
                    : static_cast<int>(std::lround(values[i] / vmax *
                                                   static_cast<double>(width)));
    os << "  " << std::setw(4) << i << " | " << std::string(
              static_cast<std::size_t>(bar), '#')
       << ' ' << Table::num(values[i], 1) << '\n';
  }
}

}  // namespace zeiot
