// Confusion matrix and classification metrics (accuracy, precision/recall,
// per-class and macro F-measure) used by every sensing pipeline's evaluation.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace zeiot {

/// Square confusion matrix over `num_classes` labels.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Records one (truth, prediction) pair.
  void add(std::size_t truth, std::size_t predicted);

  std::size_t num_classes() const { return n_; }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t truth, std::size_t predicted) const;

  /// Fraction of exactly correct predictions (0 if empty).
  double accuracy() const;
  /// Fraction of predictions within +/- `tol` classes of the truth — used by
  /// the people-count experiments ("errors up to two people").
  double accuracy_within(std::size_t tol) const;
  /// Precision of class c: TP / (TP + FP); 0 when no predictions of c.
  double precision(std::size_t c) const;
  /// Recall of class c: TP / (TP + FN); 0 when class absent.
  double recall(std::size_t c) const;
  /// Per-class F1 (harmonic mean of precision and recall).
  double f1(std::size_t c) const;
  /// Unweighted mean of per-class F1 — the paper's "F-measure".
  double macro_f1() const;

  /// Mean absolute error of the class index (counts treated as ordinal).
  double mean_absolute_error() const;

  void print(std::ostream& os,
             const std::vector<std::string>& labels = {}) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;  // row = truth, col = predicted
  std::size_t total_ = 0;
};

}  // namespace zeiot
