#include "common/rng.hpp"

#include <cmath>

namespace zeiot {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) {
  // Mix the stream id into a fresh SplitMix64 seed derived from this
  // generator's own output so sibling streams differ even for id 0.
  const std::uint64_t base = (*this)();
  return Rng(base ^ (0x632be59bd9b4e019ULL * (stream_id + 1)));
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ZEIOT_CHECK_MSG(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ZEIOT_CHECK_MSG(lo <= hi, "uniform_int(lo,hi) requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Rng::normal(double mean, double sigma) {
  ZEIOT_CHECK_MSG(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) {
  ZEIOT_CHECK_MSG(lambda > 0.0, "exponential() requires lambda > 0");
  return -std::log(1.0 - uniform()) / lambda;
}

bool Rng::bernoulli(double p) {
  ZEIOT_CHECK_MSG(p >= 0.0 && p <= 1.0, "bernoulli() requires p in [0,1]");
  return uniform() < p;
}

int Rng::poisson(double mean) {
  ZEIOT_CHECK_MSG(mean >= 0.0, "poisson() requires mean >= 0");
  if (mean == 0.0) return 0;
  if (mean > 60.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic models this library feeds.
    const double x = normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  ZEIOT_CHECK_MSG(!weights.empty(), "weighted_index() requires weights");
  double total = 0.0;
  for (double w : weights) {
    ZEIOT_CHECK_MSG(w >= 0.0, "weighted_index() requires non-negative weights");
    total += w;
  }
  ZEIOT_CHECK_MSG(total > 0.0, "weighted_index() requires a positive weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: all mass consumed
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace zeiot
