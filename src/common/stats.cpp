#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace zeiot {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ZEIOT_CHECK_MSG(hi > lo, "Histogram requires hi > lo");
  ZEIOT_CHECK_MSG(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double f = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(f * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  ZEIOT_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  ZEIOT_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  ZEIOT_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (total_ == 0) return lo_;
  // q = 0 is the infimum of the recorded mass: the low edge of the first
  // occupied bin (not lo_, which an empty leading bin would wrongly
  // report).
  if (q == 0.0) {
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] > 0) return bin_low(b);
    }
    return lo_;  // unreachable: total_ > 0 implies an occupied bin
  }
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;  // empty bins can never hold the target
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target) {
      // Mass inside a bin is assumed uniform, so the quantile interpolates
      // linearly between the bin edges; q = 1 lands exactly on the high
      // edge of the last occupied bin.
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_low(b) + frac * (bin_high(b) - bin_low(b));
    }
    cum = next;
  }
  return hi_;
}

double Histogram::percentile(double p) const {
  ZEIOT_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  return quantile(p / 100.0);
}

void Histogram::merge(const Histogram& other) {
  ZEIOT_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                      counts_.size() == other.counts_.size(),
                  "Histogram::merge requires identical bounds and bin count");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

double exact_quantile(std::vector<double> samples, double q) {
  ZEIOT_CHECK_MSG(!samples.empty(), "exact_quantile of empty sample set");
  ZEIOT_CHECK_MSG(q >= 0.0 && q <= 1.0, "exact_quantile q must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double exact_percentile(std::vector<double> samples, double p) {
  ZEIOT_CHECK_MSG(p >= 0.0 && p <= 100.0,
                  "exact_percentile p must be in [0,100]");
  return exact_quantile(std::move(samples), p / 100.0);
}

double nearest_rank_quantile(std::vector<double> samples, double q) {
  ZEIOT_CHECK_MSG(q >= 0.0 && q <= 1.0,
                  "nearest_rank_quantile q must be in [0,1]");
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const auto idx =
      static_cast<std::size_t>(std::llround(q * static_cast<double>(n - 1)));
  return samples[std::min(idx, n - 1)];
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace zeiot
