#include "common/confusion.hpp"

#include <cmath>
#include <iomanip>

#include "common/error.hpp"

namespace zeiot {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  ZEIOT_CHECK_MSG(num_classes > 0, "ConfusionMatrix needs >= 1 class");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  ZEIOT_CHECK_MSG(truth < n_ && predicted < n_,
                  "label out of range: truth=" << truth << " pred=" << predicted
                                               << " classes=" << n_);
  ++cells_[truth * n_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  ZEIOT_CHECK(truth < n_ && predicted < n_);
  return cells_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += cells_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::accuracy_within(std::size_t tol) const {
  if (total_ == 0) return 0.0;
  std::size_t ok = 0;
  for (std::size_t t = 0; t < n_; ++t)
    for (std::size_t p = 0; p < n_; ++p) {
      const std::size_t d = t > p ? t - p : p - t;
      if (d <= tol) ok += cells_[t * n_ + p];
    }
  return static_cast<double>(ok) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t c) const {
  ZEIOT_CHECK(c < n_);
  std::size_t tp = cells_[c * n_ + c];
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += cells_[t * n_ + c];
  return predicted == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t c) const {
  ZEIOT_CHECK(c < n_);
  std::size_t tp = cells_[c * n_ + c];
  std::size_t actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += cells_[c * n_ + p];
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t c) const {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double s = 0.0;
  for (std::size_t c = 0; c < n_; ++c) s += f1(c);
  return s / static_cast<double>(n_);
}

double ConfusionMatrix::mean_absolute_error() const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t t = 0; t < n_; ++t)
    for (std::size_t p = 0; p < n_; ++p) {
      const std::size_t d = t > p ? t - p : p - t;
      s += static_cast<double>(d) * static_cast<double>(cells_[t * n_ + p]);
    }
  return s / static_cast<double>(total_);
}

void ConfusionMatrix::print(std::ostream& os,
                            const std::vector<std::string>& labels) const {
  os << "truth \\ pred";
  for (std::size_t p = 0; p < n_; ++p) {
    os << '\t' << (p < labels.size() ? labels[p] : std::to_string(p));
  }
  os << '\n';
  for (std::size_t t = 0; t < n_; ++t) {
    os << (t < labels.size() ? labels[t] : std::to_string(t));
    for (std::size_t p = 0; p < n_; ++p) os << '\t' << cells_[t * n_ + p];
    os << '\n';
  }
  os << "accuracy=" << std::fixed << std::setprecision(4) << accuracy()
     << " macroF1=" << macro_f1() << '\n';
}

}  // namespace zeiot
