// Error handling primitives shared by every zeiot module.
//
// The library throws `zeiot::Error` (a std::runtime_error) for precondition
// violations on public APIs.  Internal invariants use ZEIOT_CHECK, which is
// active in all build types: simulation bugs must never silently corrupt an
// experiment.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace zeiot {

/// Exception type thrown by all zeiot modules on invalid arguments or
/// violated invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "ZEIOT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace zeiot

/// Always-on invariant check.  Throws zeiot::Error with location info.
#define ZEIOT_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::zeiot::detail::fail_check(#expr, __FILE__, __LINE__, {});      \
  } while (0)

/// Invariant check with an explanatory message (streamed into a string).
#define ZEIOT_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream zeiot_os_;                                    \
      zeiot_os_ << msg;                                                \
      ::zeiot::detail::fail_check(#expr, __FILE__, __LINE__,           \
                                  zeiot_os_.str());                    \
    }                                                                  \
  } while (0)
