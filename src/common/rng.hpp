// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library draws from an explicitly passed
// `Rng` so that experiments are reproducible from a single seed and
// independent substreams can be split off per device / per trial without
// correlation (SplitMix64 seeding of xoshiro256**, following Blackman &
// Vigna's recommendations).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace zeiot {

/// xoshiro256** PRNG with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator so it can also be handed to
/// <random> distributions, but the member helpers below are preferred: they
/// are deterministic across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Derives an independent child stream (for per-device randomness).
  /// Children with different `stream_id`s are statistically uncorrelated.
  Rng split(std::uint64_t stream_id);

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double exponential(double lambda);
  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);
  /// Poisson-distributed count with mean >= 0 (Knuth for small means,
  /// normal approximation above 60).
  int poisson(double mean);

  /// Index drawn from the (unnormalised, non-negative) weights.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Returns indices 0..n-1 in random order.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second output of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace zeiot
