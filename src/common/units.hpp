// Radio/energy unit conversions and physical constants.
//
// All module APIs use SI internally (watts, joules, seconds, metres, hertz);
// these helpers exist at the boundaries where the radio literature speaks in
// dBm / dB.
#pragma once

#include <cmath>

namespace zeiot {

inline constexpr double kSpeedOfLight = 299'792'458.0;  // m/s
inline constexpr double kBoltzmann = 1.380649e-23;      // J/K

/// Converts a power in dBm to watts.
inline double dbm_to_watt(double dbm) {
  return std::pow(10.0, dbm / 10.0) * 1e-3;
}

/// Converts a power in watts to dBm.  Requires watt > 0.
inline double watt_to_dbm(double watt) {
  return 10.0 * std::log10(watt * 1e3);
}

/// Converts a dimensionless linear ratio to dB.  Requires ratio > 0.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Converts dB to a linear ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Milliwatts to watts.
inline constexpr double mw(double milliwatt) { return milliwatt * 1e-3; }

/// Microwatts to watts.
inline constexpr double uw(double microwatt) { return microwatt * 1e-6; }

/// Thermal noise power in watts over `bandwidth_hz` at temperature
/// `temp_kelvin` (default 290 K, the standard reference).
inline double thermal_noise_watt(double bandwidth_hz,
                                 double temp_kelvin = 290.0) {
  return kBoltzmann * temp_kelvin * bandwidth_hz;
}

/// Wavelength (metres) of a carrier at `freq_hz`.
inline double wavelength_m(double freq_hz) { return kSpeedOfLight / freq_hz; }

}  // namespace zeiot
