// Planar geometry primitives for node deployments and grid sensing fields.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace zeiot {

/// A point (or vector) in the 2-D deployment plane, metres.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend Point2D operator+(Point2D a, Point2D b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend Point2D operator-(Point2D a, Point2D b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend Point2D operator*(Point2D a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Point2D a, Point2D b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double distance(Point2D a, Point2D b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// A point in 3-D space, metres (used by the RFID tag-array models where
/// height matters).
struct Point3D {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Point3D operator+(Point3D a, Point3D b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Point3D operator-(Point3D a, Point3D b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Point3D operator*(Point3D a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
};

/// Euclidean distance between two 3-D points.
inline double distance(Point3D a, Point3D b) {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/// Axis-aligned rectangle [x0,x1) x [y0,y1).
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  bool contains(Point2D p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }
  Point2D center() const { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }
};

/// Integer cell index into a W x H grid (column `x`, row `y`).
struct CellIndex {
  int x = 0;
  int y = 0;
  friend bool operator==(CellIndex a, CellIndex b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Maps continuous coordinates in `area` onto a `cols` x `rows` cell grid.
class GridMapper {
 public:
  GridMapper(Rect area, int cols, int rows) : area_(area), cols_(cols), rows_(rows) {
    ZEIOT_CHECK_MSG(cols > 0 && rows > 0, "GridMapper needs positive dims");
    ZEIOT_CHECK_MSG(area.width() > 0 && area.height() > 0,
                    "GridMapper needs a non-degenerate area");
  }

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  const Rect& area() const { return area_; }

  /// Cell containing `p` (clamped to the grid for boundary points).
  CellIndex cell_of(Point2D p) const {
    auto cx = static_cast<int>((p.x - area_.x0) / area_.width() *
                               static_cast<double>(cols_));
    auto cy = static_cast<int>((p.y - area_.y0) / area_.height() *
                               static_cast<double>(rows_));
    cx = cx < 0 ? 0 : (cx >= cols_ ? cols_ - 1 : cx);
    cy = cy < 0 ? 0 : (cy >= rows_ ? rows_ - 1 : cy);
    return {cx, cy};
  }

  /// Centre point of a cell.
  Point2D cell_center(CellIndex c) const {
    ZEIOT_CHECK(c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_);
    return {area_.x0 + (static_cast<double>(c.x) + 0.5) * area_.width() /
                           static_cast<double>(cols_),
            area_.y0 + (static_cast<double>(c.y) + 0.5) * area_.height() /
                           static_cast<double>(rows_)};
  }

  /// Row-major flat index of a cell.
  std::size_t flat(CellIndex c) const {
    ZEIOT_CHECK(c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_);
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c.x);
  }

 private:
  Rect area_;
  int cols_;
  int rows_;
};

}  // namespace zeiot
