// Console table and CSV output used by the bench harnesses to print the
// rows/series that mirror the paper's tables and figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace zeiot {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;
  /// Renders as CSV (header + rows).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a per-index bar chart (used for Fig.-10-style per-node series).
void print_bar_series(std::ostream& os, const std::string& title,
                      const std::vector<double>& values, int width = 50);

}  // namespace zeiot
