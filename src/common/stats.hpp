// Streaming statistics used throughout the simulators and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace zeiot {

/// Welford's online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel-combinable).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Mean of the observed samples (0 if empty).
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 if fewer than two samples).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// Linear-interpolated quantile estimate, q in [0,1].  Bucket-boundary
  /// interpolation: mass inside a bin is treated as uniform, so the
  /// estimate moves linearly between the bin's low and high edge (a
  /// single-bin histogram maps q to lo + q * bin_width).  Edge cases:
  /// an empty histogram returns lo(); q = 0 returns the low edge of the
  /// first occupied bin; q = 1 returns the high edge of the last occupied
  /// bin.  Empty bins are skipped, never interpolated into.
  double quantile(double q) const;
  /// Percentile accessor, p in [0,100]: percentile(95) == quantile(0.95).
  /// Shares quantile()'s edge-case contract (p=0 / p=100 / empty).
  double percentile(double p) const;
  /// Merges another histogram with identical bounds and bin count
  /// (parallel-combinable, like RunningStats::merge).
  void merge(const Histogram& other);
  double low() const { return lo_; }
  double high() const { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact quantile of a sample vector (copies and sorts; for bench output,
/// not hot paths).  q in [0,1]; linear interpolation between order stats.
/// Throws on an empty sample set — callers aggregating populations that can
/// legitimately be empty (everything shed / terminated) should use
/// nearest_rank_quantile instead.
///
/// Formerly named `percentile`, which silently clashed with
/// Histogram::percentile's p-in-[0,100] contract; the quantile/percentile
/// split below makes the argument range part of the name.
double exact_quantile(std::vector<double> samples, double q);

/// Percentile flavor of exact_quantile, p in [0,100]:
/// exact_percentile(v, 95) == exact_quantile(v, 0.95) — the same contract
/// split as Histogram::quantile / Histogram::percentile.
double exact_percentile(std::vector<double> samples, double p);

/// Nearest-rank quantile on the llround(q*(n-1)) convention shared by
/// netexec::NetworkExecutor::evaluate, the fleet aggregator and
/// tools/obs_report.py (half-up, no interpolation).  q in [0,1].  Returns
/// 0.0 for an empty sample set — the defined-zero contract for populations
/// where every member was shed or terminated.
double nearest_rank_quantile(std::vector<double> samples, double q);

/// Mean of a vector (0 if empty).
double mean_of(const std::vector<double>& v);

}  // namespace zeiot
