// Capacitor energy storage with turn-on/turn-off hysteresis — the standard
// operating regime of batteryless (intermittent-computing) devices: the
// device boots when the capacitor reaches V_on and dies below V_off.
#pragma once

#include "common/error.hpp"

namespace zeiot::energy {

/// Ideal capacitor: E = 1/2 C V^2, charged by harvested power, discharged by
/// task energy draws.
class Capacitor {
 public:
  /// `capacitance_f` in farads, `v_max` the rail clamp voltage.
  Capacitor(double capacitance_f, double v_max, double v_initial = 0.0);

  double voltage() const;
  double energy_joule() const { return energy_j_; }
  double capacity_joule() const;

  /// Integrates `power_watt` for `dt_s` seconds, clamping at the rail.
  void charge(double power_watt, double dt_s);

  /// Attempts to draw `energy_j`; returns false (and draws nothing) if the
  /// stored energy is insufficient.
  bool draw(double energy_j);

 private:
  double capacitance_f_;
  double v_max_;
  double energy_j_;
};

/// Hysteretic power-management front end: tracks whether the device is in
/// the ON region.  Turn-on at `v_on`, turn-off at `v_off` (< v_on).
class HysteresisSwitch {
 public:
  HysteresisSwitch(double v_on, double v_off);

  /// Updates and returns the ON/OFF state for the given capacitor voltage.
  bool update(double voltage);
  bool is_on() const { return on_; }
  double v_on() const { return v_on_; }
  double v_off() const { return v_off_; }

 private:
  double v_on_;
  double v_off_;
  bool on_ = false;
};

}  // namespace zeiot::energy
